package main

import (
	"strings"
	"testing"
)

const sampleRun = `
goos: linux
goarch: amd64
pkg: naspipe/internal/tensor
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMatVec/n=128-4         	   86640	     13841 ns/op	       0 B/op	       0 allocs/op
BenchmarkVectorChecksum/len=4096-4 	   51261	     23491 ns/op	       0 B/op	       0 allocs/op
BenchmarkVectorChecksumRef/len=4096-4 	   46628	     25841 ns/op	       0 B/op	       0 allocs/op
BenchmarkTrainSubnetStep      	   66007	     43721 ns/op	     704 B/op	      14 allocs/op
PASS
ok  	naspipe/internal/tensor	8.822s
`

func sampleResults(t *testing.T) map[string]benchResult {
	t.Helper()
	out := make(map[string]benchResult)
	for _, r := range parseBench(sampleRun) {
		out[r.Name] = r
	}
	return out
}

func TestParseBench(t *testing.T) {
	res := sampleResults(t)
	if len(res) != 4 {
		t.Fatalf("parsed %d results, want 4: %v", len(res), res)
	}
	mv, ok := res["BenchmarkMatVec/n=128"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not trimmed from sub-benchmark name")
	}
	if mv.NsPerOp != 13841 || mv.Allocs != 0 {
		t.Fatalf("MatVec = %+v, want 13841 ns/op 0 allocs", mv)
	}
	if st := res["BenchmarkTrainSubnetStep"]; st.Allocs != 14 {
		t.Fatalf("TrainSubnetStep allocs = %v, want 14", st.Allocs)
	}
}

func TestBaselineRoundTripPasses(t *testing.T) {
	res := sampleResults(t)
	base := buildBaseline(res)
	if got := base.Allocs["BenchmarkTrainSubnetStep"]; got != 14 {
		t.Fatalf("baseline allocs pin = %v, want 14", got)
	}
	ratio, ok := base.Ratios["BenchmarkVectorChecksum/len=4096"]
	if !ok || ratio >= 1 {
		t.Fatalf("baseline ratio pin = %v (ok=%v), want <1 (optimized beats ref)", ratio, ok)
	}
	if _, ok := base.Ratios["BenchmarkVectorChecksumRef/len=4096"]; ok {
		t.Fatal("a Ref benchmark must not get its own ratio pin")
	}
	if msgs := compare(base, res, 0.15); len(msgs) != 0 {
		t.Fatalf("self-comparison regressed: %v", msgs)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	res := sampleResults(t)
	base := buildBaseline(res)

	// Allocation growth beyond tolerance fails; within-slack growth on a
	// zero pin does not exist (0 → 2 exceeds both bounds).
	worse := sampleResults(t)
	st := worse["BenchmarkTrainSubnetStep"]
	st.Allocs = 40
	worse["BenchmarkTrainSubnetStep"] = st
	msgs := compare(base, worse, 0.15)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "BenchmarkTrainSubnetStep") {
		t.Fatalf("alloc regression not flagged: %v", msgs)
	}

	// The optimized kernel slowing to 2x of its Ref twin fails the ratio
	// pin even though absolute ns/op is never compared across runs.
	slow := sampleResults(t)
	cs := slow["BenchmarkVectorChecksum/len=4096"]
	cs.NsPerOp = 2 * slow["BenchmarkVectorChecksumRef/len=4096"].NsPerOp
	slow["BenchmarkVectorChecksum/len=4096"] = cs
	msgs = compare(base, slow, 0.15)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "Ref twin") {
		t.Fatalf("ratio regression not flagged: %v", msgs)
	}

	// A pinned benchmark silently vanishing from the run is a failure,
	// not a pass.
	gone := sampleResults(t)
	delete(gone, "BenchmarkTrainSubnetStep")
	msgs = compare(base, gone, 0.15)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "missing") {
		t.Fatalf("missing pinned benchmark not flagged: %v", msgs)
	}

	// One alloc of absolute slack covers map growth-boundary noise on
	// small nonzero pins.
	noisy := sampleResults(t)
	st = noisy["BenchmarkTrainSubnetStep"]
	st.Allocs = 15
	noisy["BenchmarkTrainSubnetStep"] = st
	if msgs := compare(base, noisy, 0.15); len(msgs) != 0 {
		t.Fatalf("within-slack alloc growth flagged: %v", msgs)
	}
}
