package explore

import (
	"fmt"

	"naspipe/internal/rng"
	"naspipe/internal/supernet"
	"naspipe/internal/train"
)

// RandomSearch is the classical one-shot NAS baseline: sample budget
// architectures uniformly, evaluate each on the trained supernet, return
// the best. Evolution (Search) should match or beat it at equal
// evaluation budget on structured spaces; RandomSearch provides the
// comparison point.
func RandomSearch(cfg train.Config, net *supernet.Numeric, budget, valBatches int, seed uint64) (SearchResult, error) {
	if budget <= 0 {
		return SearchResult{}, fmt.Errorf("explore: non-positive random search budget %d", budget)
	}
	space := cfg.Space
	r := rng.Labeled(seed, "random-search/"+space.Name)
	var best Candidate
	var history []float64
	pop := make([]Candidate, 0, budget)
	for i := 0; i < budget; i++ {
		choices := make([]int, space.Blocks)
		for b := range choices {
			choices[b] = r.Intn(space.Choices)
		}
		sub := supernet.Subnet{Seq: i, Choices: choices}
		loss := train.Evaluate(cfg, net, sub, valBatches)
		c := Candidate{Subnet: sub, Loss: loss, Score: train.Score(space.Domain, loss), Age: i}
		pop = append(pop, c)
		if i == 0 || c.Score > best.Score {
			best = c
		}
		history = append(history, best.Score)
	}
	// Keep the top candidates as the "population" for parity with Search.
	sortCandidates(pop)
	if len(pop) > 16 {
		pop = pop[:16]
	}
	return SearchResult{Best: best, Evaluated: budget, History: history, Population: pop}, nil
}

func sortCandidates(cs []Candidate) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Score > cs[j-1].Score; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
