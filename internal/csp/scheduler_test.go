package csp

import (
	"testing"
	"testing/quick"
	"time"

	"naspipe/internal/partition"
	"naspipe/internal/rng"
	"naspipe/internal/supernet"
)

// info builds a SubnetInfo whose stage layers equal all layers (single
// stage view) from plain ints.
func info(seq int, layerIDs ...int) SubnetInfo {
	ids := make([]supernet.LayerID, len(layerIDs))
	for i, l := range layerIDs {
		ids[i] = supernet.LayerID(l)
	}
	return SubnetInfo{Seq: seq, AllLayers: ids, StageLayers: ids}
}

func mustAdd(t *testing.T, s *Scheduler, infos ...SubnetInfo) {
	t.Helper()
	for _, in := range infos {
		if err := s.AddSubnet(in); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScheduleUnblockedFirst(t *testing.T) {
	s := New(0)
	mustAdd(t, s,
		info(0, 1, 2),
		info(1, 2, 3), // shares layer 2 with subnet 0
		info(2, 4, 5), // independent
	)
	// Subnet 0 is unfinished: subnet 1 is blocked, subnet 2 is not.
	qidx, qval := s.Schedule([]int{1, 2})
	if qidx != 1 || qval != 2 {
		t.Fatalf("Schedule = (%d,%d), want (1,2)", qidx, qval)
	}
	// Subnet 0 itself has no earlier subnets and is schedulable.
	if qidx, qval = s.Schedule([]int{0, 1, 2}); qidx != 0 || qval != 0 {
		t.Fatalf("Schedule = (%d,%d), want (0,0)", qidx, qval)
	}
}

func TestScheduleAllBlocked(t *testing.T) {
	s := New(0)
	mustAdd(t, s, info(0, 1), info(1, 1), info(2, 1))
	qidx, qval := s.Schedule([]int{1, 2})
	if qidx != -1 || qval != -1 {
		t.Fatalf("Schedule = (%d,%d), want (-1,-1)", qidx, qval)
	}
}

func TestMarkFinishedUnblocks(t *testing.T) {
	s := New(0)
	mustAdd(t, s, info(0, 1), info(1, 1))
	if !s.Blocked(1) {
		t.Fatal("subnet 1 should be blocked by subnet 0")
	}
	s.MarkFinished(0)
	if s.Blocked(1) {
		t.Fatal("subnet 1 should be unblocked after subnet 0 finishes")
	}
}

func TestStageLocalityOfBlocking(t *testing.T) {
	// The candidate's check only covers its *stage* layers, but earlier
	// subnets are checked across *all* their layers (mirroring-aware).
	s := New(0)
	a := SubnetInfo{Seq: 0,
		AllLayers:   []supernet.LayerID{1, 2},
		StageLayers: []supernet.LayerID{1}}
	b := SubnetInfo{Seq: 1,
		AllLayers:   []supernet.LayerID{2, 9},
		StageLayers: []supernet.LayerID{9}} // stage layers don't collide
	c := SubnetInfo{Seq: 2,
		AllLayers:   []supernet.LayerID{2, 8},
		StageLayers: []supernet.LayerID{2}} // stage layer 2 collides with a's AllLayers
	mustAdd(t, s, a, b, c)
	if s.Blocked(1) {
		t.Fatal("subnet 1 stage layers don't collide; must be schedulable")
	}
	if !s.Blocked(2) {
		t.Fatal("subnet 2's stage layer 2 collides with unfinished subnet 0")
	}
}

func TestFrontierElimination(t *testing.T) {
	s := New(0)
	for i := 0; i < 6; i++ {
		mustAdd(t, s, info(i, i)) // disjoint layers
	}
	// Finish out of order: 1 then 0 -> frontier jumps to 2.
	s.MarkFinished(1)
	if s.Frontier() != 0 {
		t.Fatalf("frontier moved early: %d", s.Frontier())
	}
	s.MarkFinished(0)
	if s.Frontier() != 2 {
		t.Fatalf("frontier = %d want 2", s.Frontier())
	}
	if s.Active() != 4 {
		t.Fatalf("active = %d want 4 (two eliminated)", s.Active())
	}
	// Eliminated subnets still report finished.
	if !s.Finished(0) || !s.Finished(1) || s.Finished(2) {
		t.Fatal("Finished wrong after elimination")
	}
	// Adding below the frontier is rejected.
	if err := s.AddSubnet(info(1, 7)); err == nil {
		t.Fatal("expected error adding subnet below frontier")
	}
}

func TestAddDuplicateRejected(t *testing.T) {
	s := New(0)
	mustAdd(t, s, info(3, 1))
	if err := s.AddSubnet(info(3, 2)); err == nil {
		t.Fatal("expected duplicate error")
	}
}

func TestUnknownSubnetConservativelyBlocked(t *testing.T) {
	s := New(0)
	if !s.Blocked(5) {
		t.Fatal("unregistered subnet must be blocked")
	}
}

func TestScheduleAssuming(t *testing.T) {
	s := New(0)
	mustAdd(t, s, info(0, 1), info(1, 1), info(2, 2))
	// Without assumption, only 2 schedulable.
	if _, qval := s.Schedule([]int{1, 2}); qval != 2 {
		t.Fatalf("got %d want 2", qval)
	}
	// Assuming 0 finished, 1 becomes schedulable and wins by order.
	if _, qval := s.ScheduleAssuming([]int{1, 2}, 0); qval != 1 {
		t.Fatalf("got %d want 1", qval)
	}
}

func TestBlockingWriter(t *testing.T) {
	s := New(0)
	mustAdd(t, s, info(0, 1), info(1, 1), info(2, 1))
	if w := s.BlockingWriter(2); w != 0 {
		t.Fatalf("BlockingWriter(2) = %d want 0 (smallest unfinished)", w)
	}
	s.MarkFinished(0)
	if w := s.BlockingWriter(2); w != 1 {
		t.Fatalf("BlockingWriter(2) = %d want 1", w)
	}
	s.MarkFinished(1)
	if w := s.BlockingWriter(2); w != -1 {
		t.Fatalf("BlockingWriter(2) = %d want -1", w)
	}
}

func TestMarkFinishedIdempotent(t *testing.T) {
	s := New(0)
	mustAdd(t, s, info(0, 1), info(1, 2))
	s.MarkFinished(0)
	s.MarkFinished(0) // repeated, also already eliminated
	if s.Frontier() != 1 {
		t.Fatalf("frontier %d want 1", s.Frontier())
	}
}

// buildStageInfos derives per-stage SubnetInfos the way the engine will:
// balanced partitions over a real supernet.
func buildStageInfos(sn *supernet.Supernet, subs []supernet.Subnet, d, stage int) []SubnetInfo {
	out := make([]SubnetInfo, len(subs))
	for i, sub := range subs {
		p := partition.BalancedForSubnet(sn, sub, d)
		lo, hi := p.Blocks(stage)
		var stageIDs []supernet.LayerID
		for b := lo; b < hi; b++ {
			stageIDs = append(stageIDs, sn.Space.ID(b, sub.Choices[b]))
		}
		out[i] = SubnetInfo{Seq: sub.Seq, AllLayers: sub.LayerIDs(sn.Space), StageLayers: stageIDs}
	}
	return out
}

func TestRealSupernetScheduling(t *testing.T) {
	sn := supernet.Build(supernet.NLPc3)
	subs := supernet.Sample(supernet.NLPc3, 7, 10)
	s := New(2)
	for _, in := range buildStageInfos(sn, subs, 4, 2) {
		if err := s.AddSubnet(in); err != nil {
			t.Fatal(err)
		}
	}
	queue := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	// Drain: schedule, mark finished, repeat. CSP must always be able to
	// schedule the lowest unfinished subnet (it has no unfinished
	// predecessors), so the drain always completes.
	done := 0
	for done < len(subs) {
		qidx, qval := s.Schedule(queue)
		if qidx < 0 {
			t.Fatalf("deadlock with %d done", done)
		}
		queue = append(queue[:qidx], queue[qidx+1:]...)
		s.MarkFinished(qval)
		done++
	}
	if s.Active() != 0 {
		t.Fatalf("%d subnets not eliminated after drain", s.Active())
	}
}

// Property: differential test — the indexed Schedule agrees with the
// paper-literal ReferenceSchedule on random states.
func TestQuickScheduleMatchesReference(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(10)
		layersPer := 1 + r.Intn(4)
		universe := 1 + r.Intn(8)
		s := New(0)
		for i := 0; i < n; i++ {
			ids := make([]int, layersPer)
			for j := range ids {
				ids[j] = r.Intn(universe)
			}
			if err := s.AddSubnet(info(i, ids...)); err != nil {
				return false
			}
		}
		// Finish a random prefix-biased subset.
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				s.MarkFinished(i)
			}
		}
		// Queue: the unfinished subnets in a shuffled order.
		var queue []int
		for i := 0; i < n; i++ {
			if !s.Finished(i) {
				queue = append(queue, i)
			}
		}
		r.Shuffle(len(queue), func(i, j int) { queue[i], queue[j] = queue[j], queue[i] })
		fin, frontier, subs := s.Snapshot()
		ri, rv := ReferenceSchedule(queue, fin, frontier, subs)
		gi, gv := s.Schedule(queue)
		return ri == gi && rv == gv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Schedule never returns a task with an unfinished
// earlier-subnet layer collision (dependency preservation, CSP
// Definition 2).
func TestQuickSchedulePreservesDependencies(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(12)
		s := New(0)
		all := make([][]int, n)
		for i := 0; i < n; i++ {
			ids := make([]int, 1+r.Intn(3))
			for j := range ids {
				ids[j] = r.Intn(6)
			}
			all[i] = ids
			if err := s.AddSubnet(info(i, ids...)); err != nil {
				return false
			}
		}
		finished := map[int]bool{}
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				s.MarkFinished(i)
				finished[i] = true
			}
		}
		var queue []int
		for i := 0; i < n; i++ {
			if !finished[i] {
				queue = append(queue, i)
			}
		}
		_, qval := s.Schedule(queue)
		if qval < 0 {
			// All blocked is acceptable only if the head of the
			// unfinished order is genuinely blocked, which cannot happen:
			// the lowest unfinished subnet has no unfinished
			// predecessors. So queue empty is the only legal case.
			return len(queue) == 0
		}
		// Verify no collision with unfinished earlier subnets by brute
		// force over the original layer lists.
		for w := 0; w < qval; w++ {
			if finished[w] {
				continue
			}
			for _, lw := range all[w] {
				for _, lc := range all[qval] {
					if lw == lc {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the lowest unfinished subnet is never blocked — CSP cannot
// deadlock.
func TestQuickNoDeadlock(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(10)
		s := New(0)
		for i := 0; i < n; i++ {
			ids := make([]int, 1+r.Intn(3))
			for j := range ids {
				ids[j] = r.Intn(4) // dense collisions
			}
			if err := s.AddSubnet(info(i, ids...)); err != nil {
				return false
			}
		}
		for done := 0; done < n; done++ {
			lowest := s.Frontier()
			if s.Blocked(lowest) {
				return false
			}
			s.MarkFinished(lowest)
		}
		return s.Active() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSchedule(b *testing.B) {
	sn := supernet.Build(supernet.NLPc1)
	subs := supernet.Sample(supernet.NLPc1, 3, 30)
	s := New(0)
	for _, sub := range subs {
		p := partition.BalancedForSubnet(sn, sub, 8)
		lo, hi := p.Blocks(0)
		var stageIDs []supernet.LayerID
		for blk := lo; blk < hi; blk++ {
			stageIDs = append(stageIDs, sn.Space.ID(blk, sub.Choices[blk]))
		}
		if err := s.AddSubnet(SubnetInfo{Seq: sub.Seq, AllLayers: sub.LayerIDs(sn.Space), StageLayers: stageIDs}); err != nil {
			b.Fatal(err)
		}
	}
	queue := make([]int, 30)
	for i := range queue {
		queue[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(queue)
	}
}

func TestMarkWrittenUnblocksPerLayer(t *testing.T) {
	s := New(0)
	// Subnet 0 uses layers 1 and 2; subnet 1's stage layers hit layer 1
	// only; subnet 2's hit layer 2 only.
	mustAdd(t, s,
		SubnetInfo{Seq: 0, AllLayers: []supernet.LayerID{1, 2}, StageLayers: []supernet.LayerID{1, 2}},
		SubnetInfo{Seq: 1, AllLayers: []supernet.LayerID{1}, StageLayers: []supernet.LayerID{1}},
		SubnetInfo{Seq: 2, AllLayers: []supernet.LayerID{2}, StageLayers: []supernet.LayerID{2}},
	)
	if !s.Blocked(1) || !s.Blocked(2) {
		t.Fatal("both dependents should start blocked")
	}
	// Subnet 0's write to layer 1 completes (e.g. on a later stage) while
	// its write to layer 2 is still pending.
	s.MarkWritten(0, []supernet.LayerID{1})
	if s.Blocked(1) {
		t.Fatal("subnet 1 should unblock after layer 1's write")
	}
	if !s.Blocked(2) {
		t.Fatal("subnet 2 must stay blocked on layer 2")
	}
	s.MarkWritten(0, []supernet.LayerID{2})
	if s.Blocked(2) {
		t.Fatal("subnet 2 should unblock after layer 2's write")
	}
	// Full finish still advances the frontier.
	s.MarkFinished(0)
	if s.Frontier() != 1 {
		t.Fatalf("frontier %d want 1", s.Frontier())
	}
}

func TestMarkWrittenIdempotentAndUnknown(t *testing.T) {
	s := New(0)
	mustAdd(t, s, info(0, 3))
	s.MarkWritten(0, []supernet.LayerID{3})
	s.MarkWritten(0, []supernet.LayerID{3, 99}) // repeated + unknown layer
	s.MarkFinished(0)
	if s.Active() != 0 {
		t.Fatal("elimination failed after MarkWritten")
	}
}

func TestEliminationBoundsState(t *testing.T) {
	// The §3.2 elimination scheme must keep the scheduler's live state
	// proportional to the in-flight window, not the stream length —
	// this is what keeps Algorithm 2's cost "<0.01s" over long runs.
	s := New(0)
	const stream = 500
	const window = 16
	next := 0
	finishedUpTo := 0
	r := rng.New(3)
	for finishedUpTo < stream {
		for next < stream && next-finishedUpTo < window {
			mustAdd(t, s, info(next, r.Intn(8), r.Intn(8)))
			next++
		}
		// Finish a random one of the in-flight window; the frontier only
		// advances on the lowest, as in a real pipeline drain.
		s.MarkFinished(finishedUpTo + r.Intn(next-finishedUpTo))
		s.MarkFinished(finishedUpTo)
		finishedUpTo = s.Frontier()
		if s.Active() > 2*window {
			t.Fatalf("scheduler state grew to %d (> 2x window) at frontier %d", s.Active(), s.Frontier())
		}
	}
	if s.Active() != 0 {
		t.Fatalf("%d subnets leaked after full drain", s.Active())
	}
}

func TestSchedulerCallLatencyWithinPaperBudget(t *testing.T) {
	// §3.2's complexity analysis: a scheduler policy call costs well under
	// 0.01 s at the paper's operating point (|L_q| ≈ 30 queued subnets,
	// m = 48 blocks). Allow a 10x margin for slow CI machines.
	sn := supernet.Build(supernet.NLPc1)
	subs := supernet.Sample(supernet.NLPc1, 3, 30)
	s := New(0)
	for _, in := range buildStageInfos(sn, subs, 8, 0) {
		if err := s.AddSubnet(in); err != nil {
			t.Fatal(err)
		}
	}
	queue := make([]int, 30)
	for i := range queue {
		queue[i] = i
	}
	const calls = 1000
	start := time.Now()
	for i := 0; i < calls; i++ {
		s.Schedule(queue)
	}
	per := time.Since(start) / calls
	if per > 10*time.Millisecond {
		t.Fatalf("Schedule call took %v, far above the paper's <10ms budget", per)
	}
}
