package engine

import (
	"strings"
	"testing"
)

// TestRunProbeSemantics pins the probe contract the watchdog relies on:
// the two progress signals are monotone (even across re-attaches, i.e.
// incarnations), parks and state publishes without taskDone move
// neither, and attach resets the per-stage table to -1 sentinels.
func TestRunProbeSemantics(t *testing.T) {
	p := &RunProbe{}
	p.attach(4, 3)
	if f, n := p.Progress(); f != 3 || n != 0 {
		t.Fatalf("fresh probe progress = (%d, %d), want (3, 0)", f, n)
	}
	snap := p.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d stages, want 4", len(snap))
	}
	for k, h := range snap {
		if h.Stage != k || h.BlockedHead != -1 || h.OwnerSubnet != -1 {
			t.Fatalf("stage %d not reset to sentinels: %+v", k, h)
		}
	}

	// State-only publishes (parks) update the table but not progress.
	p.publish(StageHealth{Stage: 1, QueueLen: 2, BlockedHead: 5, OwnerSubnet: 4}, false)
	if _, n := p.Progress(); n != 0 {
		t.Fatalf("park publish counted as progress: %d tasks", n)
	}
	if h := p.Snapshot()[1]; h.QueueLen != 2 || h.BlockedHead != 5 || h.OwnerSubnet != 4 {
		t.Fatalf("published health lost: %+v", h)
	}

	// Task completions and frontier commits are the progress signals.
	p.publish(StageHealth{Stage: 1, FwdDone: 1}, true)
	p.publish(StageHealth{Stage: 2, FwdDone: 1}, true)
	p.advanceFrontier(7)
	p.advanceFrontier(5) // stale commit must not regress
	if f, n := p.Progress(); f != 7 || n != 2 {
		t.Fatalf("progress = (%d, %d), want (7, 2)", f, n)
	}

	// Re-attach for a resumed incarnation: table resets, signals hold.
	p.attach(2, 0)
	if f, n := p.Progress(); f != 7 || n != 2 {
		t.Fatalf("re-attach regressed progress to (%d, %d)", f, n)
	}
	if snap := p.Snapshot(); len(snap) != 2 || snap[1].FwdDone != 0 {
		t.Fatalf("re-attach kept stale stage state: %+v", snap)
	}

	// Out-of-range publishes (stale goroutine of a wider incarnation)
	// must not panic or corrupt the table.
	p.publish(StageHealth{Stage: 3, FwdDone: 9}, true)
	if f, n := p.Progress(); f != 7 || n != 3 {
		t.Fatalf("out-of-range publish mishandled: (%d, %d)", f, n)
	}
}

// TestStallErrorDump is the seeded deadlock fixture: the dump must name
// every stage's counters, the blocked head with its owning subnet, and
// flag a wedged stage.
func TestStallErrorDump(t *testing.T) {
	e := &StallError{Completed: 5, Total: 18, Stages: []StageHealth{
		{Stage: 0, FwdDone: 9, BwdDone: 5, BlockedHead: -1, OwnerSubnet: -1},
		{Stage: 1, FwdDone: 6, BwdDone: 5, QueueLen: 3, BlockedHead: 6, OwnerSubnet: 2},
		{Stage: 2, FwdDone: 6, BwdDone: 6, BlockedHead: -1, OwnerSubnet: -1, Wedged: true},
	}}
	msg := e.Error()
	for _, frag := range []string{
		"stalled at 5/18 subnets",
		"stage 1: fwd 6 bwd 5, queued 3 fwd / 0 bwd",
		"head subnet 6 blocked by subnet 2",
		"stage 2",
		"WEDGED",
	} {
		if !strings.Contains(msg, frag) {
			t.Errorf("stall dump lacks %q:\n%s", frag, msg)
		}
	}
}
