package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"naspipe/internal/layers"
)

func TestDefaultMatchesTestbed(t *testing.T) {
	s := Default(8)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.GPUs != 8 || s.GPUsPerHost != 4 {
		t.Fatalf("topology %d/%d", s.GPUs, s.GPUsPerHost)
	}
	if s.GPUMemBytes != 11<<30 {
		t.Fatalf("GPU memory %d, want 11 GB", s.GPUMemBytes)
	}
	if s.PCIeBytesPerMs != 15760000 {
		t.Fatalf("PCIe %f, want 15760 MB/s", s.PCIeBytesPerMs)
	}
	if s.NetBytesPerMs != 867000 {
		t.Fatalf("net %f, want 867 MB/s", s.NetBytesPerMs)
	}
}

func TestDefaultPanicsOnBadGPUs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Default(0)
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	s := Default(4)
	s.FixedComputeFrac = 1.5
	if s.Validate() == nil {
		t.Fatal("expected error for FixedComputeFrac >= 1")
	}
	s = Default(4)
	s.GPUMemBytes = 0
	if s.Validate() == nil {
		t.Fatal("expected error for zero memory")
	}
}

func TestRefBatch(t *testing.T) {
	if RefBatch(layers.NLP) != 192 || RefBatch(layers.CV) != 64 {
		t.Fatal("reference batches must match the profiled input shapes")
	}
}

func TestSampleBytes(t *testing.T) {
	if SampleBytes(layers.NLP) != 192*1024*4 {
		t.Fatalf("NLP sample bytes %d", SampleBytes(layers.NLP))
	}
	if SampleBytes(layers.CV) != 112*112*64*4 {
		t.Fatalf("CV sample bytes %d", SampleBytes(layers.CV))
	}
}

func TestComputeMsCalibration(t *testing.T) {
	// The calibration target: on NLP.c1 the paper measured subnet exec
	// 1.13 s at batch 192 and GPipe 0.54 s at batch 32. With base = time
	// at ref batch 192, t(32)/t(192) must be ≈ 0.48 (±0.1).
	s := Default(8)
	ratio := s.ComputeMs(100, 32, 192) / s.ComputeMs(100, 192, 192)
	if ratio < 0.38 || ratio > 0.58 {
		t.Fatalf("t(32)/t(192) = %f, outside calibrated window", ratio)
	}
	// At reference batch the base cost is returned exactly.
	if got := s.ComputeMs(100, 192, 192); math.Abs(got-100) > 1e-9 {
		t.Fatalf("ComputeMs at ref = %f want 100", got)
	}
}

func TestComputeMsMonotone(t *testing.T) {
	s := Default(8)
	prev := 0.0
	for _, b := range []int{1, 8, 32, 64, 128, 192, 256} {
		got := s.ComputeMs(50, b, 192)
		if got <= prev {
			t.Fatalf("ComputeMs not strictly increasing at batch %d", b)
		}
		prev = got
	}
}

func TestEfficiencySaturates(t *testing.T) {
	s := Default(8)
	small := s.EfficiencyFactor(16, 192)
	large := s.EfficiencyFactor(192, 192)
	if small >= large {
		t.Fatalf("efficiency should grow with batch: %f >= %f", small, large)
	}
	if large != 1 {
		t.Fatalf("efficiency at ref batch = %f want 1 (capped)", large)
	}
	if s.EfficiencyFactor(400, 192) != 1 {
		t.Fatal("efficiency must cap at 1 beyond ref batch")
	}
}

func TestSwapMsMatchesTable5(t *testing.T) {
	// Swap time of a layer's parameters must invert to the Table 5 swap
	// column by construction.
	s := Default(8)
	for _, k := range []layers.Kind{layers.Conv3x1, layers.Conv3x3, layers.Attention8Head} {
		p := layers.Profile(k)
		got := s.SwapMs(p.ParamBytes)
		if math.Abs(got-p.SwapMs) > 0.01 {
			t.Errorf("%v: SwapMs %f want %f", k, got, p.SwapMs)
		}
	}
}

func TestHostTopology(t *testing.T) {
	s := Default(16)
	if s.Host(0) != 0 || s.Host(3) != 0 || s.Host(4) != 1 || s.Host(15) != 3 {
		t.Fatal("host mapping wrong")
	}
	if !s.SameHost(0, 3) || s.SameHost(3, 4) {
		t.Fatal("SameHost wrong")
	}
}

func TestCommMs(t *testing.T) {
	s := Default(8)
	if s.CommMs(2, 2, 1<<20) != 0 {
		t.Fatal("self-communication must be free")
	}
	intra := s.CommMs(0, 1, 1<<20)
	cross := s.CommMs(3, 4, 1<<20)
	if intra >= cross {
		t.Fatalf("intra-host (%f) must beat cross-host (%f)", intra, cross)
	}
	if cross < s.NetLatencyMs {
		t.Fatal("cross-host transfer must include latency")
	}
}

func TestMaxBatch(t *testing.T) {
	s := Default(8)
	// Parameters exceeding memory: batch 0 (system cannot run — the
	// GPipe-on-NLP.c0 failure mode).
	if got := s.MaxBatch(12<<30, 6, layers.NLP); got != 0 {
		t.Fatalf("overfull stage got batch %d want 0", got)
	}
	// Small resident context leaves room for a large batch.
	light := s.MaxBatch(1<<30, 6, layers.NLP)
	heavy := s.MaxBatch(7<<30, 6, layers.NLP)
	if light <= heavy {
		t.Fatalf("freeing memory must raise max batch: light=%d heavy=%d", light, heavy)
	}
	if heavy < 1 {
		t.Fatalf("positive free memory must allow batch >= 1, got %d", heavy)
	}
}

func TestMaxBatchPaperRegime(t *testing.T) {
	// NLP.c1 sanity: a GPipe stage holding ~7.5 GB of supernet parameters
	// must get a far smaller batch than a NASPipe stage holding a ~3x
	// subnet cache (~0.4 GB), and the ratio should be in the 3x–10x window
	// the paper reports (32 vs 192 = 6x).
	s := Default(8)
	gpipe := s.MaxBatch(7<<30+1<<29, 6, layers.NLP)
	naspipe := s.MaxBatch(1<<29, 6, layers.NLP)
	if gpipe == 0 {
		t.Fatal("GPipe NLP.c1 stage should still run")
	}
	ratio := float64(naspipe) / float64(gpipe)
	if ratio < 2.5 || ratio > 12 {
		t.Fatalf("batch ratio %f (naspipe %d, gpipe %d) outside paper regime", ratio, naspipe, gpipe)
	}
}

// Property: ComputeMs is linear in base cost and monotone in batch.
func TestQuickComputeMs(t *testing.T) {
	s := Default(8)
	f := func(baseRaw uint16, b1Raw, b2Raw uint8) bool {
		base := float64(baseRaw%1000) + 1
		b1 := int(b1Raw) + 1
		b2 := int(b2Raw) + 1
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		t1 := s.ComputeMs(base, b1, 192)
		t2 := s.ComputeMs(base, b2, 192)
		if t2 < t1 {
			return false
		}
		// Linearity in base.
		return math.Abs(s.ComputeMs(2*base, b1, 192)-2*t1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CommMs is nonnegative, symmetric in direction, and monotone in
// size.
func TestQuickCommMs(t *testing.T) {
	s := Default(16)
	f := func(aRaw, bRaw uint8, szRaw uint32) bool {
		a, b := int(aRaw)%16, int(bRaw)%16
		sz := int64(szRaw)
		c1 := s.CommMs(a, b, sz)
		c2 := s.CommMs(b, a, sz)
		if c1 < 0 || math.Abs(c1-c2) > 1e-12 {
			return false
		}
		return s.CommMs(a, b, sz+1024) >= c1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestA100Preset(t *testing.T) {
	s := A100(8)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	d := Default(8)
	if s.GPUMemBytes <= d.GPUMemBytes || s.PCIeBytesPerMs <= d.PCIeBytesPerMs {
		t.Fatal("A100 preset must dominate the 2080Ti testbed")
	}
	// With 80 GB the GPipe memory regime fits even a 10 GB stage slice at
	// a healthy batch.
	if b := s.MaxBatch(10<<30, 6, layers.NLP); b < 64 {
		t.Fatalf("A100 batch %d implausibly small", b)
	}
}
