package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"naspipe"
	"naspipe/internal/telemetry"
)

// Server exposes a Scheduler over the versioned HTTP/JSON API. It is a
// plain http.Handler; mount it on any mux or serve it with Serve.
type Server struct {
	sched *Scheduler
	// followPoll is how often the events endpoint re-checks a live bus
	// in follow mode (test hook; 0 = 100ms).
	followPoll time.Duration
}

// NewServer wraps a scheduler in the API surface.
func NewServer(s *Scheduler) *Server { return &Server{sched: s} }

// Serve binds addr (host:port; :0 picks a free port), serves the API on
// it, and returns the bound address and a shutdown func. The pattern
// matches telemetry.ServeDebug so CLIs treat both the same way.
func Serve(addr string, s *Scheduler) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("service: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewServer(s)}
	go func() { _ = srv.Serve(ln) }()
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
	return ln.Addr().String(), shutdown, nil
}

// writeJSON emits a JSON response body with status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr maps an error to its wire form. *APIError passes through
// with its canonical HTTP status; anything else is a 500 internal.
func writeErr(w http.ResponseWriter, err error) {
	ae, ok := err.(*APIError)
	if !ok {
		ae = &APIError{Code: CodeInternal, Message: err.Error()}
	}
	status := http.StatusInternalServerError
	switch ae.Code {
	case CodeInvalidSpec:
		status = http.StatusBadRequest
	case CodeQuotaExceeded, CodeBackpressure:
		status = http.StatusTooManyRequests
		ra := ae.RetryAfterSec
		if ra < 1 {
			ra = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(ra))
	case CodeNotFound, CodeUnsupportedVersion:
		status = http.StatusNotFound
	case CodeConflict:
		status = http.StatusConflict
	case CodeShuttingDown:
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorBody{Error: ae})
}

// ServeHTTP routes the versioned API. Version negotiation is explicit:
// a path outside /v1/ gets a structured 404 naming the supported
// versions, never a silent fallback to a different behavior.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimSuffix(r.URL.Path, "/")
	if path == "" {
		writeJSON(w, http.StatusOK, VersionInfo{Version: APIVersion, Supported: []string{APIVersion}})
		return
	}
	rest, ok := strings.CutPrefix(path, "/"+APIVersion)
	if !ok || (rest != "" && rest[0] != '/') {
		writeErr(w, &APIError{Code: CodeUnsupportedVersion,
			Message: fmt.Sprintf("path %q is outside the supported API versions [%s]", r.URL.Path, APIVersion)})
		return
	}
	rest = strings.TrimPrefix(rest, "/")
	switch {
	case rest == "version" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, VersionInfo{Version: APIVersion, Supported: []string{APIVersion}})
	case rest == "jobs":
		s.jobs(w, r)
	case strings.HasPrefix(rest, "jobs/"):
		s.job(w, r, strings.TrimPrefix(rest, "jobs/"))
	default:
		writeErr(w, &APIError{Code: CodeNotFound, Message: fmt.Sprintf("no route %q under /%s", rest, APIVersion)})
	}
}

// jobs handles the collection: POST submit, GET list.
func (s *Server) jobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			writeErr(w, &APIError{Code: CodeInvalidSpec, Message: err.Error()})
			return
		}
		var spec naspipe.JobSpec
		dec := json.NewDecoder(strings.NewReader(string(body)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeErr(w, &APIError{Code: CodeInvalidSpec, Message: fmt.Sprintf("malformed JobSpec: %v", err)})
			return
		}
		st, err := s.sched.Submit(spec)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, st)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, JobList{Jobs: s.sched.List(r.URL.Query().Get("tenant"))})
	default:
		w.Header().Set("Allow", "GET, POST")
		writeErr(w, &APIError{Code: CodeNotFound, Message: fmt.Sprintf("method %s not supported on /%s/jobs", r.Method, APIVersion)})
	}
}

// job handles one job's subtree: status, cancel, resume, events,
// checkpoint.
func (s *Server) job(w http.ResponseWriter, r *http.Request, rest string) {
	id, verb, _ := strings.Cut(rest, "/")
	switch {
	case verb == "" && r.Method == http.MethodGet:
		st, err := s.sched.Get(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case verb == "cancel" && r.Method == http.MethodPost:
		st, err := s.sched.Cancel(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case verb == "resume" && r.Method == http.MethodPost:
		st, err := s.sched.Resume(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	case verb == "events" && r.Method == http.MethodGet:
		s.events(w, r, id)
	case verb == "checkpoint" && r.Method == http.MethodGet:
		path, err := s.sched.CheckpointFile(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		buf, rerr := os.ReadFile(path)
		if rerr != nil {
			writeErr(w, &APIError{Code: CodeInternal, Message: rerr.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(buf)
	default:
		writeErr(w, &APIError{Code: CodeNotFound,
			Message: fmt.Sprintf("no route %q for job %q (verbs: cancel, resume, events, checkpoint)", verb, id)})
	}
}

// events streams the job's telemetry as JSONL. Plain GET returns the
// events so far; ?follow=1 keeps the connection open, appending new
// events until the job reaches a terminal state. Ring-buffer overflow
// truncates the oldest events — consumers needing a complete stream
// should size the bus (SchedulerConfig.EventBufSize) for the job.
func (s *Server) events(w http.ResponseWriter, r *http.Request, id string) {
	follow := r.URL.Query().Get("follow") != ""
	evs, done, err := s.sched.Events(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if err := telemetry.WriteJSONL(w, evs); err != nil {
		return
	}
	if !follow || done == nil {
		return
	}
	flush(w)
	poll := s.followPoll
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	written := len(evs)
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		var final bool
		select {
		case <-r.Context().Done():
			return
		case <-done:
			final = true
		case <-tick.C:
		}
		evs, _, err := s.sched.Events(id)
		if err != nil {
			return
		}
		if len(evs) > written {
			if err := telemetry.WriteJSONL(w, evs[written:]); err != nil {
				return
			}
			written = len(evs)
			flush(w)
		}
		if final {
			return
		}
	}
}

func flush(w http.ResponseWriter) {
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}
