package naspipe

// Golden determinism tests: the reproducibility guarantees of this
// repository rest on every random stream, sampler, and numeric kernel
// being a stable pure function of its seeds. These tests pin exact
// values; if any of them changes, a code change has silently altered the
// meaning of every seed in every experiment. Update the constants only
// when such a break is intentional, and say so in the change description.

import (
	"testing"

	"naspipe/internal/data"
	"naspipe/internal/rng"
	"naspipe/internal/supernet"
	"naspipe/internal/train"
)

func TestGoldenRNGStream(t *testing.T) {
	r := rng.New(42)
	want := []uint64{1546998764402558742, 6990951692964543102, 12544586762248559009}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("rng.New(42) draw %d = %d, want %d", i, got, w)
		}
	}
	if got := rng.Labeled(42, "spos/NLP.c3").Uint64(); got != 15847984123533027439 {
		t.Fatalf("labeled stream changed: %d", got)
	}
}

func TestGoldenSPOSStream(t *testing.T) {
	sub := supernet.Sample(supernet.NLPc3, 42, 1)[0]
	want := []int{20, 9, 22, 18, 15, 21}
	for i, w := range want {
		if sub.Choices[i] != w {
			t.Fatalf("SPOS stream changed at block %d: %d want %d", i, sub.Choices[i], w)
		}
	}
}

func TestGoldenNumericTraining(t *testing.T) {
	sp := supernet.NLPc3.Scaled(5, 3)
	cfg := train.Config{Space: sp, Dim: 6, Seed: 42, BatchSize: 2, LR: 0.05, Dataset: data.WNMT}
	if got := supernet.BuildNumeric(sp, 6, 42).Checksum(); got != 0x0d1b21c3687f62b0 {
		t.Fatalf("weight initialization changed: %016x", got)
	}
	res := train.Sequential(cfg, supernet.Sample(sp, 42, 10))
	if res.Checksum != 0x0ebb8e881d81d367 {
		t.Fatalf("sequential training result changed: %016x", res.Checksum)
	}
}
