// Package obs is the service-wide metrics plane: a dependency-free
// (standard-library-only) metrics registry that every other plane —
// the naspiped HTTP layer, the job scheduler, the supervision state
// machine, and the telemetry bus — publishes into, so one Prometheus
// scrape (prom.go) accounts for the whole system.
//
// Design constraints, in the same order as the telemetry bus's:
//
//  1. Disabled means free. The nil *Registry is the disabled registry:
//     every constructor on it returns a nil instrument, and every
//     operation on a nil instrument is a no-op that allocates nothing
//     (pinned by an AllocsPerRun test). Call sites therefore carry
//     metric updates unconditionally.
//  2. The hot path is allocation-free. Add/Inc/Set/Observe on a
//     resolved instrument are atomic operations with no allocation and
//     no lock. Resolving a labeled series (Vec.With) takes the family
//     lock and may allocate on first use — resolve once and keep the
//     handle on hot paths.
//  3. Race-clean by construction. Values are atomics (float64 bits via
//     CAS); the registry and each family are guarded by mutexes with
//     O(1)/O(labels) critical sections. Exposition takes a consistent
//     snapshot without stopping writers.
//
// Metric names follow the repo convention naspipe_<plane>_<name>[_unit]
// (plane ∈ {service, sched, supervise, telemetry}); counters end in
// _total and duration histograms in _seconds. A lint-style test in
// internal/service enforces the convention over every name the daemon
// registers. Registration panics on an invalid or duplicate name —
// both are programmer errors, caught by the first test that touches
// the plane.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type, in Prometheus TYPE-line vocabulary.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// value is an atomically-updated float64 (stored as bits). Additions go
// through a CAS loop so concurrent Add calls never lose updates.
type value struct{ bits atomic.Uint64 }

func (v *value) add(d float64) {
	for {
		old := v.bits.Load()
		if v.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

func (v *value) set(f float64) { v.bits.Store(math.Float64bits(f)) }
func (v *value) get() float64  { return math.Float64frombits(v.bits.Load()) }

// Counter is a monotonically increasing value. The nil *Counter is the
// disabled instrument; every method on it is a nil-safe no-op.
type Counter struct{ v value }

// Add increases the counter. Negative deltas are ignored (counters are
// monotone by contract). Nil-safe, allocation-free.
func (c *Counter) Add(d float64) {
	if c == nil || d < 0 {
		return
	}
	c.v.add(d)
}

// Inc adds one. Nil-safe, allocation-free.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count. Nil-safe (0).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.get()
}

// Gauge is a value that can go up and down. The nil *Gauge is the
// disabled instrument.
type Gauge struct{ v value }

// Set replaces the gauge value. Nil-safe, allocation-free.
func (g *Gauge) Set(f float64) {
	if g == nil {
		return
	}
	g.v.set(f)
}

// Add moves the gauge by d (negative to decrease). Nil-safe,
// allocation-free.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.v.add(d)
}

// Inc adds one; Dec subtracts one. Nil-safe.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the gauge. Nil-safe (0).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.get()
}

// DefBuckets is the default histogram bucketing: latency-oriented
// upper bounds in seconds, from 1ms to 10s.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets (cumulative at
// exposition time, per-bucket internally) and tracks their sum. The
// nil *Histogram is the disabled instrument. Observe is lock-free and
// allocation-free: a linear scan over the (small, fixed) bound slice,
// one atomic increment, one CAS add.
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    value
}

// Observe records one value. Nil-safe, allocation-free.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations. Nil-safe (0).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observations. Nil-safe (0).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.get()
}

// Quantile estimates the p-quantile (0 < p <= 1) as the upper bound of
// the bucket the quantile falls in — the standard fixed-bucket
// estimator, biased high by at most one bucket width. Observations in
// the +Inf bucket report the largest finite bound. Returns -1 with no
// observations. Nil-safe (-1).
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return -1
	}
	total := h.Count()
	if total == 0 {
		return -1
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1] // +Inf bucket: clamp to last finite bound
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// series is one (label values → instrument) entry of a family.
type series struct {
	labelVals []string
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
}

// family is one registered metric name: its metadata plus every labeled
// series under it.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64      // histograms only
	fn     func() float64 // Func metrics: evaluated at scrape time

	mu     sync.Mutex
	series map[string]*series
}

// seriesKey joins label values with a separator no valid UTF-8 label
// value produces, so distinct value tuples never collide.
func seriesKey(vals []string) string { return strings.Join(vals, "\xff") }

// get resolves (creating on first use) the series for the given label
// values.
func (f *family) get(vals []string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := seriesKey(vals)
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelVals: append([]string(nil), vals...)}
	switch f.kind {
	case KindCounter:
		s.counter = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		s.hist = &Histogram{
			bounds: f.bounds,
			counts: make([]atomic.Uint64, len(f.bounds)+1),
		}
	}
	f.series[key] = s
	return s
}

// Registry holds every registered metric family. Construct with New;
// the nil *Registry is the disabled registry (all constructors return
// nil instruments, exposition writes nothing). Safe for concurrent use.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// New returns an enabled, empty registry.
func New() *Registry { return &Registry{fams: make(map[string]*family)} }

// Enabled reports whether metrics go anywhere. Nil-safe.
func (r *Registry) Enabled() bool { return r != nil }

// register validates and installs a family; panics on an invalid or
// duplicate name (programmer error).
func (r *Registry) register(f *family) *family {
	if !nameRe.MatchString(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !labelRe.MatchString(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l, f.name))
		}
	}
	if f.kind == KindHistogram {
		for i := 1; i < len(f.bounds); i++ {
			if f.bounds[i] <= f.bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing: %v", f.name, f.bounds))
			}
		}
		if len(f.bounds) == 0 {
			panic(fmt.Sprintf("obs: histogram %q needs at least one finite bucket", f.name))
		}
	}
	f.series = make(map[string]*series)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[f.name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", f.name))
	}
	r.fams[f.name] = f
	return f
}

// Counter registers an unlabeled counter. Nil-safe (nil instrument).
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.register(&family{name: name, help: help, kind: KindCounter})
	return f.get(nil).counter
}

// Gauge registers an unlabeled gauge. Nil-safe (nil instrument).
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.register(&family{name: name, help: help, kind: KindGauge})
	return f.get(nil).gauge
}

// Histogram registers an unlabeled histogram with the given bucket
// upper bounds (nil selects DefBuckets; +Inf is implicit). Nil-safe.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	f := r.register(&family{name: name, help: help, kind: KindHistogram, bounds: bounds})
	return f.get(nil).hist
}

// CounterVec is a counter family partitioned by labels. The nil
// *CounterVec is disabled: With returns a nil *Counter.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family. Nil-safe.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: CounterVec %q needs at least one label (use Counter)", name))
	}
	return &CounterVec{f: r.register(&family{name: name, help: help, kind: KindCounter, labels: labels})}
}

// With resolves the series for the given label values (one per label,
// in registration order). Takes the family lock; resolve once and keep
// the handle on hot paths. Nil-safe (nil instrument).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	v.f.checkArity(values)
	return v.f.get(values).counter
}

// GaugeVec is a gauge family partitioned by labels; nil is disabled.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family. Nil-safe.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: GaugeVec %q needs at least one label (use Gauge)", name))
	}
	return &GaugeVec{f: r.register(&family{name: name, help: help, kind: KindGauge, labels: labels})}
}

// With resolves the series for the given label values. Nil-safe.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	v.f.checkArity(values)
	return v.f.get(values).gauge
}

func (f *family) checkArity(values []string) {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q takes %d label values (%v), got %d",
			f.name, len(f.labels), f.labels, len(values)))
	}
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// for state someone else already owns (queue depth, EWMA, live bus
// counters) where mirroring into a stored gauge would race or drift.
// fn is called with no registry locks held. Nil-safe.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&family{name: name, help: help, kind: KindGauge, fn: fn})
}

// CounterFunc registers a counter whose value is computed at scrape
// time; fn must be monotone (the caller's contract). Nil-safe.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&family{name: name, help: help, kind: KindCounter, fn: fn})
}

// FamilyInfo is one registered family's metadata, for the naming-
// convention lint test and the exposition tests.
type FamilyInfo struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []string
}

// Families lists every registered family's metadata, sorted by name.
// Nil-safe (nil).
func (r *Registry) Families() []FamilyInfo {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]FamilyInfo, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, FamilyInfo{Name: f.name, Help: f.help, Kind: f.kind, Labels: f.labels})
	}
	r.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Names lists every registered metric name, sorted. Nil-safe (nil).
func (r *Registry) Names() []string {
	fams := r.Families()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = f.Name
	}
	return out
}
