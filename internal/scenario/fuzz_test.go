package scenario

import (
	"testing"

	"naspipe"
)

// FuzzScenarioParse mirrors the root package's FuzzJobSpecJSON on the
// scenario surface: whatever Parse accepts must Encode, re-Parse, and
// re-Encode to identical bytes (Parse∘Encode is a fixed point), and the
// second pass must stay accepted. Rejections must be structured — a
// spec error naming a field, or a decode/trailing-data error — never a
// panic.
func FuzzScenarioParse(f *testing.F) {
	if b, err := Encode(validScenario()); err == nil {
		f.Add(string(b))
	}
	f.Add(`{"name":"calm","world":{"gpus":4},"workload":{"space":"NLP.c3","subnets":12,"seed":7}}`)
	f.Add(`{"name":"storm","world":{"gpus":4,"stage_speeds":[1,3,1,2],"jitter":0.2},` +
		`"workload":{"space":"NLP.c3","scale_blocks":8,"scale_choices":3,"subnets":18,"seed":7,"cache_factor":1.5,"predictor":true},` +
		`"storm":{"faults":"seed=5,crashat=1:2:9:F,drop=0.05","supervise":{"max_restarts":10}},` +
		`"expect":{"restarts":1}}`)
	f.Add(`{"name":"multi","world":{"gpus":2},` +
		`"workload":{"space":"NLP.c1","subnets":8,"seed":3,"arrival":"staggered",` +
		`"jobs":[{"tenant":"a","delay_ms":5},{"tenant":"b","subnets":4,"faults":"seed=2,crashat=1:1:3:F"}]}}`)
	f.Add(`{"scenario_version":"v1","name":"x","world":{"gpus":1},"workload":{"space":"NLP.c1","subnets":1,"seed":0}}`)
	f.Add(`{"name":"BAD NAME","world":{"gpus":4},"workload":{"space":"NLP.c3","subnets":12,"seed":7}}`)
	f.Fuzz(func(t *testing.T, raw string) {
		s, err := Parse([]byte(raw))
		if err != nil {
			return // structured rejection; nothing more to hold
		}
		first, err := Encode(s)
		if err != nil {
			t.Fatalf("accepted scenario failed to encode: %v\n%+v", err, s)
		}
		again, err := Parse(first)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\nbytes: %s", err, first)
		}
		second, err := Encode(again)
		if err != nil {
			t.Fatalf("second encode: %v", err)
		}
		if string(first) != string(second) {
			t.Fatalf("Parse∘Encode is not a fixed point:\n first  %s\n second %s", first, second)
		}
	})
}

// TestSpecErrorsAreStructured pins the rejection contract the fuzzer
// relies on: every invariant rejection unwraps to the shared spec-error
// type with a non-empty field.
func TestSpecErrorsAreStructured(t *testing.T) {
	bad := []string{
		`{"name":"x","world":{"gpus":0},"workload":{"space":"NLP.c1","subnets":4,"seed":1}}`,
		`{"name":"x","world":{"gpus":2},"workload":{"space":"nope","subnets":4,"seed":1}}`,
		`{"name":"x","world":{"gpus":2},"workload":{"space":"NLP.c1","subnets":4,"seed":1},"storm":{"faults":"zig"}}`,
	}
	for _, raw := range bad {
		_, err := Parse([]byte(raw))
		if err == nil {
			t.Fatalf("accepted: %s", raw)
		}
		if naspipe.SpecField(err) == "" {
			t.Fatalf("rejection of %s is not a structured spec error: %v", raw, err)
		}
	}
}
