// Command naspipe-stage is one stage worker of the distributed
// execution plane: it dials the coordinator, introduces itself with a
// Hello, waits for its stage assignment, runs its slice of the
// pipeline over the fault-tolerant transport link, and reports its
// observed trace back for the global merge verification.
//
// Operators rarely run it by hand — `naspiped dist` launches one per
// stage and relaunches the fleet after any death — but it is a plain
// binary on purpose: kill -9 one mid-run and watch the coordinator
// notice, tear down, and resume from the committed cursor.
//
// Usage:
//
//	naspipe-stage -addr 127.0.0.1:7420 -run r1 -stage 2 -incarnation 0
//
// Exit codes follow the naspipe contract:
//
//	0 — stage ran to completion and the coordinator released it
//	1 — engine or transport failure
//	2 — usage error
//	3 — resumable: coordinator abort (fleet teardown before a
//	    relaunch) or an injected crash the coordinator will resume
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"naspipe"
	"naspipe/internal/distrib"
)

func main() {
	os.Exit(int(run()))
}

func run() naspipe.ExitCode {
	var (
		addr        = flag.String("addr", "", "coordinator address to dial (required)")
		runID       = flag.String("run", "", "run ID to join; must match the coordinator's (required)")
		stage       = flag.Int("stage", -1, "pipeline stage this worker owns (required)")
		incarnation = flag.Int("incarnation", 0, "fleet incarnation this worker belongs to")
		heartbeat   = flag.Duration("heartbeat", 0, "liveness beacon period (0 = worker default)")
		quiet       = flag.Bool("quiet", false, "suppress per-event worker logging")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "naspipe-stage: unexpected arguments %v\n", flag.Args())
		return naspipe.ExitUsage
	}
	if *addr == "" || *runID == "" || *stage < 0 {
		fmt.Fprintln(os.Stderr, "naspipe-stage: -addr, -run, and -stage are required")
		return naspipe.ExitUsage
	}

	wc := distrib.WorkerConfig{
		Addr: *addr, RunID: *runID,
		Stage: *stage, Incarnation: *incarnation,
		HeartbeatEvery: *heartbeat,
	}
	if !*quiet {
		start := time.Now()
		wc.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[%7.3fs] "+format+"\n",
				append([]any{time.Since(start).Seconds()}, args...)...)
		}
	}

	// No SIGINT/SIGTERM handler on purpose: a stage worker's death is
	// always abrupt from the coordinator's point of view — the drill
	// this plane exists for is kill -9, which no handler survives.
	err := distrib.RunWorker(context.Background(), wc)
	switch {
	case err == nil:
		return naspipe.ExitOK
	case distrib.Aborted(err):
		fmt.Fprintf(os.Stderr, "naspipe-stage: %v\n", err)
		return naspipe.ExitResumable
	default:
		var crash *naspipe.CrashError
		if errors.As(err, &crash) {
			fmt.Fprintf(os.Stderr, "naspipe-stage: injected crash: %v\n", err)
			return naspipe.ExitResumable
		}
		fmt.Fprintf(os.Stderr, "naspipe-stage: %v\n", err)
		return naspipe.ExitFailure
	}
}
