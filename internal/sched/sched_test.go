package sched

import (
	"testing"

	"naspipe/internal/cluster"
	"naspipe/internal/engine"
	"naspipe/internal/partition"
	"naspipe/internal/supernet"
)

func world(t *testing.T, space supernet.Space, d, n int, mode engine.PartitionMode) *engine.World {
	t.Helper()
	// Build a world the way the engine does, via a tiny throwaway run; the
	// policy Init contract only needs the structural fields, so construct
	// directly.
	net := supernet.Build(space)
	subs := supernet.Sample(space, 1, n)
	home := partition.Static(net, d)
	w := &engine.World{
		Space: space, Net: net, Spec: cluster.Default(d), D: d,
		Subnets: subs, Home: home,
	}
	parts := make([]partition.Partition, n)
	for i, sub := range subs {
		if mode == engine.PartitionBalanced {
			parts[i] = partition.BalancedForSubnet(net, sub, d)
		} else {
			parts[i] = home
		}
	}
	w.Parts = parts
	w.BuildIndexes()
	return w
}

func TestCatalogCoversAllPolicies(t *testing.T) {
	want := []string{"gpipe", "naspipe", "naspipe-nomirroring", "naspipe-nopredictor",
		"naspipe-noscheduler", "pipedream", "sequential", "vpipe"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestTraitsMatchPaperConfigurations(t *testing.T) {
	cases := []struct {
		name         string
		reproducible bool
		partition    engine.PartitionMode
		cacheFactor  float64
		stash        float64
	}{
		{"naspipe", true, engine.PartitionBalanced, 3, 1},
		{"gpipe", false, engine.PartitionStatic, 0, 1},
		{"pipedream", false, engine.PartitionStatic, 0, 2},
		{"vpipe", false, engine.PartitionStatic, 1.2, 1},
		{"sequential", true, engine.PartitionBalanced, 3, 1},
		{"naspipe-nopredictor", true, engine.PartitionBalanced, 0, 1},
		{"naspipe-nomirroring", true, engine.PartitionStatic, 3, 1},
		{"naspipe-noscheduler", true, engine.PartitionBalanced, 3, 1},
	}
	for _, c := range cases {
		p, err := New(c.name)
		if err != nil {
			t.Fatal(err)
		}
		tr := p.Traits()
		if tr.Reproducible != c.reproducible {
			t.Errorf("%s: Reproducible = %v", c.name, tr.Reproducible)
		}
		if tr.Partition != c.partition {
			t.Errorf("%s: Partition = %v", c.name, tr.Partition)
		}
		if tr.CacheFactor != c.cacheFactor {
			t.Errorf("%s: CacheFactor = %v", c.name, tr.CacheFactor)
		}
		if tr.ActStashFactor != c.stash {
			t.Errorf("%s: ActStashFactor = %v", c.name, tr.ActStashFactor)
		}
	}
}

func TestNASPipeBackwardPriorityLowestSeq(t *testing.T) {
	p := NewNASPipe()
	p.Init(world(t, supernet.CVc3, 2, 8, engine.PartitionBalanced))
	if got := p.SelectBackward(0, []int{5, 2, 7}, 0); got != 1 {
		t.Fatalf("SelectBackward picked index %d, want 1 (seq 2)", got)
	}
	if got := p.SelectBackward(0, nil, 0); got != -1 {
		t.Fatal("empty ready must return -1")
	}
}

func TestNASPipeForwardSkipsBlocked(t *testing.T) {
	w := world(t, supernet.CVc3.Scaled(4, 1), 2, 4, engine.PartitionBalanced)
	// One choice per block: every subnet shares every layer; strict chain.
	p := NewNASPipe()
	p.Init(w)
	// Subnet 0 unfinished: 1..3 all blocked; only 0 schedulable.
	if got := p.SelectForward(0, []int{1, 2, 3}, 0); got != -1 {
		t.Fatalf("expected all blocked, got %d", got)
	}
	if got := p.SelectForward(0, []int{0, 1, 2}, 0); got != 0 {
		t.Fatalf("subnet 0 should be schedulable, got %d", got)
	}
}

func TestNASPipeNoReorderStallsAtHead(t *testing.T) {
	w := world(t, supernet.CVc3.Scaled(4, 2), 2, 8, engine.PartitionBalanced)
	opts := DefaultNASPipeOptions()
	opts.Reorder = false
	p := NewNASPipeWith("test", opts)
	p.Init(w)
	// Find a queue whose head is blocked but a later entry is not: subnet
	// 1 blocked iff it shares with 0. With 2 choices over 4 blocks it
	// almost surely shares. A reordering policy would skip it; this one
	// must return -1.
	full := NewNASPipe()
	full.Init(w)
	queue := []int{1, 2, 3, 4}
	if fullIdx := full.SelectForward(0, queue, 0); fullIdx > 0 {
		if got := p.SelectForward(0, queue, 0); got != -1 {
			t.Fatalf("no-reorder policy advanced index %d past blocked head", got)
		}
	}
}

func TestNASPipeWriteBroadcastUnblocks(t *testing.T) {
	w := world(t, supernet.CVc3.Scaled(3, 1), 2, 3, engine.PartitionBalanced)
	p := NewNASPipe()
	p.Init(w)
	if got := p.SelectForward(0, []int{1}, 0); got != -1 {
		t.Fatal("subnet 1 should start blocked")
	}
	// Subnet 0's backward completes on both stages, then flushes at 0.
	p.OnBackwardDone(1, 0, 1)
	p.OnBackwardDone(0, 0, 2)
	if got := p.SelectForward(0, []int{1}, 3); got != 0 {
		t.Fatal("subnet 1 should unblock after subnet 0's writes")
	}
}

func TestGPipeBulkBarrier(t *testing.T) {
	w := world(t, supernet.CVc3, 2, 6, engine.PartitionStatic)
	p := NewGPipe()
	p.Init(w)
	// Bulk size = D = 2. Forwards 0,1 admitted; 2 must wait for the flush.
	if got := p.SelectForward(0, []int{0, 1, 2}, 0); got != 0 {
		t.Fatal("first bulk forward refused")
	}
	if got := p.SelectForward(0, []int{2, 3}, 0); got != -1 {
		t.Fatal("second bulk admitted before flush")
	}
	// Finish bulk 0 at stage 0 (backwards flush).
	p.OnBackwardDone(0, 0, 1)
	p.OnBackwardDone(0, 1, 1)
	if got := p.SelectForward(0, []int{2, 3}, 2); got != 0 {
		t.Fatal("second bulk refused after flush")
	}
}

func TestGPipeLastStageHoldsBackwards(t *testing.T) {
	w := world(t, supernet.CVc3, 2, 4, engine.PartitionStatic)
	p := NewGPipe()
	p.Init(w)
	last := 1
	// Only one of the bulk's two forwards has reached the last stage.
	p.OnForwardDone(last, 0, 1)
	if got := p.SelectBackward(last, []int{0}, 1); got != -1 {
		t.Fatal("backward released before bulk synchronous turn")
	}
	p.OnForwardDone(last, 1, 2)
	// Reverse order: highest sequence first.
	if got := p.SelectBackward(last, []int{0, 1}, 2); got != 1 {
		t.Fatalf("expected reverse-order release (index 1), got %d", got)
	}
}

func TestPipeDreamInflightCap(t *testing.T) {
	w := world(t, supernet.CVc3, 4, 12, engine.PartitionStatic)
	p := NewPipeDream()
	p.Init(w)
	// Stage 0 budget = D = 4 forwards outstanding.
	for i := 0; i < 4; i++ {
		if got := p.SelectForward(0, []int{i}, 0); got != 0 {
			t.Fatalf("forward %d refused under budget", i)
		}
	}
	if got := p.SelectForward(0, []int{4}, 0); got != -1 {
		t.Fatal("forward admitted beyond 1F1B budget")
	}
	p.OnBackwardDone(0, 0, 1)
	if got := p.SelectForward(0, []int{4}, 1); got != 0 {
		t.Fatal("forward refused after budget returned")
	}
}

func TestSequentialOneAtATime(t *testing.T) {
	p := NewSequential()
	if got := p.SelectForward(0, []int{0, 1}, 0); got != 0 {
		t.Fatal("first subnet refused")
	}
	if got := p.SelectForward(0, []int{1}, 0); got != -1 {
		t.Fatal("second subnet admitted while first in flight")
	}
	p.OnBackwardDone(0, 0, 1)
	if got := p.SelectForward(0, []int{1}, 1); got != 0 {
		t.Fatal("second subnet refused after first completed")
	}
}
