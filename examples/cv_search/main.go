// CV convergence comparison: the paper's Figure-4 claim at example scale.
// An AmoebaNet-style image search space (CV.c2) is trained three times on
// identical data and seeds, differing only in the parallel schedule:
// CSP (NASPipe), BSP (GPipe), and ASP (PipeDream). CSP matches sequential
// semantics exactly; the baselines read stale parameters and converge to
// different (typically worse) supernets.
//
//	go run ./examples/cv_search
package main

import (
	"fmt"
	"log"

	"naspipe"
)

func main() {
	sp := naspipe.CVc2.Scaled(10, 3)
	const steps = 200
	cfg := naspipe.TrainConfig{Space: sp, Dim: 12, Seed: 11, BatchSize: 4, LR: 0.05, Dataset: 1 /* ImageNet-like */}
	subs := naspipe.SampleSubnets(sp, 11, steps)

	// The sequential reference defines the "correct" training result.
	ref := naspipe.TrainSequential(cfg, subs)
	probe := naspipe.SampleSubnets(sp, 999, 5)

	valLoss := func(net *naspipe.Numeric) float64 {
		var sum float64
		for _, p := range probe {
			sum += naspipe.Evaluate(cfg, net, p, 2)
		}
		return sum / float64(len(probe))
	}
	fmt.Printf("space %s, %d training steps, 8 simulated GPUs\n\n", sp.Name, steps)
	fmt.Printf("%-22s val-loss=%.4f  top5-proxy=%.2f  checksum=%016x\n",
		"sequential reference", valLoss(ref.Net), naspipe.Score(sp, valLoss(ref.Net)), ref.Checksum)

	for _, policy := range []string{"naspipe", "gpipe", "pipedream"} {
		run, err := naspipe.RunPolicy(naspipe.Config{
			Space: sp, Spec: naspipe.DefaultCluster(8), Seed: 11,
			NumSubnets: steps, RecordTrace: true,
		}, policy)
		if err != nil {
			log.Fatal(err)
		}
		trained, err := naspipe.TrainReplay(cfg, subs, run.Trace)
		if err != nil {
			log.Fatal(err)
		}
		match := ""
		if trained.Checksum == ref.Checksum {
			match = "  == sequential, bitwise"
		}
		vl := valLoss(trained.Net)
		fmt.Printf("%-22s val-loss=%.4f  top5-proxy=%.2f  checksum=%016x%s\n",
			run.Policy, vl, naspipe.Score(sp, vl), trained.Checksum, match)
	}
}
