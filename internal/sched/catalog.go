package sched

import (
	"fmt"
	"sort"

	"naspipe/internal/engine"
)

// catalog maps canonical policy names to fresh-instance constructors.
// Policies are stateful, so every run needs a new instance.
var catalog = map[string]func() engine.Policy{
	"naspipe":    func() engine.Policy { return NewNASPipe() },
	"gpipe":      func() engine.Policy { return NewGPipe() },
	"pipedream":  func() engine.Policy { return NewPipeDream() },
	"vpipe":      func() engine.Policy { return NewVPipe() },
	"sequential": func() engine.Policy { return NewSequential() },
	"naspipe-noscheduler": func() engine.Policy {
		o := DefaultNASPipeOptions()
		o.Reorder = false
		return NewNASPipeWith("NASPipe w/o scheduler", o)
	},
	"naspipe-nopredictor": func() engine.Policy {
		o := DefaultNASPipeOptions()
		o.Predictor = false
		return NewNASPipeWith("NASPipe w/o predictor", o)
	},
	"naspipe-nomirroring": func() engine.Policy {
		o := DefaultNASPipeOptions()
		o.Mirroring = false
		return NewNASPipeWith("NASPipe w/o mirroring", o)
	},
}

// New returns a fresh policy instance by canonical name.
func New(name string) (engine.Policy, error) {
	ctor, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown policy %q (known: %v)", name, Names())
	}
	return ctor(), nil
}

// Names lists the canonical policy names, sorted.
func Names() []string {
	out := make([]string, 0, len(catalog))
	for n := range catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
