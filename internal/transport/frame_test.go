package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"naspipe/internal/supernet"
)

func TestFrameRoundTrip(t *testing.T) {
	checkLeaks(t)
	frames := []Frame{
		{Type: FrameFwd, From: 0, To: 1, Seq: 7, Payload: Task{Seq: 12}.Encode()},
		{Type: FrameNote, From: 3, To: Broadcast, Seq: 9001, Payload: Note{Seq: 4, Finished: true, IDs: layerIDs(5)}.Encode()},
		{Type: FrameHello, From: 2, To: Coordinator, Payload: Hello{RunID: "r1", Stage: 2, Incarnation: 3}.Encode()},
		{Type: FrameAck, From: Coordinator, To: 1, Seq: 42},
	}
	var wire []byte
	for _, f := range frames {
		wire = AppendFrame(wire, f)
	}
	// Streamed parse: every frame comes back exactly.
	rest := wire
	for i, want := range frames {
		got, n, err := ParseFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if n != want.EncodedLen() {
			t.Fatalf("frame %d consumed %d bytes, want %d", i, n, want.EncodedLen())
		}
		if got.Type != want.Type || got.From != want.From || got.To != want.To ||
			got.Seq != want.Seq || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d round trip:\n got %+v\nwant %+v", i, got, want)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after all frames", len(rest))
	}
	// Reader path sees the same stream.
	r := bytes.NewReader(wire)
	for i, want := range frames {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Seq != want.Seq {
			t.Fatalf("ReadFrame %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("ReadFrame at EOF: %v", err)
	}
}

func layerIDs(n int) []supernet.LayerID {
	ids := make([]supernet.LayerID, n)
	for i := range ids {
		ids[i] = supernet.LayerID(i * 3)
	}
	return ids
}

func TestParseFrameIncompleteNeedsMore(t *testing.T) {
	checkLeaks(t)
	full := AppendFrame(nil, Frame{Type: FrameFwd, From: 1, To: 2, Seq: 5, Payload: []byte("abc")})
	for cut := 0; cut < len(full); cut++ {
		f, n, err := ParseFrame(full[:cut])
		if err != nil || n != 0 || f.Type != 0 {
			t.Fatalf("prefix of %d bytes: got (%+v, %d, %v), want incomplete", cut, f, n, err)
		}
	}
}

func TestParseFrameCorruptionIsStructured(t *testing.T) {
	checkLeaks(t)
	good := AppendFrame(nil, Frame{Type: FrameBwd, From: 2, To: 1, Seq: 8, Payload: []byte{1, 2, 3, 4}})
	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"bad magic":    corrupt(func(b []byte) { b[4] = 0xFF }),
		"bad version":  corrupt(func(b []byte) { b[6] = 99 }),
		"zero type":    corrupt(func(b []byte) { b[7] = 0 }),
		"unknown type": corrupt(func(b []byte) { b[7] = byte(frameTypeCount) }),
		"short length": corrupt(func(b []byte) { binary.BigEndian.PutUint32(b, 3) }),
		"giant length": corrupt(func(b []byte) { binary.BigEndian.PutUint32(b, MaxFrame+1) }),
	}
	for name, wire := range cases {
		_, _, err := ParseFrame(wire)
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Errorf("%s: ParseFrame error = %v, want *DecodeError", name, err)
		}
		if _, err := ReadFrame(bytes.NewReader(wire)); err == nil {
			t.Errorf("%s: ReadFrame accepted the corrupt frame", name)
		}
	}
}

// FuzzFrameDecode holds the codec to its contract: decoding never
// panics, structurally-bad input yields a *DecodeError, and anything
// that decodes re-encodes to the identical bytes (decode∘encode is a
// fixed point).
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Type: FrameFwd, From: 0, To: 1, Seq: 3, Payload: Task{Seq: 9}.Encode()}))
	f.Add(AppendFrame(nil, Frame{Type: FrameAck, From: 1, To: 0, Seq: 77}))
	f.Add(AppendFrame(nil, Frame{Type: FrameCut, From: 0, To: Coordinator, Seq: 1, Payload: []byte{0, 0, 0}}))
	f.Add([]byte{0, 0, 0, 16, 0x4E, 0x50, 1, 0xFF})
	f.Add([]byte("not a frame at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := ParseFrame(data)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("non-structured decode error %T: %v", err, err)
			}
			return
		}
		if n == 0 {
			return // incomplete prefix
		}
		if got := AppendFrame(nil, fr); !bytes.Equal(got, data[:n]) {
			t.Fatalf("decode∘encode not a fixed point:\n in  %x\n out %x", data[:n], got)
		}
		// Data-plane frames must also survive the Msg layer without
		// panicking; malformed payloads surface as structured errors.
		if m, err := MsgFromFrame(fr); err == nil {
			rt := m.Frame()
			if !bytes.Equal(rt.Payload, fr.Payload) {
				t.Fatalf("msg payload round trip: in %x out %x", fr.Payload, rt.Payload)
			}
		} else {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("MsgFromFrame non-structured error %T: %v", err, err)
			}
		}
	})
}
