// Package partition computes pipeline partitions of subnets across GPUs.
//
// NASPipe partitions every subnet into D contiguous stages with roughly
// equal execution time, according to pre-profiled statistics of each layer
// (§3.2). Because each subnet selects different layers, its balanced
// partition boundary generally differs from the supernet's static block
// partition; NASPipe resolves this with layer mirroring (§4.2) rather than
// operator migration. Baselines that lack mirroring (VPipe, the
// w/o-mirroring ablation) run every subnet on the static partition and pay
// the imbalance.
package partition

import (
	"fmt"

	"naspipe/internal/supernet"
)

// Partition assigns m contiguous blocks to D stages. Stage k owns blocks
// [Bounds[k], Bounds[k+1]); Bounds has length D+1 with Bounds[0]=0 and
// Bounds[D]=m. Empty stages are legal when D exceeds m.
type Partition struct {
	D      int
	Bounds []int
}

// Validate checks structural invariants against a block count m.
func (p Partition) Validate(m int) error {
	if p.D <= 0 {
		return fmt.Errorf("partition: non-positive stage count %d", p.D)
	}
	if len(p.Bounds) != p.D+1 {
		return fmt.Errorf("partition: bounds length %d, want %d", len(p.Bounds), p.D+1)
	}
	if p.Bounds[0] != 0 || p.Bounds[p.D] != m {
		return fmt.Errorf("partition: bounds must span [0,%d], got [%d,%d]", m, p.Bounds[0], p.Bounds[p.D])
	}
	for k := 0; k < p.D; k++ {
		if p.Bounds[k] > p.Bounds[k+1] {
			return fmt.Errorf("partition: bounds not monotone at stage %d", k)
		}
	}
	return nil
}

// StageOf returns the stage owning the block.
func (p Partition) StageOf(block int) int {
	for k := 0; k < p.D; k++ {
		if block >= p.Bounds[k] && block < p.Bounds[k+1] {
			return k
		}
	}
	panic(fmt.Sprintf("partition: block %d outside bounds %v", block, p.Bounds))
}

// Blocks returns the half-open block range [lo, hi) of a stage.
func (p Partition) Blocks(stage int) (lo, hi int) {
	return p.Bounds[stage], p.Bounds[stage+1]
}

// StageCosts sums per-block costs within each stage.
func StageCosts(costs []float64, p Partition) []float64 {
	out := make([]float64, p.D)
	for k := 0; k < p.D; k++ {
		for b := p.Bounds[k]; b < p.Bounds[k+1]; b++ {
			out[k] += costs[b]
		}
	}
	return out
}

// MaxStageCost returns the bottleneck stage cost — the pipeline's steady
// state step time.
func MaxStageCost(costs []float64, p Partition) float64 {
	var max float64
	for _, c := range StageCosts(costs, p) {
		if c > max {
			max = c
		}
	}
	return max
}

// Balanced computes the contiguous D-partition of the given per-block
// costs minimizing the maximum stage cost, by dynamic programming. Ties
// are broken toward the smallest boundary index, so the result is a pure
// function of (costs, d).
func Balanced(costs []float64, d int) Partition {
	m := len(costs)
	if d <= 0 {
		panic("partition: non-positive stage count")
	}
	if m == 0 {
		b := make([]int, d+1)
		return Partition{D: d, Bounds: b}
	}
	// prefix[i] = sum(costs[0:i]).
	prefix := make([]float64, m+1)
	for i, c := range costs {
		prefix[i+1] = prefix[i] + c
	}
	rangeSum := func(lo, hi int) float64 { return prefix[hi] - prefix[lo] }

	// dp[k][i]: minimal bottleneck splitting the first i blocks into k
	// stages. cut[k][i]: the chosen last boundary.
	const inf = 1e300
	dp := make([][]float64, d+1)
	cut := make([][]int, d+1)
	for k := range dp {
		dp[k] = make([]float64, m+1)
		cut[k] = make([]int, m+1)
		for i := range dp[k] {
			dp[k][i] = inf
		}
	}
	dp[0][0] = 0
	for k := 1; k <= d; k++ {
		for i := 0; i <= m; i++ {
			for j := 0; j <= i; j++ {
				if dp[k-1][j] >= inf {
					continue
				}
				cand := dp[k-1][j]
				if s := rangeSum(j, i); s > cand {
					cand = s
				}
				if cand < dp[k][i] {
					dp[k][i] = cand
					cut[k][i] = j
				}
			}
		}
	}
	bounds := make([]int, d+1)
	bounds[d] = m
	for k := d; k >= 1; k-- {
		bounds[k-1] = cut[k][bounds[k]]
	}
	return Partition{D: d, Bounds: bounds}
}

// SubnetCosts returns the per-block fwd+bwd compute cost of the subnet's
// chosen layers.
func SubnetCosts(sn *supernet.Supernet, sub supernet.Subnet) []float64 {
	out := make([]float64, len(sub.Choices))
	for b, m := range sn.Layers(sub) {
		out[b] = m.FwdMs + m.BwdMs
	}
	return out
}

// BlockAverageCosts returns, per block, the mean fwd+bwd cost over the
// block's candidates. This is the statistic a static partitioner (VPipe,
// w/o-mirroring) balances, since it cannot know which candidate each
// subnet will pick.
func BlockAverageCosts(sn *supernet.Supernet) []float64 {
	sp := sn.Space
	out := make([]float64, sp.Blocks)
	for b := 0; b < sp.Blocks; b++ {
		var sum float64
		for c := 0; c < sp.Choices; c++ {
			m := sn.Layer(b, c)
			sum += m.FwdMs + m.BwdMs
		}
		out[b] = sum / float64(sp.Choices)
	}
	return out
}

// Static computes the supernet's home partition: blocks split by average
// candidate cost. Operators are initialized on their home stage's pinned
// CPU storage (§4.2).
func Static(sn *supernet.Supernet, d int) Partition {
	return Balanced(BlockAverageCosts(sn), d)
}

// BalancedForSubnet computes the subnet's own balanced partition.
func BalancedForSubnet(sn *supernet.Supernet, sub supernet.Subnet, d int) Partition {
	return Balanced(SubnetCosts(sn, sub), d)
}

// Mirrors returns the blocks of the subnet that execute on a stage other
// than their home stage under the static partition — i.e. the layers that
// must be mirrored to another GPU's storage (§4.2). The result is sorted
// by block index (construction order).
func Mirrors(balanced, home Partition, blocks int) []int {
	var out []int
	for b := 0; b < blocks; b++ {
		if balanced.StageOf(b) != home.StageOf(b) {
			out = append(out, b)
		}
	}
	return out
}

// ImbalanceRatio returns bottleneck/mean stage cost under p — 1.0 is a
// perfectly balanced pipeline; VPipe-style static partitions typically
// exceed it on individual subnets.
func ImbalanceRatio(costs []float64, p Partition) float64 {
	sc := StageCosts(costs, p)
	var total, max float64
	for _, c := range sc {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 1
	}
	mean := total / float64(len(sc))
	return max / mean
}

// BalancedFast computes the same min-max contiguous partition as Balanced
// using parametric search (binary search over the bottleneck value with a
// greedy feasibility check) in O(m log(Σcosts/ε)) instead of the DP's
// O(m²·d). For the paper's geometries both are instant; BalancedFast
// exists for very deep supernets (thousands of blocks) where per-subnet
// repartitioning at second-level subnet frequency must stay negligible.
// Ties may be broken differently from Balanced, but the bottleneck cost
// is optimal to within ε relative precision.
func BalancedFast(costs []float64, d int) Partition {
	m := len(costs)
	if d <= 0 {
		panic("partition: non-positive stage count")
	}
	if m == 0 {
		b := make([]int, d+1)
		return Partition{D: d, Bounds: b}
	}
	var total, max float64
	for _, c := range costs {
		total += c
		if c > max {
			max = c
		}
	}
	// feasible reports whether a partition with bottleneck <= limit
	// exists, and returns the greedy cuts if so.
	feasible := func(limit float64) ([]int, bool) {
		bounds := make([]int, 0, d+1)
		bounds = append(bounds, 0)
		var acc float64
		for i := 0; i < m; i++ {
			if costs[i] > limit {
				return nil, false
			}
			if acc+costs[i] > limit {
				bounds = append(bounds, i)
				acc = 0
				if len(bounds) > d {
					return nil, false
				}
			}
			acc += costs[i]
		}
		for len(bounds) < d {
			bounds = append(bounds, m)
		}
		bounds = append(bounds, m)
		return bounds, true
	}
	lo, hi := max, total
	const eps = 1e-9
	for hi-lo > eps*(1+hi) {
		mid := (lo + hi) / 2
		if _, ok := feasible(mid); ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	bounds, ok := feasible(hi)
	if !ok {
		// hi == total is always feasible; this is unreachable, but fall
		// back to the DP rather than panic on float pathology.
		return Balanced(costs, d)
	}
	return Partition{D: d, Bounds: bounds}
}
