package sched

import "naspipe/internal/engine"

// BSPPolicy implements bulk synchronous parallel pipelining: GPipe applied
// to inter-subnet task generation, the synchronization pattern Retiarii
// also adopts (§2.3 Challenge-1). Subnets are processed in bulks of D; all
// forwards of a bulk flow through the pipeline, then backwards run in
// reverse order, then a flush barrier applies parameter updates in bulk
// before the next bulk is admitted. Causal dependencies *within* a bulk
// are not preserved — the source of BSP's irreproducibility (Figure 1,
// Table 4).
//
// The same schedule with VPipe's memory regime (parameter swapping to CPU
// with a one-subnet cache and a static partition) gives the VPipe
// baseline.
type BSPPolicy struct {
	engine.BasePolicy
	traits engine.Traits
	w      *engine.World
	bulk   int

	curBulk     int
	fwdDoneLast int // forwards of the current bulk completed at the last stage
	doneAt0     int // backwards completed at stage 0 (== subnets flushed)
}

// NewGPipe returns the GPipe baseline: BSP schedule, whole supernet
// resident in GPU memory, activation recomputation enabled.
func NewGPipe() *BSPPolicy {
	return &BSPPolicy{traits: engine.Traits{
		Name:           "GPipe",
		Reproducible:   false,
		Partition:      engine.PartitionStatic,
		CacheFactor:    0,
		ActStashFactor: 1,
	}}
}

// NewVPipe returns the VPipe baseline: BSP schedule with parameter
// swapping (one-subnet cache) and a static partition. VPipe's swap
// machinery targets a static DNN, so it neither predicts the next subnet
// nor prefetches on arrival — layers are swapped in on demand, and cache
// hits occur only when consecutive subnets happen to reuse a layer
// (matching the 1–8% hit rates of Table 2).
func NewVPipe() *BSPPolicy {
	return &BSPPolicy{traits: engine.Traits{
		Name:           "VPipe",
		Reproducible:   false,
		Partition:      engine.PartitionStatic,
		CacheFactor:    1.2,
		ActStashFactor: 1,
	}}
}

// Traits implements engine.Policy.
func (p *BSPPolicy) Traits() engine.Traits { return p.traits }

// Init implements engine.Policy.
func (p *BSPPolicy) Init(w *engine.World) {
	p.w = w
	p.bulk = w.D
	if p.bulk < 1 {
		p.bulk = 1
	}
}

// bulkEnd returns one past the last subnet of bulk b.
func (p *BSPPolicy) bulkEnd(b int) int {
	end := (b + 1) * p.bulk
	if n := len(p.w.Subnets); end > n {
		end = n
	}
	return end
}

// bulkSize returns the number of subnets in bulk b.
func (p *BSPPolicy) bulkSize(b int) int {
	start := b * p.bulk
	return p.bulkEnd(b) - start
}

// SelectForward admits forwards FIFO, but only subnets of the current
// bulk; the next bulk waits for the flush barrier.
func (p *BSPPolicy) SelectForward(stage int, queue []int, now float64) int {
	if len(queue) == 0 {
		return -1
	}
	if queue[0] >= p.bulkEnd(p.curBulk) {
		return -1
	}
	return 0
}

// SelectBackward holds all backwards at the last stage until every
// forward of the bulk has arrived there (the bulk's synchronous turn),
// then releases them in reverse order. Other stages drain gradients in
// the reverse order they arrive.
func (p *BSPPolicy) SelectBackward(stage int, ready []int, now float64) int {
	if len(ready) == 0 {
		return -1
	}
	if stage == p.w.D-1 && p.fwdDoneLast < p.bulkSize(p.curBulk) {
		return -1
	}
	best := 0
	for i := 1; i < len(ready); i++ {
		if ready[i] > ready[best] { // reverse order: highest seq first
			best = i
		}
	}
	return best
}

// OnForwardDone counts forwards reaching the last stage.
func (p *BSPPolicy) OnForwardDone(stage, seq int, now float64) {
	if stage == p.w.D-1 {
		p.fwdDoneLast++
	}
}

// OnBackwardDone advances the flush barrier when a whole bulk has drained
// back to stage 0.
func (p *BSPPolicy) OnBackwardDone(stage, seq int, now float64) {
	if stage != 0 {
		return
	}
	p.doneAt0++
	if p.doneAt0 >= p.bulkEnd(p.curBulk) {
		p.curBulk++
		p.fwdDoneLast = 0
	}
}

var _ engine.Policy = (*BSPPolicy)(nil)
