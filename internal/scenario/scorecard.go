package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Cell is one scenario's scorecard row. Every field is deterministic at
// a fixed seed: performance numbers come from the discrete-event
// simulated plane (same world, same workload, fault-free), restart and
// watchdog counts from targeted storm schedules, and the checksum from
// the bitwise-verified weights. Wall-clock observations (sweep time,
// recovery time) are deliberately NOT here — they go to the harness's
// stdout log — so the scorecard file is byte-identical across runs,
// machines, and GOMAXPROCS; CI diffs two sweeps to enforce it.
type Cell struct {
	Scenario string `json:"scenario"`
	Jobs     int    `json:"jobs"`
	GPUs     int    `json:"gpus"`
	// Processes is the distributed-plane fleet size (one stage worker
	// per GPU); 0 for single-process cells.
	Processes int `json:"processes,omitempty"`
	// Subnets is the total stream length across jobs.
	Subnets int `json:"subnets"`
	// Batch and the three performance columns are the simulated plane's
	// deterministic model of this world/workload (see Run).
	Batch                    int     `json:"batch"`
	ThroughputSubnetsPerHour float64 `json:"throughput_subnets_per_hour"`
	BubbleRatio              float64 `json:"bubble_ratio"`
	// CacheHitRate is -1 when the memory plane is off.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Recovery columns, summed across jobs on the concurrent plane.
	Restarts      int `json:"restarts"`
	WatchdogFires int `json:"watchdog_fires"`
	FinalGPUs     int `json:"final_gpus"`
	// Verified: every job's weights matched the sequential reference
	// bitwise. Checksum folds the per-job reference checksums.
	Verified bool   `json:"verified"`
	Checksum string `json:"checksum"`
	// Failures lists violated expectation gates and verification
	// errors; empty on a passing cell.
	Failures []string `json:"failures,omitempty"`
}

// Scorecard is the sweep's machine-readable result: one cell per
// scenario, sorted by name regardless of input order.
type Scorecard struct {
	ScorecardVersion int    `json:"scorecard_version"`
	Cells            []Cell `json:"scenarios"`
}

// EncodeScorecard renders the canonical scorecard bytes: cells sorted
// by scenario name, indented JSON, trailing newline. The golden test
// pins byte identity of two independent sweeps through this encoder.
func EncodeScorecard(cells []Cell) ([]byte, error) {
	sorted := append([]Cell(nil), cells...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Scenario < sorted[j].Scenario })
	out, err := json.MarshalIndent(Scorecard{ScorecardVersion: 1, Cells: sorted}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// round6 quantizes a metric to 6 decimals: still deterministic (the
// inputs already are), but stable to read and diff.
func round6(v float64) float64 {
	if v < 0 {
		return v // -1 sentinel (cache off) passes through
	}
	return math.Round(v*1e6) / 1e6
}

// gate applies the scenario's Expect block to a finished cell,
// appending one failure line per violated gate. The verification gate
// defaults to true: a cell that did not prove bitwise equality fails
// unless the scenario explicitly expects that.
func gate(e *Expect, c *Cell) {
	fail := func(format string, args ...any) {
		c.Failures = append(c.Failures, fmt.Sprintf(format, args...))
	}
	wantVerified := true
	if e != nil && e.Verified != nil {
		wantVerified = *e.Verified
	}
	if c.Verified != wantVerified {
		fail("verified = %v, scenario expects %v", c.Verified, wantVerified)
	}
	if e == nil {
		return
	}
	if e.Restarts != nil && c.Restarts != *e.Restarts {
		fail("restarts = %d, scenario pins %d", c.Restarts, *e.Restarts)
	}
	if e.MinRestarts > 0 && c.Restarts < e.MinRestarts {
		fail("restarts = %d, scenario requires >= %d", c.Restarts, e.MinRestarts)
	}
	if e.WatchdogFires != nil && c.WatchdogFires != *e.WatchdogFires {
		fail("watchdog fires = %d, scenario pins %d", c.WatchdogFires, *e.WatchdogFires)
	}
	if e.FinalGPUs > 0 && c.FinalGPUs != e.FinalGPUs {
		fail("final gpus = %d, scenario pins %d", c.FinalGPUs, e.FinalGPUs)
	}
}
