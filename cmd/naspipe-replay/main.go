// Command naspipe-replay implements the paper's deterministic training
// replay (§2.1): record a training schedule once (naspipe-train
// -save-trace), then re-execute — and inspect — the exact same training
// procedure later, on any machine, with bitwise-identical results.
//
// Usage:
//
//	naspipe-train -space NLP.c1 -subnets 60 -save-trace run.trace
//	naspipe-replay -trace run.trace            # replay on real weights
//	naspipe-replay -trace run.trace -check     # verify against sequential
//	naspipe-replay -events run.jsonl           # summarize a telemetry log
//
// The -events mode replays a telemetry JSONL log (written with the cmds'
// -events-out flag) offline: it prints the per-op event histogram and
// reconstructs the per-task spans into the same pipeline timeline the
// live run would render.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"naspipe"
	"naspipe/internal/engine"
	"naspipe/internal/telemetry"
)

func main() {
	var (
		path    = flag.String("trace", "", "trace record written by naspipe-train -save-trace")
		events  = flag.String("events", "", "telemetry JSONL log written with -events-out; summarize instead of replaying a trace record")
		dim     = flag.Int("dim", 8, "numeric model dimension for the replay")
		batch   = flag.Int("batch", 3, "numeric batch size")
		lr      = flag.Float64("lr", 0.05, "SGD learning rate")
		check   = flag.Bool("check", false, "also run the sequential reference and compare bitwise")
		every   = flag.Int("print-every", 0, "print every Nth step loss (0 = summary only)")
		analyze = flag.Bool("analyze", false, "report causal-order staleness and dependency structure")
	)
	flag.Parse()
	if *events != "" {
		os.Exit(int(summarizeEvents(*events)))
	}
	if *path == "" {
		fmt.Fprintln(os.Stderr, "naspipe-replay: -trace or -events is required")
		os.Exit(int(naspipe.ExitUsage))
	}
	f, err := os.Open(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(int(naspipe.ExitUsage))
	}
	rec, err := naspipe.ReadTraceRecord(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(int(naspipe.ExitUsage))
	}

	sp := rec.Space()
	fmt.Printf("replaying %s schedule: %s (%dx%d), %d subnets, recorded on %d GPUs, seed %d\n",
		rec.Policy, sp.Name, sp.Blocks, sp.Choices, rec.NumSubnets, rec.GPUs, rec.Seed)

	cfg := naspipe.TrainConfig{Space: sp, Dim: *dim, Seed: rec.Seed, BatchSize: *batch, LR: float32(*lr)}
	subs := rec.Subnets()
	res, err := naspipe.TrainReplay(cfg, subs, rec.Trace())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(int(naspipe.ExitFailure))
	}
	if *every > 0 {
		for i := 0; i < len(res.Losses); i += *every {
			fmt.Printf("step %4d: loss %.9g\n", i, res.Losses[i])
		}
	}
	fmt.Printf("final loss %.6f, weights checksum %016x\n", res.FinalLoss(), res.Checksum)

	if *analyze {
		fmt.Printf("staleness:  %v\n", naspipe.AnalyzeStaleness(rec.Trace()))
		fmt.Printf("dependency: %v\n", naspipe.AnalyzeDependencies(subs))
	}
	if *check {
		seq := naspipe.TrainSequential(cfg, subs)
		if seq.Checksum == res.Checksum {
			fmt.Println("CHECK: replay is bitwise equal to sequential training (CSP preserved)")
			return
		}
		fmt.Println("CHECK: replay DIVERGES from sequential training (schedule violated causal order)")
		os.Exit(int(naspipe.ExitFailure))
	}
}

// printFaultTimeline reconstructs the failure timeline from the fault-,
// health- and link-category events of a telemetry log: every injected
// fault (crash, wedge, drop, delay, duplicate, fetch failure), every
// persisted checkpoint cut, every supervisor health transition, and
// every transport-link disruption (frame drop, link cut, reconnect,
// go-back-N retransmit), in time order with its site and payload.
// Steady-state link-send/link-recv traffic stays out — it belongs to
// the histogram, not the failure story.
func printFaultTimeline(evs []telemetry.Event, firstNs int64) {
	var faults []telemetry.Event
	for _, ev := range evs {
		switch ev.Op {
		case telemetry.OpLinkSend, telemetry.OpLinkRecv:
			continue
		}
		if c := ev.Op.Category(); c == "fault" || c == "health" || c == "link" {
			faults = append(faults, ev)
		}
	}
	if len(faults) == 0 {
		return
	}
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].TsNs < faults[j].TsNs })
	fmt.Printf("fault timeline (%d events):\n", len(faults))
	for _, ev := range faults {
		kind := ""
		switch ev.Kind {
		case telemetry.KindForward:
			kind = " fwd"
		case telemetry.KindBackward:
			kind = " bwd"
		}
		detail := ""
		switch ev.Op {
		case telemetry.OpFaultCrash, telemetry.OpFaultWedge:
			detail = fmt.Sprintf("incarnation %d", ev.Arg)
		case telemetry.OpFaultDrop:
			detail = fmt.Sprintf("attempt %d", ev.Arg)
		case telemetry.OpFaultDelay:
			detail = fmt.Sprintf("%.1fµs", float64(ev.Arg)/1e3)
		case telemetry.OpCheckpoint:
			detail = fmt.Sprintf("cursor %d", ev.Arg)
		case telemetry.OpHealth:
			// Subnet carries the incarnation index; Arg packs the edge.
			from, to := telemetry.HealthFromTo(ev.Arg)
			detail = fmt.Sprintf("%s → %s (incarnation %d)",
				healthStateName(from), healthStateName(to), ev.Subnet)
		case telemetry.OpLinkDrop:
			detail = fmt.Sprintf("frame seq %d", ev.Arg)
		case telemetry.OpLinkCut:
			detail = fmt.Sprintf("after %d frames", ev.Arg)
		case telemetry.OpLinkReconnect:
			detail = fmt.Sprintf("attempt %d", ev.Arg)
		case telemetry.OpLinkRetransmit:
			detail = fmt.Sprintf("%d frames re-sent", ev.Arg)
		}
		site := fmt.Sprintf("stage %d  subnet %d%s", ev.Stage, ev.Subnet, kind)
		if ev.Op.Category() == "link" {
			// Link events carry no subnet; Stage is the link's peer.
			site = fmt.Sprintf("link peer %d", ev.Stage)
		}
		fmt.Printf("  %10.3fms  %-22s  %-15s %s\n",
			float64(ev.TsNs-firstNs)/1e6, site, ev.Op.String(), detail)
	}
}

// healthStateName renders one state code of a packed OpHealth edge.
func healthStateName(s int32) string { return naspipe.HealthState(s).String() }

// summarizeEvents loads a telemetry JSONL log, prints the per-op
// histogram, and renders the reconstructed task spans as a pipeline
// timeline — the offline view of what the live -progress line and the
// Chrome trace show.
func summarizeEvents(path string) naspipe.ExitCode {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return naspipe.ExitUsage
	}
	evs, err := telemetry.ReadJSONL(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return naspipe.ExitUsage
	}
	if len(evs) == 0 {
		fmt.Printf("%s: empty event log\n", path)
		return naspipe.ExitOK
	}

	var firstNs, lastNs int64 = evs[0].TsNs, evs[0].TsNs
	stages := map[int32]bool{}
	hist := map[telemetry.Op]int{}
	for _, ev := range evs {
		if ev.TsNs < firstNs {
			firstNs = ev.TsNs
		}
		if ev.TsNs > lastNs {
			lastNs = ev.TsNs
		}
		stages[ev.Stage] = true
		hist[ev.Op]++
	}
	fmt.Printf("%s: %d events over %.3f ms on %d stages\n",
		path, len(evs), float64(lastNs-firstNs)/1e6, len(stages))

	ops := make([]telemetry.Op, 0, len(hist))
	for op := range hist {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		fmt.Printf("  %-18s %6d  (%s)\n", op.String(), hist[op], op.Category())
	}

	printFaultTimeline(evs, firstNs)

	spans := engine.SpansFromEvents(evs)
	if len(spans) == 0 {
		fmt.Println("no completed task spans in the log (timeline omitted)")
		return naspipe.ExitOK
	}
	d := 0
	for _, s := range spans {
		if s.Task.Stage+1 > d {
			d = s.Task.Stage + 1
		}
	}
	fmt.Printf("reconstructed %d task spans:\n%s", len(spans),
		engine.RenderTimeline(spans, d, 72, float64(lastNs)/1e6))
	return naspipe.ExitOK
}
