// Command naspipe-replay implements the paper's deterministic training
// replay (§2.1): record a training schedule once (naspipe-train
// -save-trace), then re-execute — and inspect — the exact same training
// procedure later, on any machine, with bitwise-identical results.
//
// Usage:
//
//	naspipe-train -space NLP.c1 -subnets 60 -save-trace run.trace
//	naspipe-replay -trace run.trace            # replay on real weights
//	naspipe-replay -trace run.trace -check     # verify against sequential
package main

import (
	"flag"
	"fmt"
	"os"

	"naspipe"
)

func main() {
	var (
		path    = flag.String("trace", "", "trace record written by naspipe-train -save-trace")
		dim     = flag.Int("dim", 8, "numeric model dimension for the replay")
		batch   = flag.Int("batch", 3, "numeric batch size")
		lr      = flag.Float64("lr", 0.05, "SGD learning rate")
		check   = flag.Bool("check", false, "also run the sequential reference and compare bitwise")
		every   = flag.Int("print-every", 0, "print every Nth step loss (0 = summary only)")
		analyze = flag.Bool("analyze", false, "report causal-order staleness and dependency structure")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "naspipe-replay: -trace is required")
		os.Exit(2)
	}
	f, err := os.Open(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rec, err := naspipe.ReadTraceRecord(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	sp := rec.Space()
	fmt.Printf("replaying %s schedule: %s (%dx%d), %d subnets, recorded on %d GPUs, seed %d\n",
		rec.Policy, sp.Name, sp.Blocks, sp.Choices, rec.NumSubnets, rec.GPUs, rec.Seed)

	cfg := naspipe.TrainConfig{Space: sp, Dim: *dim, Seed: rec.Seed, BatchSize: *batch, LR: float32(*lr)}
	subs := rec.Subnets()
	res, err := naspipe.TrainReplay(cfg, subs, rec.Trace())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *every > 0 {
		for i := 0; i < len(res.Losses); i += *every {
			fmt.Printf("step %4d: loss %.9g\n", i, res.Losses[i])
		}
	}
	fmt.Printf("final loss %.6f, weights checksum %016x\n", res.FinalLoss(), res.Checksum)

	if *analyze {
		fmt.Printf("staleness:  %v\n", naspipe.AnalyzeStaleness(rec.Trace()))
		fmt.Printf("dependency: %v\n", naspipe.AnalyzeDependencies(subs))
	}
	if *check {
		seq := naspipe.TrainSequential(cfg, subs)
		if seq.Checksum == res.Checksum {
			fmt.Println("CHECK: replay is bitwise equal to sequential training (CSP preserved)")
			return
		}
		fmt.Println("CHECK: replay DIVERGES from sequential training (schedule violated causal order)")
		os.Exit(1)
	}
}
