package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"naspipe"
	"naspipe/internal/fault"
	"naspipe/internal/obs"
	"naspipe/internal/telemetry"
)

// SchedulerConfig tunes the job scheduler. The zero value is usable
// except for StateDir, which is required (job specs, statuses, event
// logs, and checkpoints live under it — it is what makes a kill -9 of
// the daemon survivable).
type SchedulerConfig struct {
	// StateDir is the root of per-job state ({StateDir}/{jobID}/...).
	StateDir string
	// Workers bounds the executor pool: at most this many jobs run at
	// once. 0 = 2.
	Workers int
	// QueueLimit bounds jobs admitted but not yet running; submits
	// beyond it are refused with CodeBackpressure. 0 = 16.
	QueueLimit int
	// TenantQuota bounds one tenant's active (queued + running) jobs;
	// submits beyond it are refused with CodeQuotaExceeded. 0 = 8.
	TenantQuota int
	// EventBufSize is each job's telemetry ring capacity. 0 = 1<<16.
	EventBufSize int
	// Log, when non-nil, receives one line per scheduler decision.
	Log func(format string, args ...any)
	// Logger, when non-nil, receives structured per-job log records
	// (every record carries the job ID) and takes precedence over Log
	// for those records. The daemon passes its slog JSON logger.
	Logger *slog.Logger
	// Metrics, when non-nil, is the registry the scheduler publishes
	// into: queue depth, per-tenant job counts, queue-wait and
	// run-duration histograms, 429 causes, supervision transitions, and
	// the telemetry-bus rollup. Nil disables metrics at zero cost.
	Metrics *obs.Registry
}

func (c SchedulerConfig) withDefaults() SchedulerConfig {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 16
	}
	if c.TenantQuota <= 0 {
		c.TenantQuota = 8
	}
	if c.EventBufSize <= 0 {
		c.EventBufSize = 1 << 16
	}
	return c
}

// job is one scheduled run and its full lifecycle state. The scheduler
// mutex (not a per-job one) guards the mutable fields — job counts are
// small and every mutation also touches scheduler-wide accounting.
type job struct {
	id   string
	spec naspipe.JobSpec
	dir  string

	state    JobState
	health   string
	detail   string
	restarts int
	fires    int
	cursor   int
	gpus     int
	verified bool
	checksum uint64
	resume   bool // next incarnation resumes from the checkpoint

	submitted, started, finished time.Time
	// queuedAt stamps the latest admission (submit, resume, or recovery)
	// so the queue-wait histogram measures this wait, not the job's
	// whole prior history.
	queuedAt time.Time

	bus        *telemetry.Bus     // live telemetry while running
	cancel     context.CancelFunc // cancels the running incarnation set
	wantCancel bool               // operator cancel requested (vs daemon shutdown)
	done       chan struct{}      // closed at every terminal transition
}

// persistedJob is the on-disk form of a job (status.json) — enough to
// rebuild the registry and re-queue interrupted work after a daemon
// restart.
type persistedJob struct {
	ID            string          `json:"id"`
	Spec          naspipe.JobSpec `json:"spec"`
	State         JobState        `json:"state"`
	Detail        string          `json:"detail,omitempty"`
	Restarts      int             `json:"restarts"`
	WatchdogFires int             `json:"watchdog_fires"`
	Verified      bool            `json:"verified"`
	Checksum      uint64          `json:"checksum"`
	Resume        bool            `json:"resume"`
	SubmittedAt   time.Time       `json:"submitted_at"`
	StartedAt     time.Time       `json:"started_at"`
	FinishedAt    time.Time       `json:"finished_at"`
}

// Scheduler multiplexes search jobs over a bounded executor pool with
// per-tenant quotas, admission control, and backpressure. Construct
// with NewScheduler, serve it over HTTP with NewServer, stop it with
// Close. All methods are safe for concurrent use.
type Scheduler struct {
	cfg SchedulerConfig

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string       // submission order, for List
	active  map[string]int // tenant → queued+running
	nextID  int
	queue   chan *job
	runEWMA time.Duration // smoothed wall time of completed runs
	closed  bool
	rootCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	// met holds the scheduler's metric instruments (nil-safe when
	// cfg.Metrics is nil); telTotals accumulates finished jobs' bus
	// snapshots for the telemetry rollup (guarded by mu).
	met       *schedMetrics
	telTotals telemetry.Snapshot
}

// NewScheduler builds the scheduler, recovers any persisted jobs from
// cfg.StateDir (re-queuing work a previous daemon left queued, running,
// or interrupted — the kill -9 story), and starts the executor pool.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) {
	cfg = cfg.withDefaults()
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("service: SchedulerConfig.StateDir is required")
	}
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("service: state dir: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:     cfg,
		jobs:    make(map[string]*job),
		active:  make(map[string]int),
		queue:   make(chan *job, cfg.QueueLimit),
		rootCtx: ctx,
		stop:    cancel,
	}
	s.met = newSchedMetrics(cfg.Metrics, s)
	if err := s.recover(); err != nil {
		cancel()
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

func (s *Scheduler) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}

// log emits one structured record (msg plus key/value attrs — per-job
// records always carry a "job" attr). With a Logger it is a real slog
// record; with only the legacy printf Log the attrs render as
// "key=value" suffixes so nothing is lost either way.
func (s *Scheduler) log(msg string, attrs ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info(msg, attrs...)
		return
	}
	if s.cfg.Log == nil {
		return
	}
	var b strings.Builder
	b.WriteString("service: ")
	b.WriteString(msg)
	for i := 0; i+1 < len(attrs); i += 2 {
		fmt.Fprintf(&b, " %v=%v", attrs[i], attrs[i+1])
	}
	s.cfg.Log("%s", b.String())
}

// tenantGaugeLocked mirrors one tenant's active count into the gauge.
// Caller holds s.mu.
func (s *Scheduler) tenantGaugeLocked(tenant string) {
	s.met.tenantActive.With(tenantName(tenant)).Set(float64(s.active[tenant]))
}

// recover scans the state dir for persisted jobs and re-queues the ones
// a previous daemon never finished. Jobs that were queued or running
// when the daemon died resume from their checkpoint when one exists and
// start over otherwise; terminal jobs load read-only.
func (s *Scheduler) recover() error {
	entries, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		return fmt.Errorf("service: scanning state dir: %w", err)
	}
	var recovered []*job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(s.cfg.StateDir, e.Name())
		var p persistedJob
		buf, err := os.ReadFile(filepath.Join(dir, "status.json"))
		if err != nil {
			continue // not a job dir (or torn write before first persist)
		}
		if err := json.Unmarshal(buf, &p); err != nil {
			s.logf("service: %s: unreadable status.json, skipping: %v", e.Name(), err)
			continue
		}
		j := &job{
			id: p.ID, spec: p.Spec, dir: dir,
			state: p.State, detail: p.Detail,
			restarts: p.Restarts, fires: p.WatchdogFires,
			verified: p.Verified, checksum: p.Checksum,
			resume:    p.Resume,
			submitted: p.SubmittedAt, started: p.StartedAt, finished: p.FinishedAt,
			gpus: p.Spec.GPUs,
			done: make(chan struct{}),
		}
		if j.state.Terminal() {
			close(j.done)
		}
		recovered = append(recovered, j)
		if n := idNum(p.ID); n >= s.nextID {
			s.nextID = n + 1
		}
	}
	sort.Slice(recovered, func(a, b int) bool { return idNum(recovered[a].id) < idNum(recovered[b].id) })
	for _, j := range recovered {
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if j.state.Terminal() {
			continue
		}
		// The previous daemon died with this job in flight. A standing
		// checkpoint means the committed frontier survived; continue from
		// it. Otherwise start over.
		j.resume = j.hasCheckpoint()
		j.state = StateQueued
		j.detail = "recovered after daemon restart"
		j.queuedAt = time.Now()
		s.active[j.spec.Tenant]++
		s.tenantGaugeLocked(j.spec.Tenant)
		s.persistLocked(j)
		select {
		case s.queue <- j:
			s.met.recovered.Inc()
			s.log("job recovered", "job", j.id, "tenant", tenantName(j.spec.Tenant), "resume", j.resume)
		default:
			j.state = StateFailed
			j.detail = "recovery overflowed the admission queue"
			s.active[j.spec.Tenant]--
			s.tenantGaugeLocked(j.spec.Tenant)
			close(j.done)
			s.persistLocked(j)
		}
	}
	return nil
}

// idNum extracts the numeric suffix of a job ID ("j0042" → 42).
func idNum(id string) int {
	n := 0
	for _, r := range strings.TrimPrefix(id, "j") {
		if r < '0' || r > '9' {
			return 0
		}
		n = n*10 + int(r-'0')
	}
	return n
}

// checkpointPath is where a job's crash-consistent checkpoint lives.
func (j *job) checkpointPath() string { return filepath.Join(j.dir, "run.ckpt") }

// eventsPath is the job's persisted telemetry JSONL.
func (j *job) eventsPath() string { return filepath.Join(j.dir, "events.jsonl") }

func (j *job) hasCheckpoint() bool {
	_, err := os.Stat(j.checkpointPath())
	return err == nil
}

// resumable reports whether a standing checkpoint can continue the job:
// it loads, matches the job, and its cursor hasn't already covered the
// stream (a post-final-commit crash leaves nothing to resume... which
// still counts: resume is then a no-op verify).
func (j *job) resumable() bool {
	if j.spec.Checkpoint == "" {
		return false
	}
	_, err := fault.Load(j.checkpointPath())
	return err == nil
}

// Submit validates, normalizes, and admits a job. Admission control is
// synchronous: a tenant at quota gets *APIError CodeQuotaExceeded, a
// full queue CodeBackpressure — both mapping to HTTP 429 so clients
// back off and retry.
func (s *Scheduler) Submit(spec naspipe.JobSpec) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobStatus{}, &APIError{Code: CodeShuttingDown, Message: "scheduler is draining"}
	}
	id := fmt.Sprintf("j%04d", s.nextID)
	dir := filepath.Join(s.cfg.StateDir, id)
	normalizeSpec(&spec, dir)
	if err := spec.Validate(); err != nil {
		return JobStatus{}, &APIError{Code: CodeInvalidSpec, Message: err.Error(), Field: naspipe.SpecField(err)}
	}
	if s.active[spec.Tenant] >= s.cfg.TenantQuota {
		ra := s.retryAfterLocked(CodeQuotaExceeded, spec.Tenant)
		s.met.rejections.With(string(CodeQuotaExceeded)).Inc()
		return JobStatus{}, &APIError{Code: CodeQuotaExceeded, RetryAfterSec: ra,
			Message: fmt.Sprintf("tenant %q already has %d active jobs (quota %d); retry in ~%ds", tenantName(spec.Tenant), s.active[spec.Tenant], s.cfg.TenantQuota, ra)}
	}
	now := time.Now()
	j := &job{
		id: id, spec: spec, dir: dir,
		state: StateQueued, submitted: now, queuedAt: now,
		gpus: spec.GPUs,
		done: make(chan struct{}),
	}
	select {
	case s.queue <- j:
	default:
		ra := s.retryAfterLocked(CodeBackpressure, spec.Tenant)
		s.met.rejections.With(string(CodeBackpressure)).Inc()
		return JobStatus{}, &APIError{Code: CodeBackpressure, RetryAfterSec: ra,
			Message: fmt.Sprintf("admission queue full (%d queued); retry in ~%ds", s.cfg.QueueLimit, ra)}
	}
	s.nextID++
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.active[spec.Tenant]++
	s.met.submitted.With(tenantName(spec.Tenant)).Inc()
	s.tenantGaugeLocked(spec.Tenant)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.logf("service: %s: state dir: %v", id, err)
	}
	s.persistLocked(j)
	s.log("job submitted", "job", id, "tenant", tenantName(spec.Tenant),
		"space", spec.Space, "gpus", spec.GPUs, "subnets", spec.Subnets)
	return s.statusLocked(j, true), nil
}

// normalizeSpec pins the parts of a spec the daemon owns: every
// concurrent job checkpoints into its own state dir and runs under
// supervision (that is the service's crash-resume contract), and
// verification implies tracing.
func normalizeSpec(spec *naspipe.JobSpec, dir string) {
	if spec.APIVersion == "" {
		spec.APIVersion = naspipe.JobSpecVersion
	}
	if spec.Executor == "concurrent" {
		spec.Checkpoint = filepath.Join(dir, "run.ckpt")
		if spec.Supervise == nil {
			spec.Supervise = &naspipe.SuperviseSpec{}
		}
	}
	if spec.Verify && spec.Trace == nil {
		on := true
		spec.Trace = &on
	}
}

func tenantName(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

// Get returns one job's status (with its effective spec).
func (s *Scheduler) Get(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, &APIError{Code: CodeNotFound, Message: fmt.Sprintf("no job %q", id)}
	}
	return s.statusLocked(j, true), nil
}

// List returns all jobs in submission order, optionally filtered by
// tenant. Specs are omitted to keep the listing light.
func (s *Scheduler) List(tenant string) []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if tenant != "" && j.spec.Tenant != tenant {
			continue
		}
		out = append(out, s.statusLocked(j, false))
	}
	return out
}

// Stats snapshots the scheduler's live admission state — the inputs
// retryAfterLocked derives every Retry-After estimate from, plus each
// tenant's slot occupancy. List responses embed it so one poll of /v1
// shows both the jobs and the admission math.
func (s *Scheduler) Stats() SchedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

// statsLocked renders SchedStats. Caller holds s.mu.
func (s *Scheduler) statsLocked() SchedStats {
	st := SchedStats{
		QueueDepth: len(s.queue),
		QueueLimit: s.cfg.QueueLimit,
		Workers:    s.cfg.Workers,
		RunEWMASec: s.runEWMA.Seconds(),
	}
	running := make(map[string]int)
	for _, id := range s.order {
		if s.jobs[id].state == StateRunning {
			st.ActiveJobs++
			running[s.jobs[id].spec.Tenant]++
		}
	}
	tenants := make([]string, 0, len(s.active))
	for t, n := range s.active {
		if n > 0 || running[t] > 0 {
			tenants = append(tenants, t)
		}
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		st.Tenants = append(st.Tenants, TenantStats{
			Tenant:  tenantName(t),
			Active:  s.active[t],
			Running: running[t],
			Quota:   s.cfg.TenantQuota,
		})
	}
	return st
}

// Cancel stops a queued or running job. Canceling a job that already
// reached a terminal state is idempotent: it returns the current status
// with no error and no state change.
func (s *Scheduler) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, &APIError{Code: CodeNotFound, Message: fmt.Sprintf("no job %q", id)}
	}
	switch j.state {
	case StateQueued:
		// The worker skips canceled jobs when it drains them.
		s.finishLocked(j, StateCanceled, "canceled while queued")
	case StateRunning:
		j.wantCancel = true
		if j.cancel != nil {
			j.cancel()
		}
		s.log("cancel requested", "job", id)
	default:
		// Terminal already — idempotent success.
	}
	return s.statusLocked(j, true), nil
}

// Resume re-queues a canceled or interrupted job to continue from its
// checkpoint. Jobs without a loadable checkpoint — never-checkpointed,
// simulated, or already consumed — are a CodeConflict (HTTP 409), as is
// resuming a job that is queued, running, or done.
func (s *Scheduler) Resume(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, &APIError{Code: CodeNotFound, Message: fmt.Sprintf("no job %q", id)}
	}
	if s.closed {
		return JobStatus{}, &APIError{Code: CodeShuttingDown, Message: "scheduler is draining"}
	}
	switch j.state {
	case StateQueued, StateRunning:
		return JobStatus{}, &APIError{Code: CodeConflict, Message: fmt.Sprintf("job %s is %s; nothing to resume", id, j.state)}
	case StateDone:
		return JobStatus{}, &APIError{Code: CodeConflict, Message: fmt.Sprintf("job %s already completed", id)}
	}
	if !j.resumable() {
		return JobStatus{}, &APIError{Code: CodeConflict,
			Message: fmt.Sprintf("job %s has no loadable checkpoint to resume from", id)}
	}
	if s.active[j.spec.Tenant] >= s.cfg.TenantQuota {
		ra := s.retryAfterLocked(CodeQuotaExceeded, j.spec.Tenant)
		s.met.rejections.With(string(CodeQuotaExceeded)).Inc()
		return JobStatus{}, &APIError{Code: CodeQuotaExceeded, RetryAfterSec: ra,
			Message: fmt.Sprintf("tenant %q already has %d active jobs (quota %d); retry in ~%ds", tenantName(j.spec.Tenant), s.active[j.spec.Tenant], s.cfg.TenantQuota, ra)}
	}
	j.resume = true
	j.wantCancel = false
	j.state = StateQueued
	j.detail = "resume requested"
	j.queuedAt = time.Now()
	j.done = make(chan struct{})
	select {
	case s.queue <- j:
	default:
		j.state = StateCanceled
		close(j.done)
		ra := s.retryAfterLocked(CodeBackpressure, j.spec.Tenant)
		s.met.rejections.With(string(CodeBackpressure)).Inc()
		return JobStatus{}, &APIError{Code: CodeBackpressure, RetryAfterSec: ra,
			Message: fmt.Sprintf("admission queue full (%d queued); retry in ~%ds", s.cfg.QueueLimit, ra)}
	}
	s.active[j.spec.Tenant]++
	s.met.resumed.With(tenantName(j.spec.Tenant)).Inc()
	s.tenantGaugeLocked(j.spec.Tenant)
	s.persistLocked(j)
	s.log("resume queued", "job", id, "tenant", tenantName(j.spec.Tenant))
	return s.statusLocked(j, true), nil
}

// Events returns the job's telemetry: the live bus while it runs, the
// persisted JSONL after. The returned wait channel is closed when the
// job reaches a terminal state (for follow streaming); it is nil for
// jobs recovered without in-memory telemetry.
func (s *Scheduler) Events(id string) (events []telemetry.Event, done <-chan struct{}, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, &APIError{Code: CodeNotFound, Message: fmt.Sprintf("no job %q", id)}
	}
	if j.bus != nil {
		return j.bus.Events(), j.done, nil
	}
	f, ferr := os.Open(j.eventsPath())
	if ferr != nil {
		return nil, j.done, nil // no telemetry yet — empty stream
	}
	defer f.Close()
	evs, rerr := telemetry.ReadJSONL(f)
	if rerr != nil {
		return nil, nil, &APIError{Code: CodeInternal, Message: fmt.Sprintf("reading %s: %v", j.eventsPath(), rerr)}
	}
	return evs, j.done, nil
}

// CheckpointFile returns the path of the job's checkpoint for the fetch
// endpoint; CodeNotFound when none has been cut yet.
func (s *Scheduler) CheckpointFile(id string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return "", &APIError{Code: CodeNotFound, Message: fmt.Sprintf("no job %q", id)}
	}
	if !j.hasCheckpoint() {
		return "", &APIError{Code: CodeNotFound, Message: fmt.Sprintf("job %s has no checkpoint on disk", id)}
	}
	return j.checkpointPath(), nil
}

// Wait blocks until the job reaches a terminal state or ctx ends.
// (Primarily for tests and the CLI's submit -wait.)
func (s *Scheduler) Wait(ctx context.Context, id string) (JobStatus, error) {
	for {
		s.mu.Lock()
		j, ok := s.jobs[id]
		if !ok {
			s.mu.Unlock()
			return JobStatus{}, &APIError{Code: CodeNotFound, Message: fmt.Sprintf("no job %q", id)}
		}
		done := j.done
		if j.state.Terminal() {
			st := s.statusLocked(j, true)
			s.mu.Unlock()
			return st, nil
		}
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		case <-done:
		}
	}
}

// Close drains the scheduler: no new admissions, running jobs are
// canceled (their checkpoints stand, so they recover on restart), and
// the executor pool exits. Idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.stop() // cancels every running incarnation
	s.wg.Wait()
}

// worker is one executor-pool goroutine: it owns at most one job at a
// time, end to end.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// statusLocked renders a job's API view. Caller holds s.mu.
func (s *Scheduler) statusLocked(j *job, withSpec bool) JobStatus {
	resumable := j.state.Terminal() && j.state != StateDone && j.state != StateFailed && j.resumable()
	st := JobStatus{
		ID: j.id, Tenant: j.spec.Tenant, Name: j.spec.Name,
		State: j.state, Health: j.health, Detail: j.detail,
		Restarts: j.restarts, WatchdogFires: j.fires,
		Cursor: j.liveCursor(), Total: j.spec.Subnets, GPUs: j.gpus,
		Verified: j.verified, Resumable: resumable,
		ExitCode:     j.state.ExitCode(resumable),
		TenantActive: s.active[j.spec.Tenant],
		TenantQuota:  s.cfg.TenantQuota,
		SubmittedAt:  j.submitted, StartedAt: j.started, FinishedAt: j.finished,
	}
	if j.checksum != 0 {
		st.Checksum = fmt.Sprintf("%016x", j.checksum)
	}
	if st.ExitCode >= 0 {
		st.ExitName = naspipe.ExitCode(st.ExitCode).String()
	}
	if withSpec {
		spec := j.spec
		st.Spec = &spec
	}
	return st
}

// liveCursor reads the committed frontier from the job's checkpoint.
func (j *job) liveCursor() int {
	if j.state == StateDone {
		return j.spec.Subnets
	}
	if j.spec.Checkpoint == "" {
		return j.cursor
	}
	if ck, err := fault.Load(j.checkpointPath()); err == nil {
		return ck.Cursor
	}
	return j.cursor
}

// retryAfterLocked estimates, in whole seconds, when a refused submit
// or resume is worth retrying, from the smoothed wall time of completed
// runs. Backpressure clears as the pool drains the queue (queue depth /
// worker throughput); a quota slot frees when the tenant's
// longest-running job finishes. With no completed run on record yet the
// estimate is the 1-second floor. Clamped to [1, 300]. Caller holds
// s.mu.
func (s *Scheduler) retryAfterLocked(code ErrorCode, tenant string) int {
	avg := s.runEWMA
	if avg <= 0 {
		return 1
	}
	var wait time.Duration
	switch code {
	case CodeBackpressure:
		queued := len(s.queue)
		if queued < 1 {
			queued = 1
		}
		wait = avg * time.Duration(queued) / time.Duration(s.cfg.Workers)
	case CodeQuotaExceeded:
		// Default: everything is still queued, so a full run must
		// complete before a slot frees.
		wait = avg
		for _, id := range s.order {
			j := s.jobs[id]
			if j.spec.Tenant != tenant || j.state != StateRunning {
				continue
			}
			if left := avg - time.Since(j.started); left < wait {
				wait = left
			}
		}
	}
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 300 {
		secs = 300
	}
	return secs
}

// finishLocked moves a job to a terminal state, releases its quota
// slot, persists, and wakes waiters. Completed runs feed the wall-time
// EWMA that retryAfterLocked derives retry hints from. Caller holds
// s.mu.
func (s *Scheduler) finishLocked(j *job, state JobState, detail string) {
	if j.state == StateRunning && !j.started.IsZero() {
		run := time.Since(j.started)
		if s.runEWMA <= 0 {
			s.runEWMA = run
		} else {
			s.runEWMA = (7*s.runEWMA + 3*run) / 10
		}
		s.met.runTime.Observe(run.Seconds())
	}
	j.state = state
	j.detail = detail
	j.finished = time.Now()
	j.cancel = nil
	s.active[j.spec.Tenant]--
	s.met.finished.With(tenantName(j.spec.Tenant), string(state)).Inc()
	s.tenantGaugeLocked(j.spec.Tenant)
	s.persistLocked(j)
	close(j.done)
	s.log("job finished", "job", j.id, "tenant", tenantName(j.spec.Tenant),
		"state", string(state), "restarts", j.restarts, "detail", detail)
}

// persistLocked writes status.json atomically (tmp+rename), mirroring
// the checkpoint plane's crash discipline. Caller holds s.mu.
func (s *Scheduler) persistLocked(j *job) {
	p := persistedJob{
		ID: j.id, Spec: j.spec, State: j.state, Detail: j.detail,
		Restarts: j.restarts, WatchdogFires: j.fires,
		Verified: j.verified, Checksum: j.checksum, Resume: j.resume,
		SubmittedAt: j.submitted, StartedAt: j.started, FinishedAt: j.finished,
	}
	buf, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		s.logf("service: %s: persisting status: %v", j.id, err)
		return
	}
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		s.logf("service: %s: persisting status: %v", j.id, err)
		return
	}
	tmp := filepath.Join(j.dir, "status.json.tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		s.logf("service: %s: persisting status: %v", j.id, err)
		return
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, "status.json")); err != nil {
		s.logf("service: %s: persisting status: %v", j.id, err)
	}
}

// runJob executes one job under the supervision plane and classifies
// its outcome into the service lifecycle.
func (s *Scheduler) runJob(j *job) {
	s.mu.Lock()
	if j.state != StateQueued {
		// Canceled while queued (or recovery marked it failed).
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.rootCtx)
	defer cancel()
	bus := telemetry.NewBus(s.cfg.EventBufSize)
	j.state = StateRunning
	j.health = "running"
	j.started = time.Now()
	j.cancel = cancel
	j.bus = bus
	resume := j.resume
	spec := j.spec
	if !j.queuedAt.IsZero() {
		s.met.queueWait.Observe(time.Since(j.queuedAt).Seconds())
	}
	s.met.activeJobs.Inc()
	s.persistLocked(j)
	s.mu.Unlock()
	s.log("job running", "job", j.id, "tenant", tenantName(spec.Tenant), "resume", resume)

	res, rep, err := s.execute(ctx, j.id, spec, bus, resume)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.met.activeJobs.Dec()
	if rep != nil {
		j.restarts += rep.Restarts
		j.fires += rep.WatchdogFires
		j.gpus = rep.FinalGPUs
		j.health = rep.FinalState.String()
	}
	// Fold the finished bus into the rollup before it is dropped, so the
	// naspipe_telemetry_* series keep counting events from completed jobs.
	s.telTotals = s.telTotals.Add(bus.Snapshot())
	j.flushEvents(s, bus)
	j.bus = nil
	j.cancel = nil

	switch {
	case err == nil:
		j.resume = false
		if spec.Verify {
			tc, _ := spec.TrainConfig()
			cfg, cerr := spec.Config()
			if cerr != nil {
				s.finishLocked(j, StateFailed, fmt.Sprintf("verification setup: %v", cerr))
				return
			}
			sum, verr := naspipe.VerifyAgainstSequential(tc, cfg, res)
			if verr != nil {
				s.finishLocked(j, StateFailed, fmt.Sprintf("verification: %v", verr))
				return
			}
			j.verified = true
			j.checksum = sum
			s.finishLocked(j, StateDone, fmt.Sprintf("verified bitwise against sequential reference (%016x)", sum))
			return
		}
		s.finishLocked(j, StateDone, "stream complete")
	case j.wantCancel:
		s.finishLocked(j, StateCanceled, fmt.Sprintf("canceled by operator: %v", err))
	case s.rootCtx.Err() != nil:
		// Daemon shutdown: the committed frontier is on disk; a restarted
		// daemon re-queues this job from its checkpoint.
		s.finishLocked(j, StateInterrupted, fmt.Sprintf("daemon shutdown mid-run: %v", err))
	default:
		var crash *naspipe.CrashError
		if errors.As(err, &crash) {
			// Only unsupervised jobs surface raw crashes; the checkpoint
			// holds, so the job is explicitly resumable.
			s.finishLocked(j, StateInterrupted, fmt.Sprintf("crash: %v", err))
			return
		}
		s.finishLocked(j, StateFailed, err.Error())
	}
}

// execute builds the runner from the spec and drives one supervised (or
// plain) execution under the given job ID (used only for correlation:
// metrics hooks and structured logs). It owns no scheduler state.
func (s *Scheduler) execute(ctx context.Context, jobID string, spec naspipe.JobSpec, bus *telemetry.Bus, resume bool) (naspipe.Result, *naspipe.SuperviseReport, error) {
	opts, cfg, err := naspipe.FromSpec(spec)
	if err != nil {
		return naspipe.Result{}, nil, err
	}
	opts = append(opts, naspipe.WithTelemetry(bus))
	r, err := naspipe.NewRunner(opts...)
	if err != nil {
		return naspipe.Result{}, nil, err
	}
	if sc, ok := spec.SuperviseConfig(); ok {
		sc.Telemetry = bus
		if s.cfg.Log != nil {
			sc.Log = s.cfg.Log
		}
		sc.Observer, sc.OnIncident = s.superviseHooks(jobID)
		if resume {
			return r.ResumeSupervised(ctx, cfg, sc)
		}
		return r.RunSupervised(ctx, cfg, sc)
	}
	var res naspipe.Result
	if resume {
		res, err = r.Resume(ctx, cfg)
	} else {
		res, err = r.Run(ctx, cfg)
	}
	return res, nil, err
}

// flushEvents persists the job's telemetry ring as replayable JSONL
// (best-effort; the live bus remains the source of truth until here).
func (j *job) flushEvents(s *Scheduler, bus *telemetry.Bus) {
	evs := bus.Events()
	if len(evs) == 0 {
		return
	}
	f, err := os.Create(j.eventsPath())
	if err != nil {
		s.logf("service: %s: writing events: %v", j.id, err)
		return
	}
	defer f.Close()
	if err := telemetry.WriteJSONL(f, evs); err != nil {
		s.logf("service: %s: writing events: %v", j.id, err)
	}
}
