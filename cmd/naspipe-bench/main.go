// Command naspipe-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	naspipe-bench -exp table2            # one experiment
//	naspipe-bench -exp table2,figure5    # several
//	naspipe-bench -exp all               # the whole evaluation (§5)
//	naspipe-bench -exp all -quick        # reduced sizes for a fast pass
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"naspipe"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiment names, or 'all' (known: "+strings.Join(naspipe.ExperimentNames(), ", ")+")")
		quick   = flag.Bool("quick", false, "reduced sizes for a fast smoke pass")
		seed    = flag.Uint64("seed", 42, "global random seed")
		gpus    = flag.Int("gpus", 8, "default GPU count for single-cluster experiments")
		subnets = flag.Int("subnets", 0, "performance-plane subnets per run (0 = default)")
	)
	flag.Parse()

	o := naspipe.DefaultExperimentOptions()
	if *quick {
		o = naspipe.QuickExperimentOptions()
	}
	o.Seed = *seed
	o.GPUs = *gpus
	if *subnets > 0 {
		o.Subnets = *subnets
	}

	names := strings.Split(*exps, ",")
	if *exps == "all" {
		names = naspipe.ExperimentNames()
	}
	exit := 0
	for _, name := range names {
		name = strings.TrimSpace(name)
		t0 := time.Now()
		out, err := naspipe.Experiment(name, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			exit = 1
			continue
		}
		fmt.Print(out)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}
	os.Exit(exit)
}
