// Command naspiped is the naspipe service daemon: a long-running,
// multi-tenant scheduler that multiplexes concurrent supernet-search
// jobs over a bounded executor pool, behind the versioned HTTP/JSON API
// in internal/service.
//
// Usage:
//
//	naspiped -addr :7419 -state-dir /var/lib/naspipe
//	naspiped -workers 4 -quota 8 -queue 32
//
// Submit and drive jobs with naspipe-client (or plain curl):
//
//	naspipe-client -addr http://localhost:7419 submit -space NLP.c3 ...
//
// Every concurrent-plane job is normalized to checkpoint into its own
// state directory and run under the supervision plane, so an injected
// or real crash auto-resumes from the job's committed frontier with no
// operator involvement, and the health state machine is visible over
// GET /v1/jobs/{id}. The daemon itself is crash-consistent: kill -9 it
// mid-job, restart it on the same -state-dir, and unfinished jobs
// re-queue from their checkpoints. CSP makes all of this safe to trust:
// however the daemon interleaves, crashes, or resumes a job, its
// weights land bitwise equal to the sequential reference.
//
// Observability rides on the same listener: GET /metrics serves the
// Prometheus text exposition (service, scheduler, supervision, and
// telemetry planes; per-tenant labels), /debug/ serves pprof, expvar,
// and the live engine-telemetry snapshot, and every log line is a
// structured record — JSON by default — carrying the job ID, so one
// `grep '"job":"j0001"'` follows a job from submit through crash,
// restart, and verification. -log-format text keeps the legacy
// human-readable lines.
//
// `naspiped dist` is a different mode entirely: instead of serving
// HTTP it coordinates a multi-process training fleet — one
// naspipe-stage OS process per pipeline stage over fault-tolerant TCP
// links — and survives kill -9 of any worker by relaunching the fleet
// from the committed checkpoint cursor (see cmd/naspiped/dist.go).
//
// Exit codes follow the naspipe contract: 0 clean shutdown, 1 runtime
// failure, 2 usage error (and, for dist, 3 resumable interruption).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"naspipe"
	"naspipe/internal/obs"
	"naspipe/internal/service"
	"naspipe/internal/telemetry"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "dist" {
		os.Exit(int(distMain(os.Args[2:])))
	}
	var (
		addr      = flag.String("addr", ":7419", "HTTP listen address for the /v1 API, /metrics, and /debug/")
		stateDir  = flag.String("state-dir", "naspiped-state", "root directory for per-job specs, statuses, event logs, and checkpoints")
		workers   = flag.Int("workers", 2, "executor pool size: jobs running at once")
		quota     = flag.Int("quota", 8, "per-tenant quota on active (queued+running) jobs; submits beyond it get 429")
		queue     = flag.Int("queue", 16, "global admission-queue bound; submits beyond it get 429 (backpressure)")
		eventBuf  = flag.Int("event-buf", 1<<16, "per-job telemetry ring capacity (events kept for /events streaming)")
		debugAddr = flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this extra address too")
		logFormat = flag.String("log-format", "json", "log record format: json or text")
		noMetrics = flag.Bool("no-metrics", false, "disable the metrics registry and /metrics endpoint")
		quiet     = flag.Bool("quiet", false, "suppress per-decision scheduler logging")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "naspiped: unexpected arguments %v\n", flag.Args())
		os.Exit(int(naspipe.ExitUsage))
	}

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "naspiped: -log-format must be json or text, got %q\n", *logFormat)
		os.Exit(int(naspipe.ExitUsage))
	}
	logger := slog.New(handler)

	var reg *obs.Registry
	if !*noMetrics {
		reg = obs.New()
	}
	cfg := service.SchedulerConfig{
		StateDir: *stateDir, Workers: *workers,
		QueueLimit: *queue, TenantQuota: *quota,
		EventBufSize: *eventBuf,
		Metrics:      reg,
	}
	if !*quiet {
		cfg.Logger = logger
		// Legacy printf sink for the scheduler's incidental diagnostics
		// (persist errors etc.) and the supervision plane's per-decision log.
		cfg.Log = func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		}
	}
	sched, err := service.NewScheduler(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(int(naspipe.ExitUsage))
	}
	// /debug/ sources its telemetry snapshot from the scheduler's rollup:
	// finished jobs' totals plus every live bus.
	debugMux := telemetry.NewDebugMux(sched.TelemetrySnapshot)
	srv := service.NewServer(sched).WithObs(reg, logger).WithDebug(debugMux)
	bound, shutdown, err := service.ServeHandler(*addr, srv)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(int(naspipe.ExitUsage))
	}
	logger.Info("serving", "api", "/"+service.APIVersion, "addr", bound,
		"state_dir", *stateDir, "workers", *workers, "quota", *quota, "queue", *queue,
		"metrics", !*noMetrics)
	if *debugAddr != "" {
		dbg, stopDbg, derr := telemetry.ServeDebugMux(*debugAddr, debugMux)
		if derr != nil {
			fmt.Fprintln(os.Stderr, derr)
			os.Exit(int(naspipe.ExitUsage))
		}
		defer stopDbg()
		logger.Info("debug server up", "addr", "http://"+dbg+"/debug/")
	}

	// SIGINT/SIGTERM drain gracefully: stop admitting, cancel running
	// jobs (their committed frontiers are already checkpointed), persist
	// every status, then exit 0. A kill -9 skips all of that and relies
	// on recovery instead — both paths resume the same way.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	logger.Info("draining", "signal", got.String(),
		"note", "running jobs checkpoint and will recover on restart")
	shutdown()
	sched.Close()
	logger.Info("drained", "state_dir", *stateDir)
}
