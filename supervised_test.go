package naspipe_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"naspipe"
	"naspipe/internal/scenario"
)

// superviseTestConfig is the test baseline: generous budgets (the
// aggressive rate-based schedules legitimately crash many incarnations
// in a row before the frontier first advances) and backoff shrunk so
// retry loops run in microseconds instead of the operator-scale default.
func superviseTestConfig() naspipe.SuperviseConfig {
	sc := naspipe.DefaultSuperviseConfig()
	sc.MaxRestarts = 60
	sc.CrashLoopWindow = 25
	sc.BackoffBase = 100 * time.Microsecond
	sc.BackoffMax = time.Millisecond
	return sc
}

// assertSupervisedBitwise composes the committed sequential prefix with
// the final incarnation's replayed suffix trace and requires bitwise
// equality with the uninterrupted sequential reference — the same
// composition law TestCrashResumeMatrix pins for the operator loop.
func assertSupervisedBitwise(t *testing.T, res naspipe.Result) {
	t.Helper()
	cfg0 := crashCfg(2)
	tc := crashTrainCfg(cfg0)
	full := naspipe.SampleSubnets(cfg0.Space, cfg0.Seed, cfg0.NumSubnets)
	seqReference.once.Do(func() {
		seqReference.want = naspipe.TrainSequential(tc, full).Checksum
	})
	want := seqReference.want
	if res.BaseSeq+res.Completed != len(full) {
		t.Fatalf("final run covers [%d, %d), want end %d", res.BaseSeq, res.BaseSeq+res.Completed, len(full))
	}
	prefix := naspipe.TrainSequential(tc, full[:res.BaseSeq])
	got := prefix.Checksum
	if res.BaseSeq < len(full) {
		rep, err := naspipe.TrainReplayOn(tc, prefix.Net, full[res.BaseSeq:], res.Trace)
		if err != nil {
			t.Fatalf("suffix replay: %v", err)
		}
		got = rep.Checksum
	}
	if got != want {
		t.Fatalf("supervised weights %016x diverge from sequential reference %016x", got, want)
	}
}

// TestSupervisedCrashMatrix is the supervision plane's acceptance gate:
// every fault schedule × {2,4,8} GPUs runs to completion under the
// supervisor with zero operator intervention — crashes caught
// in-process, resumed from the checkpoint — and the final weights stay
// bitwise identical to the uninterrupted sequential reference.
// The hand-rolled supervised loop moved into the scenario plane: each
// cell is scenario.MatrixCell(..., supervised=true) — the same workload
// geometry with the matrices' generous budgets attached as a
// SuperviseSpec — run and bitwise-verified by scenario.Run.
func TestSupervisedCrashMatrix(t *testing.T) {
	for _, gpus := range []int{2, 4, 8} {
		for _, sched := range crashSchedules {
			gpus, sched := gpus, sched
			t.Run(fmt.Sprintf("gpus=%d/%s", gpus, sched.name), func(t *testing.T) {
				t.Parallel()
				s, err := scenario.MatrixCell(sched.name, sched.spec, gpus, true)
				if err != nil {
					t.Fatalf("matrix cell: %v", err)
				}
				cell, _, err := scenario.Run(context.Background(), s, scenario.Options{StateDir: t.TempDir()})
				if err != nil {
					t.Fatalf("scenario run: %v", err)
				}
				if len(cell.Failures) > 0 {
					t.Fatalf("supervised cell failed: %v", cell.Failures)
				}
				if !cell.Verified {
					t.Fatal("supervised weights not bitwise-verified against the sequential reference")
				}
				// Every schedule crashes at incarnation 0 (pinned by
				// TestCrashResumeMatrix), so supervision must have restarted.
				if cell.Restarts < 1 {
					t.Fatalf("schedule %q never exercised supervised recovery on %d GPUs", sched.spec, gpus)
				}
			})
		}
	}
}

// TestSupervisedElasticDegrade pins elastic degraded-mode recovery: a
// crash attributed to one stage at D=8 triggers a halving to D=4, the
// suffix re-partitions across 4 stages, and the composed weights are
// still bitwise identical — CSP orders accesses by subnet sequence, not
// stage count.
func TestSupervisedElasticDegrade(t *testing.T) {
	plan, err := naspipe.ParseFaultPlan("seed=101,crashat=1:5:F")
	if err != nil {
		t.Fatal(err)
	}
	cfg := crashCfg(8)
	r, err := naspipe.NewRunner(
		naspipe.WithExecutor(naspipe.ExecutorConcurrent),
		naspipe.WithTrace(true),
		naspipe.WithFaults(plan),
		naspipe.WithCheckpoint(filepath.Join(t.TempDir(), "run.ckpt")),
		naspipe.WithCheckpointTraining(crashTrainCfg(cfg)),
		naspipe.WithElasticResume(),
	)
	if err != nil {
		t.Fatal(err)
	}
	sc := superviseTestConfig()
	sc.ElasticAfter = 1
	res, rep, err := r.RunSupervised(context.Background(), cfg, sc)
	if err != nil {
		t.Fatalf("elastic supervised run failed: %v", err)
	}
	if len(rep.ElasticSteps) != 1 || rep.ElasticSteps[0] != 4 || rep.FinalGPUs != 4 {
		t.Fatalf("elastic steps %v final D=%d, want one halving to 4", rep.ElasticSteps, rep.FinalGPUs)
	}
	if res.D != 4 {
		t.Fatalf("final incarnation ran at D=%d, want 4", res.D)
	}
	assertSupervisedBitwise(t, res)
}

// TestSupervisedElasticNeedsOptIn pins the validation: ElasticAfter
// without a Runner built WithElasticResume is a config error, because
// the checkpoint identity guard would reject the re-partitioned resume.
func TestSupervisedElasticNeedsOptIn(t *testing.T) {
	r, err := naspipe.NewRunner(
		naspipe.WithExecutor(naspipe.ExecutorConcurrent),
		naspipe.WithCheckpoint(filepath.Join(t.TempDir(), "run.ckpt")),
	)
	if err != nil {
		t.Fatal(err)
	}
	sc := superviseTestConfig()
	sc.ElasticAfter = 1
	_, rep, err := r.RunSupervised(context.Background(), crashCfg(8), sc)
	if err == nil || !strings.Contains(err.Error(), "WithElasticResume") {
		t.Fatalf("elastic config without opt-in accepted: %v", err)
	}
	if rep.FinalState != naspipe.HealthFailed {
		t.Fatalf("report state %v, want failed", rep.FinalState)
	}
}

// TestSupervisedRequiresCheckpointAndConcurrent pins the job validation
// surface.
func TestSupervisedRequiresCheckpointAndConcurrent(t *testing.T) {
	noCkpt, err := naspipe.NewRunner(naspipe.WithExecutor(naspipe.ExecutorConcurrent))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := noCkpt.RunSupervised(context.Background(), crashCfg(2), superviseTestConfig()); err == nil {
		t.Fatal("supervision without WithCheckpoint accepted")
	}
	simulated, err := naspipe.NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := simulated.RunSupervised(context.Background(), crashCfg(2), superviseTestConfig()); err == nil {
		t.Fatal("supervision on the simulated executor accepted")
	}
}

// TestSupervisedWatchdogRecoversWedge pins the watchdog end to end: a
// wedged stage completes nothing, the watchdog converts the flat
// progress signals into a diagnosed stall naming the wedged stage, and
// the supervisor resumes the incarnation to a bitwise-verified finish.
func TestSupervisedWatchdogRecoversWedge(t *testing.T) {
	plan, err := naspipe.ParseFaultPlan("seed=7,wedgeat=1:6:F")
	if err != nil {
		t.Fatal(err)
	}
	cfg := crashCfg(4)
	bus := naspipe.NewTelemetryBus(0)
	r, err := naspipe.NewRunner(
		naspipe.WithExecutor(naspipe.ExecutorConcurrent),
		naspipe.WithTrace(true),
		naspipe.WithFaults(plan),
		naspipe.WithCheckpoint(filepath.Join(t.TempDir(), "run.ckpt")),
		naspipe.WithCheckpointTraining(crashTrainCfg(cfg)),
		naspipe.WithTelemetry(bus),
	)
	if err != nil {
		t.Fatal(err)
	}
	sc := superviseTestConfig()
	sc.Watchdog.StallAfter = 150 * time.Millisecond
	sc.Telemetry = bus
	res, rep, err := r.RunSupervised(context.Background(), cfg, sc)
	if err != nil {
		t.Fatalf("wedged supervised run failed: %v", err)
	}
	if rep.WatchdogFires != 1 || len(rep.Incidents) != 1 {
		t.Fatalf("watchdog fires=%d incidents=%d, want exactly one stall", rep.WatchdogFires, len(rep.Incidents))
	}
	in := rep.Incidents[0]
	if in.Stall == nil {
		t.Fatal("incident not attributed to the watchdog")
	}
	if got := in.Stall.BlockedStage(); got != 1 {
		t.Fatalf("diagnosis blames stage %d, want the wedged stage 1", got)
	}
	if !in.Stall.Diag.Stages[1].Wedged {
		t.Fatalf("stage 1 not flagged wedged in the diagnosis: %+v", in.Stall.Diag.Stages[1])
	}
	if msg := in.Stall.Error(); !strings.Contains(msg, "diagnosis: stage 1 is the blocked stage") {
		t.Fatalf("diagnosis text does not name the blocked stage:\n%s", msg)
	}
	// Every state transition landed on the bus as an OpHealth event.
	if snap := bus.Snapshot(); snap.HealthTransitions != int64(len(rep.Transitions)) || snap.HealthTransitions == 0 {
		t.Fatalf("health events on bus = %d, report has %d transitions", snap.HealthTransitions, len(rep.Transitions))
	}
	assertSupervisedBitwise(t, res)
}

// TestSupervisedWatchdogQuietOnFaultFreeMatrix pins the false-positive
// bound: heavy timing jitter plus a cache budget of one subnet footprint
// (maximum thrash) across the depth matrix must never trip the stall
// detector, because task completions keep the progress signals moving.
func TestSupervisedWatchdogQuietOnFaultFreeMatrix(t *testing.T) {
	for _, gpus := range []int{2, 4, 8} {
		gpus := gpus
		t.Run(fmt.Sprintf("gpus=%d", gpus), func(t *testing.T) {
			t.Parallel()
			cfg := crashCfg(gpus)
			cfg.TimingJitter = 1.0
			cfg.JitterSeed = cfg.Seed
			r, err := naspipe.NewRunner(
				naspipe.WithExecutor(naspipe.ExecutorConcurrent),
				naspipe.WithTrace(true),
				naspipe.WithCache(1),
				naspipe.WithCheckpoint(filepath.Join(t.TempDir(), "run.ckpt")),
				naspipe.WithCheckpointTraining(crashTrainCfg(cfg)),
			)
			if err != nil {
				t.Fatal(err)
			}
			sc := superviseTestConfig()
			sc.Watchdog.StallAfter = 500 * time.Millisecond
			sc.Watchdog.Poll = 2 * time.Millisecond
			_, rep, err := r.RunSupervised(context.Background(), cfg, sc)
			if err != nil {
				t.Fatalf("fault-free supervised run failed: %v", err)
			}
			if rep.WatchdogFires != 0 || rep.Restarts != 0 {
				t.Fatalf("watchdog false positive: fires=%d restarts=%d", rep.WatchdogFires, rep.Restarts)
			}
		})
	}
}

// TestSupervisedCancelLeavesResumableCheckpointAndNoLeaks pins graceful
// interruption: cancelling mid-run (here: while a wedge holds the
// pipeline at a known committed cursor) returns the context error with
// the state machine short of done/failed, leaves a valid resumable
// checkpoint, leaks no goroutines, and the resumed supervised run
// finishes bitwise identical.
func TestSupervisedCancelLeavesResumableCheckpointAndNoLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	plan, err := naspipe.ParseFaultPlan("seed=7,wedgeat=0:10:B")
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	cfg := crashCfg(2)
	tc := crashTrainCfg(cfg)
	r, err := naspipe.NewRunner(
		naspipe.WithExecutor(naspipe.ExecutorConcurrent),
		naspipe.WithTrace(true),
		naspipe.WithFaults(plan),
		naspipe.WithCheckpoint(ckpt),
		naspipe.WithCheckpointTraining(tc),
	)
	if err != nil {
		t.Fatal(err)
	}
	sc := superviseTestConfig()
	sc.Watchdog.StallAfter = time.Minute // the test cancels first

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	var res naspipe.Result
	var rep *naspipe.SuperviseReport
	var runErr error
	go func() {
		defer close(done)
		res, rep, runErr = r.RunSupervised(ctx, cfg, sc)
	}()

	// The wedge at stage 0's backward of subnet 10 holds the run exactly
	// at committed cursor 10: frontier commits are contiguous, so when
	// the wedge fires subnets 0..9 are on disk. Wait for that cut, then
	// interrupt.
	deadline := time.After(15 * time.Second)
	for {
		if ck, err := naspipe.LoadCheckpoint(ckpt); err == nil && ck.Cursor >= 10 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("checkpoint never reached the wedge cursor")
		case <-time.After(2 * time.Millisecond):
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("cancelled supervised run did not return")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("interruption returned %v, want context.Canceled", runErr)
	}
	if rep.FinalState == naspipe.HealthDone || rep.FinalState == naspipe.HealthFailed {
		t.Fatalf("interrupted state %v — must stay resumable, not terminal", rep.FinalState)
	}
	_ = res

	ck, err := naspipe.LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("checkpoint invalid after interruption: %v", err)
	}
	if ck.Cursor != 10 || ck.NumSubnets != cfg.NumSubnets {
		t.Fatalf("checkpoint cursor %d/%d, want 10/%d", ck.Cursor, ck.NumSubnets, cfg.NumSubnets)
	}
	if ck.Incarnation < 1 {
		t.Fatalf("interruption did not bump the incarnation: %d (the wedge would refire)", ck.Incarnation)
	}

	// No goroutine may outlive the cancelled run (stage goroutines,
	// watchdog, prefetchers). Allow the runtime a moment to retire them.
	leakDeadline := time.After(10 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		select {
		case <-leakDeadline:
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		case <-time.After(10 * time.Millisecond):
		}
	}

	// The interrupted run resumes under supervision to a bitwise finish;
	// the incarnation bump means the wedge does not refire.
	res2, rep2, err := r.ResumeSupervised(context.Background(), cfg, sc)
	if err != nil {
		t.Fatalf("supervised resume after interruption failed: %v", err)
	}
	if rep2.FinalState != naspipe.HealthDone || rep2.WatchdogFires != 0 {
		t.Fatalf("resume state %v fires %d, want clean done", rep2.FinalState, rep2.WatchdogFires)
	}
	if res2.BaseSeq != 10 {
		t.Fatalf("resume started at cursor %d, want 10", res2.BaseSeq)
	}
	assertSupervisedBitwise(t, res2)
}
