package moe

import (
	"testing"
	"testing/quick"

	"naspipe/internal/cluster"
	"naspipe/internal/data"
	"naspipe/internal/engine"
	"naspipe/internal/sched"
	"naspipe/internal/supernet"
	"naspipe/internal/train"
)

func TestStreamDeterministicAndValid(t *testing.T) {
	c := StreamConfig{Space: supernet.NLPc2, Seed: 1, Skew: 1.0}
	a, err := Stream(c, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Stream(c, 50)
	for i := range a {
		if a[i].Seq != i || len(a[i].Choices) != c.Space.Blocks {
			t.Fatalf("subnet %d malformed", i)
		}
		for blk, ch := range a[i].Choices {
			if ch < 0 || ch >= c.Space.Choices {
				t.Fatalf("subnet %d block %d choice %d out of range", i, blk, ch)
			}
			if ch != b[i].Choices[blk] {
				t.Fatal("stream not deterministic")
			}
		}
	}
}

func TestZeroSkewApproximatesUniform(t *testing.T) {
	c := StreamConfig{Space: supernet.NLPc3, Seed: 2, Skew: 0}
	subs, err := Stream(c, 600)
	if err != nil {
		t.Fatal(err)
	}
	loads := HotExpertLoad(c, subs)
	// Uniform over 24 experts: each ~4.2%; hottest should stay below 10%.
	if loads[0] > 0.10 {
		t.Fatalf("skew-0 hottest expert load %.3f too high", loads[0])
	}
}

func TestSkewConcentratesTraffic(t *testing.T) {
	mk := func(skew float64) []float64 {
		c := StreamConfig{Space: supernet.NLPc3, Seed: 2, Skew: skew}
		subs, err := Stream(c, 600)
		if err != nil {
			t.Fatal(err)
		}
		return HotExpertLoad(c, subs)
	}
	uniform, hot := mk(0), mk(1.5)
	if hot[0] <= 2*uniform[0] {
		t.Fatalf("skew 1.5 hottest load %.3f not concentrated vs uniform %.3f", hot[0], uniform[0])
	}
}

func TestDependencyRateGrowsWithSkew(t *testing.T) {
	rate := func(skew float64) float64 {
		c := StreamConfig{Space: supernet.NLPc1, Seed: 3, Skew: skew}
		subs, err := Stream(c, 300)
		if err != nil {
			t.Fatal(err)
		}
		return DependencyRate(subs)
	}
	r0, r1, r2 := rate(0), rate(1.0), rate(2.0)
	if !(r0 < r1 && r1 < r2) {
		t.Fatalf("dependency rate not increasing with skew: %.3f %.3f %.3f", r0, r1, r2)
	}
}

func TestValidateRejectsNegativeSkew(t *testing.T) {
	if _, err := Stream(StreamConfig{Space: supernet.NLPc3, Skew: -1}, 5); err == nil {
		t.Fatal("expected skew validation error")
	}
}

func TestMoEStreamTrainsReproducibly(t *testing.T) {
	// Even under skewed MoE routing, CSP keeps training bitwise
	// reproducible across cluster sizes.
	sp := supernet.NLPc3.Scaled(8, 4)
	subs, err := Stream(StreamConfig{Space: sp, Seed: 5, Skew: 1.2}, 18)
	if err != nil {
		t.Fatal(err)
	}
	cfg := train.Config{Space: sp, Dim: 8, Seed: 5, BatchSize: 2, LR: 0.05, Dataset: data.WNMT}
	var sums []uint64
	for _, d := range []int{2, 4} {
		p, _ := sched.New("naspipe")
		res, _ := engine.Run(engine.Config{
			Space: sp, Spec: cluster.Default(d), Seed: 5, Subnets: subs, RecordTrace: true,
		}, p)
		if res.Failed || res.Deadlock {
			t.Fatalf("MoE run failed at D=%d", d)
		}
		num, err := train.Replay(cfg, subs, res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, num.Checksum)
	}
	if sums[0] != sums[1] {
		t.Fatal("MoE-routed training not reproducible across GPU counts")
	}
}

func TestSkewDegradesThroughputGracefully(t *testing.T) {
	// Hotter routing means denser dependencies means more pipeline
	// bubbles — the engine must degrade monotonically-ish, not collapse.
	bubble := func(skew float64) float64 {
		subs, err := Stream(StreamConfig{Space: supernet.NLPc1, Seed: 7, Skew: skew}, 120)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := sched.New("naspipe")
		res, _ := engine.Run(engine.Config{
			Space: supernet.NLPc1, Spec: cluster.Default(8), Seed: 7,
			Subnets: subs, InflightLimit: 48,
		}, p)
		if res.Failed || res.Deadlock {
			t.Fatal("run failed")
		}
		return res.BubbleRatio
	}
	b0, b2 := bubble(0), bubble(2.0)
	if b2 <= b0 {
		t.Fatalf("skewed routing should raise the bubble: %.3f vs %.3f", b0, b2)
	}
	if b2 > 0.99 {
		t.Fatalf("pipeline collapsed under skew: bubble %.3f", b2)
	}
}

// Property: streams are valid for arbitrary seeds and skews.
func TestQuickStreamValid(t *testing.T) {
	f := func(seed uint64, skewRaw uint8) bool {
		skew := float64(skewRaw%30) / 10
		sp := supernet.NLPc3.Scaled(6, 5)
		subs, err := Stream(StreamConfig{Space: sp, Seed: seed, Skew: skew}, 20)
		if err != nil {
			return false
		}
		for i, s := range subs {
			if s.Seq != i || len(s.Choices) != 6 {
				return false
			}
			for _, c := range s.Choices {
				if c < 0 || c >= 5 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
