package explore

import (
	"testing"

	"naspipe/internal/train"
)

func TestRandomSearchDeterministicAndValid(t *testing.T) {
	cfg, net := trainedNet(t, 9)
	a, err := RandomSearch(cfg, net, 20, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomSearch(cfg, net, 20, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Score != b.Best.Score || a.Evaluated != 20 {
		t.Fatal("random search not deterministic")
	}
	if len(a.History) != 20 {
		t.Fatalf("history length %d", len(a.History))
	}
	// Best-so-far history is monotone non-decreasing by construction.
	for i := 1; i < len(a.History); i++ {
		if a.History[i] < a.History[i-1] {
			t.Fatal("best-so-far history decreased")
		}
	}
	// Population is sorted and capped.
	for i := 1; i < len(a.Population); i++ {
		if a.Population[i].Score > a.Population[i-1].Score {
			t.Fatal("population not sorted")
		}
	}
}

func TestRandomSearchRejectsBadBudget(t *testing.T) {
	cfg, net := trainedNet(t, 9)
	if _, err := RandomSearch(cfg, net, 0, 1, 1); err == nil {
		t.Fatal("expected budget error")
	}
}

func TestEvolutionCompetitiveWithRandom(t *testing.T) {
	// At equal evaluation budget, evolution should not lose badly to
	// random search (and typically wins on structured spaces).
	cfg, net := trainedNet(t, 12)
	sc := DefaultSearchConfig(6)
	sc.Population = 10
	sc.Generations = 30 // 40 evaluations total
	evo, err := Search(cfg, net, sc)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RandomSearch(cfg, net, evo.Evaluated, sc.ValBatches, 6)
	if err != nil {
		t.Fatal(err)
	}
	if evo.Best.Score < rnd.Best.Score*0.97 {
		t.Fatalf("evolution (%.3f) lost badly to random (%.3f)", evo.Best.Score, rnd.Best.Score)
	}
}

// mustTrain reuses the shared fixture to keep the comparison cheap.
func TestRandomSearchUsesDistinctSeedStreams(t *testing.T) {
	cfg, net := trainedNet(t, 9)
	a, _ := RandomSearch(cfg, net, 10, 1, 1)
	b, _ := RandomSearch(cfg, net, 10, 1, 2)
	same := true
	for i := range a.Best.Subnet.Choices {
		if a.Best.Subnet.Choices[i] != b.Best.Subnet.Choices[i] {
			same = false
		}
	}
	if same && a.Best.Score == b.Best.Score {
		t.Log("different seeds coincided on the best candidate (possible on tiny spaces)")
	}
	_ = train.Config{}
}
