package engine_test

import (
	"bytes"
	"context"
	"testing"

	"naspipe/internal/engine"
	"naspipe/internal/telemetry"
)

// TestConcurrentTelemetryChromeTraceCanonicalCounts is the telemetry
// plane's acceptance check: a concurrent run publishing to a bus exports
// a Chrome trace that validates, with exactly the canonical event
// census — one complete span per task slice (2·n·D: every subnet runs
// one forward and one backward on every stage; this plane never splits
// spans) and one flow arrow per cross-stage hand-off (2·n·(D−1)).
func TestConcurrentTelemetryChromeTraceCanonicalCounts(t *testing.T) {
	const n, d = 18, 4
	cfg := ccMemCfg(d, true)
	cfg.NumSubnets = n
	bus := telemetry.NewBus(0)
	cfg.Telemetry = bus
	res, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != n {
		t.Fatalf("completed %d/%d", res.Completed, n)
	}
	if dropped := bus.Dropped(); dropped != 0 {
		t.Fatalf("bus dropped %d events at default capacity", dropped)
	}

	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, bus.Events()); err != nil {
		t.Fatal(err)
	}
	st, err := telemetry.ValidateChromeTrace(&buf)
	if err != nil {
		t.Fatalf("exported trace does not validate: %v", err)
	}
	if want := 2 * n * d; st.TaskX != want {
		t.Fatalf("trace has %d task slices, want 2·n·D = %d", st.TaskX, want)
	}
	if want := 2 * n * (d - 1); st.FlowBegin != want || st.FlowEnd != want {
		t.Fatalf("flow arrows %d/%d, want 2·n·(D−1) = %d both ways", st.FlowBegin, st.FlowEnd, want)
	}
	if st.Stages != d {
		t.Fatalf("trace names %d stages, want %d", st.Stages, d)
	}

	// The same census drives Result.Spans (the figure timelines).
	if want := 2 * n * d; len(res.Spans) != want {
		t.Fatalf("reconstructed %d spans, want %d", len(res.Spans), want)
	}
	for _, s := range res.Spans {
		if s.EndMs <= s.StartMs {
			t.Fatalf("span %+v is empty or inverted", s)
		}
	}

	// Live counters agree with the stream.
	snap := bus.Snapshot()
	if snap.Started != int64(2*n*d) || snap.Completed != int64(2*n*d) {
		t.Fatalf("snapshot counted %d/%d task starts/completions, want %d",
			snap.Started, snap.Completed, 2*n*d)
	}
	if snap.CacheHits+snap.CacheMisses == 0 {
		t.Fatal("memory plane enabled but snapshot saw no cache traffic")
	}
}

// TestConcurrentRecordTracePopulatesSpansWithoutBus: RecordTrace alone
// (no caller-supplied bus) still yields Result.Spans via a private bus,
// so figure-cc renders without telemetry wiring at the call site.
func TestConcurrentRecordTracePopulatesSpansWithoutBus(t *testing.T) {
	cfg := ccCfg(4, false)
	res, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * cfg.NumSubnets * 4; len(res.Spans) != want {
		t.Fatalf("RecordTrace produced %d spans, want %d", len(res.Spans), want)
	}
}

// TestConcurrentTelemetryDisabledEmitsNothing: with no bus and no trace
// request the run must not fabricate spans (the disabled path stays
// zero-cost; bench_test.go guards the cost side).
func TestConcurrentTelemetryDisabledEmitsNothing(t *testing.T) {
	cfg := ccCfg(2, false)
	cfg.RecordTrace = false
	res, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spans != nil {
		t.Fatalf("disabled telemetry produced %d spans", len(res.Spans))
	}
}

// TestSimulatedTelemetryChromeTraceValidates: the discrete-event engine
// publishes the same taxonomy (in simulated nanoseconds) — the export
// must validate, cover every stage, and carry a balanced flow census.
func TestSimulatedTelemetryChromeTraceValidates(t *testing.T) {
	const n, d = 18, 4
	cfg := ccCfg(d, false)
	cfg.NumSubnets = n
	bus := telemetry.NewBus(0)
	cfg.Telemetry = bus
	res := run(t, "naspipe", cfg)
	if res.Failed {
		t.Fatalf("simulated run failed: %s", res.FailReason)
	}
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, bus.Events()); err != nil {
		t.Fatal(err)
	}
	st, err := telemetry.ValidateChromeTrace(&buf)
	if err != nil {
		t.Fatalf("exported trace does not validate: %v", err)
	}
	if st.Stages != d {
		t.Fatalf("trace names %d stages, want %d", st.Stages, d)
	}
	// The simulator splits spans at preemption boundaries, so the slice
	// count is at least one per task, and flows stay balanced and exact.
	if st.TaskX < 2*n*d {
		t.Fatalf("trace has %d task slices, want >= 2·n·D = %d", st.TaskX, 2*n*d)
	}
	if want := 2 * n * (d - 1); st.FlowBegin != want || st.FlowEnd != want {
		t.Fatalf("flow arrows %d/%d, want %d both ways", st.FlowBegin, st.FlowEnd, want)
	}
	snap := bus.Snapshot()
	if snap.Completed != int64(2*n*d) {
		t.Fatalf("snapshot counted %d completions, want %d", snap.Completed, 2*n*d)
	}
	if snap.Preempted == 0 {
		t.Fatal("CSP preemption never fired on a dependency-dense simulated run")
	}
}
