package train

import (
	"testing"

	"naspipe/internal/data"
	"naspipe/internal/supernet"
)

// TestStepComputePathIsAllocationFree pins the arena contract: once the
// scratch buffers are warm, a full subnet step — forward chain, loss,
// backward chain, gradient accumulation — performs zero heap allocations.
// Batch generation is the data plane's job and is excluded by fetching
// the batch outside the measured region, exactly as the trainers do.
// A future PR that reintroduces per-task garbage on this path fails here
// before it shows up in a profile.
func TestStepComputePathIsAllocationFree(t *testing.T) {
	sp := supernet.NLPc3.Scaled(6, 3)
	cfg := benchCfg(sp, 12).withDefaults()
	net := supernet.BuildNumeric(sp, cfg.Dim, cfg.Seed)
	sub := supernet.Sample(sp, 1, 1)[0]
	src := data.NewSource(cfg.Dataset, cfg.Dim, cfg.BatchSize, cfg.Seed)
	batch := src.Batch(sub.Seq)

	ar := newArena(cfg.Dim)
	views := ar.viewsBuf(len(sub.Choices))
	for b, c := range sub.Choices {
		views[b] = net.At(b, c)
	}
	// Warm the arena: first call sizes buffers and the gradient set.
	_, gs := step(cfg, batch, sub, views, ar)
	ar.release(gs)

	allocs := testing.AllocsPerRun(50, func() {
		_, gs := step(cfg, batch, sub, views, ar)
		ar.release(gs)
	})
	if allocs != 0 {
		t.Fatalf("step compute path allocated %.1f times per run, want 0", allocs)
	}
}

// TestStepArenaReuseIsValueIdentical proves buffer reuse cannot change
// results: training the same stream through the arena path twice (fresh
// arena vs warm reused arena) produces bitwise-identical weights.
func TestStepArenaReuseIsValueIdentical(t *testing.T) {
	sp := supernet.NLPc3.Scaled(6, 3)
	cfg := benchCfg(sp, 12)
	subs := supernet.Sample(sp, 1, 12)

	a := Sequential(cfg, subs)
	b := Sequential(cfg, subs)
	if a.Checksum != b.Checksum {
		t.Fatalf("repeat sequential runs diverged: %#x vs %#x", a.Checksum, b.Checksum)
	}

	// StepOn recycles arenas through a pool; a second pass over the same
	// stream on a fresh net must land on the same weights as Sequential.
	net := supernet.BuildNumeric(sp, 12, cfg.Seed)
	for _, sub := range subs {
		StepOn(cfg, net, sub)
	}
	if got := net.Checksum(); got != a.Checksum {
		t.Fatalf("StepOn stream checksum %#x, want Sequential's %#x", got, a.Checksum)
	}
}
