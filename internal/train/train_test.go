package train

import (
	"testing"
	"testing/quick"

	"naspipe/internal/cluster"
	"naspipe/internal/data"
	"naspipe/internal/engine"
	"naspipe/internal/layers"
	"naspipe/internal/sched"
	"naspipe/internal/supernet"
)

func testCfg(space supernet.Space) Config {
	return Config{Space: space, Dim: 8, Seed: 7, BatchSize: 3, LR: 0.05, Dataset: data.WNMT}
}

func traceFor(t testing.TB, policy string, space supernet.Space, d, n int, seed uint64) (engine.Result, []supernet.Subnet) {
	t.Helper()
	p, err := sched.New(policy)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.Config{Space: space, Spec: cluster.Default(d), Seed: seed, NumSubnets: n, RecordTrace: true}
	res, _ := engine.Run(cfg, p)
	if res.Failed || res.Deadlock {
		t.Fatalf("%s on %s D=%d: failed=%v deadlock=%v", policy, space.Name, d, res.Failed, res.Deadlock)
	}
	return res, supernet.Sample(space, seed, n)
}

func TestSequentialDeterministic(t *testing.T) {
	sp := supernet.NLPc3.Scaled(6, 3)
	subs := supernet.Sample(sp, 1, 20)
	a := Sequential(testCfg(sp), subs)
	b := Sequential(testCfg(sp), subs)
	if a.Checksum != b.Checksum {
		t.Fatal("sequential training not deterministic")
	}
	if !LossesBitwiseEqual(a.Losses, b.Losses) {
		t.Fatal("loss series not bitwise equal")
	}
}

func TestSequentialLearns(t *testing.T) {
	sp := supernet.NLPc3.Scaled(4, 2)
	subs := supernet.Sample(sp, 2, 150)
	res := Sequential(testCfg(sp), subs)
	var early, late float64
	for _, l := range res.Losses[:30] {
		early += float64(l)
	}
	for _, l := range res.Losses[len(res.Losses)-30:] {
		late += float64(l)
	}
	if late >= early {
		t.Fatalf("training did not reduce loss: early=%f late=%f", early/30, late/30)
	}
}

// The centerpiece: a CSP trace replays to BITWISE the weights of
// sequential training, for several GPU counts (Definition 1).
func TestCSPReplayBitwiseEqualsSequential(t *testing.T) {
	sp := supernet.NLPc3.Scaled(8, 3)
	cfg := testCfg(sp)
	const n = 24
	seq := Sequential(cfg, supernet.Sample(sp, 1, n))
	for _, d := range []int{1, 2, 4} {
		res, subs := traceFor(t, "naspipe", sp, d, n, 1)
		rep, err := Replay(cfg, subs, res.Trace)
		if err != nil {
			t.Fatalf("D=%d: %v", d, err)
		}
		if rep.Checksum != seq.Checksum {
			t.Errorf("D=%d: CSP replay checksum %x != sequential %x", d, rep.Checksum, seq.Checksum)
		}
		if !LossesBitwiseEqual(rep.Losses, seq.Losses) {
			t.Errorf("D=%d: CSP replay losses differ from sequential", d)
		}
	}
}

func TestSequentialPolicyReplayAlsoBitwise(t *testing.T) {
	sp := supernet.CVc3.Scaled(6, 2)
	cfg := testCfg(sp)
	cfg.Dataset = data.ImageNet
	res, subs := traceFor(t, "sequential", sp, 2, 16, 3)
	seq := Sequential(cfg, subs)
	rep, err := Replay(cfg, subs, res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checksum != seq.Checksum {
		t.Fatal("sequential-policy replay diverged from reference")
	}
}

func TestBSPReplayDivergesAcrossGPUCounts(t *testing.T) {
	// GPipe's BSP violates causal order; its result depends on the GPU
	// count (Table 3's BSP rows).
	sp := supernet.NLPc3.Scaled(8, 2) // dense sharing
	cfg := testCfg(sp)
	sums := map[int]uint64{}
	for _, d := range []int{2, 4} {
		res, subs := traceFor(t, "gpipe", sp, d, 24, 1)
		rep, err := Replay(cfg, subs, res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		sums[d] = rep.Checksum
	}
	if sums[2] == sums[4] {
		t.Error("BSP replay unexpectedly identical across GPU counts")
	}
	// And BSP diverges from the sequential reference.
	seq := Sequential(cfg, supernet.Sample(sp, 1, 24))
	if sums[2] == seq.Checksum {
		t.Error("BSP replay unexpectedly equals sequential result")
	}
}

func TestASPReplayDiverges(t *testing.T) {
	sp := supernet.CVc3.Scaled(8, 2)
	cfg := testCfg(sp)
	cfg.Dataset = data.ImageNet
	res, subs := traceFor(t, "pipedream", sp, 4, 24, 1)
	rep, err := Replay(cfg, subs, res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	seq := Sequential(cfg, subs)
	if rep.Checksum == seq.Checksum {
		t.Error("ASP replay unexpectedly equals sequential result")
	}
}

func TestReplayRejectsMalformedTraces(t *testing.T) {
	sp := supernet.NLPc3.Scaled(4, 2)
	cfg := testCfg(sp)
	res, subs := traceFor(t, "naspipe", sp, 2, 6, 1)
	// Truncate the trace: missing writes must be reported.
	tr := *res.Trace
	tr.Events = tr.Events[:len(tr.Events)-1]
	if _, err := Replay(cfg, subs, &tr); err == nil {
		t.Fatal("expected error for truncated trace")
	}
}

func TestEvaluateAndScore(t *testing.T) {
	sp := supernet.NLPc3.Scaled(5, 2)
	cfg := testCfg(sp)
	subs := supernet.Sample(sp, 1, 60)
	res := Sequential(cfg, subs)
	loss := Evaluate(cfg, res.Net, subs[0], 3)
	if loss <= 0 {
		t.Fatalf("evaluate loss %f", loss)
	}
	// Score monotonicity.
	if Score(layers.NLP, 1.0) <= Score(layers.NLP, 2.0) {
		t.Fatal("NLP score not decreasing in loss")
	}
	if Score(layers.CV, 1.0) <= Score(layers.CV, 2.0) {
		t.Fatal("CV score not decreasing in loss")
	}
	best, score := BestSubnetScore(cfg, res.Net, subs[:8], 2)
	if len(best.Choices) != sp.Blocks || score <= 0 {
		t.Fatalf("BestSubnetScore degenerate: %v %f", best, score)
	}
}

func TestFinalLoss(t *testing.T) {
	r := Result{Losses: []float32{4, 4, 4, 4, 2, 2, 2, 2}}
	if got := r.FinalLoss(); got != 2 {
		t.Fatalf("FinalLoss = %f want 2 (last quarter)", got)
	}
	if (Result{}).FinalLoss() != 0 {
		t.Fatal("empty FinalLoss should be 0")
	}
}

// Property: CSP replay equals sequential for random seeds and GPU counts.
func TestQuickCSPReproducibility(t *testing.T) {
	f := func(seed uint64, dRaw uint8) bool {
		d := int(dRaw)%4 + 1
		sp := supernet.NLPc3.Scaled(6, 2)
		cfg := Config{Space: sp, Dim: 6, Seed: seed, BatchSize: 2, LR: 0.05, Dataset: data.WNMT}
		p, _ := sched.New("naspipe")
		res, _ := engine.Run(engine.Config{
			Space: sp, Spec: cluster.Default(d), Seed: seed, NumSubnets: 10, RecordTrace: true,
		}, p)
		if res.Failed || res.Deadlock {
			return false
		}
		subs := supernet.Sample(sp, seed, 10)
		rep, err := Replay(cfg, subs, res.Trace)
		if err != nil {
			return false
		}
		seq := Sequential(cfg, subs)
		return rep.Checksum == seq.Checksum && LossesBitwiseEqual(rep.Losses, seq.Losses)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSequentialStep(b *testing.B) {
	sp := supernet.NLPc3.Scaled(8, 3)
	subs := supernet.Sample(sp, 1, 1)
	cfg := testCfg(sp)
	for i := 0; i < b.N; i++ {
		Sequential(cfg, subs)
	}
}
