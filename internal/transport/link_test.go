package transport

import (
	"context"
	"net"
	"testing"
	"time"

	"naspipe/internal/backoff"
	"naspipe/internal/fault"
	"naspipe/internal/telemetry"
)

// newLinkPair wires a dial-side and an accept-side link over real
// loopback TCP. The dial side carries the injector (transport faults
// are injected where the fleet view lives); the accept side re-attaches
// every connection the listener yields, healing cuts the way the
// coordinator does.
func newLinkPair(t *testing.T, plan string, tel *telemetry.Bus) (dial, accept *Link) {
	t.Helper()
	var inj *fault.Injector
	if plan != "" {
		p, err := fault.ParsePlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		if inj, err = fault.NewInjector(*p, 0); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pol := backoff.Policy{Base: time.Millisecond, Max: 10 * time.Millisecond}
	accept = NewLink(LinkConfig{Local: 5, Peer: Coordinator, Backoff: pol})
	dial = NewLink(LinkConfig{Local: Coordinator, Peer: 5, Backoff: pol, Injector: inj, Tel: tel,
		Redial: func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", ln.Addr().String())
		}})
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accept.Attach(c)
		}
	}()
	t.Cleanup(func() {
		dial.Close()
		accept.Close()
		ln.Close()
	})
	if err := dial.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	return dial, accept
}

// collect drains n sequenced frames from the link, asserting exactly-
// once in-order delivery (link seqnos 1..n with no gaps or repeats).
func collect(t *testing.T, l *Link, n int) []Frame {
	t.Helper()
	var got []Frame
	deadline := time.After(10 * time.Second)
	for len(got) < n {
		select {
		case f, ok := <-l.In():
			if !ok {
				t.Fatalf("link closed after %d of %d frames", len(got), n)
			}
			if !f.Type.Sequenced() {
				continue
			}
			if want := uint64(len(got) + 1); f.Seq != want {
				t.Fatalf("frame %d has link seq %d, want %d (dup or gap)", len(got), f.Seq, want)
			}
			got = append(got, f)
		case <-deadline:
			t.Fatalf("timed out with %d of %d frames delivered", len(got), n)
		}
	}
	return got
}

func TestLinkDeliversSequencedInOrder(t *testing.T) {
	checkLeaks(t)
	dial, accept := newLinkPair(t, "", nil)
	const n = 200
	for i := 0; i < n; i++ {
		if err := dial.Send(Msg{Type: FrameFwd, From: Coordinator, To: 5, Seq: i}.Frame()); err != nil {
			t.Fatal(err)
		}
	}
	for i, f := range collect(t, accept, n) {
		task, err := DecodeTask(f.Payload)
		if err != nil || task.Seq != i {
			t.Fatalf("frame %d decoded to (%+v, %v)", i, task, err)
		}
	}
	// The reverse direction works too, and unsequenced frames pass
	// through without touching the seqno space.
	if err := accept.Send(Frame{Type: FrameHeartbeat, From: 5, To: Coordinator,
		Payload: Heartbeat{Stage: 5, Frontier: 3}.Encode()}); err != nil {
		t.Fatal(err)
	}
	if err := accept.Send(Msg{Type: FrameBwd, From: 5, To: 4, Seq: 7}.Frame()); err != nil {
		t.Fatal(err)
	}
	sawHB := false
	for {
		f := <-dial.In()
		if f.Type == FrameHeartbeat {
			sawHB = true
			continue
		}
		if f.Type != FrameBwd || f.Seq != 1 {
			t.Fatalf("reverse frame = %+v, want bwd with link seq 1", f)
		}
		break
	}
	if !sawHB {
		t.Error("heartbeat did not arrive ahead of the sequenced frame")
	}
}

func TestLinkHealsInjectedCut(t *testing.T) {
	checkLeaks(t)
	tel := telemetry.NewBus(0)
	dial, accept := newLinkPair(t, "seed=3,disconnect=0:5:20", tel)
	const n = 100
	for i := 0; i < n; i++ {
		if err := dial.Send(Msg{Type: FrameFwd, From: Coordinator, To: 5, Seq: i}.Frame()); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, accept, n)
	snap := tel.Snapshot()
	if snap.LinkCuts != 1 {
		t.Errorf("LinkCuts = %d, want 1", snap.LinkCuts)
	}
	if snap.LinkReconnects < 1 {
		t.Errorf("LinkReconnects = %d, want >= 1 (the cut must heal through the redial loop)", snap.LinkReconnects)
	}
	if snap.LinkRetransmits < 1 {
		t.Errorf("LinkRetransmits = %d, want >= 1 (the unacked window rides the fresh conn)", snap.LinkRetransmits)
	}
}

func TestLinkRecoversDroppedFrames(t *testing.T) {
	checkLeaks(t)
	tel := telemetry.NewBus(0)
	// Drop one mid-stream frame (go-back-N via duplicate acks) and the
	// very last frame (only the timer backstop can recover the tail).
	dial, accept := newLinkPair(t, "seed=3,linkdropat=0:5:10,linkdropat=0:5:100", tel)
	const n = 100
	for i := 0; i < n; i++ {
		if err := dial.Send(Msg{Type: FrameFwd, From: Coordinator, To: 5, Seq: i}.Frame()); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, accept, n)
	snap := tel.Snapshot()
	if snap.LinkDrops != 2 {
		t.Errorf("LinkDrops = %d, want 2", snap.LinkDrops)
	}
	if snap.LinkRetransmits < 2 {
		t.Errorf("LinkRetransmits = %d, want >= 2", snap.LinkRetransmits)
	}
}

func TestLinkUnsequencedIsBestEffort(t *testing.T) {
	checkLeaks(t)
	l := NewLink(LinkConfig{Local: 1, Peer: Coordinator})
	defer l.Close()
	err := l.Send(Frame{Type: FrameHeartbeat, From: 1, To: Coordinator})
	if err != ErrNotConnected {
		t.Fatalf("disconnected heartbeat Send = %v, want ErrNotConnected", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Send(Frame{Type: FrameFwd}); err != ErrClosed {
		t.Fatalf("post-close Send = %v, want ErrClosed", err)
	}
}
