// The concurrent plane's health surface: a mutex-guarded probe the
// executor publishes live per-stage state into, and the enriched stall
// error built from the same state. The probe is how the supervision
// plane (internal/supervise) watches a run without the engine importing
// it — supervise depends on engine, never the reverse.
package engine

import (
	"fmt"
	"strings"
	"sync"
)

// StageHealth is one stage's scheduler state as last published by its
// goroutine: task counters, queue depths, the blocked queue head and the
// subnet whose unfinished WRITE blocks it (the paper's precedence
// owner), cache residency, and the wall-clock stamp of the stage's last
// completed task. Sequence IDs are global (SeqBase included); -1 means
// none.
type StageHealth struct {
	Stage       int
	FwdDone     int
	BwdDone     int
	QueueLen    int // L_q: forwards whose input arrived but did not run yet
	BwdQueueLen int // backwards ready to run

	BlockedHead int // global seq at the head of the forward queue (-1: empty)
	OwnerSubnet int // global seq of the unfinished writer blocking the head (-1: unblocked)

	CacheResidentBytes int64 // bytes resident in the stage cache (0 when disabled)
	LastTaskNs         int64 // wall-clock ns of the last completed task (0: none yet)
	Wedged             bool  // stage goroutine is hung at a task boundary (fault plane)
}

// RunProbe receives live health state from the concurrent executor. One
// probe may be reused across incarnations — RunConcurrent re-attaches
// (resetting the per-stage table) at start, while the frontier and task
// counters stay monotone across attaches so a watchdog polling
// Progress never sees progress move backwards over a resume.
//
// All methods are safe for concurrent use: stage goroutines publish
// under the mutex, the supervision plane polls under the same mutex.
type RunProbe struct {
	mu       sync.Mutex
	frontier int   // committed stage-0 backward frontier, global
	tasks    int64 // completed tasks across all stages and incarnations
	stages   []StageHealth
}

// attach (re)binds the probe to a starting run of d stages at the given
// sequence base. Called by RunConcurrent before any stage goroutine
// starts.
func (p *RunProbe) attach(d, base int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stages = make([]StageHealth, d)
	for k := range p.stages {
		p.stages[k] = StageHealth{Stage: k, BlockedHead: -1, OwnerSubnet: -1}
	}
	if base > p.frontier {
		p.frontier = base
	}
}

// publish records one stage's current health; taskDone additionally
// bumps the monotone progress counter.
func (p *RunProbe) publish(h StageHealth, taskDone bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if h.Stage >= 0 && h.Stage < len(p.stages) {
		p.stages[h.Stage] = h
	}
	if taskDone {
		p.tasks++
	}
}

// advanceFrontier records the committed stage-0 backward frontier
// (global cursor: subnets below it are fully retired).
func (p *RunProbe) advanceFrontier(f int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f > p.frontier {
		p.frontier = f
	}
}

// Attach (re)binds the probe to a starting run of d stages at the
// given sequence base, exactly as RunConcurrent does internally. The
// distributed coordinator calls it when a remote incarnation launches,
// so the same supervision plane can watch a fleet it does not run
// in-process.
func (p *RunProbe) Attach(d, base int) { p.attach(d, base) }

// Publish records one stage's health as reported over the wire;
// taskDone bumps the monotone progress counter. The coordinator feeds
// worker heartbeats through this.
func (p *RunProbe) Publish(h StageHealth, taskDone bool) { p.publish(h, taskDone) }

// AdvanceFrontier records a remotely-reported committed stage-0
// backward frontier.
func (p *RunProbe) AdvanceFrontier(f int) { p.advanceFrontier(f) }

// Progress returns the two monotone progress signals a watchdog
// distinguishes slow-from-stalled by: the committed frontier and the
// total completed-task count. Parks and queue churn update stage
// health but move neither — only real task completions do.
func (p *RunProbe) Progress() (frontier int, tasks int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.frontier, p.tasks
}

// Snapshot copies the per-stage health table as last published.
func (p *RunProbe) Snapshot() []StageHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]StageHealth, len(p.stages))
	copy(out, p.stages)
	return out
}

// StallError reports a concurrent run that ended without completing its
// stream and without a crash or cancellation to blame, carrying each
// stage's final scheduler state so the report is actionable: which head
// is blocked, which subnet's unfinished WRITE owns the block, and what
// is still pending where.
type StallError struct {
	Completed int
	Total     int
	Stages    []StageHealth
}

func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: concurrent run stalled at %d/%d subnets", e.Completed, e.Total)
	for _, h := range e.Stages {
		fmt.Fprintf(&b, "\n  stage %d: fwd %d bwd %d, queued %d fwd / %d bwd",
			h.Stage, h.FwdDone, h.BwdDone, h.QueueLen, h.BwdQueueLen)
		if h.BlockedHead >= 0 {
			fmt.Fprintf(&b, ", head subnet %d", h.BlockedHead)
			if h.OwnerSubnet >= 0 {
				fmt.Fprintf(&b, " blocked by subnet %d", h.OwnerSubnet)
			}
		}
		if h.Wedged {
			b.WriteString(", WEDGED")
		}
	}
	return b.String()
}
