// Mixture-of-experts routing — the paper's second envisioned future
// application (§5.5): supernet adoption in dynamic networks and MoE
// models. Unlike SPOS's uniform sampling, an MoE gate routes traffic with
// a popularity skew, which densifies the causal dependency graph. This
// example sweeps the routing skew and shows how NASPipe's CSP pipeline
// absorbs it — gracefully rising bubbles, reproducibility intact.
//
//	go run ./examples/moe_routing
package main

import (
	"fmt"
	"log"

	"naspipe"
)

func main() {
	space := naspipe.NLPc1
	const n = 120
	fmt.Printf("MoE-style routing over %s (%d blocks x %d experts), %d steps\n\n",
		space.Name, space.Blocks, space.Choices, n)
	fmt.Printf("%-10s %-10s %-8s %-14s %s\n", "skew", "dep-rate", "bubble", "subnets/hour", "hottest expert load")

	for _, skew := range []float64{0, 0.5, 1.0, 1.5, 2.0} {
		cfg := naspipe.MoEStreamConfig{Space: space, Seed: 13, Skew: skew}
		subs, err := naspipe.MoEStream(cfg, n)
		if err != nil {
			log.Fatal(err)
		}
		dep := 0
		for i := 1; i < len(subs); i++ {
			prev, cur := subs[i-1], subs[i]
			for b := range cur.Choices {
				if prev.Choices[b] == cur.Choices[b] {
					dep++
					break
				}
			}
		}
		counts := make(map[int]int)
		for _, s := range subs {
			counts[s.Choices[0]]++
		}
		hottest := 0
		for _, c := range counts {
			if c > hottest {
				hottest = c
			}
		}
		res, err := naspipe.RunPolicy(naspipe.Config{
			Space: space, Spec: naspipe.DefaultCluster(8), Seed: 13,
			Subnets: subs, InflightLimit: 48,
		}, "naspipe")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.1f %-10.2f %-8.2f %-14.0f %.1f%%\n",
			skew, float64(dep)/float64(n-1), res.BubbleRatio, res.SubnetsPerHour,
			100*float64(hottest)/float64(n))
	}

	fmt.Println("\nhot experts serialize on their shared parameters, but the CSP")
	fmt.Println("scheduler keeps filling the pipeline with independent steps — and")
	fmt.Println("the training procedure stays deterministic at every skew.")
}
