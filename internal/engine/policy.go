// Package engine is NASPipe-Go's deterministic discrete-event pipeline
// simulator: the substrate on which every scheduling policy (NASPipe's
// CSP, GPipe's BSP, PipeDream's ASP, VPipe, and the ablations) executes.
//
// The engine owns everything a real pipeline runtime owns except task
// *selection*: stage workers, activation/gradient messages with modeled
// communication delays, per-stage GPU memory managers with PCIe swap
// timing, batch sizing against GPU memory, metric collection, and
// parameter-access trace emission. Task selection — the part the paper
// varies between systems — is delegated to a Policy.
//
// Determinism: the event queue is ordered by (time, insertion sequence),
// every iteration over stages and queues is in fixed order, and policies
// receive no randomness. A run's result is a pure function of
// (space, subnet stream, cluster spec, policy).
package engine

import (
	"naspipe/internal/cluster"
	"naspipe/internal/partition"
	"naspipe/internal/supernet"
)

// PartitionMode selects how subnets are partitioned across stages.
type PartitionMode int

// Partition modes.
const (
	// PartitionBalanced gives every subnet its own cost-balanced
	// partition, with layer mirroring reconciling it against the home
	// placement (NASPipe, §4.2).
	PartitionBalanced PartitionMode = iota
	// PartitionStatic runs every subnet on the supernet's static home
	// partition (GPipe, PipeDream, VPipe, NASPipe w/o mirroring).
	PartitionStatic
)

// Traits declares a policy's fixed systems behaviour — the knobs that are
// configuration rather than per-task decisions.
type Traits struct {
	Name         string
	Reproducible bool // does the schedule preserve CSP?
	Partition    PartitionMode

	// CacheFactor sizes each stage's GPU parameter cache as a multiple of
	// the stage's average subnet-partition footprint. Zero means the
	// whole supernet partition stays resident (no swapping, the
	// GPipe/PipeDream memory regime, also NASPipe-w/o-predictor).
	CacheFactor float64

	// UsePredictor enables Algorithm 3 prefetching (NASPipe).
	UsePredictor bool

	// PrefetchOnArrival prefetches a task's context as soon as its input
	// message arrives at the stage (NASPipe's context manager runs
	// asynchronously with execution). VPipe swaps on demand and leaves
	// this off.
	PrefetchOnArrival bool

	// ActStashFactor multiplies per-sample activation memory. 1 for
	// systems with activation recomputation (GPipe checkpointing —
	// enabled for NASPipe, GPipe, VPipe); 2 for PipeDream, which stashes
	// activations for asynchronous weight versions.
	ActStashFactor float64
}

// World is the read-only run context handed to policies at Init.
type World struct {
	Space   supernet.Space
	Net     *supernet.Supernet
	Spec    cluster.Spec
	D       int
	Subnets []supernet.Subnet

	// Home is the static block partition; Parts[i] is subnet i's
	// execution partition (equal to Home under PartitionStatic).
	Home  partition.Partition
	Parts []partition.Partition

	// SeqBase is the global sequence ID of Subnets[0] (Config.SeqBase):
	// nonzero when this world is the uncommitted suffix of a resumed
	// stream. Externally visible seqs (canonical trace, telemetry) are
	// local index + SeqBase.
	SeqBase int

	// stageIDs[i][k] are subnet i's layer IDs on stage k under Parts[i];
	// allIDs[i] is the full layer set.
	stageIDs [][][]supernet.LayerID
	allIDs   [][]supernet.LayerID
}

// BuildIndexes populates the derived per-subnet layer indexes from Space,
// Subnets, and Parts. Run() calls it during world construction; tests or
// external world builders must call it before handing the World to a
// policy.
func (w *World) BuildIndexes() {
	w.stageIDs = make([][][]supernet.LayerID, len(w.Subnets))
	w.allIDs = make([][]supernet.LayerID, len(w.Subnets))
	for i, sub := range w.Subnets {
		w.allIDs[i] = sub.LayerIDs(w.Space)
		w.stageIDs[i] = make([][]supernet.LayerID, w.D)
		for k := 0; k < w.D; k++ {
			lo, hi := w.Parts[i].Blocks(k)
			ids := make([]supernet.LayerID, 0, hi-lo)
			for b := lo; b < hi; b++ {
				ids = append(ids, w.Space.ID(b, sub.Choices[b]))
			}
			w.stageIDs[i][k] = ids
		}
	}
}

// StageLayerIDs returns subnet seq's layers on the stage under its
// execution partition.
func (w *World) StageLayerIDs(seq, stage int) []supernet.LayerID {
	return w.stageIDs[seq][stage]
}

// AllLayerIDs returns every layer of subnet seq.
func (w *World) AllLayerIDs(seq int) []supernet.LayerID { return w.allIDs[seq] }

// Policy decides which task a stage runs next. The engine calls
// SelectBackward before SelectForward (backward-first priority is decided
// by each policy: returning -1 from SelectBackward defers the backward).
//
// Selection functions receive the stage's candidate list and must return
// an index into it or -1; returning an index means the engine immediately
// starts that task. Completion hooks fire when a task's compute finishes
// on its stage.
type Policy interface {
	Traits() Traits
	Init(w *World)
	SelectBackward(stage int, ready []int, now float64) int
	SelectForward(stage int, queue []int, now float64) int
	OnForwardDone(stage, seq int, now float64)
	OnBackwardDone(stage, seq int, now float64)
	// PredictBackward/PredictForward implement Algorithm 3's two call
	// sites and return subnet sequence IDs whose stage context should be
	// prefetched. Only consulted when Traits().UsePredictor is set.
	PredictBackward(stage int, queue []int, seq int, now float64) []int
	PredictForward(stage int, queue []int, seq int, now float64) []int
}

// BasePolicy provides no-op defaults so simple policies only implement
// what they need.
type BasePolicy struct{}

// Init is a no-op.
func (BasePolicy) Init(*World) {}

// SelectBackward runs backwards in arrival order, backward-first.
func (BasePolicy) SelectBackward(stage int, ready []int, now float64) int {
	if len(ready) == 0 {
		return -1
	}
	return 0
}

// SelectForward runs forwards FIFO.
func (BasePolicy) SelectForward(stage int, queue []int, now float64) int {
	if len(queue) == 0 {
		return -1
	}
	return 0
}

// OnForwardDone is a no-op.
func (BasePolicy) OnForwardDone(stage, seq int, now float64) {}

// OnBackwardDone is a no-op.
func (BasePolicy) OnBackwardDone(stage, seq int, now float64) {}

// PredictBackward predicts nothing.
func (BasePolicy) PredictBackward(stage int, queue []int, seq int, now float64) []int { return nil }

// PredictForward predicts nothing.
func (BasePolicy) PredictForward(stage int, queue []int, seq int, now float64) []int { return nil }
