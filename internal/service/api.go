// Package service is the service plane: a multi-tenant, long-running
// job scheduler for supernet-search runs behind a versioned HTTP/JSON
// API, plus the Go client the thin CLI (cmd/naspipe-client) and the
// tests drive it with.
//
// The wire format is the canonical naspipe.JobSpec — the same struct
// that drives the CLIs and the Go API — submitted to POST /v1/jobs and
// multiplexed over a bounded executor pool with per-tenant quotas,
// admission control, and backpressure. Each concurrent-plane job runs
// under the supervision plane (internal/supervise), so an injected or
// real crash auto-resumes from the job's own crash-consistent
// checkpoint and its health state machine is visible over the API.
// NASPipe's CSP guarantee is what makes this multi-tenancy trustworthy:
// every job's weights land bitwise equal to its sequential reference no
// matter how the daemon interleaves, crashes, or resumes it.
//
// API (version prefix mandatory; unknown versions are a structured 404):
//
//	POST /v1/jobs                 submit a JobSpec       → 201 JobStatus
//	GET  /v1/jobs[?tenant=t]      list jobs              → 200 JobList
//	GET  /v1/jobs/{id}            job status (with spec) → 200 JobStatus
//	POST /v1/jobs/{id}/cancel     cancel (idempotent)    → 200 JobStatus
//	POST /v1/jobs/{id}/resume     resume from checkpoint → 202 JobStatus
//	GET  /v1/jobs/{id}/events     telemetry JSONL stream → 200 (chunked)
//	GET  /v1/jobs/{id}/checkpoint checkpoint file bytes  → 200 (binary)
//	GET  /v1/version              negotiation probe      → 200 VersionInfo
//
// Every error response carries {"error": {code, message, field?}} so
// clients branch on code, not prose.
package service

import (
	"fmt"
	"time"

	"naspipe"
)

// APIVersion is the one wire version this build speaks. The path prefix
// and naspipe.JobSpecVersion are the same string by construction.
const APIVersion = naspipe.JobSpecVersion

// ErrorCode is the machine-readable class of an API error.
type ErrorCode string

const (
	// CodeInvalidSpec: the submitted JobSpec failed validation; Field
	// names the offending JSON field. HTTP 400.
	CodeInvalidSpec ErrorCode = "invalid_spec"
	// CodeQuotaExceeded: the tenant is at its active-job quota. HTTP 429.
	CodeQuotaExceeded ErrorCode = "quota_exceeded"
	// CodeBackpressure: the global admission queue is full. HTTP 429.
	CodeBackpressure ErrorCode = "backpressure"
	// CodeNotFound: no such job (or unknown /v1 route). HTTP 404.
	CodeNotFound ErrorCode = "not_found"
	// CodeUnsupportedVersion: the path's API version is not served;
	// Message lists the supported versions. HTTP 404.
	CodeUnsupportedVersion ErrorCode = "unsupported_version"
	// CodeConflict: the operation is illegal in the job's current state
	// (e.g. resume without a checkpoint). HTTP 409.
	CodeConflict ErrorCode = "conflict"
	// CodeShuttingDown: the daemon is draining and admits nothing new.
	// HTTP 503.
	CodeShuttingDown ErrorCode = "shutting_down"
	// CodeInternal: everything else. HTTP 500.
	CodeInternal ErrorCode = "internal"
)

// APIError is the structured error body every non-2xx response carries
// (wrapped as {"error": ...}); it doubles as the Go error the client
// returns, so callers errors.As on it and branch on Code.
type APIError struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
	// Field names the invalid JobSpec field for CodeInvalidSpec.
	Field string `json:"field,omitempty"`
	// RetryAfterSec, on the 429 codes, is the server's estimate (whole
	// seconds) of when a retry might succeed: for CodeBackpressure it is
	// derived from queue depth over executor throughput, for
	// CodeQuotaExceeded from when the tenant's longest-running job is
	// expected to free a slot. Mirrored in the Retry-After header.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
	// Status is the HTTP status the error traveled with (client side
	// only; not serialized).
	Status int `json:"-"`
}

func (e *APIError) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("api: %s (field %q): %s", e.Code, e.Field, e.Message)
	}
	return fmt.Sprintf("api: %s: %s", e.Code, e.Message)
}

// errorBody is the wire envelope for APIError.
type errorBody struct {
	Error *APIError `json:"error"`
}

// JobState is the service-level lifecycle of a job. While Running, the
// finer-grained supervision health state (running/degraded/recovering)
// is surfaced in JobStatus.Health.
type JobState string

const (
	// StateQueued: admitted, waiting for an executor slot.
	StateQueued JobState = "queued"
	// StateRunning: an executor owns it (supervised incarnations count
	// as one running job).
	StateRunning JobState = "running"
	// StateDone: stream complete; Verified tells whether the bitwise
	// check also passed (when the spec asked for one).
	StateDone JobState = "done"
	// StateFailed: the run or its verification failed, including a
	// supervisor give-up. Not resumable.
	StateFailed JobState = "failed"
	// StateCanceled: stopped by POST .../cancel; resumable when a valid
	// checkpoint holds the committed frontier.
	StateCanceled JobState = "canceled"
	// StateInterrupted: stopped by something other than the operator —
	// an unsupervised injected crash, or daemon shutdown mid-run — with
	// a checkpoint on disk. Resume continues it; a daemon restart
	// re-queues it automatically.
	StateInterrupted JobState = "interrupted"
)

// Terminal reports whether the state is an end state (no executor will
// touch the job again without an explicit resume).
func (s JobState) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled, StateInterrupted:
		return true
	}
	return false
}

// ExitCode maps the job state onto the naspipe CLI exit-code taxonomy —
// the same contract operators script against:
//
//	done → 0 (ok), failed → 1 (failure),
//	canceled/interrupted → 3 (resumable) when a checkpoint stands, else 1,
//	queued/running → -1 (no exit yet).
func (s JobState) ExitCode(resumable bool) int {
	switch s {
	case StateDone:
		return int(naspipe.ExitOK)
	case StateFailed:
		return int(naspipe.ExitFailure)
	case StateCanceled, StateInterrupted:
		if resumable {
			return int(naspipe.ExitResumable)
		}
		return int(naspipe.ExitFailure)
	}
	return -1
}

// JobStatus is the API's view of one job. List responses omit Spec;
// submit/get/cancel/resume responses include it.
type JobStatus struct {
	ID     string   `json:"id"`
	Tenant string   `json:"tenant"`
	Name   string   `json:"name,omitempty"`
	State  JobState `json:"state"`
	// Health is the supervision plane's live state machine value
	// (running/degraded/recovering/done/failed) while the job executes;
	// empty for simulated or queued jobs.
	Health string `json:"health,omitempty"`
	// Detail carries the terminal error text (failed), the cancel/crash
	// cause (canceled/interrupted), or the verification verdict (done).
	Detail string `json:"detail,omitempty"`
	// Restarts and WatchdogFires summarize the supervisor's work so far.
	Restarts      int `json:"restarts"`
	WatchdogFires int `json:"watchdog_fires,omitempty"`
	// Cursor/Total: committed frontier over the stream length.
	Cursor int `json:"cursor"`
	Total  int `json:"total"`
	GPUs   int `json:"gpus"`
	// Verified is true once the job's weights were checked bitwise equal
	// to the sequential reference; Checksum is that FNV-64 value.
	Verified bool   `json:"verified,omitempty"`
	Checksum string `json:"checksum,omitempty"`
	// Resumable: a valid checkpoint holds the committed frontier and
	// POST .../resume will continue from it.
	Resumable bool `json:"resumable,omitempty"`
	// ExitCode maps the state onto the CLI taxonomy (-1 while active);
	// ExitName is its symbolic form ("ok", "failure", "resumable").
	ExitCode int    `json:"exit_code"`
	ExitName string `json:"exit_name,omitempty"`
	// TenantActive/TenantQuota are the tenant's slot occupancy at read
	// time — the CodeQuotaExceeded inputs, surfaced per job so a 429's
	// arithmetic is checkable from any status response.
	TenantActive int `json:"tenant_active"`
	TenantQuota  int `json:"tenant_quota"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at"`

	// Spec is the effective (normalized) JobSpec the job runs with.
	Spec *naspipe.JobSpec `json:"spec,omitempty"`
}

// TenantStats is one tenant's slot occupancy against its quota — the
// CodeQuotaExceeded input.
type TenantStats struct {
	Tenant string `json:"tenant"`
	// Active is queued+running jobs; Running the subset holding an
	// executor slot right now.
	Active  int `json:"active"`
	Running int `json:"running"`
	Quota   int `json:"quota"`
}

// SchedStats exposes the scheduler's live admission state — the same
// numbers retryAfterLocked feeds the Retry-After estimate from, so
// naspipe-client top and operators see exactly what the backpressure
// math sees.
type SchedStats struct {
	// QueueDepth over QueueLimit is the CodeBackpressure input.
	QueueDepth int `json:"queue_depth"`
	QueueLimit int `json:"queue_limit"`
	// Workers is the executor-pool size; ActiveJobs how many slots are
	// occupied right now.
	Workers    int `json:"workers"`
	ActiveJobs int `json:"active_jobs"`
	// RunEWMASec is the smoothed wall time of completed runs — the
	// per-run cost estimate behind every Retry-After second.
	RunEWMASec float64 `json:"run_ewma_sec"`
	// Tenants lists per-tenant slot occupancy, sorted by tenant name.
	Tenants []TenantStats `json:"tenants,omitempty"`
}

// JobList is the GET /v1/jobs response, in submission order. Stats
// carries the scheduler's live admission state alongside the jobs.
type JobList struct {
	Jobs  []JobStatus `json:"jobs"`
	Stats *SchedStats `json:"stats,omitempty"`
}

// VersionInfo is the GET /v1/version response.
type VersionInfo struct {
	Version   string   `json:"version"`
	Supported []string `json:"supported"`
}
