// Package supernet models NAS supernets: the search space geometry, the
// candidate-layer metadata, subnets, and the SPOS uniform sampler that
// generates the ordered subnet stream.
//
// Following the paper's §3 preliminaries, a supernet is a sequence of m
// choice blocks b_0..b_m, each holding n candidate layers; a subnet is an
// m-sized list with one layer chosen per block, and subnets are generated
// by per-choice-block uniform sampling (SPOS), the representative method in
// existing supernet practice. The subnet stream's order — its sequence IDs
// — defines the causal dependencies the CSP scheduler must preserve.
package supernet

import (
	"fmt"
	"hash/fnv"

	"naspipe/internal/layers"
	"naspipe/internal/rng"
)

// LayerID densely identifies one candidate layer within a supernet:
// block*ChoicesPerBlock + choice. IDs are only meaningful relative to their
// space.
type LayerID int

// Space describes a search space: the supernet geometry and its dataset.
// The seven canonical spaces reproduce the paper's Table 1.
type Space struct {
	Name    string
	Domain  layers.Domain
	Blocks  int    // number of choice blocks (m)
	Choices int    // candidate layers per block (n)
	Dataset string // dataset label, reporting only
}

// Validate reports whether the space is well formed.
func (s Space) Validate() error {
	if s.Blocks <= 0 || s.Choices <= 0 {
		return fmt.Errorf("supernet: space %q has invalid geometry %dx%d", s.Name, s.Blocks, s.Choices)
	}
	return nil
}

// NumLayers returns the total number of candidate layers in the supernet.
func (s Space) NumLayers() int { return s.Blocks * s.Choices }

// ID maps (block, choice) to the dense layer ID.
func (s Space) ID(block, choice int) LayerID {
	if block < 0 || block >= s.Blocks || choice < 0 || choice >= s.Choices {
		panic(fmt.Sprintf("supernet: layer (%d,%d) out of range for %s", block, choice, s.Name))
	}
	return LayerID(block*s.Choices + choice)
}

// BlockChoice inverts ID.
func (s Space) BlockChoice(id LayerID) (block, choice int) {
	return int(id) / s.Choices, int(id) % s.Choices
}

// Scaled returns a copy of the space with the given geometry, used by the
// numeric plane to train real (tiny) parameters while keeping the space's
// identity for reporting.
func (s Space) Scaled(blocks, choices int) Space {
	out := s
	out.Blocks = blocks
	out.Choices = choices
	out.Name = fmt.Sprintf("%s[%dx%d]", s.Name, blocks, choices)
	return out
}

// The paper's Table 1 search spaces. NLP spaces use the Evolved
// Transformer layer kinds, CV spaces AmoebaNet kinds (both via the Table 5
// profiles).
var (
	NLPc0 = Space{Name: "NLP.c0", Domain: layers.NLP, Blocks: 48, Choices: 96, Dataset: "WNMT"}
	NLPc1 = Space{Name: "NLP.c1", Domain: layers.NLP, Blocks: 48, Choices: 72, Dataset: "WNMT"}
	NLPc2 = Space{Name: "NLP.c2", Domain: layers.NLP, Blocks: 48, Choices: 48, Dataset: "WNMT"}
	NLPc3 = Space{Name: "NLP.c3", Domain: layers.NLP, Blocks: 48, Choices: 24, Dataset: "WNMT"}
	CVc1  = Space{Name: "CV.c1", Domain: layers.CV, Blocks: 32, Choices: 48, Dataset: "ImageNet"}
	CVc2  = Space{Name: "CV.c2", Domain: layers.CV, Blocks: 32, Choices: 24, Dataset: "ImageNet"}
	CVc3  = Space{Name: "CV.c3", Domain: layers.CV, Blocks: 32, Choices: 12, Dataset: "ImageNet"}
)

// Spaces lists the Table 1 spaces in the paper's order.
func Spaces() []Space {
	return []Space{NLPc0, NLPc1, NLPc2, NLPc3, CVc1, CVc2, CVc3}
}

// SpaceByName resolves a Table 1 space by its paper name.
func SpaceByName(name string) (Space, error) {
	for _, s := range Spaces() {
		if s.Name == name {
			return s, nil
		}
	}
	return Space{}, fmt.Errorf("supernet: unknown space %q", name)
}

// LayerMeta is the scheduler- and simulator-facing description of one
// candidate layer: identity plus cost profile. Costs carry a deterministic
// per-layer jitter (±15%) around the Table 5 kind profile so that balanced
// partitioning is a real optimization problem rather than a uniform split.
type LayerMeta struct {
	ID         LayerID
	Block      int
	Choice     int
	Kind       layers.Kind
	FwdMs      float64
	BwdMs      float64
	SwapMs     float64
	ParamBytes int64
}

// CostMs returns the compute cost of the given pass.
func (m LayerMeta) CostMs(backward bool) float64 {
	if backward {
		return m.BwdMs
	}
	return m.FwdMs
}

// jitter returns a deterministic multiplier in [0.85, 1.15] for the layer.
func jitter(spaceName string, block, choice int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d/%d", spaceName, block, choice)
	u := float64(h.Sum64()>>11) / float64(uint64(1)<<53)
	return 0.85 + 0.30*u
}

// Supernet is the metadata instantiation of a space: one LayerMeta per
// candidate layer. It carries no numeric parameters; see Numeric for the
// trainable instantiation.
type Supernet struct {
	Space Space
	Meta  []LayerMeta // indexed by LayerID
}

// Build instantiates the metadata supernet for a space. Layer kinds cycle
// through the domain's Table 5 kinds by choice index, so every block offers
// every kind (as in SPOS-style spaces where each block carries the same
// candidate menu).
func Build(space Space) *Supernet {
	if err := space.Validate(); err != nil {
		panic(err)
	}
	kinds := layers.Kinds(space.Domain)
	meta := make([]LayerMeta, space.NumLayers())
	for b := 0; b < space.Blocks; b++ {
		for c := 0; c < space.Choices; c++ {
			id := space.ID(b, c)
			kind := kinds[c%len(kinds)]
			p := layers.Profile(kind)
			j := jitter(space.Name, b, c)
			meta[id] = LayerMeta{
				ID:         id,
				Block:      b,
				Choice:     c,
				Kind:       kind,
				FwdMs:      p.FwdMs * j,
				BwdMs:      p.BwdMs * j,
				SwapMs:     p.SwapMs * j,
				ParamBytes: int64(float64(p.ParamBytes) * j),
			}
		}
	}
	return &Supernet{Space: space, Meta: meta}
}

// Layer returns the metadata for (block, choice).
func (s *Supernet) Layer(block, choice int) LayerMeta {
	return s.Meta[s.Space.ID(block, choice)]
}

// TotalParamBytes returns the parameter size of the whole supernet — the
// quantity that exceeds GPU memory for large spaces and motivates context
// switching (paper Table 2 "P.S." for GPipe/PipeDream).
func (s *Supernet) TotalParamBytes() int64 {
	var total int64
	for _, m := range s.Meta {
		total += m.ParamBytes
	}
	return total
}

// Subnet is one sampled architecture: sequence ID in the exploration order
// plus one choice per block.
type Subnet struct {
	Seq     int
	Choices []int
}

// Clone returns a deep copy of the subnet.
func (sn Subnet) Clone() Subnet {
	c := make([]int, len(sn.Choices))
	copy(c, sn.Choices)
	return Subnet{Seq: sn.Seq, Choices: c}
}

// LayerIDs returns the dense IDs of the subnet's chosen layers, in block
// order.
func (sn Subnet) LayerIDs(space Space) []LayerID {
	ids := make([]LayerID, len(sn.Choices))
	for b, c := range sn.Choices {
		ids[b] = space.ID(b, c)
	}
	return ids
}

// Layers returns the subnet's layer metadata in block order.
func (s *Supernet) Layers(sn Subnet) []LayerMeta {
	out := make([]LayerMeta, len(sn.Choices))
	for b, c := range sn.Choices {
		out[b] = s.Meta[s.Space.ID(b, c)]
	}
	return out
}

// SubnetParamBytes returns the parameter size of one subnet's context.
func (s *Supernet) SubnetParamBytes(sn Subnet) int64 {
	var total int64
	for _, m := range s.Layers(sn) {
		total += m.ParamBytes
	}
	return total
}

// SubnetCostMs returns the total fwd+bwd compute cost of the subnet at the
// reference batch.
func (s *Supernet) SubnetCostMs(sn Subnet) float64 {
	var total float64
	for _, m := range s.Layers(sn) {
		total += m.FwdMs + m.BwdMs
	}
	return total
}

// Shares reports whether two subnets select the same candidate layer in
// any block — the condition that creates a causal dependency between their
// executions (§2.1).
func Shares(a, b Subnet) bool {
	n := len(a.Choices)
	if len(b.Choices) < n {
		n = len(b.Choices)
	}
	for i := 0; i < n; i++ {
		if a.Choices[i] == b.Choices[i] {
			return true
		}
	}
	return false
}

// SharedBlocks returns the blocks in which a and b chose the same layer.
func SharedBlocks(a, b Subnet) []int {
	var out []int
	n := len(a.Choices)
	if len(b.Choices) < n {
		n = len(b.Choices)
	}
	for i := 0; i < n; i++ {
		if a.Choices[i] == b.Choices[i] {
			out = append(out, i)
		}
	}
	return out
}

// Sampler generates the ordered subnet stream by SPOS per-block uniform
// sampling. The stream is a pure function of (space, seed): the GPU count,
// the scheduling policy, and wall-clock time never influence it, which is a
// precondition for Definition 1 reproducibility.
type Sampler struct {
	space Space
	r     *rng.Stream
	next  int
}

// NewSampler returns a sampler for the space under the given global seed.
func NewSampler(space Space, seed uint64) *Sampler {
	return &Sampler{
		space: space,
		r:     rng.Labeled(seed, "spos/"+space.Name),
	}
}

// Next samples the next subnet in exploration order.
func (s *Sampler) Next() Subnet {
	choices := make([]int, s.space.Blocks)
	for b := range choices {
		choices[b] = s.r.Intn(s.space.Choices)
	}
	sn := Subnet{Seq: s.next, Choices: choices}
	s.next++
	return sn
}

// Sample returns the first n subnets of the stream.
func Sample(space Space, seed uint64, n int) []Subnet {
	s := NewSampler(space, seed)
	out := make([]Subnet, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// DependencyRate estimates, over the first n subnets, the probability that
// a subnet shares at least one layer with its immediate predecessor. The
// paper's key insight is that this rate falls as the space widens
// (1-(1-1/n_choices)^blocks), enabling aggressive CSP scheduling.
func DependencyRate(space Space, seed uint64, n int) float64 {
	if n < 2 {
		return 0
	}
	subnets := Sample(space, seed, n)
	dep := 0
	for i := 1; i < n; i++ {
		if Shares(subnets[i-1], subnets[i]) {
			dep++
		}
	}
	return float64(dep) / float64(n-1)
}
