package transport

import (
	"runtime"
	"testing"
	"time"
)

// checkLeaks fails the test if it exits with more goroutines than it
// started with — every transport test runs under it, so a reader,
// backstop, or reconnect loop that outlives its Link is caught where
// it was leaked, not three packages later.
func checkLeaks(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(3 * time.Second)
		var n int
		for {
			if n = runtime.NumGoroutine(); n <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<16)
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, n, buf[:runtime.Stack(buf, true)])
	})
}
