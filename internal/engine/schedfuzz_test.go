package engine_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"

	"naspipe/internal/engine"
	"naspipe/internal/fault"
	"naspipe/internal/supernet"
	"naspipe/internal/train"
)

// schedSample is one point of the schedule-fuzzing space: pipeline
// depth × scheduler parallelism × timing jitter × message/fetch fault
// rates. The CSP property under test is Definition 1: none of these may
// change the per-layer access order, so every sample's canonical trace
// must replay to the sequential reference checksum bitwise.
type schedSample struct {
	GPUs       int
	MaxProcs   int // runtime.GOMAXPROCS during the run; 0 = leave as-is
	Jitter     float64
	JitterSeed uint64
	Drop       float64
	Delay      float64
	Dup        float64
	FetchFail  float64
	FaultSeed  uint64
	Cache      float64 // per-stage cache factor; 0 = no cache
}

func (s schedSample) String() string {
	return fmt.Sprintf("gpus=%d procs=%d jitter=%.2f/%d drop=%.2f delay=%.2f dup=%.2f fetchfail=%.2f fseed=%d cache=%.1f",
		s.GPUs, s.MaxProcs, s.Jitter, s.JitterSeed, s.Drop, s.Delay, s.Dup, s.FetchFail, s.FaultSeed, s.Cache)
}

// pinnedSamples promotes the original {1,2,4,8}-GPU trace-equivalence
// matrix into the harness: fault-free, jitter-on, paper cache.
func pinnedSamples() []schedSample {
	out := make([]schedSample, 0, 4)
	for _, d := range []int{1, 2, 4, 8} {
		out = append(out, schedSample{GPUs: d, Jitter: 0.3, JitterSeed: 11, Cache: 3})
	}
	return out
}

// randomSample draws one seeded point; every field is independently
// optional so shrinking can zero them one at a time.
func randomSample(r *rand.Rand) schedSample {
	s := schedSample{
		GPUs:     []int{1, 2, 4, 8}[r.Intn(4)],
		MaxProcs: []int{0, 1, 2, 4, 8}[r.Intn(5)],
	}
	if r.Intn(2) == 0 {
		s.Jitter = 0.1 + 0.4*r.Float64()
		s.JitterSeed = uint64(r.Intn(100))
	}
	if r.Intn(2) == 0 {
		s.Drop = 0.2 * r.Float64()
	}
	if r.Intn(2) == 0 {
		s.Delay = 0.2 * r.Float64()
	}
	if r.Intn(2) == 0 {
		s.Dup = 0.2 * r.Float64()
	}
	if r.Intn(3) == 0 {
		s.FetchFail = r.Float64()
	}
	s.FaultSeed = uint64(r.Intn(1000))
	if r.Intn(2) == 0 {
		s.Cache = []float64{1, 2, 3}[r.Intn(3)]
	}
	return s
}

// runSample executes one sample and returns an error describing any
// property violation: run failure, incomplete stream, or a canonical
// trace that does not replay to the sequential reference checksum.
func runSample(s schedSample, tc train.Config, subs []supernet.Subnet, want uint64) error {
	if s.MaxProcs > 0 {
		old := runtime.GOMAXPROCS(s.MaxProcs)
		defer runtime.GOMAXPROCS(old)
	}
	cfg := ccCfg(s.GPUs, false)
	cfg.TimingJitter = s.Jitter
	cfg.JitterSeed = s.JitterSeed
	if s.Cache > 0 {
		cfg.ConcurrentMem = engine.MemPlaneConfig{CacheFactor: s.Cache}
	}
	if s.Drop > 0 || s.Delay > 0 || s.Dup > 0 || s.FetchFail > 0 {
		cfg.Faults = &fault.Plan{
			Seed: s.FaultSeed, DropRate: s.Drop, DelayRate: s.Delay,
			DupRate: s.Dup, FetchFailRate: s.FetchFail,
		}
	}
	res, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if res.Completed != cfg.NumSubnets {
		return fmt.Errorf("completed %d/%d", res.Completed, cfg.NumSubnets)
	}
	got, err := train.Replay(tc, subs, res.Trace)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	if got.Checksum != want {
		return fmt.Errorf("trace replays to %016x, sequential reference %016x", got.Checksum, want)
	}
	return nil
}

// shrink minimizes a failing sample by repeatedly applying the first
// single-field simplification that still fails, so the report names the
// smallest reproducer rather than the random point that found it.
func shrink(s schedSample, fails func(schedSample) bool) schedSample {
	simplify := []func(*schedSample) bool{
		func(c *schedSample) bool { ch := c.MaxProcs != 0; c.MaxProcs = 0; return ch },
		func(c *schedSample) bool { ch := c.FetchFail != 0; c.FetchFail = 0; return ch },
		func(c *schedSample) bool { ch := c.Dup != 0; c.Dup = 0; return ch },
		func(c *schedSample) bool { ch := c.Delay != 0; c.Delay = 0; return ch },
		func(c *schedSample) bool { ch := c.Drop != 0; c.Drop = 0; return ch },
		func(c *schedSample) bool { ch := c.Jitter != 0; c.Jitter, c.JitterSeed = 0, 0; return ch },
		func(c *schedSample) bool { ch := c.Cache != 0; c.Cache = 0; return ch },
		func(c *schedSample) bool { ch := c.GPUs > 1; c.GPUs /= 2; return ch },
	}
	for progress := true; progress; {
		progress = false
		for _, f := range simplify {
			cand := s
			if f(&cand) && fails(cand) {
				s = cand
				progress = true
			}
		}
	}
	return s
}

// TestScheduleFuzzReplaysToSequential is the property harness: pinned
// {1,2,4,8}-GPU samples plus seeded random GOMAXPROCS × jitter × fault
// schedules, every one required to replay bitwise to the sequential
// reference. Override the sample seed with NASPIPE_SCHEDFUZZ_SEED to
// explore a different slice of the space; failures are shrunk to a
// minimal single-field reproducer before reporting.
func TestScheduleFuzzReplaysToSequential(t *testing.T) {
	seed := int64(1)
	if env := os.Getenv("NASPIPE_SCHEDFUZZ_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("NASPIPE_SCHEDFUZZ_SEED: %v", err)
		}
		seed = v
	}
	nRandom := 10
	if testing.Short() {
		nRandom = 3
	}
	r := rand.New(rand.NewSource(seed))
	samples := pinnedSamples()
	for i := 0; i < nRandom; i++ {
		samples = append(samples, randomSample(r))
	}

	cfg := ccCfg(2, false)
	tc := faultTrainCfg(cfg)
	subs := supernet.Sample(cfg.Space, cfg.Seed, cfg.NumSubnets)
	want := train.Sequential(tc, subs).Checksum

	for i, s := range samples {
		s := s
		t.Run(fmt.Sprintf("sample=%d", i), func(t *testing.T) {
			err := runSample(s, tc, subs, want)
			if err == nil {
				return
			}
			min := shrink(s, func(c schedSample) bool {
				return runSample(c, tc, subs, want) != nil
			})
			t.Fatalf("sample {%v} violates the CSP property: %v\nminimal reproducer: {%v} (seed %d)",
				s, err, min, seed)
		})
	}
}
