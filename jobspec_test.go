package naspipe

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// fullSpec returns a JobSpec with every field populated, for round-trip
// coverage.
func fullSpec(ckpt string) JobSpec {
	cf := 2.5
	tr := true
	return JobSpec{
		APIVersion: JobSpecVersion,
		Tenant:     "team-a", Name: "nightly",
		Space: "NLP.c3", ScaleBlocks: 8, ScaleChoices: 3,
		Policy: "naspipe", Executor: "concurrent",
		GPUs: 4, Subnets: 12, Seed: 7, Window: 6,
		Jitter: 0.25, JitterSeed: 7,
		Trace: &tr, CacheFactor: &cf, Predictor: true,
		Faults:     "seed=7,drop=0.1",
		Checkpoint: ckpt, CheckpointEvery: 2,
		Train:     &TrainSpec{Dim: 8, BatchSize: 2, LR: 0.05, Dataset: "WNMT"},
		Supervise: &SuperviseSpec{StallTimeout: Duration(2 * time.Second), MaxRestarts: 4, ElasticAfter: 3},
		Verify:    true,
	}
}

func TestJobSpecJSONRoundTrip(t *testing.T) {
	want := fullSpec(filepath.Join(t.TempDir(), "run.ckpt"))
	buf, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got JobSpec
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip changed the spec:\n want %+v\n got  %+v", want, got)
	}
	// The wire form must use the human-readable duration encoding.
	if !strings.Contains(string(buf), `"stall_timeout":"2s"`) {
		t.Fatalf("stall_timeout not encoded as a duration string: %s", buf)
	}
}

func TestDurationJSONForms(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"500ms"`), &d); err != nil || time.Duration(d) != 500*time.Millisecond {
		t.Fatalf("string form: got %v, err %v", time.Duration(d), err)
	}
	if err := json.Unmarshal([]byte(`1500000000`), &d); err != nil || time.Duration(d) != 1500*time.Millisecond {
		t.Fatalf("integer nanosecond form: got %v, err %v", time.Duration(d), err)
	}
	if err := json.Unmarshal([]byte(`"not a duration"`), &d); err == nil {
		t.Fatal("garbage duration accepted")
	}
}

// validBase is a minimal valid concurrent spec for the validation table.
func validBase() JobSpec {
	return JobSpec{Space: "NLP.c1", Executor: "concurrent", GPUs: 4, Subnets: 8, Seed: 1}
}

func TestJobSpecValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*JobSpec)
		field  string // "" = spec stays valid
	}{
		{"valid", func(s *JobSpec) {}, ""},
		{"bad version", func(s *JobSpec) { s.APIVersion = "v2" }, "api_version"},
		{"missing space", func(s *JobSpec) { s.Space = "" }, "space"},
		{"unknown space", func(s *JobSpec) { s.Space = "NLP.c9" }, "space"},
		{"half scale", func(s *JobSpec) { s.ScaleBlocks = 8 }, "scale_blocks"},
		{"zero gpus", func(s *JobSpec) { s.GPUs = 0 }, "gpus"},
		{"negative subnets", func(s *JobSpec) { s.Subnets = -1 }, "subnets"},
		{"jitter out of range", func(s *JobSpec) { s.Jitter = 1.0 }, "jitter"},
		{"stage speeds ok", func(s *JobSpec) { s.StageSpeeds = []float64{1, 3, 1, 2} }, ""},
		{"stage speeds wrong length", func(s *JobSpec) { s.StageSpeeds = []float64{1, 2} }, "stage_speeds"},
		{"zero stage speed", func(s *JobSpec) { s.StageSpeeds = []float64{1, 0, 1, 1} }, "stage_speeds"},
		{"negative stage speed", func(s *JobSpec) { s.StageSpeeds = []float64{1, 1, -1, 1} }, "stage_speeds"},
		{"storm fault plan ok", func(s *JobSpec) { s.Faults = "seed=5,crashat=1:2:9:F,crashat=2:0:14:B" }, ""},
		{"negative crash-loop window", func(s *JobSpec) {
			s.Checkpoint = "x.ckpt"
			s.Supervise = &SuperviseSpec{CrashLoopWindow: -1}
		}, "supervise"},
		{"negative restart backoff", func(s *JobSpec) {
			s.Checkpoint = "x.ckpt"
			s.Supervise = &SuperviseSpec{Backoff: -1}
		}, "supervise"},
		{"unknown executor", func(s *JobSpec) { s.Executor = "quantum" }, "executor"},
		{"unknown policy", func(s *JobSpec) { s.Policy = "fifo" }, "policy"},
		{"concurrent is CSP-only", func(s *JobSpec) { s.Policy = "gpipe" }, "policy"},
		{"bad fault plan", func(s *JobSpec) { s.Faults = "crashat=bogus" }, "faults"},
		{"faults need concurrent", func(s *JobSpec) { s.Executor = "simulated"; s.Faults = "seed=7,drop=0.1" }, "faults"},
		{"cache needs concurrent", func(s *JobSpec) { s.Executor = "simulated"; cf := 3.0; s.CacheFactor = &cf }, "cache_factor"},
		{"negative cache", func(s *JobSpec) { cf := -1.0; s.CacheFactor = &cf }, "cache_factor"},
		{"predictor needs cache", func(s *JobSpec) { cf := 0.0; s.CacheFactor = &cf; s.Predictor = true }, "predictor"},
		{"supervise needs checkpoint", func(s *JobSpec) { s.Supervise = &SuperviseSpec{} }, "supervise"},
		{"elastic needs checkpoint", func(s *JobSpec) { s.Elastic = true }, "checkpoint"},
		{"verify needs train", func(s *JobSpec) { s.Verify = true }, "verify"},
		{"verify contradicts trace off", func(s *JobSpec) {
			off := false
			s.Verify = true
			s.Train = &TrainSpec{}
			s.Trace = &off
		}, "trace"},
		{"bad dataset", func(s *JobSpec) { s.Train = &TrainSpec{Dataset: "MNIST"} }, "train.dataset"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validBase()
			tc.mutate(&s)
			err := s.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("unexpectedly invalid: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected a violation of field %q, spec passed", tc.field)
			}
			if got := SpecField(err); got != tc.field {
				t.Fatalf("violated field = %q, want %q (err: %v)", got, tc.field, err)
			}
		})
	}
}

// TestNewRunnerDelegatesToSpecValidation pins the shared-kernel design:
// the functional options and the JobSpec surface report the same
// violations with the same field attribution.
func TestNewRunnerDelegatesToSpecValidation(t *testing.T) {
	_, err := NewRunner(WithExecutor(ExecutorSimulated), WithCache(3))
	if err == nil {
		t.Fatal("cache on the simulated executor accepted")
	}
	if got := SpecField(err); got != "cache_factor" {
		t.Fatalf("option-path violation field = %q, want cache_factor (err: %v)", got, err)
	}
	s := validBase()
	s.Executor = "simulated"
	cf := 3.0
	s.CacheFactor = &cf
	if got := SpecField(s.Validate()); got != "cache_factor" {
		t.Fatalf("spec-path violation field = %q, want cache_factor", got)
	}
}

// TestFromSpecRuns drives a complete concurrent run purely from a
// JobSpec and checks the result against the spec's own verification
// path — the same composition the service plane uses.
func TestFromSpecRuns(t *testing.T) {
	s := fullSpec(filepath.Join(t.TempDir(), "run.ckpt"))
	s.Faults = "" // keep this one clean; fault paths are covered elsewhere
	s.Jitter = 0
	s.JitterSeed = 0
	opts, cfg, err := FromSpec(s)
	if err != nil {
		t.Fatalf("FromSpec: %v", err)
	}
	r, err := NewRunner(opts...)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	res, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Completed != s.Subnets {
		t.Fatalf("completed %d of %d subnets", res.Completed, s.Subnets)
	}
	tc, ok := s.TrainConfig()
	if !ok {
		t.Fatal("TrainConfig not derived despite Train being set")
	}
	sum, err := VerifyAgainstSequential(tc, cfg, res)
	if err != nil {
		t.Fatalf("verification: %v", err)
	}
	if sum == 0 {
		t.Fatal("verification returned a zero checksum")
	}
}

func TestFromSpecRejectsInvalid(t *testing.T) {
	s := validBase()
	s.GPUs = -3
	if _, _, err := FromSpec(s); err == nil || SpecField(err) != "gpus" {
		t.Fatalf("FromSpec accepted an invalid spec (err: %v)", err)
	}
}

func TestExitCodeNames(t *testing.T) {
	want := map[ExitCode]string{
		ExitOK: "ok", ExitFailure: "failure", ExitUsage: "usage", ExitResumable: "resumable",
	}
	for code, name := range want {
		if code.String() != name {
			t.Fatalf("ExitCode(%d).String() = %q, want %q", int(code), code.String(), name)
		}
	}
	if ExitCode(7).String() != "ExitCode(7)" {
		t.Fatalf("unknown code rendered as %q", ExitCode(7).String())
	}
}

// FuzzJobSpecJSON checks that any JobSpec that decodes and validates
// also round-trips canonically: re-encoding and re-decoding preserves
// both the bytes and the validation verdict.
func FuzzJobSpecJSON(f *testing.F) {
	seed1, _ := json.Marshal(validBase())
	seed2, _ := json.Marshal(fullSpec("run.ckpt"))
	f.Add(string(seed1))
	f.Add(string(seed2))
	f.Add(`{"space":"CV.c1","gpus":2,"subnets":4,"seed":9}`)
	f.Add(`{"space":"NLP.c1","gpus":1,"subnets":1,"supervise":{"stall_timeout":"50ms"}}`)
	f.Add(`{"space":"NLP.c1","executor":"concurrent","gpus":4,"subnets":8,"stage_speeds":[1,3,1,2],"faults":"seed=5,crashat=1:2:9:F"}`)
	f.Add(`{"space":"NLP.c1","executor":"concurrent","gpus":2,"subnets":4,"checkpoint":"x.ckpt","supervise":{"crash_loop_window":25,"backoff":"100us","backoff_max":"1ms"}}`)
	f.Fuzz(func(t *testing.T, raw string) {
		var s JobSpec
		if err := json.Unmarshal([]byte(raw), &s); err != nil {
			return // malformed JSON is the decoder's problem, not ours
		}
		valid := s.Validate() == nil
		enc, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("decoded spec failed to re-encode: %v\nspec: %+v", err, s)
		}
		var again JobSpec
		if err := json.Unmarshal(enc, &again); err != nil {
			t.Fatalf("re-encoded spec failed to decode: %v\nbytes: %s", err, enc)
		}
		enc2, err := json.Marshal(again)
		if err != nil {
			t.Fatalf("second encode: %v", err)
		}
		if string(enc) != string(enc2) {
			t.Fatalf("encoding is not a fixed point:\n first  %s\n second %s", enc, enc2)
		}
		if again.Validate() == nil != valid {
			t.Fatalf("validation verdict changed across round trip (was valid=%v)\nspec: %s", valid, enc)
		}
	})
}
