// Package supervise is the supervision plane: an in-process supervisor
// that wraps the concurrent executor's incarnations (Runner.Run /
// Runner.Resume) and drives a health state machine
//
//	running → degraded → recovering → … → done | failed
//
// published to telemetry as OpHealth transitions. Where PR 4 made
// crashes survivable-by-operator (exit 3, rerun with -resume), this
// plane makes them a scheduling event: an injected or real
// *fault.CrashError is caught in-process and the run resumes from the
// latest crash-consistent checkpoint under a retry budget with
// exponential backoff; a watchdog (watchdog.go) polls the executor's
// health probe and converts a genuine stall — frontier and task
// counters flat for longer than the threshold — into a diagnosed,
// resumable incarnation failure; and repeated crashes attributed to one
// stage trigger elastic degraded-mode recovery, resuming the remaining
// suffix at half the pipeline depth. Elasticity is legal under CSP:
// Definition 1 orders parameter accesses by subnet sequence, not stage
// count, so the canonical per-layer trace — and the training result —
// is invariant under re-partitioning the suffix across fewer stages.
//
// Give-up is explicit and diagnosable: exhausting the restart budget,
// or a crash loop (no frontier advance across CrashLoopWindow
// consecutive incarnations), returns a *GiveUpError carrying the full
// incident timeline.
package supervise

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"naspipe/internal/backoff"
	"naspipe/internal/engine"
	"naspipe/internal/fault"
	"naspipe/internal/telemetry"
)

// State is the supervisor's health state. The numeric values are the
// wire encoding of telemetry.HealthArg payloads — keep them in sync
// with that doc comment.
type State int

const (
	Running    State = iota // an incarnation is executing
	Degraded                // an incarnation failed recoverably; incident recorded
	Recovering              // backing off / re-partitioning before the next incarnation
	Done                    // stream complete
	Failed                  // gave up, or hit a non-recoverable error
)

var stateNames = [...]string{"running", "degraded", "recovering", "done", "failed"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Transition is one recorded state-machine edge.
type Transition struct {
	From, To    State
	Incarnation int // supervisor attempt index (0 = the initial Run)
	Reason      string
}

// Incident is one recoverable incarnation failure: which attempt, the
// attributed stage (-1 unknown), the error, the watchdog diagnosis when
// it fired, the committed cursor before and after the incarnation, and
// the pipeline depth it ran at.
type Incident struct {
	Incarnation  int
	Stage        int
	Err          error
	Stall        *StallError // non-nil when the watchdog cancelled the incarnation
	CursorBefore int
	CursorAfter  int
	GPUs         int
}

func (i Incident) String() string {
	kind := "crash"
	if i.Stall != nil {
		kind = "stall"
	}
	return fmt.Sprintf("incarnation %d (D=%d): %s on stage %d, cursor %d→%d: %v",
		i.Incarnation, i.GPUs, kind, i.Stage, i.CursorBefore, i.CursorAfter, i.Err)
}

// Report is the supervisor's account of a whole supervised run.
type Report struct {
	Transitions   []Transition
	Incidents     []Incident
	Restarts      int
	WatchdogFires int
	FinalState    State
	FinalGPUs     int
	ElasticSteps  []int // pipeline depth after each elastic halving, in order
}

// Timeline renders the incident history, the "full fault timeline" a
// give-up attaches.
func (r *Report) Timeline() string {
	if len(r.Incidents) == 0 {
		return "  (no incidents)"
	}
	var b strings.Builder
	for _, in := range r.Incidents {
		fmt.Fprintf(&b, "  %s\n", in)
	}
	return strings.TrimRight(b.String(), "\n")
}

// GiveUpError is the supervisor's terminal failure: the retry budget is
// exhausted or the run is crash-looping without progress. It carries
// the report so callers (and the error text itself) have the full
// incident timeline.
type GiveUpError struct {
	Reason string
	Report *Report
}

func (e *GiveUpError) Error() string {
	return fmt.Sprintf("supervise: giving up after %d restarts: %s\nincident timeline:\n%s",
		e.Report.Restarts, e.Reason, e.Report.Timeline())
}

// WatchdogConfig tunes stall detection; see watchdog.go.
type WatchdogConfig struct {
	// Disabled turns the watchdog off entirely (no goroutine started).
	Disabled bool
	// Poll is the probe polling period. 0 = 2ms.
	Poll time.Duration
	// StallAfter is how long both progress signals (committed frontier,
	// completed-task count) must stay flat before the watchdog declares a
	// stall and cancels the incarnation. 0 = 2s — three orders of
	// magnitude above the executor's 5ms park poll, so jitter, cache
	// thrash, and backoff storms never trip it while a wedged stage
	// (which completes nothing, ever) always does.
	StallAfter time.Duration
}

func (w WatchdogConfig) withDefaults() WatchdogConfig {
	if w.Poll <= 0 {
		w.Poll = 2 * time.Millisecond
	}
	if w.StallAfter <= 0 {
		w.StallAfter = 2 * time.Second
	}
	return w
}

// Config tunes the supervisor. The zero value is usable: 16 restarts,
// 5ms–250ms backoff, crash-loop window 3, elasticity off, watchdog on
// with default thresholds.
type Config struct {
	// MaxRestarts bounds resume attempts across the whole run. 0 = 16.
	MaxRestarts int
	// BackoffBase doubles per consecutive restart, capped at BackoffMax.
	// 0 = 5ms base, 250ms cap.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// CrashLoopWindow gives up after this many consecutive incarnations
	// with no committed-cursor advance. 0 = 3.
	CrashLoopWindow int
	// ElasticAfter enables degraded-mode recovery: after this many
	// consecutive incidents attributed to the same stage, the next
	// incarnation resumes at half the pipeline depth (never below
	// MinGPUs). 0 disables elasticity.
	ElasticAfter int
	// MinGPUs floors elastic halving. 0 = 1.
	MinGPUs int

	Watchdog WatchdogConfig

	// Telemetry, when non-nil, receives every state transition as an
	// OpHealth event (Subnet = attempt index, Arg = HealthArg(from, to)).
	Telemetry *telemetry.Bus
	// Log, when non-nil, receives one line per supervisor decision
	// (transition, backoff, elastic step) — the CLIs pass log.Printf.
	Log func(format string, args ...any)

	// Observer, when non-nil, receives every state-machine edge as it is
	// recorded — the service plane's hook for turning transitions into
	// metrics (restart counters, health-edge counters) without polling
	// the Report. Called synchronously from the supervisor goroutine;
	// keep it cheap and never block.
	Observer func(Transition)
	// OnIncident, when non-nil, receives every recoverable incident
	// (crash or diagnosed stall) as it is appended to the Report. Same
	// calling discipline as Observer.
	OnIncident func(Incident)
}

func (c Config) withDefaults() Config {
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 16
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 5 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 250 * time.Millisecond
	}
	if c.CrashLoopWindow <= 0 {
		c.CrashLoopWindow = 3
	}
	if c.MinGPUs <= 0 {
		c.MinGPUs = 1
	}
	c.Watchdog = c.Watchdog.withDefaults()
	return c
}

// Defaults returns the zero config with every default filled in, so
// CLIs can surface the effective values as flag defaults.
func Defaults() Config { return Config{}.withDefaults() }

// Incarnation runs one attempt at the given pipeline depth, publishing
// health into the probe. The supervisor owns the probe and the context;
// the closure wires them into the executor (Runner sets Config.Probe
// and Spec.GPUs).
type Incarnation func(ctx context.Context, gpus int, probe *engine.RunProbe) (engine.Result, error)

// Job is the work under supervision.
type Job struct {
	// Run executes attempt 0; Resume executes every later attempt from
	// the latest checkpoint.
	Run    Incarnation
	Resume Incarnation
	// Cursor reads the committed global cursor from the checkpoint plane
	// after an incident — the crash-loop detector's progress signal.
	Cursor func() (int, error)
	// GPUs is the initial pipeline depth; Total the stream length (both
	// for reporting).
	GPUs  int
	Total int
}

// Run supervises the job to completion. It returns the final
// incarnation's Result, the full Report (never nil), and:
//
//   - nil when the stream completed (FinalState Done);
//   - the parent context's error when externally interrupted — the
//     checkpoint is valid, the run is resumable, and FinalState stays
//     at the interruption point rather than Failed;
//   - a *GiveUpError on budget exhaustion or crash loop;
//   - the underlying error for non-recoverable failures (FinalState
//     Failed).
func Run(ctx context.Context, cfg Config, job Job) (engine.Result, *Report, error) {
	cfg = cfg.withDefaults()
	if job.Run == nil || job.Resume == nil || job.Cursor == nil {
		return engine.Result{}, &Report{FinalState: Failed}, fmt.Errorf("supervise: job needs Run, Resume, and Cursor")
	}
	sup := &supervisor{cfg: cfg, job: job, rep: &Report{FinalGPUs: job.GPUs}}
	res, err := sup.loop(ctx)
	return res, sup.rep, err
}

type supervisor struct {
	cfg   Config
	job   Job
	rep   *Report
	state State
}

func (sv *supervisor) logf(format string, args ...any) {
	if sv.cfg.Log != nil {
		sv.cfg.Log(format, args...)
	}
}

// transition moves the state machine, records the edge, and publishes
// it to telemetry.
func (sv *supervisor) transition(to State, inc int, reason string) {
	from := sv.state
	sv.state = to
	sv.rep.Transitions = append(sv.rep.Transitions, Transition{
		From: from, To: to, Incarnation: inc, Reason: reason,
	})
	sv.rep.FinalState = to
	if sv.cfg.Telemetry != nil {
		sv.cfg.Telemetry.Emit(telemetry.Event{
			Op: telemetry.OpHealth, Phase: telemetry.PhaseInstant,
			Stage: -1, Worker: telemetry.WorkerStage,
			Subnet: int32(inc), Kind: telemetry.KindNone,
			Arg: telemetry.HealthArg(int32(from), int32(to)),
		})
	}
	sv.logf("supervise: %s → %s (incarnation %d): %s", from, to, inc, reason)
	if sv.cfg.Observer != nil {
		sv.cfg.Observer(Transition{From: from, To: to, Incarnation: inc, Reason: reason})
	}
}

func (sv *supervisor) loop(ctx context.Context) (engine.Result, error) {
	var (
		gpus         = sv.job.GPUs
		probe        = &engine.RunProbe{}
		run          = sv.job.Run
		inc          = 0
		lastCursor   = 0
		noAdvance    = 0
		sameStage    = -1
		sameStageRun = 0
	)
	for {
		// Each incarnation gets its own cancellable context so the
		// watchdog can kill exactly one attempt; the cause distinguishes
		// a watchdog stall from an external interruption.
		runCtx, cancel := context.WithCancelCause(ctx)
		stop := startWatchdog(runCtx, cancel, sv.cfg.Watchdog, probe, inc)
		res, err := run(runCtx, gpus, probe)
		cancel(nil)
		<-stop

		if err == nil {
			sv.rep.FinalGPUs = gpus
			sv.transition(Done, inc, fmt.Sprintf("stream complete (%d subnets, D=%d)", sv.job.Total, gpus))
			return res, nil
		}

		// Classify the failure: watchdog stall and injected/real crashes
		// are recoverable incidents; an external interruption returns
		// resumable; anything else is terminal.
		var (
			stall *StallError
			crash *fault.CrashError
			stage = -1
		)
		switch cause := context.Cause(runCtx); {
		case errors.As(cause, &stall):
			sv.rep.WatchdogFires++
			stage = stall.BlockedStage()
			err = stall
		case errors.As(err, &crash):
			stage = crash.Stage
		case ctx.Err() != nil:
			// Interrupted from outside (signal, deadline). The checkpoint
			// plane already bumped the incarnation at the cut; report the
			// run as resumable without entering Failed.
			sv.logf("supervise: interrupted at incarnation %d: %v", inc, ctx.Err())
			return res, err
		default:
			sv.transition(Failed, inc, fmt.Sprintf("non-recoverable: %v", err))
			return res, err
		}

		cursor, cerr := sv.job.Cursor()
		if cerr != nil {
			sv.transition(Failed, inc, fmt.Sprintf("checkpoint unreadable after incident: %v", cerr))
			return res, fmt.Errorf("supervise: checkpoint unreadable after incident: %w", cerr)
		}
		incident := Incident{
			Incarnation: inc, Stage: stage, Err: err, Stall: stall,
			CursorBefore: lastCursor, CursorAfter: cursor, GPUs: gpus,
		}
		sv.rep.Incidents = append(sv.rep.Incidents, incident)
		if sv.cfg.OnIncident != nil {
			sv.cfg.OnIncident(incident)
		}
		sv.transition(Degraded, inc, incident.String())

		if sv.rep.Restarts++; sv.rep.Restarts > sv.cfg.MaxRestarts {
			gerr := &GiveUpError{Reason: fmt.Sprintf("restart budget %d exhausted", sv.cfg.MaxRestarts), Report: sv.rep}
			sv.transition(Failed, inc, gerr.Reason)
			return res, gerr
		}
		if cursor > lastCursor {
			noAdvance = 0
		} else if noAdvance++; noAdvance >= sv.cfg.CrashLoopWindow {
			gerr := &GiveUpError{
				Reason: fmt.Sprintf("crash loop: no frontier advance across %d consecutive incarnations (cursor stuck at %d/%d)",
					noAdvance, cursor, sv.job.Total),
				Report: sv.rep,
			}
			sv.transition(Failed, inc, gerr.Reason)
			return res, gerr
		}
		lastCursor = cursor

		// Elastic degraded-mode recovery: repeated incidents on one stage
		// point at a depth-correlated failure; halve the pipeline and
		// re-partition the suffix. CSP ordering is per subnet sequence,
		// so the result stays bitwise identical (Definition 1).
		if stage >= 0 && stage == sameStage {
			sameStageRun++
		} else {
			sameStage, sameStageRun = stage, 1
		}
		if sv.cfg.ElasticAfter > 0 && sameStageRun >= sv.cfg.ElasticAfter && gpus/2 >= sv.cfg.MinGPUs {
			gpus /= 2
			sv.rep.ElasticSteps = append(sv.rep.ElasticSteps, gpus)
			sameStage, sameStageRun = -1, 0
			sv.logf("supervise: %d consecutive incidents on stage %d: elastic degrade to D=%d", sv.cfg.ElasticAfter, stage, gpus)
		}
		sv.rep.FinalGPUs = gpus

		sv.transition(Recovering, inc, fmt.Sprintf("resume %d/%d from cursor %d at D=%d", sv.rep.Restarts, sv.cfg.MaxRestarts, cursor, gpus))
		if err := sv.backoff(ctx, sv.rep.Restarts); err != nil {
			return res, err
		}
		inc++
		sv.transition(Running, inc, fmt.Sprintf("incarnation %d starting", inc))
		run = sv.job.Resume
	}
}

// backoff sleeps BackoffBase·2^(restart-1) capped at BackoffMax,
// returning early with the context error on interruption. The schedule
// is the shared backoff.Policy — the same rule transport reconnects and
// dropped-message retries follow.
func (sv *supervisor) backoff(ctx context.Context, restart int) error {
	return backoff.Policy{Base: sv.cfg.BackoffBase, Max: sv.cfg.BackoffMax}.Sleep(ctx, restart-1)
}
