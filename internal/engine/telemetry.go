// Telemetry glue shared by both execution planes: emission helpers for
// the simulated engine (simulated-nanosecond timestamps) and the span
// reconstruction that turns a captured event stream back into
// Result.Spans — the bridge that lets the concurrent plane, which has no
// discrete-event clock, feed the same timeline/figure renderers as the
// simulator.
package engine

import (
	"sort"

	"naspipe/internal/task"
	"naspipe/internal/telemetry"
)

// simNs converts the simulator's millisecond clock to event-stream
// nanoseconds.
func simNs(ms float64) int64 { return int64(ms * 1e6) }

// telKind maps a task kind onto the bus's dependency-free encoding.
func telKind(k task.Kind) int8 {
	if k == task.Backward {
		return telemetry.KindBackward
	}
	return telemetry.KindForward
}

// telTask emits one task-scoped event at the simulator's current time.
func (e *Engine) telTask(op telemetry.Op, ph telemetry.Phase, t task.Task) {
	if e.tel == nil {
		return
	}
	e.tel.EmitAt(simNs(e.now), telemetry.Event{
		Op: op, Phase: ph,
		Stage: int32(t.Stage), Worker: telemetry.WorkerStage,
		Subnet: int32(t.Subnet), Kind: telKind(t.Kind),
	})
}

// telInstant emits a non-task point event at the simulator's current
// time.
func (e *Engine) telInstant(op telemetry.Op, stage int, worker int32, arg int64) {
	if e.tel == nil {
		return
	}
	e.tel.EmitAt(simNs(e.now), telemetry.Event{
		Op: op, Phase: telemetry.PhaseInstant,
		Stage: int32(stage), Worker: worker,
		Subnet: -1, Kind: telemetry.KindNone, Arg: arg,
	})
}

// telFlow emits a cross-stage transfer endpoint at an explicit simulated
// time.
func (e *Engine) telFlow(ph telemetry.Phase, op telemetry.Op, atMs float64, stage, subnet int, kind task.Kind, from int) {
	if e.tel == nil {
		return
	}
	e.tel.EmitAt(simNs(atMs), telemetry.Event{
		Op: op, Phase: ph,
		Stage: int32(stage), Worker: telemetry.WorkerStage,
		Subnet: int32(subnet), Kind: telKind(kind),
		Arg: telemetry.FlowID(telKind(kind), int32(subnet), int32(from)),
	})
}

// telSpanSwitch performs the span bookkeeping at a dispatch boundary:
// ends the previously running exec's span as a preemption if a different
// exec takes the stage, and opens (or reopens) the picked exec's span.
func (e *Engine) telSpanSwitch(st *stageState, pick *execState) {
	if e.tel == nil || pick == st.cur {
		return
	}
	if st.cur != nil && st.cur.spanOpen && !st.cur.done() {
		e.telTask(telemetry.OpTaskPreempt, telemetry.PhaseEnd, st.cur.t)
		st.cur.spanOpen = false
	}
	if !pick.spanOpen {
		op := telemetry.OpTaskStart
		if pick.everStarted {
			op = telemetry.OpTaskResume
		}
		e.telTask(op, telemetry.PhaseBegin, pick.t)
		pick.spanOpen = true
		pick.everStarted = true
	}
	st.cur = pick
}

// SpansFromEvents reconstructs per-task timeline spans from a telemetry
// stream: a span stretches from the task's first start to its completion
// (preemption gaps stay inside the extent, exactly like the simulator's
// admission-to-completion spans), and task-attributed cache stalls
// accumulate into StallMs. Events that never complete (cancelled run,
// ring truncation) are dropped. The result is ordered by start time,
// then stage, subnet, and kind, so repeated reconstructions of the same
// stream are deterministic.
func SpansFromEvents(evs []telemetry.Event) []TaskSpan {
	type key struct {
		stage, subnet int32
		kind          int8
	}
	type acc struct {
		start, end float64
		hasStart   bool
		hasEnd     bool
		stallMs    float64
	}
	accs := map[key]*acc{}
	get := func(k key) *acc {
		a := accs[k]
		if a == nil {
			a = &acc{}
			accs[k] = a
		}
		return a
	}
	for _, ev := range evs {
		if ev.Subnet < 0 {
			continue
		}
		k := key{ev.Stage, ev.Subnet, ev.Kind}
		ms := float64(ev.TsNs) / 1e6
		switch {
		case ev.Op == telemetry.OpTaskStart && ev.Phase == telemetry.PhaseBegin:
			a := get(k)
			if !a.hasStart || ms < a.start {
				a.start = ms
				a.hasStart = true
			}
		case ev.Op == telemetry.OpTaskComplete && ev.Phase == telemetry.PhaseEnd:
			a := get(k)
			if !a.hasEnd || ms > a.end {
				a.end = ms
				a.hasEnd = true
			}
		case ev.Op == telemetry.OpCacheStall && ev.Phase != telemetry.PhaseBegin:
			get(k).stallMs += float64(ev.Arg) / 1e6
		}
	}
	var spans []TaskSpan
	for k, a := range accs {
		if !a.hasStart || !a.hasEnd || a.end < a.start {
			continue
		}
		kind := task.Forward
		if k.kind == telemetry.KindBackward {
			kind = task.Backward
		}
		spans = append(spans, TaskSpan{
			Task:    task.Task{Subnet: int(k.subnet), Stage: int(k.stage), Kind: kind},
			StartMs: a.start, EndMs: a.end, StallMs: a.stallMs,
		})
	}
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.StartMs != b.StartMs {
			return a.StartMs < b.StartMs
		}
		if a.Task.Stage != b.Task.Stage {
			return a.Task.Stage < b.Task.Stage
		}
		if a.Task.Subnet != b.Task.Subnet {
			return a.Task.Subnet < b.Task.Subnet
		}
		return a.Task.Kind < b.Task.Kind
	})
	return spans
}
