package telemetry

// Batcher amortizes the bus's ring lock for a single producer goroutine:
// events are stamped and buffered locally at Emit time, then published in
// one EmitBatch per flush. The concurrent executor gives each stage
// goroutine its own Batcher and flushes at scheduling boundaries (park,
// loop exit) and whenever the local buffer fills, so a busy stage pays
// one lock acquisition per ~batch of task events instead of one per
// event.
//
// A Batcher is NOT safe for concurrent use — it belongs to exactly one
// goroutine. Emitters shared across goroutines (the stage caches, the
// fault plane's prefetcher-side events) keep using Bus.Emit directly.
//
// Semantics relative to unbatched emission: timestamps are identical
// (stamped at Emit), live counters and the captured stream lag by at most
// one unflushed buffer, and ring-order may interleave differently across
// producers — which no consumer observes, because the Chrome-trace
// exporter sorts by timestamp and span reconstruction is order-
// insensitive.
type Batcher struct {
	bus *Bus
	buf []Event
}

// batcherCap is the local buffer size; a flush happens at the latest
// after this many events.
const batcherCap = 64

// NewBatcher returns a batcher publishing to bus. A nil bus yields a nil
// batcher; like the bus, the nil *Batcher is the disabled instance and
// every method on it is a nil-safe no-op.
func NewBatcher(bus *Bus) *Batcher {
	if bus == nil {
		return nil
	}
	return &Batcher{bus: bus, buf: make([]Event, 0, batcherCap)}
}

// Enabled reports whether events go anywhere. Nil-safe.
func (t *Batcher) Enabled() bool { return t != nil }

// Emit stamps the event with the bus's current clock and queues it,
// flushing if the local buffer is full. Nil-safe; allocation-free.
func (t *Batcher) Emit(ev Event) {
	if t == nil {
		return
	}
	ev.TsNs = t.bus.Now()
	t.buf = append(t.buf, ev)
	if len(t.buf) >= batcherCap {
		t.Flush()
	}
}

// Flush publishes every queued event to the bus. Nil-safe. Callers must
// flush before the stream is read (the executor does so when a stage
// parks and when its goroutine exits).
func (t *Batcher) Flush() {
	if t == nil || len(t.buf) == 0 {
		return
	}
	t.bus.EmitBatch(t.buf)
	t.buf = t.buf[:0]
}

// Pending returns the number of queued, unflushed events. Nil-safe.
func (t *Batcher) Pending() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}
