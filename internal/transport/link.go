package transport

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"naspipe/internal/backoff"
	"naspipe/internal/fault"
	"naspipe/internal/telemetry"
)

// ErrNotConnected is returned when an unsequenced frame (heartbeat,
// handshake) is offered while the link has no live connection. Such
// frames are fire-and-forget; callers drop or retry them at their own
// cadence rather than queueing them here.
var ErrNotConnected = fmt.Errorf("transport: link not connected")

// LinkConfig configures one reliable link.
type LinkConfig struct {
	Local int // our stage address, stamped on acks
	Peer  int // peer stage address: fault-site and telemetry attribution

	// Redial reopens the connection after a cut. Nil makes this the
	// accept side of the link: it waits for the peer to redial and the
	// owner to Attach the fresh connection.
	Redial func(ctx context.Context) (net.Conn, error)

	// Backoff paces the redial loop. The zero value selects the same
	// defaults the fault plane retries with (2ms base, 100ms cap) —
	// small enough that an injected cut heals well inside a heartbeat
	// deadline.
	Backoff backoff.Policy

	// Injector enables transport-fault injection on this link's send
	// side (frame drops, cuts). Nil is a clean link. Faults apply to a
	// frame's first transmission only — retransmissions always go
	// through, otherwise a deterministic drop would kill the same
	// seqno forever.
	Injector *fault.Injector

	Tel      *telemetry.Bus
	InboxCap int // delivery channel depth (default 256)
}

// Link is one end of a reliable stage-to-stage connection. Sequenced
// frames get a monotonic link seqno, stay buffered until cumulatively
// acked, survive reconnects via go-back-N retransmission, and are
// deduplicated on the receive side, so the consumer observes exactly-
// once, in-order delivery no matter how often the wire dies under it.
// Unsequenced frames (heartbeats, handshake, acks) bypass all of that.
type Link struct {
	cfg    LinkConfig
	ctx    context.Context
	cancel context.CancelFunc
	in     chan Frame
	wg     sync.WaitGroup

	mu           sync.Mutex
	conn         net.Conn
	gen          int     // connection generation; stale readers exit
	nextSeq      uint64  // last data seqno assigned
	acked        uint64  // peer's cumulative ack
	unacked      []Frame // frames in (acked, nextSeq]
	sentData     uint64  // first transmissions offered: the "after N frames" fault site
	recvSeq      uint64  // last in-order data seqno delivered (dedup cursor)
	lastProgress time.Time
	closed       bool
}

// retransmitAfter is the backstop: if the unacked window has made no
// progress for this long (a dropped tail frame generates no duplicate
// ack to trigger go-back-N), the window is re-sent wholesale.
const retransmitAfter = 40 * time.Millisecond

// NewLink returns an unconnected link. Dial-side links call Connect;
// accept-side links wait for Attach.
func NewLink(cfg LinkConfig) *Link {
	if cfg.InboxCap <= 0 {
		cfg.InboxCap = 256
	}
	if cfg.Backoff == (backoff.Policy{}) {
		cfg.Backoff = backoff.Policy{Base: 2 * time.Millisecond, Max: 100 * time.Millisecond}
	}
	ctx, cancel := context.WithCancel(context.Background())
	l := &Link{
		cfg:          cfg,
		ctx:          ctx,
		cancel:       cancel,
		in:           make(chan Frame, cfg.InboxCap),
		lastProgress: time.Now(),
	}
	l.wg.Add(1)
	go l.backstop()
	return l
}

// In returns the delivery channel: deduplicated in-order sequenced
// frames plus control frames, in arrival order. Closed by Close.
func (l *Link) In() <-chan Frame { return l.in }

// Connect performs the initial dial (dial-side links only), retrying
// with backoff until the context dies.
func (l *Link) Connect(ctx context.Context) error {
	if l.cfg.Redial == nil {
		return fmt.Errorf("transport: Connect on an accept-side link")
	}
	for attempt := 0; ; attempt++ {
		conn, err := l.cfg.Redial(ctx)
		if err == nil {
			l.Attach(conn)
			return nil
		}
		if serr := l.cfg.Backoff.Sleep(ctx, attempt); serr != nil {
			return fmt.Errorf("transport: dialing peer %d: %w (last: %v)", l.cfg.Peer, serr, err)
		}
	}
}

// Attach adopts a fresh connection: any previous connection is closed,
// the unacked window is retransmitted, and a reader is spawned. The
// accept side calls this when the peer redials after a cut.
func (l *Link) Attach(conn net.Conn) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		conn.Close()
		return
	}
	if l.conn != nil {
		l.conn.Close()
	}
	l.conn = conn
	l.gen++
	l.retransmitLocked()
	l.wg.Add(1)
	go l.reader(conn, l.gen)
}

// Send transmits a frame. Sequenced frames are assigned the next link
// seqno (overwriting f.Seq), buffered, and guaranteed to arrive exactly
// once even across cuts; transient wire failures are absorbed (nil
// error) because the retransmit machinery owns recovery. Unsequenced
// frames are best-effort: ErrNotConnected or the write error is the
// caller's to ignore.
func (l *Link) Send(f Frame) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if !f.Type.Sequenced() {
		if l.conn == nil {
			return ErrNotConnected
		}
		if err := WriteFrame(l.conn, f); err != nil {
			l.conn.Close()
			return err
		}
		return nil
	}
	l.nextSeq++
	f.Seq = l.nextSeq
	l.unacked = append(l.unacked, f)
	l.sentData++
	inj := l.cfg.Injector
	if inj != nil && inj.FrameDrop(l.cfg.Peer, f.Seq) {
		// First transmission suppressed; go-back-N or the backstop
		// recovers it. Still counts toward the cut site below.
		l.emit(telemetry.OpLinkDrop, int64(f.Seq))
	} else {
		l.emit(telemetry.OpLinkSend, int64(f.Seq))
		if l.conn != nil {
			if err := WriteFrame(l.conn, f); err != nil {
				l.conn.Close()
			}
		}
	}
	if inj != nil && l.conn != nil && inj.LinkCut(l.cfg.Peer, l.sentData) {
		l.emit(telemetry.OpLinkCut, int64(l.sentData))
		l.conn.Close() // the reader notices and heals it
	}
	return nil
}

// Close tears the link down: senders get ErrClosed, readers and the
// backstop exit, and the delivery channel is closed after they drain.
func (l *Link) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	l.mu.Unlock()
	l.cancel()
	l.wg.Wait()
	close(l.in)
	return nil
}

// reader drains one connection generation, handling acks and dedup
// inline and delivering everything else. On a wire error the dial side
// heals the link in place; the accept side exits and waits for Attach.
func (l *Link) reader(conn net.Conn, gen int) {
	defer l.wg.Done()
	br := bufio.NewReader(conn)
	for {
		f, err := ReadFrame(br)
		if err != nil {
			l.connErr(conn, gen)
			return
		}
		switch {
		case f.Type == FrameAck:
			l.handleAck(f.Seq)
		case f.Type.Sequenced():
			if l.accept(f) {
				l.deliver(f)
			}
		default:
			l.deliver(f)
		}
	}
}

// accept runs receive-side reliability for one sequenced frame: exactly
// the next expected seqno is delivered; duplicates and post-gap frames
// are discarded. Either way the cumulative ack cursor is re-announced,
// so a discarded out-of-order frame doubles as the duplicate ack that
// triggers the sender's go-back-N.
func (l *Link) accept(f Frame) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	ok := f.Seq == l.recvSeq+1
	if ok {
		l.recvSeq = f.Seq
		l.emit(telemetry.OpLinkRecv, int64(f.Seq))
	}
	if l.conn != nil {
		ack := Frame{Type: FrameAck, From: l.cfg.Local, To: l.cfg.Peer, Seq: l.recvSeq}
		if err := WriteFrame(l.conn, ack); err != nil {
			l.conn.Close()
		}
	}
	return ok
}

func (l *Link) handleAck(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.acked {
		drop := int(seq - l.acked)
		if drop > len(l.unacked) {
			drop = len(l.unacked)
		}
		l.unacked = l.unacked[drop:]
		l.acked = seq
		l.lastProgress = time.Now()
		return
	}
	// Duplicate ack: the peer saw a gap. Go back N.
	if len(l.unacked) > 0 {
		l.retransmitLocked()
	}
}

func (l *Link) retransmitLocked() {
	if l.conn == nil || len(l.unacked) == 0 {
		return
	}
	l.emit(telemetry.OpLinkRetransmit, int64(len(l.unacked)))
	for _, f := range l.unacked {
		if err := WriteFrame(l.conn, f); err != nil {
			l.conn.Close()
			return
		}
	}
	l.lastProgress = time.Now()
}

// connErr handles a dead connection observed by generation gen's
// reader. Stale generations (already superseded by Attach) are ignored.
func (l *Link) connErr(conn net.Conn, gen int) {
	conn.Close()
	l.mu.Lock()
	if l.closed || gen != l.gen || l.conn != conn {
		l.mu.Unlock()
		return
	}
	l.conn = nil
	redial := l.cfg.Redial
	l.mu.Unlock()
	if redial == nil {
		return // accept side: the peer redials, the owner Attaches
	}
	for attempt := 0; ; attempt++ {
		if l.cfg.Backoff.Sleep(l.ctx, attempt) != nil {
			return
		}
		c, err := redial(l.ctx)
		if err != nil {
			continue
		}
		l.emit(telemetry.OpLinkReconnect, int64(attempt))
		l.Attach(c)
		return
	}
}

// deliver hands a frame to the consumer, giving up only on shutdown.
func (l *Link) deliver(f Frame) {
	select {
	case l.in <- f:
	case <-l.ctx.Done():
	}
}

// backstop retransmits a stalled unacked window: a dropped tail frame
// produces no out-of-order arrival at the peer, hence no duplicate ack,
// so timer-driven recovery is the only way it ever lands.
func (l *Link) backstop() {
	defer l.wg.Done()
	t := time.NewTicker(retransmitAfter / 2)
	defer t.Stop()
	for {
		select {
		case <-l.ctx.Done():
			return
		case <-t.C:
		}
		l.mu.Lock()
		if !l.closed && len(l.unacked) > 0 && time.Since(l.lastProgress) > retransmitAfter {
			l.retransmitLocked()
		}
		l.mu.Unlock()
	}
}

// emit publishes a link event attributed to the peer stage.
func (l *Link) emit(op telemetry.Op, arg int64) {
	l.cfg.Tel.Emit(telemetry.Event{
		Op: op, Stage: int32(l.cfg.Peer), Worker: telemetry.WorkerStage,
		Subnet: -1, Kind: telemetry.KindNone, Arg: arg,
	})
}
