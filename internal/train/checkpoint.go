package train

import (
	"sync"

	"naspipe/internal/data"
	"naspipe/internal/supernet"
)

// Checkpointer incrementally materializes the sequential-prefix weight
// state of a subnet stream, so checkpoint cuts can carry a weight
// checksum without retraining the prefix from scratch at every save.
// ChecksumAt(cursor) is the checksum a fresh Sequential run over
// subnets[:cursor] would produce; cursors normally arrive monotonically
// (the engine's frontier only advances) and each call then trains only
// the delta. A regressed cursor falls back to a from-scratch rebuild.
type Checkpointer struct {
	mu   sync.Mutex
	cfg  Config
	subs []supernet.Subnet
	net  *supernet.Numeric
	src  *data.Source
	ar   *arena
	done int // subnets [0, done) are applied to net
}

// NewCheckpointer builds a checkpointer over the full subnet stream.
func NewCheckpointer(cfg Config, subs []supernet.Subnet) *Checkpointer {
	cfg = cfg.withDefaults()
	return &Checkpointer{
		cfg:  cfg,
		subs: subs,
		net:  supernet.BuildNumeric(cfg.Space, cfg.Dim, cfg.Seed),
		src:  data.NewSource(cfg.Dataset, cfg.Dim, cfg.BatchSize, cfg.Seed),
		ar:   newArena(cfg.Dim),
	}
}

// ChecksumAt returns the sequential weight checksum after the first
// cursor subnets. Safe for concurrent use.
func (c *Checkpointer) ChecksumAt(cursor int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cursor > len(c.subs) {
		cursor = len(c.subs)
	}
	if cursor < c.done {
		c.net = supernet.BuildNumeric(c.cfg.Space, c.cfg.Dim, c.cfg.Seed)
		c.done = 0
	}
	for ; c.done < cursor; c.done++ {
		sub := c.subs[c.done]
		views := c.ar.viewsBuf(len(sub.Choices))
		for b, ch := range sub.Choices {
			views[b] = c.net.At(b, ch)
		}
		_, grads := step(c.cfg, c.src.Batch(sub.Seq), sub, views, c.ar)
		for b, ch := range sub.Choices {
			c.net.At(b, ch).ApplySGD(grads[b], c.cfg.LR)
		}
		c.ar.release(grads)
	}
	return c.net.Checksum()
}
