// Package csp implements Causal Synchronous Parallel scheduling — the
// paper's core contribution (§3, Algorithms 1–3).
//
// CSP (Definition 2) requires dependency preservation: if subnets x < y
// select the same candidate layer l, then y's accesses to l must wait for
// x's WRITE (backward + optimizer step) on l to finish. Each pipeline
// stage runs its own Scheduler instance, resolving dependencies locally
// and in a decentralized way — no external synchronization server.
//
// The scheduling policy (§3.2): backward tasks always run first (they
// retire dependencies and widen the schedulable set); forward tasks are
// chosen by SCHEDULE (Algorithm 2), which scans the queue in sequence-ID
// order and returns the first task whose stage-local layers do not collide
// with any unfinished earlier subnet. A finished-list elimination scheme
// bounds the scan: once every subnet below a sequence ID has finished,
// those subnets drop out of both the finished list and the dependency
// check.
package csp

import (
	"fmt"
	"sort"

	"naspipe/internal/supernet"
)

// SubnetInfo is what a stage's scheduler knows about one subnet: its
// sequence ID, the full set of candidate layers it activates (used when
// the subnet appears as the *earlier* side of a dependency check — with
// mirroring, a layer may sit on a different stage of the earlier subnet),
// and the layers assigned to this stage (used when the subnet is the
// *candidate* being scheduled).
type SubnetInfo struct {
	Seq         int
	AllLayers   []supernet.LayerID // every chosen layer, any stage
	StageLayers []supernet.LayerID // chosen layers on this scheduler's stage
}

// Scheduler is the per-stage CSP scheduler state: L_SN (known subnets) and
// L_f (finished subnets) of Algorithm 1, plus a per-layer reverse index
// that accelerates Algorithm 2's membership test.
type Scheduler struct {
	stage    int
	subnets  map[int]*SubnetInfo
	finished map[int]bool
	// frontier: every subnet with Seq < frontier is finished and has been
	// eliminated from the dependency check (the paper's elimination
	// scheme keeping |L_f| ~ |L_q|).
	frontier int
	// users maps each layer to the set of *active* (registered, not yet
	// eliminated) subnet sequence IDs that select it.
	users map[supernet.LayerID]map[int]bool

	// Scheduling-pressure counters (see Stats). A Scheduler is owned by a
	// single stage — one simulator loop or one stage goroutine — so plain
	// ints suffice; cross-stage communication happens via MarkWritten/
	// MarkFinished calls delivered to the owner, never via shared access.
	scheduleCalls int
	emptyScans    int
}

// New returns an empty scheduler for the given stage.
func New(stage int) *Scheduler {
	return &Scheduler{
		stage:    stage,
		subnets:  make(map[int]*SubnetInfo),
		finished: make(map[int]bool),
		users:    make(map[supernet.LayerID]map[int]bool),
	}
}

// Stage returns the stage this scheduler serves.
func (s *Scheduler) Stage() int { return s.stage }

// Frontier returns the lowest sequence ID still participating in
// dependency checks. All subnets below it are finished and eliminated.
func (s *Scheduler) Frontier() int { return s.frontier }

// Active returns the number of registered, non-eliminated subnets.
func (s *Scheduler) Active() int { return len(s.subnets) }

// AddSubnet registers a subnet retrieved from the exploration frontend
// (Algorithm 1 line 14). Subnets must be added in sequence order with no
// gaps; this mirrors the producer-consumer retrieve() contract.
func (s *Scheduler) AddSubnet(info SubnetInfo) error {
	if info.Seq < s.frontier {
		return fmt.Errorf("csp: subnet %d below frontier %d", info.Seq, s.frontier)
	}
	if _, dup := s.subnets[info.Seq]; dup {
		return fmt.Errorf("csp: subnet %d already registered", info.Seq)
	}
	cp := &SubnetInfo{
		Seq:         info.Seq,
		AllLayers:   append([]supernet.LayerID(nil), info.AllLayers...),
		StageLayers: append([]supernet.LayerID(nil), info.StageLayers...),
	}
	s.subnets[info.Seq] = cp
	for _, l := range cp.AllLayers {
		set := s.users[l]
		if set == nil {
			set = make(map[int]bool)
			s.users[l] = set
		}
		set[info.Seq] = true
	}
	return nil
}

// MarkFinished records that the subnet's backward pass (its WRITE) has
// completed and flushed on this stage, then advances the elimination
// frontier (Algorithm 1 line 10 plus the §3.2 elimination scheme).
func (s *Scheduler) MarkFinished(seq int) {
	if seq < s.frontier || s.finished[seq] {
		return
	}
	s.finished[seq] = true
	for s.finished[s.frontier] {
		s.eliminate(s.frontier)
		s.frontier++
	}
}

// MarkWritten records that subnet seq's WRITE to the given layers has
// completed (the backward pass of the stage owning them finished, and —
// for mirrored layers — the update has been pushed, §4.2). Blocked stops
// considering those (layer, subnet) pairs immediately, which unblocks
// dependents at per-layer granularity: tighter than whole-subnet
// completion when two subnets' balanced partitions place a shared layer
// on different stages.
func (s *Scheduler) MarkWritten(seq int, ids []supernet.LayerID) {
	for _, l := range ids {
		if set := s.users[l]; set != nil {
			delete(set, seq)
			if len(set) == 0 {
				delete(s.users, l)
			}
		}
	}
}

// eliminate drops a finished subnet from all indexes.
func (s *Scheduler) eliminate(seq int) {
	delete(s.finished, seq)
	info := s.subnets[seq]
	if info != nil {
		for _, l := range info.AllLayers {
			if set := s.users[l]; set != nil {
				delete(set, seq)
				if len(set) == 0 {
					delete(s.users, l)
				}
			}
		}
	}
	delete(s.subnets, seq)
}

// Finished reports whether the subnet's WRITE has completed (or has been
// eliminated as finished).
func (s *Scheduler) Finished(seq int) bool {
	return seq < s.frontier || s.finished[seq]
}

// Blocked reports whether scheduling subnet seq's forward on this stage
// would violate CSP: some layer of its stage partition is selected by an
// unfinished earlier subnet. This is Algorithm 2's inner check (lines
// 4–10) with the per-layer index replacing the linear scan.
func (s *Scheduler) Blocked(seq int) bool {
	info := s.subnets[seq]
	if info == nil {
		// Unknown subnet: conservatively blocked; the caller has not
		// registered it yet, so its dependencies cannot be checked.
		return true
	}
	for _, l := range info.StageLayers {
		for w := range s.users[l] {
			if w < seq && !s.Finished(w) {
				return true
			}
		}
	}
	return false
}

// BlockingWriter returns the smallest unfinished earlier subnet that
// blocks seq, or -1 if seq is unblocked. Used by the predictor to chain
// pending backward releases.
func (s *Scheduler) BlockingWriter(seq int) int {
	info := s.subnets[seq]
	if info == nil {
		return -1
	}
	min := -1
	for _, l := range info.StageLayers {
		for w := range s.users[l] {
			if w < seq && !s.Finished(w) {
				if min == -1 || w < min {
					min = w
				}
			}
		}
	}
	return min
}

// Schedule is Algorithm 2: scan the queue in order and return the
// position and sequence ID of the first forward task that satisfies CSP,
// or (-1, -1) if every queued task is blocked. The queue is the stage's
// L_q; entries are subnet sequence IDs whose forward input has arrived.
func (s *Scheduler) Schedule(queue []int) (qidx, qval int) {
	s.scheduleCalls++
	for i, seq := range queue {
		if !s.Blocked(seq) {
			return i, seq
		}
	}
	if len(queue) > 0 {
		s.emptyScans++
	}
	return -1, -1
}

// Stats reports scheduling-pressure counters: how many Schedule scans ran
// and how many scanned a non-empty queue without finding an admissible
// forward (every candidate blocked by an unfinished earlier subnet).
func (s *Scheduler) Stats() (scheduleCalls, emptyScans int) {
	return s.scheduleCalls, s.emptyScans
}

// ResetStats zeroes the scheduling-pressure counters and returns the
// values they held. Callers that reuse a scheduler across run incarnations
// must call this (or snapshot-delta around Stats) at each incarnation
// boundary, so contention tables report per-incarnation pressure rather
// than a total inflated by earlier lives.
func (s *Scheduler) ResetStats() (scheduleCalls, emptyScans int) {
	scheduleCalls, emptyScans = s.scheduleCalls, s.emptyScans
	s.scheduleCalls, s.emptyScans = 0, 0
	return scheduleCalls, emptyScans
}

// ScheduleAssuming runs Schedule as if the given extra subnets were
// already finished. The predictor uses it to look one backward completion
// ahead (Algorithm 3 lines 4–9). It sits on the predictor's per-task
// admission path, so the assumption set is scanned as a slice — the
// lookahead is one or two entries — and the call performs no allocation.
func (s *Scheduler) ScheduleAssuming(queue []int, finished ...int) (qidx, qval int) {
	for i, seq := range queue {
		if !s.blockedAssuming(seq, finished) {
			return i, seq
		}
	}
	return -1, -1
}

func (s *Scheduler) blockedAssuming(seq int, assume []int) bool {
	info := s.subnets[seq]
	if info == nil {
		return true
	}
	for _, l := range info.StageLayers {
	users:
		for w := range s.users[l] {
			if w < seq && !s.Finished(w) {
				for _, f := range assume {
					if f == w {
						continue users
					}
				}
				return true
			}
		}
	}
	return false
}

// ReferenceSchedule is the paper-literal Algorithm 2, kept as an oracle
// for differential testing against the indexed implementation: nested
// loops over the queue, all earlier subnets, and all layer choices, with
// no reverse index and no elimination shortcuts beyond the frontier.
func ReferenceSchedule(queue []int, finished map[int]bool, frontier int,
	subnets map[int]*SubnetInfo) (qidx, qval int) {
	for i, seq := range queue {
		scheduled := true
		cand := subnets[seq]
		if cand == nil {
			continue
		}
	earlier:
		for wval := frontier; wval < seq; wval++ {
			if finished[wval] {
				continue
			}
			w := subnets[wval]
			if w == nil {
				continue
			}
			for _, l := range cand.StageLayers {
				for _, wl := range w.AllLayers {
					if l == wl {
						scheduled = false
						break earlier
					}
				}
			}
		}
		if scheduled {
			return i, seq
		}
	}
	return -1, -1
}

// Snapshot exposes internal state for the reference oracle and for
// debugging: a copy of the finished set and registered subnets.
func (s *Scheduler) Snapshot() (finished map[int]bool, frontier int, subnets map[int]*SubnetInfo) {
	f := make(map[int]bool, len(s.finished))
	for k, v := range s.finished {
		f[k] = v
	}
	subs := make(map[int]*SubnetInfo, len(s.subnets))
	for k, v := range s.subnets {
		subs[k] = v
	}
	return f, s.frontier, subs
}

// FinishedSeqs returns the sequence IDs at or above the frontier whose
// backward has completed out of order, ascending — the frontier-gap set
// a consistency cut records alongside the cursor. Seqs below the
// frontier are already folded into it and are not reported.
func (s *Scheduler) FinishedSeqs() []int {
	out := make([]int, 0, len(s.finished))
	for seq := range s.finished {
		out = append(out, seq)
	}
	sort.Ints(out)
	return out
}

// ActiveSeqs returns the registered, non-eliminated sequence IDs in
// ascending order (diagnostics).
func (s *Scheduler) ActiveSeqs() []int {
	out := make([]int, 0, len(s.subnets))
	for seq := range s.subnets {
		out = append(out, seq)
	}
	sort.Ints(out)
	return out
}
