package service

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"regexp"
	"strings"
	"testing"

	"naspipe/internal/obs"
)

// sampleSet indexes a scrape for assertion lookups.
type sampleSet []obs.Sample

func (ss sampleSet) find(name string, labels map[string]string) (obs.Sample, bool) {
	for _, s := range ss {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s, true
		}
	}
	return obs.Sample{}, false
}

func (ss sampleSet) value(t *testing.T, name string, labels map[string]string) float64 {
	t.Helper()
	s, ok := ss.find(name, labels)
	if !ok {
		t.Fatalf("scrape is missing %s%v", name, labels)
	}
	return s.Value
}

// TestMetricsEndToEnd is the acceptance check in test form: one daemon
// with the full observability plane, a crash-injected supervised job
// and a plain one from two tenants, then a single GET /metrics scrape
// that must cover the service, scheduler, supervision, and telemetry
// planes with per-tenant labels — and a log stream where every record
// about a job carries its API job ID.
func TestMetricsEndToEnd(t *testing.T) {
	reg := obs.New()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	sched, err := NewScheduler(SchedulerConfig{
		StateDir: t.TempDir(), Workers: 2,
		Metrics: reg, Logger: logger,
	})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	addr, shutdown, err := ServeHandler("127.0.0.1:0", NewServer(sched).WithObs(reg, logger))
	if err != nil {
		sched.Close()
		t.Fatalf("ServeHandler: %v", err)
	}
	defer func() { shutdown(); sched.Close() }()
	c := NewClient("http://" + addr)
	ctx := context.Background()

	crash := verifyJobSpec("tenant-a", 41)
	crash.Faults = "seed=7,crashat=2:5:F"
	crashSt, err := c.Submit(ctx, crash)
	if err != nil {
		t.Fatalf("submit crash job: %v", err)
	}
	plainSt, err := c.Submit(ctx, verifyJobSpec("tenant-b", 42))
	if err != nil {
		t.Fatalf("submit plain job: %v", err)
	}
	for _, id := range []string{crashSt.ID, plainSt.ID} {
		final, err := c.Wait(ctx, id, 0)
		if err != nil || final.State != StateDone {
			t.Fatalf("job %s: state %v err %v", id, final.State, err)
		}
	}

	samples, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	ss := sampleSet(samples)

	// Scheduler plane, with per-tenant labels.
	for _, tenant := range []string{"tenant-a", "tenant-b"} {
		if v := ss.value(t, "naspipe_sched_submitted_total", map[string]string{"tenant": tenant}); v != 1 {
			t.Errorf("submitted_total{tenant=%s} = %v, want 1", tenant, v)
		}
		if v := ss.value(t, "naspipe_sched_jobs_total", map[string]string{"tenant": tenant, "state": "done"}); v != 1 {
			t.Errorf("jobs_total{tenant=%s,state=done} = %v, want 1", tenant, v)
		}
	}
	if v := ss.value(t, "naspipe_sched_run_seconds_count", nil); v < 2 {
		t.Errorf("run_seconds_count = %v, want >= 2", v)
	}
	if v := ss.value(t, "naspipe_sched_queue_wait_seconds_count", nil); v < 2 {
		t.Errorf("queue_wait_seconds_count = %v, want >= 2", v)
	}
	ss.value(t, "naspipe_sched_queue_depth", nil)
	ss.value(t, "naspipe_sched_worker_slots", nil)
	if v := ss.value(t, "naspipe_sched_run_ewma_seconds", nil); v <= 0 {
		t.Errorf("run_ewma_seconds = %v, want > 0 after completed runs", v)
	}

	// Supervision plane: the injected crash must show up as a restart,
	// an incident, and state-machine edges.
	if v := ss.value(t, "naspipe_supervise_restarts_total", nil); v < 1 {
		t.Errorf("restarts_total = %v, want >= 1", v)
	}
	if v := ss.value(t, "naspipe_supervise_incidents_total", map[string]string{"kind": "crash"}); v < 1 {
		t.Errorf("incidents_total{kind=crash} = %v, want >= 1", v)
	}
	if v := ss.value(t, "naspipe_supervise_transitions_total", map[string]string{"to": "recovering"}); v < 1 {
		t.Errorf("transitions_total{to=recovering} = %v, want >= 1", v)
	}

	// Telemetry plane rollup: both finished buses folded in.
	if v := ss.value(t, "naspipe_telemetry_events_emitted_total", nil); v <= 0 {
		t.Errorf("events_emitted_total = %v, want > 0", v)
	}
	ss.value(t, "naspipe_telemetry_events_dropped_total", nil)

	// Service plane: the HTTP layer counted its own requests, including
	// per-route templates (submit and status both ran).
	if v := ss.value(t, "naspipe_service_requests_total",
		map[string]string{"route": "/v1/jobs", "method": "POST", "code": "201"}); v != 2 {
		t.Errorf("requests_total{/v1/jobs,POST,201} = %v, want 2", v)
	}
	if _, ok := ss.find("naspipe_service_requests_total",
		map[string]string{"route": "/v1/jobs/{id}", "method": "GET", "code": "200"}); !ok {
		t.Error("scrape is missing requests_total for the status route template")
	}
	if v := ss.value(t, "naspipe_service_request_seconds_count", nil); v <= 0 {
		t.Errorf("request_seconds_count = %v, want > 0", v)
	}

	// Log correlation: every scheduler/supervision record about a job
	// carries its job ID, and both jobs' full lifecycles are greppable by
	// ID alone.
	perJob := map[string][]string{}
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		msg, _ := rec["msg"].(string)
		switch msg {
		case "job submitted", "job running", "job finished", "job recovered",
			"resume queued", "cancel requested", "health transition", "incident":
			id, _ := rec["job"].(string)
			if id == "" {
				t.Errorf("log record %q lacks a job ID: %s", msg, line)
				continue
			}
			perJob[id] = append(perJob[id], msg)
		}
	}
	for _, id := range []string{crashSt.ID, plainSt.ID} {
		msgs := strings.Join(perJob[id], ",")
		for _, want := range []string{"job submitted", "job running", "job finished"} {
			if !strings.Contains(msgs, want) {
				t.Errorf("job %s lifecycle log is missing %q (got %s)", id, want, msgs)
			}
		}
	}
	if !strings.Contains(strings.Join(perJob[crashSt.ID], ","), "incident") {
		t.Errorf("crash job %s has no incident record (got %v)", crashSt.ID, perJob[crashSt.ID])
	}
}

// TestMetricNamingConvention lints every family a fully-wired daemon
// registers against the repo convention:
// naspipe_<plane>_<name>[_unit], plane ∈ {service, sched, supervise,
// telemetry}; counters end in _total; histograms measure durations and
// end in _seconds.
func TestMetricNamingConvention(t *testing.T) {
	reg := obs.New()
	sched, err := NewScheduler(SchedulerConfig{StateDir: t.TempDir(), Metrics: reg})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	defer sched.Close()
	NewServer(sched).WithObs(reg, nil)

	nameRe := regexp.MustCompile(`^naspipe_(service|sched|supervise|telemetry)_[a-z0-9]+(_[a-z0-9]+)*$`)
	fams := reg.Families()
	if len(fams) < 15 {
		t.Fatalf("only %d families registered; the daemon wires more than that", len(fams))
	}
	for _, f := range fams {
		if !nameRe.MatchString(f.Name) {
			t.Errorf("%s: not of the form naspipe_<plane>_<name>", f.Name)
		}
		if f.Help == "" {
			t.Errorf("%s: empty help string", f.Name)
		}
		switch f.Kind {
		case obs.KindCounter:
			if !strings.HasSuffix(f.Name, "_total") {
				t.Errorf("%s: counter without _total suffix", f.Name)
			}
		case obs.KindHistogram:
			if !strings.HasSuffix(f.Name, "_seconds") {
				t.Errorf("%s: duration histogram without _seconds suffix", f.Name)
			}
		case obs.KindGauge:
			if strings.HasSuffix(f.Name, "_total") {
				t.Errorf("%s: gauge with a counter's _total suffix", f.Name)
			}
		}
		for _, l := range f.Labels {
			if l == "le" || l == "quantile" {
				t.Errorf("%s: reserved label %q", f.Name, l)
			}
		}
	}
}

// TestListStatsExposure checks satellite (c): the /v1 list carries the
// scheduler's live Retry-After inputs and per-job statuses carry the
// tenant's quota arithmetic.
func TestListStatsExposure(t *testing.T) {
	sched, err := NewScheduler(SchedulerConfig{
		StateDir: t.TempDir(), Workers: 1, TenantQuota: 3, QueueLimit: 8,
	})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	addr, shutdown, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		sched.Close()
		t.Fatalf("Serve: %v", err)
	}
	defer func() { shutdown(); sched.Close() }()
	c := NewClient("http://" + addr)
	ctx := context.Background()

	// Two slow jobs on one worker: one runs, one queues.
	var ids []string
	for i := 0; i < 2; i++ {
		spec := verifyJobSpec("stats-tenant", uint64(600+i))
		spec.Subnets = 64
		spec.Jitter = 0.9
		spec.JitterSeed = uint64(600 + i)
		st, err := c.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
		if st.TenantActive != i+1 || st.TenantQuota != 3 {
			t.Errorf("submit %d: TenantActive/Quota = %d/%d, want %d/3", i, st.TenantActive, st.TenantQuota, i+1)
		}
	}
	jl, err := c.ListAll(ctx, "")
	if err != nil {
		t.Fatalf("ListAll: %v", err)
	}
	if jl.Stats == nil {
		t.Fatal("list response carries no stats")
	}
	st := jl.Stats
	if st.QueueLimit != 8 || st.Workers != 1 {
		t.Errorf("stats limits = queue %d workers %d, want 8/1", st.QueueLimit, st.Workers)
	}
	if got := st.ActiveJobs + st.QueueDepth; got != 2 {
		t.Errorf("active(%d)+queued(%d) = %d, want the 2 submitted jobs", st.ActiveJobs, st.QueueDepth, got)
	}
	found := false
	for _, ts := range st.Tenants {
		if ts.Tenant == "stats-tenant" {
			found = true
			if ts.Active != 2 || ts.Quota != 3 {
				t.Errorf("tenant stats = active %d quota %d, want 2/3", ts.Active, ts.Quota)
			}
		}
	}
	if !found {
		t.Errorf("stats.Tenants %v lacks stats-tenant", st.Tenants)
	}
	for _, id := range ids {
		if _, err := c.Cancel(ctx, id); err != nil {
			t.Fatalf("cancel %s: %v", id, err)
		}
		if _, err := sched.Wait(ctx, id); err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
	}
	// Drained: stats empty again, terminal statuses show zero occupancy.
	jl, err = c.ListAll(ctx, "")
	if err != nil {
		t.Fatalf("ListAll after drain: %v", err)
	}
	if jl.Stats.ActiveJobs != 0 || jl.Stats.QueueDepth != 0 {
		t.Errorf("post-drain stats still active: %+v", jl.Stats)
	}
	if got := jl.Jobs[0].TenantActive; got != 0 {
		t.Errorf("post-drain TenantActive = %d, want 0", got)
	}
}
