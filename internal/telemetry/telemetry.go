// Package telemetry is the observability plane shared by both executors:
// a low-overhead, race-clean event bus that the simulated engine, the
// concurrent CSP executor, and the prefetching layer caches publish to.
//
// Design constraints, in order:
//
//  1. Disabled means free. A nil *Bus is the disabled bus; every method
//     is nil-safe and returns immediately, and emitting to it allocates
//     nothing (events are plain value structs that never escape). The
//     engines' hot paths therefore carry telemetry calls unconditionally.
//  2. Emission never blocks the pipeline. The bus is a fixed-capacity
//     ring: when the stream is full, new events are dropped and counted
//     (Snapshot.Dropped) rather than stalling a stage goroutine on a
//     consumer. Live counters keep advancing even while the stream drops.
//  3. Race-clean by construction. Counters are atomics; the stream is
//     guarded by one mutex with O(1) critical sections. Events are
//     emitted concurrently by stage workers, prefetcher goroutines, and
//     the caches.
//
// The package is dependency-free (standard library only) so every layer
// of the system — engine, csp, prefetch, metrics, cmds — can publish to
// it without import cycles. Exporters turn a captured stream into a
// Perfetto-loadable Chrome trace (chrometrace.go) or a replayable JSONL
// log (jsonl.go); ServeDebug (debug.go) exposes pprof, expvar, and live
// snapshots over HTTP.
package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Op identifies what happened — the event taxonomy. The three families
// mirror the three subsystems the paper's claims hang on: task lifecycle
// (CSP spans), scheduler decisions (Algorithm 2), and the memory context
// (Algorithm 3 prefetching).
type Op uint8

const (
	// Task lifecycle (category "task").
	OpTaskAdmit    Op = iota // task became known/queued on a stage
	OpTaskStart              // first compute of the task span
	OpTaskPreempt            // span paused: a higher-priority task took the stage
	OpTaskResume             // span resumed after preemption
	OpTaskComplete           // span closed

	// Scheduler decisions (category "sched").
	OpSchedAdmit // Algorithm 2 admitted a forward (Arg = queue scan depth)
	OpSchedDelay // CSP delayed every queued forward (Arg = blocking writer seq, -1 unknown)

	// Memory context (category "mem").
	OpPrefetchRequest // async context fetch issued (Arg = bytes)
	OpPrefetchLand    // prefetch copy completion (Arg = bytes)
	OpPrefetchDrop    // prefetch abandoned: full queue or locked capacity
	OpCacheHit        // layer accesses served from residency (Arg = layer count)
	OpCacheMiss       // layer accesses that waited for a copy (Arg = layer count)
	OpCacheEvict      // residency freed (Arg = bytes)
	OpCacheStall      // compute stalled on PCIe (Arg = stall ns)

	// Cross-stage transfers (category "flow").
	OpTransferSend // activation/gradient handed to the next stage (Arg = flow id)
	OpTransferRecv // transfer consumed by the receiving task (Arg = flow id)

	// Fault plane (category "fault"): injected failures and the
	// checkpoint cuts that make them survivable. Every injected fault
	// appears on the stream, so naspipe-replay can reconstruct a failure
	// timeline from the JSONL log alone.
	OpFaultCrash // stage goroutine crashed at a task boundary (Arg = incarnation)
	OpFaultDrop  // message attempt dropped; retried with backoff (Arg = attempt)
	OpFaultDelay // message delivery delayed (Arg = delay ns)
	OpFaultDup   // message delivered twice (receiver dedups)
	OpFaultFetch // prefetch copy failed; surfaced as a cache miss
	OpFaultWedge // stage goroutine hung at a task boundary until cancelled (Arg = incarnation)
	OpCheckpoint // consistency cut recorded (Arg = global cursor)

	// Supervision plane (category "health"): the supervisor's state
	// machine transitions (Arg = HealthArg(from, to), Subnet =
	// incarnation), so a JSONL log reconstructs the full
	// running→degraded→recovering→done|failed history of a supervised run.
	OpHealth

	// Transport plane (category "link"): the distributed execution
	// plane's stage-to-stage links. Send/recv count sequenced data
	// frames (Arg = link seqno); drop/cut are injected link faults;
	// reconnect closes a cut with the attempt count that healed it;
	// retransmit is the go-back-N tail after a reconnect (Arg = frames
	// re-sent). Stage attributes the event to the link's peer stage.
	OpLinkSend
	OpLinkRecv
	OpLinkDrop
	OpLinkCut
	OpLinkReconnect
	OpLinkRetransmit

	opCount
)

var opNames = [opCount]string{
	"task-admit", "task-start", "task-preempt", "task-resume", "task-complete",
	"sched-admit", "sched-delay",
	"prefetch-request", "prefetch-land", "prefetch-drop",
	"cache-hit", "cache-miss", "cache-evict", "cache-stall",
	"transfer-send", "transfer-recv",
	"fault-crash", "fault-drop", "fault-delay", "fault-dup", "fault-fetch",
	"fault-wedge", "checkpoint",
	"health",
	"link-send", "link-recv", "link-drop", "link-cut", "link-reconnect",
	"link-retransmit",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpByName resolves the wire name used in JSONL logs back to an Op.
func OpByName(name string) (Op, bool) {
	for i, n := range opNames {
		if n == name {
			return Op(i), true
		}
	}
	return 0, false
}

// Category groups an op for exporters ("task", "sched", "mem", "flow",
// "fault", "health").
func (o Op) Category() string {
	switch {
	case o <= OpTaskComplete:
		return "task"
	case o <= OpSchedDelay:
		return "sched"
	case o <= OpCacheStall:
		return "mem"
	case o <= OpTransferRecv:
		return "flow"
	case o <= OpCheckpoint:
		return "fault"
	case o == OpHealth:
		return "health"
	default:
		return "link"
	}
}

// Phase is how an event renders on a timeline.
type Phase uint8

const (
	PhaseInstant   Phase = iota // a point in time
	PhaseBegin                  // opens a span on (Stage, Worker)
	PhaseEnd                    // closes the matching open span
	PhaseFlowBegin              // flow arrow tail (inside the sending span)
	PhaseFlowEnd                // flow arrow head (inside the receiving span)
)

var phaseNames = [...]string{"i", "B", "E", "s", "f"}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// PhaseByName resolves a phase wire name ("i", "B", "E", "s", "f").
func PhaseByName(name string) (Phase, bool) {
	for i, n := range phaseNames {
		if n == name {
			return Phase(i), true
		}
	}
	return 0, false
}

// Task kinds, mirroring internal/task without the import (the bus is
// dependency-free).
const (
	KindNone     int8 = -1 // not task-scoped (cache traffic, scheduler scans)
	KindForward  int8 = 0
	KindBackward int8 = 1
)

// KindString renders a kind the way the rest of the system does.
func KindString(k int8) string {
	switch k {
	case KindForward:
		return "F"
	case KindBackward:
		return "B"
	}
	return "-"
}

// Virtual worker (thread) ids within a stage, used as Chrome-trace tids.
// The simulated plane puts everything on WorkerStage; the concurrent
// plane attributes cache traffic to WorkerMem and modeled PCIe copy
// completions to WorkerPCIe.
const (
	WorkerStage int32 = 0 // the stage's compute worker
	WorkerMem   int32 = 1 // prefetcher goroutine / cache bookkeeping
	WorkerPCIe  int32 = 2 // modeled copy-completion timeline
)

// Event is one telemetry record. It is a fixed-size value struct — no
// maps, no pointers — so emission never allocates and the ring is a flat
// slab. Attribution fields that do not apply carry their zero/sentinel
// values (Subnet -1, Kind KindNone, Arg 0).
type Event struct {
	TsNs   int64 // nanoseconds since the bus epoch (or simulated ns)
	Op     Op
	Phase  Phase
	Stage  int32 // pipeline stage (Chrome pid)
	Worker int32 // virtual worker within the stage (Chrome tid)
	Subnet int32 // subnet sequence id, -1 when not task-scoped
	Kind   int8  // KindForward/KindBackward/KindNone
	Arg    int64 // op-specific payload (bytes, ns, seq, flow id)
}

// Bus is the shared event collector. Construct with NewBus; the nil *Bus
// is the disabled bus (see the package comment).
type Bus struct {
	epoch time.Time

	counters [opCount]atomic.Int64
	stallNs  atomic.Int64
	emitted  atomic.Uint64
	dropped  atomic.Uint64
	flushes  atomic.Uint64

	mu  sync.Mutex
	buf []Event // ring slab; len grows to cap, then the stream drops
}

// DefaultCapacity is the ring size NewBus uses for capacity <= 0:
// generous for a bench smoke (a few hundred tasks × a handful of events
// each) while bounding a long run's memory at ~4 MB.
const DefaultCapacity = 1 << 17

// NewBus returns an enabled bus whose stream holds up to capacity events
// (capacity <= 0 selects DefaultCapacity). The epoch — time zero for
// wall-clock stamps — is the moment of construction.
func NewBus(capacity int) *Bus {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Bus{epoch: time.Now(), buf: make([]Event, 0, capacity)}
}

// Enabled reports whether events go anywhere. Nil-safe.
func (b *Bus) Enabled() bool { return b != nil }

// Now returns nanoseconds since the bus epoch (0 on the disabled bus) —
// the timestamp base for EmitAt backdating.
func (b *Bus) Now() int64 {
	if b == nil {
		return 0
	}
	return int64(time.Since(b.epoch))
}

// Emit stamps the event with the current wall-clock offset and records
// it. Nil-safe and non-blocking; a full ring drops the event (counted)
// while the live counters still advance.
func (b *Bus) Emit(ev Event) {
	if b == nil {
		return
	}
	ev.TsNs = int64(time.Since(b.epoch))
	b.record(ev)
}

// EmitAt is Emit with an explicit timestamp — simulated time from the
// discrete-event engine, or backdated span boundaries (e.g. a stall that
// is only known once it has finished).
func (b *Bus) EmitAt(tsNs int64, ev Event) {
	if b == nil {
		return
	}
	ev.TsNs = tsNs
	b.record(ev)
}

// count advances the live counters for one event.
func (b *Bus) count(ev Event) {
	switch {
	case ev.Op == OpCacheHit || ev.Op == OpCacheMiss:
		// Emitters aggregate per acquire; Arg carries the layer count so
		// the live counters stay per-layer-exact.
		b.counters[ev.Op].Add(ev.Arg)
	case ev.Op < opCount:
		b.counters[ev.Op].Add(1)
	}
	if ev.Op == OpCacheStall && ev.Phase != PhaseBegin {
		// Count stall time once per stall (instant or span end).
		b.stallNs.Add(ev.Arg)
	}
	b.emitted.Add(1)
}

func (b *Bus) record(ev Event) {
	b.count(ev)
	b.mu.Lock()
	if len(b.buf) < cap(b.buf) {
		b.buf = append(b.buf, ev)
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	b.dropped.Add(1)
}

// EmitBatch records a slice of already-stamped events under a single ring
// lock — the bulk path Batcher flushes through. Events must carry their
// TsNs (stamp with Now at collection time); they are not re-stamped.
// Nil-safe and non-blocking: if the ring cannot hold the whole batch, the
// prefix that fits is kept and the rest is counted as dropped, exactly as
// per-event emission would have done.
func (b *Bus) EmitBatch(evs []Event) {
	if b == nil || len(evs) == 0 {
		return
	}
	b.flushes.Add(1)
	for i := range evs {
		b.count(evs[i])
	}
	b.mu.Lock()
	take := cap(b.buf) - len(b.buf)
	if take > len(evs) {
		take = len(evs)
	}
	b.buf = append(b.buf, evs[:take]...)
	b.mu.Unlock()
	if take < len(evs) {
		b.dropped.Add(uint64(len(evs) - take))
	}
}

// Events returns a copy of the captured stream in emission order.
// Nil-safe (returns nil).
func (b *Bus) Events() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.buf))
	copy(out, b.buf)
	return out
}

// Len returns the number of events currently captured. Nil-safe.
func (b *Bus) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

// Dropped returns how many events the full ring refused. Nil-safe.
func (b *Bus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped.Load()
}

// Count returns the live counter for one op (counted even for events the
// ring dropped). Nil-safe.
func (b *Bus) Count(op Op) int64 {
	if b == nil || op >= opCount {
		return 0
	}
	return b.counters[op].Load()
}

// Snapshot is a point-in-time copy of the live counters — cheap enough
// for a progress ticker, and the payload ServeDebug publishes via expvar.
type Snapshot struct {
	ElapsedNs    int64  `json:"elapsed_ns"`
	Emitted      uint64 `json:"emitted"`
	Dropped      uint64 `json:"dropped"`
	BatchFlushes uint64 `json:"batch_flushes"`

	Admitted  int64 `json:"admitted"`
	Started   int64 `json:"started"`
	Preempted int64 `json:"preempted"`
	Completed int64 `json:"completed"`

	SchedAdmits int64 `json:"sched_admits"`
	SchedDelays int64 `json:"sched_delays"`

	PrefetchRequests int64 `json:"prefetch_requests"`
	PrefetchDrops    int64 `json:"prefetch_drops"`
	CacheHits        int64 `json:"cache_hits"`
	CacheMisses      int64 `json:"cache_misses"`
	CacheEvicts      int64 `json:"cache_evicts"`
	StallNs          int64 `json:"stall_ns"`

	Crashes      int64 `json:"fault_crashes"`
	FaultDrops   int64 `json:"fault_drops"`
	FaultDelays  int64 `json:"fault_delays"`
	FaultDups    int64 `json:"fault_dups"`
	FaultFetches int64 `json:"fault_fetches"`
	FaultWedges  int64 `json:"fault_wedges"`
	Checkpoints  int64 `json:"checkpoints"`

	HealthTransitions int64 `json:"health_transitions"`

	LinkSends       int64 `json:"link_sends"`
	LinkRecvs       int64 `json:"link_recvs"`
	LinkDrops       int64 `json:"link_drops"`
	LinkCuts        int64 `json:"link_cuts"`
	LinkReconnects  int64 `json:"link_reconnects"`
	LinkRetransmits int64 `json:"link_retransmits"`
}

// Snapshot reads the live counters. Nil-safe (zero snapshot).
func (b *Bus) Snapshot() Snapshot {
	if b == nil {
		return Snapshot{}
	}
	return Snapshot{
		ElapsedNs:        b.Now(),
		Emitted:          b.emitted.Load(),
		Dropped:          b.dropped.Load(),
		BatchFlushes:     b.flushes.Load(),
		Admitted:         b.counters[OpTaskAdmit].Load(),
		Started:          b.counters[OpTaskStart].Load(),
		Preempted:        b.counters[OpTaskPreempt].Load(),
		Completed:        b.counters[OpTaskComplete].Load(),
		SchedAdmits:      b.counters[OpSchedAdmit].Load(),
		SchedDelays:      b.counters[OpSchedDelay].Load(),
		PrefetchRequests: b.counters[OpPrefetchRequest].Load(),
		PrefetchDrops:    b.counters[OpPrefetchDrop].Load(),
		CacheHits:        b.counters[OpCacheHit].Load(),
		CacheMisses:      b.counters[OpCacheMiss].Load(),
		CacheEvicts:      b.counters[OpCacheEvict].Load(),
		StallNs:          b.stallNs.Load(),
		Crashes:          b.counters[OpFaultCrash].Load(),
		FaultDrops:       b.counters[OpFaultDrop].Load(),
		FaultDelays:      b.counters[OpFaultDelay].Load(),
		FaultDups:        b.counters[OpFaultDup].Load(),
		FaultFetches:     b.counters[OpFaultFetch].Load(),
		FaultWedges:      b.counters[OpFaultWedge].Load(),
		Checkpoints:      b.counters[OpCheckpoint].Load(),

		HealthTransitions: b.counters[OpHealth].Load(),

		LinkSends:       b.counters[OpLinkSend].Load(),
		LinkRecvs:       b.counters[OpLinkRecv].Load(),
		LinkDrops:       b.counters[OpLinkDrop].Load(),
		LinkCuts:        b.counters[OpLinkCut].Load(),
		LinkReconnects:  b.counters[OpLinkReconnect].Load(),
		LinkRetransmits: b.counters[OpLinkRetransmit].Load(),
	}
}

// Add returns the field-wise sum of two snapshots — how the service
// scheduler aggregates per-job buses (live and finished) into one
// system-wide view for /metrics and /debug/telemetry. ElapsedNs takes
// the max: the summed counters describe overlapping runs, so elapsed
// time is "longest run observed", not a sum.
func (s Snapshot) Add(o Snapshot) Snapshot {
	if o.ElapsedNs > s.ElapsedNs {
		s.ElapsedNs = o.ElapsedNs
	}
	s.Emitted += o.Emitted
	s.Dropped += o.Dropped
	s.BatchFlushes += o.BatchFlushes
	s.Admitted += o.Admitted
	s.Started += o.Started
	s.Preempted += o.Preempted
	s.Completed += o.Completed
	s.SchedAdmits += o.SchedAdmits
	s.SchedDelays += o.SchedDelays
	s.PrefetchRequests += o.PrefetchRequests
	s.PrefetchDrops += o.PrefetchDrops
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheEvicts += o.CacheEvicts
	s.StallNs += o.StallNs
	s.Crashes += o.Crashes
	s.FaultDrops += o.FaultDrops
	s.FaultDelays += o.FaultDelays
	s.FaultDups += o.FaultDups
	s.FaultFetches += o.FaultFetches
	s.FaultWedges += o.FaultWedges
	s.Checkpoints += o.Checkpoints
	s.HealthTransitions += o.HealthTransitions
	s.LinkSends += o.LinkSends
	s.LinkRecvs += o.LinkRecvs
	s.LinkDrops += o.LinkDrops
	s.LinkCuts += o.LinkCuts
	s.LinkReconnects += o.LinkReconnects
	s.LinkRetransmits += o.LinkRetransmits
	return s
}

// HitRate returns cache hits/(hits+misses), or -1 with no accesses — the
// same N/A sentinel the result tables use.
func (s Snapshot) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return -1
	}
	return float64(s.CacheHits) / float64(total)
}

// String renders the one-line progress format the cmds print:
//
//	[2.1s] tasks 96/128 started/done, sched 32 delays, cache 91.2% hit (12 stall ms), events 4521 (0 dropped)
func (s Snapshot) String() string {
	out := fmt.Sprintf("[%.1fs] tasks %d/%d started/done, sched %d delays",
		float64(s.ElapsedNs)/1e9, s.Started, s.Completed, s.SchedDelays)
	if s.CacheHits+s.CacheMisses > 0 {
		out += fmt.Sprintf(", cache %.1f%% hit (%.1f stall ms)",
			100*s.HitRate(), float64(s.StallNs)/1e6)
	}
	if faults := s.Crashes + s.FaultDrops + s.FaultDelays + s.FaultDups + s.FaultFetches + s.FaultWedges; faults > 0 {
		out += fmt.Sprintf(", faults %d (%d crashes), ckpts %d", faults, s.Crashes, s.Checkpoints)
	}
	if s.HealthTransitions > 0 {
		out += fmt.Sprintf(", health %d transitions", s.HealthTransitions)
	}
	if s.LinkSends+s.LinkRecvs > 0 {
		out += fmt.Sprintf(", link %d/%d sent/recvd", s.LinkSends, s.LinkRecvs)
		if disturbed := s.LinkDrops + s.LinkCuts; disturbed > 0 {
			out += fmt.Sprintf(" (%d drops, %d cuts, %d reconnects)",
				s.LinkDrops, s.LinkCuts, s.LinkReconnects)
		}
	}
	out += fmt.Sprintf(", events %d (%d dropped)", s.Emitted, s.Dropped)
	return out
}

// FlowID packs a cross-stage transfer identity (kind, subnet, sending
// stage) into the Arg payload of OpTransferSend/Recv events, so the
// receiving side can name the same flow without shared state.
func FlowID(kind int8, subnet, fromStage int32) int64 {
	return int64(kind+1)<<40 | int64(subnet)<<16 | int64(fromStage)
}

// HealthArg packs a supervision state transition into an OpHealth event's
// Arg payload. State codes are the supervision plane's (see
// internal/supervise): 0 running, 1 degraded, 2 recovering, 3 done,
// 4 failed; the bus itself stays dependency-free.
func HealthArg(from, to int32) int64 {
	return int64(from)<<8 | int64(to)
}

// HealthFromTo unpacks a HealthArg payload.
func HealthFromTo(arg int64) (from, to int32) {
	return int32(arg>>8) & 0xff, int32(arg) & 0xff
}
