package naspipe_test

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"naspipe"
	"naspipe/internal/data"
	"naspipe/internal/scenario"
)

// maxResumes bounds the crash-resume loop for rate-based schedules:
// each incarnation rolls a fresh fault schedule over ever less
// remaining work, so convergence is expected long before this.
const maxResumes = 60

func crashCfg(gpus int) naspipe.Config {
	return naspipe.Config{
		Space:      naspipe.NLPc3.Scaled(8, 3),
		Spec:       naspipe.DefaultCluster(gpus),
		Seed:       7,
		NumSubnets: 18,
	}
}

func crashTrainCfg(cfg naspipe.Config) naspipe.TrainConfig {
	return naspipe.TrainConfig{Space: cfg.Space, Dim: 8, Seed: cfg.Seed,
		BatchSize: 2, LR: 0.05, Dataset: data.WNMT}
}

// crashSchedules is the fault matrix: deterministic targeted crashes at
// different pipeline sites and kinds, rate-based crashes layered over
// message faults, and a crash combined with total prefetch failure.
// Targeted stages are reduced modulo the GPU count so every schedule
// crashes on every tested depth.
var crashSchedules = []struct{ name, spec string }{
	{"early-fwd", "seed=101,crashat=1:2:F"},
	{"late-bwd", "seed=102,crashat=0:15:B"},
	{"mid-fwd+drop", "seed=103,crashat=3:9:F,drop=0.1"},
	{"stage0-bwd+delay", "seed=104,crashat=0:5:B,delay=0.15"},
	{"deep-fwd+dup", "seed=105,crashat=7:12:F,dup=0.1"},
	{"fwd+fetchfail", "seed=106,crashat=1:11:F,fetchfail=1.0"},
	{"rate+msgs", "seed=107,crash=0.02,drop=0.08,dup=0.08"},
	{"rate+delay", "seed=108,crash=0.018,delay=0.1"},
	{"rate-all", "seed=109,crash=0.022,drop=0.06,delay=0.06,dup=0.06"},
}

// seqReference memoizes the uninterrupted sequential checksum — it
// depends only on the stream and training config, not the GPU count.
var seqReference struct {
	once sync.Once
	want uint64
}

// TestCrashResumeMatrix is the acceptance gate: every fault schedule ×
// {2,4,8} GPUs crashes, resumes from the persisted checkpoint (looping
// while the fault plan keeps crashing the resumed incarnations), and
// must land on final weights bitwise identical to the uninterrupted
// sequential reference. The hand-rolled resume loop moved into the
// scenario plane (scenario.Run's operator loop, which also checks the
// incarnation bump on every reload); each cell here is now a thin
// wrapper over scenario.MatrixCell with the historical workload
// geometry, and the verdicts are unchanged: at least one real crash,
// full stream coverage, bitwise equality with the sequential reference.
func TestCrashResumeMatrix(t *testing.T) {
	for _, gpus := range []int{2, 4, 8} {
		for _, sc := range crashSchedules {
			gpus, sc := gpus, sc
			t.Run(fmt.Sprintf("gpus=%d/%s", gpus, sc.name), func(t *testing.T) {
				t.Parallel()
				s, err := scenario.MatrixCell(sc.name, sc.spec, gpus, false)
				if err != nil {
					t.Fatalf("matrix cell: %v", err)
				}
				cell, _, err := scenario.Run(context.Background(), s,
					scenario.Options{StateDir: t.TempDir(), MaxResumes: maxResumes})
				if err != nil {
					t.Fatalf("scenario run: %v", err)
				}
				if len(cell.Failures) > 0 {
					t.Fatalf("cell failed: %v", cell.Failures)
				}
				if !cell.Verified {
					t.Fatal("final weights not bitwise-verified against the sequential reference")
				}
				// Every schedule must actually exercise crash-then-resume.
				// Fault decisions are pure functions of (seed, incarnation,
				// site), so this is deterministic, not flaky: the seeds above
				// are chosen to crash at every tested depth.
				if cell.Restarts == 0 {
					t.Fatalf("schedule %q never crashed on %d GPUs", sc.spec, gpus)
				}
			})
		}
	}
}

// TestResumeRejectsMismatchedConfig pins the checkpoint identity guard:
// a checkpoint written for one run must refuse to resume a different
// space, seed, GPU count, or stream length.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	plan, err := naspipe.ParseFaultPlan("seed=1,crashat=1:4:F")
	if err != nil {
		t.Fatal(err)
	}
	r, err := naspipe.NewRunner(
		naspipe.WithExecutor(naspipe.ExecutorConcurrent),
		naspipe.WithFaults(plan),
		naspipe.WithCheckpoint(ckpt),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.Run(ctx, crashCfg(4)); err == nil {
		t.Fatal("targeted crash did not fire")
	}

	for name, mutate := range map[string]func(*naspipe.Config){
		"seed":    func(c *naspipe.Config) { c.Seed++ },
		"gpus":    func(c *naspipe.Config) { c.Spec = naspipe.DefaultCluster(8) },
		"subnets": func(c *naspipe.Config) { c.NumSubnets++ },
		"space":   func(c *naspipe.Config) { c.Space = naspipe.NLPc2.Scaled(8, 3) },
		"jitter":  func(c *naspipe.Config) { c.JitterSeed = 99 },
	} {
		cfg := crashCfg(4)
		mutate(&cfg)
		if _, err := r.Resume(ctx, cfg); err == nil {
			t.Errorf("resume accepted a checkpoint with mismatched %s", name)
		}
	}

	// The unmutated config must still resume cleanly.
	if _, err := r.Resume(ctx, crashCfg(4)); err != nil {
		t.Fatalf("matching config failed to resume: %v", err)
	}
}

// TestRunnerFaultOptionValidation pins the option surface: fault and
// checkpoint options are concurrent-plane-only, refinements require
// their base option, and invalid plans are rejected at construction.
func TestRunnerFaultOptionValidation(t *testing.T) {
	plan := &naspipe.FaultPlan{Seed: 1, DropRate: 0.1}
	cases := []struct {
		name string
		opts []naspipe.RunnerOption
	}{
		{"faults-on-simulated", []naspipe.RunnerOption{naspipe.WithFaults(plan)}},
		{"checkpoint-on-simulated", []naspipe.RunnerOption{naspipe.WithCheckpoint("x.ckpt")}},
		{"every-without-checkpoint", []naspipe.RunnerOption{
			naspipe.WithExecutor(naspipe.ExecutorConcurrent), naspipe.WithCheckpointEvery(4)}},
		{"training-without-checkpoint", []naspipe.RunnerOption{
			naspipe.WithExecutor(naspipe.ExecutorConcurrent), naspipe.WithCheckpointTraining(naspipe.TrainConfig{})}},
		{"invalid-plan", []naspipe.RunnerOption{
			naspipe.WithExecutor(naspipe.ExecutorConcurrent),
			naspipe.WithFaults(&naspipe.FaultPlan{DropRate: 1.5})}},
		{"negative-every", []naspipe.RunnerOption{
			naspipe.WithExecutor(naspipe.ExecutorConcurrent),
			naspipe.WithCheckpoint("x.ckpt"), naspipe.WithCheckpointEvery(-1)}},
	}
	for _, c := range cases {
		if _, err := naspipe.NewRunner(c.opts...); err == nil {
			t.Errorf("%s: NewRunner accepted an invalid option set", c.name)
		}
	}
	if _, err := naspipe.NewRunner(naspipe.WithExecutor(naspipe.ExecutorConcurrent)); err != nil {
		t.Errorf("baseline concurrent runner rejected: %v", err)
	}
	r, err := naspipe.NewRunner(naspipe.WithExecutor(naspipe.ExecutorConcurrent))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resume(context.Background(), crashCfg(2)); err == nil {
		t.Error("Resume without WithCheckpoint must fail")
	}
}
