// Command naspipe-compare is the artifact's Experiment 1: it trains the
// same supernet under NASPipe's CSP schedule on two different cluster
// sizes and compares every training step's output — and the final weights
// — in full floating-point precision. With CSP, everything matches
// bitwise; pass -policy gpipe or -policy pipedream to watch a baseline
// diverge.
//
// Usage:
//
//	naspipe-compare                         # NLP.c0 scaled, 1 vs 4 GPUs, 500 steps
//	naspipe-compare -steps 200 -gpus-b 8
//	naspipe-compare -policy gpipe           # demonstrate BSP divergence
package main

import (
	"flag"
	"fmt"
	"os"

	"naspipe"
)

func main() {
	var (
		space   = flag.String("space", "NLP.c0", "search space (Table 1 name, scaled for numeric training)")
		policy  = flag.String("policy", "naspipe", "scheduling policy to compare")
		steps   = flag.Int("steps", 500, "training steps (subnets)")
		gpusA   = flag.Int("gpus-a", 1, "first cluster size")
		gpusB   = flag.Int("gpus-b", 4, "second cluster size")
		seed    = flag.Uint64("seed", 42, "seed")
		blocks  = flag.Int("blocks", 12, "scaled choice blocks")
		choices = flag.Int("choices", 8, "scaled choices per block")
	)
	flag.Parse()

	base, err := naspipe.SpaceByName(*space)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(int(naspipe.ExitUsage))
	}
	sp := base.Scaled(*blocks, *choices)
	cfg := naspipe.TrainConfig{Space: sp, Dim: 12, Seed: *seed, BatchSize: 4, LR: 0.05}
	subs := naspipe.SampleSubnets(sp, *seed, *steps)

	runOn := func(d int) naspipe.TrainResult {
		res, err := naspipe.RunPolicy(naspipe.Config{
			Space: sp, Spec: naspipe.DefaultCluster(d), Seed: *seed,
			NumSubnets: *steps, RecordTrace: true,
		}, *policy)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(int(naspipe.ExitUsage))
		}
		if res.Failed {
			fmt.Fprintf(os.Stderr, "%s cannot run on %d GPUs: %s\n", *policy, d, res.FailReason)
			os.Exit(int(naspipe.ExitFailure))
		}
		num, err := naspipe.TrainReplay(cfg, subs, res.Trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(int(naspipe.ExitUsage))
		}
		return num
	}

	fmt.Printf("training %d steps of %s under %s on %d and %d GPUs...\n",
		*steps, sp.Name, *policy, *gpusA, *gpusB)
	a := runOn(*gpusA)
	b := runOn(*gpusB)

	matches, firstDiff := 0, -1
	for i := range a.Losses {
		if a.Losses[i] == b.Losses[i] {
			matches++
		} else if firstDiff < 0 {
			firstDiff = i
		}
	}
	fmt.Printf("step outputs matching (fp32, bitwise): %d/%d\n", matches, *steps)
	if firstDiff >= 0 {
		fmt.Printf("first divergence at step %d: %.9g vs %.9g\n",
			firstDiff, a.Losses[firstDiff], b.Losses[firstDiff])
	}
	fmt.Printf("final weight checksums: %016x vs %016x\n", a.Checksum, b.Checksum)
	if a.Checksum == b.Checksum && matches == *steps {
		fmt.Println("RESULT: bitwise reproducible across cluster sizes")
		return
	}
	fmt.Println("RESULT: NOT reproducible (expected for BSP/ASP policies)")
	os.Exit(int(naspipe.ExitFailure))
}
