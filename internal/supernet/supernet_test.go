package supernet

import (
	"bytes"
	"testing"
	"testing/quick"

	"naspipe/internal/layers"
)

func TestSpacesMatchTable1(t *testing.T) {
	want := []struct {
		name            string
		blocks, choices int
		dataset         string
	}{
		{"NLP.c0", 48, 96, "WNMT"},
		{"NLP.c1", 48, 72, "WNMT"},
		{"NLP.c2", 48, 48, "WNMT"},
		{"NLP.c3", 48, 24, "WNMT"},
		{"CV.c1", 32, 48, "ImageNet"},
		{"CV.c2", 32, 24, "ImageNet"},
		{"CV.c3", 32, 12, "ImageNet"},
	}
	spaces := Spaces()
	if len(spaces) != len(want) {
		t.Fatalf("got %d spaces want %d", len(spaces), len(want))
	}
	for i, w := range want {
		s := spaces[i]
		if s.Name != w.name || s.Blocks != w.blocks || s.Choices != w.choices || s.Dataset != w.dataset {
			t.Errorf("space %d: got %+v want %+v", i, s, w)
		}
	}
}

func TestSpaceByName(t *testing.T) {
	s, err := SpaceByName("NLP.c2")
	if err != nil || s.Choices != 48 {
		t.Fatalf("SpaceByName failed: %v %+v", err, s)
	}
	if _, err := SpaceByName("nope"); err == nil {
		t.Fatal("expected error for unknown space")
	}
}

func TestIDRoundTrip(t *testing.T) {
	s := NLPc3
	for b := 0; b < s.Blocks; b++ {
		for c := 0; c < s.Choices; c++ {
			id := s.ID(b, c)
			gb, gc := s.BlockChoice(id)
			if gb != b || gc != c {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", b, c, id, gb, gc)
			}
		}
	}
}

func TestIDPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NLPc3.ID(48, 0)
}

func TestBuildAssignsAllKinds(t *testing.T) {
	sn := Build(CVc3)
	seen := map[layers.Kind]bool{}
	for _, m := range sn.Meta {
		seen[m.Kind] = true
		if m.Kind.Domain() != layers.CV {
			t.Fatalf("CV space got NLP kind %v", m.Kind)
		}
	}
	for _, k := range layers.Kinds(layers.CV) {
		if !seen[k] {
			t.Errorf("kind %v never assigned", k)
		}
	}
}

func TestJitterBounded(t *testing.T) {
	sn := Build(NLPc3)
	for _, m := range sn.Meta {
		base := layers.Profile(m.Kind)
		ratio := m.FwdMs / base.FwdMs
		if ratio < 0.85-1e-9 || ratio > 1.15+1e-9 {
			t.Fatalf("layer %d jitter ratio %f out of [0.85,1.15]", m.ID, ratio)
		}
		// Same jitter applies to every cost field.
		if r2 := m.BwdMs / base.BwdMs; absDiff(ratio, r2) > 1e-9 {
			t.Fatalf("layer %d: inconsistent jitter fwd %f bwd %f", m.ID, ratio, r2)
		}
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestBuildDeterministic(t *testing.T) {
	a, b := Build(NLPc2), Build(NLPc2)
	for i := range a.Meta {
		if a.Meta[i] != b.Meta[i] {
			t.Fatalf("meta %d differs across builds", i)
		}
	}
}

func TestSupernetScaleMatchesPaper(t *testing.T) {
	// The paper reports NLP.c1's whole-supernet parameter count as 14.8B.
	// With Table 5 swap-derived parameter sizes our synthetic NLP.c1 lands
	// in the same regime; check it's within 2x of 14.8B params (i.e.
	// 59.2 GB in float32). This guards the cost-model calibration.
	sn := Build(NLPc1)
	params := sn.TotalParamBytes() / 4
	if params < 7_400_000_000 || params > 29_600_000_000 {
		t.Fatalf("NLP.c1 supernet param count %d not within 2x of paper's 14.8B", params)
	}
}

func TestSamplerDeterministicAndOrdered(t *testing.T) {
	a := Sample(NLPc3, 42, 20)
	b := Sample(NLPc3, 42, 20)
	for i := range a {
		if a[i].Seq != i {
			t.Fatalf("subnet %d has Seq %d", i, a[i].Seq)
		}
		for j := range a[i].Choices {
			if a[i].Choices[j] != b[i].Choices[j] {
				t.Fatalf("sampler not deterministic at subnet %d block %d", i, j)
			}
		}
	}
	c := Sample(NLPc3, 43, 20)
	same := true
	for i := range a {
		for j := range a[i].Choices {
			if a[i].Choices[j] != c[i].Choices[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSamplerSpaceSeparation(t *testing.T) {
	// Same seed, different spaces with equal geometry must still give
	// independent streams (label includes the space name).
	sa := Space{Name: "A", Domain: layers.NLP, Blocks: 10, Choices: 10}
	sb := Space{Name: "B", Domain: layers.NLP, Blocks: 10, Choices: 10}
	a, b := Sample(sa, 7, 5), Sample(sb, 7, 5)
	same := true
	for i := range a {
		for j := range a[i].Choices {
			if a[i].Choices[j] != b[i].Choices[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("space name does not separate sampler streams")
	}
}

func TestSharesAndSharedBlocks(t *testing.T) {
	a := Subnet{Seq: 0, Choices: []int{1, 2, 3}}
	b := Subnet{Seq: 1, Choices: []int{1, 5, 6}}
	c := Subnet{Seq: 2, Choices: []int{4, 5, 7}}
	if !Shares(a, b) {
		t.Fatal("a and b share block 0")
	}
	if Shares(a, c) {
		t.Fatal("a and c share nothing")
	}
	got := SharedBlocks(b, c)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("SharedBlocks(b,c) = %v want [1]", got)
	}
}

func TestDependencyRateFallsWithSpaceSize(t *testing.T) {
	// The paper's core insight: larger spaces manifest fewer dependencies
	// between chronologically close subnets.
	const n = 400
	rSmall := DependencyRate(NLPc3, 1, n) // 24 choices/block
	rLarge := DependencyRate(NLPc0, 1, n) // 96 choices/block
	if rLarge >= rSmall {
		t.Fatalf("dependency rate did not fall with space size: small=%f large=%f", rSmall, rLarge)
	}
	// NLP.c3: P(share) = 1-(1-1/24)^48 ≈ 0.87. Allow wide tolerance.
	if rSmall < 0.6 {
		t.Fatalf("NLP.c3 dependency rate %f implausibly low", rSmall)
	}
	// NLP.c0: 1-(1-1/96)^48 ≈ 0.40.
	if rLarge > 0.65 {
		t.Fatalf("NLP.c0 dependency rate %f implausibly high", rLarge)
	}
}

func TestSubnetAccounting(t *testing.T) {
	sn := Build(CVc3)
	sub := Sample(CVc3, 9, 1)[0]
	if len(sn.Layers(sub)) != CVc3.Blocks {
		t.Fatal("subnet layer count mismatch")
	}
	if sn.SubnetParamBytes(sub) <= 0 || sn.SubnetCostMs(sub) <= 0 {
		t.Fatal("subnet accounting non-positive")
	}
	// Subnet params must be far below the whole supernet's.
	if sn.SubnetParamBytes(sub)*int64(CVc3.Choices/2) < sn.TotalParamBytes()/4 {
		t.Log("sanity only") // loose; main check is positivity
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Subnet{Seq: 3, Choices: []int{1, 2}}
	c := a.Clone()
	c.Choices[0] = 9
	if a.Choices[0] != 1 {
		t.Fatal("Subnet Clone shares storage")
	}
}

func TestBuildNumericDeterministic(t *testing.T) {
	sp := NLPc3.Scaled(4, 3)
	a := BuildNumeric(sp, 4, 11)
	b := BuildNumeric(sp, 4, 11)
	if a.Checksum() != b.Checksum() {
		t.Fatal("numeric build not deterministic")
	}
	c := BuildNumeric(sp, 4, 12)
	if a.Checksum() == c.Checksum() {
		t.Fatal("different seeds gave identical numeric supernets")
	}
}

func TestNumericCloneIsolation(t *testing.T) {
	sp := CVc3.Scaled(3, 2)
	a := BuildNumeric(sp, 4, 1)
	c := a.Clone()
	g := a.At(0, 0).NewGrads()
	g.W.Set(0, 0, 1)
	a.At(0, 0).ApplySGD(g, 1)
	if a.Checksum() == c.Checksum() {
		t.Fatal("numeric clone shares storage")
	}
}

// Property: every sampled subnet is valid — one in-range choice per block,
// sequential Seq numbering.
func TestQuickSampledSubnetsValid(t *testing.T) {
	f := func(seed uint64, blocksRaw, choicesRaw uint8) bool {
		blocks := int(blocksRaw%20) + 1
		choices := int(choicesRaw%30) + 1
		sp := Space{Name: "q", Domain: layers.NLP, Blocks: blocks, Choices: choices}
		subs := Sample(sp, seed, 10)
		for i, sn := range subs {
			if sn.Seq != i || len(sn.Choices) != blocks {
				return false
			}
			for _, c := range sn.Choices {
				if c < 0 || c >= choices {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Shares is symmetric and reflexive (for nonempty subnets).
func TestQuickSharesSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		sp := Space{Name: "q2", Domain: layers.CV, Blocks: 8, Choices: 4}
		subs := Sample(sp, seed, 2)
		a, b := subs[0], subs[1]
		if Shares(a, b) != Shares(b, a) {
			return false
		}
		return Shares(a, a) && Shares(b, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SharedBlocks is exactly the set where choices agree.
func TestQuickSharedBlocksExact(t *testing.T) {
	f := func(seed uint64) bool {
		sp := Space{Name: "q3", Domain: layers.NLP, Blocks: 12, Choices: 3}
		subs := Sample(sp, seed, 2)
		a, b := subs[0], subs[1]
		shared := map[int]bool{}
		for _, blk := range SharedBlocks(a, b) {
			shared[blk] = true
		}
		for i := range a.Choices {
			want := a.Choices[i] == b.Choices[i]
			if shared[i] != want {
				return false
			}
		}
		return len(shared) > 0 == Shares(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSample(b *testing.B) {
	s := NewSampler(NLPc1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Next()
	}
}

func TestCheckpointRoundTripBitwise(t *testing.T) {
	sp := NLPc3.Scaled(4, 3)
	orig := BuildNumeric(sp, 6, 77)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadNumeric(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Checksum() != orig.Checksum() {
		t.Fatal("checkpoint round trip not bitwise identical")
	}
	if loaded.Space != orig.Space || loaded.Dim != orig.Dim {
		t.Fatalf("checkpoint lost identity: %+v", loaded.Space)
	}
	for i := range orig.Layer {
		if loaded.Layer[i].Kind != orig.Layer[i].Kind {
			t.Fatalf("layer %d kind lost", i)
		}
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, err := LoadNumeric(bytes.NewReader([]byte("not a checkpoint at all"))); err == nil {
		t.Fatal("expected magic error")
	}
	// Truncation: valid header, missing weights.
	sp := CVc3.Scaled(3, 2)
	orig := BuildNumeric(sp, 4, 1)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadNumeric(bytes.NewReader(truncated)); err == nil {
		t.Fatal("expected truncation error")
	}
}
