package partition

import (
	"math"
	"testing"
	"testing/quick"

	"naspipe/internal/rng"
	"naspipe/internal/supernet"
)

func TestBalancedKnown(t *testing.T) {
	// costs 1,1,1,1 into 2 stages -> split at 2, bottleneck 2.
	p := Balanced([]float64{1, 1, 1, 1}, 2)
	if err := p.Validate(4); err != nil {
		t.Fatal(err)
	}
	if got := MaxStageCost([]float64{1, 1, 1, 1}, p); got != 2 {
		t.Fatalf("bottleneck %f want 2", got)
	}
	// A heavy head: 10,1,1,1 into 2 -> stage0={10}, stage1={1,1,1}.
	p = Balanced([]float64{10, 1, 1, 1}, 2)
	if p.Bounds[1] != 1 {
		t.Fatalf("bounds %v, want cut after block 0", p.Bounds)
	}
}

func TestBalancedSingleStage(t *testing.T) {
	costs := []float64{3, 1, 4}
	p := Balanced(costs, 1)
	if err := p.Validate(3); err != nil {
		t.Fatal(err)
	}
	if got := MaxStageCost(costs, p); got != 8 {
		t.Fatalf("bottleneck %f want 8", got)
	}
}

func TestBalancedMoreStagesThanBlocks(t *testing.T) {
	costs := []float64{5, 7}
	p := Balanced(costs, 4)
	if err := p.Validate(2); err != nil {
		t.Fatal(err)
	}
	if got := MaxStageCost(costs, p); got != 7 {
		t.Fatalf("bottleneck %f want 7 (each block alone)", got)
	}
}

func TestBalancedEmptyCosts(t *testing.T) {
	p := Balanced(nil, 3)
	if err := p.Validate(0); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedPanicsOnBadD(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Balanced([]float64{1}, 0)
}

func TestStageOfAndBlocks(t *testing.T) {
	p := Partition{D: 3, Bounds: []int{0, 2, 2, 5}}
	if err := p.Validate(5); err != nil {
		t.Fatal(err)
	}
	wantStages := []int{0, 0, 2, 2, 2}
	for b, w := range wantStages {
		if got := p.StageOf(b); got != w {
			t.Fatalf("StageOf(%d) = %d want %d", b, got, w)
		}
	}
	lo, hi := p.Blocks(1)
	if lo != 2 || hi != 2 {
		t.Fatalf("empty stage bounds (%d,%d)", lo, hi)
	}
}

func TestValidateRejectsBadPartitions(t *testing.T) {
	bad := []Partition{
		{D: 2, Bounds: []int{0, 3}},       // wrong length
		{D: 2, Bounds: []int{1, 2, 5}},    // doesn't start at 0
		{D: 2, Bounds: []int{0, 2, 4}},    // doesn't end at m=5
		{D: 2, Bounds: []int{0, 4, 3}},    // non-monotone... ends at 3 != 5 also
		{D: 0, Bounds: []int{0}},          // no stages
		{D: 3, Bounds: []int{0, 4, 2, 5}}, // non-monotone
	}
	for i, p := range bad {
		if err := p.Validate(5); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, p)
		}
	}
}

func TestStaticBalancesAverages(t *testing.T) {
	sn := supernet.Build(supernet.NLPc3)
	p := Static(sn, 8)
	if err := p.Validate(supernet.NLPc3.Blocks); err != nil {
		t.Fatal(err)
	}
	avg := BlockAverageCosts(sn)
	if r := ImbalanceRatio(avg, p); r > 1.35 {
		t.Fatalf("static partition imbalance on averages %f too high", r)
	}
}

func TestBalancedBeatsStaticOnSubnets(t *testing.T) {
	// NASPipe's claim: per-subnet balanced partitions have lower bottleneck
	// than the static partition, on average (Table 2: 9.6% faster exec).
	sn := supernet.Build(supernet.NLPc1)
	static := Static(sn, 8)
	var balancedSum, staticSum float64
	subs := supernet.Sample(supernet.NLPc1, 5, 30)
	for _, sub := range subs {
		costs := SubnetCosts(sn, sub)
		bp := Balanced(costs, 8)
		balancedSum += MaxStageCost(costs, bp)
		staticSum += MaxStageCost(costs, static)
	}
	if balancedSum >= staticSum {
		t.Fatalf("balanced (%f) not better than static (%f) over 30 subnets", balancedSum, staticSum)
	}
}

func TestMirrors(t *testing.T) {
	balanced := Partition{D: 2, Bounds: []int{0, 3, 5}}
	home := Partition{D: 2, Bounds: []int{0, 2, 5}}
	got := Mirrors(balanced, home, 5)
	// Block 2: balanced stage 0, home stage 1 -> mirrored.
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("Mirrors = %v want [2]", got)
	}
	if m := Mirrors(home, home, 5); m != nil {
		t.Fatalf("identical partitions should have no mirrors, got %v", m)
	}
}

func TestImbalanceRatio(t *testing.T) {
	costs := []float64{1, 1, 1, 1}
	even := Partition{D: 2, Bounds: []int{0, 2, 4}}
	if r := ImbalanceRatio(costs, even); r != 1 {
		t.Fatalf("even split imbalance %f want 1", r)
	}
	skew := Partition{D: 2, Bounds: []int{0, 3, 4}}
	if r := ImbalanceRatio(costs, skew); r != 1.5 {
		t.Fatalf("skew imbalance %f want 1.5", r)
	}
	if r := ImbalanceRatio([]float64{0, 0, 0, 0}, even); r != 1 {
		t.Fatalf("zero-cost imbalance %f want 1", r)
	}
}

// bruteForceBottleneck finds the optimal min-max by exhaustive search over
// cut positions (small m only).
func bruteForceBottleneck(costs []float64, d int) float64 {
	m := len(costs)
	best := math.Inf(1)
	var recurse func(start, stagesLeft int, worst float64)
	recurse = func(start, stagesLeft int, worst float64) {
		if stagesLeft == 1 {
			var sum float64
			for _, c := range costs[start:] {
				sum += c
			}
			if sum > worst {
				worst = sum
			}
			if worst < best {
				best = worst
			}
			return
		}
		for end := start; end <= m; end++ {
			var sum float64
			for _, c := range costs[start:end] {
				sum += c
			}
			w := worst
			if sum > w {
				w = sum
			}
			recurse(end, stagesLeft-1, w)
		}
	}
	recurse(0, d, 0)
	return best
}

// Property: the DP achieves the brute-force optimal bottleneck.
func TestQuickBalancedOptimal(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := 1 + r.Intn(9)
		d := 1 + r.Intn(4)
		costs := make([]float64, m)
		for i := range costs {
			costs[i] = float64(1+r.Intn(20)) / 2
		}
		p := Balanced(costs, d)
		if p.Validate(m) != nil {
			return false
		}
		got := MaxStageCost(costs, p)
		want := bruteForceBottleneck(costs, d)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Balanced is deterministic and its bounds are valid for random
// inputs.
func TestQuickBalancedDeterministicValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := 1 + r.Intn(40)
		d := 1 + r.Intn(16)
		costs := make([]float64, m)
		for i := range costs {
			costs[i] = r.Float64()*10 + 0.01
		}
		p1 := Balanced(costs, d)
		p2 := Balanced(costs, d)
		if p1.Validate(m) != nil {
			return false
		}
		for i := range p1.Bounds {
			if p1.Bounds[i] != p2.Bounds[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every block belongs to exactly one stage (StageOf agrees with
// Bounds coverage).
func TestQuickCoverage(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := 1 + r.Intn(30)
		d := 1 + r.Intn(8)
		costs := make([]float64, m)
		for i := range costs {
			costs[i] = r.Float64() + 0.1
		}
		p := Balanced(costs, d)
		counts := make([]int, d)
		for b := 0; b < m; b++ {
			counts[p.StageOf(b)]++
		}
		total := 0
		for k := 0; k < d; k++ {
			lo, hi := p.Blocks(k)
			if counts[k] != hi-lo {
				return false
			}
			total += counts[k]
		}
		return total == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBalanced48x8(b *testing.B) {
	r := rng.New(1)
	costs := make([]float64, 48)
	for i := range costs {
		costs[i] = r.Float64()*20 + 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Balanced(costs, 8)
	}
}

// Property: BalancedFast achieves the DP's optimal bottleneck (within
// float tolerance) on random inputs, with valid bounds.
func TestQuickBalancedFastMatchesDP(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := 1 + r.Intn(40)
		d := 1 + r.Intn(16)
		costs := make([]float64, m)
		for i := range costs {
			costs[i] = r.Float64()*10 + 0.01
		}
		fast := BalancedFast(costs, d)
		if fast.Validate(m) != nil {
			return false
		}
		want := MaxStageCost(costs, Balanced(costs, d))
		got := MaxStageCost(costs, fast)
		return got <= want*(1+1e-6)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedFastEdgeCases(t *testing.T) {
	p := BalancedFast(nil, 3)
	if err := p.Validate(0); err != nil {
		t.Fatal(err)
	}
	p = BalancedFast([]float64{5}, 4)
	if err := p.Validate(1); err != nil {
		t.Fatal(err)
	}
	if got := MaxStageCost([]float64{5}, p); got != 5 {
		t.Fatalf("single block bottleneck %f", got)
	}
}

func BenchmarkBalancedFast48x8(b *testing.B) {
	r := rng.New(1)
	costs := make([]float64, 48)
	for i := range costs {
		costs[i] = r.Float64()*20 + 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BalancedFast(costs, 8)
	}
}
