package distrib_test

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"naspipe"
	"naspipe/internal/distrib"
	"naspipe/internal/engine"
	"naspipe/internal/supervise"
	"naspipe/internal/train"
)

// distSpec is the shared fleet job: small enough to run in CI, deep
// enough (D=4) that every relay path — forwards, gradients, broadcast
// notes — carries real traffic, with jitter so interleavings vary.
func distSpec(t *testing.T, subnets int) naspipe.JobSpec {
	t.Helper()
	return naspipe.JobSpec{
		Space: "NLP.c3", ScaleBlocks: 8, ScaleChoices: 3,
		Executor: "concurrent", GPUs: 4, Subnets: subnets, Seed: 7,
		Jitter: 0.3, JitterSeed: 11,
		Train:  &naspipe.TrainSpec{Dim: 8, BatchSize: 2, LR: 0.05},
		Verify: true,
	}
}

func coordFor(t *testing.T, spec naspipe.JobSpec, runID string) *distrib.Coordinator {
	t.Helper()
	co, err := distrib.NewCoordinator(distrib.CoordConfig{
		Spec: spec, RunID: runID,
		Launcher: &distrib.InProcLauncher{Log: t.Logf},
		Log:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return co
}

// TestFleetMatchesSequentialBitwise is the distributed plane's core
// guarantee: four stage workers over real TCP links, with timing
// jitter, produce a merged trace whose replay is bitwise identical to
// strict sequential training. The coordinator's Verify already
// replays; this test re-derives the checksum independently too.
func TestFleetMatchesSequentialBitwise(t *testing.T) {
	spec := distSpec(t, 12)
	co := coordFor(t, spec, "bitwise-test")
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, rep, err := co.Run(ctx)
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if rep.FinalState != supervise.Done {
		t.Fatalf("final state %v, want Done", rep.FinalState)
	}
	if res.Completed != spec.Subnets {
		t.Fatalf("completed %d/%d", res.Completed, spec.Subnets)
	}
	if res.BaseSeq != 0 || res.ObservedTrace == nil {
		t.Fatalf("result shape: base %d, trace %v", res.BaseSeq, res.ObservedTrace != nil)
	}

	// Independent re-derivation: the merged fleet trace replays to the
	// sequential reference's checksum on a fresh net.
	tc, _ := spec.TrainConfig()
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	subs := cfg.ResolveSubnets()
	want := train.Sequential(tc, subs).Checksum
	got, err := train.Replay(tc, subs, res.ObservedTrace)
	if err != nil {
		t.Fatalf("merged-trace replay: %v", err)
	}
	if got.Checksum != want {
		t.Fatalf("fleet checksum %016x, want sequential %016x", got.Checksum, want)
	}

	// And the fleet agrees with the single-process concurrent plane.
	sp, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Completed != res.Completed {
		t.Fatalf("single-process completed %d, fleet %d", sp.Completed, res.Completed)
	}
}

// TestFleetSurvivesWorkerKill is the kill -9 drill in miniature: a
// mid-run abrupt kill of one stage worker (no farewell frame — the
// connection just dies) must be detected, the fleet torn down and
// relaunched from the committed cursor, and the final result must
// still verify bitwise against the sequential reference.
func TestFleetSurvivesWorkerKill(t *testing.T) {
	spec := distSpec(t, 12)
	spec.Checkpoint = filepath.Join(t.TempDir(), "fleet.ckpt")
	spec.Supervise = &naspipe.SuperviseSpec{
		MaxRestarts: 4, Backoff: naspipe.Duration(time.Millisecond),
		BackoffMax: naspipe.Duration(5 * time.Millisecond),
		// Kills before the first commit must not read as a crash loop.
		CrashLoopWindow: 4,
	}

	killer := &killingLauncher{
		InProcLauncher: distrib.InProcLauncher{Log: t.Logf},
		victim:         2,
		after:          30 * time.Millisecond,
	}
	co, err := distrib.NewCoordinator(distrib.CoordConfig{
		Spec: spec, RunID: "kill-test", Launcher: killer, Log: t.Logf,
		DeadAfter: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, rep, err := co.Run(ctx)
	if err != nil {
		t.Fatalf("fleet run with kill: %v\nincidents:\n%s", err, rep.Timeline())
	}
	if rep.Restarts < 1 {
		t.Fatalf("expected at least one fleet restart, got %d", rep.Restarts)
	}
	if rep.FinalState != supervise.Done {
		t.Fatalf("final state %v, want Done", rep.FinalState)
	}
	total := res.BaseSeq + res.Completed
	if total != spec.Subnets {
		t.Fatalf("resumed run covers %d/%d subnets (base %d + completed %d)",
			total, spec.Subnets, res.BaseSeq, res.Completed)
	}
	// Verify already ran inside co.Run (spec.Verify). Pin the prefix
	// composition independently: sequential prefix + replayed suffix.
	tc, _ := spec.TrainConfig()
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := naspipe.VerifyAgainstSequential(tc, cfg, res); err != nil {
		t.Fatalf("post-kill verification: %v", err)
	}
}

// TestFleetResumeAcrossCoordinators models coordinator death: run a
// fleet that gets killed mid-run, stop the whole coordinator, then
// build a fresh one resuming from the checkpoint file.
func TestFleetResumeAcrossCoordinators(t *testing.T) {
	spec := distSpec(t, 10)
	spec.Checkpoint = filepath.Join(t.TempDir(), "fleet.ckpt")

	// Phase 1: interrupt the run by cancelling the coordinator once
	// the run is mid-stream.
	co1 := coordFor(t, spec, "resume-test")
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	_, _, err := co1.Run(ctx)
	cancel()
	if err == nil {
		t.Skip("run finished before the interrupt; nothing to resume")
	}

	// Phase 2: a fresh coordinator resumes from the file.
	co2, err := distrib.NewCoordinator(distrib.CoordConfig{
		Spec: spec, RunID: "resume-test-2",
		Launcher: &distrib.InProcLauncher{Log: t.Logf},
		Log:      t.Logf, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel2()
	res, rep, err := co2.Run(ctx2)
	if err != nil {
		t.Fatalf("resumed fleet: %v\nincidents:\n%s", err, rep.Timeline())
	}
	if res.BaseSeq+res.Completed != spec.Subnets {
		t.Fatalf("resumed run covers %d+%d of %d", res.BaseSeq, res.Completed, spec.Subnets)
	}
	tc, _ := spec.TrainConfig()
	cfg, _ := spec.Config()
	if _, err := naspipe.VerifyAgainstSequential(tc, cfg, res); err != nil {
		t.Fatalf("cross-coordinator verification: %v", err)
	}
}

// killingLauncher wraps the in-process launcher and kills the victim
// stage's first-incarnation worker after a delay — abruptly, like
// kill -9: the worker sends nothing, its connection simply dies.
type killingLauncher struct {
	distrib.InProcLauncher
	victim int
	after  time.Duration
}

func (l *killingLauncher) Start(ctx context.Context, w distrib.WorkerSpec) (distrib.Process, error) {
	p, err := l.InProcLauncher.Start(ctx, w)
	if err != nil {
		return nil, err
	}
	if w.Stage == l.victim && w.Incarnation == 0 {
		go func() {
			time.Sleep(l.after)
			p.Kill()
		}()
	}
	return p, nil
}
