// The dist subcommand turns naspiped into the coordinator of a
// multi-process fleet: it listens on a TCP star, launches one
// naspipe-stage process per pipeline stage, relays their engine
// traffic, collects stage-0 consistency cuts into the checkpoint, and
// relaunches the whole fleet from the committed cursor when any worker
// dies — including by kill -9.
//
//	naspiped dist -gpus 4 -subnets 24 -checkpoint fleet.ckpt -log-dir logs
//	kill -9 <a naspipe-stage pid>   # the fleet resumes on its own
//
// On completion with -verify (the default), the merged fleet trace is
// replayed against the sequential reference and the bitwise weight
// checksum printed — the same guarantee as the single-process plane.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"naspipe"
	"naspipe/internal/clicfg"
	"naspipe/internal/distrib"
	"naspipe/internal/telemetry"
)

func distMain(args []string) naspipe.ExitCode {
	fs := flag.NewFlagSet("naspiped dist", flag.ExitOnError)
	f := clicfg.Register(fs, clicfg.Defaults{Space: "NLP.c1", GPUs: 4, Subnets: 24})
	var (
		specPath   = fs.String("spec", "", "load the JobSpec from this JSON file instead of the run flags")
		runID      = fs.String("run", "", "run ID workers must present (default dist-<pid>)")
		listen     = fs.String("listen", "127.0.0.1:0", "TCP address the coordinator listens on for stage workers")
		workerBin  = fs.String("worker-bin", "", "path to the naspipe-stage binary (default: next to this executable)")
		logDir     = fs.String("log-dir", "", "capture each worker's output to stage-<k>.inc<i>.log in this directory")
		deadAfter  = fs.Duration("dead-after", 2*time.Second, "declare a worker dead after this long without heartbeats")
		verify     = fs.Bool("verify", true, "replay the merged fleet trace against the sequential reference")
		trainDim   = fs.Int("train-dim", 8, "numeric plane: model dimension for checkpoints and verification")
		trainBatch = fs.Int("train-batch", 2, "numeric plane: items per subnet step")
		trainLR    = fs.Float64("train-lr", 0.05, "numeric plane: SGD learning rate")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "naspiped dist: unexpected arguments %v\n", fs.Args())
		return naspipe.ExitUsage
	}
	if f.Resume && f.Checkpoint == "" && *specPath == "" {
		fmt.Fprintln(os.Stderr, "naspiped dist: -resume requires -checkpoint")
		return naspipe.ExitUsage
	}

	spec, code := distSpec(f, *specPath, *verify, *trainDim, *trainBatch, *trainLR)
	if code != naspipe.ExitOK {
		return code
	}
	bin, err := resolveWorkerBin(*workerBin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "naspiped dist:", err)
		return naspipe.ExitUsage
	}
	if *logDir != "" {
		if err := os.MkdirAll(*logDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "naspiped dist:", err)
			return naspipe.ExitUsage
		}
	}
	id := *runID
	if id == "" {
		id = fmt.Sprintf("dist-%d", os.Getpid())
	}

	// The coordinator's telemetry bus sees its side of every link (the
	// star topology relays all engine traffic through it), so the JSONL
	// log carries the full transport story: sends, drops, cuts,
	// reconnects and go-back-N retransmits, per peer stage.
	var bus *naspipe.TelemetryBus
	if f.TraceOut != "" || f.EventsOut != "" || f.Progress > 0 {
		bus = naspipe.NewTelemetryBus(0)
	}
	stopProgress := telemetry.StartProgress(os.Stderr, bus, f.Progress)
	defer stopProgress()

	co, err := distrib.NewCoordinator(distrib.CoordConfig{
		Spec: spec, RunID: id, Addr: *listen,
		Launcher:  &distrib.ExecLauncher{Bin: bin, LogDir: *logDir},
		DeadAfter: *deadAfter,
		Resume:    f.Resume,
		Tel:       bus,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "naspiped dist:", err)
		return naspipe.ExitUsage
	}

	// SIGINT/SIGTERM abort the fleet and exit resumable: the committed
	// cursor is already checkpointed, so a rerun with -resume picks up
	// exactly where the cuts left off.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, rep, err := co.Run(ctx)
	if err != nil {
		var giveUp *naspipe.GiveUpError
		var crash *naspipe.CrashError
		switch {
		case ctx.Err() != nil && !errors.As(err, &giveUp):
			fmt.Fprintf(os.Stderr, "naspiped dist: interrupted: %v\n", err)
			if spec.Checkpoint != "" {
				fmt.Fprintf(os.Stderr, "naspiped dist: rerun with -resume to continue from %s\n", spec.Checkpoint)
				return naspipe.ExitResumable
			}
			return naspipe.ExitFailure
		case errors.As(err, &crash):
			fmt.Fprintf(os.Stderr, "naspiped dist: %v\n", err)
			if spec.Checkpoint != "" {
				fmt.Fprintf(os.Stderr, "naspiped dist: rerun with -resume to continue from %s\n", spec.Checkpoint)
				return naspipe.ExitResumable
			}
			return naspipe.ExitFailure
		default:
			fmt.Fprintln(os.Stderr, "naspiped dist:", err)
			return naspipe.ExitFailure
		}
	}
	fmt.Printf("distributed fleet: %s on %d stage processes, %d subnets completed",
		spec.Space, spec.GPUs, res.Completed)
	if res.BaseSeq > 0 {
		fmt.Printf(" (resumed at cursor %d)", res.BaseSeq)
	}
	fmt.Println()
	fmt.Printf("fleet supervision: %s, %d restarts, final D=%d\n",
		rep.FinalState, rep.Restarts, rep.FinalGPUs)
	if bus != nil {
		fmt.Printf("telemetry:         %s\n", bus.Snapshot().String())
		lines, err := telemetry.ExportFiles(bus, f.TraceOut, f.EventsOut)
		for _, l := range lines {
			fmt.Println(l)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "naspiped dist:", err)
			return naspipe.ExitFailure
		}
	}
	return naspipe.ExitOK
}

// distSpec assembles the fleet's JobSpec from a file or the shared run
// flags, normalized onto the concurrent executor with the numeric
// plane attached (checkpoint checksums and verification need it).
func distSpec(f *clicfg.Flags, path string, verify bool, dim, batch int, lr float64) (naspipe.JobSpec, naspipe.ExitCode) {
	var spec naspipe.JobSpec
	if path != "" {
		b, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "naspiped dist:", err)
			return spec, naspipe.ExitUsage
		}
		if err := json.Unmarshal(b, &spec); err != nil {
			fmt.Fprintf(os.Stderr, "naspiped dist: %s: %v\n", path, err)
			return spec, naspipe.ExitUsage
		}
		if spec.Executor == "" {
			spec.Executor = naspipe.ExecutorConcurrent.String()
		}
	} else {
		spec = f.Spec(naspipe.ExecutorConcurrent.String())
		spec.Verify = verify
	}
	if spec.Train == nil {
		spec.Train = &naspipe.TrainSpec{Dim: dim, BatchSize: batch, LR: lr}
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "naspiped dist:", err)
		return spec, naspipe.ExitUsage
	}
	return spec, naspipe.ExitOK
}

// resolveWorkerBin finds the naspipe-stage binary: an explicit path,
// next to this executable, or on PATH.
func resolveWorkerBin(explicit string) (string, error) {
	if explicit != "" {
		if _, err := os.Stat(explicit); err != nil {
			return "", fmt.Errorf("worker binary: %w", err)
		}
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "naspipe-stage")
		if _, err := os.Stat(cand); err == nil {
			return cand, nil
		}
	}
	if p, err := exec.LookPath("naspipe-stage"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("cannot find naspipe-stage (build it next to naspiped or pass -worker-bin)")
}
