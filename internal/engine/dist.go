// The distributed execution plane's engine half: stage processes.
//
// A DistConfig tells RunConcurrent to execute only a subset of the
// pipeline's stages and to route every cross-stage message — activation
// handoffs, gradient returns, completion-note broadcasts, cross-stage
// prefetch pushes — through a transport.Transport instead of direct
// channel sends. The stage goroutines themselves are unchanged: the
// same scheduler, the same admission rule, the same trace emission.
// What varies is purely the wiring, so a ChanTransport-backed run is
// the single-process executor with one level of indirection, and a
// Link-backed run is the same executor spread across OS processes.
//
// Each local stage gets a pump goroutine that drains its transport
// delivery queue into the stage's arrival channels. The pump is the
// only producer of a dist stage's notes channel (a stage's own
// completions self-apply without a message), so its blocking sends are
// deadlock-free; fwd/bwd arrival buffers are sized for every possible
// delivery exactly as in the single-process plane.
//
// Verification composes: a worker's observed trace covers only its
// local stages, so RunConcurrent checks the local observation against
// the canonical trace filtered to local stages. That projection is
// necessary but not sufficient — stage partitions are per-subnet, so a
// layer's accesses can straddle workers — which is why the coordinator
// (internal/distrib) k-way-merges the workers' traces back into a
// single causally-ordered global observation (MergeStageTraces) and
// re-verifies the whole run against the sequential reference.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"naspipe/internal/supernet"
	"naspipe/internal/trace"
	"naspipe/internal/transport"
)

// DistConfig places this process in a distributed run.
type DistConfig struct {
	// Transport carries all cross-stage traffic. The engine closes
	// nothing: the caller owns the transport's lifecycle.
	Transport transport.Transport

	// Stages lists the pipeline stages this process executes (distinct,
	// each in [0, D)). Every other stage is assumed to run elsewhere,
	// reachable through Transport.
	Stages []int
}

func (d *DistConfig) validate(depth int) error {
	if d.Transport == nil {
		return fmt.Errorf("engine: DistConfig.Transport is nil")
	}
	if len(d.Stages) == 0 {
		return fmt.Errorf("engine: DistConfig.Stages is empty")
	}
	seen := make(map[int]bool, len(d.Stages))
	for _, k := range d.Stages {
		if k < 0 || k >= depth {
			return fmt.Errorf("engine: DistConfig stage %d outside the %d-stage pipeline", k, depth)
		}
		if seen[k] {
			return fmt.Errorf("engine: DistConfig stage %d listed twice", k)
		}
		seen[k] = true
	}
	return nil
}

// localSet returns a by-stage membership mask.
func (d *DistConfig) localSet(depth int) []bool {
	local := make([]bool, depth)
	for _, k := range d.Stages {
		local[k] = true
	}
	return local
}

// send pushes one message into the distributed fabric. A transport
// refusing traffic (closed during teardown, a dead peer past its
// reconnect budget) poisons the run like a checkpoint-recorder failure:
// every stage goroutine unwinds and the first error is reported.
func (c *ccRun) send(m transport.Msg) {
	if err := c.dist.Transport.Send(m); err != nil {
		c.sendOnce.Do(func() { c.sendErr = fmt.Errorf("engine: transport send (stage %d -> %d): %w", m.From, m.To, err) })
		c.crashed.Store(true)
	}
}

// sendFwd hands an activation to stage k+1; sendBwd returns a gradient
// (with its carried pending-backward records) to stage k-1. Both are
// the dist counterparts of the direct fwdIn/bwdIn channel sends and run
// inside the same fault-plane wrapper (ccRun.transport).
func (c *ccRun) sendFwd(s *ccStage, seq int) {
	c.send(transport.Msg{Type: transport.FrameFwd, From: s.k, To: s.k + 1, Seq: seq})
}

func (c *ccRun) sendBwd(s *ccStage, b ccBwd) {
	c.send(transport.Msg{Type: transport.FrameBwd, From: s.k, To: s.k - 1, Seq: b.seq, Carried: b.carried})
}

// broadcastNote fans a completion note out to every other stage —
// co-local ones included, so the message plane stays uniform: exactly
// one path exists for cross-stage traffic in a dist run.
func (c *ccRun) broadcastNote(s *ccStage, n ccNote) {
	c.send(transport.Msg{
		Type: transport.FrameNote, From: s.k, To: transport.Broadcast,
		Seq: n.seq, IDs: n.ids, Finished: n.finished,
	})
}

// pushFetch forwards a cross-stage context-push (§3.3) to stage k. In
// a dist run the push becomes a Fetch message when the memory plane is
// on; without a cache the receiver would discard it, so it is never
// sent — frame counts stay free of dead traffic.
func (c *ccRun) pushFetch(s *ccStage, k, seq int) {
	if c.dist == nil {
		c.stages[k].requestFetch(seq)
		return
	}
	if c.cfg.ConcurrentMem.Enabled() {
		c.send(transport.Msg{Type: transport.FrameFetch, From: s.k, To: k, Seq: seq})
	}
}

// pumpLoop drains one local stage's transport deliveries into its
// arrival channels, translating wire messages back into the exact
// events a direct channel send would have produced. It runs until
// stopped: the run keeps pumps alive past stage completion so late
// traffic (another worker's tail notes) never backs up the fabric.
func (c *ccRun) pumpLoop(stop <-chan struct{}, s *ccStage) {
	in := c.dist.Transport.Recv(s.k)
	for {
		select {
		case <-stop:
			return
		case m := <-in:
			switch m.Type {
			case transport.FrameFwd:
				s.fwdIn <- m.Seq
			case transport.FrameBwd:
				s.bwdIn <- ccBwd{seq: m.Seq, carried: m.Carried}
			case transport.FrameNote:
				select {
				case s.notes <- ccNote{seq: m.Seq, ids: m.IDs, finished: m.Finished}:
				case <-stop:
					return
				}
			case transport.FrameFetch:
				s.requestFetch(m.Seq)
			}
		}
	}
}

// startPumps spawns one pump per local stage and returns their stop
// function (idempotent).
func (c *ccRun) startPumps() func() {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, s := range c.stages {
		if s == nil {
			continue
		}
		wg.Add(1)
		go func(s *ccStage) {
			defer wg.Done()
			c.pumpLoop(stop, s)
		}(s)
	}
	var once sync.Once
	return func() {
		once.Do(func() { close(stop) })
		wg.Wait()
	}
}

// DistQueueCap sizes a transport's per-stage delivery queue so sends
// never block steady-state: per stage, at most n forwards + n backwards
// (×2 under fault-plane duplication), (D-1)·n notes, and ~2n fetch
// pushes can ever arrive.
func DistQueueCap(d, n int) int { return 2*(d+4)*n + 16 }

// FilterTrace returns the sub-trace of tr on the given stages, in
// order — the canonical reference a dist worker checks its local
// observation against, and the shape the coordinator's merge consumes.
func FilterTrace(tr *trace.Trace, stages []int) *trace.Trace {
	keep := make(map[int]bool, len(stages))
	for _, k := range stages {
		keep[k] = true
	}
	out := &trace.Trace{}
	for _, ev := range tr.Events {
		if keep[ev.Stage] {
			out.Events = append(out.Events, ev)
		}
	}
	return out
}

// MergeStageTraces reconstructs a valid global emission order from the
// workers' local observed traces: a topological k-way merge over the
// run's causal DAG. The DAG's edges are each worker's local emission
// order, the per-subnet pipeline chain (READs walk the stages
// downstream, then WRITEs walk back upstream), and the per-layer CSP
// order (Definition 1: a layer's accesses happen in subnet order,
// reads before writes within a subnet). The real execution's
// wall-clock order is a linear extension of exactly that DAG — the
// chain is the pipeline's dataflow and the per-layer order is what
// each stage's csp.Scheduler enforces at admission via cross-stage
// MarkWritten notes — so the merge always completes and always
// satisfies the replay trainer's global-order constraint. Rank in the
// canonical causal order breaks ties deterministically (ranks are
// unique per access, so the result is independent of the order parts
// are passed in).
//
// Rank alone would not be safe: under out-of-order forwarding a stage
// legally runs F(p) before F(q) with p > q while stage D-1 retires
// B(q); picking strictly by rank would then emit subnet q's first WRITE
// while its stage-k READ is still queued behind F(p) — an order the
// replay trainer correctly rejects. Nor is the subnet chain alone
// enough: stage partitions are per-subnet, so the same layer can live
// on stage 0 for subnet p and stage 1 for subnet q — two different
// workers whose local orders say nothing about each other. Only the
// per-layer gate restores that cross-worker edge.
func MergeStageTraces(depth, base int, parts []*trace.Trace) *trace.Trace {
	rank := func(ev trace.Event) int {
		seq := ev.Subnet - base
		if ev.Kind == trace.Read {
			return seq*2*depth + ev.Stage
		}
		return seq*2*depth + depth + (depth - 1 - ev.Stage)
	}
	// Per-subnet causal chains over the (kind, stage) groups that
	// actually occur — a subnet with an empty partition on some stage
	// simply has no group there. The chain orders each subnet's READs
	// downstream then its WRITEs upstream; an access is eligible when
	// its group is the subnet's current chain position, which encodes
	// both pipeline causality and reads-before-first-write.
	type group struct {
		kind  trace.AccessKind
		stage int
	}
	counts := make(map[int]map[group]int)
	for _, tr := range parts {
		for _, ev := range tr.Events {
			q := ev.Subnet - base
			if counts[q] == nil {
				counts[q] = make(map[group]int)
			}
			counts[q][group{ev.Kind, ev.Stage}]++
		}
	}
	chains := make(map[int][]group, len(counts))
	for q, gs := range counts {
		var chain []group
		for k := 0; k < depth; k++ {
			if gs[group{trace.Read, k}] > 0 {
				chain = append(chain, group{trace.Read, k})
			}
		}
		for k := depth - 1; k >= 0; k-- {
			if gs[group{trace.Write, k}] > 0 {
				chain = append(chain, group{trace.Write, k})
			}
		}
		chains[q] = chain
	}
	// Per-layer CSP chains over the (subnet, kind) groups that occur on
	// each layer, in the sequential order Definition 1 fixes: subnets
	// ascending, READs before WRITEs within a subnet. For one subnet a
	// layer lives on one stage, so each group comes from one worker and
	// group-internal order is that worker's local order.
	type lgroup struct {
		seq  int
		kind trace.AccessKind
	}
	lcounts := make(map[supernet.LayerID]map[lgroup]int)
	for _, tr := range parts {
		for _, ev := range tr.Events {
			if lcounts[ev.Layer] == nil {
				lcounts[ev.Layer] = make(map[lgroup]int)
			}
			lcounts[ev.Layer][lgroup{ev.Subnet - base, ev.Kind}]++
		}
	}
	lchains := make(map[supernet.LayerID][]lgroup, len(lcounts))
	for l, gs := range lcounts {
		seqs := make([]int, 0, len(gs))
		seen := make(map[int]bool, len(gs))
		for g := range gs {
			if !seen[g.seq] {
				seen[g.seq] = true
				seqs = append(seqs, g.seq)
			}
		}
		sort.Ints(seqs)
		chain := make([]lgroup, 0, len(gs))
		for _, q := range seqs {
			if gs[lgroup{q, trace.Read}] > 0 {
				chain = append(chain, lgroup{q, trace.Read})
			}
			if gs[lgroup{q, trace.Write}] > 0 {
				chain = append(chain, lgroup{q, trace.Write})
			}
		}
		lchains[l] = chain
	}
	lpos := make(map[supernet.LayerID]int, len(lchains))
	lemitted := make(map[supernet.LayerID]map[lgroup]int, len(lchains))
	pos := make(map[int]int, len(chains))
	emitted := make(map[int]map[group]int, len(chains))
	idx := make([]int, len(parts))
	out := &trace.Trace{}
	for {
		best, bestRank := -1, 0
		for i, tr := range parts {
			if idx[i] >= len(tr.Events) {
				continue
			}
			ev := tr.Events[idx[i]]
			q := ev.Subnet - base
			if chains[q][pos[q]] != (group{ev.Kind, ev.Stage}) {
				continue
			}
			if lchains[ev.Layer][lpos[ev.Layer]] != (lgroup{q, ev.Kind}) {
				continue
			}
			if r := rank(ev); best < 0 || r < bestRank {
				best, bestRank = i, r
			}
		}
		if best < 0 {
			return out
		}
		ev := parts[best].Events[idx[best]]
		idx[best]++
		ev.Order = len(out.Events)
		out.Events = append(out.Events, ev)
		q := ev.Subnet - base
		g := group{ev.Kind, ev.Stage}
		if emitted[q] == nil {
			emitted[q] = make(map[group]int)
		}
		emitted[q][g]++
		if emitted[q][g] == counts[q][g] {
			pos[q]++
		}
		lg := lgroup{q, ev.Kind}
		if lemitted[ev.Layer] == nil {
			lemitted[ev.Layer] = make(map[lgroup]int)
		}
		lemitted[ev.Layer][lg]++
		if lemitted[ev.Layer][lg] == lcounts[ev.Layer][lg] {
			lpos[ev.Layer]++
		}
	}
}
