package fault

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode throws arbitrary bytes at the checkpoint parser:
// it must reject garbage with an error (never panic or over-read), and
// anything it accepts must re-encode to the exact input bytes — the
// format has a single canonical encoding.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte("NPCK"))
	f.Add(sampleCheckpoint().Encode())
	f.Add(Checkpoint{Space: "x", Finished: []int{1, 2, 3}}.Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			return
		}
		if got := c.Encode(); !bytes.Equal(got, data) {
			t.Fatalf("accepted checkpoint does not round-trip:\n in  %x\n out %x", data, got)
		}
	})
}
