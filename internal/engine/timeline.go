package engine

import (
	"fmt"
	"strings"

	"naspipe/internal/task"
)

// RenderTimeline draws an ASCII Gantt chart of a run's task spans, one
// row per stage, like the paper's Figure 1 pipeline diagrams. Forward
// tasks print their subnet's digit ('0'–'9', modulo 10), backward tasks
// the corresponding letter ('a'–'j'), and idle time '.'; preemption shows
// as overlapping spans resolved in favour of the later (backward) task.
// width is the number of character columns for the time axis.
func RenderTimeline(spans []TaskSpan, stages, width int, totalMs float64) string {
	if width <= 0 {
		width = 72
	}
	if totalMs <= 0 {
		for _, s := range spans {
			if s.EndMs > totalMs {
				totalMs = s.EndMs
			}
		}
	}
	if totalMs <= 0 {
		return "(empty timeline)\n"
	}
	rows := make([][]byte, stages)
	for k := range rows {
		rows[k] = []byte(strings.Repeat(".", width))
	}
	col := func(t float64) int {
		c := int(t / totalMs * float64(width))
		if c < 0 {
			c = 0
		}
		if c > width {
			c = width
		}
		return c
	}
	glyph := func(t task.Task) byte {
		if t.Kind == task.Forward {
			return byte('0' + t.Subnet%10)
		}
		return byte('a' + t.Subnet%10)
	}
	// Paint forwards first so backwards (which preempt) overwrite them.
	for pass := 0; pass < 2; pass++ {
		for _, s := range spans {
			if (pass == 0) != (s.Task.Kind == task.Forward) {
				continue
			}
			if s.Task.Stage < 0 || s.Task.Stage >= stages {
				continue
			}
			g := glyph(s.Task)
			// Exclusive end column: a span owns [lo, hi) so back-to-back
			// tasks never overwrite each other's last cell, with a one-cell
			// minimum so short tasks stay visible.
			lo, hi := col(s.StartMs), col(s.EndMs)
			if lo >= width {
				lo = width - 1
			}
			if hi <= lo {
				hi = lo + 1
			}
			for c := lo; c < hi; c++ {
				rows[s.Task.Stage][c] = g
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time -> 0 .. %.0f ms  (digits: forward of subnet N, letters: backward, '.': idle)\n", totalMs)
	for k := stages - 1; k >= 0; k-- {
		fmt.Fprintf(&b, "stage %d |%s|\n", k, rows[k])
	}
	return b.String()
}
