// Command naspipe-train runs one pipeline supernet-training simulation
// and reports its metrics: throughput, bubble ratio, GPU utilization,
// cache hit rate, and memory footprints.
//
// Usage:
//
//	naspipe-train -space NLP.c1 -policy naspipe -gpus 8 -subnets 240
//	naspipe-train -space NLP.c1 -policy gpipe   # compare a baseline
//	naspipe-train -trace-out run.json           # Chrome trace (simulated time)
//	naspipe-train -debug-addr :6060             # pprof + live counters
//
// Every run flag is the shared set from internal/clicfg, parsed into
// the canonical naspipe.JobSpec — the same knobs, names, and validation
// as naspipe-bench and the naspiped service API.
//
// Fault injection and crash-consistent checkpoint/resume run on the
// concurrent (goroutine-per-stage) plane, selected automatically when
// any of these flags is given:
//
//	naspipe-train -faults "seed=7,drop=0.1" -checkpoint run.ckpt
//	naspipe-train -checkpoint run.ckpt -resume      # continue after a crash
//	naspipe-train -faults "seed=7,crash=0.02" -checkpoint run.ckpt -supervise
//
// With -supervise the supervision plane catches crashes and
// watchdog-diagnosed stalls in-process and resumes from the latest
// checkpoint — no operator intervention, no process restarts; -elastic N
// additionally halves the pipeline depth after N consecutive incidents
// on one stage. SIGINT/SIGTERM interrupt gracefully: the committed
// frontier is already checkpointed, so the process exits resumable.
//
// Exit codes are the naspipe.ExitCode contract CI and operators rely on:
//
//	0 — run complete (and verified where applicable)
//	1 — run or verification failure, including supervisor give-up
//	2 — usage error
//	3 — resumable interruption: injected crash without -supervise, or
//	    SIGINT/SIGTERM with a valid checkpoint; rerun with -resume
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"naspipe"
	"naspipe/internal/clicfg"
	"naspipe/internal/telemetry"
)

func main() {
	os.Exit(int(run()))
}

func run() naspipe.ExitCode {
	f := clicfg.Register(flag.CommandLine, clicfg.Defaults{Space: "NLP.c1", GPUs: 8, Subnets: 240, Window: 48})
	saveTr := flag.String("save-trace", "", "write the parameter-access trace record to this file for naspipe-replay")
	flag.Parse()

	if f.ConcurrentRequested() {
		return concurrentFaultRun(f)
	}
	spec := f.Spec(naspipe.ExecutorSimulated.String())
	if *saveTr != "" {
		t := true
		spec.Trace = &t
	}
	cfg, err := spec.Config()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return naspipe.ExitUsage
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return naspipe.ExitUsage
	}
	var bus *naspipe.TelemetryBus
	if f.TraceOut != "" || f.EventsOut != "" || f.DebugAddr != "" || f.Progress > 0 {
		bus = naspipe.NewTelemetryBus(0)
		cfg.Telemetry = bus
	}
	if f.DebugAddr != "" {
		addr, shutdown, err := telemetry.ServeDebug(f.DebugAddr, bus)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return naspipe.ExitUsage
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/ (pprof, vars, telemetry)\n", addr)
	}
	stopProgress := telemetry.StartProgress(os.Stderr, bus, f.Progress)
	res, err := naspipe.RunPolicy(cfg, spec.Policy)
	stopProgress()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return naspipe.ExitUsage
	}
	if res.Failed {
		fmt.Printf("%s cannot run %s on %d GPUs: %s\n", res.Policy, cfg.Space.Name, spec.GPUs, res.FailReason)
		return naspipe.ExitFailure
	}

	fmt.Printf("system:            %s (%s on %d GPUs, reproducible=%v)\n",
		res.Policy, cfg.Space.Name, spec.GPUs, mustPolicyReproducible(spec.Policy))
	fmt.Printf("subnets trained:   %d in %.1f simulated seconds\n", res.Completed, res.TotalMs/1000)
	fmt.Printf("pipeline batch:    %d samples\n", res.Batch)
	fmt.Printf("throughput:        %.0f samples/s (%.0f subnets/hour)\n", res.SamplesPerSec, res.SubnetsPerHour)
	fmt.Printf("bubble ratio:      %.2f\n", res.BubbleRatio)
	fmt.Printf("total GPU ALU:     %.2fx of one GPU\n", res.ALUTotal)
	fmt.Printf("avg subnet exec:   %.2f s (bubble eliminated)\n", res.ExecMsAvg/1000)
	if res.CacheHitRate >= 0 {
		fmt.Printf("cache hit rate:    %.1f%%\n", 100*res.CacheHitRate)
		fmt.Printf("CPU (pinned) mem:  %.1f GB for the supernet stash\n", float64(res.CPUMemBytes)/(1<<30))
	} else {
		fmt.Printf("cache hit rate:    n/a (whole context resident in GPU)\n")
	}
	fmt.Printf("GPU memory:        %.1fx of one GPU across the cluster\n", res.GPUMemX)
	if res.MirrorBytes > 0 {
		fmt.Printf("mirror pushes:     %.1f GB of parameter updates\n", float64(res.MirrorBytes)/(1<<30))
	}
	if *saveTr != "" {
		rec := naspipe.NewTraceRecord(cfg.Space, spec.Policy, spec.GPUs, spec.Seed, res.Completed, res.Trace)
		out, err := os.Create(*saveTr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return naspipe.ExitUsage
		}
		defer out.Close()
		if err := rec.Save(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return naspipe.ExitUsage
		}
		fmt.Printf("trace record:      %s (%d access events; replay with naspipe-replay -trace %s)\n",
			*saveTr, res.Trace.Len(), *saveTr)
	}
	if bus != nil {
		fmt.Printf("telemetry:         %s\n", bus.Snapshot().String())
		lines, err := telemetry.ExportFiles(bus, f.TraceOut, f.EventsOut)
		for _, l := range lines {
			fmt.Println(l)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return naspipe.ExitFailure
		}
	}
	return naspipe.ExitOK
}

// concurrentFaultRun routes a fault-injected, checkpointed, or
// supervised run to the concurrent (goroutine-per-stage) plane — the
// simulated clock has no goroutines to crash. Returns the process exit
// code per the contract in the package comment.
func concurrentFaultRun(f *clicfg.Flags) naspipe.ExitCode {
	if f.Resume && f.Checkpoint == "" {
		fmt.Fprintln(os.Stderr, "naspipe-train: -resume requires -checkpoint")
		return naspipe.ExitUsage
	}
	spec := f.Spec(naspipe.ExecutorConcurrent.String())
	t := true
	spec.Trace = &t
	opts, cfg, err := naspipe.FromSpec(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return naspipe.ExitUsage
	}
	var bus *naspipe.TelemetryBus
	if f.EventsOut != "" {
		bus = naspipe.NewTelemetryBus(0)
		opts = append(opts, naspipe.WithTelemetry(bus))
	}
	r, err := naspipe.NewRunner(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return naspipe.ExitUsage
	}
	// SIGINT/SIGTERM cancel the run between tasks; the committed frontier
	// is already checkpointed (and the incarnation bumped), so the
	// process exits resumable (3) instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	code := naspipe.ExitOK
	if spec.Supervise != nil {
		code = supervisedRun(ctx, r, cfg, spec, f, bus)
	} else {
		code = plainRun(ctx, r, cfg, spec, f)
	}
	if bus != nil {
		lines, eerr := telemetry.ExportFiles(bus, "", f.EventsOut)
		for _, l := range lines {
			fmt.Println(l)
		}
		if eerr != nil {
			fmt.Fprintln(os.Stderr, eerr)
			if code == naspipe.ExitOK {
				code = naspipe.ExitFailure
			}
		}
	}
	return code
}

// plainRun is the unsupervised path: one incarnation, operator resumes.
func plainRun(ctx context.Context, r *naspipe.Runner, cfg naspipe.Config, spec naspipe.JobSpec, f *clicfg.Flags) naspipe.ExitCode {
	run := r.Run
	if f.Resume {
		run = r.Resume
	}
	res, err := run(ctx, cfg)
	if err != nil {
		var crash *naspipe.CrashError
		switch {
		case errors.As(err, &crash):
			fmt.Fprintf(os.Stderr, "injected crash: %v\n", err)
			printCheckpoint(os.Stderr, spec.Checkpoint, "rerun with -resume")
			return naspipe.ExitResumable
		case ctx.Err() != nil:
			fmt.Fprintf(os.Stderr, "interrupted: %v\n", err)
			if spec.Checkpoint != "" {
				printCheckpoint(os.Stderr, spec.Checkpoint, "rerun with -resume")
				return naspipe.ExitResumable
			}
			return naspipe.ExitFailure
		default:
			fmt.Fprintln(os.Stderr, err)
			return naspipe.ExitFailure
		}
	}
	printRunResult(spec, cfg, res)
	return naspipe.ExitOK
}

// supervisedRun wraps the incarnations in the supervision plane:
// crashes and watchdog stalls auto-resume in-process.
func supervisedRun(ctx context.Context, r *naspipe.Runner, cfg naspipe.Config, spec naspipe.JobSpec, f *clicfg.Flags, bus *naspipe.TelemetryBus) naspipe.ExitCode {
	sc, _ := spec.SuperviseConfig()
	sc.Telemetry = bus
	sc.Log = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }

	run := r.RunSupervised
	if f.Resume {
		run = r.ResumeSupervised
	}
	res, rep, err := run(ctx, cfg, sc)
	if err != nil {
		var giveUp *naspipe.GiveUpError
		switch {
		case ctx.Err() != nil && !errors.As(err, &giveUp):
			fmt.Fprintf(os.Stderr, "interrupted: %v\n", err)
			printCheckpoint(os.Stderr, spec.Checkpoint, "rerun with -resume (or -supervise -resume)")
			return naspipe.ExitResumable
		case errors.As(err, &giveUp):
			fmt.Fprintln(os.Stderr, giveUp)
			return naspipe.ExitFailure
		default:
			fmt.Fprintln(os.Stderr, err)
			return naspipe.ExitFailure
		}
	}
	fmt.Printf("supervised run:    %s, %d restarts, %d watchdog fires, final D=%d\n",
		rep.FinalState, rep.Restarts, rep.WatchdogFires, rep.FinalGPUs)
	if len(rep.ElasticSteps) > 0 {
		fmt.Printf("elastic steps:     depth %v after repeated same-stage incidents\n", rep.ElasticSteps)
	}
	printRunResult(spec, cfg, res)
	return naspipe.ExitOK
}

func printRunResult(spec naspipe.JobSpec, cfg naspipe.Config, res naspipe.Result) {
	fmt.Printf("concurrent CSP plane: %s on %d GPUs, %d subnets completed", cfg.Space.Name, spec.GPUs, res.Completed)
	if res.BaseSeq > 0 {
		fmt.Printf(" (resumed at cursor %d)", res.BaseSeq)
	}
	fmt.Println()
	if res.ObservedTrace != nil {
		fmt.Printf("per-layer access order verified against the sequential reference (%d observed events)\n",
			len(res.ObservedTrace.Events))
	}
	if spec.Checkpoint != "" {
		printCheckpoint(os.Stdout, spec.Checkpoint, "")
	}
}

// printCheckpoint echoes the checkpoint file's cursor/incarnation state
// with an optional operator hint.
func printCheckpoint(w *os.File, path, hint string) {
	if path == "" {
		return
	}
	ck, err := naspipe.LoadCheckpoint(path)
	if err != nil {
		fmt.Fprintf(w, "checkpoint:        %s unreadable: %v\n", path, err)
		return
	}
	line := fmt.Sprintf("checkpoint:        %s (cursor %d/%d, incarnation %d)", path, ck.Cursor, ck.NumSubnets, ck.Incarnation)
	if hint != "" {
		line += " — " + hint
	}
	fmt.Fprintln(w, line)
}

func mustPolicyReproducible(name string) bool {
	p, err := naspipe.NewPolicy(name)
	if err != nil {
		return false
	}
	return p.Traits().Reproducible
}
