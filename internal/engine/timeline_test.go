package engine_test

import (
	"strings"
	"testing"

	"naspipe/internal/engine"
	"naspipe/internal/task"
)

// stageRow extracts the painted cells of one stage row from the rendered
// timeline.
func stageRow(t *testing.T, out string, stage int) string {
	t.Helper()
	prefix := "stage " + string(rune('0'+stage)) + " |"
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, prefix) {
			return strings.TrimSuffix(strings.TrimPrefix(line, prefix), "|")
		}
	}
	t.Fatalf("stage %d row missing in:\n%s", stage, out)
	return ""
}

// Back-to-back spans must not overlap: the end column is exclusive, so a
// task ending at t and its successor starting at t split the axis cleanly.
func TestRenderTimelineExclusiveEnd(t *testing.T) {
	spans := []engine.TaskSpan{
		{Task: task.Task{Subnet: 1, Stage: 0, Kind: task.Forward}, StartMs: 0, EndMs: 50},
		{Task: task.Task{Subnet: 2, Stage: 0, Kind: task.Forward}, StartMs: 50, EndMs: 100},
	}
	row := stageRow(t, engine.RenderTimeline(spans, 1, 10, 100), 0)
	if row != "1111122222" {
		t.Fatalf("adjacent spans overlap or leave gaps: %q", row)
	}
}

// A zero-duration (or sub-column) span still needs one visible cell, and
// a span ending exactly at totalMs must not run past the axis.
func TestRenderTimelineTinyAndEdgeSpans(t *testing.T) {
	spans := []engine.TaskSpan{
		{Task: task.Task{Subnet: 3, Stage: 0, Kind: task.Forward}, StartMs: 20, EndMs: 20},
		{Task: task.Task{Subnet: 4, Stage: 1, Kind: task.Backward}, StartMs: 90, EndMs: 100},
	}
	out := engine.RenderTimeline(spans, 2, 10, 100)
	if row := stageRow(t, out, 0); row != "..3......." {
		t.Fatalf("zero-duration span painted %q, want one cell at column 2", row)
	}
	if row := stageRow(t, out, 1); row != ".........e" {
		t.Fatalf("axis-edge span painted %q, want one cell at the last column", row)
	}
}
