package task

import "testing"

func TestKindString(t *testing.T) {
	if Forward.String() != "F" || Backward.String() != "B" {
		t.Fatal("kind strings wrong")
	}
}

func TestTaskString(t *testing.T) {
	tk := Task{Subnet: 5, Stage: 2, Kind: Backward}
	if got := tk.String(); got != "5B@2" {
		t.Fatalf("got %q", got)
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	var q Queue
	for i := 0; i < 5; i++ {
		q.Push(i * 10)
	}
	if q.Len() != 5 {
		t.Fatalf("len %d", q.Len())
	}
	ids := q.IDs()
	for i, v := range ids {
		if v != i*10 {
			t.Fatalf("order broken: %v", ids)
		}
	}
}

func TestQueuePopMiddle(t *testing.T) {
	var q Queue
	q.Push(1)
	q.Push(2)
	q.Push(3)
	if got := q.Pop(1); got != 2 {
		t.Fatalf("Pop(1) = %d", got)
	}
	ids := q.IDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("after pop: %v", ids)
	}
}

func TestQueueContains(t *testing.T) {
	var q Queue
	q.Push(7)
	if !q.Contains(7) || q.Contains(8) {
		t.Fatal("Contains wrong")
	}
}

func TestIDsIsCopy(t *testing.T) {
	var q Queue
	q.Push(1)
	ids := q.IDs()
	ids[0] = 99
	if q.At(0) != 1 {
		t.Fatal("IDs exposes internal storage")
	}
}
