// Command naspipe-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	naspipe-bench -exp table2            # one experiment
//	naspipe-bench -exp table2,figure5    # several
//	naspipe-bench -exp all               # the whole evaluation (§5)
//	naspipe-bench -exp all -quick        # reduced sizes for a fast pass
//	naspipe-bench -exp all -parallel 4   # fan experiments over 4 workers
//	naspipe-bench -concurrent            # smoke the goroutine-per-stage plane
//
// The -parallel fan-out changes wall-clock time only: reports are
// assembled in canonical experiment order and are byte-identical to a
// serial run. Ctrl-C cancels cooperatively — the partial report printed
// so far is flushed before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"naspipe"
	"naspipe/internal/metrics"
)

func main() {
	var (
		exps       = flag.String("exp", "all", "comma-separated experiment names, or 'all' (known: "+strings.Join(naspipe.ExperimentNames(), ", ")+")")
		quick      = flag.Bool("quick", false, "reduced sizes for a fast smoke pass")
		seed       = flag.Uint64("seed", 42, "global random seed")
		gpus       = flag.Int("gpus", 8, "default GPU count for single-cluster experiments")
		subnets    = flag.Int("subnets", 0, "performance-plane subnets per run (0 = default)")
		par        = flag.Int("parallel", 0, "experiment fan-out workers (0 = GOMAXPROCS, 1 = serial)")
		concurrent = flag.Bool("concurrent", false, "run a goroutine-per-stage CSP smoke instead of experiments")
		predictor  = flag.Bool("predictor", false, "with -concurrent: enable the Algorithm 3 context predictor")
		cacheFac   = flag.Float64("cachefactor", 3, "with -concurrent: per-stage cache budget as a multiple of the average subnet footprint (0 disables the cache)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *concurrent {
		os.Exit(concurrentSmoke(ctx, *seed, *gpus, *cacheFac, *predictor))
	}

	o := naspipe.DefaultExperimentOptions()
	if *quick {
		o = naspipe.QuickExperimentOptions()
	}
	o.Seed = *seed
	o.GPUs = *gpus
	o.Parallelism = *par
	if *subnets > 0 {
		o.Subnets = *subnets
	}

	if *exps == "all" {
		t0 := time.Now()
		out, err := naspipe.AllExperimentsContext(ctx, o)
		fmt.Print(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "all: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[all %d experiments completed in %v]\n", len(naspipe.ExperimentNames()), time.Since(t0).Round(time.Millisecond))
		return
	}

	exit := 0
	for _, name := range strings.Split(*exps, ",") {
		name = strings.TrimSpace(name)
		t0 := time.Now()
		out, err := naspipe.ExperimentContext(ctx, name, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			exit = 1
			continue
		}
		fmt.Print(out)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}
	os.Exit(exit)
}

// concurrentSmoke exercises the goroutine-per-stage execution plane once
// and prints its verification verdict, contention profile, and — with the
// cache enabled — the memory-context profile. With the predictor on, a
// hit rate at or below zero is a regression and fails the smoke.
func concurrentSmoke(ctx context.Context, seed uint64, gpus int, cacheFactor float64, predictor bool) int {
	opts := []naspipe.RunnerOption{
		naspipe.WithExecutor(naspipe.ExecutorConcurrent),
		naspipe.WithTrace(true),
		naspipe.WithCache(cacheFactor),
	}
	if predictor {
		opts = append(opts, naspipe.WithPredictor(true))
	}
	r, err := naspipe.NewRunner(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cfg := naspipe.Config{
		Space:      naspipe.NLPc3.Scaled(8, 3),
		Spec:       naspipe.DefaultCluster(gpus),
		Seed:       seed,
		NumSubnets: 48,
	}
	t0 := time.Now()
	res, err := r.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "concurrent: %v\n", err)
		return 1
	}
	fmt.Printf("concurrent CSP plane: %d subnets, %d stages, %v wall clock\n",
		res.Completed, res.D, time.Since(t0).Round(time.Microsecond))
	fmt.Printf("per-layer access order verified against the sequential reference (%d observed events)\n",
		len(res.ObservedTrace.Events))
	fmt.Print(metrics.ContentionTable(res.Contention))
	if res.CacheStats != nil {
		fmt.Print(metrics.CacheTable(res.CacheStats))
		fmt.Printf("cache hit rate %s (budget %s of %s supernet, predictor %v)\n",
			metrics.Percent(res.CacheHitRate), metrics.Gigabytes(res.CachedParamBytes),
			metrics.Gigabytes(res.CPUMemBytes), predictor)
		if predictor && res.CacheHitRate <= 0 {
			fmt.Fprintf(os.Stderr, "concurrent: predictor enabled but cache hit rate is %v\n", res.CacheHitRate)
			return 1
		}
	}
	return 0
}
