package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestGoldenExposition pins the exact exposition bytes for a registry
// covering all instrument shapes: deterministic family and series
// ordering, HELP/TYPE lines, label escaping, cumulative histogram
// buckets with +Inf, _sum/_count. Any formatting drift fails here.
func TestGoldenExposition(t *testing.T) {
	r := New()
	r.Counter("naspipe_b_total", "plain counter").Add(3)
	v := r.CounterVec("naspipe_a_total", `escapes \ " and newline`, "tenant")
	v.With("z-tenant").Add(1)
	v.With("a\"quote\\slash\nnewline").Add(2)
	r.Gauge("naspipe_c_depth", "a gauge").Set(2.5)
	h := r.Histogram("naspipe_d_seconds", "a histogram", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(99)
	r.GaugeFunc("naspipe_e_live", "func gauge", func() float64 { return 6 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP naspipe_a_total escapes \\ " and newline
# TYPE naspipe_a_total counter
naspipe_a_total{tenant="a\"quote\\slash\nnewline"} 2
naspipe_a_total{tenant="z-tenant"} 1
# HELP naspipe_b_total plain counter
# TYPE naspipe_b_total counter
naspipe_b_total 3
# HELP naspipe_c_depth a gauge
# TYPE naspipe_c_depth gauge
naspipe_c_depth 2.5
# HELP naspipe_d_seconds a histogram
# TYPE naspipe_d_seconds histogram
naspipe_d_seconds_bucket{le="0.5"} 1
naspipe_d_seconds_bucket{le="1"} 2
naspipe_d_seconds_bucket{le="+Inf"} 3
naspipe_d_seconds_sum 100
naspipe_d_seconds_count 3
# HELP naspipe_e_live func gauge
# TYPE naspipe_e_live gauge
naspipe_e_live 6
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionDeterministic: two scrapes of an unchanged registry are
// byte-identical (map iteration order must not leak through).
func TestExpositionDeterministic(t *testing.T) {
	r := New()
	v := r.CounterVec("naspipe_jobs_total", "jobs", "tenant", "state")
	for _, tn := range []string{"c", "a", "b"} {
		for _, st := range []string{"done", "failed"} {
			v.With(tn, st).Inc()
		}
	}
	r.Gauge("naspipe_depth", "d").Set(1)
	var a, b strings.Builder
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("non-deterministic exposition:\n%s\nvs\n%s", a.String(), b.String())
	}
	// series within the family sort by label values
	i1 := strings.Index(a.String(), `tenant="a"`)
	i2 := strings.Index(a.String(), `tenant="b"`)
	i3 := strings.Index(a.String(), `tenant="c"`)
	if !(i1 < i2 && i2 < i3) {
		t.Fatalf("series not sorted by label values:\n%s", a.String())
	}
}

// TestBucketMonotonicity: cumulative bucket counts never decrease and
// the +Inf bucket equals _count.
func TestBucketMonotonicity(t *testing.T) {
	r := New()
	h := r.Histogram("naspipe_lat_seconds", "x", DefBuckets)
	for i := 0; i < 500; i++ {
		h.Observe(float64(i) * 0.004)
	}
	h.Observe(math.Inf(1))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = -1
	var inf, count float64
	buckets := 0
	for _, s := range samples {
		switch s.Name {
		case "naspipe_lat_seconds_bucket":
			buckets++
			if s.Value < prev {
				t.Fatalf("bucket le=%s value %v < previous %v", s.Label("le"), s.Value, prev)
			}
			prev = s.Value
			if s.Label("le") == "+Inf" {
				inf = s.Value
			}
		case "naspipe_lat_seconds_count":
			count = s.Value
		}
	}
	if buckets != len(DefBuckets)+1 {
		t.Fatalf("got %d buckets, want %d", buckets, len(DefBuckets)+1)
	}
	if inf != count || count != 501 {
		t.Fatalf("+Inf bucket %v, _count %v, want both 501", inf, count)
	}
}

// TestParseRoundTrip: exposition → ParseText recovers names, labels
// (including escapes) and values.
func TestParseRoundTrip(t *testing.T) {
	r := New()
	r.CounterVec("naspipe_x_total", "x", "job").With(`j"1\a` + "\n").Add(4)
	r.Gauge("naspipe_y", "y").Set(0)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range samples {
		if s.Name == "naspipe_x_total" {
			found = true
			if got := s.Label("job"); got != `j"1\a`+"\n" {
				t.Fatalf("label round-trip = %q", got)
			}
			if s.Value != 4 {
				t.Fatalf("value = %v, want 4", s.Value)
			}
		}
	}
	if !found {
		t.Fatal("sample not found after round trip")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"naspipe_x_total",            // no value
		`naspipe_x_total{a="b} 1`,    // unterminated value quote inside braces is tolerated only if } exists
		`naspipe_x_total{a=b} 1`,     // unquoted label value
		"naspipe_x_total notanumber", // bad value
		`naspipe_x_total{a="b" 1`,    // unterminated label set
	} {
		if _, err := ParseText(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("ParseText(%q) succeeded, want error", bad)
		}
	}
	// comments and blank lines are fine
	samples, err := ParseText(strings.NewReader("# HELP x y\n\nnaspipe_x_total 2\n"))
	if err != nil || len(samples) != 1 || samples[0].Value != 2 {
		t.Fatalf("samples=%v err=%v", samples, err)
	}
	// +Inf / -Inf values parse
	samples, err = ParseText(strings.NewReader("naspipe_x +Inf\nnaspipe_y -Inf\n"))
	if err != nil || !math.IsInf(samples[0].Value, 1) || !math.IsInf(samples[1].Value, -1) {
		t.Fatalf("inf parse: samples=%v err=%v", samples, err)
	}
}

// TestHandler: the HTTP handler serves the exposition content type; the
// nil registry serves an empty, valid body.
func TestHandler(t *testing.T) {
	r := New()
	r.Counter("naspipe_x_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "naspipe_x_total 1") {
		t.Fatalf("body = %q", rec.Body.String())
	}

	var nilReg *Registry
	rec = httptest.NewRecorder()
	nilReg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Body.Len() != 0 {
		t.Fatalf("nil registry body = %q, want empty", rec.Body.String())
	}
	if _, err := ParseText(strings.NewReader(rec.Body.String())); err != nil {
		t.Fatal(err)
	}
}
