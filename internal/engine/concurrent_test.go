package engine_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"naspipe/internal/cluster"
	"naspipe/internal/data"
	"naspipe/internal/engine"
	"naspipe/internal/supernet"
	"naspipe/internal/train"
)

// ccCfg is the shared configuration of the equivalence matrix: a scaled
// space small enough for numeric replay, dependency-dense enough that CSP
// admission actually blocks subnets.
func ccCfg(d int, jitter bool) engine.Config {
	cfg := engine.Config{
		Space:       supernet.NLPc3.Scaled(8, 3),
		Spec:        cluster.Default(d),
		Seed:        7,
		NumSubnets:  18,
		RecordTrace: true,
	}
	if jitter {
		cfg.TimingJitter = 0.3
		cfg.JitterSeed = 11
	}
	return cfg
}

// TestConcurrentTraceEquivalenceMatrix is the PR's core guarantee: across
// pipeline depths and with timing jitter on or off, the concurrent
// executor's trace is bitwise-equal to the sequential reference (as
// produced by the simulator's sequential policy), its observed raw
// interleaving projects to the same per-layer order, and replaying either
// trace through the numeric trainer lands on bitwise-identical weights.
func TestConcurrentTraceEquivalenceMatrix(t *testing.T) {
	for _, d := range []int{1, 2, 4, 8} {
		for _, jitter := range []bool{false, true} {
			t.Run(fmt.Sprintf("gpus=%d/jitter=%v", d, jitter), func(t *testing.T) {
				cfg := ccCfg(d, jitter)
				seq := run(t, "sequential", cfg)
				if seq.Failed {
					t.Fatalf("sequential reference failed: %s", seq.FailReason)
				}
				sim := run(t, "naspipe", cfg)
				if sim.Failed {
					t.Fatalf("simulated naspipe failed: %s", sim.FailReason)
				}
				cc, err := engine.RunConcurrent(context.Background(), cfg)
				if err != nil {
					t.Fatalf("concurrent run: %v", err)
				}
				if cc.Completed != cfg.NumSubnets {
					t.Fatalf("concurrent completed %d/%d", cc.Completed, cfg.NumSubnets)
				}
				if !cc.Trace.Equal(seq.Trace) {
					t.Fatal("concurrent canonical trace diverges from sequential reference")
				}
				if cc.ObservedTrace == nil {
					t.Fatal("no observed trace recorded")
				}
				if !cc.ObservedTrace.PerLayerEqual(seq.Trace) {
					t.Fatal("observed per-layer access order diverges from sequential reference")
				}
				if !sim.Trace.PerLayerEqual(cc.Trace) {
					t.Fatal("simulated and concurrent planes disagree on per-layer order")
				}

				// Numeric ground truth: all three schedules replay to the
				// bitwise-identical weights of strict sequential training.
				tc := train.Config{Space: cfg.Space, Dim: 8, Seed: cfg.Seed,
					BatchSize: 2, LR: 0.05, Dataset: data.WNMT}
				subs := supernet.Sample(cfg.Space, cfg.Seed, cfg.NumSubnets)
				want := train.Sequential(tc, subs).Checksum
				for name, tr := range map[string]*engine.Result{
					"sequential-sim": &seq, "naspipe-sim": &sim, "concurrent": &cc,
				} {
					got, err := train.Replay(tc, subs, tr.Trace)
					if err != nil {
						t.Fatalf("%s replay: %v", name, err)
					}
					if got.Checksum != want {
						t.Fatalf("%s replay checksum %016x, want %016x", name, got.Checksum, want)
					}
				}
			})
		}
	}
}

// TestConcurrentStableAcrossGOMAXPROCS pins Definition 1 against the Go
// scheduler itself: the canonical trace (and hence the training result)
// is identical whether the stage goroutines run on one core or all of
// them.
func TestConcurrentStableAcrossGOMAXPROCS(t *testing.T) {
	cfg := ccCfg(4, true)
	ref, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, runtime.NumCPU()} {
		prev := runtime.GOMAXPROCS(procs)
		got, err := engine.RunConcurrent(context.Background(), cfg)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		if !got.Trace.Equal(ref.Trace) {
			t.Fatalf("GOMAXPROCS=%d changed the canonical trace", procs)
		}
		if !got.ObservedTrace.PerLayerEqual(ref.Trace) {
			t.Fatalf("GOMAXPROCS=%d violated the per-layer order", procs)
		}
	}
}

// TestConcurrentRepeatedRunsDeterministic hammers the executor: many
// back-to-back runs under jitter must all verify and produce the same
// canonical trace (the observed interleavings are free to differ).
func TestConcurrentRepeatedRunsDeterministic(t *testing.T) {
	cfg := ccCfg(4, true)
	cfg.NumSubnets = 12
	ref, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		got, err := engine.RunConcurrent(context.Background(), cfg)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !got.Trace.Equal(ref.Trace) {
			t.Fatalf("run %d changed the canonical trace", i)
		}
	}
}

// TestConcurrentContentionCounters checks the per-stage instrumentation:
// every stage reports one forward and one backward task per subnet, and
// cross-stage notifications flow on multi-stage pipelines.
func TestConcurrentContentionCounters(t *testing.T) {
	cfg := ccCfg(4, false)
	res, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contention) != res.D {
		t.Fatalf("contention rows %d, want %d", len(res.Contention), res.D)
	}
	for _, c := range res.Contention {
		if c.Tasks != int64(2*cfg.NumSubnets) {
			t.Fatalf("stage %d ran %d tasks, want %d", c.Stage, c.Tasks, 2*cfg.NumSubnets)
		}
	}
	var notes int64
	for _, c := range res.Contention {
		notes += c.Notes
	}
	// Every backward broadcasts to the other D-1 stages, but a stage that
	// has finished its own work exits without applying late notifications,
	// so the applied count is bounded, not exact.
	max := int64(cfg.NumSubnets * res.D * (res.D - 1))
	if notes == 0 || notes > max {
		t.Fatalf("total notes %d, want in (0, %d]", notes, max)
	}
}

// TestConcurrentCancellation: a pre-cancelled context returns promptly
// with a partial result and ctx.Err().
func TestConcurrentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := engine.RunConcurrent(ctx, ccCfg(4, false))
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Completed != 0 || !res.Deadlock {
		t.Fatalf("cancelled run reported %d completed, deadlock=%v", res.Completed, res.Deadlock)
	}
}

// TestConcurrentInvalidSpec: config validation errors, not panics.
func TestConcurrentInvalidSpec(t *testing.T) {
	cfg := ccCfg(2, false)
	cfg.Spec.GPUsPerHost = 0
	if _, err := engine.RunConcurrent(context.Background(), cfg); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// BenchmarkConcurrentExecutor measures the real-goroutine pipeline.
func BenchmarkConcurrentExecutor(b *testing.B) {
	cfg := ccCfg(4, false)
	cfg.RecordTrace = false
	for i := 0; i < b.N; i++ {
		if _, err := engine.RunConcurrent(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
