package naspipe

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"naspipe/internal/data"
	"naspipe/internal/fault"
	"naspipe/internal/sched"
	"naspipe/internal/train"
)

// JobSpecVersion is the current JobSpec wire version. A spec with an
// empty APIVersion is taken to mean the current version; anything else
// must match exactly — version negotiation is explicit, never silent.
const JobSpecVersion = "v1"

// ExitCode is the process exit-code contract shared by every naspipe
// CLI and, through the service plane, by daemon job states (see
// JobSpec and internal/service). CI scripts, operators, and the
// supervision plane all key off these four values — never invent a
// fifth without updating the package-level contract docs.
type ExitCode int

const (
	// ExitOK: the run completed, and where a verification applies
	// (resume composition, predictor hit rate, telemetry overhead gate)
	// it passed.
	ExitOK ExitCode = 0
	// ExitFailure: the run or its verification failed, including a
	// supervisor give-up (*GiveUpError) — not resumable as-is.
	ExitFailure ExitCode = 1
	// ExitUsage: the invocation was malformed (bad flag, unknown space
	// or policy, invalid JobSpec) and nothing ran.
	ExitUsage ExitCode = 2
	// ExitResumable: the run was interrupted with a valid checkpoint on
	// disk — an injected crash without supervision, or SIGINT/SIGTERM
	// mid-run. Rerunning with -resume (or POST /v1/jobs/{id}/resume)
	// continues from the committed frontier.
	ExitResumable ExitCode = 3
)

// String names the exit code for reports and API payloads.
func (c ExitCode) String() string {
	switch c {
	case ExitOK:
		return "ok"
	case ExitFailure:
		return "failure"
	case ExitUsage:
		return "usage"
	case ExitResumable:
		return "resumable"
	}
	return fmt.Sprintf("ExitCode(%d)", int(c))
}

// Duration is a time.Duration that round-trips through JSON as a
// human-readable string ("500ms", "2s") instead of nanosecond integers.
type Duration time.Duration

// MarshalJSON encodes the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string or a bare integer
// nanosecond count (the encoding time.Duration would have used).
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		dd, perr := time.ParseDuration(s)
		if perr != nil {
			return perr
		}
		*d = Duration(dd)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("duration must be a string like \"500ms\" or an integer nanosecond count")
	}
	*d = Duration(ns)
	return nil
}

// TrainSpec attaches the numeric (real-weights) training plane to a
// job: checkpoint prefix checksums when a checkpoint path is set, and
// the bitwise verification target when Verify is on.
type TrainSpec struct {
	// Dim is the model dimension of the numeric layers (0 = 12).
	Dim int `json:"dim,omitempty"`
	// BatchSize is items per subnet step (0 = 4).
	BatchSize int `json:"batch_size,omitempty"`
	// LR is the SGD learning rate (0 = 0.05).
	LR float64 `json:"lr,omitempty"`
	// Dataset names the synthetic workload: "WNMT" or "ImageNet"
	// ("" = WNMT).
	Dataset string `json:"dataset,omitempty"`
}

// SuperviseSpec opts a job into the supervision plane and overrides its
// defaults (see DefaultSuperviseConfig). Requires a checkpoint path and
// the concurrent executor.
type SuperviseSpec struct {
	// StallTimeout is the watchdog threshold: both progress signals flat
	// for this long declares a stall (0 = default 2s).
	StallTimeout Duration `json:"stall_timeout,omitempty"`
	// MaxRestarts bounds resume attempts across the whole run (0 = 16).
	MaxRestarts int `json:"max_restarts,omitempty"`
	// ElasticAfter halves the pipeline depth after this many consecutive
	// incidents attributed to one stage (0 = off). Implies elastic
	// resume.
	ElasticAfter int `json:"elastic_after,omitempty"`
	// CrashLoopWindow declares the run crash-looping after this many
	// consecutive restarts with no cursor advance (0 = default 3).
	// Scenario storms that crash before the first commit raise it.
	CrashLoopWindow int `json:"crash_loop_window,omitempty"`
	// Backoff/BackoffMax bound the exponential delay between restart
	// attempts (0 = defaults 5ms/250ms). Tight-loop test scenarios
	// shrink them to keep sweeps fast.
	Backoff    Duration `json:"backoff,omitempty"`
	BackoffMax Duration `json:"backoff_max,omitempty"`
}

// JobSpec is the canonical, JSON-round-trippable description of one
// search job: the single configuration surface shared by the Go API
// (FromSpec → NewRunner), the CLI flag sets (internal/clicfg), and the
// naspiped service wire format (POST /v1/jobs). Adding a knob here adds
// it everywhere at once; the three surfaces cannot drift.
//
// The zero value is not valid — at minimum Space, GPUs, and Subnets
// must be set. Validate reports the first violated invariant with the
// offending field name (the service maps it to a structured 400).
type JobSpec struct {
	// APIVersion pins the spec format; "" means JobSpecVersion.
	APIVersion string `json:"api_version,omitempty"`
	// Tenant scopes the job for the service plane's quotas and listing;
	// ignored by the CLIs ("" = the default tenant).
	Tenant string `json:"tenant,omitempty"`
	// Name is a free-form operator label.
	Name string `json:"name,omitempty"`

	// Space is a Table 1 search-space name ("NLP.c1", "CV.c3", ...).
	Space string `json:"space"`
	// ScaleBlocks/ScaleChoices optionally re-geometry the space for the
	// numeric plane (Space.Scaled); both or neither.
	ScaleBlocks  int `json:"scale_blocks,omitempty"`
	ScaleChoices int `json:"scale_choices,omitempty"`
	// Policy is the scheduling policy ("" = "naspipe"; see PolicyNames).
	Policy string `json:"policy,omitempty"`
	// Executor selects the execution plane: "simulated" or "concurrent"
	// ("" = "simulated").
	Executor string `json:"executor,omitempty"`
	// GPUs is the pipeline depth.
	GPUs int `json:"gpus"`
	// Subnets is the exploration-stream length.
	Subnets int `json:"subnets"`
	// Seed drives SPOS subnet sampling.
	Seed uint64 `json:"seed"`
	// Window bounds in-flight subnets (0 = engine default).
	Window int `json:"window,omitempty"`
	// Jitter perturbs per-task compute timing by a deterministic factor
	// in [1-j, 1+j] keyed by JitterSeed; concurrent tasks really sleep.
	Jitter     float64 `json:"jitter,omitempty"`
	JitterSeed uint64  `json:"jitter_seed,omitempty"`
	// StageSpeeds models a heterogeneous cluster: stage k's tasks take
	// StageSpeeds[k]× their baseline compute time (1.0 = homogeneous,
	// 2.0 = a straggler at half speed). Empty means homogeneous;
	// otherwise one positive factor per GPU. Like Jitter this perturbs
	// timing only — CSP keeps the training result bitwise invariant.
	StageSpeeds []float64 `json:"stage_speeds,omitempty"`

	// Trace forces parameter-access trace recording on or off; nil
	// leaves it to the engine config (and Verify forces it on).
	Trace *bool `json:"trace,omitempty"`
	// CacheFactor sizes the concurrent plane's per-stage layer cache as
	// a multiple of the stage's average subnet footprint; nil leaves the
	// cache unconfigured, 0 disables it. Concurrent executor only.
	CacheFactor *float64 `json:"cache_factor,omitempty"`
	// Predictor enables the Algorithm 3 context predictor (requires a
	// non-zero cache; defaults the factor to 3 when unset).
	Predictor bool `json:"predictor,omitempty"`

	// Faults is a deterministic fault-plan spec, e.g.
	// "seed=7,drop=0.1,crashat=2:9:F" (see ParseFaultPlan). Concurrent
	// executor only.
	Faults string `json:"faults,omitempty"`
	// Checkpoint persists crash-consistent checkpoints to this path; the
	// service plane overrides it with the job's own state file.
	Checkpoint string `json:"checkpoint,omitempty"`
	// CheckpointEvery throttles saves to one per n cursor advances.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Elastic permits resuming across a different GPU count
	// (WithElasticResume); implied by Supervise.ElasticAfter.
	Elastic bool `json:"elastic,omitempty"`

	// Train attaches the numeric training plane (prefix checksums in
	// checkpoints; the reference for Verify).
	Train *TrainSpec `json:"train,omitempty"`
	// Supervise opts into in-process auto-resume of crashes and
	// watchdog-diagnosed stalls. Requires Checkpoint + concurrent.
	Supervise *SuperviseSpec `json:"supervise,omitempty"`
	// Verify re-derives the completed run's weights from its observed
	// trace and fails unless they are bitwise equal to the sequential
	// reference. Requires Train and the concurrent executor.
	Verify bool `json:"verify,omitempty"`
}

// specErr is a JobSpec validation failure pinned to one field, so API
// consumers get a structured "which field" answer instead of prose
// archaeology.
type specErr struct {
	Field string
	Msg   string
}

func (e *specErr) Error() string { return fmt.Sprintf("jobspec: field %q: %s", e.Field, e.Msg) }

// SpecField extracts the offending field name from a JobSpec validation
// error, unwrapping as needed ("" if err is not one).
func SpecField(err error) string {
	var e *specErr
	if errors.As(err, &e) {
		return e.Field
	}
	return ""
}

// SpecErrorf builds a field-attributed spec error of the shared type
// SpecField reads. Layered spec surfaces (the scenario compiler) use it
// so every configuration error in the system names its offending field
// identically, whether it came from a JobSpec, a CLI flag set, or a
// scenario file.
func SpecErrorf(field, format string, args ...any) error {
	return &specErr{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// optionFacts is the single option-validation kernel shared by
// JobSpec.Validate and NewRunner: both surfaces reduce to these facts
// and run the same invariant checks, so the flag set, the service API,
// and the functional options cannot drift apart.
type optionFacts struct {
	policy      string
	executor    ExecutorKind
	parallelism int
	cacheSet    bool
	cacheFactor float64
	predictor   bool
	faults      *fault.Plan
	ckptPath    string
	ckptEvery   int
	haveTrain   bool // checkpoint-training attached
	elastic     bool
}

// validate checks every cross-option invariant. Errors are *specErr so
// both NewRunner and JobSpec.Validate surface the offending field.
func (f optionFacts) validate() error {
	if _, err := sched.New(f.policy); err != nil {
		return &specErr{Field: "policy", Msg: err.Error()}
	}
	if f.executor != ExecutorSimulated && f.executor != ExecutorConcurrent {
		return &specErr{Field: "executor", Msg: fmt.Sprintf("unknown executor %v", f.executor)}
	}
	if f.executor == ExecutorConcurrent && f.policy != "naspipe" {
		return &specErr{Field: "policy", Msg: fmt.Sprintf("the concurrent executor implements CSP only; policy %q requires the simulated executor", f.policy)}
	}
	if f.parallelism < 0 {
		return &specErr{Field: "parallelism", Msg: fmt.Sprintf("negative parallelism %d", f.parallelism)}
	}
	if f.cacheSet && f.cacheFactor < 0 {
		return &specErr{Field: "cache_factor", Msg: fmt.Sprintf("negative cache factor %v", f.cacheFactor)}
	}
	if (f.cacheSet || f.predictor) && f.executor != ExecutorConcurrent {
		return &specErr{Field: "cache_factor", Msg: fmt.Sprintf("the cache and predictor configure the concurrent memory plane; the %v executor has its own memory model", f.executor)}
	}
	if f.predictor && f.cacheSet && f.cacheFactor == 0 {
		return &specErr{Field: "predictor", Msg: "the predictor requires a cache; cache factor 0 disables it"}
	}
	if (f.faults != nil || f.ckptPath != "" || f.ckptEvery != 0 || f.haveTrain) && f.executor != ExecutorConcurrent {
		return &specErr{Field: "faults", Msg: fmt.Sprintf("faults/checkpoint/training configure the concurrent execution plane; the %v executor has no goroutines to crash or resume", f.executor)}
	}
	if f.faults != nil {
		if err := f.faults.Validate(); err != nil {
			return &specErr{Field: "faults", Msg: err.Error()}
		}
	}
	if f.ckptEvery < 0 {
		return &specErr{Field: "checkpoint_every", Msg: fmt.Sprintf("negative checkpoint interval %d", f.ckptEvery)}
	}
	if (f.ckptEvery != 0 || f.elastic) && f.ckptPath == "" {
		return &specErr{Field: "checkpoint", Msg: "checkpoint_every/elastic refine a checkpoint path, which is not set"}
	}
	return nil
}

// executorKind resolves the spec's executor name.
func (s JobSpec) executorKind() (ExecutorKind, error) {
	switch s.Executor {
	case "", ExecutorSimulated.String():
		return ExecutorSimulated, nil
	case ExecutorConcurrent.String():
		return ExecutorConcurrent, nil
	}
	return 0, &specErr{Field: "executor", Msg: fmt.Sprintf("unknown executor %q (want %q or %q)", s.Executor, ExecutorSimulated, ExecutorConcurrent)}
}

// policyName resolves the spec's policy with its default.
func (s JobSpec) policyName() string {
	if s.Policy == "" {
		return "naspipe"
	}
	return s.Policy
}

// Validate checks the spec against every invariant the system holds:
// resolvable space and policy, executor/plane compatibility, cache and
// predictor constraints, fault-plan syntax, checkpoint refinements, and
// supervision/verification requirements. The first violation is
// returned as an error naming the offending JSON field (see SpecField).
func (s JobSpec) Validate() error {
	if s.APIVersion != "" && s.APIVersion != JobSpecVersion {
		return &specErr{Field: "api_version", Msg: fmt.Sprintf("unsupported version %q (this build speaks %q)", s.APIVersion, JobSpecVersion)}
	}
	if s.Space == "" {
		return &specErr{Field: "space", Msg: "required (a Table 1 name like \"NLP.c1\")"}
	}
	if _, err := SpaceByName(s.Space); err != nil {
		return &specErr{Field: "space", Msg: err.Error()}
	}
	if (s.ScaleBlocks > 0) != (s.ScaleChoices > 0) {
		return &specErr{Field: "scale_blocks", Msg: "scale_blocks and scale_choices come together (both or neither)"}
	}
	if s.ScaleBlocks < 0 || s.ScaleChoices < 0 {
		return &specErr{Field: "scale_blocks", Msg: "negative scale geometry"}
	}
	if s.GPUs <= 0 {
		return &specErr{Field: "gpus", Msg: fmt.Sprintf("pipeline depth must be positive, got %d", s.GPUs)}
	}
	if s.Subnets <= 0 {
		return &specErr{Field: "subnets", Msg: fmt.Sprintf("stream length must be positive, got %d", s.Subnets)}
	}
	if s.Window < 0 {
		return &specErr{Field: "window", Msg: fmt.Sprintf("negative admission window %d", s.Window)}
	}
	if s.Jitter < 0 || s.Jitter >= 1 {
		return &specErr{Field: "jitter", Msg: fmt.Sprintf("jitter must be in [0, 1), got %v", s.Jitter)}
	}
	if len(s.StageSpeeds) > 0 && len(s.StageSpeeds) != s.GPUs {
		return &specErr{Field: "stage_speeds", Msg: fmt.Sprintf("want one speed factor per GPU (%d), got %d", s.GPUs, len(s.StageSpeeds))}
	}
	for k, v := range s.StageSpeeds {
		if !(v > 0) || math.IsInf(v, 0) {
			return &specErr{Field: "stage_speeds", Msg: fmt.Sprintf("stage %d speed factor %v; factors must be positive and finite", k, v)}
		}
	}
	kind, err := s.executorKind()
	if err != nil {
		return err
	}
	var plan *fault.Plan
	if s.Faults != "" {
		plan, err = fault.ParsePlan(s.Faults)
		if err != nil {
			return &specErr{Field: "faults", Msg: err.Error()}
		}
	}
	if s.Train != nil {
		if s.Train.Dim < 0 || s.Train.BatchSize < 0 {
			return &specErr{Field: "train", Msg: "negative dim or batch_size"}
		}
		if s.Train.Dataset != "" {
			if _, err := data.KindByName(s.Train.Dataset); err != nil {
				return &specErr{Field: "train.dataset", Msg: err.Error()}
			}
		}
	}
	if s.Supervise != nil {
		if s.Checkpoint == "" {
			return &specErr{Field: "supervise", Msg: "supervision requires a checkpoint path — recovery resumes from it"}
		}
		if kind != ExecutorConcurrent {
			return &specErr{Field: "supervise", Msg: "supervision wraps the concurrent executor"}
		}
		if s.Supervise.MaxRestarts < 0 || s.Supervise.ElasticAfter < 0 || s.Supervise.StallTimeout < 0 ||
			s.Supervise.CrashLoopWindow < 0 || s.Supervise.Backoff < 0 || s.Supervise.BackoffMax < 0 {
			return &specErr{Field: "supervise", Msg: "negative supervision parameter"}
		}
	}
	if s.Verify {
		if s.Train == nil {
			return &specErr{Field: "verify", Msg: "verification trains the sequential reference; attach a train spec"}
		}
		if kind != ExecutorConcurrent {
			return &specErr{Field: "verify", Msg: "verification replays the observed trace of a concurrent run"}
		}
		if s.Trace != nil && !*s.Trace {
			return &specErr{Field: "trace", Msg: "verify needs the observed trace; trace=false contradicts it"}
		}
	}
	return s.facts(kind, plan).validate()
}

// facts reduces the spec to the shared option-validation kernel.
func (s JobSpec) facts(kind ExecutorKind, plan *fault.Plan) optionFacts {
	f := optionFacts{
		policy:    s.policyName(),
		executor:  kind,
		predictor: s.Predictor,
		faults:    plan,
		ckptPath:  s.Checkpoint,
		ckptEvery: s.CheckpointEvery,
		haveTrain: s.Train != nil && s.Checkpoint != "",
		elastic:   s.Elastic || (s.Supervise != nil && s.Supervise.ElasticAfter > 0),
	}
	if s.CacheFactor != nil {
		f.cacheSet = true
		f.cacheFactor = *s.CacheFactor
	}
	return f
}

// TrainConfig materializes the spec's training plane against its
// (scaled) space; ok is false when no train spec is attached.
func (s JobSpec) TrainConfig() (TrainConfig, bool) {
	if s.Train == nil {
		return TrainConfig{}, false
	}
	sp, err := s.space()
	if err != nil {
		return TrainConfig{}, false
	}
	kind := data.WNMT
	if s.Train.Dataset != "" {
		if k, kerr := data.KindByName(s.Train.Dataset); kerr == nil {
			kind = k
		}
	}
	return train.Config{
		Space: sp, Dim: s.Train.Dim, Seed: s.Seed,
		BatchSize: s.Train.BatchSize, LR: float32(s.Train.LR),
		Dataset: kind,
	}, true
}

// SuperviseConfig materializes the spec's supervision plane over the
// package defaults; ok is false when the spec does not opt in.
func (s JobSpec) SuperviseConfig() (SuperviseConfig, bool) {
	if s.Supervise == nil {
		return SuperviseConfig{}, false
	}
	sc := DefaultSuperviseConfig()
	if s.Supervise.StallTimeout > 0 {
		sc.Watchdog.StallAfter = time.Duration(s.Supervise.StallTimeout)
	}
	if s.Supervise.MaxRestarts > 0 {
		sc.MaxRestarts = s.Supervise.MaxRestarts
	}
	if s.Supervise.CrashLoopWindow > 0 {
		sc.CrashLoopWindow = s.Supervise.CrashLoopWindow
	}
	if s.Supervise.Backoff > 0 {
		sc.BackoffBase = time.Duration(s.Supervise.Backoff)
	}
	if s.Supervise.BackoffMax > 0 {
		sc.BackoffMax = time.Duration(s.Supervise.BackoffMax)
	}
	sc.ElasticAfter = s.Supervise.ElasticAfter
	return sc, true
}

// space resolves and scales the spec's search space.
func (s JobSpec) space() (Space, error) {
	sp, err := SpaceByName(s.Space)
	if err != nil {
		return Space{}, &specErr{Field: "space", Msg: err.Error()}
	}
	if s.ScaleBlocks > 0 {
		sp = sp.Scaled(s.ScaleBlocks, s.ScaleChoices)
	}
	return sp, nil
}

// Config materializes the engine configuration the spec describes.
// Most callers want FromSpec, which also derives the Runner options.
func (s JobSpec) Config() (Config, error) {
	sp, err := s.space()
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		Space: sp, Spec: DefaultCluster(s.GPUs),
		Seed: s.Seed, NumSubnets: s.Subnets,
		InflightLimit: s.Window,
		TimingJitter:  s.Jitter,
		JitterSeed:    s.JitterSeed,
		StageSpeeds:   s.StageSpeeds,
	}
	if s.Trace != nil {
		cfg.RecordTrace = *s.Trace
	}
	if s.Verify {
		cfg.RecordTrace = true
	}
	return cfg, nil
}

// FromSpec validates the spec and derives both halves of a run from it:
// the Runner options (executor, policy, cache, faults, checkpointing,
// elasticity) and the engine Config (space, cluster, stream, jitter,
// tracing). It is the bridge that makes JobSpec the single source of
// truth — the CLIs, the Go API, and the naspiped service all build
// their runners through it.
func FromSpec(s JobSpec) ([]RunnerOption, Config, error) {
	if err := s.Validate(); err != nil {
		return nil, Config{}, err
	}
	cfg, err := s.Config()
	if err != nil {
		return nil, Config{}, err
	}
	kind, err := s.executorKind()
	if err != nil {
		return nil, Config{}, err
	}
	opts := []RunnerOption{
		WithPolicy(s.policyName()),
		WithExecutor(kind),
	}
	if s.Trace != nil {
		opts = append(opts, WithTrace(*s.Trace))
	} else if s.Verify {
		opts = append(opts, WithTrace(true))
	}
	if s.CacheFactor != nil {
		opts = append(opts, WithCache(*s.CacheFactor))
	}
	if s.Predictor {
		opts = append(opts, WithPredictor(true))
	}
	if s.Faults != "" {
		plan, perr := fault.ParsePlan(s.Faults)
		if perr != nil {
			return nil, Config{}, &specErr{Field: "faults", Msg: perr.Error()}
		}
		opts = append(opts, WithFaults(plan))
	}
	if s.Checkpoint != "" {
		opts = append(opts, WithCheckpoint(s.Checkpoint))
		if s.CheckpointEvery > 0 {
			opts = append(opts, WithCheckpointEvery(s.CheckpointEvery))
		}
		if tc, ok := s.TrainConfig(); ok {
			opts = append(opts, WithCheckpointTraining(tc))
		}
	}
	if s.Elastic || (s.Supervise != nil && s.Supervise.ElasticAfter > 0) {
		opts = append(opts, WithElasticResume())
	}
	return opts, cfg, nil
}

// VerifyAgainstSequential checks the reproducibility contract on real
// weights: training the committed prefix [0, res.BaseSeq) sequentially
// and replaying the run's observed suffix trace on the same net must
// land bitwise on the uninterrupted sequential run's checksum. It
// returns that checksum on success. This is the check behind the CLIs'
// "resume verified" line and the service plane's verified flag.
func VerifyAgainstSequential(tc TrainConfig, cfg Config, res Result) (uint64, error) {
	full := cfg.ResolveSubnets()
	if res.BaseSeq < 0 || res.BaseSeq > len(full) {
		return 0, fmt.Errorf("naspipe: verify: resume base %d out of range [0, %d]", res.BaseSeq, len(full))
	}
	want := train.Sequential(tc, full).Checksum
	prefix := train.Sequential(tc, full[:res.BaseSeq])
	got := prefix.Checksum
	if res.BaseSeq < len(full) {
		if res.ObservedTrace == nil {
			return 0, fmt.Errorf("naspipe: verify: the run recorded no observed trace (enable tracing)")
		}
		rep, err := train.ReplayOn(tc, prefix.Net, full[res.BaseSeq:], res.ObservedTrace)
		if err != nil {
			return 0, err
		}
		got = rep.Checksum
	}
	if got != want {
		return 0, fmt.Errorf("naspipe: verify: weights %016x diverge from sequential reference %016x", got, want)
	}
	return got, nil
}
