package engine_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"naspipe/internal/data"
	"naspipe/internal/engine"
	"naspipe/internal/fault"
	"naspipe/internal/sched"
	"naspipe/internal/supernet"
	"naspipe/internal/telemetry"
	"naspipe/internal/train"
)

// faultTrainCfg is the numeric ground-truth config the fault tests share.
func faultTrainCfg(cfg engine.Config) train.Config {
	return train.Config{Space: cfg.Space, Dim: 8, Seed: cfg.Seed,
		BatchSize: 2, LR: 0.05, Dataset: data.WNMT}
}

// TestConcurrentMessageFaultsPreserveTrace injects drop/delay/duplicate
// message faults at aggressive rates and checks the CSP guarantee is
// untouched: the run completes, the canonical trace replays to the
// sequential checksum, and every fault family actually fired (the rates
// are high enough that zero occurrences would mean the wiring is dead).
func TestConcurrentMessageFaultsPreserveTrace(t *testing.T) {
	for _, d := range []int{2, 4} {
		t.Run(fmt.Sprintf("gpus=%d", d), func(t *testing.T) {
			cfg := ccCfg(d, false)
			cfg.Faults = &fault.Plan{
				Seed: 13, DropRate: 0.15, DelayRate: 0.1, DupRate: 0.1,
			}
			bus := telemetry.NewBus(0)
			cfg.Telemetry = bus
			res, err := engine.RunConcurrent(context.Background(), cfg)
			if err != nil {
				t.Fatalf("faulted run: %v", err)
			}
			if res.Completed != cfg.NumSubnets {
				t.Fatalf("completed %d/%d", res.Completed, cfg.NumSubnets)
			}
			tc := faultTrainCfg(cfg)
			subs := supernet.Sample(cfg.Space, cfg.Seed, cfg.NumSubnets)
			want := train.Sequential(tc, subs).Checksum
			got, err := train.Replay(tc, subs, res.Trace)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if got.Checksum != want {
				t.Fatalf("faulted run's trace replays to %x, sequential reference %x", got.Checksum, want)
			}
			snap := bus.Snapshot()
			// 2(d-1)n message sends at these rates: P(any family at zero) is
			// negligible for d >= 2 with n = 18 and the seeded stream fixed.
			if snap.FaultDrops == 0 || snap.FaultDelays == 0 || snap.FaultDups == 0 {
				t.Fatalf("fault families silent: drops=%d delays=%d dups=%d",
					snap.FaultDrops, snap.FaultDelays, snap.FaultDups)
			}
			if snap.Crashes != 0 {
				t.Fatalf("unexpected crashes: %d", snap.Crashes)
			}
		})
	}
}

// TestConcurrentTargetedCrash pins the crash contract: the run returns a
// typed *fault.CrashError naming the injected site, the partial result
// has Deadlock set, and exactly one OpFaultCrash event is on the bus.
func TestConcurrentTargetedCrash(t *testing.T) {
	cfg := ccCfg(4, false)
	cfg.Faults = &fault.Plan{
		Seed:      1,
		CrashTask: &fault.TaskRef{Stage: 2, Seq: 9, Kind: fault.KindForward},
	}
	bus := telemetry.NewBus(0)
	cfg.Telemetry = bus
	res, err := engine.RunConcurrent(context.Background(), cfg)
	if err == nil {
		t.Fatal("crash plan completed without error")
	}
	var ce *fault.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *fault.CrashError", err)
	}
	if ce.Stage != 2 || ce.Seq != 9 || ce.Kind != fault.KindForward || ce.Incarnation != 0 {
		t.Fatalf("crash error names wrong site: %+v", *ce)
	}
	if !res.Deadlock {
		t.Fatal("partial result does not mark Deadlock")
	}
	if res.Completed >= cfg.NumSubnets {
		t.Fatalf("crashed run claims completion: %d", res.Completed)
	}
	if got := bus.Count(telemetry.OpFaultCrash); got != 1 {
		t.Fatalf("OpFaultCrash count %d, want 1", got)
	}
}

// TestConcurrentFetchFaultsDegradeNotHang forces every prefetch copy to
// fail: the run must still complete with the correct trace — acquires
// fall back to synchronous fetches (misses), never hangs.
func TestConcurrentFetchFaultsDegradeNotHang(t *testing.T) {
	cfg := ccCfg(4, false)
	cfg.ConcurrentMem = engine.MemPlaneConfig{CacheFactor: 3}
	cfg.Faults = &fault.Plan{Seed: 5, FetchFailRate: 1}
	bus := telemetry.NewBus(0)
	cfg.Telemetry = bus
	res, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatalf("fetch-fault run: %v", err)
	}
	if res.Completed != cfg.NumSubnets {
		t.Fatalf("completed %d/%d", res.Completed, cfg.NumSubnets)
	}
	if bus.Count(telemetry.OpFaultFetch) == 0 {
		t.Fatal("no fetch faults recorded at rate 1")
	}
	// Every async copy failed: no prefetch may ever land — all residency
	// comes from synchronous fetches (misses), and the failures are
	// surfaced as dropped prefetches, keeping the slowdown attributable.
	for _, st := range res.CacheStats {
		if st.Prefetches != 0 {
			t.Fatalf("stage %d landed %d prefetches with FetchFailRate=1", st.Stage, st.Prefetches)
		}
	}
	if snap := bus.Snapshot(); snap.CacheMisses == 0 {
		t.Fatal("no cache misses recorded; acquires cannot all have hit")
	}
	if res.DroppedPrefetches == 0 {
		t.Fatal("failed fetches were not surfaced as dropped prefetches")
	}
}

// cutRecorder captures consistency cuts in memory.
type cutRecorder struct {
	cuts []fault.Cut
}

func (r *cutRecorder) Snapshot(c fault.Cut) error {
	r.cuts = append(r.cuts, c)
	return nil
}

// TestConcurrentCheckpointCuts checks the recorder protocol: cursors are
// non-decreasing, the final cut covers the whole stream, and every cut's
// finished-gap list sits at or above its cursor.
func TestConcurrentCheckpointCuts(t *testing.T) {
	cfg := ccCfg(4, true)
	rec := &cutRecorder{}
	cfg.Checkpoint = rec
	res, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if res.Completed != cfg.NumSubnets {
		t.Fatalf("completed %d/%d", res.Completed, cfg.NumSubnets)
	}
	if len(rec.cuts) == 0 {
		t.Fatal("no cuts recorded")
	}
	prev := -1
	for _, cut := range rec.cuts {
		if cut.Cursor < prev {
			t.Fatalf("cut cursor regressed: %d after %d", cut.Cursor, prev)
		}
		prev = cut.Cursor
		for _, f := range cut.Finished {
			if f < cut.Cursor {
				t.Fatalf("cut %d lists finished seq %d below its own cursor", cut.Cursor, f)
			}
		}
	}
	if final := rec.cuts[len(rec.cuts)-1]; final.Cursor != cfg.NumSubnets {
		t.Fatalf("final cut cursor %d, want %d", final.Cursor, cfg.NumSubnets)
	}
}

// failingRecorder errors on the Nth snapshot.
type failingRecorder struct {
	n     int
	calls int
}

func (r *failingRecorder) Snapshot(fault.Cut) error {
	r.calls++
	if r.calls >= r.n {
		return errors.New("disk full")
	}
	return nil
}

func TestConcurrentRecorderFailureAborts(t *testing.T) {
	cfg := ccCfg(2, false)
	cfg.Checkpoint = &failingRecorder{n: 3}
	_, err := engine.RunConcurrent(context.Background(), cfg)
	if err == nil {
		t.Fatal("recorder failure not surfaced")
	}
	if got := err.Error(); got != "engine: checkpoint recorder: disk full" {
		t.Fatalf("unexpected error: %q", got)
	}
}

// TestConcurrentSeqBaseOffsets runs a renumbered suffix under SeqBase and
// checks every externally visible surface carries global sequence IDs:
// the canonical trace, the observed trace, and telemetry events.
func TestConcurrentSeqBaseOffsets(t *testing.T) {
	cfg := ccCfg(2, false)
	full := supernet.Sample(cfg.Space, cfg.Seed, cfg.NumSubnets)
	const base = 7
	suffix := make([]supernet.Subnet, 0, len(full)-base)
	for i, sub := range full[base:] {
		sub.Seq = i // the engine wants a locally 0-based stream
		suffix = append(suffix, sub)
	}
	cfg.Subnets = suffix
	cfg.SeqBase = base
	bus := telemetry.NewBus(0)
	cfg.Telemetry = bus
	res, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatalf("suffix run: %v", err)
	}
	if res.BaseSeq != base {
		t.Fatalf("BaseSeq %d, want %d", res.BaseSeq, base)
	}
	if res.Completed != len(suffix) {
		t.Fatalf("completed %d/%d", res.Completed, len(suffix))
	}
	for _, ev := range res.Trace.Events {
		if ev.Subnet < base || ev.Subnet >= base+len(suffix) {
			t.Fatalf("canonical trace carries local seq %d (base %d)", ev.Subnet, base)
		}
	}
	for _, ev := range res.ObservedTrace.Events {
		if ev.Subnet < base {
			t.Fatalf("observed trace carries local seq %d (base %d)", ev.Subnet, base)
		}
	}
	for _, ev := range bus.Events() {
		if ev.Subnet >= 0 && int(ev.Subnet) < base {
			t.Fatalf("telemetry event %v carries local seq %d (base %d)", ev.Op, ev.Subnet, base)
		}
	}

	// The suffix trace must replay onto a sequential-prefix net to the
	// uninterrupted run's exact weights — the resume composition law.
	tc := faultTrainCfg(cfg)
	want := train.Sequential(tc, full).Checksum
	prefix := train.Sequential(tc, full[:base])
	got, err := train.ReplayOn(tc, prefix.Net, full[base:], res.Trace)
	if err != nil {
		t.Fatalf("suffix replay: %v", err)
	}
	if got.Checksum != want {
		t.Fatalf("prefix+suffix composition %x != uninterrupted %x", got.Checksum, want)
	}
}

// TestSimulatedPlaneRejectsFaultConfig pins the error contract: the
// discrete-event plane refuses fault/checkpoint configuration instead of
// silently ignoring it.
func TestSimulatedPlaneRejectsFaultConfig(t *testing.T) {
	base := ccCfg(2, false)
	pol, err := sched.New("naspipe")
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Faults = &fault.Plan{DropRate: 0.5}
	if _, err := engine.RunContext(context.Background(), cfg, pol); err == nil {
		t.Fatal("simulated plane accepted a fault plan")
	}
	cfg = base
	cfg.Checkpoint = &cutRecorder{}
	if _, err := engine.RunContext(context.Background(), cfg, pol); err == nil {
		t.Fatal("simulated plane accepted a checkpoint recorder")
	}
	cfg = base
	cfg.SeqBase = 3
	if _, err := engine.RunContext(context.Background(), cfg, pol); err == nil {
		t.Fatal("simulated plane accepted SeqBase")
	}
}

// TestFileRecorderEndToEnd drives the real file recorder through a
// concurrent run and resumes state from the file it wrote.
func TestFileRecorderEndToEnd(t *testing.T) {
	cfg := ccCfg(2, false)
	path := filepath.Join(t.TempDir(), "ck.bin")
	ident := fault.Checkpoint{
		Space: cfg.Space.Name, Seed: cfg.Seed, GPUs: 2, NumSubnets: cfg.NumSubnets,
	}
	rec := fault.NewFileRecorder(path, ident, 4, nil)
	if err := rec.Init(); err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = rec
	if _, err := engine.RunConcurrent(context.Background(), cfg); err != nil {
		t.Fatalf("run: %v", err)
	}
	ck, err := fault.Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if ck.Cursor != cfg.NumSubnets {
		t.Fatalf("final checkpoint cursor %d, want %d", ck.Cursor, cfg.NumSubnets)
	}
	if ck.Space != cfg.Space.Name || ck.Seed != cfg.Seed {
		t.Fatalf("checkpoint identity drifted: %+v", ck)
	}
}
