// Command naspipe-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	naspipe-bench -exp table2            # one experiment
//	naspipe-bench -exp table2,figure5    # several
//	naspipe-bench -exp all               # the whole evaluation (§5)
//	naspipe-bench -exp all -quick        # reduced sizes for a fast pass
//	naspipe-bench -exp all -parallel 4   # fan experiments over 4 workers
//	naspipe-bench -concurrent            # smoke the goroutine-per-stage plane
//
// The smoke's run flags are the shared set from internal/clicfg, parsed
// into the canonical naspipe.JobSpec — the same knobs, names, and
// validation as naspipe-train and the naspiped service API. The default
// smoke workload is NLP.c3 re-geometried to 8 blocks × 3 choices, 48
// subnets (override with -space/-scale-blocks/-scale-choices/-subnets).
//
// The concurrent smoke doubles as the telemetry showcase:
//
//	naspipe-bench -concurrent -trace-out trace.json   # Chrome/Perfetto trace
//	naspipe-bench -concurrent -events-out run.jsonl   # replayable event log
//	naspipe-bench -concurrent -debug-addr :6060       # pprof + live counters
//	naspipe-bench -concurrent -progress 200ms         # periodic counter lines
//	naspipe-bench -concurrent -overhead               # telemetry cost gate
//
// The concurrent smoke also drives the fault-injection plane and the
// crash-consistent checkpoint/resume path:
//
//	naspipe-bench -concurrent -faults "seed=7,drop=0.1,delay=0.05"
//	naspipe-bench -concurrent -faults "crashat=2:9:F" -checkpoint run.ckpt
//	naspipe-bench -concurrent -checkpoint run.ckpt -resume
//
// An injected crash exits with code 3 after persisting the checkpoint
// (when -checkpoint is set), so a shell loop can resume until clean; a
// resumed run that completes verifies its suffix trace composes with
// the committed prefix to the uninterrupted sequential result, bitwise.
// With -supervise the supervision plane does the resume loop in-process
// (crashes and watchdog-diagnosed stalls auto-resume from the latest
// checkpoint) and the completed run is verified the same way:
//
//	naspipe-bench -concurrent -faults "seed=7,crash=0.02" -checkpoint run.ckpt -supervise
//
// Exit codes are the naspipe.ExitCode contract: 0 complete+verified,
// 1 run/verification failure (including supervisor give-up), 2 usage,
// 3 resumable (injected crash without -supervise, or SIGINT/SIGTERM
// with a valid checkpoint).
//
// The -parallel fan-out changes wall-clock time only: reports are
// assembled in canonical experiment order and are byte-identical to a
// serial run. Ctrl-C cancels cooperatively — the partial report printed
// so far is flushed before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"naspipe"
	"naspipe/internal/clicfg"
	"naspipe/internal/metrics"
	"naspipe/internal/telemetry"
)

func main() {
	os.Exit(int(run()))
}

func run() naspipe.ExitCode {
	f := clicfg.Register(flag.CommandLine, clicfg.Defaults{Space: "NLP.c3", GPUs: 8})
	var (
		exps       = flag.String("exp", "all", "comma-separated experiment names, or 'all' (known: "+strings.Join(naspipe.ExperimentNames(), ", ")+")")
		quick      = flag.Bool("quick", false, "reduced sizes for a fast smoke pass")
		par        = flag.Int("parallel", 0, "experiment fan-out workers (0 = GOMAXPROCS, 1 = serial)")
		concurrent = flag.Bool("concurrent", false, "run a goroutine-per-stage CSP smoke instead of experiments")
		overhead   = flag.Bool("overhead", false, "with -concurrent: measure telemetry overhead (off vs on) and fail above 5%")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel between tasks; a checkpointed run exits
	// resumable (3) with its committed frontier already on disk.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if f.DebugAddr != "" {
		// The bus is swapped in by whichever mode runs; serve immediately so
		// pprof is reachable even during long experiment sweeps.
		addr, shutdown, err := telemetry.ServeDebug(f.DebugAddr, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "debug server: %v\n", err)
			return naspipe.ExitUsage
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/ (pprof, vars, telemetry)\n", addr)
	}

	if f.Resume && f.Checkpoint == "" {
		fmt.Fprintln(os.Stderr, "naspipe-bench: -resume requires -checkpoint")
		return naspipe.ExitUsage
	}
	if f.ConcurrentRequested() && !*concurrent {
		fmt.Fprintln(os.Stderr, "naspipe-bench: -faults/-checkpoint/-resume/-supervise require -concurrent")
		return naspipe.ExitUsage
	}
	if *concurrent {
		if *overhead {
			return overheadGate(ctx, f)
		}
		return concurrentSmoke(ctx, f)
	}

	o := naspipe.DefaultExperimentOptions()
	if *quick {
		o = naspipe.QuickExperimentOptions()
	}
	o.Seed = f.Seed
	o.GPUs = f.GPUs
	o.Parallelism = *par
	if f.Subnets > 0 {
		o.Subnets = f.Subnets
	}

	if *exps == "all" {
		t0 := time.Now()
		out, err := naspipe.AllExperimentsContext(ctx, o)
		fmt.Print(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "all: %v\n", err)
			return naspipe.ExitFailure
		}
		fmt.Printf("[all %d experiments completed in %v]\n", len(naspipe.ExperimentNames()), time.Since(t0).Round(time.Millisecond))
		return naspipe.ExitOK
	}

	exit := naspipe.ExitOK
	for _, name := range strings.Split(*exps, ",") {
		name = strings.TrimSpace(name)
		t0 := time.Now()
		out, err := naspipe.ExperimentContext(ctx, name, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			exit = naspipe.ExitFailure
			continue
		}
		fmt.Print(out)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}
	return exit
}

// smokeSpec assembles the concurrent smoke's JobSpec from the shared
// flags: the canonical workload is NLP.c3 scaled to 8×3 with 48 subnets
// unless overridden, with the numeric training plane attached whenever
// a checkpoint is kept (prefix checksums + resume verification).
func smokeSpec(f *clicfg.Flags, trace bool) naspipe.JobSpec {
	spec := f.Spec(naspipe.ExecutorConcurrent.String())
	if spec.ScaleBlocks == 0 && spec.ScaleChoices == 0 {
		spec.ScaleBlocks, spec.ScaleChoices = 8, 3
	}
	if spec.Subnets == 0 {
		spec.Subnets = 48
	}
	spec.Trace = &trace
	if spec.Checkpoint != "" {
		spec.Train = &naspipe.TrainSpec{Dim: 8, BatchSize: 2, LR: 0.05}
	}
	return spec
}

// runSpec builds the runner for spec and executes it, optionally
// publishing to bus, resuming when the flags say so.
func runSpec(ctx context.Context, f *clicfg.Flags, spec naspipe.JobSpec, bus *telemetry.Bus) (naspipe.Result, error) {
	opts, cfg, err := naspipe.FromSpec(spec)
	if err != nil {
		return naspipe.Result{}, err
	}
	if bus != nil {
		opts = append(opts, naspipe.WithTelemetry(bus))
	}
	r, err := naspipe.NewRunner(opts...)
	if err != nil {
		return naspipe.Result{}, err
	}
	if f.Resume {
		return r.Resume(ctx, cfg)
	}
	return r.Run(ctx, cfg)
}

// runSupervisedSpec executes the smoke workload under the supervision
// plane: crashes and watchdog-diagnosed stalls auto-resume in-process
// from the checkpoint, and health transitions land on the same
// telemetry bus as the engine events.
func runSupervisedSpec(ctx context.Context, f *clicfg.Flags, spec naspipe.JobSpec, bus *telemetry.Bus) (naspipe.Result, *naspipe.SuperviseReport, error) {
	opts, cfg, err := naspipe.FromSpec(spec)
	if err != nil {
		return naspipe.Result{}, nil, err
	}
	if bus != nil {
		opts = append(opts, naspipe.WithTelemetry(bus))
	}
	r, err := naspipe.NewRunner(opts...)
	if err != nil {
		return naspipe.Result{}, nil, err
	}
	sc, _ := spec.SuperviseConfig()
	sc.Telemetry = bus
	sc.Log = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if f.Resume {
		return r.ResumeSupervised(ctx, cfg, sc)
	}
	return r.RunSupervised(ctx, cfg, sc)
}

// concurrentSmoke exercises the goroutine-per-stage execution plane once
// and prints its verification verdict, contention profile, and — with the
// cache enabled — the memory-context profile. With the predictor on, a
// hit rate at or below zero is a regression and fails the smoke.
func concurrentSmoke(ctx context.Context, f *clicfg.Flags) naspipe.ExitCode {
	spec := smokeSpec(f, true)
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return naspipe.ExitUsage
	}
	var bus *telemetry.Bus
	if f.TraceOut != "" || f.EventsOut != "" || f.DebugAddr != "" || f.Progress > 0 {
		bus = telemetry.NewBus(0)
		if f.DebugAddr != "" {
			telemetry.PublishBus(bus)
		}
	}
	stopProgress := telemetry.StartProgress(os.Stderr, bus, f.Progress)

	t0 := time.Now()
	var (
		res naspipe.Result
		rep *naspipe.SuperviseReport
		err error
	)
	if spec.Supervise != nil {
		res, rep, err = runSupervisedSpec(ctx, f, spec, bus)
	} else {
		res, err = runSpec(ctx, f, spec, bus)
	}
	stopProgress()
	if err != nil {
		var crash *naspipe.CrashError
		var giveUp *naspipe.GiveUpError
		switch {
		case errors.As(err, &giveUp):
			fmt.Fprintf(os.Stderr, "concurrent: supervisor gave up: %v\n", err)
			if bus != nil {
				exportTelemetry(bus, f.TraceOut, f.EventsOut)
			}
			return naspipe.ExitFailure
		case errors.As(err, &crash):
			fmt.Fprintf(os.Stderr, "concurrent: injected crash: %v\n", err)
			if spec.Checkpoint != "" {
				printBenchCheckpoint(spec.Checkpoint, "rerun with -resume")
			}
			if bus != nil {
				// The fault timeline up to the crash is the artifact that
				// matters; export it even though the run died.
				exportTelemetry(bus, f.TraceOut, f.EventsOut)
			}
			return naspipe.ExitResumable
		case ctx.Err() != nil:
			fmt.Fprintf(os.Stderr, "concurrent: interrupted: %v\n", err)
			if spec.Checkpoint != "" {
				printBenchCheckpoint(spec.Checkpoint, "rerun with -resume (or -supervise -resume)")
				if bus != nil {
					exportTelemetry(bus, f.TraceOut, f.EventsOut)
				}
				return naspipe.ExitResumable
			}
			return naspipe.ExitFailure
		default:
			fmt.Fprintf(os.Stderr, "concurrent: %v\n", err)
			return naspipe.ExitFailure
		}
	}
	fmt.Printf("concurrent CSP plane: %d subnets, %d stages, %v wall clock\n",
		res.Completed, res.D, time.Since(t0).Round(time.Microsecond))
	if rep != nil {
		fmt.Printf("supervised run: %d restarts, %d watchdog fires, final state %s, final D=%d\n",
			rep.Restarts, rep.WatchdogFires, rep.FinalState, rep.FinalGPUs)
		if len(rep.ElasticSteps) > 0 {
			fmt.Printf("elastic depth steps: %v\n", rep.ElasticSteps)
		}
	}
	if res.ObservedTrace != nil {
		fmt.Printf("per-layer access order verified against the sequential reference (%d observed events)\n",
			len(res.ObservedTrace.Events))
	}
	if f.Resume || spec.Supervise != nil {
		tc, ok := spec.TrainConfig()
		cfg, cerr := spec.Config()
		if !ok || cerr != nil {
			fmt.Fprintln(os.Stderr, "resume verification: no training plane attached (set -checkpoint)")
			return naspipe.ExitFailure
		}
		if _, verr := naspipe.VerifyAgainstSequential(tc, cfg, res); verr != nil {
			fmt.Fprintf(os.Stderr, "resume verification: %v\n", verr)
			return naspipe.ExitFailure
		}
		fmt.Printf("resume verified: prefix [0,%d) + replayed suffix == uninterrupted sequential weights, bitwise\n", res.BaseSeq)
	}
	fmt.Print(metrics.ContentionTable(res.Contention))
	if res.CacheStats != nil {
		fmt.Print(metrics.CacheTable(res.CacheStats))
		fmt.Printf("cache hit rate %s (budget %s of %s supernet, predictor %v)\n",
			metrics.Percent(res.CacheHitRate), metrics.Gigabytes(res.CachedParamBytes),
			metrics.Gigabytes(res.CPUMemBytes), spec.Predictor)
		if spec.Predictor && res.CacheHitRate <= 0 {
			fmt.Fprintf(os.Stderr, "concurrent: predictor enabled but cache hit rate is %v\n", res.CacheHitRate)
			return naspipe.ExitFailure
		}
	}
	if bus != nil {
		fmt.Println("telemetry: " + bus.Snapshot().String())
		if code := exportTelemetry(bus, f.TraceOut, f.EventsOut); code != 0 {
			return naspipe.ExitCode(code)
		}
	}
	return naspipe.ExitOK
}

// printBenchCheckpoint reports the on-disk checkpoint a resumable exit
// leaves behind, with the flag hint for continuing the run.
func printBenchCheckpoint(path, hint string) {
	ck, err := naspipe.LoadCheckpoint(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkpoint: %s unreadable: %v\n", path, err)
		return
	}
	fmt.Fprintf(os.Stderr, "checkpoint: %s at cursor %d/%d, incarnation %d — %s\n",
		path, ck.Cursor, ck.NumSubnets, ck.Incarnation, hint)
}

// exportTelemetry writes the captured stream to the requested files; the
// Chrome trace is validated after writing so a malformed export fails the
// command instead of failing later in the browser.
func exportTelemetry(bus *telemetry.Bus, traceOut, eventsOut string) int {
	if dropped := bus.Dropped(); dropped > 0 {
		fmt.Fprintf(os.Stderr, "telemetry: ring dropped %d events; exports are truncated (raise the bus capacity)\n", dropped)
	}
	lines, err := telemetry.ExportFiles(bus, traceOut, eventsOut)
	for _, l := range lines {
		fmt.Println(l)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// overheadRuns is the min-of-N repetition count for the overhead gate;
// minimums discard scheduler noise, which on this plane dwarfs the
// telemetry cost being measured.
const overheadRuns = 3

// overheadGate times the smoke config with telemetry disabled and
// enabled and fails if the enabled run is more than 5% slower. The gate
// config adds modeled kernel timings (TimingJitter: each task really
// sleeps its jittered duration): against the bare smoke run — whose
// "compute" is a single scheduler yield, i.e. zero-length tasks — any
// fixed per-event cost is unboundedly large in relative terms, which
// measures the degenerate baseline rather than the telemetry.
func overheadGate(ctx context.Context, f *clicfg.Flags) naspipe.ExitCode {
	spec := smokeSpec(f, false)
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return naspipe.ExitUsage
	}
	minRun := func(bus func() *telemetry.Bus) (time.Duration, error) {
		best := time.Duration(-1)
		for i := 0; i < overheadRuns; i++ {
			opts, cfg, err := naspipe.FromSpec(spec)
			if err != nil {
				return 0, err
			}
			cfg.TimingJitter = 1.0
			cfg.JitterSeed = spec.Seed
			if b := bus(); b != nil {
				opts = append(opts, naspipe.WithTelemetry(b))
			}
			r, err := naspipe.NewRunner(opts...)
			if err != nil {
				return 0, err
			}
			t0 := time.Now()
			if _, err := r.Run(ctx, cfg); err != nil {
				return 0, err
			}
			if d := time.Since(t0); best < 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	off, err := minRun(func() *telemetry.Bus { return nil })
	if err != nil {
		fmt.Fprintf(os.Stderr, "overhead (telemetry off): %v\n", err)
		return naspipe.ExitFailure
	}
	on, err := minRun(func() *telemetry.Bus { return telemetry.NewBus(0) })
	if err != nil {
		fmt.Fprintf(os.Stderr, "overhead (telemetry on): %v\n", err)
		return naspipe.ExitFailure
	}
	pct := 100 * (float64(on)/float64(off) - 1)
	fmt.Printf("telemetry overhead: off=%v on=%v (%+.1f%%, min of %d runs each, gate 5%%)\n",
		off.Round(time.Microsecond), on.Round(time.Microsecond), pct, overheadRuns)
	if pct > 5 {
		fmt.Fprintf(os.Stderr, "overhead: telemetry costs %.1f%% on the smoke config (gate: 5%%)\n", pct)
		return naspipe.ExitFailure
	}
	return naspipe.ExitOK
}
