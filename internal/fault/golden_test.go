package fault

import (
	"encoding/hex"
	"reflect"
	"strings"
	"testing"
)

// goldenCheckpointHex pins the version-1 checkpoint wire format byte for
// byte. If this test fails, the format changed: bump ckptVersion and
// keep a decoder for version 1, or resume breaks across PRs.
const goldenCheckpointHex = "4e50434b010b004e4c502e63335b3878335d2a00000000000000040000003000" +
	"000011000000020000003412fecaefbeadde07000000000000000b0000000000" +
	"0000020000001300000015000000031897ce5b86e5b5"

func TestCheckpointGoldenBytes(t *testing.T) {
	c := sampleCheckpoint()
	got := hex.EncodeToString(c.Encode())
	if got != goldenCheckpointHex {
		t.Fatalf("checkpoint wire format drifted from the pinned version-1 golden:\n got %s\nwant %s\n"+
			"(bump ckptVersion if this is intentional)", got, goldenCheckpointHex)
	}
	// The golden bytes must also decode — guards against pinning a
	// format the decoder can't read.
	raw, err := hex.DecodeString(goldenCheckpointHex)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(raw)
	if err != nil {
		t.Fatalf("golden bytes do not decode: %v", err)
	}
	if !reflect.DeepEqual(dec, c) {
		t.Fatalf("golden decode mismatch:\n got %+v\nwant %+v", dec, c)
	}
}

func TestCheckpointGoldenLayout(t *testing.T) {
	raw, _ := hex.DecodeString(goldenCheckpointHex)
	if !strings.HasPrefix(string(raw), ckptMagic) {
		t.Fatalf("golden does not start with magic %q", ckptMagic)
	}
	if raw[4] != ckptVersion {
		t.Fatalf("golden version byte %d, want %d", raw[4], ckptVersion)
	}
}
