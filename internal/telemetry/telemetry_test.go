package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestDisabledBusIsFreeAndNilSafe(t *testing.T) {
	var b *Bus
	if b.Enabled() {
		t.Fatal("nil bus reports enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		b.Emit(Event{Op: OpTaskStart, Phase: PhaseBegin, Stage: 1, Subnet: 2})
		b.EmitAt(7, Event{Op: OpTaskComplete, Phase: PhaseEnd})
	})
	if allocs != 0 {
		t.Fatalf("disabled bus allocates %v per emit", allocs)
	}
	if b.Len() != 0 || b.Dropped() != 0 || b.Now() != 0 || b.Events() != nil {
		t.Fatal("nil bus leaked state")
	}
	if s := b.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("nil bus snapshot not zero: %+v", s)
	}
}

// TestRingDropCountingUnderRace hammers a tiny ring from many goroutines
// (run with -race): every emission must land in either the buffer or the
// drop counter, never blocking and never losing count, and the live op
// counters must see all of them.
func TestRingDropCountingUnderRace(t *testing.T) {
	const (
		capacity  = 64
		writers   = 8
		perWriter = 500
	)
	b := NewBus(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Hit/miss events are Arg-weighted (layer count per acquire).
				b.Emit(Event{Op: OpCacheHit, Phase: PhaseInstant, Stage: int32(w), Subnet: int32(i), Kind: KindNone, Arg: 1})
			}
		}(w)
	}
	wg.Wait()
	total := writers * perWriter
	if got := len(b.Events()); got != capacity {
		t.Fatalf("ring kept %d events, want capacity %d", got, capacity)
	}
	if got := int(b.Dropped()); got != total-capacity {
		t.Fatalf("dropped %d, want %d", got, total-capacity)
	}
	if got := b.Count(OpCacheHit); got != int64(total) {
		t.Fatalf("live counter saw %d, want %d (counters must advance past a full ring)", got, total)
	}
	if s := b.Snapshot(); s.Emitted != uint64(total) || s.CacheHits != int64(total) {
		t.Fatalf("snapshot disagrees: %+v", s)
	}
}

func TestSnapshotProgressLine(t *testing.T) {
	b := NewBus(16)
	b.Emit(Event{Op: OpTaskStart, Phase: PhaseBegin, Subnet: 0, Kind: KindForward})
	b.Emit(Event{Op: OpCacheHit, Phase: PhaseInstant, Subnet: -1, Kind: KindNone, Arg: 1})
	b.Emit(Event{Op: OpCacheMiss, Phase: PhaseInstant, Subnet: -1, Kind: KindNone, Arg: 1})
	b.EmitAt(b.Now(), Event{Op: OpCacheStall, Phase: PhaseInstant, Arg: 3_000_000})
	s := b.Snapshot()
	if s.Started != 1 || s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Fatalf("counters wrong: %+v", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", got)
	}
	if (Snapshot{}).HitRate() != -1 {
		t.Fatal("no-access hit rate must be the -1 N/A sentinel")
	}
	line := s.String()
	for _, want := range []string{"tasks 1/0", "cache 50.0% hit", "3.0 stall ms", "events 4 (0 dropped)"} {
		if !strings.Contains(line, want) {
			t.Fatalf("progress line %q missing %q", line, want)
		}
	}
}

func TestOpAndPhaseWireNamesRoundTrip(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Fatalf("op %v does not round-trip (got %v ok=%v)", op, got, ok)
		}
	}
	for _, ph := range []Phase{PhaseInstant, PhaseBegin, PhaseEnd, PhaseFlowBegin, PhaseFlowEnd} {
		got, ok := PhaseByName(ph.String())
		if !ok || got != ph {
			t.Fatalf("phase %v does not round-trip", ph)
		}
	}
	if _, ok := OpByName("nope"); ok {
		t.Fatal("unknown op resolved")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{TsNs: 10, Op: OpTaskStart, Phase: PhaseBegin, Stage: 0, Worker: WorkerStage, Subnet: 3, Kind: KindForward},
		{TsNs: 20, Op: OpCacheStall, Phase: PhaseInstant, Stage: 1, Worker: WorkerMem, Subnet: -1, Kind: KindNone, Arg: 42},
		{TsNs: 30, Op: OpTransferSend, Phase: PhaseFlowBegin, Stage: 0, Worker: WorkerStage, Subnet: 3, Kind: KindBackward, Arg: FlowID(KindBackward, 3, 0)},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("event %d changed: %+v -> %+v", i, in[i], out[i])
		}
	}
	if _, err := ReadJSONL(strings.NewReader(`{"op":"made-up","ph":"i"}`)); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestFlowIDDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for _, kind := range []int8{KindForward, KindBackward} {
		for subnet := int32(0); subnet < 20; subnet++ {
			for stage := int32(0); stage < 8; stage++ {
				id := FlowID(kind, subnet, stage)
				if seen[id] {
					t.Fatalf("flow id collision at kind=%d subnet=%d stage=%d", kind, subnet, stage)
				}
				seen[id] = true
			}
		}
	}
}
