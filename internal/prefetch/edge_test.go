package prefetch

import (
	"sync"
	"testing"
	"time"
)

// TestReleaseAfterEvict pins the lock/evict edge cases: an evicted
// layer's Release is a no-op (no resurrection, no panic), a locked
// layer survives Evict until its last Release, and byte accounting
// balances back to zero.
func TestReleaseAfterEvict(t *testing.T) {
	c := New(10000, bw, 0)

	// Acquire twice: the lock count must hold the entry through both an
	// Evict and the first Release.
	c.Acquire(ids(1), constBytes(1000))
	c.Acquire(ids(1), constBytes(1000))
	c.Evict(ids(1))
	if !c.Resident(1) {
		t.Fatal("evict removed a locked layer")
	}
	c.Release(ids(1))
	c.Evict(ids(1))
	if !c.Resident(1) {
		t.Fatal("evict removed a layer still locked once")
	}
	c.Release(ids(1))
	c.Evict(ids(1))
	if c.Resident(1) {
		t.Fatal("evict left an unlocked layer resident")
	}

	// Release after evict: the entry is gone; must not panic, must not
	// recreate it, must not disturb accounting.
	c.Release(ids(1))
	if c.Resident(1) {
		t.Fatal("release resurrected an evicted layer")
	}
	if used := c.Used(); used != 0 {
		t.Fatalf("byte accounting drifted: used %d after full evict", used)
	}

	// Over-releasing (more Releases than Acquires) must also stay a
	// no-op for a live entry.
	c.Acquire(ids(2), constBytes(500))
	c.Release(ids(2))
	c.Release(ids(2))
	c.Evict(ids(2))
	if c.Resident(2) || c.Used() != 0 {
		t.Fatalf("over-release corrupted lock state: resident=%v used=%d", c.Resident(2), c.Used())
	}
}

// TestAcquireRacesDeadlineLanding races Acquire against an in-flight
// prefetch deadline landing, with a concurrent evictor — the exact
// interleaving the wall-clock plane hits when a stage activates a layer
// the prefetcher is still copying. Run under -race. Every acquire must
// classify as exactly one of hit/miss, no acquire may hang, and the
// accounting must balance once everything is released and evicted.
func TestAcquireRacesDeadlineLanding(t *testing.T) {
	// scale 1 with bw 1000 B/ms: a 1000-byte copy takes ~1ms, so some
	// acquires land before the deadline (late-prefetch misses) and some
	// after (hits).
	c := New(-1, bw, 1)
	const workers = 8
	c.Prefetch(1, 1000)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			time.Sleep(time.Duration(w) * 300 * time.Microsecond)
			c.Acquire(ids(1), constBytes(1000))
			c.Release(ids(1))
		}(w)
	}
	// Evictor racing the lock state: only ever removes unlocked entries.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			c.Evict(ids(1))
			time.Sleep(50 * time.Microsecond)
		}
	}()
	wg.Wait()

	st := c.Stats()
	if st.Hits+st.Misses != workers {
		t.Fatalf("hit/miss accounting lost acquires: hits=%d misses=%d want total %d",
			st.Hits, st.Misses, workers)
	}
	c.Evict(ids(1))
	if used := c.Used(); used != 0 {
		t.Fatalf("byte accounting drifted after final evict: used %d", used)
	}
}

// TestCacheFactorOneThrash drives a capacity-of-one cache through a
// stream of distinct layers — pure thrash, the cache-factor-1
// configuration. Every access must miss, every admission must force the
// previous resident out, and residency must never exceed capacity once
// the accesses are sequential and released.
func TestCacheFactorOneThrash(t *testing.T) {
	const layerBytes = 1000
	c := New(layerBytes, bw, 0) // room for exactly one layer, instant copies
	const n = 32
	for i := 0; i < n; i++ {
		c.Acquire(ids(i), constBytes(layerBytes))
		if used := c.Used(); used > layerBytes {
			t.Fatalf("thrash exceeded capacity: used %d at layer %d", used, i)
		}
		c.Release(ids(i))
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != n {
		t.Fatalf("thrash stream must miss every access: hits=%d misses=%d", st.Hits, st.Misses)
	}
	if st.EvictionsForced != n-1 {
		t.Fatalf("each admission must evict its predecessor: %d forced evictions, want %d",
			st.EvictionsForced, n-1)
	}
	// Prefetching into the thrashing cache while the resident layer is
	// locked: no room can be made, so the prefetch must drop — never
	// block, never evict the locked layer.
	c.Acquire(ids(100), constBytes(layerBytes))
	c.Prefetch(101, layerBytes)
	if c.Resident(101) {
		t.Fatal("prefetch displaced a locked layer")
	}
	if got := c.Stats().DroppedPrefetches; got != 1 {
		t.Fatalf("over-capacity prefetch must count as dropped: got %d", got)
	}
	c.Release(ids(100))
}
