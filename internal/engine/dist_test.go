package engine_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"naspipe/internal/cluster"
	"naspipe/internal/data"
	"naspipe/internal/engine"
	"naspipe/internal/supernet"
	"naspipe/internal/trace"
	"naspipe/internal/train"
	"naspipe/internal/transport"
)

// TestDistChanTransportPinsSingleProcess is the dist plane's anchor: a
// run with every stage local but all cross-stage traffic routed through
// a ChanTransport must be indistinguishable from the plain in-process
// executor — same canonical trace, same per-layer order, same replayed
// weights. The transport indirection is pure wiring.
func TestDistChanTransportPinsSingleProcess(t *testing.T) {
	for _, d := range []int{2, 4} {
		t.Run(fmt.Sprintf("gpus=%d", d), func(t *testing.T) {
			cfg := ccCfg(d, true)
			ref, err := engine.RunConcurrent(context.Background(), cfg)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}

			tp := transport.NewChanTransport(d, engine.DistQueueCap(d, cfg.NumSubnets))
			defer tp.Close()
			stages := make([]int, d)
			for k := range stages {
				stages[k] = k
			}
			dcfg := cfg
			dcfg.Dist = &engine.DistConfig{Transport: tp, Stages: stages}
			got, err := engine.RunConcurrent(context.Background(), dcfg)
			if err != nil {
				t.Fatalf("dist run: %v", err)
			}

			if got.Completed != ref.Completed {
				t.Fatalf("dist completed %d, reference %d", got.Completed, ref.Completed)
			}
			if !got.Trace.Equal(ref.Trace) {
				t.Fatal("dist canonical trace diverges from the single-process reference")
			}
			if !got.ObservedTrace.PerLayerEqual(ref.Trace) {
				t.Fatal("dist observed per-layer order diverges from the reference")
			}

			tc := train.Config{Space: cfg.Space, Dim: 8, Seed: cfg.Seed,
				BatchSize: 2, LR: 0.05, Dataset: data.WNMT}
			subs := supernet.Sample(cfg.Space, cfg.Seed, cfg.NumSubnets)
			want := train.Sequential(tc, subs).Checksum
			rep, err := train.Replay(tc, subs, got.Trace)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if rep.Checksum != want {
				t.Fatalf("dist replay checksum %016x, want sequential %016x", rep.Checksum, want)
			}
		})
	}
}

// TestDistSplitWorkersVerifyAndMerge simulates a two-process fleet
// inside one test: two RunConcurrent workers own disjoint stage sets
// and share one ChanTransport. Each must verify its local per-layer
// projection; the k-way topological merge of their observed traces must
// replay to the bitwise weights of sequential training — the exact
// check the coordinator performs on a real multi-process run.
func TestDistSplitWorkersVerifyAndMerge(t *testing.T) {
	const d = 4
	cfg := ccCfg(d, true)
	tp := transport.NewChanTransport(d, engine.DistQueueCap(d, cfg.NumSubnets))
	defer tp.Close()

	parts := [][]int{{0, 1}, {2, 3}}
	results := make([]engine.Result, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, stages := range parts {
		wg.Add(1)
		go func(i int, stages []int) {
			defer wg.Done()
			wcfg := cfg
			wcfg.Dist = &engine.DistConfig{Transport: tp, Stages: stages}
			results[i], errs[i] = engine.RunConcurrent(context.Background(), wcfg)
		}(i, stages)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d (stages %v): %v", i, parts[i], err)
		}
		if results[i].Completed != cfg.NumSubnets {
			t.Fatalf("worker %d completed %d/%d", i, results[i].Completed, cfg.NumSubnets)
		}
		// Local verification already ran inside RunConcurrent; pin the
		// shape too: a worker's trace covers exactly its own stages.
		for _, ev := range results[i].ObservedTrace.Events {
			if ev.Stage != parts[i][0] && ev.Stage != parts[i][1] {
				t.Fatalf("worker %d observed stage %d outside its partition %v", i, ev.Stage, parts[i])
			}
		}
	}

	seq := run(t, "sequential", cfg)
	merged := engine.MergeStageTraces(d, cfg.SeqBase,
		[]*trace.Trace{results[0].ObservedTrace, results[1].ObservedTrace})
	if len(merged.Events) != len(seq.Trace.Events) {
		t.Fatalf("merged trace has %d events, sequential reference %d",
			len(merged.Events), len(seq.Trace.Events))
	}
	if !merged.PerLayerEqual(seq.Trace) {
		t.Fatal("merged per-layer access order diverges from the sequential reference")
	}

	tc := train.Config{Space: cfg.Space, Dim: 8, Seed: cfg.Seed,
		BatchSize: 2, LR: 0.05, Dataset: data.WNMT}
	subs := supernet.Sample(cfg.Space, cfg.Seed, cfg.NumSubnets)
	want := train.Sequential(tc, subs).Checksum
	rep, err := train.Replay(tc, subs, merged)
	if err != nil {
		t.Fatalf("merged-trace replay: %v", err)
	}
	if rep.Checksum != want {
		t.Fatalf("merged replay checksum %016x, want sequential %016x", rep.Checksum, want)
	}

	// The merge is independent of the order workers report in.
	swapped := engine.MergeStageTraces(d, cfg.SeqBase,
		[]*trace.Trace{results[1].ObservedTrace, results[0].ObservedTrace})
	if !swapped.Equal(merged) {
		t.Fatal("merge result depends on the order of worker traces")
	}
}

// TestMergeCrossStageLayerSharing pins the per-layer merge gate on the
// geometry that needs it: unscaled NLP.c1, where stage partitions are
// per-subnet and the same layer lands on different stages for
// different subnets. A fully-split fleet (one worker per stage) means
// no worker's local order relates those accesses — only the merge's
// per-layer CSP chain does. Without it, the merged trace interleaves
// one layer's subnets out of order and the replay diverges bitwise.
func TestMergeCrossStageLayerSharing(t *testing.T) {
	const d = 4
	cfg := engine.Config{
		Space:       supernet.NLPc1,
		Spec:        cluster.Default(d),
		Seed:        7,
		NumSubnets:  16,
		RecordTrace: true,
	}
	ref, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// This test is vacuous unless some layer really straddles stages.
	stageOf := map[supernet.LayerID]int{}
	straddles := false
	for _, ev := range ref.Trace.Events {
		if k, ok := stageOf[ev.Layer]; ok && k != ev.Stage {
			straddles = true
			break
		}
		stageOf[ev.Layer] = ev.Stage
	}
	if !straddles {
		t.Fatal("no layer straddles stages in this geometry; the test no longer covers the per-layer gate")
	}

	tp := transport.NewChanTransport(d, engine.DistQueueCap(d, cfg.NumSubnets))
	defer tp.Close()
	results := make([]engine.Result, d)
	errs := make([]error, d)
	var wg sync.WaitGroup
	for k := 0; k < d; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			wcfg := cfg
			wcfg.Dist = &engine.DistConfig{Transport: tp, Stages: []int{k}}
			results[k], errs[k] = engine.RunConcurrent(context.Background(), wcfg)
		}(k)
	}
	wg.Wait()
	traces := make([]*trace.Trace, d)
	for k := range results {
		if errs[k] != nil {
			t.Fatalf("worker %d: %v", k, errs[k])
		}
		traces[k] = results[k].ObservedTrace
	}
	merged := engine.MergeStageTraces(d, 0, traces)
	if len(merged.Events) != len(ref.Trace.Events) {
		t.Fatalf("merged %d events, canonical %d — the merge stalled", len(merged.Events), len(ref.Trace.Events))
	}
	if !merged.PerLayerEqual(ref.Trace) {
		t.Fatal("merged per-layer order diverges from the sequential reference")
	}
	tc := train.Config{Space: cfg.Space, Dim: 8, Seed: cfg.Seed,
		BatchSize: 2, LR: 0.05, Dataset: data.WNMT}
	subs := supernet.Sample(cfg.Space, cfg.Seed, cfg.NumSubnets)
	want := train.Sequential(tc, subs).Checksum
	rep, err := train.Replay(tc, subs, merged)
	if err != nil {
		t.Fatalf("merged-trace replay: %v", err)
	}
	if rep.Checksum != want {
		t.Fatalf("merged replay checksum %016x, want sequential %016x", rep.Checksum, want)
	}
}

// ev builds a trace event; merge tests only look at (kind, layer,
// subnet, stage).
func ev(k trace.AccessKind, layer, subnet, stage int) trace.Event {
	return trace.Event{Kind: k, Layer: supernet.LayerID(layer), Subnet: subnet, Stage: stage}
}

// TestMergeStageTracesHandlesOutOfOrderForwarding is the counterexample
// that rules out a plain rank-greedy merge. Stage 0 legally ran subnet
// 1's forward before subnet 0's (they touch disjoint layers there)
// while stage 1 already retired subnet 0. Greedy-by-rank would emit
// subnet 0's stage-1 WRITE while its stage-0 READ is still queued
// behind subnet 1 — an order the replay trainer rejects. The
// topological merge must instead hold the WRITE until every READ of
// subnet 0 is out.
func TestMergeStageTracesHandlesOutOfOrderForwarding(t *testing.T) {
	worker0 := &trace.Trace{Events: []trace.Event{
		ev(trace.Read, 1, 1, 0),  // F(1)@0 first: out-of-order forwarding
		ev(trace.Read, 0, 0, 0),  // F(0)@0
		ev(trace.Write, 0, 0, 0), // B(0)@0
		ev(trace.Write, 1, 1, 0), // B(1)@0
	}}
	worker1 := &trace.Trace{Events: []trace.Event{
		ev(trace.Read, 2, 0, 1),  // F(0)@1
		ev(trace.Write, 2, 0, 1), // B(0)@1 — retired before stage 0 ran F(0)? No:
		ev(trace.Read, 2, 1, 1),  // wall-clock had F(0)@0 before this, but worker 1
		ev(trace.Write, 2, 1, 1), // cannot know; only the merge restores causality.
	}}
	merged := engine.MergeStageTraces(2, 0, []*trace.Trace{worker0, worker1})
	if len(merged.Events) != 8 {
		t.Fatalf("merged %d events, want 8", len(merged.Events))
	}
	firstWrite := map[int]int{}
	lastRead := map[int]int{}
	for i, e := range merged.Events {
		if e.Kind == trace.Write {
			if _, ok := firstWrite[e.Subnet]; !ok {
				firstWrite[e.Subnet] = i
			}
		} else {
			lastRead[e.Subnet] = i
		}
	}
	for subnet, w := range firstWrite {
		if lastRead[subnet] > w {
			t.Fatalf("subnet %d: READ at %d after first WRITE at %d\nmerged: %v",
				subnet, lastRead[subnet], w, merged.Events)
		}
	}
	// Per-worker local order must be preserved verbatim.
	for wi, local := range []*trace.Trace{worker0, worker1} {
		j := 0
		for _, e := range merged.Events {
			if j < len(local.Events) && e == localWithOrder(local.Events[j], e.Order) {
				j++
			}
		}
		if j != len(local.Events) {
			t.Fatalf("worker %d's local order not a subsequence of the merge", wi)
		}
	}
}

func localWithOrder(e trace.Event, order int) trace.Event {
	e.Order = order
	return e
}

func TestDistConfigValidation(t *testing.T) {
	cfg := ccCfg(2, false)
	tp := transport.NewChanTransport(2, 4)
	defer tp.Close()
	bad := []engine.DistConfig{
		{Transport: nil, Stages: []int{0}},
		{Transport: tp, Stages: nil},
		{Transport: tp, Stages: []int{0, 2}},
		{Transport: tp, Stages: []int{-1}},
		{Transport: tp, Stages: []int{1, 1}},
	}
	for i := range bad {
		c := cfg
		c.Dist = &bad[i]
		if _, err := engine.RunConcurrent(context.Background(), c); err == nil {
			t.Errorf("case %d: invalid DistConfig %+v accepted", i, bad[i])
		}
	}
}
