// Package tensor implements the small deterministic float32 numeric
// substrate that NASPipe-Go trains on.
//
// The paper's reproducibility definition (Definition 1) demands bitwise
// equality of all layer parameters across repeated runs. Floating-point
// addition is not associative, so bitwise reproducibility requires a fixed
// reduction order. Every reduction in this package is a strict
// left-to-right sequential loop; no parallelism, no reassociation, no
// fused-multiply-add intrinsics. This mirrors the role of Nvidia's
// framework-determinism configuration in the original artifact
// (CUBLAS_WORKSPACE_CONFIG=:4096:8): it makes the *intra-subnet*
// computation deterministic so that the only remaining source of
// nondeterminism is the *inter-subnet* read/write interleaving, which the
// CSP scheduler then controls.
package tensor

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Vector is a dense float32 vector.
type Vector []float32

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix of the given shape. It panics on
// non-positive dimensions: shapes are static configuration in this system,
// so a bad shape is a programming error, not a runtime condition.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set stores v at (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src's contents into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d vs %dx%d",
			m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero resets all elements of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Equal reports whether m and o have identical shape and bitwise identical
// contents. NaNs with equal bit patterns compare equal: this is a bitwise
// comparison, the reproducibility criterion of Definition 1.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := range m.Data {
		if math.Float32bits(m.Data[i]) != math.Float32bits(o.Data[i]) {
			return false
		}
	}
	return true
}

// MatVec computes dst = m * x. dst must have length m.Rows and x length
// m.Cols; dst and x must not alias.
func MatVec(dst Vector, m *Matrix, x Vector) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch dst=%d m=%dx%d x=%d",
			len(dst), m.Rows, m.Cols, len(x)))
	}
	for r := 0; r < m.Rows; r++ {
		var sum float32
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, v := range row {
			sum += v * x[c]
		}
		dst[r] = sum
	}
}

// MatTVec computes dst = mᵀ * x. dst must have length m.Cols and x length
// m.Rows. The loop order is fixed (row-major accumulation) for determinism.
func MatTVec(dst Vector, m *Matrix, x Vector) {
	if len(dst) != m.Cols || len(x) != m.Rows {
		panic(fmt.Sprintf("tensor: MatTVec shape mismatch dst=%d m=%dx%d x=%d",
			len(dst), m.Rows, m.Cols, len(x)))
	}
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.Rows; r++ {
		xr := x[r]
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, v := range row {
			dst[c] += v * xr
		}
	}
}

// OuterAccum accumulates dst += scale * (a ⊗ b), i.e. dst[r][c] +=
// scale*a[r]*b[c]. Used to accumulate weight gradients.
func OuterAccum(dst *Matrix, a, b Vector, scale float32) {
	if len(a) != dst.Rows || len(b) != dst.Cols {
		panic(fmt.Sprintf("tensor: OuterAccum shape mismatch a=%d b=%d dst=%dx%d",
			len(a), len(b), dst.Rows, dst.Cols))
	}
	for r := 0; r < dst.Rows; r++ {
		ar := a[r] * scale
		row := dst.Data[r*dst.Cols : (r+1)*dst.Cols]
		for c := range row {
			row[c] += ar * b[c]
		}
	}
}

// AXPY computes dst += alpha * x elementwise.
func AXPY(dst Vector, alpha float32, x Vector) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("tensor: AXPY length mismatch %d vs %d", len(dst), len(x)))
	}
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

// MatAXPY computes dst += alpha * x for matrices of equal shape.
func MatAXPY(dst *Matrix, alpha float32, x *Matrix) {
	if dst.Rows != x.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("tensor: MatAXPY shape mismatch %dx%d vs %dx%d",
			dst.Rows, dst.Cols, x.Rows, x.Cols))
	}
	for i := range dst.Data {
		dst.Data[i] += alpha * x.Data[i]
	}
}

// Dot returns the sequential dot product of a and b.
func Dot(a, b Vector) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var sum float32
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// SumSquares returns Σ a[i]², accumulated left to right.
func SumSquares(a Vector) float32 {
	var sum float32
	for _, v := range a {
		sum += v * v
	}
	return sum
}

// Tanh applies tanh elementwise into dst (dst may alias x).
func Tanh(dst, x Vector) {
	if len(dst) != len(x) {
		panic("tensor: Tanh length mismatch")
	}
	for i, v := range x {
		dst[i] = float32(math.Tanh(float64(v)))
	}
}

// TanhGrad computes dst = g * (1 - y²) elementwise, where y = tanh(x) is
// the saved activation. dst may alias g or y.
func TanhGrad(dst, g, y Vector) {
	if len(dst) != len(g) || len(dst) != len(y) {
		panic("tensor: TanhGrad length mismatch")
	}
	for i := range dst {
		dst[i] = g[i] * (1 - y[i]*y[i])
	}
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// EqualBits reports bitwise equality of two vectors.
func (v Vector) EqualBits(o Vector) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if math.Float32bits(v[i]) != math.Float32bits(o[i]) {
			return false
		}
	}
	return true
}

// Checksum returns an FNV-64a hash over the exact bit patterns of the
// elements. Two vectors have equal checksums iff (with overwhelming
// probability) they are bitwise identical; this is the primitive used to
// compare whole-supernet states across runs (Table 3).
func (v Vector) Checksum() uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, f := range v {
		bits := math.Float32bits(f)
		buf[0] = byte(bits)
		buf[1] = byte(bits >> 8)
		buf[2] = byte(bits >> 16)
		buf[3] = byte(bits >> 24)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Checksum returns an FNV-64a hash over the matrix's shape and bit
// patterns.
func (m *Matrix) Checksum() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	buf[0] = byte(m.Rows)
	buf[1] = byte(m.Rows >> 8)
	buf[2] = byte(m.Rows >> 16)
	buf[3] = byte(m.Rows >> 24)
	buf[4] = byte(m.Cols)
	buf[5] = byte(m.Cols >> 8)
	buf[6] = byte(m.Cols >> 16)
	buf[7] = byte(m.Cols >> 24)
	h.Write(buf[:])
	var b4 [4]byte
	for _, f := range m.Data {
		bits := math.Float32bits(f)
		b4[0] = byte(bits)
		b4[1] = byte(bits >> 8)
		b4[2] = byte(bits >> 16)
		b4[3] = byte(bits >> 24)
		h.Write(b4[:])
	}
	return h.Sum64()
}

// CombineChecksums folds a sequence of checksums into one, order
// sensitively. Used to derive a single digest for a whole supernet.
func CombineChecksums(sums []uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, s := range sums {
		for i := 0; i < 8; i++ {
			buf[i] = byte(s >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}
