// Package fault is the deterministic fault-injection plane of the
// concurrent CSP executor, plus the crash-consistent checkpoint format
// the engine writes so an interrupted run can resume (checkpoint.go).
//
// Every fault decision — whether a stage crashes at a task boundary,
// whether a cross-stage message attempt is dropped, delayed, or
// duplicated, whether a prefetch copy fails — is drawn from a keyed
// rng substream (rng.Labeled) of the plan's seed, with the decision
// site (stage, global sequence ID, kind, attempt) and the restart
// incarnation folded into the label. Two consequences:
//
//  1. Reproducible chaos. A (plan, incarnation) pair yields the same
//     fault schedule on every run, every platform, and any GOMAXPROCS;
//     a failing fuzz sample is a seed, not a heisenbug.
//  2. Terminating recovery. Decisions are re-keyed per incarnation (the
//     restart epoch a checkpoint carries), so an injected crash cannot
//     deterministically re-fire at the same site forever: every resume
//     rolls a fresh schedule, and targeted one-shot crashes fire only
//     in incarnation 0.
//
// Faults perturb timing and delivery, never the causal schedule: CSP
// admission decisions do not consult the injector, so any run that
// survives its fault schedule still replays to the sequential reference
// (Definition 1) — which the schedule-fuzzing harness verifies
// mechanically.
package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"naspipe/internal/backoff"
	"naspipe/internal/rng"
)

// Task kinds, mirroring internal/telemetry without the import.
const (
	KindForward  int8 = 0
	KindBackward int8 = 1
)

// TaskRef names one task boundary on the concurrent plane: a (stage,
// global sequence ID, kind) triple. Used for targeted one-shot crashes.
type TaskRef struct {
	Stage int
	Seq   int  // global sequence ID (checkpoint-base offset included)
	Kind  int8 // KindForward or KindBackward
}

func (t TaskRef) String() string {
	k := "F"
	if t.Kind == KindBackward {
		k = "B"
	}
	return fmt.Sprintf("%d:%d:%s", t.Stage, t.Seq, k)
}

// StormEvent is one entry of a deterministic fault storm: a targeted
// crash (or wedge) pinned to a specific restart incarnation. Where the
// one-shot CrashTask fires only in incarnation 0, a storm schedules the
// whole outage sequence up front — entry k fires when incarnation k
// reaches its task boundary — so a multi-crash scenario has an exact,
// replayable restart count and recovery provably terminates once the
// last scheduled incarnation is past.
type StormEvent struct {
	Incarnation int
	Task        TaskRef
	Wedge       bool // hang instead of crash (watchdog fixture)
}

func (e StormEvent) String() string {
	return fmt.Sprintf("%d:%s", e.Incarnation, e.Task)
}

// Plan is a deterministic, seed-driven fault schedule. The zero value
// injects nothing; rates are per-decision probabilities in [0, 1].
type Plan struct {
	// Seed keys every fault decision's rng substream. Plans with equal
	// seeds and rates produce identical schedules at equal incarnations.
	Seed uint64

	// CrashRate is the probability that a stage goroutine crashes at any
	// given task boundary (checked once per admitted forward and once per
	// selected backward, before the task's side effects).
	CrashRate float64

	// CrashTask, when non-nil, crashes the named task boundary exactly
	// once — in incarnation 0 only, so the resumed run gets past it.
	CrashTask *TaskRef

	// WedgeTask, when non-nil, hangs the stage goroutine at the named
	// task boundary until its context is cancelled — the deterministic
	// deadlock fixture the supervision plane's watchdog is tested
	// against. Like CrashTask it fires in incarnation 0 only, so a
	// resume after the watchdog cuts a checkpoint gets past it.
	WedgeTask *TaskRef

	// Storm is a multi-incarnation targeted schedule: each entry fires
	// at its own incarnation's named task boundary (crash, or wedge when
	// Wedge is set). Unlike rate-based crashes — whose restart count
	// depends on which racing site rolls first — a storm's restart count
	// equals the number of incarnations it covers, exactly, on every
	// run; the scenario plane's scorecards depend on that.
	Storm []StormEvent

	// Message faults, applied per delivery attempt of every cross-stage
	// activation (forward) and gradient (backward) transfer. A dropped
	// attempt is retried with exponential backoff up to MaxRetries, after
	// which delivery escalates to the reliable path; a delayed attempt
	// sleeps up to MaxDelay before delivering; a duplicated message is
	// delivered twice (receivers dedup).
	DropRate  float64
	DelayRate float64
	DupRate   float64
	MaxDelay  time.Duration // 0 = default 200µs

	// FetchFailRate is the probability that a subnet's prefetch copy
	// fails on a stage: the fetch is abandoned and counted as a dropped
	// prefetch, so the later Acquire misses and fetches synchronously —
	// a slowdown, never a hang.
	FetchFailRate float64

	// Bounded-retry parameters for dropped messages.
	MaxRetries  int           // 0 = default 4
	BackoffBase time.Duration // 0 = default 50µs; doubles per retry
	BackoffMax  time.Duration // 0 = default 2ms; backoff ceiling

	// Transport-level faults, consulted by the multi-process transport
	// plane's links (the in-proc channel path has no wire to cut).
	//
	// LinkDropRate is the probability that one data frame is discarded
	// at the sender before reaching the wire; the link's retransmit
	// timer resends it, exercising sequence-numbered recovery. Decisions
	// are keyed by (incarnation, stage, frame seqno), so a given frame
	// is dropped at most once and delivery always terminates.
	LinkDropRate float64
	// LinkDrops are targeted single-frame drops: stage's link discards
	// exactly the AfterFrames-th data frame of the named incarnation.
	LinkDrops []LinkEvent
	// Disconnects are targeted link cuts: the named stage's link to the
	// coordinator is severed once it has sent AfterFrames data frames in
	// the named incarnation. The link's reconnect loop (shared backoff
	// policy) restores it and retransmits everything unacknowledged.
	Disconnects []LinkEvent
	// Partitions sever every link at once: each link cuts itself when
	// its own data-frame count reaches AfterFrames in the named
	// incarnation (Stage is ignored), so the whole fleet loses the
	// coordinator around the same point and must heal by reconnecting.
	Partitions []LinkEvent
}

// LinkEvent names one deterministic transport fault site: a stage's
// link, after it has sent AfterFrames data frames, in one incarnation.
type LinkEvent struct {
	Incarnation int
	Stage       int
	AfterFrames int
}

func (e LinkEvent) String() string {
	return fmt.Sprintf("%d:%d:%d", e.Incarnation, e.Stage, e.AfterFrames)
}

// Default retry/delay parameters (see Plan field comments).
const (
	DefaultMaxDelay    = 200 * time.Microsecond
	DefaultMaxRetries  = 4
	DefaultBackoffBase = 50 * time.Microsecond
	DefaultBackoffMax  = 2 * time.Millisecond
)

// Enabled reports whether the plan injects any fault at all.
func (p *Plan) Enabled() bool {
	return p != nil && (p.CrashRate > 0 || p.CrashTask != nil || p.WedgeTask != nil ||
		len(p.Storm) > 0 ||
		p.DropRate > 0 || p.DelayRate > 0 || p.DupRate > 0 || p.FetchFailRate > 0 ||
		p.TransportEnabled())
}

// TransportEnabled reports whether the plan injects any transport-level
// fault (frame drops, link cuts, partitions). The engine's in-proc
// paths ignore these; only the transport plane's links consult them.
func (p *Plan) TransportEnabled() bool {
	return p != nil && (p.LinkDropRate > 0 || len(p.LinkDrops) > 0 ||
		len(p.Disconnects) > 0 || len(p.Partitions) > 0)
}

// Validate rejects out-of-range rates and negative durations.
func (p Plan) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"crash", p.CrashRate}, {"drop", p.DropRate}, {"delay", p.DelayRate},
		{"dup", p.DupRate}, {"fetchfail", p.FetchFailRate}, {"linkdrop", p.LinkDropRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s rate %v outside [0, 1]", r.name, r.v)
		}
	}
	if p.DropRate+p.DelayRate+p.DupRate > 1 {
		return fmt.Errorf("fault: message rates sum to %v > 1 (drop %v + delay %v + dup %v)",
			p.DropRate+p.DelayRate+p.DupRate, p.DropRate, p.DelayRate, p.DupRate)
	}
	if p.MaxDelay < 0 || p.BackoffBase < 0 || p.BackoffMax < 0 {
		return fmt.Errorf("fault: negative duration in plan: maxdelay %v backoff %v/%v",
			p.MaxDelay, p.BackoffBase, p.BackoffMax)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("fault: negative MaxRetries %d", p.MaxRetries)
	}
	if t := p.CrashTask; t != nil {
		if t.Stage < 0 || t.Seq < 0 || (t.Kind != KindForward && t.Kind != KindBackward) {
			return fmt.Errorf("fault: malformed crash task %+v", *t)
		}
	}
	if t := p.WedgeTask; t != nil {
		if t.Stage < 0 || t.Seq < 0 || (t.Kind != KindForward && t.Kind != KindBackward) {
			return fmt.Errorf("fault: malformed wedge task %+v", *t)
		}
	}
	for i, ev := range p.Storm {
		t := ev.Task
		if ev.Incarnation < 0 || t.Stage < 0 || t.Seq < 0 ||
			(t.Kind != KindForward && t.Kind != KindBackward) {
			return fmt.Errorf("fault: malformed storm entry %d: %+v", i, ev)
		}
	}
	for _, group := range []struct {
		name string
		evs  []LinkEvent
	}{{"linkdropat", p.LinkDrops}, {"disconnect", p.Disconnects}, {"partition", p.Partitions}} {
		for i, ev := range group.evs {
			if ev.Incarnation < 0 || ev.Stage < 0 || ev.AfterFrames < 0 {
				return fmt.Errorf("fault: malformed %s entry %d: %+v", group.name, i, ev)
			}
		}
	}
	return nil
}

// withDefaults fills zero-valued retry/delay parameters.
func (p Plan) withDefaults() Plan {
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.MaxRetries <= 0 {
		p.MaxRetries = DefaultMaxRetries
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = DefaultBackoffBase
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = DefaultBackoffMax
	}
	return p
}

// ParsePlan builds a plan from a compact comma-separated spec, the form
// the -faults CLI flag takes:
//
//	seed=7,drop=0.05,delay=0.02,dup=0.01,crash=0.005,fetchfail=0.1,
//	crashat=2:30:B,maxdelay=200us,retries=4,backoff=50us
//
// crashat/wedgeat take stage:seq:kind with kind F or B (the one-shot
// incarnation-0 target), or incarnation:stage:seq:kind to append a
// storm entry pinned to that incarnation; repeating the key builds the
// full storm. Unknown keys are errors.
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("fault: %q is not key=value", kv)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		case "crash":
			p.CrashRate, err = strconv.ParseFloat(val, 64)
		case "drop":
			p.DropRate, err = strconv.ParseFloat(val, 64)
		case "delay":
			p.DelayRate, err = strconv.ParseFloat(val, 64)
		case "dup":
			p.DupRate, err = strconv.ParseFloat(val, 64)
		case "fetchfail":
			p.FetchFailRate, err = strconv.ParseFloat(val, 64)
		case "maxdelay":
			p.MaxDelay, err = time.ParseDuration(val)
		case "backoff":
			p.BackoffBase, err = time.ParseDuration(val)
		case "backoffmax":
			p.BackoffMax, err = time.ParseDuration(val)
		case "retries":
			p.MaxRetries, err = strconv.Atoi(val)
		case "crashat":
			err = p.addTargeted(val, false)
		case "wedgeat":
			err = p.addTargeted(val, true)
		case "linkdrop":
			p.LinkDropRate, err = strconv.ParseFloat(val, 64)
		case "linkdropat":
			err = p.addLink(&p.LinkDrops, val, true)
		case "disconnect":
			err = p.addLink(&p.Disconnects, val, true)
		case "partition":
			err = p.addLink(&p.Partitions, val, false)
		default:
			return nil, fmt.Errorf("fault: unknown plan key %q (known: seed, crash, crashat, wedgeat, drop, delay, dup, fetchfail, maxdelay, backoff, backoffmax, retries, linkdrop, linkdropat, disconnect, partition)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: bad value for %s: %w", key, err)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// addTargeted parses a crashat/wedgeat value. stage:seq:kind sets the
// one-shot incarnation-0 target; incarnation:stage:seq:kind appends a
// storm entry pinned to that incarnation.
func (p *Plan) addTargeted(val string, wedge bool) error {
	if strings.Count(val, ":") == 3 {
		parts := strings.SplitN(val, ":", 2)
		inc, err := strconv.Atoi(parts[0])
		if err != nil {
			return fmt.Errorf("bad incarnation %q: %w", parts[0], err)
		}
		t, err := parseTaskRef(parts[1])
		if err != nil {
			return err
		}
		p.Storm = append(p.Storm, StormEvent{Incarnation: inc, Task: *t, Wedge: wedge})
		return nil
	}
	t, err := parseTaskRef(val)
	if err != nil {
		return err
	}
	if wedge {
		if p.WedgeTask != nil {
			return fmt.Errorf("duplicate wedgeat %q (pin storms to incarnations with inc:stage:seq:kind)", val)
		}
		p.WedgeTask = t
	} else {
		if p.CrashTask != nil {
			return fmt.Errorf("duplicate crashat %q (pin storms to incarnations with inc:stage:seq:kind)", val)
		}
		p.CrashTask = t
	}
	return nil
}

// addLink parses a transport fault value. With a stage (linkdropat,
// disconnect): stage:after or incarnation:stage:after. Without one
// (partition): after or incarnation:after.
func (p *Plan) addLink(into *[]LinkEvent, val string, hasStage bool) error {
	parts := strings.Split(val, ":")
	nums := make([]int, len(parts))
	for i, s := range parts {
		n, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("bad field %q: %w", s, err)
		}
		nums[i] = n
	}
	var ev LinkEvent
	switch {
	case hasStage && len(nums) == 2:
		ev = LinkEvent{Stage: nums[0], AfterFrames: nums[1]}
	case hasStage && len(nums) == 3:
		ev = LinkEvent{Incarnation: nums[0], Stage: nums[1], AfterFrames: nums[2]}
	case !hasStage && len(nums) == 1:
		ev = LinkEvent{AfterFrames: nums[0]}
	case !hasStage && len(nums) == 2:
		ev = LinkEvent{Incarnation: nums[0], AfterFrames: nums[1]}
	default:
		if hasStage {
			return fmt.Errorf("want stage:after or inc:stage:after, got %q", val)
		}
		return fmt.Errorf("want after or inc:after, got %q", val)
	}
	*into = append(*into, ev)
	return nil
}

func parseTaskRef(s string) (*TaskRef, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("want stage:seq:kind, got %q", s)
	}
	stage, err := strconv.Atoi(parts[0])
	if err != nil {
		return nil, err
	}
	seq, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, err
	}
	var kind int8
	switch parts[2] {
	case "F", "f":
		kind = KindForward
	case "B", "b":
		kind = KindBackward
	default:
		return nil, fmt.Errorf("kind %q is not F or B", parts[2])
	}
	return &TaskRef{Stage: stage, Seq: seq, Kind: kind}, nil
}

// String renders the plan back in ParsePlan's spec form (defaulted
// fields omitted), so CLIs can echo the effective schedule.
func (p Plan) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	add("seed", strconv.FormatUint(p.Seed, 10))
	rate := func(k string, v float64) {
		if v > 0 {
			add(k, strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	rate("crash", p.CrashRate)
	if p.CrashTask != nil {
		add("crashat", p.CrashTask.String())
	}
	if p.WedgeTask != nil {
		add("wedgeat", p.WedgeTask.String())
	}
	for _, ev := range p.Storm {
		k := "crashat"
		if ev.Wedge {
			k = "wedgeat"
		}
		add(k, ev.String())
	}
	rate("drop", p.DropRate)
	rate("delay", p.DelayRate)
	rate("dup", p.DupRate)
	rate("fetchfail", p.FetchFailRate)
	rate("linkdrop", p.LinkDropRate)
	for _, ev := range p.LinkDrops {
		add("linkdropat", ev.String())
	}
	for _, ev := range p.Disconnects {
		add("disconnect", ev.String())
	}
	for _, ev := range p.Partitions {
		add("partition", fmt.Sprintf("%d:%d", ev.Incarnation, ev.AfterFrames))
	}
	return strings.Join(parts, ",")
}

// CrashError reports an injected stage-goroutine crash. The engine
// returns it from RunConcurrent with the partial Result; callers
// (Runner, CLI, tests) detect it with errors.As, bump the checkpoint
// incarnation, and resume.
type CrashError struct {
	Stage       int
	Seq         int // global sequence ID of the task at whose boundary the stage died
	Kind        int8
	Incarnation int
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("fault: injected crash on stage %d at task %s (incarnation %d)",
		e.Stage, TaskRef{Stage: e.Stage, Seq: e.Seq, Kind: e.Kind}, e.Incarnation)
}

// Action is a message-transport verdict.
type Action int

const (
	Deliver   Action = iota
	Drop             // this attempt is lost; retry after backoff
	Delay            // deliver after Verdict.Wait
	Duplicate        // deliver twice (receivers dedup)
)

// Verdict is the injector's decision for one delivery attempt.
type Verdict struct {
	Action Action
	Wait   time.Duration // Delay only
}

// Injector draws fault decisions for one run. It is stateless after
// construction (every decision is a pure function of its site), so it is
// safe for concurrent use by all stage and prefetcher goroutines.
type Injector struct {
	plan        Plan
	incarnation int
}

// NewInjector validates the plan and binds it to a restart incarnation
// (0 for a fresh run; resumed runs pass the checkpoint's).
func NewInjector(p Plan, incarnation int) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if incarnation < 0 {
		return nil, fmt.Errorf("fault: negative incarnation %d", incarnation)
	}
	return &Injector{plan: p.withDefaults(), incarnation: incarnation}, nil
}

// Incarnation returns the restart epoch this injector rolls under.
func (in *Injector) Incarnation() int { return in.incarnation }

// MaxRetries returns the bounded-retry limit for dropped messages.
func (in *Injector) MaxRetries() int { return in.plan.MaxRetries }

// roll returns a uniform [0,1) draw keyed by the decision site.
func (in *Injector) roll(label string) float64 {
	return rng.Labeled(in.plan.Seed, label).Float64()
}

// CrashAt decides whether the stage crashes at the (stage, seq, kind)
// task boundary. seq is the global sequence ID.
func (in *Injector) CrashAt(stage, seq int, kind int8) bool {
	if t := in.plan.CrashTask; t != nil && in.incarnation == 0 &&
		t.Stage == stage && t.Seq == seq && t.Kind == kind {
		return true
	}
	if in.stormAt(stage, seq, kind, false) {
		return true
	}
	if in.plan.CrashRate <= 0 {
		return false
	}
	return in.roll(fmt.Sprintf("crash/%d/%d/%d/%d", in.incarnation, stage, seq, kind)) < in.plan.CrashRate
}

// stormAt reports whether a storm entry targets this incarnation's
// (stage, seq, kind) boundary with the given wedge disposition.
func (in *Injector) stormAt(stage, seq int, kind int8, wedge bool) bool {
	for _, ev := range in.plan.Storm {
		if ev.Wedge == wedge && ev.Incarnation == in.incarnation &&
			ev.Task == (TaskRef{Stage: stage, Seq: seq, Kind: kind}) {
			return true
		}
	}
	return false
}

// WedgeAt decides whether the stage hangs at the (stage, seq, kind)
// task boundary until cancelled. Fires in incarnation 0 only, so runs
// resumed after a watchdog-cut checkpoint are not re-wedged.
func (in *Injector) WedgeAt(stage, seq int, kind int8) bool {
	if t := in.plan.WedgeTask; t != nil && in.incarnation == 0 &&
		t.Stage == stage && t.Seq == seq && t.Kind == kind {
		return true
	}
	return in.stormAt(stage, seq, kind, true)
}

// Message decides the fate of one delivery attempt of a cross-stage
// transfer (kind: forward activation or backward gradient) sent by
// fromStage for global sequence seq. Duplicates fire only on attempt 0,
// bounding deliveries per message at two — the receivers' channel-sizing
// invariant.
func (in *Injector) Message(kind int8, fromStage, seq, attempt int) Verdict {
	p := in.plan
	if p.DropRate == 0 && p.DelayRate == 0 && p.DupRate == 0 {
		return Verdict{Action: Deliver}
	}
	r := rng.Labeled(p.Seed, fmt.Sprintf("msg/%d/%d/%d/%d/%d", in.incarnation, kind, fromStage, seq, attempt))
	u := r.Float64()
	switch {
	case u < p.DropRate:
		return Verdict{Action: Drop}
	case u < p.DropRate+p.DelayRate:
		return Verdict{Action: Delay, Wait: time.Duration(r.Float64() * float64(p.MaxDelay))}
	case u < p.DropRate+p.DelayRate+p.DupRate && attempt == 0:
		return Verdict{Action: Duplicate}
	}
	return Verdict{Action: Deliver}
}

// FetchFails decides whether the stage's prefetch copy for global
// sequence seq fails (surfaced by the engine as a dropped prefetch).
func (in *Injector) FetchFails(stage, seq int) bool {
	if in.plan.FetchFailRate <= 0 {
		return false
	}
	return in.roll(fmt.Sprintf("fetch/%d/%d/%d", in.incarnation, stage, seq)) < in.plan.FetchFailRate
}

// FrameDrop decides whether a link discards its seqno-th data frame at
// the sender (the retransmit timer recovers it). Combines the targeted
// linkdropat entries with the rate-based draw, keyed so any given frame
// is dropped at most once per incarnation — delivery always terminates.
func (in *Injector) FrameDrop(stage int, seqno uint64) bool {
	for _, ev := range in.plan.LinkDrops {
		if ev.Incarnation == in.incarnation && ev.Stage == stage && uint64(ev.AfterFrames) == seqno {
			return true
		}
	}
	if in.plan.LinkDropRate <= 0 {
		return false
	}
	return in.roll(fmt.Sprintf("linkdrop/%d/%d/%d", in.incarnation, stage, seqno)) < in.plan.LinkDropRate
}

// LinkCut decides whether a stage's link severs itself once it has sent
// `sent` data frames: a targeted disconnect of this link, or a
// partition (every link cuts at its own matching count). The link's
// reconnect loop heals either; the distinction is observability.
func (in *Injector) LinkCut(stage int, sent uint64) bool {
	for _, ev := range in.plan.Disconnects {
		if ev.Incarnation == in.incarnation && ev.Stage == stage && uint64(ev.AfterFrames) == sent {
			return true
		}
	}
	for _, ev := range in.plan.Partitions {
		if ev.Incarnation == in.incarnation && uint64(ev.AfterFrames) == sent {
			return true
		}
	}
	return false
}

// Backoff returns the exponential retry delay after the given dropped
// attempt: BackoffBase·2^attempt, capped at BackoffMax — the shared
// backoff.Policy schedule.
func (in *Injector) Backoff(attempt int) time.Duration {
	return backoff.Policy{Base: in.plan.BackoffBase, Max: in.plan.BackoffMax}.Delay(attempt)
}
