package tensor

import (
	"fmt"
	"testing"

	"naspipe/internal/rng"
)

// Kernel benchmarks at the sizes that matter: the numeric plane's default
// Dim is tiny (12), but scenario configs scale it up, and the checksum
// paths run over whole-supernet parameter slabs. Run with
// `go test -bench . -benchmem ./internal/tensor/` and compare against
// BENCH_speed.json (regenerate via cmd/naspipe-benchguard -update).

func benchDims() []int { return []int{16, 128, 512} }

func BenchmarkMatVec(b *testing.B) {
	for _, n := range benchDims() {
		b.Run(fmt.Sprintf("dim=%d", n), func(b *testing.B) {
			r := rng.New(1)
			m := randMat(r, n, n)
			x := randVec(r, n)
			dst := make(Vector, n)
			b.ReportAllocs()
			b.SetBytes(int64(n) * int64(n) * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatVec(dst, m, x)
			}
		})
	}
}

func BenchmarkMatTVec(b *testing.B) {
	for _, n := range benchDims() {
		b.Run(fmt.Sprintf("dim=%d", n), func(b *testing.B) {
			r := rng.New(1)
			m := randMat(r, n, n)
			x := randVec(r, n)
			dst := make(Vector, n)
			b.ReportAllocs()
			b.SetBytes(int64(n) * int64(n) * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatTVec(dst, m, x)
			}
		})
	}
}

func BenchmarkOuterAccum(b *testing.B) {
	for _, n := range benchDims() {
		b.Run(fmt.Sprintf("dim=%d", n), func(b *testing.B) {
			r := rng.New(1)
			m := randMat(r, n, n)
			a := randVec(r, n)
			v := randVec(r, n)
			b.ReportAllocs()
			b.SetBytes(int64(n) * int64(n) * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				OuterAccum(m, a, v, 0.5)
			}
		})
	}
}

func BenchmarkVectorChecksum(b *testing.B) {
	for _, n := range []int{64, 4096} {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			r := rng.New(1)
			v := randVec(r, n)
			b.ReportAllocs()
			b.SetBytes(int64(n) * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkU64 = v.Checksum()
			}
		})
	}
}

func BenchmarkMatrixChecksum(b *testing.B) {
	r := rng.New(1)
	m := randMat(r, 256, 256)
	b.ReportAllocs()
	b.SetBytes(256 * 256 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkU64 = m.Checksum()
	}
}

// The *Ref benchmarks run the pre-optimization hash/fnv implementations
// kept in ref_test.go, so the before/after ratio in BENCH_speed.json can
// be reproduced from the final tree on any host in a single run.

func BenchmarkVectorChecksumRef(b *testing.B) {
	for _, n := range []int{64, 4096} {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			r := rng.New(1)
			v := randVec(r, n)
			b.ReportAllocs()
			b.SetBytes(int64(n) * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkU64 = vectorChecksumRef(v)
			}
		})
	}
}

func BenchmarkMatrixChecksumRef(b *testing.B) {
	r := rng.New(1)
	m := randMat(r, 256, 256)
	b.ReportAllocs()
	b.SetBytes(256 * 256 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkU64 = matrixChecksumRef(m)
	}
}

func BenchmarkCombineChecksums(b *testing.B) {
	sums := make([]uint64, 256)
	for i := range sums {
		sums[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkU64 = CombineChecksums(sums)
	}
}

// sinkU64 defeats dead-code elimination of the checksum benches.
var sinkU64 uint64
