package prefetch

import (
	"sync"
	"testing"
	"time"

	"naspipe/internal/supernet"
)

const bw = 1000.0 // bytes per ms

func constBytes(b int64) func(supernet.LayerID) int64 {
	return func(supernet.LayerID) int64 { return b }
}

func ids(vals ...int) []supernet.LayerID {
	out := make([]supernet.LayerID, len(vals))
	for i, v := range vals {
		out[i] = supernet.LayerID(v)
	}
	return out
}

func TestPrefetchThenAcquireHits(t *testing.T) {
	c := New(10000, bw, 0) // instant copies
	c.Prefetch(1, 1000)
	c.Prefetch(2, 1000)
	if stall := c.Acquire(ids(1, 2), constBytes(1000)); stall != 0 {
		t.Fatalf("instant-copy acquire stalled %v", stall)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 0 || st.Prefetches != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestColdAcquireIsMiss(t *testing.T) {
	c := New(10000, bw, 0)
	c.Acquire(ids(7), constBytes(2000))
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 0 || st.SwapInBytes != 2000 {
		t.Fatalf("stats %+v", st)
	}
	if !c.Resident(7) {
		t.Fatal("synchronously fetched layer not resident")
	}
}

func TestLatePrefetchCountedAndStalls(t *testing.T) {
	// A large scaled copy is still in flight when acquired: the access is
	// a miss, a late prefetch, and the acquire stalls until completion.
	c := New(10000, bw, 0.5) // 1000 bytes -> 0.5ms wall clock
	c.Prefetch(7, 4000)      // ~2ms in flight
	stall := c.Acquire(ids(7), constBytes(4000))
	if stall <= 0 {
		t.Fatal("late prefetch did not stall")
	}
	st := c.Stats()
	if st.Misses != 1 || st.LatePrefetches != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.StallMs <= 0 {
		t.Fatalf("stall not recorded: %+v", st)
	}
	if !c.Resident(7) {
		t.Fatal("layer not resident after stalled acquire")
	}
}

func TestCapacityEvictsLRU(t *testing.T) {
	c := New(3000, bw, 0)
	c.Acquire(ids(1, 2, 3), constBytes(1000))
	c.Release(ids(1, 2, 3))
	c.Acquire(ids(2), constBytes(1000))
	c.Release(ids(2))
	c.Acquire(ids(1), constBytes(1000))
	c.Release(ids(1))
	// New layer 4 forces eviction of the LRU: layer 3.
	c.Prefetch(4, 1000)
	if c.Resident(3) {
		t.Fatal("layer 3 (LRU) should have been evicted")
	}
	if !c.Resident(1) || !c.Resident(2) || !c.Resident(4) {
		t.Fatal("wrong entries evicted")
	}
	if st := c.Stats(); st.EvictionsForced == 0 {
		t.Fatalf("forced eviction not counted: %+v", st)
	}
}

func TestPrefetchDroppedWhenAllLocked(t *testing.T) {
	c := New(2000, bw, 0)
	c.Acquire(ids(1, 2), constBytes(1000)) // both locked, cache full
	c.Prefetch(3, 1000)
	if c.Resident(3) {
		t.Fatal("prefetch should have been dropped")
	}
	st := c.Stats()
	if st.DroppedPrefetches != 1 {
		t.Fatalf("DroppedPrefetches = %d want 1", st.DroppedPrefetches)
	}
	if c.Used() != 2000 {
		t.Fatalf("used %d want 2000", c.Used())
	}
}

func TestNoteDroppedFoldsIntoStats(t *testing.T) {
	c := New(1000, bw, 0)
	c.NoteDropped()
	c.NoteDropped()
	if st := c.Stats(); st.DroppedPrefetches != 2 {
		t.Fatalf("DroppedPrefetches = %d want 2", st.DroppedPrefetches)
	}
}

func TestOverCapacityForcedAcquire(t *testing.T) {
	c := New(1000, bw, 0)
	c.Acquire(ids(1), constBytes(1000)) // locked, full
	c.Acquire(ids(2), constBytes(1000)) // must proceed anyway
	st := c.Stats()
	if st.OverCapacity != 1 {
		t.Fatalf("OverCapacity = %d want 1", st.OverCapacity)
	}
	if !c.Resident(2) {
		t.Fatal("forced acquire must still make the layer resident")
	}
}

func TestLockedEntriesSurviveEviction(t *testing.T) {
	c := New(10000, bw, 0)
	c.Acquire(ids(1), constBytes(1000))
	c.Evict(ids(1))
	if !c.Resident(1) {
		t.Fatal("locked entry was evicted")
	}
	c.Release(ids(1))
	c.Evict(ids(1))
	if c.Resident(1) {
		t.Fatal("released entry not evicted")
	}
	if st := c.Stats(); st.SwapOutBytes != 1000 {
		t.Fatalf("swap-out bytes %d", st.SwapOutBytes)
	}
}

func TestDoubleAcquireNeedsDoubleRelease(t *testing.T) {
	c := New(10000, bw, 0)
	c.Acquire(ids(1), constBytes(1000))
	c.Acquire(ids(1), constBytes(1000))
	c.Release(ids(1))
	c.Evict(ids(1))
	if !c.Resident(1) {
		t.Fatal("layer evicted while still locked by the second task")
	}
	c.Release(ids(1))
	c.Evict(ids(1))
	if c.Resident(1) {
		t.Fatal("layer not evictable after both releases")
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	c := New(-1, bw, 0)
	for i := 0; i < 100; i++ {
		c.Prefetch(supernet.LayerID(i), 1<<20)
	}
	if st := c.Stats(); st.EvictionsForced != 0 || st.DroppedPrefetches != 0 {
		t.Fatalf("unbounded cache evicted or dropped: %+v", st)
	}
}

// TestConcurrentAccountingConsistent hammers one cache from many
// goroutines — the shape of the concurrent plane, where a stage worker,
// its prefetcher, and two neighbours share it — and checks accounting
// invariants afterwards. Run under -race this is the thread-safety proof.
func TestConcurrentAccountingConsistent(t *testing.T) {
	c := New(8000, bw, 0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for op := 0; op < 200; op++ {
				id := (g*200 + op) % 16
				switch op % 3 {
				case 0:
					c.Prefetch(supernet.LayerID(id), 1000)
				case 1:
					c.Acquire(ids(id), constBytes(1000))
					c.Release(ids(id))
				case 2:
					c.Evict(ids(id))
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 4*200/3+1 {
		// 267 acquires total: each goroutine issues ~67.
		t.Logf("accesses %d", st.Hits+st.Misses)
	}
	if got := st.Accesses(); got == 0 {
		t.Fatal("no accesses recorded")
	}
	if c.Used() < 0 {
		t.Fatalf("negative residency %d", c.Used())
	}
	if c.Used() > 8000+1000 {
		// At most one over-capacity forced entry can be in flight per
		// acquire; sustained overshoot means accounting corruption.
		if st.OverCapacity == 0 {
			t.Fatalf("used %d exceeds capacity without counted forcing", c.Used())
		}
	}
}

// TestAcquireWaitsForInFlightCopyFromAnotherGoroutine pins the
// cross-goroutine contract: a prefetch issued elsewhere is observed
// in-flight, and Acquire returns only once its deadline has passed.
func TestAcquireWaitsForInFlightCopyFromAnotherGoroutine(t *testing.T) {
	c := New(10000, bw, 1) // real-time copies: 1000 bytes = 1ms
	done := make(chan struct{})
	go func() {
		c.Prefetch(9, 3000) // ~3ms
		close(done)
	}()
	<-done
	start := time.Now()
	c.Acquire(ids(9), constBytes(3000))
	if !c.Resident(9) {
		t.Fatal("layer not resident after acquire")
	}
	if waited := time.Since(start); waited > 500*time.Millisecond {
		t.Fatalf("acquire waited unreasonably long: %v", waited)
	}
}
