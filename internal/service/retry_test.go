package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"testing"
	"time"

	"naspipe"
)

// TestRetryAfterDerivation pins the retry-hint math against a scheduler
// with manufactured state (no executor pool — the fields are
// package-local): backpressure scales with queue depth over worker
// throughput, quota waits for the tenant's longest-running job, and
// both respect the [1, 300] clamp.
func TestRetryAfterDerivation(t *testing.T) {
	s := &Scheduler{
		cfg:    SchedulerConfig{StateDir: t.TempDir(), Workers: 2, QueueLimit: 8, TenantQuota: 2}.withDefaults(),
		jobs:   make(map[string]*job),
		active: make(map[string]int),
		queue:  make(chan *job, 8),
	}

	// No completed run on record: nothing to extrapolate from, so both
	// codes fall back to the 1-second floor.
	if got := s.retryAfterLocked(CodeBackpressure, "a"); got != 1 {
		t.Fatalf("backpressure with no history = %d, want 1", got)
	}
	if got := s.retryAfterLocked(CodeQuotaExceeded, "a"); got != 1 {
		t.Fatalf("quota with no history = %d, want 1", got)
	}

	s.runEWMA = 10 * time.Second
	for i := 0; i < 4; i++ {
		s.queue <- &job{}
	}
	// 4 queued jobs drain through 2 workers at ~10s each → ~20s.
	if got := s.retryAfterLocked(CodeBackpressure, "a"); got != 20 {
		t.Fatalf("backpressure hint = %d, want 20", got)
	}

	// Tenant "a" has a job ~6s into an expected ~10s run, so a slot
	// should free in ~4s; tenant "b" has nothing running, so a full run
	// must complete first.
	s.jobs["j0001"] = &job{id: "j0001", spec: naspipe.JobSpec{Tenant: "a"},
		state: StateRunning, started: time.Now().Add(-6 * time.Second)}
	s.order = append(s.order, "j0001")
	if got := s.retryAfterLocked(CodeQuotaExceeded, "a"); got < 3 || got > 5 {
		t.Fatalf("quota hint for tenant with a running job = %d, want ~4", got)
	}
	if got := s.retryAfterLocked(CodeQuotaExceeded, "b"); got != 10 {
		t.Fatalf("quota hint for fully-queued tenant = %d, want 10", got)
	}

	// A tenant job already past its expected finish clamps to the floor,
	// and an enormous backlog clamps to the 300s ceiling.
	s.jobs["j0001"].started = time.Now().Add(-time.Minute)
	if got := s.retryAfterLocked(CodeQuotaExceeded, "a"); got != 1 {
		t.Fatalf("overdue-job quota hint = %d, want 1", got)
	}
	s.runEWMA = 1000 * time.Second
	if got := s.retryAfterLocked(CodeBackpressure, "a"); got != 300 {
		t.Fatalf("clamped backpressure hint = %d, want 300", got)
	}
}

// TestRetryAfterOnWire distinguishes the two 429 classes end to end: an
// over-quota submit and a backpressure submit both carry a structured
// code, a retry_after_sec body field, and a matching numeric
// Retry-After header — no hard-coded "1" once run history exists.
func TestRetryAfterOnWire(t *testing.T) {
	c, sched := newTestDaemon(t, SchedulerConfig{Workers: 1, QueueLimit: 1, TenantQuota: 1})
	ctx := context.Background()

	st, err := c.Submit(ctx, slowSpec("a"))
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	// Wait for the worker to own it so the next tenant's job lands in
	// the (single-slot) queue instead of racing it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := c.Get(ctx, st.ID)
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if got.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started (state %s)", st.ID, got.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Tenant "a" is at quota.
	_, err = c.Submit(ctx, slowSpec("a"))
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeQuotaExceeded {
		t.Fatalf("over-quota submit = %v, want %q", err, CodeQuotaExceeded)
	}
	if ae.Status != http.StatusTooManyRequests || ae.RetryAfterSec < 1 {
		t.Fatalf("quota error = status %d retry %ds, want 429 with a positive hint", ae.Status, ae.RetryAfterSec)
	}

	// Tenant "b" fills the queue slot; tenant "c" hits backpressure.
	if _, err := c.Submit(ctx, slowSpec("b")); err != nil {
		t.Fatalf("queue-filling submit: %v", err)
	}
	buf, _ := json.Marshal(slowSpec("c"))
	resp, err := c.HTTP.Post(c.Base+"/"+APIVersion+"/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("raw submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("backpressure status = %d, want 429", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == nil {
		t.Fatalf("decoding backpressure body: %v", err)
	}
	if eb.Error.Code != CodeBackpressure {
		t.Fatalf("backpressure code = %q, want %q (must be distinguishable from quota)", eb.Error.Code, CodeBackpressure)
	}
	hdr, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || hdr < 1 {
		t.Fatalf("Retry-After header = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if eb.Error.RetryAfterSec != hdr {
		t.Fatalf("body hint %ds != header %ds", eb.Error.RetryAfterSec, hdr)
	}

	// Once a run completes, quota hints extrapolate from its wall time
	// instead of the no-history floor.
	sched.mu.Lock()
	sched.runEWMA = 90 * time.Second
	sched.mu.Unlock()
	_, err = c.Submit(ctx, slowSpec("b"))
	if !errors.As(err, &ae) || ae.Code != CodeQuotaExceeded {
		t.Fatalf("tenant-b over-quota submit = %v, want %q", err, CodeQuotaExceeded)
	}
	if ae.RetryAfterSec <= 1 {
		t.Fatalf("derived quota hint = %ds, want > 1 with 90s run history", ae.RetryAfterSec)
	}
}
