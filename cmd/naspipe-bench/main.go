// Command naspipe-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	naspipe-bench -exp table2            # one experiment
//	naspipe-bench -exp table2,figure5    # several
//	naspipe-bench -exp all               # the whole evaluation (§5)
//	naspipe-bench -exp all -quick        # reduced sizes for a fast pass
//	naspipe-bench -exp all -parallel 4   # fan experiments over 4 workers
//	naspipe-bench -concurrent            # smoke the goroutine-per-stage plane
//
// The concurrent smoke doubles as the telemetry showcase:
//
//	naspipe-bench -concurrent -trace-out trace.json   # Chrome/Perfetto trace
//	naspipe-bench -concurrent -events-out run.jsonl   # replayable event log
//	naspipe-bench -concurrent -debug-addr :6060       # pprof + live counters
//	naspipe-bench -concurrent -progress 200ms         # periodic counter lines
//	naspipe-bench -concurrent -overhead               # telemetry cost gate
//
// The concurrent smoke also drives the fault-injection plane and the
// crash-consistent checkpoint/resume path:
//
//	naspipe-bench -concurrent -faults "seed=7,drop=0.1,delay=0.05"
//	naspipe-bench -concurrent -faults "crashat=2:9:F" -checkpoint run.ckpt
//	naspipe-bench -concurrent -checkpoint run.ckpt -resume
//
// An injected crash exits with code 3 after persisting the checkpoint
// (when -checkpoint is set), so a shell loop can resume until clean; a
// resumed run that completes verifies its suffix trace composes with
// the committed prefix to the uninterrupted sequential result, bitwise.
// With -supervise the supervision plane does the resume loop in-process
// (crashes and watchdog-diagnosed stalls auto-resume from the latest
// checkpoint) and the completed run is verified the same way:
//
//	naspipe-bench -concurrent -faults "seed=7,crash=0.02" -checkpoint run.ckpt -supervise
//
// Exit codes: 0 complete+verified, 1 run/verification failure (including
// supervisor give-up), 2 usage, 3 resumable (injected crash without
// -supervise, or SIGINT/SIGTERM with a valid checkpoint).
//
// The -parallel fan-out changes wall-clock time only: reports are
// assembled in canonical experiment order and are byte-identical to a
// serial run. Ctrl-C cancels cooperatively — the partial report printed
// so far is flushed before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"naspipe"
	"naspipe/internal/data"
	"naspipe/internal/metrics"
	"naspipe/internal/telemetry"
)

func main() {
	supDef := naspipe.DefaultSuperviseConfig()
	var (
		exps       = flag.String("exp", "all", "comma-separated experiment names, or 'all' (known: "+strings.Join(naspipe.ExperimentNames(), ", ")+")")
		quick      = flag.Bool("quick", false, "reduced sizes for a fast smoke pass")
		seed       = flag.Uint64("seed", 42, "global random seed")
		gpus       = flag.Int("gpus", 8, "default GPU count for single-cluster experiments")
		subnets    = flag.Int("subnets", 0, "performance-plane subnets per run (0 = default)")
		par        = flag.Int("parallel", 0, "experiment fan-out workers (0 = GOMAXPROCS, 1 = serial)")
		concurrent = flag.Bool("concurrent", false, "run a goroutine-per-stage CSP smoke instead of experiments")
		predictor  = flag.Bool("predictor", false, "with -concurrent: enable the Algorithm 3 context predictor")
		cacheFac   = flag.Float64("cachefactor", 3, "with -concurrent: per-stage cache budget as a multiple of the average subnet footprint (0 disables the cache)")
		traceOut   = flag.String("trace-out", "", "with -concurrent: write a Chrome trace-event JSON of the run (load in Perfetto / chrome://tracing)")
		eventsOut  = flag.String("events-out", "", "with -concurrent: write the raw telemetry stream as JSONL (inspect with naspipe-replay -events)")
		debugAddr  = flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /debug/telemetry on this address for the process lifetime")
		progress   = flag.Duration("progress", 0, "with -concurrent: print a live counter line at this interval (e.g. 200ms)")
		overhead   = flag.Bool("overhead", false, "with -concurrent: measure telemetry overhead (off vs on) and fail above 5%")
		faultSpec  = flag.String("faults", "", "with -concurrent: deterministic fault plan, e.g. \"seed=7,drop=0.1,crashat=2:9:F\" (keys: seed, crash, crashat, drop, delay, dup, fetchfail, maxdelay, backoff, backoffmax, retries)")
		ckptPath   = flag.String("checkpoint", "", "with -concurrent: persist crash-consistent checkpoints to this file (an injected crash then exits 3, resumable)")
		resume     = flag.Bool("resume", false, "with -concurrent: resume from -checkpoint instead of starting fresh, then verify bitwise against the sequential reference")
		jitter     = flag.Float64("jitter", 0, "with -concurrent: compute-timing jitter magnitude for the smoke workload (tasks really sleep)")

		supervised   = flag.Bool("supervise", false, "with -concurrent: auto-resume crashes and watchdog-diagnosed stalls in-process (requires -checkpoint)")
		stallTimeout = flag.Duration("stall-timeout", supDef.Watchdog.StallAfter, "with -supervise: declare a stall after this long without frontier or task progress")
		maxRestarts  = flag.Int("max-restarts", supDef.MaxRestarts, "with -supervise: retry budget across the whole run")
		elasticAfter = flag.Int("elastic", 0, "with -supervise: halve the pipeline depth after N consecutive incidents on one stage (0 = off)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel between tasks; a checkpointed run exits
	// resumable (3) with its committed frontier already on disk.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		// The bus is swapped in by whichever mode runs; serve immediately so
		// pprof is reachable even during long experiment sweeps.
		addr, shutdown, err := telemetry.ServeDebug(*debugAddr, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "debug server: %v\n", err)
			os.Exit(2)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/ (pprof, vars, telemetry)\n", addr)
	}

	if *resume && *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "naspipe-bench: -resume requires -checkpoint")
		os.Exit(2)
	}
	if (*faultSpec != "" || *ckptPath != "" || *supervised) && !*concurrent {
		fmt.Fprintln(os.Stderr, "naspipe-bench: -faults/-checkpoint/-resume/-supervise require -concurrent")
		os.Exit(2)
	}
	if *supervised && *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "naspipe-bench: -supervise requires -checkpoint (recovery resumes from it)")
		os.Exit(2)
	}
	if *concurrent {
		cc := ccOptions{
			seed: *seed, gpus: *gpus, cacheFactor: *cacheFac, predictor: *predictor,
			traceOut: *traceOut, eventsOut: *eventsOut, debugAddr: *debugAddr,
			progress: *progress, ckpt: *ckptPath, resume: *resume,
			subnets: *subnets, jitter: *jitter,
			supervised: *supervised, stallTimeout: *stallTimeout,
			maxRestarts: *maxRestarts, elastic: *elasticAfter,
		}
		if *faultSpec != "" {
			plan, err := naspipe.ParseFaultPlan(*faultSpec)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			cc.faults = plan
		}
		if *overhead {
			os.Exit(overheadGate(ctx, cc))
		}
		os.Exit(concurrentSmoke(ctx, cc))
	}

	o := naspipe.DefaultExperimentOptions()
	if *quick {
		o = naspipe.QuickExperimentOptions()
	}
	o.Seed = *seed
	o.GPUs = *gpus
	o.Parallelism = *par
	if *subnets > 0 {
		o.Subnets = *subnets
	}

	if *exps == "all" {
		t0 := time.Now()
		out, err := naspipe.AllExperimentsContext(ctx, o)
		fmt.Print(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "all: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[all %d experiments completed in %v]\n", len(naspipe.ExperimentNames()), time.Since(t0).Round(time.Millisecond))
		return
	}

	exit := 0
	for _, name := range strings.Split(*exps, ",") {
		name = strings.TrimSpace(name)
		t0 := time.Now()
		out, err := naspipe.ExperimentContext(ctx, name, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			exit = 1
			continue
		}
		fmt.Print(out)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}
	os.Exit(exit)
}

// ccOptions parameterize the concurrent smoke and its telemetry outputs.
type ccOptions struct {
	seed        uint64
	gpus        int
	cacheFactor float64
	predictor   bool
	traceOut    string
	eventsOut   string
	debugAddr   string
	progress    time.Duration
	faults      *naspipe.FaultPlan
	ckpt        string
	resume      bool
	subnets     int     // 0 = the default smoke stream length
	jitter      float64 // compute-timing jitter magnitude

	supervised   bool
	stallTimeout time.Duration
	maxRestarts  int
	elastic      int
}

// smokeConfig is the concurrent plane's canonical smoke workload.
func (cc ccOptions) smokeConfig() naspipe.Config {
	cfg := naspipe.Config{
		Space:      naspipe.NLPc3.Scaled(8, 3),
		Spec:       naspipe.DefaultCluster(cc.gpus),
		Seed:       cc.seed,
		NumSubnets: 48,
	}
	if cc.subnets > 0 {
		cfg.NumSubnets = cc.subnets
	}
	if cc.jitter > 0 {
		cfg.TimingJitter = cc.jitter
		cfg.JitterSeed = cc.seed
	}
	return cfg
}

// runConcurrent executes one smoke run, optionally publishing to bus.
func (cc ccOptions) runConcurrent(ctx context.Context, bus *telemetry.Bus, trace bool) (naspipe.Result, error) {
	return cc.runConfig(ctx, cc.smokeConfig(), bus, trace)
}

// trainConfig is the numeric training config paired with the smoke
// workload for checkpoint weight checksums and resume verification.
func (cc ccOptions) trainConfig() naspipe.TrainConfig {
	return naspipe.TrainConfig{
		Space: cc.smokeConfig().Space, Dim: 8, Seed: cc.seed,
		BatchSize: 2, LR: 0.05, Dataset: data.WNMT,
	}
}

// newRunner builds the runner for the concurrent smoke from the flag set.
func (cc ccOptions) newRunner(bus *telemetry.Bus, trace bool) (*naspipe.Runner, error) {
	opts := []naspipe.RunnerOption{
		naspipe.WithExecutor(naspipe.ExecutorConcurrent),
		naspipe.WithTrace(trace),
		naspipe.WithCache(cc.cacheFactor),
	}
	if cc.predictor {
		opts = append(opts, naspipe.WithPredictor(true))
	}
	if bus != nil {
		opts = append(opts, naspipe.WithTelemetry(bus))
	}
	if cc.faults != nil {
		opts = append(opts, naspipe.WithFaults(cc.faults))
	}
	if cc.ckpt != "" {
		opts = append(opts,
			naspipe.WithCheckpoint(cc.ckpt),
			naspipe.WithCheckpointTraining(cc.trainConfig()))
	}
	if cc.elastic > 0 {
		opts = append(opts, naspipe.WithElasticResume())
	}
	return naspipe.NewRunner(opts...)
}

// runConfig executes one concurrent run of cfg, optionally publishing to bus.
func (cc ccOptions) runConfig(ctx context.Context, cfg naspipe.Config, bus *telemetry.Bus, trace bool) (naspipe.Result, error) {
	r, err := cc.newRunner(bus, trace)
	if err != nil {
		return naspipe.Result{}, err
	}
	if cc.resume {
		return r.Resume(ctx, cfg)
	}
	return r.Run(ctx, cfg)
}

// runSupervised executes the smoke workload under the supervision plane:
// crashes and watchdog-diagnosed stalls auto-resume in-process from the
// checkpoint, and health transitions land on the same telemetry bus as
// the engine events.
func (cc ccOptions) runSupervised(ctx context.Context, bus *telemetry.Bus) (naspipe.Result, *naspipe.SuperviseReport, error) {
	r, err := cc.newRunner(bus, true)
	if err != nil {
		return naspipe.Result{}, nil, err
	}
	sc := naspipe.DefaultSuperviseConfig()
	sc.Watchdog.StallAfter = cc.stallTimeout
	sc.MaxRestarts = cc.maxRestarts
	sc.ElasticAfter = cc.elastic
	sc.Telemetry = bus
	sc.Log = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	cfg := cc.smokeConfig()
	if cc.resume {
		return r.ResumeSupervised(ctx, cfg, sc)
	}
	return r.RunSupervised(ctx, cfg, sc)
}

// concurrentSmoke exercises the goroutine-per-stage execution plane once
// and prints its verification verdict, contention profile, and — with the
// cache enabled — the memory-context profile. With the predictor on, a
// hit rate at or below zero is a regression and fails the smoke.
func concurrentSmoke(ctx context.Context, cc ccOptions) int {
	var bus *telemetry.Bus
	if cc.traceOut != "" || cc.eventsOut != "" || cc.debugAddr != "" || cc.progress > 0 {
		bus = telemetry.NewBus(0)
		if cc.debugAddr != "" {
			telemetry.PublishBus(bus)
		}
	}
	stopProgress := telemetry.StartProgress(os.Stderr, bus, cc.progress)

	t0 := time.Now()
	var (
		res naspipe.Result
		rep *naspipe.SuperviseReport
		err error
	)
	if cc.supervised {
		res, rep, err = cc.runSupervised(ctx, bus)
	} else {
		res, err = cc.runConcurrent(ctx, bus, true)
	}
	stopProgress()
	if err != nil {
		var crash *naspipe.CrashError
		var giveUp *naspipe.GiveUpError
		switch {
		case errors.As(err, &giveUp):
			fmt.Fprintf(os.Stderr, "concurrent: supervisor gave up: %v\n", err)
			if bus != nil {
				exportTelemetry(bus, cc.traceOut, cc.eventsOut)
			}
			return 1
		case errors.As(err, &crash):
			fmt.Fprintf(os.Stderr, "concurrent: injected crash: %v\n", err)
			if cc.ckpt != "" {
				printBenchCheckpoint(cc.ckpt, "rerun with -resume")
			}
			if bus != nil {
				// The fault timeline up to the crash is the artifact that
				// matters; export it even though the run died.
				exportTelemetry(bus, cc.traceOut, cc.eventsOut)
			}
			return 3
		case ctx.Err() != nil:
			fmt.Fprintf(os.Stderr, "concurrent: interrupted: %v\n", err)
			if cc.ckpt != "" {
				printBenchCheckpoint(cc.ckpt, "rerun with -resume (or -supervise -resume)")
				if bus != nil {
					exportTelemetry(bus, cc.traceOut, cc.eventsOut)
				}
				return 3
			}
			return 1
		default:
			fmt.Fprintf(os.Stderr, "concurrent: %v\n", err)
			return 1
		}
	}
	fmt.Printf("concurrent CSP plane: %d subnets, %d stages, %v wall clock\n",
		res.Completed, res.D, time.Since(t0).Round(time.Microsecond))
	if rep != nil {
		fmt.Printf("supervised run: %d restarts, %d watchdog fires, final state %s, final D=%d\n",
			rep.Restarts, rep.WatchdogFires, rep.FinalState, rep.FinalGPUs)
		if len(rep.ElasticSteps) > 0 {
			fmt.Printf("elastic depth steps: %v\n", rep.ElasticSteps)
		}
	}
	if res.ObservedTrace != nil {
		fmt.Printf("per-layer access order verified against the sequential reference (%d observed events)\n",
			len(res.ObservedTrace.Events))
	}
	if cc.resume || cc.supervised {
		if err := cc.verifyResume(res); err != nil {
			fmt.Fprintf(os.Stderr, "resume verification: %v\n", err)
			return 1
		}
		fmt.Printf("resume verified: prefix [0,%d) + replayed suffix == uninterrupted sequential weights, bitwise\n", res.BaseSeq)
	}
	fmt.Print(metrics.ContentionTable(res.Contention))
	if res.CacheStats != nil {
		fmt.Print(metrics.CacheTable(res.CacheStats))
		fmt.Printf("cache hit rate %s (budget %s of %s supernet, predictor %v)\n",
			metrics.Percent(res.CacheHitRate), metrics.Gigabytes(res.CachedParamBytes),
			metrics.Gigabytes(res.CPUMemBytes), cc.predictor)
		if cc.predictor && res.CacheHitRate <= 0 {
			fmt.Fprintf(os.Stderr, "concurrent: predictor enabled but cache hit rate is %v\n", res.CacheHitRate)
			return 1
		}
	}
	if bus != nil {
		fmt.Println("telemetry: " + bus.Snapshot().String())
		if code := exportTelemetry(bus, cc.traceOut, cc.eventsOut); code != 0 {
			return code
		}
	}
	return 0
}

// verifyResume checks the crash-resume composition law on real weights:
// training the committed prefix sequentially and replaying the resumed
// run's suffix trace on the same net must land bitwise on the
// uninterrupted sequential run's checksum.
func (cc ccOptions) verifyResume(res naspipe.Result) error {
	tc := cc.trainConfig()
	cfg := cc.smokeConfig()
	full := naspipe.SampleSubnets(cfg.Space, cfg.Seed, cfg.NumSubnets)
	want := naspipe.TrainSequential(tc, full).Checksum
	prefix := naspipe.TrainSequential(tc, full[:res.BaseSeq])
	got := prefix.Checksum
	if res.BaseSeq < len(full) {
		rep, err := naspipe.TrainReplayOn(tc, prefix.Net, full[res.BaseSeq:], res.ObservedTrace)
		if err != nil {
			return err
		}
		got = rep.Checksum
	}
	if got != want {
		return fmt.Errorf("resumed weights %016x diverge from sequential reference %016x", got, want)
	}
	return nil
}

// printBenchCheckpoint reports the on-disk checkpoint a resumable exit
// leaves behind, with the flag hint for continuing the run.
func printBenchCheckpoint(path, hint string) {
	ck, err := naspipe.LoadCheckpoint(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkpoint: %s unreadable: %v\n", path, err)
		return
	}
	fmt.Fprintf(os.Stderr, "checkpoint: %s at cursor %d/%d, incarnation %d — %s\n",
		path, ck.Cursor, ck.NumSubnets, ck.Incarnation, hint)
}

// exportTelemetry writes the captured stream to the requested files; the
// Chrome trace is validated after writing so a malformed export fails the
// command instead of failing later in the browser.
func exportTelemetry(bus *telemetry.Bus, traceOut, eventsOut string) int {
	if dropped := bus.Dropped(); dropped > 0 {
		fmt.Fprintf(os.Stderr, "telemetry: ring dropped %d events; exports are truncated (raise the bus capacity)\n", dropped)
	}
	lines, err := telemetry.ExportFiles(bus, traceOut, eventsOut)
	for _, l := range lines {
		fmt.Println(l)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// overheadRuns is the min-of-N repetition count for the overhead gate;
// minimums discard scheduler noise, which on this plane dwarfs the
// telemetry cost being measured.
const overheadRuns = 3

// overheadGate times the smoke config with telemetry disabled and
// enabled and fails if the enabled run is more than 5% slower. The gate
// config adds modeled kernel timings (TimingJitter: each task really
// sleeps its jittered duration): against the bare smoke run — whose
// "compute" is a single scheduler yield, i.e. zero-length tasks — any
// fixed per-event cost is unboundedly large in relative terms, which
// measures the degenerate baseline rather than the telemetry.
func overheadGate(ctx context.Context, cc ccOptions) int {
	cfg := cc.smokeConfig()
	cfg.TimingJitter = 1.0
	cfg.JitterSeed = cc.seed
	minRun := func(bus func() *telemetry.Bus) (time.Duration, error) {
		best := time.Duration(-1)
		for i := 0; i < overheadRuns; i++ {
			t0 := time.Now()
			if _, err := cc.runConfig(ctx, cfg, bus(), false); err != nil {
				return 0, err
			}
			if d := time.Since(t0); best < 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	off, err := minRun(func() *telemetry.Bus { return nil })
	if err != nil {
		fmt.Fprintf(os.Stderr, "overhead (telemetry off): %v\n", err)
		return 1
	}
	on, err := minRun(func() *telemetry.Bus { return telemetry.NewBus(0) })
	if err != nil {
		fmt.Fprintf(os.Stderr, "overhead (telemetry on): %v\n", err)
		return 1
	}
	pct := 100 * (float64(on)/float64(off) - 1)
	fmt.Printf("telemetry overhead: off=%v on=%v (%+.1f%%, min of %d runs each, gate 5%%)\n",
		off.Round(time.Microsecond), on.Round(time.Microsecond), pct, overheadRuns)
	if pct > 5 {
		fmt.Fprintf(os.Stderr, "overhead: telemetry costs %.1f%% on the smoke config (gate: 5%%)\n", pct)
		return 1
	}
	return 0
}
