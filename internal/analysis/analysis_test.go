package analysis

import (
	"testing"
	"testing/quick"

	"naspipe/internal/cluster"
	"naspipe/internal/engine"
	"naspipe/internal/sched"
	"naspipe/internal/supernet"
	"naspipe/internal/trace"
)

func runTraced(t testing.TB, policy string, d int) *trace.Trace {
	t.Helper()
	p, err := sched.New(policy)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := engine.Run(engine.Config{
		Space: supernet.NLPc3, Spec: cluster.Default(d), Seed: 1,
		NumSubnets: 24, RecordTrace: true,
	}, p)
	if res.Failed || res.Deadlock {
		t.Fatalf("%s run failed", policy)
	}
	return res.Trace
}

func TestStalenessZeroForCSP(t *testing.T) {
	rep := Staleness(runTraced(t, "naspipe", 4))
	if rep.StaleReads != 0 || rep.MissedWrites != 0 {
		t.Fatalf("CSP trace reported stale reads: %v", rep)
	}
	if rep.Reads == 0 {
		t.Fatal("no reads counted")
	}
}

func TestStalenessPositiveForBSPAndASP(t *testing.T) {
	for _, policy := range []string{"gpipe", "pipedream"} {
		rep := Staleness(runTraced(t, policy, 4))
		if rep.StaleReads == 0 {
			t.Errorf("%s trace reported no staleness on a dense space", policy)
		}
		if rep.MaxMissed < 1 || rep.MissedWrites < rep.StaleReads {
			t.Errorf("%s staleness accounting inconsistent: %v", policy, rep)
		}
	}
}

func TestStalenessGrowsWithClusterSize(t *testing.T) {
	small := Staleness(runTraced(t, "gpipe", 4))
	large := Staleness(runTraced(t, "gpipe", 8))
	if large.MissedWrites <= small.MissedWrites {
		t.Fatalf("BSP staleness should grow with GPUs: %d vs %d",
			small.MissedWrites, large.MissedWrites)
	}
}

func TestStalenessHandCrafted(t *testing.T) {
	var tr trace.Trace
	// Subnets 0 and 1 share layer 5; 1 reads before 0 writes.
	tr.Append(0, 5, 0, 0, trace.Read)
	tr.Append(1, 5, 1, 0, trace.Read) // stale: missed subnet 0's write
	tr.Append(2, 5, 0, 0, trace.Write)
	tr.Append(3, 5, 1, 0, trace.Write)
	rep := Staleness(&tr)
	if rep.Reads != 2 || rep.StaleReads != 1 || rep.MissedWrites != 1 || rep.MaxMissed != 1 {
		t.Fatalf("hand-crafted staleness wrong: %v", rep)
	}
	if rep.StaleFraction() != 0.5 {
		t.Fatalf("fraction %f", rep.StaleFraction())
	}
}

func TestDependenciesHandCrafted(t *testing.T) {
	subs := []supernet.Subnet{
		{Seq: 0, Choices: []int{0, 0}},
		{Seq: 1, Choices: []int{0, 1}}, // depends on 0 (block 0)
		{Seq: 2, Choices: []int{1, 2}}, // independent of both
		{Seq: 3, Choices: []int{0, 2}}, // depends on 0,1 (block 0), 2 (block 1)
	}
	d := Dependencies(subs)
	if d.Subnets != 4 {
		t.Fatal("count")
	}
	// Chain 0 -> 1 -> 3 has length 3.
	if d.LongestChain != 3 {
		t.Fatalf("longest chain %d want 3", d.LongestChain)
	}
	if d.ConsecutiveRate != 2.0/3 { // pairs (0,1) and (2,3) share
		t.Fatalf("consecutive rate %f", d.ConsecutiveRate)
	}
}

func TestDependenciesMatchesSamplerRate(t *testing.T) {
	subs := supernet.Sample(supernet.NLPc1, 1, 150)
	d := Dependencies(subs)
	// 1-(1-1/72)^48 ≈ 0.49 for any pair.
	if d.PairRate < 0.35 || d.PairRate > 0.63 {
		t.Fatalf("pair rate %f implausible for NLP.c1", d.PairRate)
	}
	if d.LongestChain < 10 {
		t.Fatalf("longest chain %d implausibly short", d.LongestChain)
	}
}

func TestDependenciesDegenerate(t *testing.T) {
	if d := Dependencies(nil); d.LongestChain != 0 {
		t.Fatal("empty stream")
	}
	one := Dependencies([]supernet.Subnet{{Seq: 0, Choices: []int{1}}})
	if one.LongestChain != 1 || one.AvgWidth != 1 {
		t.Fatalf("single subnet: %+v", one)
	}
}

// Property: staleness of any trace is internally consistent.
func TestQuickStalenessConsistent(t *testing.T) {
	f := func(seed uint64, dRaw uint8) bool {
		d := int(dRaw)%4 + 1
		p, _ := sched.New("pipedream")
		res, _ := engine.Run(engine.Config{
			Space: supernet.CVc3.Scaled(6, 2), Spec: cluster.Default(d), Seed: seed,
			NumSubnets: 10, RecordTrace: true,
		}, p)
		if res.Failed || res.Deadlock {
			return false
		}
		rep := Staleness(res.Trace)
		if rep.StaleReads > rep.Reads || rep.MissedWrites < rep.StaleReads && rep.StaleReads > 0 {
			return false
		}
		return rep.MaxMissed <= rep.MissedWrites
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
