// Package scenario is the declarative scenario plane: one JSON file
// describes a complete world to train in — cluster topology (GPU count,
// heterogeneous stage speeds, timing jitter), workload (search space,
// stream length and skew, cache budget, predictor, per-job arrival for
// the service plane), and fault storm (targeted crash/wedge schedules,
// message chaos, supervision budgets, elastic recovery) — and compiles
// down to the existing JobSpec / engine.Config / fault.Plan /
// supervise.Config types. Nothing in a scenario can express a
// configuration those types cannot; the compiler is a pure lowering.
//
// The format is strict: unknown fields are rejected at decode time, and
// a table of invariant checks (invariants, in the style of the
// optionFacts validation kernel) names the offending field of the first
// violation through the shared spec-error type naspipe.SpecField reads.
// The sweep harness (cmd/naspipe-scenario) runs a catalog of scenario
// files, verifies every cell to bitwise weight equality against the
// sequential reference, and writes a deterministic scorecard — so a new
// stress scenario is a contributed JSON file, not a hand-rolled test.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"regexp"

	"naspipe"
	"naspipe/internal/fault"
)

// Version is the scenario format version this build speaks. A file with
// an empty scenario_version means the current version.
const Version = "v1"

// World declares the cluster the scenario runs on. Everything here
// perturbs timing only — Definition 1 makes the training result
// invariant under any World, which every sweep cell re-verifies.
type World struct {
	// GPUs is the pipeline depth.
	GPUs int `json:"gpus"`
	// StageSpeeds models heterogeneity: stage k runs at 1/StageSpeeds[k]
	// of baseline speed (2.0 = a straggler at half speed). Empty =
	// homogeneous; otherwise one positive factor per GPU.
	StageSpeeds []float64 `json:"stage_speeds,omitempty"`
	// Jitter perturbs per-task compute time by a deterministic factor in
	// [1-j, 1+j] keyed by JitterSeed.
	Jitter     float64 `json:"jitter,omitempty"`
	JitterSeed uint64  `json:"jitter_seed,omitempty"`
	// Processes, when non-zero, runs the real pass on the distributed
	// execution plane: a coordinator plus one stage worker per GPU,
	// connected over fault-tolerant transport links, with worker death
	// healed by fleet relaunch from the committed cursor. The fleet
	// shape is one worker per stage, so the only legal value is GPUs.
	// Like everything else in World, it perturbs execution, not results:
	// the cell's checksum must match the single-process one bitwise.
	Processes int `json:"processes,omitempty"`
}

// JobLoad is one job of a multi-job workload, submitted through the
// service-plane Scheduler. Zero-valued fields inherit the workload
// defaults; a zero Seed inherits workload.seed + the job's index, so
// sibling jobs explore distinct streams by default.
type JobLoad struct {
	Tenant  string `json:"tenant,omitempty"`
	Name    string `json:"name,omitempty"`
	Subnets int    `json:"subnets,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// Faults overrides the storm's fault plan for this job only.
	Faults string `json:"faults,omitempty"`
	// DelayMs staggers this job's submission (arrival "staggered" only).
	DelayMs int `json:"delay_ms,omitempty"`
}

// Workload declares what the cluster trains: the search space, the
// exploration stream, the memory plane, and — for service-plane
// scenarios — the per-job arrival pattern.
type Workload struct {
	// Space is a Table 1 search-space name ("NLP.c3", ...).
	Space string `json:"space"`
	// ScaleBlocks/ScaleChoices re-geometry the space (both or neither).
	ScaleBlocks  int `json:"scale_blocks,omitempty"`
	ScaleChoices int `json:"scale_choices,omitempty"`
	// Subnets is the stream length (per job; jobs may override).
	Subnets int `json:"subnets"`
	// Seed drives SPOS subnet sampling.
	Seed uint64 `json:"seed"`
	// Window bounds in-flight subnets (0 = engine default).
	Window int `json:"window,omitempty"`
	// CacheFactor sizes the per-stage layer cache as a multiple of the
	// average subnet footprint; nil leaves both planes' defaults.
	CacheFactor *float64 `json:"cache_factor,omitempty"`
	// Predictor enables the Algorithm 3 context predictor.
	Predictor bool `json:"predictor,omitempty"`
	// Train attaches the numeric training plane. Scenarios always verify
	// bitwise, so a nil Train gets the default small plane (dim 8).
	Train *naspipe.TrainSpec `json:"train,omitempty"`
	// Jobs, when non-empty, makes this a multi-job scenario: every job
	// is submitted to an in-process service Scheduler. Empty = one job
	// run directly on a Runner.
	Jobs []JobLoad `json:"jobs,omitempty"`
	// Arrival is the multi-job submission pattern: "burst" (default,
	// all at once) or "staggered" (honor each job's delay_ms).
	Arrival string `json:"arrival,omitempty"`
}

// Storm declares the scenario's fault plane and how the system is
// allowed to fight back.
type Storm struct {
	// Faults is a fault-plan spec (naspipe.ParseFaultPlan grammar),
	// including multi-incarnation entries: "seed=9,crashat=1:2:9:F".
	Faults string `json:"faults,omitempty"`
	// Supervise opts every job into the supervision plane (auto-resume,
	// watchdog, restart budgets). Nil = unsupervised; a crashing
	// single-job scenario is then driven by the harness's operator
	// resume loop instead.
	Supervise *naspipe.SuperviseSpec `json:"supervise,omitempty"`
	// Elastic permits resuming across a halved GPU count.
	Elastic bool `json:"elastic,omitempty"`
}

// Expect declares the scenario's deterministic acceptance gates beyond
// bitwise verification (which every cell always gets). Nil pointers /
// zero values mean "don't care".
type Expect struct {
	// Verified overrides the default gate (true). Setting it false
	// documents a scenario that is *expected* not to verify.
	Verified *bool `json:"verified,omitempty"`
	// Restarts pins the exact restart count — meaningful only for
	// targeted (storm/crashat) schedules, never rate-based ones.
	Restarts *int `json:"restarts,omitempty"`
	// MinRestarts gates rate-based schedules ("it really crashed").
	MinRestarts int `json:"min_restarts,omitempty"`
	// WatchdogFires pins the exact watchdog-fire count.
	WatchdogFires *int `json:"watchdog_fires,omitempty"`
	// FinalGPUs pins the post-recovery pipeline depth (elastic).
	FinalGPUs int `json:"final_gpus,omitempty"`
}

// Scenario is one declarative world+workload+storm description.
type Scenario struct {
	// ScenarioVersion pins the format; "" means Version.
	ScenarioVersion string `json:"scenario_version,omitempty"`
	// Name is the scorecard key and must be a slug: [a-z0-9-]+.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	World    World    `json:"world"`
	Workload Workload `json:"workload"`
	Storm    *Storm   `json:"storm,omitempty"`
	Expect   *Expect  `json:"expect,omitempty"`
}

// Parse decodes and validates one scenario document. Unknown fields at
// any nesting level are errors, as is trailing data; every invariant
// violation is a spec error naming the offending field (see
// naspipe.SpecField).
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after the document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Encode renders the scenario in canonical form: indented JSON with a
// trailing newline. Parse∘Encode is a fixed point (FuzzScenarioParse
// pins it), so a canonicalized file re-encodes byte-identically.
func Encode(s *Scenario) ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

var nameRe = regexp.MustCompile(`^[a-z0-9]+(-[a-z0-9]+)*$`)

// invariant is one row of the scenario validation kernel: the JSON
// field it guards and a check returning a non-empty violation message.
// The table style mirrors the optionFacts kernel in the root package —
// every surface that accepts scenarios (library, CLI, tests) runs the
// same rows, so error text and field attribution cannot drift.
type invariant struct {
	field string
	check func(*Scenario) string
}

var invariants = []invariant{
	{"scenario_version", func(s *Scenario) string {
		if s.ScenarioVersion != "" && s.ScenarioVersion != Version {
			return fmt.Sprintf("unsupported version %q (this build speaks %q)", s.ScenarioVersion, Version)
		}
		return ""
	}},
	{"name", func(s *Scenario) string {
		if !nameRe.MatchString(s.Name) {
			return fmt.Sprintf("%q is not a slug (want lowercase [a-z0-9-], e.g. \"crash-storm\")", s.Name)
		}
		return ""
	}},
	{"world.gpus", func(s *Scenario) string {
		if s.World.GPUs <= 0 {
			return fmt.Sprintf("pipeline depth must be positive, got %d", s.World.GPUs)
		}
		return ""
	}},
	{"world.stage_speeds", func(s *Scenario) string {
		sp := s.World.StageSpeeds
		if len(sp) > 0 && len(sp) != s.World.GPUs {
			return fmt.Sprintf("want one speed factor per GPU (%d), got %d", s.World.GPUs, len(sp))
		}
		for k, v := range sp {
			if !(v > 0) || math.IsInf(v, 0) {
				return fmt.Sprintf("stage %d factor %v; factors must be positive and finite", k, v)
			}
		}
		return ""
	}},
	{"world.jitter", func(s *Scenario) string {
		if j := s.World.Jitter; j < 0 || j >= 1 {
			return fmt.Sprintf("jitter must be in [0, 1), got %v", j)
		}
		return ""
	}},
	{"world.processes", func(s *Scenario) string {
		p := s.World.Processes
		if p == 0 {
			return ""
		}
		if p != s.World.GPUs {
			return fmt.Sprintf("the distributed fleet runs one stage worker per GPU; processes must equal gpus (%d), got %d", s.World.GPUs, p)
		}
		if len(s.Workload.Jobs) > 0 {
			return "distributed fleets run single-job scenarios; drop workload.jobs"
		}
		if s.Storm != nil && s.Storm.Elastic {
			return "elastic depth changes are not supported on the distributed plane yet"
		}
		return ""
	}},
	{"workload.space", func(s *Scenario) string {
		if s.Workload.Space == "" {
			return "required (a Table 1 name like \"NLP.c3\")"
		}
		if _, err := naspipe.SpaceByName(s.Workload.Space); err != nil {
			return err.Error()
		}
		return ""
	}},
	{"workload.scale_blocks", func(s *Scenario) string {
		if (s.Workload.ScaleBlocks > 0) != (s.Workload.ScaleChoices > 0) {
			return "scale_blocks and scale_choices come together (both or neither)"
		}
		if s.Workload.ScaleBlocks < 0 || s.Workload.ScaleChoices < 0 {
			return "negative scale geometry"
		}
		return ""
	}},
	{"workload.subnets", func(s *Scenario) string {
		if s.Workload.Subnets <= 0 {
			return fmt.Sprintf("stream length must be positive, got %d", s.Workload.Subnets)
		}
		return ""
	}},
	{"workload.window", func(s *Scenario) string {
		if s.Workload.Window < 0 {
			return fmt.Sprintf("negative admission window %d", s.Workload.Window)
		}
		return ""
	}},
	{"workload.cache_factor", func(s *Scenario) string {
		if cf := s.Workload.CacheFactor; cf != nil && *cf < 0 {
			return fmt.Sprintf("negative cache factor %v", *cf)
		}
		return ""
	}},
	{"workload.predictor", func(s *Scenario) string {
		if s.Workload.Predictor && s.Workload.CacheFactor != nil && *s.Workload.CacheFactor == 0 {
			return "the predictor requires a cache; cache factor 0 disables it"
		}
		return ""
	}},
	{"workload.arrival", func(s *Scenario) string {
		switch s.Workload.Arrival {
		case "", "burst", "staggered":
		default:
			return fmt.Sprintf("unknown arrival pattern %q (want \"burst\" or \"staggered\")", s.Workload.Arrival)
		}
		if s.Workload.Arrival != "" && len(s.Workload.Jobs) == 0 {
			return "an arrival pattern needs workload.jobs"
		}
		return ""
	}},
	{"workload.jobs", func(s *Scenario) string {
		for i, j := range s.Workload.Jobs {
			if j.Subnets < 0 {
				return fmt.Sprintf("job %d: negative subnets %d", i, j.Subnets)
			}
			if j.DelayMs < 0 {
				return fmt.Sprintf("job %d: negative delay_ms %d", i, j.DelayMs)
			}
			if j.Faults != "" {
				if _, err := fault.ParsePlan(j.Faults); err != nil {
					return fmt.Sprintf("job %d: %v", i, err)
				}
			}
		}
		return ""
	}},
	{"storm.faults", func(s *Scenario) string {
		if s.Storm == nil || s.Storm.Faults == "" {
			return ""
		}
		if _, err := fault.ParsePlan(s.Storm.Faults); err != nil {
			return err.Error()
		}
		return ""
	}},
	{"expect.restarts", func(s *Scenario) string {
		if s.Expect == nil {
			return ""
		}
		if r := s.Expect.Restarts; r != nil && *r < 0 {
			return fmt.Sprintf("negative restart expectation %d", *r)
		}
		if s.Expect.MinRestarts < 0 {
			return fmt.Sprintf("negative min_restarts %d", s.Expect.MinRestarts)
		}
		return ""
	}},
	{"expect.watchdog_fires", func(s *Scenario) string {
		if s.Expect == nil || s.Expect.WatchdogFires == nil {
			return ""
		}
		if *s.Expect.WatchdogFires < 0 {
			return fmt.Sprintf("negative watchdog expectation %d", *s.Expect.WatchdogFires)
		}
		return ""
	}},
	{"expect.final_gpus", func(s *Scenario) string {
		if s.Expect != nil && s.Expect.FinalGPUs < 0 {
			return fmt.Sprintf("negative final_gpus %d", s.Expect.FinalGPUs)
		}
		return ""
	}},
}

// Validate runs the invariant table, then compiles every job and runs
// the compiled JobSpecs through the shared optionFacts kernel — so a
// scenario that parses clean is guaranteed to lower to runnable specs.
func (s *Scenario) Validate() error {
	for _, inv := range invariants {
		if msg := inv.check(s); msg != "" {
			return naspipe.SpecErrorf(inv.field, "%s", msg)
		}
	}
	jobs, err := s.compileJobs()
	if err != nil {
		return err
	}
	for i, j := range jobs {
		if err := j.Spec.Validate(); err != nil {
			if f := naspipe.SpecField(err); f != "" {
				return naspipe.SpecErrorf(f, "compiled job %d (%s): %v", i, j.Spec.Name, err)
			}
			return fmt.Errorf("scenario: compiled job %d (%s): %w", i, j.Spec.Name, err)
		}
	}
	return nil
}
