package experiments

import (
	"context"
	"fmt"
	"strings"

	"naspipe/internal/cluster"
	"naspipe/internal/engine"
	"naspipe/internal/layers"
	"naspipe/internal/metrics"
	"naspipe/internal/supernet"
	"naspipe/internal/trace"
	"naspipe/internal/train"
)

// Table1 prints the seven search-space configurations (paper Table 1).
func Table1(ctx context.Context, o Options) string {
	tb := metrics.NewTable("Table 1: default evaluation setup of seven search spaces",
		"Search Space", "# Choice Blocks", "# Layer/Block", "Dataset", "Supernet Params")
	for _, sp := range supernet.Spaces() {
		net := supernet.Build(sp)
		tb.AddRow(sp.Name, sp.Blocks, sp.Choices, sp.Dataset, metrics.Params(net.TotalParamBytes()))
	}
	tb.AddNote("parameter counts derive from Table 5 swap-time-calibrated layer sizes")
	return tb.Render()
}

// table2Spaces are the six spaces of Table 2 (NLP.c0 is excluded there
// because the baselines cannot run it).
var table2Spaces = []supernet.Space{
	supernet.NLPc1, supernet.NLPc2, supernet.NLPc3,
	supernet.CVc1, supernet.CVc2, supernet.CVc3,
}

// Table2 reproduces the resource-consumption and micro-event table.
func Table2(ctx context.Context, o Options) string {
	o = o.withDefaults()
	tb := metrics.NewTable("Table 2: resource consumption and micro events (8 GPUs)",
		"Space", "System", "Para.", "Score", "Batch", "GPU Mem.", "GPU ALU", "CPU Mem.", "Exec.(s)", "Bub.", "Cache Hit")
	for _, sp := range table2Spaces {
		// Score column: numeric plane, one run per system class.
		scores := map[string]string{}
		for _, policy := range perfSystems {
			num, err := o.numericRun(ctx, sp, policy, o.GPUs)
			if err != nil {
				scores[policy] = "-"
				continue
			}
			loss := o.probeValLoss(o.numericCfg(sp), num.Net)
			scores[policy] = fmt.Sprintf("%.2f", train.Score(sp.Domain, loss))
		}
		for _, policy := range perfSystems {
			res := runPerf(ctx, o, sp, policy, o.GPUs, false)
			if res.Failed {
				tb.AddRow(sp.Name, res.Policy, "-", "-", "-", "-", "-", "-", "-", "-", "(exceeds GPU memory)")
				continue
			}
			para := res.CachedParamBytes
			if para == 0 {
				para = res.SupernetBytes
			}
			tb.AddRow(sp.Name, res.Policy,
				metrics.Params(para),
				scores[policy],
				res.Batch,
				metrics.Factor(res.GPUMemX),
				metrics.Factor(res.ALUTotal),
				metrics.Gigabytes(res.CPUMemBytes),
				fmt.Sprintf("%.2f", res.ExecMsAvg/1000),
				fmt.Sprintf("%.2f", res.BubbleRatio),
				cacheHitCell(res),
			)
		}
	}
	tb.AddNote("Score from the scaled numeric plane (monotone proxy units, see train.Score)")
	tb.AddNote("bubble ratios run above the paper's: this engine charges full causal-wait time (see EXPERIMENTS.md)")
	return tb.Render()
}

// cacheHitCell renders the Table 2 cache-hit column: N/A for systems that
// never swap (or saw no cache accesses), and an explicit drop annotation
// when prefetches were abandoned because capacity was pinned by locked
// contexts — previously those drops were silent.
func cacheHitCell(res engine.Result) string {
	cell := metrics.Percent(res.CacheHitRate)
	if res.DroppedPrefetches > 0 {
		cell += fmt.Sprintf(" (%d dropped)", res.DroppedPrefetches)
	}
	return cell
}

// Table3 reproduces the reproducibility table: supernet loss and search
// accuracy across 4/8/16 GPUs under CSP, BSP, and ASP.
func Table3(ctx context.Context, o Options) string {
	o = o.withDefaults()
	gpuCounts := []int{4, 8, 16}
	spaces := table2Spaces
	if o.Quick {
		spaces = spaces[:2]
		gpuCounts = []int{4, 8}
	}
	tb := metrics.NewTable("Table 3: reproducibility (supernet loss | search accuracy | checksum)",
		append([]string{"Space", "Sync."},
			append(lossHeaders(gpuCounts), append(accHeaders(gpuCounts), "Reproducible")...)...)...)
	for _, sp := range spaces {
		for _, policy := range []string{"naspipe", "gpipe", "pipedream"} {
			row := []interface{}{sp.Name, syncName(policy)}
			losses := make([]string, 0, len(gpuCounts))
			accs := make([]string, 0, len(gpuCounts))
			var sums []uint64
			ok := true
			for _, d := range gpuCounts {
				num, err := o.numericRun(ctx, sp, policy, d)
				if err != nil {
					losses = append(losses, "-")
					accs = append(accs, "-")
					ok = false
					continue
				}
				sums = append(sums, num.Checksum)
				losses = append(losses, fmt.Sprintf("%.4f", o.probeValLoss(o.numericCfg(sp), num.Net)))
				// Search accuracy: best of a fixed candidate set evaluated
				// on the trained supernet (deterministic given weights).
				cfg := o.numericCfg(sp)
				cands := supernet.Sample(cfg.Space, o.Seed+99, 12)
				_, score := train.BestSubnetScore(cfg, num.Net, cands, 2)
				accs = append(accs, fmt.Sprintf("%.2f", score))
			}
			repro := "yes"
			if !ok {
				repro = "n/a"
			} else {
				for i := 1; i < len(sums); i++ {
					if sums[i] != sums[0] {
						repro = "NO"
					}
				}
			}
			for _, l := range losses {
				row = append(row, l)
			}
			for _, a := range accs {
				row = append(row, a)
			}
			row = append(row, repro)
			tb.AddRow(row...)
		}
	}
	tb.AddNote("Reproducible = final weights bitwise identical (FNV-64 over all parameter bits) across GPU counts")
	return tb.Render()
}

func lossHeaders(gpus []int) []string {
	out := make([]string, len(gpus))
	for i, d := range gpus {
		out[i] = fmt.Sprintf("Loss@%dGPU", d)
	}
	return out
}

func accHeaders(gpus []int) []string {
	out := make([]string, len(gpus))
	for i, d := range gpus {
		out[i] = fmt.Sprintf("Acc@%dGPU", d)
	}
	return out
}

// Table4 reproduces the access-and-update order of one shared layer under
// the three synchronization disciplines on 4 and 8 GPUs.
func Table4(ctx context.Context, o Options) string {
	o = o.withDefaults()
	sp := supernet.NLPc3
	n := 10
	// Find a layer accessed by at least three of the first n subnets.
	subs := supernet.Sample(sp, o.Seed, n)
	counts := map[supernet.LayerID][]int{}
	for _, sub := range subs {
		for _, id := range sub.LayerIDs(sp) {
			counts[id] = append(counts[id], sub.Seq)
		}
	}
	var target supernet.LayerID = -1
	bestUsers := 0
	for _, id := range sortedLayerIDs(counts) {
		users := counts[id]
		if len(users) >= 3 && len(users) > bestUsers {
			target = id
			bestUsers = len(users)
		}
	}
	if target < 0 {
		return "Table 4: no layer shared by >=3 of the first subnets (unexpected)\n"
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Table 4: access & update order of supernet layer %d (sampled by subnets %v)", target, counts[target]),
		"System", "4 GPUs", "8 GPUs")
	for _, policy := range []string{"naspipe", "gpipe", "pipedream"} {
		orders := make([]string, 0, 2)
		for _, d := range []int{4, 8} {
			oo := o
			oo.Subnets = n
			res := runPerf(ctx, oo, sp, policy, d, true)
			if res.Failed {
				orders = append(orders, "(failed)")
				continue
			}
			orders = append(orders, res.Trace.LayerOrder(target))
		}
		tb.AddRow(policyLabel(policy), orders[0], orders[1])
	}
	tb.AddNote("sequential semantics: %s", trace.SequentialOrder(counts[target]))
	return tb.Render()
}

func sortedLayerIDs(m map[supernet.LayerID][]int) []supernet.LayerID {
	out := make([]supernet.LayerID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func policyLabel(policy string) string {
	switch policy {
	case "naspipe":
		return "NASPipe"
	case "gpipe":
		return "GPipe"
	case "pipedream":
		return "PipeDream"
	case "vpipe":
		return "VPipe"
	}
	return policy
}

// Table5 reproduces the per-layer computation and swap-time profile.
func Table5(ctx context.Context, o Options) string {
	spec := cluster.Default(8)
	tb := metrics.NewTable("Table 5: computation vs swap time for eight representative layers",
		"Domain", "Input Size", "Layer", "Comp. (fwd/bwd ms)", "Swap (ms)")
	for _, dom := range []layers.Domain{layers.NLP, layers.CV} {
		for _, k := range layers.Kinds(dom) {
			p := layers.Profile(k)
			tb.AddRow(dom.String(), layers.InputSize(dom), k.String(),
				fmt.Sprintf("%.2g/%.2g", p.FwdMs, p.BwdMs),
				fmt.Sprintf("%.2f", spec.SwapMs(p.ParamBytes)))
		}
	}
	tb.AddNote("swap time = parameter bytes / PCIe 3.0 x16 bandwidth (15760 MB/s), matching the measured column by construction")
	return tb.Render()
}

// joinRows is a small helper for multi-part reports.
func joinRows(parts ...string) string { return strings.Join(parts, "\n") }
