package csp

import (
	"testing"

	"naspipe/internal/task"
)

func TestOnBackwardPredictsUnblockedForward(t *testing.T) {
	s := New(0)
	mustAdd(t, s, info(0, 1), info(1, 1), info(2, 5))
	p := NewPredictor(s)
	// Backward of 0 is about to run; afterwards subnet 1 becomes
	// schedulable and should be prefetched.
	fetches := p.OnBackward([]int{1, 2}, 0, nil)
	if len(fetches) != 1 || fetches[0].Seq != 1 || fetches[0].Kind != task.Forward {
		t.Fatalf("fetches = %+v, want forward of subnet 1", fetches)
	}
}

func TestOnBackwardNoPredictionWhenStillBlocked(t *testing.T) {
	s := New(0)
	// Subnets 1 and 2 both blocked by 0 AND by each other; finishing 0
	// unblocks 1 (queue order) — check the case where nothing unblocks.
	mustAdd(t, s, info(0, 1), info(1, 2), info(2, 2))
	s.MarkFinished(0)
	p := NewPredictor(s)
	// Backward of some unrelated future: assume finishing 5 (not
	// registered) — queue holds 2, which is blocked by unfinished 1.
	fetches := p.OnBackward([]int{2}, 5, nil)
	if len(fetches) != 0 {
		t.Fatalf("expected no fetches, got %+v", fetches)
	}
}

func TestPendingBackwardRelease(t *testing.T) {
	s := New(0)
	mustAdd(t, s, info(0, 1), info(1, 1))
	p := NewPredictor(s)
	// A later stage announces: backward of subnet 1 is pending, released
	// when forward of subnet 1 gets scheduled here.
	carried := []PendingBackward{{Seq: 1, Precedence: 1}}
	_ = p.OnBackward([]int{1}, 0, carried)
	if p.PendingCount() != 1 {
		t.Fatalf("pending = %d want 1", p.PendingCount())
	}
	s.MarkFinished(0)
	// Forward of subnet 1 runs now: the pending backward must be fetched
	// and retired.
	fetches := p.OnForward([]int{}, 1)
	foundBwd := false
	for _, f := range fetches {
		if f.Seq == 1 && f.Kind == task.Backward {
			foundBwd = true
		}
	}
	if !foundBwd {
		t.Fatalf("pending backward not fetched: %+v", fetches)
	}
	if p.PendingCount() != 0 {
		t.Fatalf("pending backward not retired: %d", p.PendingCount())
	}
}

func TestOnForwardPredictsNextForward(t *testing.T) {
	s := New(0)
	mustAdd(t, s, info(0, 1), info(1, 2), info(2, 3))
	p := NewPredictor(s)
	// Forward of 0 runs; queue still holds 1 and 2, 1 is unblocked.
	fetches := p.OnForward([]int{1, 2}, 0)
	if len(fetches) != 1 || fetches[0].Seq != 1 || fetches[0].Kind != task.Forward {
		t.Fatalf("fetches = %+v, want forward of 1", fetches)
	}
}

func TestOnForwardDoesNotRefetchCurrent(t *testing.T) {
	s := New(0)
	mustAdd(t, s, info(0, 1))
	p := NewPredictor(s)
	fetches := p.OnForward([]int{0}, 0)
	for _, f := range fetches {
		if f.Seq == 0 && f.Kind == task.Forward {
			t.Fatalf("predictor refetched the currently executing forward: %+v", fetches)
		}
	}
}

func TestPendingBackwardKeptUntilPrecedence(t *testing.T) {
	s := New(0)
	mustAdd(t, s, info(0, 1), info(1, 2), info(2, 3))
	p := NewPredictor(s)
	_ = p.OnBackward(nil, 0, []PendingBackward{{Seq: 2, Precedence: 2}})
	// Forward of 1 runs: precedence 2 not met, record kept.
	_ = p.OnForward(nil, 1)
	if p.PendingCount() != 1 {
		t.Fatalf("pending retired too early: %d", p.PendingCount())
	}
	fetches := p.OnForward(nil, 2)
	if len(fetches) != 1 || fetches[0].Seq != 2 || fetches[0].Kind != task.Backward {
		t.Fatalf("fetches = %+v", fetches)
	}
}

func TestRetireDropsPendingRecords(t *testing.T) {
	s := New(0)
	mustAdd(t, s, info(0, 1), info(1, 2), info(2, 3))
	p := NewPredictor(s)
	_ = p.OnBackward(nil, 0, []PendingBackward{
		{Seq: 1, Precedence: 1},
		{Seq: 2, Precedence: 2},
		{Seq: 1, Precedence: 0},
	})
	if p.PendingCount() != 3 {
		t.Fatalf("pending = %d want 3", p.PendingCount())
	}
	p.Retire(1) // backward of 1 executed: both its records go
	if p.PendingCount() != 1 {
		t.Fatalf("pending after retire = %d want 1", p.PendingCount())
	}
	// The surviving record still releases normally.
	fetches := p.OnForward(nil, 2)
	if len(fetches) != 1 || fetches[0].Seq != 2 || fetches[0].Kind != task.Backward {
		t.Fatalf("fetches = %+v", fetches)
	}
	p.Retire(7) // unknown subnet: harmless
	if p.PendingCount() != 0 {
		t.Fatalf("pending = %d want 0", p.PendingCount())
	}
}

func TestPredictionAccuracyOnDrain(t *testing.T) {
	// Simulate a single-stage drain loop and measure how often the
	// predictor's forward forecast matches the next actually scheduled
	// forward. With full local knowledge the forecast is exact.
	s := New(0)
	n := 12
	for i := 0; i < n; i++ {
		mustAdd(t, s, info(i, i%3)) // heavy collisions: chains of 3
	}
	p := NewPredictor(s)
	queue := make([]int, n)
	for i := range queue {
		queue[i] = i
	}
	correct, total := 0, 0
	for len(queue) > 0 {
		qidx, qval := s.Schedule(queue)
		if qidx < 0 {
			t.Fatal("deadlock")
		}
		queue = append(queue[:qidx], queue[qidx+1:]...)
		// Predict what follows after this subnet's backward completes.
		fetches := p.OnBackward(queue, qval, nil)
		s.MarkFinished(qval)
		if len(fetches) == 1 {
			_, next := s.Schedule(queue)
			total++
			if next == fetches[0].Seq {
				correct++
			}
		}
	}
	if total == 0 {
		t.Fatal("predictor never fired")
	}
	if correct != total {
		t.Fatalf("single-stage prediction accuracy %d/%d, want exact", correct, total)
	}
}
