package sched

import "naspipe/internal/engine"

// SequentialPolicy trains one subnet at a time: subnet y's forward is not
// admitted until subnet y−1's backward has flushed at stage 0. This is
// the semantics every exploration algorithm assumes (§2.1) and the
// reference against which CSP's reproducibility is defined; it is also
// the slowest schedule (one pipeline fill/drain per subnet).
type SequentialPolicy struct {
	engine.BasePolicy
	inflight int
}

// NewSequential returns the sequential reference policy.
func NewSequential() *SequentialPolicy { return &SequentialPolicy{} }

// Traits implements engine.Policy. Sequential runs with NASPipe's memory
// machinery (balanced partitions, cached context) so that throughput
// differences against NASPipe isolate scheduling, not memory.
func (p *SequentialPolicy) Traits() engine.Traits {
	return engine.Traits{
		Name:              "Sequential",
		Reproducible:      true,
		Partition:         engine.PartitionBalanced,
		CacheFactor:       3,
		PrefetchOnArrival: true,
		ActStashFactor:    1,
	}
}

// SelectForward admits the next subnet only when the pipeline is empty.
func (p *SequentialPolicy) SelectForward(stage int, queue []int, now float64) int {
	if len(queue) == 0 {
		return -1
	}
	if stage == 0 {
		if p.inflight > 0 {
			return -1
		}
		p.inflight++
	}
	return 0
}

// OnBackwardDone opens the gate for the next subnet.
func (p *SequentialPolicy) OnBackwardDone(stage, seq int, now float64) {
	if stage == 0 {
		p.inflight--
	}
}

var _ engine.Policy = (*SequentialPolicy)(nil)
