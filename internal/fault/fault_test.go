package fault

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "seed=7,crash=0.005,crashat=2:30:B,drop=0.05,delay=0.02,dup=0.01,fetchfail=0.1"
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", spec, err)
	}
	if p.Seed != 7 || p.CrashRate != 0.005 || p.DropRate != 0.05 ||
		p.DelayRate != 0.02 || p.DupRate != 0.01 || p.FetchFailRate != 0.1 {
		t.Fatalf("parsed plan fields wrong: %+v", *p)
	}
	if p.CrashTask == nil || *p.CrashTask != (TaskRef{Stage: 2, Seq: 30, Kind: KindBackward}) {
		t.Fatalf("crashat parsed wrong: %+v", p.CrashTask)
	}
	if got := p.String(); got != spec {
		t.Fatalf("String() = %q, want %q", got, spec)
	}
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if *p2.CrashTask != *p.CrashTask {
		t.Fatalf("reparse crashat mismatch")
	}
	p2.CrashTask, p.CrashTask = nil, nil
	if !reflect.DeepEqual(p2, p) {
		t.Fatalf("reparse mismatch: %+v vs %+v", *p2, *p)
	}
}

func TestParsePlanStormRoundTrip(t *testing.T) {
	spec := "seed=9,crashat=1:2:F,crashat=1:2:9:F,wedgeat=2:0:14:B,crashat=3:1:16:B,drop=0.05"
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", spec, err)
	}
	want := []StormEvent{
		{Incarnation: 1, Task: TaskRef{Stage: 2, Seq: 9, Kind: KindForward}},
		{Incarnation: 2, Task: TaskRef{Stage: 0, Seq: 14, Kind: KindBackward}, Wedge: true},
		{Incarnation: 3, Task: TaskRef{Stage: 1, Seq: 16, Kind: KindBackward}},
	}
	if !reflect.DeepEqual(p.Storm, want) {
		t.Fatalf("storm parsed wrong: %+v", p.Storm)
	}
	if p.CrashTask == nil || *p.CrashTask != (TaskRef{Stage: 1, Seq: 2, Kind: KindForward}) {
		t.Fatalf("3-part crashat parsed wrong: %+v", p.CrashTask)
	}
	if !p.Enabled() {
		t.Fatal("storm plan not Enabled")
	}
	back, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if !reflect.DeepEqual(back, p) {
		t.Fatalf("storm reparse mismatch:\n  %+v\n  %+v", *back, *p)
	}
}

func TestParsePlanStormErrors(t *testing.T) {
	for _, spec := range []string{
		"crashat=x:2:9:F",             // bad incarnation
		"crashat=-1:2:9:F",            // negative incarnation
		"wedgeat=0:2:9:X",             // bad kind in storm entry
		"crashat=1:2:F,crashat=1:3:F", // duplicate one-shot target
		"wedgeat=1:2:F,wedgeat=1:3:F", // duplicate one-shot wedge
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q): want error, got nil", spec)
		}
	}
	if err := (Plan{Storm: []StormEvent{{Incarnation: -1}}}).Validate(); err == nil {
		t.Error("Validate accepted negative storm incarnation")
	}
	if err := (Plan{Storm: []StormEvent{{Task: TaskRef{Kind: 3}}}}).Validate(); err == nil {
		t.Error("Validate accepted malformed storm task kind")
	}
}

func TestStormFiresAtPinnedIncarnationOnly(t *testing.T) {
	p := Plan{Seed: 3, Storm: []StormEvent{
		{Incarnation: 1, Task: TaskRef{Stage: 2, Seq: 9, Kind: KindForward}},
		{Incarnation: 2, Task: TaskRef{Stage: 0, Seq: 14, Kind: KindBackward}, Wedge: true},
	}}
	for inc := 0; inc < 4; inc++ {
		in, err := NewInjector(p, inc)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := in.CrashAt(2, 9, KindForward), inc == 1; got != want {
			t.Errorf("incarnation %d: CrashAt(2,9,F) = %v, want %v", inc, got, want)
		}
		if got, want := in.WedgeAt(0, 14, KindBackward), inc == 2; got != want {
			t.Errorf("incarnation %d: WedgeAt(0,14,B) = %v, want %v", inc, got, want)
		}
		// A crash entry never wedges and vice versa.
		if in.WedgeAt(2, 9, KindForward) || in.CrashAt(0, 14, KindBackward) {
			t.Errorf("incarnation %d: storm entry fired with wrong disposition", inc)
		}
	}
}

func TestParsePlanDurations(t *testing.T) {
	p, err := ParsePlan("seed=1,drop=0.1,maxdelay=300us,backoff=10us,backoffmax=1ms,retries=7")
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxDelay != 300*time.Microsecond || p.BackoffBase != 10*time.Microsecond ||
		p.BackoffMax != time.Millisecond || p.MaxRetries != 7 {
		t.Fatalf("duration fields wrong: %+v", *p)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"drop",               // not key=value
		"bogus=1",            // unknown key
		"drop=nope",          // bad float
		"drop=1.5",           // rate out of range
		"drop=-0.1",          // negative rate
		"drop=0.6,delay=0.5", // rates sum > 1
		"crashat=1:2",        // malformed task ref
		"crashat=1:2:X",      // bad kind
		"crashat=-1:2:F",     // negative stage
		"maxdelay=abc",       // bad duration
		"retries=-1",         // negative retries
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q): want error, got nil", spec)
		}
	}
}

func TestPlanEnabled(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Enabled() {
		t.Fatal("nil plan reports enabled")
	}
	if (&Plan{Seed: 9}).Enabled() {
		t.Fatal("seed-only plan reports enabled")
	}
	if !(&Plan{DropRate: 0.1}).Enabled() {
		t.Fatal("drop plan reports disabled")
	}
	if !(&Plan{CrashTask: &TaskRef{}}).Enabled() {
		t.Fatal("crashat plan reports disabled")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	p := Plan{Seed: 42, CrashRate: 0.1, DropRate: 0.2, DelayRate: 0.1, DupRate: 0.1, FetchFailRate: 0.3}
	a, err := NewInjector(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewInjector(p, 1)
	for seq := 0; seq < 50; seq++ {
		for stage := 0; stage < 4; stage++ {
			for _, kind := range []int8{KindForward, KindBackward} {
				if a.CrashAt(stage, seq, kind) != b.CrashAt(stage, seq, kind) {
					t.Fatalf("CrashAt(%d,%d,%d) nondeterministic", stage, seq, kind)
				}
				for attempt := 0; attempt < 3; attempt++ {
					va, vb := a.Message(kind, stage, seq, attempt), b.Message(kind, stage, seq, attempt)
					if va != vb {
						t.Fatalf("Message(%d,%d,%d,%d) nondeterministic: %+v vs %+v",
							kind, stage, seq, attempt, va, vb)
					}
				}
			}
			if a.FetchFails(stage, seq) != b.FetchFails(stage, seq) {
				t.Fatalf("FetchFails(%d,%d) nondeterministic", stage, seq)
			}
		}
	}
}

func TestInjectorIncarnationsDiffer(t *testing.T) {
	p := Plan{Seed: 42, CrashRate: 0.3}
	a, _ := NewInjector(p, 0)
	b, _ := NewInjector(p, 1)
	same := true
	for seq := 0; seq < 100 && same; seq++ {
		if a.CrashAt(0, seq, KindForward) != b.CrashAt(0, seq, KindForward) {
			same = false
		}
	}
	if same {
		t.Fatal("incarnations 0 and 1 rolled identical crash schedules across 100 sites")
	}
}

func TestTargetedCrashFiresOnlyInIncarnationZero(t *testing.T) {
	p := Plan{Seed: 1, CrashTask: &TaskRef{Stage: 2, Seq: 30, Kind: KindBackward}}
	in0, _ := NewInjector(p, 0)
	in1, _ := NewInjector(p, 1)
	if !in0.CrashAt(2, 30, KindBackward) {
		t.Fatal("targeted crash did not fire in incarnation 0")
	}
	if in0.CrashAt(2, 30, KindForward) || in0.CrashAt(2, 29, KindBackward) || in0.CrashAt(1, 30, KindBackward) {
		t.Fatal("targeted crash fired at a non-matching site")
	}
	if in1.CrashAt(2, 30, KindBackward) {
		t.Fatal("targeted crash re-fired in incarnation 1 — resume would livelock")
	}
}

func TestMessageRatePartition(t *testing.T) {
	p := Plan{Seed: 7, DropRate: 0.3, DelayRate: 0.3, DupRate: 0.3}
	in, _ := NewInjector(p, 0)
	counts := map[Action]int{}
	const n = 2000
	for seq := 0; seq < n; seq++ {
		v := in.Message(KindForward, 1, seq, 0)
		counts[v.Action]++
		if v.Action == Delay {
			if v.Wait < 0 || v.Wait >= DefaultMaxDelay {
				t.Fatalf("delay wait %v outside [0, %v)", v.Wait, DefaultMaxDelay)
			}
		} else if v.Wait != 0 {
			t.Fatalf("non-delay verdict carries wait %v", v.Wait)
		}
	}
	for _, a := range []Action{Deliver, Drop, Delay, Duplicate} {
		frac := float64(counts[a]) / n
		want := 0.3
		if a == Deliver {
			want = 0.1
		}
		if frac < want-0.08 || frac > want+0.08 {
			t.Errorf("action %v frequency %.3f, want ~%.1f", a, frac, want)
		}
	}
	// Duplicates must never fire past attempt 0 (bounds deliveries at 2).
	for seq := 0; seq < n; seq++ {
		for attempt := 1; attempt < 4; attempt++ {
			if in.Message(KindBackward, 0, seq, attempt).Action == Duplicate {
				t.Fatalf("duplicate verdict on attempt %d", attempt)
			}
		}
	}
}

func TestBackoffExponentialCapped(t *testing.T) {
	in, _ := NewInjector(Plan{Seed: 1, DropRate: 0.5}, 0)
	if got := in.Backoff(0); got != DefaultBackoffBase {
		t.Fatalf("Backoff(0) = %v, want %v", got, DefaultBackoffBase)
	}
	if got := in.Backoff(1); got != 2*DefaultBackoffBase {
		t.Fatalf("Backoff(1) = %v, want %v", got, 2*DefaultBackoffBase)
	}
	if got := in.Backoff(20); got != DefaultBackoffMax {
		t.Fatalf("Backoff(20) = %v, want cap %v", got, DefaultBackoffMax)
	}
	prev := time.Duration(0)
	for a := 0; a < 10; a++ {
		d := in.Backoff(a)
		if d < prev {
			t.Fatalf("backoff not monotone: Backoff(%d)=%v < %v", a, d, prev)
		}
		prev = d
	}
}

func TestNewInjectorRejectsBadPlans(t *testing.T) {
	if _, err := NewInjector(Plan{DropRate: 2}, 0); err == nil {
		t.Fatal("want error for rate > 1")
	}
	if _, err := NewInjector(Plan{}, -1); err == nil {
		t.Fatal("want error for negative incarnation")
	}
	if _, err := NewInjector(Plan{CrashTask: &TaskRef{Kind: 3}}, 0); err == nil {
		t.Fatal("want error for bad crash-task kind")
	}
}

func TestCrashErrorMessage(t *testing.T) {
	e := &CrashError{Stage: 2, Seq: 30, Kind: KindBackward, Incarnation: 1}
	msg := e.Error()
	for _, want := range []string{"stage 2", "2:30:B", "incarnation 1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("CrashError message %q missing %q", msg, want)
		}
	}
}
