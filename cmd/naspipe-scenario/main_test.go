package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"naspipe"
	"naspipe/internal/scenario"
)

const calmJSON = `{
  "name": "cli-calm",
  "world": {"gpus": 2},
  "workload": {"space": "NLP.c1", "subnets": 6, "seed": 3}
}
`

func writeCatalog(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestCheckRealCatalog validates the committed catalog through the CLI
// surface — the same contract the CI job greps for.
func TestCheckRealCatalog(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-check", "-dir", "../../scenarios"}, &out, &errb)
	if code != naspipe.ExitOK {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "scenarios ok") {
		t.Fatalf("stdout: %q", out.String())
	}
}

// TestErrorParityWithLibrary is the cross-surface contract: a scenario
// rejected by the library is rejected by the CLI with the identical
// structured message, field name included.
func TestErrorParityWithLibrary(t *testing.T) {
	bad := `{"name":"bad","world":{"gpus":0},"workload":{"space":"NLP.c1","subnets":4,"seed":1}}`
	_, libErr := scenario.Parse([]byte(bad))
	if libErr == nil {
		t.Fatal("library accepted the bad scenario")
	}
	if f := naspipe.SpecField(libErr); f != "world.gpus" {
		t.Fatalf("library error field %q, want world.gpus", f)
	}

	dir := writeCatalog(t, map[string]string{"bad.json": bad})
	var out, errb strings.Builder
	code := run([]string{"-check", "-dir", dir}, &out, &errb)
	if code != naspipe.ExitUsage {
		t.Fatalf("exit %d, want %d (usage)", code, naspipe.ExitUsage)
	}
	if !strings.Contains(errb.String(), libErr.Error()) {
		t.Fatalf("CLI stderr does not carry the library's error verbatim:\nlib: %s\ncli: %s", libErr, errb.String())
	}
}

// TestSweepSingleScenario runs one tiny cell end to end through the
// CLI: stdout reports verified=true, the scorecard lands on disk, and
// a second sweep reproduces it byte-for-byte.
func TestSweepSingleScenario(t *testing.T) {
	dir := writeCatalog(t, map[string]string{"cli-calm.json": calmJSON})
	outPath := filepath.Join(t.TempDir(), "score.json")

	var out, errb strings.Builder
	code := run([]string{"-dir", dir, "-out", outPath, "-state-dir", t.TempDir()}, &out, &errb)
	if code != naspipe.ExitOK {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "verified=true") {
		t.Fatalf("stdout lacks verified=true:\n%s", out.String())
	}
	first, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}

	var out2 strings.Builder
	if code := run([]string{"-dir", dir, "-out", outPath, "-state-dir", t.TempDir()}, &out2, &errb); code != naspipe.ExitOK {
		t.Fatalf("second sweep exit %d", code)
	}
	second, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("scorecard differs across sweeps:\n%s\nvs\n%s", first, second)
	}
}

// TestFailedGateExitsNonzero: a scenario whose Expect block cannot hold
// flips the exit code to 1 and prints the violated gate.
func TestFailedGateExitsNonzero(t *testing.T) {
	impossible := `{
  "name": "cli-impossible",
  "world": {"gpus": 2},
  "workload": {"space": "NLP.c1", "subnets": 6, "seed": 3},
  "expect": {"restarts": 5}
}
`
	dir := writeCatalog(t, map[string]string{"cli-impossible.json": impossible})
	var out, errb strings.Builder
	code := run([]string{"-dir", dir, "-out", "-", "-state-dir", t.TempDir()}, &out, &errb)
	if code != naspipe.ExitFailure {
		t.Fatalf("exit %d, want %d (failure)", code, naspipe.ExitFailure)
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(out.String(), "scenario pins 5") {
		t.Fatalf("stdout does not report the violated gate:\n%s", out.String())
	}
}

// TestSelectionErrors: asking for a scenario the catalog lacks is a
// usage error naming it.
func TestSelectionErrors(t *testing.T) {
	dir := writeCatalog(t, map[string]string{"cli-calm.json": calmJSON})
	var out, errb strings.Builder
	if code := run([]string{"-dir", dir, "-scenario", "no-such"}, &out, &errb); code != naspipe.ExitUsage {
		t.Fatalf("exit %d, want usage", code)
	}
	if !strings.Contains(errb.String(), "no-such") {
		t.Fatalf("stderr does not name the missing scenario: %s", errb.String())
	}
}
