// Package hybrid implements the first of the paper's envisioned future
// applications (§5.5): the hybrid traverse of multiple search spaces
// simultaneously. NASPipe's runtime is flexible enough to hold any number
// of causal dependency relations, so several spaces' subnet streams can
// interleave through one pipeline.
//
// A Union embeds K same-geometry member spaces into one supernet whose
// choice blocks concatenate the members' candidate menus into disjoint
// bands. Subnets sampled from different members therefore never share a
// layer — their causal dependency graphs are independent — while
// within-member dependencies keep their original structure. Interleaving
// the member streams dilutes the dependency density the CSP scheduler
// faces (consecutive subnets come from different members), which raises
// pipeline utilization beyond what either space achieves alone, at zero
// cost to reproducibility: the engine and trainer treat the union like
// any other space.
package hybrid

import (
	"fmt"

	"naspipe/internal/supernet"
)

// Union is a combined search space with per-member candidate bands.
type Union struct {
	// Space is the combined supernet: member blocks aligned, choices
	// concatenated.
	Space supernet.Space
	// Members are the constituent spaces, in band order.
	Members []supernet.Space
	offsets []int // choice offset of each member's band
}

// NewUnion combines the member spaces. Members must agree on domain and
// block count (the Table 1 NLP spaces all have 48 blocks; the CV spaces
// 32), so no padding blocks are needed and per-subnet partitions stay
// comparable.
func NewUnion(name string, members ...supernet.Space) (*Union, error) {
	if len(members) < 2 {
		return nil, fmt.Errorf("hybrid: a union needs at least 2 member spaces, got %d", len(members))
	}
	first := members[0]
	offsets := make([]int, len(members))
	total := 0
	for i, m := range members {
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if m.Domain != first.Domain {
			return nil, fmt.Errorf("hybrid: member %s domain %v != %v", m.Name, m.Domain, first.Domain)
		}
		if m.Blocks != first.Blocks {
			return nil, fmt.Errorf("hybrid: member %s has %d blocks, want %d", m.Name, m.Blocks, first.Blocks)
		}
		offsets[i] = total
		total += m.Choices
	}
	return &Union{
		Space: supernet.Space{
			Name:    name,
			Domain:  first.Domain,
			Blocks:  first.Blocks,
			Choices: total,
			Dataset: first.Dataset,
		},
		Members: members,
		offsets: offsets,
	}, nil
}

// Offset returns the choice offset of a member's band.
func (u *Union) Offset(member int) int { return u.offsets[member] }

// MemberOf identifies which member a union subnet was sampled from, by
// its band. All of a subnet's choices lie in one band by construction;
// an inconsistent subnet returns an error.
func (u *Union) MemberOf(sub supernet.Subnet) (int, error) {
	if len(sub.Choices) == 0 {
		return 0, fmt.Errorf("hybrid: empty subnet")
	}
	m := u.bandOf(sub.Choices[0])
	for b, c := range sub.Choices {
		if u.bandOf(c) != m {
			return 0, fmt.Errorf("hybrid: subnet %d mixes bands at block %d", sub.Seq, b)
		}
	}
	return m, nil
}

func (u *Union) bandOf(choice int) int {
	for i := len(u.offsets) - 1; i >= 0; i-- {
		if choice >= u.offsets[i] {
			return i
		}
	}
	return 0
}

// Project maps a union subnet back into its member space's coordinates.
func (u *Union) Project(sub supernet.Subnet) (member int, local supernet.Subnet, err error) {
	member, err = u.MemberOf(sub)
	if err != nil {
		return 0, supernet.Subnet{}, err
	}
	local = sub.Clone()
	for b := range local.Choices {
		local.Choices[b] -= u.offsets[member]
	}
	return member, local, nil
}

// Interleave generates a hybrid subnet stream of length n: member streams
// are sampled independently (each with its own labeled seed substream,
// exactly as a solo run would) and interleaved round-robin, then
// renumbered with global sequence IDs. The stream is a pure function of
// (union, seed) — cluster shape never perturbs it.
func (u *Union) Interleave(seed uint64, n int) []supernet.Subnet {
	samplers := make([]*supernet.Sampler, len(u.Members))
	for i, m := range u.Members {
		samplers[i] = supernet.NewSampler(m, seed)
	}
	out := make([]supernet.Subnet, n)
	for i := 0; i < n; i++ {
		member := i % len(u.Members)
		local := samplers[member].Next()
		choices := make([]int, len(local.Choices))
		for b, c := range local.Choices {
			choices[b] = c + u.offsets[member]
		}
		out[i] = supernet.Subnet{Seq: i, Choices: choices}
	}
	return out
}

// CrossMemberShares reports whether any two subnets from different
// members share a layer — always false for streams built by Interleave
// (bands are disjoint); exposed for testing and diagnostics.
func (u *Union) CrossMemberShares(subs []supernet.Subnet) (bool, error) {
	members := make([]int, len(subs))
	for i, s := range subs {
		m, err := u.MemberOf(s)
		if err != nil {
			return false, err
		}
		members[i] = m
	}
	for i := range subs {
		for j := i + 1; j < len(subs); j++ {
			if members[i] != members[j] && supernet.Shares(subs[i], subs[j]) {
				return true, nil
			}
		}
	}
	return false, nil
}
