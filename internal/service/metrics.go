package service

import (
	"naspipe/internal/obs"
	"naspipe/internal/supervise"
	"naspipe/internal/telemetry"
)

// schedMetrics holds every instrument the scheduler and its supervision
// hooks update. All fields are nil-safe: constructed against a nil
// registry they are nil instruments and every update is a free no-op,
// so the scheduler carries metric updates unconditionally.
//
// Naming: naspipe_<plane>_<name>[_unit], planes sched / supervise /
// telemetry here (the HTTP layer's service-plane metrics live on the
// Server). Counters end in _total, duration histograms in _seconds —
// the convention TestMetricNamingConvention lints.
type schedMetrics struct {
	submitted  *obs.CounterVec // naspipe_sched_submitted_total{tenant}
	resumed    *obs.CounterVec // naspipe_sched_resumed_total{tenant}
	recovered  *obs.Counter    // naspipe_sched_recovered_total
	finished   *obs.CounterVec // naspipe_sched_jobs_total{tenant,state}
	rejections *obs.CounterVec // naspipe_sched_rejections_total{cause}

	tenantActive *obs.GaugeVec // naspipe_sched_tenant_active_jobs{tenant}
	activeJobs   *obs.Gauge    // naspipe_sched_active_workers

	queueWait *obs.Histogram // naspipe_sched_queue_wait_seconds
	runTime   *obs.Histogram // naspipe_sched_run_seconds

	transitions *obs.CounterVec // naspipe_supervise_transitions_total{to}
	incidents   *obs.CounterVec // naspipe_supervise_incidents_total{kind}
	restarts    *obs.Counter    // naspipe_supervise_restarts_total
	watchdog    *obs.Counter    // naspipe_supervise_watchdog_fires_total
}

// runBuckets widens DefBuckets upward: supervised runs (crash + backoff
// + resume) regularly outlive 10s.
var runBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 300}

// newSchedMetrics registers the scheduler's instruments plus the
// scrape-time funcs that read live scheduler state (queue depth, run
// EWMA, aggregated telemetry counters). With a nil registry everything
// is disabled. Called once from NewScheduler, before workers start.
func newSchedMetrics(r *obs.Registry, s *Scheduler) *schedMetrics {
	m := &schedMetrics{
		submitted:  r.CounterVec("naspipe_sched_submitted_total", "Jobs admitted via submit, by tenant.", "tenant"),
		resumed:    r.CounterVec("naspipe_sched_resumed_total", "Jobs re-queued via resume, by tenant.", "tenant"),
		recovered:  r.Counter("naspipe_sched_recovered_total", "Jobs re-queued by post-restart recovery."),
		finished:   r.CounterVec("naspipe_sched_jobs_total", "Jobs that reached a terminal state, by tenant and state.", "tenant", "state"),
		rejections: r.CounterVec("naspipe_sched_rejections_total", "Admissions refused with HTTP 429, by cause.", "cause"),

		tenantActive: r.GaugeVec("naspipe_sched_tenant_active_jobs", "Queued+running jobs per tenant (the quota denominator).", "tenant"),
		activeJobs:   r.Gauge("naspipe_sched_active_workers", "Executor-pool workers currently running a job."),

		queueWait: r.Histogram("naspipe_sched_queue_wait_seconds", "Time from admission (or resume) to execution start.", nil),
		runTime:   r.Histogram("naspipe_sched_run_seconds", "Wall time of one job execution, queue wait excluded.", runBuckets),

		transitions: r.CounterVec("naspipe_supervise_transitions_total", "Supervision state-machine edges, by target state.", "to"),
		incidents:   r.CounterVec("naspipe_supervise_incidents_total", "Recoverable incidents, by kind (crash or stall).", "kind"),
		restarts:    r.Counter("naspipe_supervise_restarts_total", "Incarnation restarts across all supervised jobs."),
		watchdog:    r.Counter("naspipe_supervise_watchdog_fires_total", "Watchdog stall diagnoses across all supervised jobs."),
	}
	if r == nil {
		return m
	}
	r.GaugeFunc("naspipe_sched_queue_depth", "Jobs admitted but not yet running (the backpressure input).",
		func() float64 { return float64(len(s.queue)) })
	r.GaugeFunc("naspipe_sched_queue_limit", "Admission-queue capacity.",
		func() float64 { return float64(s.cfg.QueueLimit) })
	r.GaugeFunc("naspipe_sched_worker_slots", "Configured executor-pool size.",
		func() float64 { return float64(s.cfg.Workers) })
	r.GaugeFunc("naspipe_sched_run_ewma_seconds", "Smoothed wall time of completed runs (the Retry-After input).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.runEWMA.Seconds()
		})
	// Telemetry-plane rollup: finished jobs' totals plus every live bus,
	// evaluated at scrape time so one scrape shows engine-level event
	// traffic without a second collection path.
	r.CounterFunc("naspipe_telemetry_events_emitted_total", "Engine telemetry events emitted across all job buses.",
		func() float64 { return float64(s.TelemetrySnapshot().Emitted) })
	r.CounterFunc("naspipe_telemetry_events_dropped_total", "Engine telemetry events dropped by full rings across all job buses.",
		func() float64 { return float64(s.TelemetrySnapshot().Dropped) })
	r.CounterFunc("naspipe_telemetry_batch_flushes_total", "Batcher bulk flushes into job buses.",
		func() float64 { return float64(s.TelemetrySnapshot().BatchFlushes) })
	r.CounterFunc("naspipe_telemetry_checkpoints_total", "Consistency cuts recorded across all job buses.",
		func() float64 { return float64(s.TelemetrySnapshot().Checkpoints) })
	return m
}

// superviseHooks builds the Observer/OnIncident pair the scheduler
// injects into each supervised job: transitions and incidents become
// counters immediately (not at job finish) and structured log lines
// carrying the job ID and incarnation — the correlation chain from
// /metrics and the daemon log back to one incarnation of one job.
func (s *Scheduler) superviseHooks(jobID string) (func(supervise.Transition), func(supervise.Incident)) {
	observer := func(tr supervise.Transition) {
		s.met.transitions.With(tr.To.String()).Inc()
		if tr.To == supervise.Running && tr.Incarnation > 0 {
			s.met.restarts.Inc()
		}
		s.log("health transition", "job", jobID, "incarnation", tr.Incarnation,
			"from", tr.From.String(), "to", tr.To.String(), "reason", tr.Reason)
	}
	onIncident := func(in supervise.Incident) {
		kind := "crash"
		if in.Stall != nil {
			kind = "stall"
			s.met.watchdog.Inc()
		}
		s.met.incidents.With(kind).Inc()
		s.log("incident", "job", jobID, "incarnation", in.Incarnation, "kind", kind,
			"stage", in.Stage, "cursor_before", in.CursorBefore, "cursor_after", in.CursorAfter,
			"gpus", in.GPUs, "err", in.Err.Error())
	}
	return observer, onIncident
}

// TelemetrySnapshot aggregates the engine-telemetry counters of every
// job this daemon has run: finished jobs' accumulated totals plus each
// live bus. It is the source for the naspipe_telemetry_* series and the
// daemon's /debug/telemetry endpoint.
func (s *Scheduler) TelemetrySnapshot() telemetry.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.telTotals
	for _, id := range s.order {
		if b := s.jobs[id].bus; b != nil {
			snap = snap.Add(b.Snapshot())
		}
	}
	return snap
}
