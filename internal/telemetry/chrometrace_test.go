package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// stream builds a small two-stage run by hand: a forward span with a
// nested stall on stage 0, a preempted/resumed forward on stage 1, and a
// flow arrow between them.
func testStream() []Event {
	f := func(ts int64, op Op, ph Phase, stage, subnet int32, kind int8, arg int64) Event {
		return Event{TsNs: ts, Op: op, Phase: ph, Stage: stage, Worker: WorkerStage, Subnet: subnet, Kind: kind, Arg: arg}
	}
	flow := FlowID(KindForward, 7, 0)
	return []Event{
		f(100, OpTaskStart, PhaseBegin, 0, 7, KindForward, 0),
		f(120, OpCacheStall, PhaseBegin, 0, 7, KindForward, 30),
		f(150, OpCacheStall, PhaseEnd, 0, 7, KindForward, 30),
		f(190, OpTransferSend, PhaseFlowBegin, 0, 7, KindForward, flow),
		f(200, OpTaskComplete, PhaseEnd, 0, 7, KindForward, 0),
		f(210, OpTaskStart, PhaseBegin, 1, 7, KindForward, 0),
		f(215, OpTransferRecv, PhaseFlowEnd, 1, 7, KindForward, flow),
		f(230, OpTaskPreempt, PhaseEnd, 1, 7, KindForward, 0),
		f(231, OpTaskStart, PhaseBegin, 1, 5, KindBackward, 0),
		f(260, OpTaskComplete, PhaseEnd, 1, 5, KindBackward, 0),
		f(261, OpTaskResume, PhaseBegin, 1, 7, KindForward, 0),
		f(300, OpTaskComplete, PhaseEnd, 1, 7, KindForward, 0),
		f(305, OpSchedDelay, PhaseInstant, 1, 9, KindForward, 5),
	}
}

func TestChromeTraceExportAndValidate(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, testStream()); err != nil {
		t.Fatal(err)
	}
	st, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exporter output does not validate: %v\n%s", err, buf.String())
	}
	// Spans: F7@0, stall@0, B5@1, and F7@1 split into two slices by the
	// preemption = 5 complete events, 4 of them tasks.
	if st.Complete != 5 || st.TaskX != 4 {
		t.Fatalf("complete=%d taskX=%d, want 5/4\n%s", st.Complete, st.TaskX, buf.String())
	}
	if st.FlowBegin != 1 || st.FlowEnd != 1 {
		t.Fatalf("flows %d/%d, want 1/1", st.FlowBegin, st.FlowEnd)
	}
	if st.Stages != 2 {
		t.Fatalf("stages %d, want 2", st.Stages)
	}
	if st.Instant != 1 {
		t.Fatalf("instants %d, want 1", st.Instant)
	}
	for _, want := range []string{`"F7"`, `"B5"`, `"stall"`, `"stage 0"`, `"stage 1"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("trace missing %s", want)
		}
	}
}

func TestChromeTraceClosesUnmatchedSpans(t *testing.T) {
	evs := []Event{
		{TsNs: 10, Op: OpTaskStart, Phase: PhaseBegin, Stage: 0, Subnet: 1, Kind: KindForward},
		{TsNs: 50, Op: OpSchedDelay, Phase: PhaseInstant, Stage: 0, Subnet: -1, Kind: KindNone},
		// End without begin (ring dropped the begin): must be ignored.
		{TsNs: 60, Op: OpTaskComplete, Phase: PhaseEnd, Stage: 0, Subnet: 2, Kind: KindBackward},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	st, err := ValidateChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Complete != 1 {
		t.Fatalf("complete=%d, want 1 (open span closed at last ts)", st.Complete)
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	if _, err := ValidateChromeTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ValidateChromeTrace(strings.NewReader("[]")); err == nil {
		t.Fatal("empty trace accepted (no complete events)")
	}
	backwards := `[
{"name":"a","ph":"X","ts":100,"dur":1,"pid":0,"tid":0},
{"name":"b","ph":"X","ts":50,"dur":1,"pid":0,"tid":0}
]`
	if _, err := ValidateChromeTrace(strings.NewReader(backwards)); err == nil {
		t.Fatal("non-monotonic per-thread timestamps accepted")
	}
}

func TestServeDebugEndpoints(t *testing.T) {
	b := NewBus(16)
	b.Emit(Event{Op: OpTaskStart, Phase: PhaseBegin, Subnet: 0, Kind: KindForward})
	addr, shutdown, err := ServeDebug("127.0.0.1:0", b)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	for _, path := range []string{"/debug/telemetry", "/debug/vars", "/debug/pprof/cmdline"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/debug/telemetry" {
			var s Snapshot
			if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
				t.Fatalf("snapshot decode: %v", err)
			}
			if s.Started != 1 {
				t.Fatalf("snapshot over HTTP: %+v", s)
			}
		}
		resp.Body.Close()
	}
}
