// naspipe-scenario sweeps the declarative scenario catalog: every
// scenarios/*.json file describes a world (GPUs, stragglers, jitter),
// a workload (space, stream, cache, multi-job arrival) and a fault
// storm, compiled onto the existing JobSpec/engine/fault/supervise
// types and executed end to end. Each cell re-proves the CSP
// reproducibility contract — the trained weights are verified bitwise
// against the sequential reference — and lands one row in a
// deterministic scorecard.
//
// Usage:
//
//	naspipe-scenario                          # sweep scenarios/ into BENCH_scenarios.json
//	naspipe-scenario -dir d -out score.json   # elsewhere
//	naspipe-scenario -scenario crash-storm    # one cell (comma-separate for more)
//	naspipe-scenario -check                   # parse+validate the catalog, run nothing
//	naspipe-scenario -canon                   # rewrite catalog files in canonical form
//
// The scorecard contains only deterministic columns (simulated-plane
// performance, targeted-storm restart counts, verification checksums):
// two sweeps at the same seeds are byte-identical, and CI diffs them.
// Wall-clock observations (sweep and recovery times) go to stdout only.
//
// Exit codes follow the repo taxonomy: 0 = every cell verified and
// passed its gates, 1 = a cell failed, 2 = a scenario file or flag is
// malformed (stderr names the offending field).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"naspipe"
	"naspipe/internal/scenario"
)

func main() {
	os.Exit(int(run(os.Args[1:], os.Stdout, os.Stderr)))
}

func run(args []string, stdout, stderr io.Writer) naspipe.ExitCode {
	fs := flag.NewFlagSet("naspipe-scenario", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "scenarios", "scenario catalog directory")
	only := fs.String("scenario", "", "comma-separated scenario names to run (default: all)")
	out := fs.String("out", "BENCH_scenarios.json", "scorecard output path (\"-\" = stdout)")
	stateDir := fs.String("state-dir", "", "checkpoint/state root (default: a temp dir, removed after)")
	check := fs.Bool("check", false, "parse and validate the catalog, run nothing")
	canon := fs.Bool("canon", false, "rewrite catalog files in canonical form, run nothing")
	workers := fs.Int("workers", 2, "service executor pool size for multi-job scenarios")
	if err := fs.Parse(args); err != nil {
		return naspipe.ExitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "unexpected argument %q (scenarios are selected with -scenario)\n", fs.Arg(0))
		return naspipe.ExitUsage
	}

	paths, err := catalogPaths(*dir, *only)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return naspipe.ExitUsage
	}

	scens := make([]*scenario.Scenario, 0, len(paths))
	bad := false
	for _, p := range paths {
		s, err := scenario.Load(p)
		if err != nil {
			// The load error carries the structured spec error; surface
			// the offending field exactly as the library reports it.
			fmt.Fprintln(stderr, err)
			bad = true
			continue
		}
		scens = append(scens, s)
		if *canon {
			data, err := scenario.Encode(s)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return naspipe.ExitFailure
			}
			if err := os.WriteFile(p, data, 0o644); err != nil {
				fmt.Fprintln(stderr, err)
				return naspipe.ExitFailure
			}
			fmt.Fprintf(stdout, "canonicalized %s\n", p)
		}
	}
	if bad {
		return naspipe.ExitUsage
	}
	if *check {
		fmt.Fprintf(stdout, "%d scenarios ok\n", len(scens))
		return naspipe.ExitOK
	}
	if *canon {
		return naspipe.ExitOK
	}

	root := *stateDir
	if root == "" {
		tmp, err := os.MkdirTemp("", "naspipe-scenario-*")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return naspipe.ExitFailure
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}

	cells := make([]scenario.Cell, 0, len(scens))
	code := naspipe.ExitOK
	for _, s := range scens {
		cell, obs, err := scenario.Run(context.Background(), s, scenario.Options{
			StateDir: root,
			Workers:  *workers,
		})
		if err != nil {
			fmt.Fprintf(stderr, "scenario %s: %v\n", s.Name, err)
			return naspipe.ExitFailure
		}
		line := fmt.Sprintf("scenario %-24s verified=%v restarts=%d watchdog=%d wall=%v",
			s.Name, cell.Verified, cell.Restarts, cell.WatchdogFires, obs.Wall.Round(obs.Wall/100+1))
		if obs.Recovery > 0 {
			line += fmt.Sprintf(" recovery=%v", obs.Recovery.Round(obs.Recovery/100+1))
		}
		fmt.Fprintln(stdout, line)
		for _, f := range cell.Failures {
			fmt.Fprintf(stdout, "  FAIL %s\n", f)
			code = naspipe.ExitFailure
		}
		cells = append(cells, cell)
	}

	data, err := scenario.EncodeScorecard(cells)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return naspipe.ExitFailure
	}
	if *out == "-" {
		if _, err := stdout.Write(data); err != nil {
			fmt.Fprintln(stderr, err)
			return naspipe.ExitFailure
		}
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(stderr, err)
		return naspipe.ExitFailure
	} else {
		fmt.Fprintf(stdout, "scorecard: %d scenarios -> %s\n", len(cells), *out)
	}
	return code
}

// catalogPaths lists the catalog files to operate on, sorted, filtered
// by the -scenario selection (which must match fully).
func catalogPaths(dir, only string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("scenario catalog: %w", err)
	}
	want := map[string]bool{}
	for _, n := range strings.Split(only, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	filtered := len(want) > 0
	var paths []string
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".json")
		if filtered && !want[name] {
			continue
		}
		delete(want, name)
		paths = append(paths, filepath.Join(dir, e.Name()))
	}
	if len(want) > 0 {
		missing := make([]string, 0, len(want))
		for n := range want {
			missing = append(missing, n)
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("scenario catalog: no file for %v in %s", missing, dir)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario catalog: no *.json files in %s", dir)
	}
	sort.Strings(paths)
	return paths, nil
}
