package train

import (
	"sync"

	"naspipe/internal/layers"
	"naspipe/internal/tensor"
)

// arena holds the scratch buffers one training run reuses across subnet
// steps: the saved-activation chain, the gradient ping buffer, the
// pre-activation scratch, the parameter-view slice, and a free list of
// gradient sets. With an arena the steady-state compute path of step —
// forward, loss, backward, gradient accumulation — performs no heap
// allocation at all (pinned by TestStepComputePathIsAllocationFree).
//
// An arena is single-threaded state: each run (or pooled caller) owns its
// own. All buffers are sized for one model dimension; gradient sets are
// zeroed on checkout, so reuse is value-identical to fresh allocation.
type arena struct {
	dim   int
	xs    []tensor.Vector   // m+1 entries; xs[0] borrows the batch input
	cur   tensor.Vector     // output-gradient buffer, reused down the chain
	tmp   tensor.Vector     // pre-activation scratch for BackwardInto
	views []*layers.Layer   // per-step parameter-view slice
	sets  [][]*layers.Grads // free gradient sets
}

func newArena(dim int) *arena { return &arena{dim: dim} }

// ensure sizes the activation chain and gradient buffers for m blocks.
func (a *arena) ensure(m int) {
	for cap(a.xs) < m+1 {
		a.xs = append(a.xs[:cap(a.xs)], nil)
	}
	a.xs = a.xs[:m+1]
	for i := 1; i <= m; i++ {
		if a.xs[i] == nil {
			a.xs[i] = make(tensor.Vector, a.dim)
		}
	}
	if a.cur == nil {
		a.cur = make(tensor.Vector, a.dim)
		a.tmp = make(tensor.Vector, a.dim)
	}
}

// viewsBuf returns the reusable parameter-view slice resized to m.
func (a *arena) viewsBuf(m int) []*layers.Layer {
	if cap(a.views) < m {
		a.views = make([]*layers.Layer, m)
	}
	return a.views[:m]
}

// grads checks out a zeroed gradient set matching views, reusing a pooled
// set when one is free. The caller must hand the set back via release
// once the gradients have been applied.
func (a *arena) grads(views []*layers.Layer) []*layers.Grads {
	m := len(views)
	var gs []*layers.Grads
	if n := len(a.sets); n > 0 {
		gs, a.sets = a.sets[n-1], a.sets[:n-1]
	}
	if cap(gs) < m {
		grown := make([]*layers.Grads, m)
		copy(grown, gs)
		gs = grown
	}
	gs = gs[:m]
	for b, v := range views {
		if gs[b] == nil {
			gs[b] = v.NewGrads()
		} else {
			gs[b].Reset()
		}
	}
	return gs
}

// release returns a gradient set to the free list. nil is a no-op, so
// callers can release unconditionally.
func (a *arena) release(gs []*layers.Grads) {
	if gs == nil {
		return
	}
	a.sets = append(a.sets, gs[:cap(gs)])
}

// arenaPool recycles arenas across the stateless entry points (StepOn),
// where there is no run object to own one. Dimension is checked on the
// way out; a mismatched arena is simply dropped.
var arenaPool sync.Pool

func getArena(dim int) *arena {
	if v := arenaPool.Get(); v != nil {
		if a := v.(*arena); a.dim == dim {
			return a
		}
	}
	return newArena(dim)
}

func putArena(a *arena) { arenaPool.Put(a) }
