module naspipe

go 1.22
