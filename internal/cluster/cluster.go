// Package cluster models the paper's testbed hardware: 8 hosts × 4 Nvidia
// RTX 2080Ti GPUs (11 GB each), PCIe 3.0 x16 at 15760 MB/s to the host,
// and 40 Gbps Ethernet between hosts with 0.17 ms average ping and a
// measured usable bandwidth of 867 MB/s.
//
// The discrete-event engine consults this package for every duration it
// schedules: compute time of a task at a given batch size, CPU↔GPU swap
// time of a parameter context, and inter-stage communication time for
// activations and gradients. All formulas are deterministic functions of
// their inputs; the model's purpose is preserving the paper's orderings
// and rough factors, not absolute silicon accuracy (see DESIGN.md §6).
package cluster

import (
	"fmt"

	"naspipe/internal/layers"
)

// Spec describes a simulated GPU cluster.
type Spec struct {
	GPUs        int   // pipeline depth D: one stage per GPU
	GPUsPerHost int   // GPUs sharing a host (and its NIC)
	GPUMemBytes int64 // physical memory per GPU

	PCIeBytesPerMs float64 // host<->GPU copy bandwidth
	NetBytesPerMs  float64 // measured cross-host bandwidth
	NetLatencyMs   float64 // cross-host one-way latency
	NVLinkFactor   float64 // intra-host transfers run this multiple of net bandwidth

	// CommOverlap is the fraction of an activation/gradient transfer
	// hidden behind compute by chunked streaming sends (real pipeline
	// systems overlap communication with the next micro-operation; the
	// paper verifies the network was not its bottleneck). Only the
	// residual (1−CommOverlap) of the serialization delays the receiver.
	CommOverlap float64

	// FixedComputeFrac is the fraction of a kernel's reference-batch time
	// that does not shrink with batch size (launch overhead, memory-bound
	// phases). Calibrated so that the paper's observed exec-time ratio
	// between batch 32 and batch 192 (0.54 s vs 1.13 s on NLP.c1)
	// reproduces: t(b) = base·(f + (1−f)·b/ref).
	FixedComputeFrac float64

	// MaxALU is the utilization a perfectly busy GPU reaches at reference
	// batch — real kernels never reach 100% ALU occupancy.
	MaxALU float64
}

// Default returns the paper's testbed with the requested GPU count.
func Default(gpus int) Spec {
	if gpus <= 0 {
		panic(fmt.Sprintf("cluster: invalid GPU count %d", gpus))
	}
	return Spec{
		GPUs:             gpus,
		GPUsPerHost:      4,
		GPUMemBytes:      11 << 30, // 11 GB
		PCIeBytesPerMs:   layers.PCIeBytesPerMs,
		NetBytesPerMs:    867 * 1000 * 1000 / 1000, // 867 MB/s
		NetLatencyMs:     0.17,
		NVLinkFactor:     8, // intra-host PCIe peer copies, ~8x the Ethernet path
		CommOverlap:      0.9,
		FixedComputeFrac: 0.37,
		MaxALU:           0.82,
	}
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.GPUs <= 0 || s.GPUsPerHost <= 0 {
		return fmt.Errorf("cluster: invalid GPU topology %d/%d", s.GPUs, s.GPUsPerHost)
	}
	if s.GPUMemBytes <= 0 || s.PCIeBytesPerMs <= 0 || s.NetBytesPerMs <= 0 {
		return fmt.Errorf("cluster: non-positive capacity in %+v", s)
	}
	if s.FixedComputeFrac < 0 || s.FixedComputeFrac >= 1 {
		return fmt.Errorf("cluster: FixedComputeFrac %f outside [0,1)", s.FixedComputeFrac)
	}
	return nil
}

// RefBatch returns the reference batch size at which Table 5 layer costs
// were profiled: 192 sequences for NLP, 64 images for CV (the paper's
// profiled input shapes).
func RefBatch(d layers.Domain) int {
	if d == layers.NLP {
		return 192
	}
	return 64
}

// SampleBytes returns the per-sample activation message size crossing a
// stage boundary: the profiled input shape in float32 (NLP: 192×1024
// tokens×dims ≈ 0.75 MB; CV: 112×112×64 feature map ≈ 3.1 MB).
func SampleBytes(d layers.Domain) int64 {
	if d == layers.NLP {
		return 192 * 1024 * 4
	}
	return 112 * 112 * 64 * 4
}

// ActBytesPerSample returns the per-layer per-sample activation residency
// cost used for batch sizing. Even with activation recomputation (GPipe
// checkpointing, which NASPipe and all baselines except PipeDream enable)
// the stage must hold boundary activations and recompute workspace per
// in-flight sample. Calibrated jointly with FixedActBytes against the
// paper's Table 2 batch columns (GPipe 32/64/128 on NLP.c1–c3,
// 24/32/48 on CV.c1–c3, PipeDream at roughly half, NASPipe at 192/64).
func ActBytesPerSample(d layers.Domain) int64 {
	if d == layers.NLP {
		return 52 << 20 / 6 // ~8.7 MB per layer per sample
	}
	return 53 << 20 // ~53 MB per layer per sample
}

// FixedActBytes is the batch-independent per-GPU memory overhead: CUDA
// context, cuDNN workspaces, allocator fragmentation reserve. Subtracted
// from free memory before batch sizing.
const FixedActBytes = int64(2362232012) // ~2.2 GB

// ComputeMs scales a base cost (profiled at refBatch) to the given batch
// size with the affine kernel model.
func (s Spec) ComputeMs(baseMs float64, batch, refBatch int) float64 {
	if batch <= 0 || refBatch <= 0 {
		panic(fmt.Sprintf("cluster: invalid batch %d/%d", batch, refBatch))
	}
	f := s.FixedComputeFrac
	return baseMs * (f + (1-f)*float64(batch)/float64(refBatch))
}

// EfficiencyFactor returns useful-work-per-busy-time relative to the
// reference batch: (b/ref) / (f + (1−f)·b/ref), capped at 1. Small
// batches waste ALU on fixed overheads — the mechanism behind the paper's
// observation that context eviction (which frees memory for larger
// batches) raises GPU utilization.
func (s Spec) EfficiencyFactor(batch, refBatch int) float64 {
	if batch <= 0 || refBatch <= 0 {
		panic(fmt.Sprintf("cluster: invalid batch %d/%d", batch, refBatch))
	}
	f := s.FixedComputeFrac
	x := float64(batch) / float64(refBatch)
	eff := x / (f + (1-f)*x)
	// Small batches lose twice: time-efficiency (the affine kernel model)
	// and per-SM ALU occupancy. Squaring matches the paper's measured ALU
	// spread (GPipe 0.5x total at batch 32 vs NASPipe 3.9x at 192).
	eff *= eff
	if eff > 1 {
		eff = 1
	}
	return eff
}

// SwapMs returns the CPU↔GPU copy time for a parameter context of the
// given size (pinned-memory asynchronous copy, so bandwidth-bound).
func (s Spec) SwapMs(bytes int64) float64 {
	if bytes < 0 {
		panic("cluster: negative swap size")
	}
	return float64(bytes) / s.PCIeBytesPerMs
}

// Host returns the host index of a GPU (stage).
func (s Spec) Host(gpu int) int { return gpu / s.GPUsPerHost }

// SameHost reports whether two stages share a host.
func (s Spec) SameHost(a, b int) bool { return s.Host(a) == s.Host(b) }

// CommMs returns the transfer time of a message between adjacent stages.
// Intra-host transfers ride PCIe peer-to-peer (NVLinkFactor × net
// bandwidth, negligible latency); cross-host transfers pay the Ethernet
// latency and measured bandwidth.
func (s Spec) CommMs(from, to int, bytes int64) float64 {
	if bytes < 0 {
		panic("cluster: negative message size")
	}
	if from == to {
		return 0
	}
	residual := 1 - s.CommOverlap
	if residual < 0 {
		residual = 0
	}
	if s.SameHost(from, to) {
		return float64(bytes) / (s.NetBytesPerMs * s.NVLinkFactor) * residual
	}
	return s.NetLatencyMs + float64(bytes)/s.NetBytesPerMs*residual
}

// MaxBatch returns the largest batch size whose activation footprint fits
// in the free memory left on a stage after reserving residentParamBytes,
// for a stage holding layersInStage layers. Returns at least 1 when any
// memory is free, 0 when parameters alone exceed capacity (the condition
// under which GPipe/PipeDream "failed to run NLP.c0" in §5.1).
func (s Spec) MaxBatch(residentParamBytes int64, layersInStage int, d layers.Domain) int {
	free := s.GPUMemBytes - residentParamBytes - FixedActBytes
	if free <= 0 {
		return 0
	}
	if layersInStage <= 0 {
		layersInStage = 1
	}
	perSample := ActBytesPerSample(d) * int64(layersInStage)
	b := int(free / perSample)
	if b < 1 {
		b = 1
	}
	return b
}

// A100 returns a modern-testbed preset: 80 GB GPUs on PCIe 4.0 x16
// (31.5 GB/s), NVLink-class intra-host transfers, and 100 Gbps fabric.
// Useful for studying how NASPipe's advantage shifts when GPU memory is
// plentiful relative to the supernet: context switching buys less batch
// headroom, while CSP's reproducibility guarantee is hardware-independent.
func A100(gpus int) Spec {
	s := Default(gpus)
	s.GPUMemBytes = 80 << 30
	s.PCIeBytesPerMs = 31.5 * 1000 * 1000 // 31.5 GB/s in bytes/ms
	s.NetBytesPerMs = 11 * 1000 * 1000    // ~11 GB/s usable of 100 Gbps
	s.NVLinkFactor = 25                   // NVLink vs fabric
	s.NetLatencyMs = 0.05
	return s
}
