// Package trace records the parameter access interleaving of a training
// run: one READ event per (subnet, layer) at forward-pass start and one
// WRITE event per (subnet, layer) at backward-pass completion.
//
// The trace is the bridge between the performance plane and the numeric
// plane: the engine emits it while simulating a schedule, the replay
// trainer consumes it to produce actual weights, and the analysis helpers
// here extract the per-layer access orders the paper prints in Table 4
// ("2F-2B-5F-5B-7F-7B") and decide whether a schedule is equivalent to
// sequential training (the inter-subnet reproducibility criterion, §2.1).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"naspipe/internal/supernet"
)

// AccessKind distinguishes parameter reads from writes.
type AccessKind int

// Access kinds.
const (
	Read  AccessKind = iota // forward pass: parameter READ
	Write                   // backward pass + optimizer step: parameter WRITE
)

func (k AccessKind) String() string {
	if k == Read {
		return "F"
	}
	return "B"
}

// Event is one parameter access.
type Event struct {
	Order  int // global total order (engine emission order)
	TimeMs float64
	Layer  supernet.LayerID
	Subnet int
	Stage  int
	Kind   AccessKind
}

// Trace is an ordered sequence of accesses.
type Trace struct {
	Events []Event
}

// Append adds an event, assigning the next order number.
func (t *Trace) Append(timeMs float64, layer supernet.LayerID, subnet, stage int, kind AccessKind) {
	t.Events = append(t.Events, Event{
		Order: len(t.Events), TimeMs: timeMs, Layer: layer,
		Subnet: subnet, Stage: stage, Kind: kind,
	})
}

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.Events) }

// Layers returns the distinct layers accessed, ascending.
func (t *Trace) Layers() []supernet.LayerID {
	seen := map[supernet.LayerID]bool{}
	for _, e := range t.Events {
		seen[e.Layer] = true
	}
	out := make([]supernet.LayerID, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LayerEvents returns the layer's accesses in trace order.
func (t *Trace) LayerEvents(layer supernet.LayerID) []Event {
	var out []Event
	for _, e := range t.Events {
		if e.Layer == layer {
			out = append(out, e)
		}
	}
	return out
}

// LayerOrder renders the access/update order of one layer in the paper's
// Table 4 notation, e.g. "2F-2B-5F-5B-7F-7B".
func (t *Trace) LayerOrder(layer supernet.LayerID) string {
	evs := t.LayerEvents(layer)
	parts := make([]string, len(evs))
	for i, e := range evs {
		parts[i] = fmt.Sprintf("%d%v", e.Subnet, e.Kind)
	}
	return strings.Join(parts, "-")
}

// SequentialOrder returns the order string a strictly sequential execution
// would produce for subnets accessing the layer: nF-nB ascending by n.
func SequentialOrder(subnets []int) string {
	sorted := append([]int(nil), subnets...)
	sort.Ints(sorted)
	parts := make([]string, 0, 2*len(sorted))
	for _, s := range sorted {
		parts = append(parts, fmt.Sprintf("%dF", s), fmt.Sprintf("%dB", s))
	}
	return strings.Join(parts, "-")
}

// SequentialEquivalent reports whether, for every layer, the access
// sequence equals sequential training: subnets in ascending order, each
// layer seeing its F strictly before its B, and no interleaving between
// subnets (xF-xB-yF-yB... with x<y). This is the inter-subnet
// reproducibility condition of §2.1.
func (t *Trace) SequentialEquivalent() bool {
	return t.FirstViolation() == nil
}

// Violation describes a departure from sequential-equivalent ordering on
// one layer.
type Violation struct {
	Layer  supernet.LayerID
	Detail string
}

// FirstViolation returns the first per-layer ordering violation found, or
// nil if the trace is sequential-equivalent. Layers are checked in
// ascending ID order for determinism.
func (t *Trace) FirstViolation() *Violation {
	perLayer := map[supernet.LayerID][]Event{}
	for _, e := range t.Events {
		perLayer[e.Layer] = append(perLayer[e.Layer], e)
	}
	for _, l := range t.Layers() {
		evs := perLayer[l]
		// Expect: pairs (sF, sB) with strictly increasing s.
		if len(evs)%2 != 0 {
			return &Violation{l, fmt.Sprintf("odd number of accesses (%d)", len(evs))}
		}
		prev := -1
		for i := 0; i < len(evs); i += 2 {
			f, b := evs[i], evs[i+1]
			if f.Kind != Read || b.Kind != Write {
				return &Violation{l, fmt.Sprintf("access %d/%d not an F,B pair: %v,%v", i, i+1, f.Kind, b.Kind)}
			}
			if f.Subnet != b.Subnet {
				return &Violation{l, fmt.Sprintf("interleaved subnets %d and %d", f.Subnet, b.Subnet)}
			}
			if f.Subnet <= prev {
				return &Violation{l, fmt.Sprintf("subnet %d accessed after %d", f.Subnet, prev)}
			}
			prev = f.Subnet
		}
	}
	return nil
}

// Equal reports whether two traces contain identical event sequences
// (ignoring timestamps — schedules on different cluster sizes reach the
// same order at different times).
func (t *Trace) Equal(o *Trace) bool {
	if len(t.Events) != len(o.Events) {
		return false
	}
	for i := range t.Events {
		a, b := t.Events[i], o.Events[i]
		if a.Layer != b.Layer || a.Subnet != b.Subnet || a.Kind != b.Kind {
			return false
		}
	}
	return true
}

// PerLayerEqual reports whether two traces agree on the access order of
// every layer — the relation that determines numeric equality of results
// even when globally the traces interleave independent layers differently.
func (t *Trace) PerLayerEqual(o *Trace) bool {
	layers := t.Layers()
	oLayers := o.Layers()
	if len(layers) != len(oLayers) {
		return false
	}
	for i := range layers {
		if layers[i] != oLayers[i] {
			return false
		}
	}
	for _, l := range layers {
		if t.LayerOrder(l) != o.LayerOrder(l) {
			return false
		}
	}
	return true
}
