// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) plus the artifact appendix experiments, on the
// simulated cluster (performance plane) and the numeric trainer
// (reproducibility plane). Each function returns a rendered text report;
// EXPERIMENTS.md records paper-vs-measured values and deviations.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"naspipe/internal/cluster"
	"naspipe/internal/data"
	"naspipe/internal/engine"
	"naspipe/internal/parallel"
	"naspipe/internal/sched"
	"naspipe/internal/supernet"
	"naspipe/internal/train"
)

// Options scale the experiments. Defaults reproduce the paper's setups at
// simulation scale; Quick shrinks everything for smoke tests and benches.
type Options struct {
	Seed     uint64
	GPUs     int // default 8, the paper's default setting
	Subnets  int // performance-plane subnets per run
	Inflight int // pipeline admission window

	// Numeric plane scaling: the trainable supernet is geometry-reduced
	// (blocks fixed, choices divided) so real float32 training is fast
	// while the dependency structure keeps its character.
	NumericBlocks  int
	NumericDim     int
	NumericBatch   int
	NumericSubnets int
	NumericLR      float32

	// Parallelism bounds the worker pool used by All/AllContext when
	// fanning out independent experiments. Zero means GOMAXPROCS; one
	// recovers the serial harness. The rendered report is byte-identical
	// at every setting — results are assembled in experiment order, not
	// completion order.
	Parallelism int

	Quick bool
}

// Default returns the full-scale experiment options.
func Default() Options {
	return Options{
		Seed: 42, GPUs: 8, Subnets: 240, Inflight: 48,
		NumericBlocks: 12, NumericDim: 12, NumericBatch: 4,
		NumericSubnets: 120, NumericLR: 0.05,
	}
}

// Quick returns reduced options for fast smoke runs.
func Quick() Options {
	o := Default()
	o.Subnets = 60
	o.NumericSubnets = 30
	o.NumericBlocks = 8
	o.Quick = true
	return o
}

func (o Options) withDefaults() Options {
	d := Default()
	if o.GPUs == 0 {
		o.GPUs = d.GPUs
	}
	if o.Subnets == 0 {
		o.Subnets = d.Subnets
	}
	if o.Inflight == 0 {
		o.Inflight = d.Inflight
	}
	if o.NumericBlocks == 0 {
		o.NumericBlocks = d.NumericBlocks
	}
	if o.NumericDim == 0 {
		o.NumericDim = d.NumericDim
	}
	if o.NumericBatch == 0 {
		o.NumericBatch = d.NumericBatch
	}
	if o.NumericSubnets == 0 {
		o.NumericSubnets = d.NumericSubnets
	}
	if o.NumericLR == 0 {
		o.NumericLR = d.NumericLR
	}
	return o
}

// perfSystems are the four systems of Figures 4–5 and Table 2.
var perfSystems = []string{"naspipe", "gpipe", "pipedream", "vpipe"}

// syncName maps policies to the paper's synchronization labels.
func syncName(policy string) string {
	switch policy {
	case "naspipe", "sequential":
		return "CSP"
	case "gpipe", "vpipe":
		return "BSP"
	case "pipedream":
		return "ASP"
	}
	return "?"
}

// runPerf executes one performance-plane run. Engine errors (including
// cancellation) surface as a Failed result so table/figure renderers can
// report them as data points without every call site growing an error
// branch; genuine errors also reach the caller via ctx or the facade.
func runPerf(ctx context.Context, o Options, space supernet.Space, policy string, gpus int, recordTrace bool) engine.Result {
	p, err := sched.New(policy)
	if err != nil {
		return engine.Result{Policy: policy, Space: space.Name, Failed: true, FailReason: err.Error()}
	}
	res, err := engine.RunContext(ctx, engine.Config{
		Space:         space,
		Spec:          cluster.Default(gpus),
		Seed:          o.Seed,
		NumSubnets:    o.Subnets,
		InflightLimit: o.Inflight,
		RecordTrace:   recordTrace,
	}, p)
	if err != nil && !res.Failed {
		res.Failed = true
		res.FailReason = err.Error()
	}
	return res
}

// clusterSpec builds the default cluster at the options' GPU count.
func clusterSpec(o Options) cluster.Spec { return cluster.Default(o.GPUs) }

// scaledSpace reduces a Table-1 space to numeric-plane geometry: fixed
// block count, choices divided by 8 (floor 2), preserving the relative
// dependency density across spaces.
func (o Options) scaledSpace(space supernet.Space) supernet.Space {
	choices := space.Choices / 8
	if choices < 2 {
		choices = 2
	}
	return space.Scaled(o.NumericBlocks, choices)
}

// numericCfg builds the numeric training config for a space.
func (o Options) numericCfg(space supernet.Space) train.Config {
	kind, err := data.KindByName(space.Dataset)
	if err != nil {
		kind = data.WNMT
	}
	return train.Config{
		Space: o.scaledSpace(space), Dim: o.NumericDim, Seed: o.Seed,
		BatchSize: o.NumericBatch, LR: o.NumericLR, Dataset: kind,
	}
}

// numericRun trains the scaled space under the given policy's schedule at
// the given GPU count and returns the numeric result.
func (o Options) numericRun(ctx context.Context, space supernet.Space, policy string, gpus int) (train.Result, error) {
	cfg := o.numericCfg(space)
	p, err := sched.New(policy)
	if err != nil {
		return train.Result{}, err
	}
	res, err := engine.RunContext(ctx, engine.Config{
		Space:         cfg.Space,
		Spec:          cluster.Default(gpus),
		Seed:          o.Seed,
		NumSubnets:    o.NumericSubnets,
		InflightLimit: o.Inflight,
		RecordTrace:   true,
	}, p)
	if err != nil {
		return train.Result{}, err
	}
	if res.Failed {
		return train.Result{}, fmt.Errorf("%s failed on %s: %s", policy, cfg.Space.Name, res.FailReason)
	}
	if res.Deadlock {
		return train.Result{}, fmt.Errorf("%s deadlocked on %s", policy, cfg.Space.Name)
	}
	subs := supernet.Sample(cfg.Space, o.Seed, o.NumericSubnets)
	return train.Replay(cfg, subs, res.Trace)
}

// probeValLoss evaluates the trained supernet on a fixed probe set of
// subnets (sampled outside the training stream) — a smooth, deterministic
// measure of supernet quality used as "supernet loss" in Table 3 and the
// final-loss column of Figure 4.
func (o Options) probeValLoss(cfg train.Config, net *supernet.Numeric) float64 {
	probes := supernet.Sample(cfg.Space, o.Seed+997, 6)
	var sum float64
	for _, p := range probes {
		sum += train.Evaluate(cfg, net, p, 2)
	}
	return sum / float64(len(probes))
}

// Names lists the experiment identifiers accepted by Run.
func Names() []string {
	return []string{
		"table1", "table2", "table3", "table4", "table5",
		"figure1", "figure4", "figure5", "figure6", "figure7",
		"artifact-compare", "artifact-throughput",
		"ext-hybrid", "ext-moe", "ext-analysis", "ext-hardware", "ext-jitter",
	}
}

// Run dispatches an experiment by name.
func Run(name string, o Options) (string, error) {
	return RunContext(context.Background(), name, o)
}

// RunContext dispatches an experiment by name under a context. A
// cancelled context returns whatever partial report the experiment
// rendered (possibly empty) along with the context's error.
func RunContext(ctx context.Context, name string, o Options) (string, error) {
	var out string
	switch name {
	case "table1":
		out = Table1(ctx, o)
	case "table2":
		out = Table2(ctx, o)
	case "table3":
		out = Table3(ctx, o)
	case "table4":
		out = Table4(ctx, o)
	case "table5":
		out = Table5(ctx, o)
	case "figure1":
		out = Figure1(ctx, o)
	case "figure4":
		out = Figure4(ctx, o)
	case "figure5":
		out = Figure5(ctx, o)
	case "figure6":
		out = Figure6(ctx, o)
	case "figure7":
		out = Figure7(ctx, o)
	case "figure-cc":
		// Concurrent-plane timeline: by-name only. Not in Names(), so
		// AllExperiments stays byte-identical across worker counts while
		// this wall-clock report remains reachable from the CLI.
		out = FigureCC(ctx, o)
	case "artifact-compare":
		out = ArtifactCompare(ctx, o)
	case "artifact-throughput":
		out = ArtifactThroughput(ctx, o)
	case "ext-hybrid":
		out = ExtHybrid(ctx, o)
	case "ext-moe":
		out = ExtMoE(ctx, o)
	case "ext-analysis":
		out = ExtAnalysis(ctx, o)
	case "ext-hardware":
		out = ExtHardware(ctx, o)
	case "ext-jitter":
		out = ExtJitter(ctx, o)
	default:
		return "", fmt.Errorf("experiments: unknown experiment %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// All runs every experiment and concatenates the reports.
func All(o Options) string {
	out, _ := AllContext(context.Background(), o)
	return out
}

// AllContext runs every experiment on a bounded worker pool (see
// Options.Parallelism) and concatenates the reports in canonical Names()
// order. The output is byte-identical to the serial harness regardless of
// worker count or completion order: each experiment renders into its own
// slot and the slots are joined in order at the end. Per-experiment
// failures are embedded in the report exactly as the serial loop embeds
// them; only cancellation is returned as an error, alongside the partial
// report assembled so far.
func AllContext(ctx context.Context, o Options) (string, error) {
	names := Names()
	workers := parallel.Workers(o.Parallelism, len(names))
	parts, err := parallel.Map(ctx, workers, len(names), func(i int) (string, error) {
		out, err := RunContext(ctx, names[i], o)
		if err != nil {
			if ctx.Err() != nil {
				return out, err
			}
			return fmt.Sprintf("%s: ERROR: %v\n", names[i], err), nil
		}
		return out + "\n", nil
	})
	return strings.Join(parts, ""), err
}
