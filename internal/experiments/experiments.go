// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) plus the artifact appendix experiments, on the
// simulated cluster (performance plane) and the numeric trainer
// (reproducibility plane). Each function returns a rendered text report;
// EXPERIMENTS.md records paper-vs-measured values and deviations.
package experiments

import (
	"fmt"
	"strings"

	"naspipe/internal/cluster"
	"naspipe/internal/data"
	"naspipe/internal/engine"
	"naspipe/internal/sched"
	"naspipe/internal/supernet"
	"naspipe/internal/train"
)

// Options scale the experiments. Defaults reproduce the paper's setups at
// simulation scale; Quick shrinks everything for smoke tests and benches.
type Options struct {
	Seed     uint64
	GPUs     int // default 8, the paper's default setting
	Subnets  int // performance-plane subnets per run
	Inflight int // pipeline admission window

	// Numeric plane scaling: the trainable supernet is geometry-reduced
	// (blocks fixed, choices divided) so real float32 training is fast
	// while the dependency structure keeps its character.
	NumericBlocks  int
	NumericDim     int
	NumericBatch   int
	NumericSubnets int
	NumericLR      float32

	Quick bool
}

// Default returns the full-scale experiment options.
func Default() Options {
	return Options{
		Seed: 42, GPUs: 8, Subnets: 240, Inflight: 48,
		NumericBlocks: 12, NumericDim: 12, NumericBatch: 4,
		NumericSubnets: 120, NumericLR: 0.05,
	}
}

// Quick returns reduced options for fast smoke runs.
func Quick() Options {
	o := Default()
	o.Subnets = 60
	o.NumericSubnets = 30
	o.NumericBlocks = 8
	o.Quick = true
	return o
}

func (o Options) withDefaults() Options {
	d := Default()
	if o.GPUs == 0 {
		o.GPUs = d.GPUs
	}
	if o.Subnets == 0 {
		o.Subnets = d.Subnets
	}
	if o.Inflight == 0 {
		o.Inflight = d.Inflight
	}
	if o.NumericBlocks == 0 {
		o.NumericBlocks = d.NumericBlocks
	}
	if o.NumericDim == 0 {
		o.NumericDim = d.NumericDim
	}
	if o.NumericBatch == 0 {
		o.NumericBatch = d.NumericBatch
	}
	if o.NumericSubnets == 0 {
		o.NumericSubnets = d.NumericSubnets
	}
	if o.NumericLR == 0 {
		o.NumericLR = d.NumericLR
	}
	return o
}

// perfSystems are the four systems of Figures 4–5 and Table 2.
var perfSystems = []string{"naspipe", "gpipe", "pipedream", "vpipe"}

// syncName maps policies to the paper's synchronization labels.
func syncName(policy string) string {
	switch policy {
	case "naspipe", "sequential":
		return "CSP"
	case "gpipe", "vpipe":
		return "BSP"
	case "pipedream":
		return "ASP"
	}
	return "?"
}

// runPerf executes one performance-plane run.
func runPerf(o Options, space supernet.Space, policy string, gpus int, recordTrace bool) engine.Result {
	p, err := sched.New(policy)
	if err != nil {
		panic(err)
	}
	return engine.Run(engine.Config{
		Space:         space,
		Spec:          cluster.Default(gpus),
		Seed:          o.Seed,
		NumSubnets:    o.Subnets,
		InflightLimit: o.Inflight,
		RecordTrace:   recordTrace,
	}, p)
}

// clusterSpec builds the default cluster at the options' GPU count.
func clusterSpec(o Options) cluster.Spec { return cluster.Default(o.GPUs) }

// scaledSpace reduces a Table-1 space to numeric-plane geometry: fixed
// block count, choices divided by 8 (floor 2), preserving the relative
// dependency density across spaces.
func (o Options) scaledSpace(space supernet.Space) supernet.Space {
	choices := space.Choices / 8
	if choices < 2 {
		choices = 2
	}
	return space.Scaled(o.NumericBlocks, choices)
}

// numericCfg builds the numeric training config for a space.
func (o Options) numericCfg(space supernet.Space) train.Config {
	kind, err := data.KindByName(space.Dataset)
	if err != nil {
		kind = data.WNMT
	}
	return train.Config{
		Space: o.scaledSpace(space), Dim: o.NumericDim, Seed: o.Seed,
		BatchSize: o.NumericBatch, LR: o.NumericLR, Dataset: kind,
	}
}

// numericRun trains the scaled space under the given policy's schedule at
// the given GPU count and returns the numeric result.
func (o Options) numericRun(space supernet.Space, policy string, gpus int) (train.Result, error) {
	cfg := o.numericCfg(space)
	p, err := sched.New(policy)
	if err != nil {
		return train.Result{}, err
	}
	res := engine.Run(engine.Config{
		Space:         cfg.Space,
		Spec:          cluster.Default(gpus),
		Seed:          o.Seed,
		NumSubnets:    o.NumericSubnets,
		InflightLimit: o.Inflight,
		RecordTrace:   true,
	}, p)
	if res.Failed {
		return train.Result{}, fmt.Errorf("%s failed on %s: %s", policy, cfg.Space.Name, res.FailReason)
	}
	if res.Deadlock {
		return train.Result{}, fmt.Errorf("%s deadlocked on %s", policy, cfg.Space.Name)
	}
	subs := supernet.Sample(cfg.Space, o.Seed, o.NumericSubnets)
	return train.Replay(cfg, subs, res.Trace)
}

// probeValLoss evaluates the trained supernet on a fixed probe set of
// subnets (sampled outside the training stream) — a smooth, deterministic
// measure of supernet quality used as "supernet loss" in Table 3 and the
// final-loss column of Figure 4.
func (o Options) probeValLoss(cfg train.Config, net *supernet.Numeric) float64 {
	probes := supernet.Sample(cfg.Space, o.Seed+997, 6)
	var sum float64
	for _, p := range probes {
		sum += train.Evaluate(cfg, net, p, 2)
	}
	return sum / float64(len(probes))
}

// Names lists the experiment identifiers accepted by Run.
func Names() []string {
	return []string{
		"table1", "table2", "table3", "table4", "table5",
		"figure1", "figure4", "figure5", "figure6", "figure7",
		"artifact-compare", "artifact-throughput",
		"ext-hybrid", "ext-moe", "ext-analysis", "ext-hardware", "ext-jitter",
	}
}

// Run dispatches an experiment by name.
func Run(name string, o Options) (string, error) {
	switch name {
	case "table1":
		return Table1(o), nil
	case "table2":
		return Table2(o), nil
	case "table3":
		return Table3(o), nil
	case "table4":
		return Table4(o), nil
	case "table5":
		return Table5(o), nil
	case "figure1":
		return Figure1(o), nil
	case "figure4":
		return Figure4(o), nil
	case "figure5":
		return Figure5(o), nil
	case "figure6":
		return Figure6(o), nil
	case "figure7":
		return Figure7(o), nil
	case "artifact-compare":
		return ArtifactCompare(o), nil
	case "artifact-throughput":
		return ArtifactThroughput(o), nil
	case "ext-hybrid":
		return ExtHybrid(o), nil
	case "ext-moe":
		return ExtMoE(o), nil
	case "ext-analysis":
		return ExtAnalysis(o), nil
	case "ext-hardware":
		return ExtHardware(o), nil
	case "ext-jitter":
		return ExtJitter(o), nil
	}
	return "", fmt.Errorf("experiments: unknown experiment %q (known: %s)", name, strings.Join(Names(), ", "))
}

// All runs every experiment and concatenates the reports.
func All(o Options) string {
	var b strings.Builder
	for _, name := range Names() {
		out, err := Run(name, o)
		if err != nil {
			fmt.Fprintf(&b, "%s: ERROR: %v\n", name, err)
			continue
		}
		b.WriteString(out)
		b.WriteByte('\n')
	}
	return b.String()
}
