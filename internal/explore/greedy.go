package explore

import (
	"fmt"

	"naspipe/internal/rng"
	"naspipe/internal/supernet"
	"naspipe/internal/train"
)

// GreedyConfig parameterizes GreedyNAS-style supernet training (§2.1's
// motivating example for reproducibility): at each step the explorer
// samples several candidate subnets, ranks them by a cheap validation
// proxy on the *current* supernet weights, and trains only the most
// promising one, accumulating a quality-ranking log along the way.
//
// The paper's motivation: GreedyNAS's authors had to re-run their best
// trial and repeatedly inspect the collected quality rankings — which is
// only meaningful if training is reproducible, because the ranking at
// step t depends on the weights at step t. With NASPipe-Go's CSP
// discipline every re-run regenerates the identical ranking log.
type GreedyConfig struct {
	Steps             int // training steps
	CandidatesPerStep int // subnets sampled and ranked per step
	ValBatches        int // validation batches per ranking evaluation
	Seed              uint64
}

// DefaultGreedyConfig returns a laptop-scale configuration.
func DefaultGreedyConfig(seed uint64) GreedyConfig {
	return GreedyConfig{Steps: 60, CandidatesPerStep: 4, ValBatches: 1, Seed: seed}
}

// RankEntry records one step's candidate ranking: the candidate subnets
// in evaluated order and the index of the winner that was trained.
type RankEntry struct {
	Step    int
	Losses  []float64 // candidate validation losses, sampling order
	Winner  int       // index into the step's candidates
	Subnets []supernet.Subnet
}

// GreedyResult reports a greedy training run.
type GreedyResult struct {
	Net      *supernet.Numeric
	Rankings []RankEntry
	Checksum uint64
}

// RankingDigest folds the full ranking log into one comparable number:
// equal digests mean identical rankings at every step — the "collected
// information" of a GreedyNAS trial.
func (g GreedyResult) RankingDigest() uint64 {
	var sums []uint64
	for _, e := range g.Rankings {
		sums = append(sums, uint64(e.Winner))
		for _, s := range e.Subnets {
			for _, c := range s.Choices {
				sums = append(sums, uint64(c))
			}
		}
	}
	return combine(sums)
}

func combine(sums []uint64) uint64 {
	var h uint64 = 1469598103934665603
	for _, s := range sums {
		for i := 0; i < 8; i++ {
			h ^= (s >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// Greedy runs GreedyNAS-style training on a fresh numeric supernet. The
// subnet each step trains depends on the current weights, so the
// exploration stream itself is a function of training history — the case
// where irreproducible training corrupts not just the result but the
// *experiment record*. Training follows sequential semantics (what CSP
// reproduces exactly on any cluster).
func Greedy(cfg train.Config, gc GreedyConfig) (GreedyResult, error) {
	if gc.Steps <= 0 || gc.CandidatesPerStep <= 0 {
		return GreedyResult{}, fmt.Errorf("explore: invalid greedy config %+v", gc)
	}
	space := cfg.Space
	net := supernet.BuildNumeric(space, cfg.Dim, cfg.Seed)
	r := rng.Labeled(gc.Seed, "greedy/"+space.Name)
	var rankings []RankEntry
	for step := 0; step < gc.Steps; step++ {
		entry := RankEntry{Step: step}
		for c := 0; c < gc.CandidatesPerStep; c++ {
			choices := make([]int, space.Blocks)
			for b := range choices {
				choices[b] = r.Intn(space.Choices)
			}
			sub := supernet.Subnet{Seq: step, Choices: choices}
			entry.Subnets = append(entry.Subnets, sub)
			entry.Losses = append(entry.Losses, train.Evaluate(cfg, net, sub, gc.ValBatches))
		}
		entry.Winner = 0
		for c := 1; c < len(entry.Losses); c++ {
			if entry.Losses[c] < entry.Losses[entry.Winner] {
				entry.Winner = c
			}
		}
		rankings = append(rankings, entry)
		// Train the winner for one step via the sequential trainer.
		winner := entry.Subnets[entry.Winner].Clone()
		winner.Seq = step
		res := trainOne(cfg, net, winner)
		_ = res
	}
	return GreedyResult{Net: net, Rankings: rankings, Checksum: net.Checksum()}, nil
}

// trainOne applies one training step of sub to the live supernet.
func trainOne(cfg train.Config, net *supernet.Numeric, sub supernet.Subnet) float32 {
	return train.StepOn(cfg, net, sub)
}
