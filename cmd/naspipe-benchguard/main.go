// naspipe-benchguard compares `go test -bench` output against a
// checked-in baseline and fails on performance regressions, so CI
// catches a hot path growing allocations or losing its speedup without
// anyone staring at benchmark logs.
//
// Raw ns/op is meaningless across machines, so the guard compares two
// machine-portable signals instead:
//
//   - allocs/op, which is deterministic for a given code path: any
//     growth beyond the tolerance is a regression.
//   - new/ref time ratios: for every BenchmarkFoo measured alongside a
//     BenchmarkFooRef in the SAME run (the Ref benchmarks pin the
//     pre-optimization implementations in the tree), the guard checks
//     the optimized-over-reference ratio. Both sides run on the same
//     host in the same process, so the ratio survives machine changes.
//
// Usage:
//
//	go test -bench . -benchmem ./internal/... | tee bench.out
//	naspipe-benchguard -baseline BENCH_baseline.json bench.out
//	naspipe-benchguard -baseline BENCH_baseline.json -update bench.out
//
// Exit codes follow the repo taxonomy: 0 ok, 1 regression or bad input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name    string  // full name minus the -N GOMAXPROCS suffix
	NsPerOp float64 // ns/op
	Allocs  float64 // allocs/op; -1 when the run lacked -benchmem
}

// baseline is the checked-in expectation file.
type baseline struct {
	// Allocs pins allocs/op per benchmark.
	Allocs map[string]float64 `json:"allocs_per_op"`
	// Ratios pins new/ref ns-per-op ratios, keyed by the optimized
	// benchmark's name (its Ref twin is derived: Foo/... → FooRef/...).
	Ratios map[string]float64 `json:"time_ratio_vs_ref"`
}

func main() {
	var (
		basePath  = flag.String("baseline", "BENCH_baseline.json", "baseline JSON to compare against (or write with -update)")
		update    = flag.Bool("update", false, "regenerate the baseline from this run instead of comparing")
		tolerance = flag.Float64("tolerance", 0.15, "allowed fractional regression before failing")
	)
	flag.Parse()

	results, err := readResults(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmark lines found in input")
		os.Exit(1)
	}

	if *update {
		b := buildBaseline(results)
		buf, _ := json.MarshalIndent(b, "", "  ")
		if err := os.WriteFile(*basePath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: writing %s: %v\n", *basePath, err)
			os.Exit(1)
		}
		fmt.Printf("benchguard: wrote %s (%d alloc pins, %d ratio pins)\n", *basePath, len(b.Allocs), len(b.Ratios))
		return
	}

	buf, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v (run with -update to create it)\n", err)
		os.Exit(1)
	}
	var base baseline
	if err := json.Unmarshal(buf, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parsing %s: %v\n", *basePath, err)
		os.Exit(1)
	}

	regressions := compare(base, results, *tolerance)
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "REGRESSION: "+r)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d regression(s) beyond %.0f%% tolerance\n",
			len(regressions), *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("benchguard: ok (%d benchmarks, %d alloc pins, %d ratio pins)\n",
		len(results), len(base.Allocs), len(base.Ratios))
}

// readResults parses benchmark lines from the named files, or stdin
// when none are given.
func readResults(paths []string) (map[string]benchResult, error) {
	out := make(map[string]benchResult)
	read := func(r io.Reader) error {
		buf, err := io.ReadAll(r)
		if err != nil {
			return err
		}
		for _, res := range parseBench(string(buf)) {
			out[res.Name] = res
		}
		return nil
	}
	if len(paths) == 0 {
		return out, read(os.Stdin)
	}
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		err = read(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
	}
	return out, nil
}

// parseBench extracts benchmark results from `go test -bench` output.
// A line looks like:
//
//	BenchmarkFoo/case-8   66007   43721 ns/op   704 B/op   14 allocs/op
func parseBench(out string) []benchResult {
	var results []benchResult
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		res := benchResult{Name: trimProcs(fields[0]), Allocs: -1}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				ok = true
			case "allocs/op":
				res.Allocs = v
			}
		}
		if ok {
			results = append(results, res)
		}
	}
	return results
}

// trimProcs drops the trailing -N GOMAXPROCS suffix from a benchmark
// name so baselines survive runs at different parallelism.
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// refTwin returns the name of a benchmark's pre-optimization reference
// twin: the Ref suffix attaches to the top-level function name, before
// any sub-benchmark path ("BenchmarkFoo/n=4" → "BenchmarkFooRef/n=4").
func refTwin(name string) string {
	fn, rest, cut := strings.Cut(name, "/")
	if strings.HasSuffix(fn, "Ref") {
		return ""
	}
	fn += "Ref"
	if cut {
		return fn + "/" + rest
	}
	return fn
}

// buildBaseline derives the pins from one run: every benchmark that
// reported allocs, and every new/ref pair present together.
func buildBaseline(results map[string]benchResult) baseline {
	b := baseline{Allocs: map[string]float64{}, Ratios: map[string]float64{}}
	for name, res := range results {
		if res.Allocs >= 0 {
			b.Allocs[name] = res.Allocs
		}
		if twin := refTwin(name); twin != "" {
			if ref, ok := results[twin]; ok && ref.NsPerOp > 0 {
				b.Ratios[name] = res.NsPerOp / ref.NsPerOp
			}
		}
	}
	return b
}

// compare returns one message per pin the run regressed beyond tol. A
// pinned benchmark missing from the run is also a failure — silently
// dropping a guarded benchmark is how regressions sneak in. Alloc
// comparisons get one alloc of absolute slack on top of the fractional
// tolerance so zero-pinned paths stay strict while map-heavy paths
// tolerate growth-boundary noise.
func compare(base baseline, results map[string]benchResult, tol float64) []string {
	var msgs []string
	names := make([]string, 0, len(base.Allocs))
	for name := range base.Allocs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.Allocs[name]
		res, ok := results[name]
		if !ok || res.Allocs < 0 {
			msgs = append(msgs, fmt.Sprintf("%s: pinned at %.0f allocs/op but missing from this run", name, want))
			continue
		}
		if res.Allocs > want*(1+tol) && res.Allocs > want+1 {
			msgs = append(msgs, fmt.Sprintf("%s: %.0f allocs/op, baseline %.0f", name, res.Allocs, want))
		}
	}
	names = names[:0]
	for name := range base.Ratios {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.Ratios[name]
		res, ok := results[name]
		ref, rok := results[refTwin(name)]
		if !ok || !rok || ref.NsPerOp <= 0 {
			msgs = append(msgs, fmt.Sprintf("%s: pinned ratio %.3f but the pair is missing from this run", name, want))
			continue
		}
		got := res.NsPerOp / ref.NsPerOp
		if got > want*(1+tol) {
			msgs = append(msgs, fmt.Sprintf("%s: %.3fx of its Ref twin, baseline %.3fx", name, got, want))
		}
	}
	return msgs
}
