// Package moe models the paper's second envisioned future application
// (§5.5): supernet adoption beyond NAS — dynamic slimmable networks and
// mixture-of-experts (MoE) models.
//
// What distinguishes those workloads from NAS supernets is the *routing
// distribution*. SPOS samples candidate layers uniformly; an MoE gate (or
// a dynamic network's input-dependent selector) routes traffic with a
// popularity skew — hot experts are activated by many consecutive steps,
// which densifies the causal dependency graph the CSP scheduler must
// resolve. This package generates such streams deterministically (a
// truncated Zipf over each block's experts, with a per-block deterministic
// popularity ranking) so the pipeline's behaviour under dynamic-model
// routing can be studied with the same engine, trainer, and
// reproducibility checks as NAS workloads.
package moe

import (
	"fmt"
	"math"

	"naspipe/internal/rng"
	"naspipe/internal/supernet"
)

// StreamConfig parameterizes an MoE-style routed subnet stream.
type StreamConfig struct {
	Space supernet.Space
	Seed  uint64
	// Skew is the Zipf exponent of expert popularity: 0 degenerates to
	// SPOS uniform sampling; 1.0 is a typical MoE routing skew; larger
	// values concentrate traffic on few hot experts.
	Skew float64
}

// Validate checks the configuration.
func (c StreamConfig) Validate() error {
	if err := c.Space.Validate(); err != nil {
		return err
	}
	if c.Skew < 0 {
		return fmt.Errorf("moe: negative skew %f", c.Skew)
	}
	return nil
}

// Stream generates n routed steps. Each step activates one expert per
// block, drawn from the block's popularity distribution; the popularity
// *ranking* is itself a deterministic per-block permutation so hot
// experts differ across blocks (as gate initializations do). The stream
// is a pure function of (config, n).
func Stream(c StreamConfig, n int) ([]supernet.Subnet, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	sp := c.Space
	// Per-block cumulative Zipf weights over a deterministic expert
	// ranking.
	cum := make([][]float64, sp.Blocks)
	rank := make([][]int, sp.Blocks)
	for b := 0; b < sp.Blocks; b++ {
		r := rng.Labeled(c.Seed, fmt.Sprintf("moe/rank/%s/%d", sp.Name, b))
		rank[b] = r.Perm(sp.Choices)
		weights := make([]float64, sp.Choices)
		var total float64
		for i := range weights {
			weights[i] = 1 / math.Pow(float64(i+1), c.Skew)
			total += weights[i]
		}
		cum[b] = make([]float64, sp.Choices)
		acc := 0.0
		for i, w := range weights {
			acc += w / total
			cum[b][i] = acc
		}
	}
	route := rng.Labeled(c.Seed, "moe/route/"+sp.Name)
	out := make([]supernet.Subnet, n)
	for i := 0; i < n; i++ {
		choices := make([]int, sp.Blocks)
		for b := 0; b < sp.Blocks; b++ {
			u := route.Float64()
			// Inverse CDF by linear scan: Choices is small enough (<=96)
			// that this stays cheap and branch-predictable.
			idx := len(cum[b]) - 1
			for j, cv := range cum[b] {
				if u < cv {
					idx = j
					break
				}
			}
			choices[b] = rank[b][idx]
		}
		out[i] = supernet.Subnet{Seq: i, Choices: choices}
	}
	return out, nil
}

// DependencyRate measures, over a routed stream, the fraction of
// consecutive step pairs that share at least one expert — the quantity
// that grows with routing skew and stresses the CSP scheduler.
func DependencyRate(subs []supernet.Subnet) float64 {
	if len(subs) < 2 {
		return 0
	}
	dep := 0
	for i := 1; i < len(subs); i++ {
		if supernet.Shares(subs[i-1], subs[i]) {
			dep++
		}
	}
	return float64(dep) / float64(len(subs)-1)
}

// HotExpertLoad returns the activation share of each block-0 expert,
// sorted descending — a diagnostic of the routing skew actually realised.
func HotExpertLoad(c StreamConfig, subs []supernet.Subnet) []float64 {
	counts := make([]int, c.Space.Choices)
	for _, s := range subs {
		counts[s.Choices[0]]++
	}
	loads := make([]float64, len(counts))
	for i, n := range counts {
		loads[i] = float64(n) / float64(len(subs))
	}
	// insertion sort descending (small arrays).
	for i := 1; i < len(loads); i++ {
		for j := i; j > 0 && loads[j] > loads[j-1]; j-- {
			loads[j], loads[j-1] = loads[j-1], loads[j]
		}
	}
	return loads
}
