// Package clicfg is the one place the naspipe CLIs define their shared
// run flags. Every flag parses straight into the canonical
// naspipe.JobSpec, so cmd/naspipe-train, cmd/naspipe-bench, and
// cmd/naspipe-client expose the same knobs with the same names and the
// same semantics — adding the next knob means adding one flag here and
// one field to JobSpec, everywhere at once.
package clicfg

import (
	"flag"
	"time"

	"naspipe"
)

// Defaults seeds the per-command flag defaults that legitimately differ
// between CLIs (the train command defaults to a full paper run, the
// bench smoke to a scaled workload).
type Defaults struct {
	Space   string
	GPUs    int
	Subnets int
	Window  int
}

// Flags binds the shared run flags to a FlagSet. Read the fields after
// Parse; call Spec to assemble the JobSpec they describe.
type Flags struct {
	fs *flag.FlagSet

	// Run identity and shape.
	Space        string
	ScaleBlocks  int
	ScaleChoices int
	Policy       string
	GPUs         int
	Subnets      int
	Seed         uint64
	Window       int
	Jitter       float64

	// Concurrent memory plane.
	CacheFactor float64
	Predictor   bool

	// Fault / checkpoint / supervision planes.
	Faults          string
	Checkpoint      string
	CheckpointEvery int
	Resume          bool
	Supervise       bool
	StallTimeout    time.Duration
	MaxRestarts     int
	ElasticAfter    int

	// Local observability outputs (not part of the JobSpec — they are
	// this process's I/O, not the run's identity).
	TraceOut  string
	EventsOut string
	DebugAddr string
	Progress  time.Duration
}

// Register defines the shared flag set on fs and returns the bound
// Flags. Call before fs.Parse.
func Register(fs *flag.FlagSet, d Defaults) *Flags {
	if d.Space == "" {
		d.Space = "NLP.c1"
	}
	if d.GPUs == 0 {
		d.GPUs = 8
	}
	supDef := naspipe.DefaultSuperviseConfig()
	f := &Flags{fs: fs}
	fs.StringVar(&f.Space, "space", d.Space, "search space (Table 1 name)")
	fs.IntVar(&f.ScaleBlocks, "scale-blocks", 0, "re-geometry the space to this many blocks (with -scale-choices; 0 = the space's own)")
	fs.IntVar(&f.ScaleChoices, "scale-choices", 0, "re-geometry the space to this many choices per block (with -scale-blocks)")
	fs.StringVar(&f.Policy, "policy", "naspipe", "scheduling policy (see naspipe.PolicyNames; the concurrent plane is CSP-only)")
	fs.IntVar(&f.GPUs, "gpus", d.GPUs, "GPU count (pipeline depth)")
	fs.IntVar(&f.Subnets, "subnets", d.Subnets, "subnets to train (0 = command default)")
	fs.Uint64Var(&f.Seed, "seed", 42, "exploration seed")
	fs.IntVar(&f.Window, "window", d.Window, "pipeline admission window (0 = engine default)")
	fs.Float64Var(&f.Jitter, "jitter", 0, "deterministic compute-timing jitter magnitude in [0,1) (concurrent tasks really sleep)")
	fs.Float64Var(&f.CacheFactor, "cachefactor", 3, "concurrent plane: per-stage cache budget as a multiple of the average subnet footprint (0 disables the cache)")
	fs.BoolVar(&f.Predictor, "predictor", false, "concurrent plane: enable the Algorithm 3 context predictor")
	fs.StringVar(&f.Faults, "faults", "", "deterministic fault plan, e.g. \"seed=7,drop=0.1,crashat=2:9:F\" (keys: seed, crash, crashat, wedgeat, drop, delay, dup, fetchfail, maxdelay, backoff, backoffmax, retries)")
	fs.StringVar(&f.Checkpoint, "checkpoint", "", "persist crash-consistent checkpoints to this file (concurrent plane)")
	fs.IntVar(&f.CheckpointEvery, "checkpoint-every", 0, "throttle checkpoint saves to one per N cursor advances (0 = every advance)")
	fs.BoolVar(&f.Resume, "resume", false, "resume from -checkpoint instead of starting fresh")
	fs.BoolVar(&f.Supervise, "supervise", false, "auto-resume crashes and watchdog-diagnosed stalls in-process (requires -checkpoint)")
	fs.DurationVar(&f.StallTimeout, "stall-timeout", supDef.Watchdog.StallAfter, "with -supervise: declare a stall after this long without frontier or task progress")
	fs.IntVar(&f.MaxRestarts, "max-restarts", supDef.MaxRestarts, "with -supervise: retry budget across the whole run")
	fs.IntVar(&f.ElasticAfter, "elastic", 0, "with -supervise: halve the pipeline depth after N consecutive incidents on one stage (0 = off)")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a Chrome trace-event JSON of the run (load in Perfetto / chrome://tracing)")
	fs.StringVar(&f.EventsOut, "events-out", "", "write the raw telemetry stream as JSONL (inspect with naspipe-replay -events)")
	fs.StringVar(&f.DebugAddr, "debug-addr", "", "serve /debug/pprof, /debug/vars and /debug/telemetry on this address for the process lifetime")
	fs.DurationVar(&f.Progress, "progress", 0, "print a live counter line at this interval (e.g. 200ms)")
	return f
}

// set reports whether the user passed the named flag explicitly.
func (f *Flags) set(name string) bool {
	seen := false
	f.fs.Visit(func(fl *flag.Flag) {
		if fl.Name == name {
			seen = true
		}
	})
	return seen
}

// ConcurrentRequested reports whether any flag that only works on the
// concurrent plane was given — the CLIs use it to auto-select the
// executor the way -faults/-checkpoint/-supervise always have.
func (f *Flags) ConcurrentRequested() bool {
	return f.Faults != "" || f.Checkpoint != "" || f.Resume || f.Supervise
}

// Spec assembles the JobSpec the parsed flags describe for the given
// executor ("simulated" or "concurrent"). Validation is left to
// naspipe.FromSpec so every surface reports identical errors.
func (f *Flags) Spec(executor string) naspipe.JobSpec {
	s := naspipe.JobSpec{
		Space:        f.Space,
		ScaleBlocks:  f.ScaleBlocks,
		ScaleChoices: f.ScaleChoices,
		Policy:       f.Policy,
		Executor:     executor,
		GPUs:         f.GPUs,
		Subnets:      f.Subnets,
		Seed:         f.Seed,
		Window:       f.Window,
		Jitter:       f.Jitter,
		Faults:       f.Faults,
		Checkpoint:   f.Checkpoint,
	}
	if f.Jitter > 0 {
		s.JitterSeed = f.Seed
	}
	if f.CheckpointEvery > 0 {
		s.CheckpointEvery = f.CheckpointEvery
	}
	concurrent := executor == "concurrent"
	if concurrent || f.set("cachefactor") || f.set("predictor") {
		cf := f.CacheFactor
		s.CacheFactor = &cf
		s.Predictor = f.Predictor
	}
	if f.Supervise {
		s.Supervise = &naspipe.SuperviseSpec{
			StallTimeout: naspipe.Duration(f.StallTimeout),
			MaxRestarts:  f.MaxRestarts,
			ElasticAfter: f.ElasticAfter,
		}
	} else if f.ElasticAfter > 0 {
		s.Elastic = true
	}
	return s
}
