package trace

import (
	"bytes"
	"strings"
	"testing"

	"naspipe/internal/supernet"
)

func sampleRecord() *Record {
	sp := supernet.NLPc3.Scaled(4, 2)
	var tr Trace
	tr.Append(1.0, sp.ID(0, 1), 0, 0, Read)
	tr.Append(2.0, sp.ID(0, 1), 0, 0, Write)
	return NewRecord(sp, "naspipe", 4, 7, 3, &tr)
}

func TestRecordRoundTrip(t *testing.T) {
	r := sampleRecord()
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SpaceName != r.SpaceName || got.Seed != 7 || got.GPUs != 4 || got.Policy != "naspipe" {
		t.Fatalf("round trip lost identity: %+v", got)
	}
	if !got.Trace().Equal(r.Trace()) {
		t.Fatal("round trip lost events")
	}
	sp := got.Space()
	if sp.Blocks != 4 || sp.Choices != 2 {
		t.Fatalf("space reconstruction: %+v", sp)
	}
	if len(got.Subnets()) != 3 {
		t.Fatal("subnet stream not re-derivable")
	}
}

func TestRecordSubnetsMatchOriginalStream(t *testing.T) {
	r := sampleRecord()
	want := supernet.Sample(r.Space(), r.Seed, r.NumSubnets)
	got := r.Subnets()
	for i := range want {
		for b := range want[i].Choices {
			if want[i].Choices[b] != got[i].Choices[b] {
				t.Fatal("re-derived stream differs")
			}
		}
	}
}

func TestReadRecordRejectsGarbage(t *testing.T) {
	if _, err := ReadRecord(strings.NewReader("{not json")); err == nil {
		t.Fatal("expected decode error")
	}
	// Valid JSON, invalid record: layer out of range.
	bad := `{"space":"x","blocks":2,"choices":2,"num_subnets":1,
	  "events":[{"Layer":99,"Subnet":0}]}`
	if _, err := ReadRecord(strings.NewReader(bad)); err == nil {
		t.Fatal("expected validation error for out-of-range layer")
	}
	bad2 := `{"space":"x","blocks":2,"choices":2,"num_subnets":1,
	  "events":[{"Layer":1,"Subnet":5}]}`
	if _, err := ReadRecord(strings.NewReader(bad2)); err == nil {
		t.Fatal("expected validation error for out-of-range subnet")
	}
	bad3 := `{"space":"x","blocks":0,"choices":2,"num_subnets":1,"events":[]}`
	if _, err := ReadRecord(strings.NewReader(bad3)); err == nil {
		t.Fatal("expected validation error for bad geometry")
	}
}
