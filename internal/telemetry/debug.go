// Debug HTTP endpoint: net/http/pprof profiles, expvar counters, and a
// live telemetry snapshot, behind the cmds' -debug-addr flag.
//
//	naspipe-bench -concurrent -debug-addr localhost:6060 &
//	go tool pprof http://localhost:6060/debug/pprof/profile
//	curl http://localhost:6060/debug/telemetry
package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// debugBus is the bus the expvar callback reads; swapped per ServeDebug
// call so repeated runs in one process publish the live one.
var (
	debugMu  sync.Mutex
	debugBus *Bus
	pubOnce  sync.Once
)

// PublishBus swaps the bus the debug endpoints report on, for callers
// that start the server (ServeDebug) before constructing the run's bus.
func PublishBus(bus *Bus) {
	debugMu.Lock()
	debugBus = bus
	debugMu.Unlock()
}

// ServeDebug starts an HTTP server on addr exposing /debug/pprof/*,
// /debug/vars (expvar, including the "naspipe.telemetry" snapshot), and
// /debug/telemetry (the snapshot alone, as JSON). It returns the bound
// listener address (useful with ":0") and a shutdown function. The server
// runs until shutdown is called; serve errors after shutdown are ignored.
func ServeDebug(addr string, bus *Bus) (string, func(), error) {
	debugMu.Lock()
	debugBus = bus
	debugMu.Unlock()
	pubOnce.Do(func() {
		expvar.Publish("naspipe.telemetry", expvar.Func(func() any {
			debugMu.Lock()
			b := debugBus
			debugMu.Unlock()
			return b.Snapshot()
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		debugMu.Lock()
		b := debugBus
		debugMu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(b.Snapshot())
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
