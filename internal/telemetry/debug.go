// Debug HTTP endpoint: net/http/pprof profiles, expvar counters, and a
// live telemetry snapshot, behind the cmds' -debug-addr flag.
//
//	naspipe-bench -concurrent -debug-addr localhost:6060 &
//	go tool pprof http://localhost:6060/debug/pprof/profile
//	curl http://localhost:6060/debug/telemetry
//
// Snapshot sourcing is per-server: each ServeDebug call (and each
// NewDebugMux) binds its own snapshot source, so two debug servers in
// one process report their own buses — a second ServeDebug call no
// longer repoints the first server's /debug/telemetry. The one
// process-global piece is expvar's "naspipe.telemetry" var (expvar has
// a single process-wide namespace): it reports the PublishBus bus,
// last publish wins.
package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// globalBus backs the legacy late-publish path: CLIs that start the
// debug server before constructing the run's bus call
// ServeDebug(addr, nil) then PublishBus(bus) once it exists. It is also
// what the process-wide expvar var reports.
var (
	debugMu   sync.Mutex
	globalBus *Bus
	pubOnce   sync.Once
)

// PublishBus swaps the process-global bus: the one servers started with
// a nil bus report, and the one expvar's "naspipe.telemetry" reads.
// Servers started with a non-nil bus (or a snapshot func) are unaffected.
func PublishBus(bus *Bus) {
	debugMu.Lock()
	globalBus = bus
	debugMu.Unlock()
}

func globalSnapshot() Snapshot {
	debugMu.Lock()
	b := globalBus
	debugMu.Unlock()
	return b.Snapshot()
}

// NewDebugMux builds the debug mux — /debug/pprof/*, /debug/vars, and
// /debug/telemetry serving snap() as JSON — without binding a listener,
// so a daemon can mount it on its own server. snap is this mux's
// private snapshot source (pass an aggregating closure to report many
// buses at once); nil selects the process-global PublishBus bus.
func NewDebugMux(snap func() Snapshot) *http.ServeMux {
	if snap == nil {
		snap = globalSnapshot
	}
	registerExpvarOnce()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(snap())
	})
	return mux
}

func registerExpvarOnce() {
	pubOnce.Do(func() {
		expvar.Publish("naspipe.telemetry", expvar.Func(func() any {
			return globalSnapshot()
		}))
	})
}

// ServeDebug starts an HTTP server on addr exposing the debug mux. With
// a non-nil bus the server's /debug/telemetry is bound to that bus for
// its lifetime; with a nil bus it follows the process-global PublishBus
// bus. Returns the bound listener address (useful with ":0") and a
// shutdown function. The server runs until shutdown is called; serve
// errors after shutdown are ignored.
func ServeDebug(addr string, bus *Bus) (string, func(), error) {
	var snap func() Snapshot
	if bus != nil {
		snap = bus.Snapshot
	}
	return ServeDebugMux(addr, NewDebugMux(snap))
}

// ServeDebugMux serves a pre-built debug mux on addr — for daemons that
// already constructed one with NewDebugMux and want it on an extra
// listener too. Same return contract as ServeDebug.
func ServeDebugMux(addr string, mux *http.ServeMux) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
