package explore

import (
	"testing"
	"testing/quick"

	"naspipe/internal/data"
	"naspipe/internal/supernet"
	"naspipe/internal/train"
)

func trainedNet(t testing.TB, seed uint64) (train.Config, *supernet.Numeric) {
	t.Helper()
	sp := supernet.NLPc3.Scaled(5, 3)
	cfg := train.Config{Space: sp, Dim: 8, Seed: seed, BatchSize: 2, LR: 0.05, Dataset: data.WNMT}
	res := train.Sequential(cfg, supernet.Sample(sp, seed, 60))
	return cfg, res.Net
}

func TestSearchDeterministic(t *testing.T) {
	cfg, net := trainedNet(t, 1)
	sc := DefaultSearchConfig(9)
	sc.Generations = 10
	a, err := Search(cfg, net, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(cfg, net, sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Score != b.Best.Score || a.Evaluated != b.Evaluated {
		t.Fatal("search not deterministic")
	}
	for i := range a.Best.Subnet.Choices {
		if a.Best.Subnet.Choices[i] != b.Best.Subnet.Choices[i] {
			t.Fatal("best subnet differs across identical searches")
		}
	}
}

func TestSearchImprovesOverRandom(t *testing.T) {
	cfg, net := trainedNet(t, 2)
	sc := DefaultSearchConfig(3)
	sc.Generations = 24
	res, err := Search(cfg, net, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != sc.Generations {
		t.Fatalf("history length %d", len(res.History))
	}
	// Best score is monotone non-decreasing... not guaranteed by
	// regularized evolution (best member can age out), but the final best
	// must be at least the first generation's best.
	if res.History[len(res.History)-1]+1e-9 < res.History[0]-1e-6 {
		t.Logf("note: best aged out (%f -> %f)", res.History[0], res.History[len(res.History)-1])
	}
	if res.Best.Score <= 0 {
		t.Fatal("degenerate best score")
	}
	if res.Evaluated != sc.Population+sc.Generations {
		t.Fatalf("evaluated %d", res.Evaluated)
	}
}

func TestSearchValidatesConfig(t *testing.T) {
	cfg, net := trainedNet(t, 1)
	bad := DefaultSearchConfig(1)
	bad.Population = 1
	if _, err := Search(cfg, net, bad); err == nil {
		t.Fatal("expected config error")
	}
	bad = DefaultSearchConfig(1)
	bad.Tournament = 99
	if _, err := Search(cfg, net, bad); err == nil {
		t.Fatal("expected tournament error")
	}
}

func TestPopulationSortedByScore(t *testing.T) {
	cfg, net := trainedNet(t, 4)
	sc := DefaultSearchConfig(5)
	sc.Generations = 6
	res, err := Search(cfg, net, sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Population); i++ {
		if res.Population[i].Score > res.Population[i-1].Score {
			t.Fatal("population not sorted by score")
		}
	}
	if res.Best.Score != res.Population[0].Score {
		t.Fatal("Best is not the top of the population")
	}
}

// Property: every candidate the search returns is a valid subnet of the
// space.
func TestQuickCandidatesValid(t *testing.T) {
	cfg, net := trainedNet(t, 6)
	f := func(seed uint64) bool {
		sc := DefaultSearchConfig(seed)
		sc.Population = 6
		sc.Generations = 8
		sc.Tournament = 3
		res, err := Search(cfg, net, sc)
		if err != nil {
			return false
		}
		for _, c := range res.Population {
			if len(c.Subnet.Choices) != cfg.Space.Blocks {
				return false
			}
			for _, ch := range c.Subnet.Choices {
				if ch < 0 || ch >= cfg.Space.Choices {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
