package fault

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Checkpoint is the crash-consistent resume state of a concurrent run.
//
// The durability model leans on CSP (Definition 1): weights materialize
// only through the per-layer sequential WRITE order, so the committed
// prefix [0, Cursor) at stage 0 — subnets whose backward has fully
// retired — is exactly the state a sequential run would have after
// Cursor steps. A crash discards the in-flight suffix; resume replays
// from Cursor and lands on bitwise-identical final weights.
//
// Identity fields (Space..JitterSeed) fingerprint the run so a
// checkpoint cannot be resumed against a different workload.
type Checkpoint struct {
	Space       string // search-space name
	Seed        uint64 // exploration seed (subnet stream)
	GPUs        int    // pipeline depth
	NumSubnets  int    // total explore-stream length
	Cursor      int    // committed prefix: subnets [0, Cursor) fully retired
	Incarnation int    // restart epoch; bumped after every injected crash
	// WeightChecksum is the FNV-64 checksum of the supernet weights at
	// Cursor (train.Checksum of the sequential prefix). 0 = not recorded
	// (no training config attached); resume then skips verification.
	WeightChecksum uint64
	FaultSeed      uint64 // fault plan seed active when the snapshot was cut
	JitterSeed     uint64 // compute-jitter seed (part of run identity)
	// Finished holds globally-sequenced subnets at or above Cursor whose
	// stage-0 backward retired out of order (frontier gap); informational
	// for the replay tool — resume re-executes them.
	Finished []int
}

// Binary file format (all little-endian):
//
//	"NPCK" | version u8 | space u16-len + bytes | seed u64 | gpus u32 |
//	numSubnets u32 | cursor u32 | incarnation u32 | weightChecksum u64 |
//	faultSeed u64 | jitterSeed u64 | finished u32-count + u32 entries |
//	fnv64a-of-preceding u64
const (
	ckptMagic   = "NPCK"
	ckptVersion = 1
)

// Encode renders the checkpoint in the versioned binary format.
func (c Checkpoint) Encode() []byte {
	buf := make([]byte, 0, 64+len(c.Space)+4*len(c.Finished))
	buf = append(buf, ckptMagic...)
	buf = append(buf, ckptVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(c.Space)))
	buf = append(buf, c.Space...)
	buf = binary.LittleEndian.AppendUint64(buf, c.Seed)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.GPUs))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.NumSubnets))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Cursor))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Incarnation))
	buf = binary.LittleEndian.AppendUint64(buf, c.WeightChecksum)
	buf = binary.LittleEndian.AppendUint64(buf, c.FaultSeed)
	buf = binary.LittleEndian.AppendUint64(buf, c.JitterSeed)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Finished)))
	for _, s := range c.Finished {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s))
	}
	h := fnv.New64a()
	h.Write(buf)
	return binary.LittleEndian.AppendUint64(buf, h.Sum64())
}

// Decode parses and integrity-checks an encoded checkpoint.
func Decode(buf []byte) (Checkpoint, error) {
	var c Checkpoint
	if len(buf) < len(ckptMagic)+1+2+8 {
		return c, fmt.Errorf("fault: checkpoint truncated (%d bytes)", len(buf))
	}
	if string(buf[:4]) != ckptMagic {
		return c, fmt.Errorf("fault: bad checkpoint magic %q", buf[:4])
	}
	if v := buf[4]; v != ckptVersion {
		return c, fmt.Errorf("fault: unsupported checkpoint version %d (want %d)", v, ckptVersion)
	}
	body, sum := buf[:len(buf)-8], binary.LittleEndian.Uint64(buf[len(buf)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return c, fmt.Errorf("fault: checkpoint integrity checksum mismatch (corrupt or torn write)")
	}
	off := 5
	need := func(n int) error {
		if off+n > len(body) {
			return fmt.Errorf("fault: checkpoint truncated at offset %d", off)
		}
		return nil
	}
	if err := need(2); err != nil {
		return c, err
	}
	nameLen := int(binary.LittleEndian.Uint16(body[off:]))
	off += 2
	if err := need(nameLen + 8 + 4*4 + 8*3 + 4); err != nil {
		return c, err
	}
	c.Space = string(body[off : off+nameLen])
	off += nameLen
	c.Seed = binary.LittleEndian.Uint64(body[off:])
	off += 8
	c.GPUs = int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	c.NumSubnets = int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	c.Cursor = int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	c.Incarnation = int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	c.WeightChecksum = binary.LittleEndian.Uint64(body[off:])
	off += 8
	c.FaultSeed = binary.LittleEndian.Uint64(body[off:])
	off += 8
	c.JitterSeed = binary.LittleEndian.Uint64(body[off:])
	off += 8
	count := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if err := need(4 * count); err != nil {
		return c, err
	}
	if count > 0 {
		c.Finished = make([]int, count)
		for i := range c.Finished {
			c.Finished[i] = int(binary.LittleEndian.Uint32(body[off:]))
			off += 4
		}
	}
	if off != len(body) {
		return c, fmt.Errorf("fault: %d trailing bytes after checkpoint", len(body)-off)
	}
	return c, nil
}

// Save writes the checkpoint atomically: encode to a temp file in the
// destination directory, fsync, then rename over the target. A crash
// mid-save leaves either the old checkpoint or the new one, never a
// torn file (and Decode's trailing checksum catches torn media writes).
func (c Checkpoint) Save(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("fault: checkpoint temp file: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(c.Encode())
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("fault: checkpoint save %s: %w", path, werr)
	}
	return nil
}

// Load reads and validates a checkpoint file.
func Load(path string) (Checkpoint, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("fault: checkpoint load: %w", err)
	}
	return Decode(buf)
}

// Cut is one consistency point the engine offers to its Recorder: the
// stage-0 frontier (global cursor) plus any out-of-order finished seqs
// above it.
type Cut struct {
	Cursor   int
	Finished []int
}

// Recorder receives consistency cuts from the engine as the stage-0
// backward frontier advances. Implementations decide persistence policy
// (throttling, destinations); Snapshot errors abort the run.
type Recorder interface {
	Snapshot(Cut) error
}

// FileRecorder persists cuts to a checkpoint file, throttled to every
// Nth cursor advance (the final cut — cursor == NumSubnets — is always
// written). An optional weight function attaches the sequential-prefix
// weight checksum to each saved snapshot.
type FileRecorder struct {
	mu       sync.Mutex
	path     string
	ckpt     Checkpoint
	every    int
	weightFn func(cursor int) uint64 // nil = no weight checksums
	saves    int
}

// NewFileRecorder builds a recorder writing to path. ident carries the
// run identity (and, on resume, the starting cursor/incarnation); every
// throttles persistence to one save per `every` cursor advances (<=1
// saves every cut); weightFn, when non-nil, supplies the weight
// checksum for a cursor and is invoked only for cuts actually saved.
func NewFileRecorder(path string, ident Checkpoint, every int, weightFn func(int) uint64) *FileRecorder {
	if every < 1 {
		every = 1
	}
	return &FileRecorder{path: path, ckpt: ident, every: every, weightFn: weightFn}
}

// Init persists the recorder's initial state, so a crash before the
// first cut still leaves a resumable file.
func (r *FileRecorder) Init() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.save()
}

// Snapshot implements Recorder: it advances the checkpoint to the cut
// and persists it if due. Cuts that do not advance the cursor are
// ignored (the engine's frontier is monotone; a stale cut is a no-op).
func (r *FileRecorder) Snapshot(cut Cut) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cut.Cursor < r.ckpt.Cursor {
		return nil
	}
	r.ckpt.Cursor = cut.Cursor
	r.ckpt.Finished = append([]int(nil), cut.Finished...)
	sort.Ints(r.ckpt.Finished)
	final := cut.Cursor >= r.ckpt.NumSubnets
	if !final && cut.Cursor%r.every != 0 {
		return nil
	}
	return r.save()
}

// Bump increments the restart incarnation and persists — called after a
// crash so the resumed run rolls a fresh fault schedule.
func (r *FileRecorder) Bump() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ckpt.Incarnation++
	return r.save()
}

// Last returns the most recently persisted checkpoint state.
func (r *FileRecorder) Last() Checkpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.ckpt
	c.Finished = append([]int(nil), c.Finished...)
	return c
}

// Saves reports how many times the recorder hit disk (test hook for the
// throttle).
func (r *FileRecorder) Saves() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.saves
}

// save persists r.ckpt; callers hold r.mu.
func (r *FileRecorder) save() error {
	if r.weightFn != nil {
		r.ckpt.WeightChecksum = r.weightFn(r.ckpt.Cursor)
	}
	if err := r.ckpt.Save(r.path); err != nil {
		return err
	}
	r.saves++
	return nil
}
