// Reproducibility demo (the paper's Definition 1 and Table 3): train the
// same supernet with the same seed on clusters of 1, 2, 4, and 8 GPUs.
// Under NASPipe's CSP schedule the final weights are bitwise identical
// everywhere; under GPipe's BSP they differ per cluster size.
//
//	go run ./examples/reproducibility
package main

import (
	"fmt"
	"log"

	"naspipe"
)

func main() {
	sp := naspipe.NLPc2.Scaled(10, 4)
	const steps = 120
	cfg := naspipe.TrainConfig{Space: sp, Dim: 10, Seed: 3, BatchSize: 3, LR: 0.05}
	subs := naspipe.SampleSubnets(sp, 3, steps)
	gpuCounts := []int{1, 2, 4, 8}

	for _, policy := range []string{"naspipe", "gpipe"} {
		fmt.Printf("--- %s ---\n", policy)
		var first uint64
		allEqual := true
		for i, d := range gpuCounts {
			run, err := naspipe.RunPolicy(naspipe.Config{
				Space: sp, Spec: naspipe.DefaultCluster(d), Seed: 3,
				NumSubnets: steps, RecordTrace: true,
			}, policy)
			if err != nil {
				log.Fatal(err)
			}
			if run.Failed {
				fmt.Printf("%2d GPUs: cannot run (%s)\n", d, run.FailReason)
				allEqual = false
				continue
			}
			trained, err := naspipe.TrainReplay(cfg, subs, run.Trace)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%2d GPUs: final-weight checksum %016x, step-0 loss %.9g\n",
				d, trained.Checksum, trained.Losses[0])
			if i == 0 {
				first = trained.Checksum
			} else if trained.Checksum != first {
				allEqual = false
			}
		}
		if allEqual {
			fmt.Println("=> bitwise identical on every cluster size (reproducible)")
		} else {
			fmt.Println("=> results depend on the cluster size (NOT reproducible)")
		}
		fmt.Println()
	}
}
