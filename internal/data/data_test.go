package data

import (
	"testing"
	"testing/quick"
)

func TestKindByName(t *testing.T) {
	if k, err := KindByName("WNMT"); err != nil || k != WNMT {
		t.Fatalf("WNMT: %v %v", k, err)
	}
	if k, err := KindByName("ImageNet"); err != nil || k != ImageNet {
		t.Fatalf("ImageNet: %v %v", k, err)
	}
	if _, err := KindByName("MNIST"); err == nil {
		t.Fatal("expected error")
	}
}

func TestBatchShape(t *testing.T) {
	for _, kind := range []Kind{WNMT, ImageNet} {
		s := NewSource(kind, 16, 4, 1)
		b := s.Batch(0)
		if len(b.Inputs) != 4 || len(b.Targets) != 4 {
			t.Fatalf("%v: batch size wrong", kind)
		}
		for i := range b.Inputs {
			if len(b.Inputs[i]) != 16 || len(b.Targets[i]) != 16 {
				t.Fatalf("%v: item %d dim wrong", kind, i)
			}
		}
	}
}

func TestBatchDeterministic(t *testing.T) {
	for _, kind := range []Kind{WNMT, ImageNet} {
		a := NewSource(kind, 8, 3, 5).Batch(7)
		b := NewSource(kind, 8, 3, 5).Batch(7)
		for i := range a.Inputs {
			if !a.Inputs[i].EqualBits(b.Inputs[i]) || !a.Targets[i].EqualBits(b.Targets[i]) {
				t.Fatalf("%v: batch not bitwise deterministic", kind)
			}
		}
	}
}

func TestStepsDiffer(t *testing.T) {
	s := NewSource(WNMT, 8, 2, 5)
	a, b := s.Batch(0), s.Batch(1)
	if a.Inputs[0].EqualBits(b.Inputs[0]) {
		t.Fatal("consecutive steps produced identical inputs")
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := NewSource(ImageNet, 8, 2, 1).Batch(0)
	b := NewSource(ImageNet, 8, 2, 2).Batch(0)
	if a.Inputs[0].EqualBits(b.Inputs[0]) {
		t.Fatal("different seeds produced identical inputs")
	}
}

func TestTrainValidationDisjointStreams(t *testing.T) {
	s := NewSource(WNMT, 8, 2, 1)
	tr, va := s.Batch(0), s.ValidationBatch(0)
	if tr.Inputs[0].EqualBits(va.Inputs[0]) {
		t.Fatal("train and validation batch 0 identical")
	}
}

func TestTargetsBounded(t *testing.T) {
	for _, kind := range []Kind{WNMT, ImageNet} {
		s := NewSource(kind, 12, 8, 3)
		for step := 0; step < 5; step++ {
			b := s.Batch(step)
			for _, tgt := range b.Targets {
				for _, v := range tgt {
					if v < -1 || v > 1 {
						t.Fatalf("%v: target %v outside tanh range", kind, v)
					}
				}
			}
		}
	}
}

func TestNewSourcePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSource(WNMT, 0, 1, 1)
}

// Property: batches are pure functions of (kind, dim, batch, seed, step).
func TestQuickBatchPurity(t *testing.T) {
	f := func(seed uint64, stepRaw uint8, kindRaw bool) bool {
		kind := WNMT
		if kindRaw {
			kind = ImageNet
		}
		step := int(stepRaw)
		a := NewSource(kind, 6, 2, seed).Batch(step)
		b := NewSource(kind, 6, 2, seed).Batch(step)
		for i := range a.Inputs {
			if !a.Inputs[i].EqualBits(b.Inputs[i]) || !a.Targets[i].EqualBits(b.Targets[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: all generated values are finite.
func TestQuickFiniteValues(t *testing.T) {
	f := func(seed uint64, stepRaw uint8) bool {
		s := NewSource(WNMT, 8, 2, seed)
		b := s.Batch(int(stepRaw))
		for _, vecs := range [][]([]float32){
			{b.Inputs[0], b.Inputs[1]}, {b.Targets[0], b.Targets[1]},
		} {
			for _, v := range vecs {
				for _, x := range v {
					if x != x || x > 1e6 || x < -1e6 { // NaN or absurd
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
