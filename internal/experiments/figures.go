package experiments

import (
	"context"
	"fmt"

	"naspipe/internal/cluster"
	"naspipe/internal/engine"
	"naspipe/internal/layers"
	"naspipe/internal/metrics"
	"naspipe/internal/supernet"
	"naspipe/internal/train"
)

// Figure1 demonstrates the conceptual comparison of ASP, BSP, and CSP on
// a short ordered subnet list with dense causal dependencies: CSP is the
// only discipline that retains every dependency, at a bubble rate between
// ASP's (none enforced) and a fully serialized execution.
func Figure1(ctx context.Context, o Options) string {
	o = o.withDefaults()
	sp := supernet.NLPc3.Scaled(6, 2) // dense dependencies, like the figure
	oo := o
	oo.Subnets = 5
	tb := metrics.NewTable("Figure 1: ASP vs BSP vs CSP on 5 subnets, 3 stages",
		"Discipline", "System", "Bubble", "Dependencies preserved", "First violation")
	timelines := ""
	for _, policy := range []string{"pipedream", "gpipe", "naspipe"} {
		res := runPerf(ctx, oo, sp, policy, 3, true)
		violation := "-"
		preserved := "yes"
		if v := res.Trace.FirstViolation(); v != nil {
			preserved = "NO"
			violation = fmt.Sprintf("layer %d: %s", v.Layer, v.Detail)
		}
		tb.AddRow(syncName(policy), policyLabel(policy),
			fmt.Sprintf("%.2f", res.BubbleRatio), preserved, violation)
		timelines += fmt.Sprintf("\n%s (%s) pipeline:\n%s", policyLabel(policy), syncName(policy),
			engine.RenderTimeline(res.Spans, 3, 72, res.TotalMs))
	}
	return tb.Render() + timelines
}

// figure4Spaces are the six convergence plots of Figure 4.
var figure4Spaces = []supernet.Space{
	supernet.NLPc1, supernet.NLPc2, supernet.NLPc3,
	supernet.CVc1, supernet.CVc2, supernet.CVc3,
}

// Figure4 reproduces the end-to-end convergence comparison: per space,
// the training-loss trajectory and final validation score of CSP
// (NASPipe) versus BSP (GPipe) and ASP (PipeDream) schedules, all
// executed on the numeric plane.
func Figure4(ctx context.Context, o Options) string {
	o = o.withDefaults()
	spaces := figure4Spaces
	if o.Quick {
		spaces = spaces[:2]
	}
	tb := metrics.NewTable("Figure 4: end-to-end training convergence (numeric plane)",
		"Space", "Sync.", "Loss@25%", "Loss@50%", "Loss@75%", "Final Val Loss", "Score")
	for _, sp := range spaces {
		for _, policy := range []string{"naspipe", "gpipe", "pipedream"} {
			num, err := o.numericRun(ctx, sp, policy, o.GPUs)
			if err != nil {
				tb.AddRow(sp.Name, syncName(policy), "-", "-", "-", "-", "-")
				continue
			}
			n := len(num.Losses)
			at := func(frac float64) string {
				i := int(frac * float64(n))
				if i >= n {
					i = n - 1
				}
				return fmt.Sprintf("%.4f", num.Losses[i])
			}
			cfg := o.numericCfg(sp)
			valLoss := o.probeValLoss(cfg, num.Net)
			tb.AddRow(sp.Name, syncName(policy), at(0.25), at(0.5), at(0.75),
				fmt.Sprintf("%.4f", valLoss), fmt.Sprintf("%.2f", train.Score(sp.Domain, valLoss)))
		}
	}
	tb.AddNote("scores are BLEU-like (NLP) / top-5-like (CV) monotone proxies of validation loss")
	return tb.Render()
}

// Figure5 reproduces the normalized-throughput comparison across all
// seven spaces, with NASPipe's subnets/hour annotated (the red-bar
// values).
func Figure5(ctx context.Context, o Options) string {
	o = o.withDefaults()
	tb := metrics.NewTable("Figure 5: throughput of four systems on seven search spaces (8 GPUs)",
		"Space", "System", "Samples/s", "vs GPipe", "Subnets/hour", "Bubble")
	for _, sp := range supernet.Spaces() {
		gpipe := runPerf(ctx, o, sp, "gpipe", o.GPUs, false)
		for _, policy := range perfSystems {
			res := runPerf(ctx, o, sp, policy, o.GPUs, false)
			if res.Failed {
				tb.AddRow(sp.Name, policyLabel(policy), "-", "-", "-", "(exceeds GPU memory)")
				continue
			}
			rel := "-"
			if !gpipe.Failed && gpipe.SamplesPerSec > 0 {
				rel = metrics.Factor(res.SamplesPerSec / gpipe.SamplesPerSec)
			}
			tb.AddRow(sp.Name, policyLabel(policy),
				fmt.Sprintf("%.0f", res.SamplesPerSec), rel,
				fmt.Sprintf("%.0f", res.SubnetsPerHour),
				fmt.Sprintf("%.2f", res.BubbleRatio))
		}
	}
	tb.AddNote("NASPipe is the only reproducible system in this table; baselines do not enforce causal dependencies")
	return tb.Render()
}

// Figure6 reproduces the component ablation: full NASPipe against the
// w/o-scheduler, w/o-predictor, and w/o-mirroring variants.
func Figure6(ctx context.Context, o Options) string {
	o = o.withDefaults()
	systems := []string{"naspipe", "naspipe-noscheduler", "naspipe-nopredictor", "naspipe-nomirroring"}
	tb := metrics.NewTable("Figure 6: ablation of NASPipe's components (8 GPUs)",
		"Space", "System", "Samples/s", "Batch", "Bubble", "Subnets/hour")
	for _, sp := range supernet.Spaces() {
		for _, policy := range systems {
			res := runPerf(ctx, o, sp, policy, o.GPUs, false)
			if res.Failed {
				tb.AddRow(sp.Name, res.Policy, "-", "-", "-", "(exceeds GPU memory)")
				continue
			}
			tb.AddRow(sp.Name, res.Policy,
				fmt.Sprintf("%.0f", res.SamplesPerSec), res.Batch,
				fmt.Sprintf("%.2f", res.BubbleRatio),
				fmt.Sprintf("%.0f", res.SubnetsPerHour))
		}
	}
	tb.AddNote("w/o predictor keeps the whole supernet in GPU memory (smaller batch); w/o scheduler stalls on the queue head; w/o mirroring uses the static partition")
	return tb.Render()
}

// Figure7 reproduces the scalability study: total ALU utilization of the
// four systems from 4 to 16 GPUs on NLP.c1.
func Figure7(ctx context.Context, o Options) string {
	o = o.withDefaults()
	gpuCounts := []int{4, 8, 12, 16}
	if o.Quick {
		gpuCounts = []int{4, 8}
	}
	var out string
	for _, policy := range perfSystems {
		var s metrics.Series
		s.Name = fmt.Sprintf("Figure 7: total GPU ALU on NLP.c1 — %s", policyLabel(policy))
		for _, d := range gpuCounts {
			oo := o
			oo.Inflight = 6 * d
			res := runPerf(ctx, oo, supernet.NLPc1, policy, d, false)
			if res.Failed {
				s.Add(fmt.Sprintf("%d GPUs", d), 0)
				continue
			}
			s.Add(fmt.Sprintf("%d GPUs", d), res.ALUTotal)
		}
		out += s.Render()
	}
	out += "note: NASPipe scales sub-linearly; causal dependencies raise the bubble ratio as D grows (§5.4)\n"
	return out
}

// FigureCC renders a pipeline timeline of the *concurrent* execution
// plane — real goroutines, wall-clock time — from the telemetry-derived
// spans, alongside its contention and cache tables. Wall-clock timings
// vary run to run, so this figure is dispatchable by name ("figure-cc")
// but deliberately excluded from Names(): AllExperiments' output must
// stay byte-identical across worker counts, and this report cannot be.
func FigureCC(ctx context.Context, o Options) string {
	o = o.withDefaults()
	sp := supernet.NLPc3.Scaled(6, 2)
	res, err := engine.RunConcurrent(ctx, engine.Config{
		Space:         sp,
		Spec:          cluster.Default(3),
		Seed:          o.Seed,
		NumSubnets:    8,
		InflightLimit: o.Inflight,
		RecordTrace:   true,
		ConcurrentMem: engine.MemPlaneConfig{CacheFactor: 3, Predictor: true},
	})
	if err != nil {
		return fmt.Sprintf("figure-cc: ERROR: %v\n", err)
	}
	out := fmt.Sprintf("Figure CC: concurrent CSP executor, %d subnets, %d stages (wall clock — not byte-stable)\n%s",
		res.Completed, res.D,
		engine.RenderTimeline(res.Spans, res.D, 72, res.TotalMs))
	out += metrics.ContentionTable(res.Contention)
	out += metrics.CacheTable(res.CacheStats)
	return out
}

// domainOf resolves the data kind for a space, for reports.
func domainOf(sp supernet.Space) layers.Domain { return sp.Domain }
