// Package tensor implements the small deterministic float32 numeric
// substrate that NASPipe-Go trains on.
//
// The paper's reproducibility definition (Definition 1) demands bitwise
// equality of all layer parameters across repeated runs. Floating-point
// addition is not associative, so bitwise reproducibility requires a fixed
// reduction order. Every reduction over a single output element is a
// strict left-to-right sequential loop; no reassociation, no
// fused-multiply-add intrinsics. The large kernels do fan out across
// goroutines, but only over disjoint tiles of the *output* index space
// with shape-determined split points (see parallel.go), so every output
// element is still produced by the exact sequential accumulation and the
// result is bitwise identical at any worker count. This mirrors the role
// of Nvidia's framework-determinism configuration in the original
// artifact (CUBLAS_WORKSPACE_CONFIG=:4096:8): it makes the *intra-subnet*
// computation deterministic so that the only remaining source of
// nondeterminism is the *inter-subnet* read/write interleaving, which the
// CSP scheduler then controls.
package tensor

import (
	"fmt"
	"math"
	"unsafe"
)

// Vector is a dense float32 vector.
type Vector []float32

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix of the given shape. It panics on
// non-positive dimensions: shapes are static configuration in this system,
// so a bad shape is a programming error, not a runtime condition.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set stores v at (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src's contents into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d vs %dx%d",
			m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero resets all elements of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Equal reports whether m and o have identical shape and bitwise identical
// contents. NaNs with equal bit patterns compare equal: this is a bitwise
// comparison, the reproducibility criterion of Definition 1.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := range m.Data {
		if math.Float32bits(m.Data[i]) != math.Float32bits(o.Data[i]) {
			return false
		}
	}
	return true
}

// slicesOverlap reports whether a and b share any backing memory. Empty
// slices never overlap.
func slicesOverlap(a, b Vector) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	aLo := uintptr(unsafe.Pointer(&a[0]))
	aHi := aLo + uintptr(len(a))*unsafe.Sizeof(a[0])
	bLo := uintptr(unsafe.Pointer(&b[0]))
	bHi := bLo + uintptr(len(b))*unsafe.Sizeof(b[0])
	return aLo < bHi && bLo < aHi
}

// MatVec computes dst = m * x. dst must have length m.Rows and x length
// m.Cols; dst and x must not alias (checked — an aliased call would
// silently corrupt results, so it panics like every shape mismatch does).
func MatVec(dst Vector, m *Matrix, x Vector) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch dst=%d m=%dx%d x=%d",
			len(dst), m.Rows, m.Cols, len(x)))
	}
	if slicesOverlap(dst, x) {
		panic("tensor: MatVec dst aliases x")
	}
	if !useParallel(m.Rows, m.Rows*m.Cols) {
		matVecRange(dst, m, x, 0, m.Rows)
		return
	}
	parallelSpans(m.Rows, func(lo, hi int) {
		matVecRange(dst, m, x, lo, hi)
	})
}

// matVecRange is the sequential MatVec kernel over output rows [lo, hi).
// Each row's dot product accumulates strictly left to right.
func matVecRange(dst Vector, m *Matrix, x Vector, lo, hi int) {
	for r := lo; r < hi; r++ {
		var sum float32
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, v := range row {
			sum += v * x[c]
		}
		dst[r] = sum
	}
}

// MatTVec computes dst = mᵀ * x. dst must have length m.Cols and x length
// m.Rows; dst and x must not alias (checked). The accumulation order per
// output column is fixed (ascending row index) for determinism; the tiles
// split only the column space, so each dst[c] sees the exact sequential
// order regardless of worker count.
func MatTVec(dst Vector, m *Matrix, x Vector) {
	if len(dst) != m.Cols || len(x) != m.Rows {
		panic(fmt.Sprintf("tensor: MatTVec shape mismatch dst=%d m=%dx%d x=%d",
			len(dst), m.Rows, m.Cols, len(x)))
	}
	if slicesOverlap(dst, x) {
		panic("tensor: MatTVec dst aliases x")
	}
	if !useParallel(m.Cols, m.Rows*m.Cols) {
		matTVecCols(dst, m, x, 0, m.Cols)
		return
	}
	parallelSpans(m.Cols, func(lo, hi int) {
		matTVecCols(dst, m, x, lo, hi)
	})
}

// matTVecCols is the sequential MatTVec kernel over output columns
// [lo, hi): zero the span, then accumulate rows in ascending order.
func matTVecCols(dst Vector, m *Matrix, x Vector, lo, hi int) {
	for c := lo; c < hi; c++ {
		dst[c] = 0
	}
	for r := 0; r < m.Rows; r++ {
		xr := x[r]
		row := m.Data[r*m.Cols+lo : r*m.Cols+hi]
		for c, v := range row {
			dst[lo+c] += v * xr
		}
	}
}

// OuterAccum accumulates dst += scale * (a ⊗ b), i.e. dst[r][c] +=
// scale*a[r]*b[c]. Used to accumulate weight gradients.
func OuterAccum(dst *Matrix, a, b Vector, scale float32) {
	if len(a) != dst.Rows || len(b) != dst.Cols {
		panic(fmt.Sprintf("tensor: OuterAccum shape mismatch a=%d b=%d dst=%dx%d",
			len(a), len(b), dst.Rows, dst.Cols))
	}
	if !useParallel(dst.Rows, dst.Rows*dst.Cols) {
		outerAccumRange(dst, a, b, scale, 0, dst.Rows)
		return
	}
	parallelSpans(dst.Rows, func(lo, hi int) {
		outerAccumRange(dst, a, b, scale, lo, hi)
	})
}

// outerAccumRange is the sequential OuterAccum kernel over rows [lo, hi).
func outerAccumRange(dst *Matrix, a, b Vector, scale float32, lo, hi int) {
	for r := lo; r < hi; r++ {
		ar := a[r] * scale
		row := dst.Data[r*dst.Cols : (r+1)*dst.Cols]
		for c := range row {
			row[c] += ar * b[c]
		}
	}
}

// AXPY computes dst += alpha * x elementwise.
func AXPY(dst Vector, alpha float32, x Vector) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("tensor: AXPY length mismatch %d vs %d", len(dst), len(x)))
	}
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

// MatAXPY computes dst += alpha * x for matrices of equal shape.
func MatAXPY(dst *Matrix, alpha float32, x *Matrix) {
	if dst.Rows != x.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("tensor: MatAXPY shape mismatch %dx%d vs %dx%d",
			dst.Rows, dst.Cols, x.Rows, x.Cols))
	}
	for i := range dst.Data {
		dst.Data[i] += alpha * x.Data[i]
	}
}

// Dot returns the sequential dot product of a and b.
func Dot(a, b Vector) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var sum float32
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// SumSquares returns Σ a[i]², accumulated left to right.
func SumSquares(a Vector) float32 {
	var sum float32
	for _, v := range a {
		sum += v * v
	}
	return sum
}

// Tanh applies tanh elementwise into dst (dst may alias x).
func Tanh(dst, x Vector) {
	if len(dst) != len(x) {
		panic("tensor: Tanh length mismatch")
	}
	for i, v := range x {
		dst[i] = float32(math.Tanh(float64(v)))
	}
}

// TanhGrad computes dst = g * (1 - y²) elementwise, where y = tanh(x) is
// the saved activation. dst may alias g or y.
func TanhGrad(dst, g, y Vector) {
	if len(dst) != len(g) || len(dst) != len(y) {
		panic("tensor: TanhGrad length mismatch")
	}
	for i := range dst {
		dst[i] = g[i] * (1 - y[i]*y[i])
	}
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// EqualBits reports bitwise equality of two vectors.
func (v Vector) EqualBits(o Vector) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if math.Float32bits(v[i]) != math.Float32bits(o[i]) {
			return false
		}
	}
	return true
}

// FNV-64a constants, inlined so the checksum loops need no hash.Hash64
// interface calls or staging buffers. The byte stream hashed here is
// identical to the hash/fnv-based implementation these replaced
// (little-endian element bits, 4 bytes each), which the differential
// tests in ref_test.go pin — the golden whole-supernet digests must not
// move by a bit.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvU32 folds 4 little-endian bytes of bits into h.
func fnvU32(h uint64, bits uint32) uint64 {
	h = (h ^ uint64(bits&0xff)) * fnvPrime64
	h = (h ^ uint64((bits>>8)&0xff)) * fnvPrime64
	h = (h ^ uint64((bits>>16)&0xff)) * fnvPrime64
	h = (h ^ uint64((bits>>24)&0xff)) * fnvPrime64
	return h
}

// fnvU64 folds 8 little-endian bytes of bits into h.
func fnvU64(h uint64, bits uint64) uint64 {
	h = fnvU32(h, uint32(bits))
	return fnvU32(h, uint32(bits>>32))
}

// fnvFloats folds the bit patterns of a float32 slice into h.
func fnvFloats(h uint64, data []float32) uint64 {
	for _, f := range data {
		h = fnvU32(h, math.Float32bits(f))
	}
	return h
}

// Checksum returns an FNV-64a hash over the exact bit patterns of the
// elements. Two vectors have equal checksums iff (with overwhelming
// probability) they are bitwise identical; this is the primitive used to
// compare whole-supernet states across runs (Table 3).
func (v Vector) Checksum() uint64 {
	return fnvFloats(fnvOffset64, v)
}

// Checksum returns an FNV-64a hash over the matrix's shape and bit
// patterns.
func (m *Matrix) Checksum() uint64 {
	h := fnvU32(fnvOffset64, uint32(m.Rows))
	h = fnvU32(h, uint32(m.Cols))
	return fnvFloats(h, m.Data)
}

// CombineChecksums folds a sequence of checksums into one, order
// sensitively. Used to derive a single digest for a whole supernet.
func CombineChecksums(sums []uint64) uint64 {
	h := uint64(fnvOffset64)
	for _, s := range sums {
		h = fnvU64(h, s)
	}
	return h
}
