package scenario

import (
	"fmt"
	"path/filepath"

	"naspipe"
)

// CompiledJob is one lowered job: the JobSpec it runs as plus its
// scenario-level arrival offset.
type CompiledJob struct {
	Spec    naspipe.JobSpec
	DelayMs int
}

// Compiled is the scenario lowered onto the existing configuration
// types. MultiJob scenarios run through the service Scheduler; single
// jobs run directly on a Runner.
type Compiled struct {
	Scenario *Scenario
	Jobs     []CompiledJob
	MultiJob bool
}

// defaultTrain is the training plane attached when a scenario declares
// none: every sweep cell verifies bitwise, and verification needs real
// weights. Small on purpose — scenario streams are short.
func defaultTrain() *naspipe.TrainSpec {
	return &naspipe.TrainSpec{Dim: 8, BatchSize: 2, LR: 0.05}
}

// Compile lowers the scenario. ckptDir is where per-job checkpoint
// files land ("" = relative placeholder paths, good enough for
// validation; the runner passes its state dir).
func (s *Scenario) Compile(ckptDir string) (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	jobs, err := s.compileJobsIn(ckptDir)
	if err != nil {
		return nil, err
	}
	return &Compiled{Scenario: s, Jobs: jobs, MultiJob: len(s.Workload.Jobs) > 0}, nil
}

// compileJobs lowers with placeholder checkpoint paths (validation).
func (s *Scenario) compileJobs() ([]CompiledJob, error) {
	return s.compileJobsIn("")
}

func (s *Scenario) compileJobsIn(ckptDir string) ([]CompiledJob, error) {
	base := s.baseSpec()
	if len(s.Workload.Jobs) == 0 {
		base.Checkpoint = filepath.Join(ckptDir, "run.ckpt")
		return []CompiledJob{{Spec: base}}, nil
	}
	jobs := make([]CompiledJob, 0, len(s.Workload.Jobs))
	for i, j := range s.Workload.Jobs {
		spec := base
		spec.Tenant = j.Tenant
		spec.Name = fmt.Sprintf("%s-%d", s.Name, i)
		if j.Name != "" {
			spec.Name = j.Name
		}
		if j.Subnets > 0 {
			spec.Subnets = j.Subnets
		}
		// A zero seed inherits workload.seed + index: sibling jobs
		// explore distinct streams unless the file pins them together.
		spec.Seed = s.Workload.Seed + uint64(i)
		if j.Seed != 0 {
			spec.Seed = j.Seed
		}
		if j.Faults != "" {
			spec.Faults = j.Faults
		}
		spec.Checkpoint = filepath.Join(ckptDir, fmt.Sprintf("job%d.ckpt", i))
		jobs = append(jobs, CompiledJob{Spec: spec, DelayMs: j.DelayMs})
	}
	return jobs, nil
}

// baseSpec lowers the scenario's shared world+workload+storm fields to
// one JobSpec. Every scenario job runs the concurrent executor with
// tracing and verification on: the sweep's whole point is re-proving
// Definition 1 under the declared perturbations.
func (s *Scenario) baseSpec() naspipe.JobSpec {
	on := true
	spec := naspipe.JobSpec{
		APIVersion:   naspipe.JobSpecVersion,
		Name:         s.Name,
		Space:        s.Workload.Space,
		ScaleBlocks:  s.Workload.ScaleBlocks,
		ScaleChoices: s.Workload.ScaleChoices,
		Executor:     "concurrent",
		GPUs:         s.World.GPUs,
		Subnets:      s.Workload.Subnets,
		Seed:         s.Workload.Seed,
		Window:       s.Workload.Window,
		Jitter:       s.World.Jitter,
		JitterSeed:   s.World.JitterSeed,
		StageSpeeds:  s.World.StageSpeeds,
		CacheFactor:  s.Workload.CacheFactor,
		Predictor:    s.Workload.Predictor,
		Train:        s.Workload.Train,
		Trace:        &on,
		Verify:       true,
	}
	if spec.Train == nil {
		spec.Train = defaultTrain()
	}
	if s.Storm != nil {
		spec.Faults = s.Storm.Faults
		spec.Elastic = s.Storm.Elastic
		if s.Storm.Supervise != nil {
			sup := *s.Storm.Supervise
			spec.Supervise = &sup
		}
	}
	return spec
}
