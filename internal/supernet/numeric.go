package supernet

import (
	"fmt"

	"naspipe/internal/layers"
	"naspipe/internal/rng"
	"naspipe/internal/tensor"
)

// Numeric is the trainable instantiation of a (usually scaled-down) space:
// one real layers.Layer per candidate layer. The numeric plane uses it to
// demonstrate bitwise reproducibility — the weights here are the "training
// result" of Definition 1.
type Numeric struct {
	Space Space
	Dim   int
	Layer []*layers.Layer // indexed by LayerID
}

// BuildNumeric instantiates trainable parameters for every candidate layer
// in the space. Initialization derives from (seed, space name, layer ID)
// only, so two runs with equal seeds start from bitwise-equal supernets
// regardless of cluster shape.
func BuildNumeric(space Space, dim int, seed uint64) *Numeric {
	if err := space.Validate(); err != nil {
		panic(err)
	}
	if dim <= 0 {
		panic(fmt.Sprintf("supernet: invalid numeric dim %d", dim))
	}
	kinds := layers.Kinds(space.Domain)
	n := &Numeric{Space: space, Dim: dim, Layer: make([]*layers.Layer, space.NumLayers())}
	for b := 0; b < space.Blocks; b++ {
		for c := 0; c < space.Choices; c++ {
			id := space.ID(b, c)
			kind := kinds[c%len(kinds)]
			r := rng.Labeled(seed, fmt.Sprintf("init/%s/%d", space.Name, int(id)))
			n.Layer[id] = layers.NewLayer(kind, dim, r)
		}
	}
	return n
}

// At returns the trainable layer for (block, choice).
func (n *Numeric) At(block, choice int) *layers.Layer {
	return n.Layer[n.Space.ID(block, choice)]
}

// ByID returns the trainable layer for a dense ID.
func (n *Numeric) ByID(id LayerID) *layers.Layer { return n.Layer[id] }

// Checksum returns a single bitwise digest over every parameter of every
// candidate layer, in layer-ID order. Equal checksums mean bitwise-equal
// supernets (Definition 1's equality test).
func (n *Numeric) Checksum() uint64 {
	sums := make([]uint64, len(n.Layer))
	for i, l := range n.Layer {
		sums[i] = l.Checksum()
	}
	return tensor.CombineChecksums(sums)
}

// Clone deep-copies the numeric supernet (used by replay trainers to keep
// pristine initial states).
func (n *Numeric) Clone() *Numeric {
	out := &Numeric{Space: n.Space, Dim: n.Dim, Layer: make([]*layers.Layer, len(n.Layer))}
	for i, l := range n.Layer {
		out.Layer[i] = l.Clone()
	}
	return out
}
