// Package memctx implements NASPipe's per-stage GPU context manager
// (§3.1, §4.2): the component that keeps only the activated subnets'
// layers in GPU memory, prefetches forecast contexts from pinned CPU
// storage, and evicts finished contexts.
//
// The manager is time-aware but not threaded: the discrete-event engine
// advances a simulated clock (milliseconds) and the manager tracks, per
// layer, when its asynchronous PCIe copy completes. CPU↔GPU copies
// serialize on one PCIe channel per stage, matching the testbed's one
// x16 link per GPU; because CPU storage is pinned (page-locked), copies
// are asynchronous with compute — a stage only stalls when it needs a
// layer whose copy has not finished (a cache miss, or a prefetch issued
// too late).
//
// The cache-hit metric follows the paper exactly: an access counts as a
// hit iff the layer already resides in GPU memory when activated.
package memctx

import (
	"fmt"
	"sort"

	"naspipe/internal/supernet"
)

// Stats aggregates the manager's micro events (paper Table 2 columns
// "Cache Hit", "CPU Mem.", and the swap traffic behind "Exec.").
type Stats struct {
	Hits              int     // layer accesses served from residency
	Misses            int     // layer accesses that had to wait for a copy
	Prefetches        int     // asynchronous fetches issued
	LatePrefetches    int     // accesses that found the copy in flight
	DroppedPrefetches int     // prefetches abandoned: capacity held by locked entries
	SwapInBytes       int64   // CPU->GPU traffic
	SwapOutBytes      int64   // GPU->CPU traffic
	StallMs           float64 // total compute stall waiting on copies
	PeakBytes         int64   // high-water residency
	OverCapacity      int     // forced residency beyond capacity (should stay 0)
	EvictionsForced   int     // LRU evictions triggered by capacity pressure
}

// HitRate returns hits / (hits + misses). With no accesses it returns 0:
// an idle or degenerate stage has earned no hits, and reporting 1.0 would
// inflate aggregate hit-rate cells (Table 2) for stages that never ran.
// Callers that want to distinguish "no accesses" from "all misses" should
// check Hits+Misses themselves (the tables render such cells as N/A).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Accesses returns the total layer accesses counted (hits + misses).
func (s Stats) Accesses() int { return s.Hits + s.Misses }

type entry struct {
	bytes   int64
	readyAt float64 // copy completion time; resident once now >= readyAt
	lastUse float64
	locked  int // lock count: concurrently executing tasks may share a layer
}

// Manager is one stage's GPU memory cache over the supernet's layers.
type Manager struct {
	capacity  int64 // bytes; <0 means unbounded (whole context resident)
	bandwidth float64
	pcieFree  float64 // time the PCIe channel frees up
	used      int64
	entries   map[supernet.LayerID]*entry
	stats     Stats
}

// New returns a manager with the given byte capacity and PCIe bandwidth
// (bytes per millisecond). A negative capacity disables eviction and
// models systems that hold their whole context in GPU memory.
func New(capacity int64, bandwidthBytesPerMs float64) *Manager {
	if bandwidthBytesPerMs <= 0 {
		panic(fmt.Sprintf("memctx: invalid bandwidth %f", bandwidthBytesPerMs))
	}
	return &Manager{
		capacity:  capacity,
		bandwidth: bandwidthBytesPerMs,
		entries:   make(map[supernet.LayerID]*entry),
	}
}

// Stats returns a copy of the accumulated statistics.
func (m *Manager) Stats() Stats { return m.stats }

// Used returns the current resident (plus in-flight) byte count.
func (m *Manager) Used() int64 { return m.used }

// Capacity returns the configured capacity (<0 = unbounded).
func (m *Manager) Capacity() int64 { return m.capacity }

// Resident reports whether the layer is fully resident at the given time.
func (m *Manager) Resident(id supernet.LayerID, now float64) bool {
	e := m.entries[id]
	return e != nil && e.readyAt <= now
}

// Preload marks layers resident immediately without PCIe traffic — the
// initial placement before training starts (or the whole-context placement
// of non-swapping systems).
func (m *Manager) Preload(ids []supernet.LayerID, bytes func(supernet.LayerID) int64) {
	for _, id := range ids {
		if _, ok := m.entries[id]; ok {
			continue
		}
		b := bytes(id)
		m.entries[id] = &entry{bytes: b, readyAt: 0, lastUse: 0}
		m.used += b
	}
	if m.used > m.stats.PeakBytes {
		m.stats.PeakBytes = m.used
	}
}

// Prefetch issues an asynchronous copy of the layer if it is neither
// resident nor in flight. If capacity pressure cannot be relieved by
// evicting unlocked entries, the prefetch is dropped (the paper's
// "delays the operator copy"); the later Acquire will fetch it
// synchronously.
func (m *Manager) Prefetch(id supernet.LayerID, bytes int64, now float64) {
	if _, ok := m.entries[id]; ok {
		return
	}
	if !m.makeRoom(bytes, now) {
		// Delayed: capacity is held by locked entries. Count the drop so
		// the later synchronous miss is attributable to capacity pressure
		// rather than a predictor failure.
		m.stats.DroppedPrefetches++
		return
	}
	start := now
	if m.pcieFree > start {
		start = m.pcieFree
	}
	done := start + float64(bytes)/m.bandwidth
	m.pcieFree = done
	m.entries[id] = &entry{bytes: bytes, readyAt: done, lastUse: now}
	m.used += bytes
	m.stats.Prefetches++
	m.stats.SwapInBytes += bytes
	if m.used > m.stats.PeakBytes {
		m.stats.PeakBytes = m.used
	}
}

// Acquire makes every listed layer resident and locked, counting hits and
// misses, and returns the time at which all copies have completed (>= now).
// The caller must Release the same ids when the task finishes.
func (m *Manager) Acquire(ids []supernet.LayerID, bytes func(supernet.LayerID) int64, now float64) float64 {
	ready := now
	for _, id := range ids {
		e := m.entries[id]
		switch {
		case e != nil && e.readyAt <= now:
			m.stats.Hits++
		case e != nil:
			// In flight: a prefetch was issued but has not completed.
			m.stats.Misses++
			m.stats.LatePrefetches++
			if e.readyAt > ready {
				ready = e.readyAt
			}
		default:
			// Absent: synchronous fetch, serialized on the channel.
			m.stats.Misses++
			b := bytes(id)
			if !m.makeRoom(b, now) {
				m.stats.OverCapacity++
			}
			start := now
			if m.pcieFree > start {
				start = m.pcieFree
			}
			done := start + float64(b)/m.bandwidth
			m.pcieFree = done
			e = &entry{bytes: b, readyAt: done}
			m.entries[id] = e
			m.used += b
			m.stats.SwapInBytes += b
			if done > ready {
				ready = done
			}
		}
		e = m.entries[id]
		e.locked++
		e.lastUse = now
	}
	if m.used > m.stats.PeakBytes {
		m.stats.PeakBytes = m.used
	}
	m.stats.StallMs += ready - now
	return ready
}

// Release unlocks previously acquired layers.
func (m *Manager) Release(ids []supernet.LayerID, now float64) {
	for _, id := range ids {
		if e := m.entries[id]; e != nil && e.locked > 0 {
			e.locked--
			e.lastUse = now
		}
	}
}

// Evict writes the listed layers back to pinned CPU storage and frees
// their GPU residency. Locked layers are skipped. Eviction traffic
// occupies the PCIe channel but never stalls compute directly.
func (m *Manager) Evict(ids []supernet.LayerID, now float64) {
	for _, id := range ids {
		e := m.entries[id]
		if e == nil || e.locked > 0 {
			continue
		}
		m.evictEntry(id, e, now)
	}
}

func (m *Manager) evictEntry(id supernet.LayerID, e *entry, now float64) {
	delete(m.entries, id)
	m.used -= e.bytes
	m.stats.SwapOutBytes += e.bytes
	start := now
	if m.pcieFree > start {
		start = m.pcieFree
	}
	m.pcieFree = start + float64(e.bytes)/m.bandwidth
}

// makeRoom evicts LRU unlocked entries until newBytes fits. Returns false
// if the capacity cannot be reached (everything resident is locked).
// Unbounded managers always report room.
func (m *Manager) makeRoom(newBytes int64, now float64) bool {
	if m.capacity < 0 {
		return true
	}
	if m.used+newBytes <= m.capacity {
		return true
	}
	// Collect unlocked, fully-arrived entries oldest-first. In-flight
	// entries are never evicted (their copy is still occupying the
	// channel).
	type cand struct {
		id supernet.LayerID
		e  *entry
	}
	var cands []cand
	for id, e := range m.entries {
		if e.locked == 0 && e.readyAt <= now {
			cands = append(cands, cand{id, e})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].e.lastUse != cands[j].e.lastUse {
			return cands[i].e.lastUse < cands[j].e.lastUse
		}
		return cands[i].id < cands[j].id
	})
	for _, c := range cands {
		if m.used+newBytes <= m.capacity {
			break
		}
		m.evictEntry(c.id, c.e, now)
		m.stats.EvictionsForced++
	}
	return m.used+newBytes <= m.capacity
}

// ResidentBytesAt returns total bytes resident (arrived) at the time.
func (m *Manager) ResidentBytesAt(now float64) int64 {
	var total int64
	for _, e := range m.entries {
		if e.readyAt <= now {
			total += e.bytes
		}
	}
	return total
}
