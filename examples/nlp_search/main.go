// NLP architecture search: the paper's motivating workload — a
// Transformer-based NAS search space (Evolved Transformer-style, NLP.c1)
// too large for any single GPU. This example trains a scaled-down
// trainable instance of the space under NASPipe's CSP schedule and then
// searches it with regularized evolution, end to end through the public
// API.
//
//	go run ./examples/nlp_search
package main

import (
	"fmt"
	"log"

	"naspipe"
)

func main() {
	// The full NLP.c1 supernet holds ~15B parameters — that is what the
	// performance plane simulates. The numeric plane trains a
	// geometry-scaled instance with real float32 weights.
	full := naspipe.NLPc1
	sp := full.Scaled(12, 9)
	const steps = 240

	fmt.Printf("full space: %s (%d x %d candidates)\n", full.Name, full.Blocks, full.Choices)
	fmt.Printf("numeric instance: %s\n\n", sp.Name)

	// 1. Schedule the subnet stream with CSP on a simulated 8-GPU cluster,
	//    recording the parameter access trace.
	run, err := naspipe.RunPolicy(naspipe.Config{
		Space: sp, Spec: naspipe.DefaultCluster(8), Seed: 7,
		NumSubnets: steps, RecordTrace: true,
	}, "naspipe")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled %d subnets in %.1f simulated s (bubble %.2f, cache hit %.1f%%)\n",
		run.Completed, run.TotalMs/1000, run.BubbleRatio, 100*run.CacheHitRate)

	// 2. Replay the schedule on real weights.
	cfg := naspipe.TrainConfig{Space: sp, Dim: 12, Seed: 7, BatchSize: 4, LR: 0.05}
	subs := naspipe.SampleSubnets(sp, 7, steps)
	trained, err := naspipe.TrainReplay(cfg, subs, run.Trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained supernet checksum: %016x\n", trained.Checksum)
	fmt.Printf("first/last training loss: %.4f -> %.4f\n\n",
		trained.Losses[0], trained.Losses[len(trained.Losses)-1])

	// 3. Evolutionary search over the trained supernet.
	sc := naspipe.DefaultSearch(7)
	sc.Generations = 40
	found, err := naspipe.Search(cfg, trained.Net, sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evolution evaluated %d candidates\n", found.Evaluated)
	fmt.Printf("best architecture: %v\n", found.Best.Subnet.Choices)
	fmt.Printf("best BLEU-proxy score: %.2f (val loss %.4f)\n", found.Best.Score, found.Best.Loss)
	fmt.Println("\nbecause training used CSP, this exact result reproduces on any cluster size.")
}
