package layers

import (
	"math"
	"testing"
	"testing/quick"

	"naspipe/internal/rng"
	"naspipe/internal/tensor"
)

func TestProfileMatchesTable5(t *testing.T) {
	// Spot-check the measured numbers against the paper's Table 5.
	cases := []struct {
		kind             Kind
		fwd, bwd, swapMs float64
	}{
		{Conv3x1, 5.0, 10.0, 1.76},
		{SepConv7x1, 4.2, 5.7, 0.56},
		{LightConv5x1, 0.68, 1.4, 0.03},
		{Attention8Head, 7.9, 13.8, 2.07},
		{Conv3x3, 7.9, 13.8, 4.6},
		{SepConv3x3, 2.8, 4.0, 0.68},
		{SepConv5x5, 6.7, 9.9, 2.04},
		{DilConv3x3, 2.5, 3.4, 0.58},
	}
	for _, c := range cases {
		p := Profile(c.kind)
		if p.FwdMs != c.fwd || p.BwdMs != c.bwd || p.SwapMs != c.swapMs {
			t.Errorf("%v: profile %+v != table5 %+v", c.kind, p, c)
		}
		wantBytes := int64(c.swapMs * PCIeBytesPerMs)
		if p.ParamBytes != wantBytes {
			t.Errorf("%v: ParamBytes %d != %d", c.kind, p.ParamBytes, wantBytes)
		}
	}
}

func TestProfilePanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Profile(Kind(99))
}

func TestKindDomains(t *testing.T) {
	for _, k := range Kinds(NLP) {
		if k.Domain() != NLP {
			t.Errorf("%v reported domain %v", k, k.Domain())
		}
	}
	for _, k := range Kinds(CV) {
		if k.Domain() != CV {
			t.Errorf("%v reported domain %v", k, k.Domain())
		}
	}
	if len(Kinds(NLP)) != 4 || len(Kinds(CV)) != 4 {
		t.Fatal("each domain must expose exactly 4 Table 5 kinds")
	}
}

func TestKindString(t *testing.T) {
	if Conv3x1.String() != "Conv 3x1" {
		t.Fatalf("got %q", Conv3x1.String())
	}
	if Attention8Head.String() != "8 Head Attention" {
		t.Fatalf("got %q", Attention8Head.String())
	}
	if Kind(42).String() != "Kind(42)" {
		t.Fatalf("got %q", Kind(42).String())
	}
}

func TestInputSize(t *testing.T) {
	if InputSize(NLP) != "(192, 1024)" || InputSize(CV) != "(64, 112, 112)" {
		t.Fatal("InputSize must report Table 5 shapes")
	}
}

func TestNewLayerDeterministic(t *testing.T) {
	a := NewLayer(Conv3x1, 8, rng.Labeled(1, "layer-0"))
	b := NewLayer(Conv3x1, 8, rng.Labeled(1, "layer-0"))
	if a.Checksum() != b.Checksum() {
		t.Fatal("same seed produced different layer init")
	}
	c := NewLayer(Conv3x1, 8, rng.Labeled(1, "layer-1"))
	if a.Checksum() == c.Checksum() {
		t.Fatal("different labels produced identical init")
	}
}

func TestForwardBounded(t *testing.T) {
	l := NewLayer(Conv3x3, 8, rng.Labeled(2, "l"))
	x := make(tensor.Vector, 8)
	for i := range x {
		x[i] = 10 // large input: tanh must squash
	}
	y := l.Forward(x)
	for i, v := range y {
		if v < -1 || v > 1 {
			t.Fatalf("output %d = %v outside tanh range", i, v)
		}
	}
}

func TestBackwardGradientCheck(t *testing.T) {
	// Numeric gradient check of dL/dW against the analytic backward, with
	// loss L = 0.5 Σ (y - target)². Uses float64 finite differences on a
	// float32 layer, so the tolerance is loose but meaningful.
	l := NewLayer(SepConv3x3, 5, rng.Labeled(3, "gc"))
	r := rng.Labeled(3, "data")
	x := make(tensor.Vector, 5)
	target := make(tensor.Vector, 5)
	for i := range x {
		x[i] = r.NormFloat32()
		target[i] = r.NormFloat32()
	}
	forwardLoss := func() float64 {
		y := l.Forward(x)
		var loss float64
		for i := range y {
			d := float64(y[i] - target[i])
			loss += 0.5 * d * d
		}
		return loss
	}
	y := l.Forward(x)
	dy := make(tensor.Vector, 5)
	for i := range dy {
		dy[i] = y[i] - target[i]
	}
	g := l.NewGrads()
	l.Backward(x, y, dy, g)

	const eps = 1e-3
	checks := [][2]int{{0, 0}, {1, 3}, {4, 4}, {2, 1}}
	for _, rc := range checks {
		orig := l.W.At(rc[0], rc[1])
		l.W.Set(rc[0], rc[1], orig+eps)
		up := forwardLoss()
		l.W.Set(rc[0], rc[1], orig-eps)
		down := forwardLoss()
		l.W.Set(rc[0], rc[1], orig)
		numeric := (up - down) / (2 * eps)
		analytic := float64(g.W.At(rc[0], rc[1]))
		if math.Abs(numeric-analytic) > 1e-2*(1+math.Abs(analytic)) {
			t.Errorf("dW[%d][%d]: numeric %v analytic %v", rc[0], rc[1], numeric, analytic)
		}
	}
}

func TestApplySGDMovesParams(t *testing.T) {
	l := NewLayer(Conv3x1, 4, rng.Labeled(4, "sgd"))
	before := l.Checksum()
	g := l.NewGrads()
	g.W.Set(0, 0, 1)
	g.B[1] = 1
	l.ApplySGD(g, 0.1)
	if l.Checksum() == before {
		t.Fatal("SGD step did not change parameters")
	}
	// Exact arithmetic: W[0][0] decreased by 0.1, B[1] by 0.1.
	fresh := NewLayer(Conv3x1, 4, rng.Labeled(4, "sgd"))
	if l.W.At(0, 0) != fresh.W.At(0, 0)-0.1 {
		t.Fatalf("W[0][0] = %v want %v", l.W.At(0, 0), fresh.W.At(0, 0)-0.1)
	}
	if l.B[1] != -0.1 {
		t.Fatalf("B[1] = %v want -0.1", l.B[1])
	}
}

func TestCloneIsolation(t *testing.T) {
	l := NewLayer(DilConv3x3, 4, rng.Labeled(5, "clone"))
	c := l.Clone()
	if c.Checksum() != l.Checksum() {
		t.Fatal("clone differs from original")
	}
	g := l.NewGrads()
	g.W.Set(0, 0, 1)
	l.ApplySGD(g, 1)
	if c.Checksum() == l.Checksum() {
		t.Fatal("clone shares storage with original")
	}
}

// Property: a full forward/backward/SGD step is bitwise deterministic as a
// function of (seed, input) — run twice from scratch, compare checksums.
func TestQuickTrainingStepDeterministic(t *testing.T) {
	step := func(seed uint64) uint64 {
		l := NewLayer(Attention8Head, 6, rng.Labeled(seed, "layer"))
		r := rng.Labeled(seed, "x")
		x := make(tensor.Vector, 6)
		for i := range x {
			x[i] = r.NormFloat32()
		}
		y := l.Forward(x)
		dy := y.Clone() // pretend target is zero
		g := l.NewGrads()
		l.Backward(x, y, dy, g)
		l.ApplySGD(g, 0.05)
		return l.Checksum()
	}
	f := func(seed uint64) bool { return step(seed) == step(seed) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: backward's dx is the true adjoint direction — perturbing the
// input along dx must not decrease the loss to first order (dx is the
// gradient of the loss w.r.t. x, so a small step along -dx reduces loss).
func TestQuickInputGradientDescends(t *testing.T) {
	f := func(seed uint64) bool {
		l := NewLayer(SepConv5x5, 5, rng.Labeled(seed, "layer"))
		r := rng.Labeled(seed, "data")
		x := make(tensor.Vector, 5)
		tgt := make(tensor.Vector, 5)
		for i := range x {
			x[i] = r.NormFloat32()
			tgt[i] = r.NormFloat32()
		}
		loss := func(in tensor.Vector) float64 {
			y := l.Forward(in)
			var s float64
			for i := range y {
				d := float64(y[i] - tgt[i])
				s += 0.5 * d * d
			}
			return s
		}
		y := l.Forward(x)
		dy := make(tensor.Vector, 5)
		for i := range dy {
			dy[i] = y[i] - tgt[i]
		}
		g := l.NewGrads()
		dx := l.Backward(x, y, dy, g)
		norm := float64(tensor.SumSquares(dx))
		if norm < 1e-8 {
			return true // at a critical point; nothing to check
		}
		stepped := x.Clone()
		tensor.AXPY(stepped, -1e-3, dx)
		return loss(stepped) <= loss(x)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForward16(b *testing.B) {
	l := NewLayer(Conv3x1, 16, rng.Labeled(1, "bench"))
	x := make(tensor.Vector, 16)
	for i := range x {
		x[i] = 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Forward(x)
	}
}

func TestDimOneLayer(t *testing.T) {
	l := NewLayer(LightConv5x1, 1, rng.Labeled(1, "tiny"))
	y := l.Forward(tensor.Vector{0.5})
	if len(y) != 1 || y[0] < -1 || y[0] > 1 {
		t.Fatalf("dim-1 forward broken: %v", y)
	}
	g := l.NewGrads()
	dx := l.Backward(tensor.Vector{0.5}, y, tensor.Vector{1}, g)
	if len(dx) != 1 {
		t.Fatal("dim-1 backward broken")
	}
	l.ApplySGD(g, 0.1)
}

func TestNewGradsZeroed(t *testing.T) {
	l := NewLayer(Conv3x1, 4, rng.Labeled(2, "z"))
	g := l.NewGrads()
	for _, v := range g.W.Data {
		if v != 0 {
			t.Fatal("fresh grads not zeroed")
		}
	}
	for _, v := range g.B {
		if v != 0 {
			t.Fatal("fresh bias grads not zeroed")
		}
	}
}
