package fault

import "testing"

func TestParsePlanTransportKeysRoundTrip(t *testing.T) {
	spec := "seed=9,linkdrop=0.02,linkdropat=0:1:7,disconnect=1:2:30,partition=0:12"
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", spec, err)
	}
	if p.LinkDropRate != 0.02 {
		t.Errorf("LinkDropRate = %v, want 0.02", p.LinkDropRate)
	}
	if len(p.LinkDrops) != 1 || p.LinkDrops[0] != (LinkEvent{Incarnation: 0, Stage: 1, AfterFrames: 7}) {
		t.Errorf("LinkDrops = %+v", p.LinkDrops)
	}
	if len(p.Disconnects) != 1 || p.Disconnects[0] != (LinkEvent{Incarnation: 1, Stage: 2, AfterFrames: 30}) {
		t.Errorf("Disconnects = %+v", p.Disconnects)
	}
	if len(p.Partitions) != 1 || p.Partitions[0] != (LinkEvent{Incarnation: 0, AfterFrames: 12}) {
		t.Errorf("Partitions = %+v", p.Partitions)
	}
	// String must re-parse to the identical plan.
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if p.String() != p2.String() {
		t.Errorf("round trip diverged:\n  first  %s\n  second %s", p, p2)
	}
	if !p.TransportEnabled() || !p.Enabled() {
		t.Error("transport-fault plan must report Enabled and TransportEnabled")
	}
}

func TestParsePlanTransportShortForms(t *testing.T) {
	p, err := ParsePlan("disconnect=2:30,partition=12,linkdropat=1:7")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.Disconnects[0] != (LinkEvent{Stage: 2, AfterFrames: 30}) {
		t.Errorf("short disconnect = %+v", p.Disconnects[0])
	}
	if p.Partitions[0] != (LinkEvent{AfterFrames: 12}) {
		t.Errorf("short partition = %+v", p.Partitions[0])
	}
	if p.LinkDrops[0] != (LinkEvent{Stage: 1, AfterFrames: 7}) {
		t.Errorf("short linkdropat = %+v", p.LinkDrops[0])
	}
	for _, bad := range []string{
		"disconnect=1", "disconnect=1:2:3:4", "partition=1:2:3",
		"linkdropat=x:1", "linkdrop=1.5", "disconnect=-1:2",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted a malformed transport fault", bad)
		}
	}
}

func TestInjectorFrameDropAndLinkCut(t *testing.T) {
	p, err := ParsePlan("seed=5,linkdropat=0:1:7,disconnect=0:2:30,partition=1:12")
	if err != nil {
		t.Fatal(err)
	}
	inj0, _ := NewInjector(*p, 0)
	inj1, _ := NewInjector(*p, 1)

	if !inj0.FrameDrop(1, 7) {
		t.Error("targeted linkdropat 0:1:7 did not fire at (stage 1, frame 7, inc 0)")
	}
	if inj0.FrameDrop(1, 8) || inj0.FrameDrop(0, 7) || inj1.FrameDrop(1, 7) {
		t.Error("targeted frame drop fired off-site")
	}
	if !inj0.LinkCut(2, 30) {
		t.Error("disconnect 0:2:30 did not cut (stage 2, sent 30, inc 0)")
	}
	if inj0.LinkCut(2, 31) || inj0.LinkCut(1, 30) || inj1.LinkCut(2, 30) {
		t.Error("disconnect fired off-site")
	}
	// The partition cuts every stage's link at its own frame count, in
	// its pinned incarnation only.
	for stage := 0; stage < 4; stage++ {
		if !inj1.LinkCut(stage, 12) {
			t.Errorf("partition 1:12 did not cut stage %d", stage)
		}
		if inj0.LinkCut(stage, 12) {
			t.Errorf("partition fired in wrong incarnation on stage %d", stage)
		}
	}

	// Rate-based frame drops: deterministic per site, and plausible rate.
	rp, _ := ParsePlan("seed=5,linkdrop=0.5")
	ri, _ := NewInjector(*rp, 0)
	drops := 0
	for i := uint64(0); i < 1000; i++ {
		if ri.FrameDrop(1, i) {
			drops++
		}
		if ri.FrameDrop(1, i) != ri.FrameDrop(1, i) {
			t.Fatal("FrameDrop not deterministic")
		}
	}
	if drops < 400 || drops > 600 {
		t.Errorf("linkdrop=0.5 dropped %d/1000 frames", drops)
	}
}
