package transport

import (
	"encoding/binary"
	"math"

	"naspipe/internal/csp"
	"naspipe/internal/fault"
	"naspipe/internal/supernet"
	"naspipe/internal/trace"
)

// Payload codecs: fixed-width big-endian fields, length-prefixed
// repeats, no reflection. Every Decode* returns a *DecodeError on
// malformed input (including trailing garbage) and never panics —
// the payloads share the frame codec's fuzz contract.

type pr struct {
	b   []byte
	off int
	err error
}

func (r *pr) need(n int) bool {
	if r.err != nil {
		return false
	}
	if len(r.b)-r.off < n {
		r.err = decodeErrf(r.off, "payload truncated: need %d bytes, have %d", n, len(r.b)-r.off)
		return false
	}
	return true
}

func (r *pr) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *pr) i64() int64 { return int64(r.u64()) }

// intv decodes an int64 that must fit the host int.
func (r *pr) intv() int { return int(r.i64()) }

func (r *pr) u8() byte {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *pr) bool() bool { return r.u8() != 0 }

// count decodes a repeat count and sanity-bounds it by the bytes that
// remain, so a corrupt length cannot drive a huge allocation.
func (r *pr) count(elemBytes int) int {
	n := r.i64()
	if r.err != nil {
		return 0
	}
	if n < 0 || elemBytes > 0 && n > int64(len(r.b)-r.off)/int64(elemBytes) {
		r.err = decodeErrf(r.off-8, "repeat count %d does not fit the remaining %d bytes", n, len(r.b)-r.off)
		return 0
	}
	return int(n)
}

func (r *pr) bytes() []byte {
	n := r.count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	v := append([]byte(nil), r.b[r.off:r.off+n]...)
	r.off += n
	return v
}

func (r *pr) str() string { return string(r.bytes()) }

// done finishes a decode: any unconsumed suffix is corruption.
func (r *pr) done() error {
	if r.err == nil && r.off != len(r.b) {
		r.err = decodeErrf(r.off, "payload has %d trailing bytes", len(r.b)-r.off)
	}
	return r.err
}

func appendI64(b []byte, v int64) []byte { return binary.BigEndian.AppendUint64(b, uint64(v)) }
func appendInt(b []byte, v int) []byte   { return appendI64(b, int64(v)) }
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}
func appendBytes(b, v []byte) []byte      { return append(appendInt(b, len(v)), v...) }
func appendStr(b []byte, s string) []byte { return appendBytes(b, []byte(s)) }

// Hello identifies a worker on a fresh connection: which run it belongs
// to, which (primary) stage it serves, and which incarnation launched
// it. The coordinator refuses helloes from stale incarnations — a
// zombie from before a fleet restart cannot rejoin.
type Hello struct {
	RunID       string
	Stage       int
	Incarnation int
}

func (h Hello) Encode() []byte {
	b := appendStr(nil, h.RunID)
	b = appendInt(b, h.Stage)
	return appendInt(b, h.Incarnation)
}

func DecodeHello(b []byte) (Hello, error) {
	r := &pr{b: b}
	h := Hello{RunID: r.str(), Stage: r.intv(), Incarnation: r.intv()}
	return h, r.done()
}

// Assign is the coordinator's stage assignment: the job spec (JSON, the
// versioned JobSpec the service API already speaks), the stage this
// worker owns, the pipeline depth, and the resume point — the committed
// checkpoint cursor the suffix run renumbers from (SeqBase) plus the
// incarnation whose fault schedule it replays.
type Assign struct {
	Stage       int
	D           int
	Cursor      int
	Incarnation int
	Spec        []byte
}

func (a Assign) Encode() []byte {
	b := appendInt(nil, a.Stage)
	b = appendInt(b, a.D)
	b = appendInt(b, a.Cursor)
	b = appendInt(b, a.Incarnation)
	return appendBytes(b, a.Spec)
}

func DecodeAssign(b []byte) (Assign, error) {
	r := &pr{b: b}
	a := Assign{Stage: r.intv(), D: r.intv(), Cursor: r.intv(), Incarnation: r.intv(), Spec: r.bytes()}
	return a, r.done()
}

// Task is the payload of FrameFwd and FrameBwd: the subnet sequence
// being handed to the peer stage, plus — backwards only — the carried
// releases (Algorithm 2's L_blocked hand-off) that travel with the
// gradient.
type Task struct {
	Seq     int
	Carried []csp.PendingBackward
}

func (t Task) Encode() []byte {
	b := appendInt(nil, t.Seq)
	b = appendInt(b, len(t.Carried))
	for _, c := range t.Carried {
		b = appendInt(b, c.Seq)
		b = appendInt(b, c.Precedence)
	}
	return b
}

func DecodeTask(b []byte) (Task, error) {
	r := &pr{b: b}
	t := Task{Seq: r.intv()}
	if n := r.count(16); n > 0 {
		t.Carried = make([]csp.PendingBackward, n)
		for i := range t.Carried {
			t.Carried[i] = csp.PendingBackward{Seq: r.intv(), Precedence: r.intv()}
		}
	}
	return t, r.done()
}

// Note is a completion-note broadcast: the subnet whose pass finished,
// the layers it touched, and whether the subnet is fully done.
type Note struct {
	Seq      int
	Finished bool
	IDs      []supernet.LayerID
}

func (n Note) Encode() []byte {
	b := appendInt(nil, n.Seq)
	b = appendBool(b, n.Finished)
	b = appendInt(b, len(n.IDs))
	for _, id := range n.IDs {
		b = appendInt(b, int(id))
	}
	return b
}

func DecodeNote(b []byte) (Note, error) {
	r := &pr{b: b}
	n := Note{Seq: r.intv(), Finished: r.bool()}
	if c := r.count(8); c > 0 {
		n.IDs = make([]supernet.LayerID, c)
		for i := range n.IDs {
			n.IDs[i] = supernet.LayerID(r.intv())
		}
	}
	return n, r.done()
}

// EncodeCut / DecodeCut carry a stage-0 consistency cut (the engine's
// fault.Cut) to the coordinator's checkpoint recorder.
func EncodeCut(c fault.Cut) []byte {
	b := appendInt(nil, c.Cursor)
	b = appendInt(b, len(c.Finished))
	for _, s := range c.Finished {
		b = appendInt(b, s)
	}
	return b
}

func DecodeCut(b []byte) (fault.Cut, error) {
	r := &pr{b: b}
	c := fault.Cut{Cursor: r.intv()}
	if n := r.count(8); n > 0 {
		c.Finished = make([]int, n)
		for i := range c.Finished {
			c.Finished[i] = r.intv()
		}
	}
	return c, r.done()
}

// Heartbeat is the worker's timer-driven liveness beacon: its stage,
// the committed frontier it has observed, and tasks completed so far.
// The coordinator feeds these into the run probe and declares a worker
// dead when its beacons stop arriving before the deadline.
type Heartbeat struct {
	Stage    int
	Frontier int
	Tasks    int64
}

func (h Heartbeat) Encode() []byte {
	b := appendInt(nil, h.Stage)
	b = appendInt(b, h.Frontier)
	return appendI64(b, h.Tasks)
}

func DecodeHeartbeat(b []byte) (Heartbeat, error) {
	r := &pr{b: b}
	h := Heartbeat{Stage: r.intv(), Frontier: r.intv(), Tasks: r.i64()}
	return h, r.done()
}

// Done reports a worker's clean finish: how many subnets completed on
// stage 0 (zero elsewhere) and the stage-local parameter-access trace,
// which the coordinator k-way-merges into the global observed trace for
// end-to-end verification against the sequential reference.
type Done struct {
	Stage     int
	Completed int
	Trace     []trace.Event
}

func (d Done) Encode() []byte {
	b := appendInt(nil, d.Stage)
	b = appendInt(b, d.Completed)
	b = appendInt(b, len(d.Trace))
	for _, ev := range d.Trace {
		b = appendInt(b, ev.Order)
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(ev.TimeMs))
		b = appendInt(b, int(ev.Layer))
		b = appendInt(b, ev.Subnet)
		b = appendInt(b, ev.Stage)
		b = appendInt(b, int(ev.Kind))
	}
	return b
}

func DecodeDone(b []byte) (Done, error) {
	r := &pr{b: b}
	d := Done{Stage: r.intv(), Completed: r.intv()}
	if n := r.count(48); n > 0 {
		d.Trace = make([]trace.Event, n)
		for i := range d.Trace {
			d.Trace[i] = trace.Event{
				Order:  r.intv(),
				TimeMs: math.Float64frombits(r.u64()),
				Layer:  supernet.LayerID(r.intv()),
				Subnet: r.intv(),
				Stage:  r.intv(),
				Kind:   trace.AccessKind(r.intv()),
			}
		}
	}
	return d, r.done()
}

// Failed reports a worker's terminal error with the structured crash
// fields the supervision plane classifies on (mirrors fault.CrashError).
type Failed struct {
	Stage       int
	Seq         int
	Incarnation int
	Kind        string
	Msg         string
}

func (f Failed) Encode() []byte {
	b := appendInt(nil, f.Stage)
	b = appendInt(b, f.Seq)
	b = appendInt(b, f.Incarnation)
	b = appendStr(b, f.Kind)
	return appendStr(b, f.Msg)
}

func DecodeFailed(b []byte) (Failed, error) {
	r := &pr{b: b}
	f := Failed{Stage: r.intv(), Seq: r.intv(), Incarnation: r.intv(), Kind: r.str(), Msg: r.str()}
	return f, r.done()
}

// Abort tells workers to tear the incarnation down (fleet restart or
// operator stop). The reason is for the worker's log line only.
type Abort struct {
	Reason string
}

func (a Abort) Encode() []byte { return appendStr(nil, a.Reason) }

func DecodeAbort(b []byte) (Abort, error) {
	r := &pr{b: b}
	a := Abort{Reason: r.str()}
	return a, r.done()
}
