// Command naspipe-client is the thin CLI for a running naspiped: it
// submits JobSpecs and drives the versioned /v1/jobs API.
//
// Usage:
//
//	naspipe-client [-addr http://localhost:7419] <subcommand> [flags]
//
// Subcommands:
//
//	version                         server API version probe
//	submit [run flags]              submit a job (same flags as naspipe-train)
//	submit -spec job.json           submit a JobSpec file verbatim
//	list [-tenant t]                list jobs in submission order
//	status <job-id>                 one job's status + effective spec
//	events <job-id> [-follow]       stream the job's telemetry JSONL
//	cancel <job-id>                 cancel (idempotent on finished jobs)
//	resume <job-id>                 continue a canceled/interrupted job
//	checkpoint <job-id> -o f.ckpt   fetch the job's checkpoint file
//	wait <job-id>                   block until the job finishes
//	top [-interval 2s] [-n N]       live per-tenant/per-job view from
//	                                /metrics + the job list
//
// The submit run flags are the shared set from internal/clicfg — the
// exact flags naspipe-train and naspipe-bench take — plus -tenant,
// -name, -executor, and -verify/-train-* for the service's bitwise
// verification. Exit codes follow the naspipe contract; wait (and
// submit -wait) exits with the job's own mapped code (0 done, 1
// failed, 3 resumable).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"naspipe"
	"naspipe/internal/clicfg"
	"naspipe/internal/service"
)

func main() {
	os.Exit(int(run()))
}

func run() naspipe.ExitCode {
	var (
		addr = flag.String("addr", "http://localhost:7419", "naspiped base URL")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: naspipe-client [-addr url] <version|submit|list|status|events|cancel|resume|checkpoint|wait|top> [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		return naspipe.ExitUsage
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c := service.NewClient(*addr)
	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "version":
		v, err := c.Version(ctx)
		if err != nil {
			return fail(err)
		}
		fmt.Printf("server API %s (supported: %v)\n", v.Version, v.Supported)
		return naspipe.ExitOK
	case "submit":
		return submit(ctx, c, args)
	case "list":
		return list(ctx, c, args)
	case "status":
		return status(ctx, c, args)
	case "events":
		return events(ctx, c, args)
	case "cancel":
		return verb(ctx, c, args, "cancel", c.Cancel)
	case "resume":
		return verb(ctx, c, args, "resume", c.Resume)
	case "checkpoint":
		return checkpoint(ctx, c, args)
	case "wait":
		return wait(ctx, c, args)
	case "top":
		return top(ctx, c, args)
	default:
		fmt.Fprintf(os.Stderr, "naspipe-client: unknown subcommand %q\n", cmd)
		flag.Usage()
		return naspipe.ExitUsage
	}
}

// fail prints an error and maps it to the exit contract: API usage
// errors (bad spec, unknown job, version mismatch) are usage; the rest
// are failures.
func fail(err error) naspipe.ExitCode {
	fmt.Fprintln(os.Stderr, err)
	var ae *service.APIError
	if errors.As(err, &ae) {
		switch ae.Code {
		case service.CodeInvalidSpec, service.CodeNotFound, service.CodeUnsupportedVersion:
			return naspipe.ExitUsage
		}
	}
	return naspipe.ExitFailure
}

func submit(ctx context.Context, c *service.Client, args []string) naspipe.ExitCode {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	f := clicfg.Register(fs, clicfg.Defaults{Space: "NLP.c3", GPUs: 4, Subnets: 48})
	var (
		specFile   = fs.String("spec", "", "submit this JobSpec JSON file verbatim (other run flags ignored)")
		tenant     = fs.String("tenant", "", "tenant the job is accounted to")
		name       = fs.String("name", "", "free-form job label")
		executor   = fs.String("executor", "concurrent", "execution plane: concurrent (supervised, resumable) or simulated")
		verify     = fs.Bool("verify", false, "after completion, verify the weights bitwise against the sequential reference (attaches the numeric training plane)")
		trainDim   = fs.Int("train-dim", 8, "with -verify: numeric model dimension")
		trainBatch = fs.Int("train-batch", 2, "with -verify: items per subnet step")
		trainLR    = fs.Float64("train-lr", 0.05, "with -verify: SGD learning rate")
		doWait     = fs.Bool("wait", false, "block until the job finishes; exit with its mapped code")
	)
	_ = fs.Parse(args)
	var spec naspipe.JobSpec
	if *specFile != "" {
		buf, err := os.ReadFile(*specFile)
		if err != nil {
			return fail(err)
		}
		if err := json.Unmarshal(buf, &spec); err != nil {
			return fail(fmt.Errorf("naspipe-client: %s: %w", *specFile, err))
		}
	} else {
		spec = f.Spec(*executor)
		if spec.Subnets == 0 {
			spec.Subnets = 48
		}
		if *verify {
			spec.Verify = true
			spec.Train = &naspipe.TrainSpec{Dim: *trainDim, BatchSize: *trainBatch, LR: *trainLR}
		}
	}
	if *tenant != "" {
		spec.Tenant = *tenant
	}
	if *name != "" {
		spec.Name = *name
	}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return fail(err)
	}
	printStatus(st)
	if !*doWait {
		return naspipe.ExitOK
	}
	final, err := c.Wait(ctx, st.ID, 200*time.Millisecond)
	if err != nil {
		return fail(err)
	}
	printStatus(final)
	return naspipe.ExitCode(final.ExitCode)
}

func list(ctx context.Context, c *service.Client, args []string) naspipe.ExitCode {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	tenant := fs.String("tenant", "", "filter to one tenant")
	_ = fs.Parse(args)
	jobs, err := c.List(ctx, *tenant)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("%-8s %-10s %-12s %-11s %9s %8s %s\n", "ID", "TENANT", "STATE", "HEALTH", "CURSOR", "RESTARTS", "DETAIL")
	for _, j := range jobs {
		fmt.Printf("%-8s %-10s %-12s %-11s %4d/%-4d %8d %s\n",
			j.ID, orDefault(j.Tenant), j.State, j.Health, j.Cursor, j.Total, j.Restarts, clip(j.Detail, 60))
	}
	return naspipe.ExitOK
}

func status(ctx context.Context, c *service.Client, args []string) naspipe.ExitCode {
	id, code := oneID(args, "status")
	if code != naspipe.ExitOK {
		return code
	}
	st, err := c.Get(ctx, id)
	if err != nil {
		return fail(err)
	}
	printStatus(st)
	return naspipe.ExitOK
}

func events(ctx context.Context, c *service.Client, args []string) naspipe.ExitCode {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	follow := fs.Bool("follow", false, "stream until the job reaches a terminal state")
	_ = fs.Parse(args)
	id, code := oneID(fs.Args(), "events")
	if code != naspipe.ExitOK {
		return code
	}
	body, err := c.Events(ctx, id, *follow)
	if err != nil {
		return fail(err)
	}
	defer body.Close()
	if _, err := io.Copy(os.Stdout, body); err != nil && ctx.Err() == nil {
		return fail(err)
	}
	return naspipe.ExitOK
}

// verb runs a status-returning POST action (cancel, resume).
func verb(ctx context.Context, c *service.Client, args []string, what string,
	do func(context.Context, string) (service.JobStatus, error)) naspipe.ExitCode {
	id, code := oneID(args, what)
	if code != naspipe.ExitOK {
		return code
	}
	st, err := do(ctx, id)
	if err != nil {
		return fail(err)
	}
	printStatus(st)
	return naspipe.ExitOK
}

func checkpoint(ctx context.Context, c *service.Client, args []string) naspipe.ExitCode {
	fs := flag.NewFlagSet("checkpoint", flag.ExitOnError)
	out := fs.String("o", "", "write the checkpoint to this file (default: stdout)")
	_ = fs.Parse(args)
	id, code := oneID(fs.Args(), "checkpoint")
	if code != naspipe.ExitOK {
		return code
	}
	buf, err := c.Checkpoint(ctx, id)
	if err != nil {
		return fail(err)
	}
	if *out == "" {
		_, _ = os.Stdout.Write(buf)
		return naspipe.ExitOK
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return fail(err)
	}
	fmt.Printf("wrote %d bytes to %s\n", len(buf), *out)
	return naspipe.ExitOK
}

func wait(ctx context.Context, c *service.Client, args []string) naspipe.ExitCode {
	id, code := oneID(args, "wait")
	if code != naspipe.ExitOK {
		return code
	}
	st, err := c.Wait(ctx, id, 200*time.Millisecond)
	if err != nil {
		return fail(err)
	}
	printStatus(st)
	return naspipe.ExitCode(st.ExitCode)
}

func oneID(args []string, what string) (string, naspipe.ExitCode) {
	if len(args) != 1 {
		fmt.Fprintf(os.Stderr, "naspipe-client: %s takes exactly one job ID\n", what)
		return "", naspipe.ExitUsage
	}
	return args[0], naspipe.ExitOK
}

func printStatus(st service.JobStatus) {
	fmt.Printf("job %s (tenant %s): %s", st.ID, orDefault(st.Tenant), st.State)
	if st.Health != "" && string(st.State) != st.Health {
		fmt.Printf(" [health %s]", st.Health)
	}
	fmt.Printf(", cursor %d/%d, D=%d, restarts %d", st.Cursor, st.Total, st.GPUs, st.Restarts)
	if st.WatchdogFires > 0 {
		fmt.Printf(", %d watchdog fires", st.WatchdogFires)
	}
	if st.Verified {
		fmt.Printf(", verified %s", st.Checksum)
	}
	if st.Resumable {
		fmt.Print(", resumable")
	}
	if st.ExitCode >= 0 {
		fmt.Printf(", exit %d (%s)", st.ExitCode, st.ExitName)
	}
	fmt.Println()
	if st.Detail != "" {
		fmt.Printf("  %s\n", st.Detail)
	}
}

func orDefault(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
