package engine_test

import (
	"context"
	"testing"

	"naspipe/internal/engine"
	"naspipe/internal/sched"
	"naspipe/internal/supernet"
)

func mustPolicy(t *testing.T, name string) engine.Policy {
	t.Helper()
	p, err := sched.New(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestStageSpeedsSimulatedTraceInvariant pins the scenario plane's
// heterogeneous-cluster guarantee on the simulated executor: a straggler
// stage stretches the wall-clock timeline (and may reorder independent
// layers globally) but leaves the CSP per-layer access order — and
// therefore the training result — untouched.
func TestStageSpeedsSimulatedTraceInvariant(t *testing.T) {
	base := smallCfg(supernet.NLPc3, 4, 20)
	base.RecordTrace = true
	even := run(t, "naspipe", base)

	slow := base
	slow.StageSpeeds = []float64{1, 4, 1, 1}
	straggled := run(t, "naspipe", slow)

	if !even.Trace.PerLayerEqual(straggled.Trace) {
		t.Fatal("straggler stage changed the per-layer CSP access order")
	}
	if straggled.TotalMs <= even.TotalMs {
		t.Fatalf("4x straggler did not slow the simulated timeline: %v <= %v",
			straggled.TotalMs, even.TotalMs)
	}
}

// TestStageSpeedsConcurrentTraceInvariant runs the concurrent executor
// on a skewed cluster (one straggler stage, jitter on top) and checks
// the run still emits the sequential reference trace bitwise.
func TestStageSpeedsConcurrentTraceInvariant(t *testing.T) {
	cfg := ccCfg(4, true)
	cfg.StageSpeeds = []float64{1, 3, 1, 2}
	seq := run(t, "sequential", cfg)
	cc, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatalf("concurrent run: %v", err)
	}
	if cc.Completed != cfg.NumSubnets {
		t.Fatalf("completed %d/%d", cc.Completed, cfg.NumSubnets)
	}
	if !cc.Trace.Equal(seq.Trace) {
		t.Fatal("concurrent trace on a heterogeneous cluster diverged from the sequential reference")
	}
}

// TestStageSpeedsValidation: both planes reject non-positive speed
// factors; entries beyond the pipeline depth are tolerated (elastic
// resumes run at reduced depth with the original speed list).
func TestStageSpeedsValidation(t *testing.T) {
	cfg := smallCfg(supernet.NLPc3, 2, 8)
	cfg.StageSpeeds = []float64{1, 0}
	if _, err := engine.RunContext(context.Background(), cfg, mustPolicy(t, "naspipe")); err == nil {
		t.Error("simulated plane accepted a zero stage speed")
	}
	cfg.StageSpeeds = []float64{1, -2}
	if _, err := engine.RunConcurrent(context.Background(), cfg); err == nil {
		t.Error("concurrent plane accepted a negative stage speed")
	}

	cfg.StageSpeeds = []float64{1, 2, 3, 4} // longer than D=2: extra entries ignored
	res := run(t, "naspipe", cfg)
	if res.Failed || res.Deadlock || res.Completed != 8 {
		t.Fatalf("overlong speed list broke the run: %+v", res)
	}
}
