package parallel_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"naspipe/internal/parallel"
)

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := parallel.Map(context.Background(), workers, 40, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d holds %d", workers, i, v)
			}
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	ref, _ := parallel.Map(context.Background(), 1, 25, func(i int) (string, error) {
		return fmt.Sprintf("job-%d", i), nil
	})
	par, _ := parallel.Map(context.Background(), 8, 25, func(i int) (string, error) {
		return fmt.Sprintf("job-%d", i), nil
	})
	for i := range ref {
		if ref[i] != par[i] {
			t.Fatalf("slot %d differs: %q vs %q", i, ref[i], par[i])
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	_, err := parallel.Map(context.Background(), workers, 30, func(i int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent jobs, want <= %d", got, workers)
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	_, err := parallel.Map(context.Background(), 4, 20, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, errLow
		case 17:
			return 0, errHigh
		}
		return i, nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("want lowest-index error, got %v", err)
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	_, err := parallel.Map(ctx, 2, 1000, func(i int) (int, error) {
		if started.Add(1) == 4 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop dispatch (%d jobs ran)", n)
	}
}

func TestMapZeroJobs(t *testing.T) {
	got, err := parallel.Map(context.Background(), 4, 0, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("zero jobs: %v %v", got, err)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := parallel.ForEach(context.Background(), 4, 10, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum %d", sum.Load())
	}
}

func TestWorkers(t *testing.T) {
	if parallel.Workers(5, 3) != 3 {
		t.Fatal("not capped at job count")
	}
	if parallel.Workers(0, 100) < 1 {
		t.Fatal("default workers below 1")
	}
	if parallel.Workers(2, 100) != 2 {
		t.Fatal("explicit worker count not honored")
	}
}
