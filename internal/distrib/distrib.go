// Package distrib is the distributed execution plane's control half:
// a coordinator that owns a training run and a fleet of stage workers
// that execute it, one OS process (or goroutine, under the in-process
// launcher) per pipeline stage, connected in a TCP star.
//
// The topology is deliberately a star, not a mesh: every worker holds
// exactly one fault-tolerant transport.Link to the coordinator, which
// relays engine traffic by destination stage and expands broadcasts.
// That puts every cross-stage frame through one choke point where the
// deterministic fault plane can drop, cut, and partition links, and it
// makes worker death observable in one place — a worker is declared
// dead when its heartbeats stop arriving before the deadline or its
// process exits without reporting a result.
//
// Recovery is the single-process supervision story lifted across
// process boundaries. The coordinator is the only holder of durable
// state: the stage-0 worker streams consistency cuts to it, and the
// coordinator's checkpoint recorder persists them. When any worker
// dies — a crash injected by the fault plane, a kill -9, a silent
// hang — the coordinator tears the whole incarnation down, bumps the
// incarnation, and relaunches the fleet from the committed cursor; the
// suffix renumbers through SeqBase exactly as a single-process resume
// does, so the merged result is bitwise identical to the uninterrupted
// run (CSP, Definition 1).
//
// Verification composes across the fleet: each worker checks its local
// per-layer projection inside the engine, reports its observed trace
// in its Done frame, and the coordinator topologically merges the
// fleet's traces (engine.MergeStageTraces) into one global observation
// that replays against the sequential reference.
package distrib

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"

	"naspipe/internal/telemetry"
)

// WorkerSpec tells a launcher everything one stage worker needs to
// join a run: where the coordinator listens, which run and incarnation
// it is joining, and which stage it owns.
type WorkerSpec struct {
	Addr        string
	RunID       string
	Stage       int
	Incarnation int
}

// Process is a launched worker. Wait blocks until the worker exits and
// returns its terminal error; Kill terminates it abruptly (SIGKILL for
// real processes) — the worker gets no chance to say goodbye, which is
// the point: recovery must not depend on clean shutdown.
type Process interface {
	Wait() error
	Kill() error
}

// Launcher starts stage workers. The coordinator launches one worker
// per stage at every incarnation and kills the survivors when any
// member of the fleet dies.
type Launcher interface {
	Start(ctx context.Context, w WorkerSpec) (Process, error)
}

// ExecLauncher runs each worker as a separate OS process — the real
// deployment shape, and the one the kill -9 drill exercises.
type ExecLauncher struct {
	// Bin is the worker binary (naspipe-stage). Required.
	Bin string
	// Args are extra arguments appended after the standard set.
	Args []string
	// LogDir, when set, captures each worker's combined output to
	// stage-<k>.inc<i>.log inside it.
	LogDir string
}

type execProcess struct {
	cmd *exec.Cmd
	log *os.File
}

func (p *execProcess) Wait() error {
	err := p.cmd.Wait()
	if p.log != nil {
		p.log.Close()
	}
	return err
}

func (p *execProcess) Kill() error {
	// SIGKILL, not SIGTERM: the drill is surviving ungraceful death.
	return p.cmd.Process.Kill()
}

// Start launches `Bin -addr A -run R -stage K -incarnation I [Args...]`.
func (l *ExecLauncher) Start(ctx context.Context, w WorkerSpec) (Process, error) {
	if l.Bin == "" {
		return nil, fmt.Errorf("distrib: ExecLauncher needs a worker binary")
	}
	args := []string{
		"-addr", w.Addr,
		"-run", w.RunID,
		"-stage", strconv.Itoa(w.Stage),
		"-incarnation", strconv.Itoa(w.Incarnation),
	}
	args = append(args, l.Args...)
	cmd := exec.Command(l.Bin, args...)
	p := &execProcess{cmd: cmd}
	if l.LogDir != "" {
		f, err := os.Create(filepath.Join(l.LogDir,
			fmt.Sprintf("stage-%d.inc%d.log", w.Stage, w.Incarnation)))
		if err != nil {
			return nil, fmt.Errorf("distrib: worker log: %w", err)
		}
		cmd.Stdout, cmd.Stderr = f, f
		p.log = f
	}
	if err := cmd.Start(); err != nil {
		if p.log != nil {
			p.log.Close()
		}
		return nil, fmt.Errorf("distrib: launching stage %d: %w", w.Stage, err)
	}
	return p, nil
}

// InProcLauncher runs each worker as a goroutine inside this process —
// same worker code, same TCP links, same frames on the wire; only the
// process boundary is simulated. Kill cancels the worker's context
// without any farewell frame, which from the coordinator's side is
// indistinguishable from kill -9: the connection just dies.
type InProcLauncher struct {
	// Tel, when non-nil, receives every worker's link telemetry.
	Tel *telemetry.Bus
	// Log, when non-nil, receives worker log lines.
	Log func(format string, args ...any)
}

type inprocProcess struct {
	cancel context.CancelFunc
	done   chan error

	mu   sync.Mutex
	err  error
	dead bool
}

func (p *inprocProcess) Wait() error {
	p.mu.Lock()
	if p.dead {
		defer p.mu.Unlock()
		return p.err
	}
	p.mu.Unlock()
	err := <-p.done
	p.mu.Lock()
	p.err, p.dead = err, true
	p.mu.Unlock()
	return err
}

func (p *inprocProcess) Kill() error {
	p.cancel()
	return nil
}

// Start runs RunWorker in a goroutine. The worker context is detached
// from ctx's cancellation path only through Kill — exactly one way to
// die, like a process.
func (l *InProcLauncher) Start(ctx context.Context, w WorkerSpec) (Process, error) {
	wctx, cancel := context.WithCancel(context.Background())
	p := &inprocProcess{cancel: cancel, done: make(chan error, 1)}
	go func() {
		p.done <- RunWorker(wctx, WorkerConfig{
			Addr: w.Addr, RunID: w.RunID,
			Stage: w.Stage, Incarnation: w.Incarnation,
			Tel: l.Tel, Log: l.Log,
		})
		cancel()
	}()
	return p, nil
}
