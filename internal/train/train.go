// Package train is the numeric plane of NASPipe-Go: it turns scheduled
// parameter-access orders into actual float32 weights, making the paper's
// reproducibility claims mechanically checkable.
//
// Two trainers exist. Sequential trains the subnet stream strictly in
// order — the semantics every exploration algorithm assumes (§2.1) and
// the definition of the "correct" result. Replay executes an engine
// trace: at each READ event it snapshots the layer's current parameters
// into the subnet's forward context, and at each WRITE event it applies
// that subnet's gradient for the layer to the live parameters. A CSP
// trace replays to bitwise the same weights as Sequential on any GPU
// count (Definition 1); BSP and ASP traces read stale parameters and
// diverge as the cluster size changes the interleaving (Table 3).
package train

import (
	"fmt"

	"naspipe/internal/data"
	"naspipe/internal/layers"
	"naspipe/internal/supernet"
	"naspipe/internal/trace"
)

// Config describes a numeric training run.
type Config struct {
	Space     supernet.Space
	Dim       int     // model dimension of the numeric layers
	Seed      uint64  // weight init + data seed
	BatchSize int     // items per subnet step
	LR        float32 // SGD learning rate
	Dataset   data.Kind
}

func (c Config) withDefaults() Config {
	if c.Dim <= 0 {
		c.Dim = 12
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 4
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	return c
}

// Result of a numeric training run.
type Result struct {
	Net      *supernet.Numeric
	Losses   []float32 // per-subnet average training loss, in sequence order
	Checksum uint64    // bitwise digest of every final parameter
}

// FinalLoss returns the mean loss over the last quarter of the run — the
// "supernet loss" of Table 3.
func (r Result) FinalLoss() float64 {
	n := len(r.Losses)
	if n == 0 {
		return 0
	}
	start := n - n/4
	if start >= n {
		start = n - 1
	}
	var sum float64
	for _, l := range r.Losses[start:] {
		sum += float64(l)
	}
	return sum / float64(n-start)
}

// step runs one subnet's forward/backward on the given parameter views
// and returns the average loss plus per-block gradients. views[b] is the
// parameter state the forward READ of block b observed. All scratch
// (activation chain, gradient buffers, gradient sets) comes from a; the
// returned grads belong to a and must go back via a.release once applied.
// Beyond the batch itself (owned by the caller) this path is
// allocation-free in steady state.
func step(cfg Config, batch data.Batch, sub supernet.Subnet, views []*layers.Layer, a *arena) (float32, []*layers.Grads) {
	m := len(sub.Choices)
	a.ensure(m)
	grads := a.grads(views)
	var lossSum float32
	for i := range batch.Inputs {
		// Forward, saving inputs and activations per block.
		xs := a.xs
		xs[0] = batch.Inputs[i]
		for b := 0; b < m; b++ {
			views[b].ForwardInto(xs[b+1], xs[b])
		}
		// Loss: 0.5·‖y − target‖².
		out := xs[m]
		dy := a.cur
		tgt := batch.Targets[i]
		for j := range out {
			d := out[j] - tgt[j]
			dy[j] = d
			lossSum += 0.5 * d * d
		}
		// Backward. dy is consumed before dx is written, so one buffer
		// carries the output gradient down the whole chain.
		for b := m - 1; b >= 0; b-- {
			views[b].BackwardInto(dy, a.tmp, xs[b], xs[b+1], dy, grads[b])
		}
	}
	return lossSum / float32(len(batch.Inputs)), grads
}

// Sequential trains the subnets strictly in exploration order on a fresh
// numeric supernet.
func Sequential(cfg Config, subnets []supernet.Subnet) Result {
	cfg = cfg.withDefaults()
	net := supernet.BuildNumeric(cfg.Space, cfg.Dim, cfg.Seed)
	return SequentialOn(cfg, net, subnets)
}

// SequentialOn trains the subnets strictly in order on an existing live
// supernet — the resume path's building block: a sequential prefix run
// on a fresh net, then the suffix continues on the same net. Each
// subnet's data batch is keyed by its own (global) Seq, so a suffix
// trained here consumes exactly the batches the uninterrupted run would
// have. Losses are indexed by position in subnets.
func SequentialOn(cfg Config, net *supernet.Numeric, subnets []supernet.Subnet) Result {
	cfg = cfg.withDefaults()
	src := data.NewSource(cfg.Dataset, cfg.Dim, cfg.BatchSize, cfg.Seed)
	ar := newArena(cfg.Dim)
	losses := make([]float32, len(subnets))
	for i, sub := range subnets {
		views := ar.viewsBuf(len(sub.Choices))
		for b, c := range sub.Choices {
			views[b] = net.At(b, c)
		}
		loss, grads := step(cfg, src.Batch(sub.Seq), sub, views, ar)
		losses[i] = loss
		for b, c := range sub.Choices {
			net.At(b, c).ApplySGD(grads[b], cfg.LR)
		}
		ar.release(grads)
	}
	return Result{Net: net, Losses: losses, Checksum: net.Checksum()}
}

// pendingSubnet tracks one subnet's in-flight replay state.
type pendingSubnet struct {
	sub        supernet.Subnet
	views      []*layers.Layer // snapshots, one per block, filled by READs
	seen       int
	grads      []*layers.Grads
	loss       float32
	computed   bool
	writesLeft int
}

// Replay executes the parameter access order of an engine trace on a
// fresh numeric supernet. The trace must contain exactly one READ and one
// WRITE per (subnet, block); engine runs with RecordTrace produce this.
func Replay(cfg Config, subnets []supernet.Subnet, tr *trace.Trace) (Result, error) {
	cfg = cfg.withDefaults()
	net := supernet.BuildNumeric(cfg.Space, cfg.Dim, cfg.Seed)
	return ReplayOn(cfg, net, subnets, tr)
}

// ReplayOn executes a trace's access order against an existing live
// supernet. Subnets keep their original (global) Seq — trace events and
// data batches are keyed by it — so replaying a resumed run's suffix
// trace onto a sequential-prefix net reproduces the uninterrupted run.
// Losses are indexed by position in subnets.
func ReplayOn(cfg Config, net *supernet.Numeric, subnets []supernet.Subnet, tr *trace.Trace) (Result, error) {
	cfg = cfg.withDefaults()
	src := data.NewSource(cfg.Dataset, cfg.Dim, cfg.BatchSize, cfg.Seed)
	ar := newArena(cfg.Dim)

	pend := make(map[int]*pendingSubnet, len(subnets))
	posOf := make(map[int]int, len(subnets))
	for i, sub := range subnets {
		pend[sub.Seq] = &pendingSubnet{
			sub:        sub,
			views:      make([]*layers.Layer, len(sub.Choices)),
			writesLeft: len(sub.Choices),
		}
		posOf[sub.Seq] = i
	}
	losses := make([]float32, len(subnets))

	for _, ev := range tr.Events {
		p := pend[ev.Subnet]
		if p == nil {
			return Result{}, fmt.Errorf("train: trace references unknown subnet %d", ev.Subnet)
		}
		block, choice := cfg.Space.BlockChoice(ev.Layer)
		if block >= len(p.sub.Choices) || p.sub.Choices[block] != choice {
			return Result{}, fmt.Errorf("train: trace event %v does not match subnet %d's choice", ev, ev.Subnet)
		}
		switch ev.Kind {
		case trace.Read:
			if p.views[block] != nil {
				return Result{}, fmt.Errorf("train: duplicate READ of block %d by subnet %d", block, ev.Subnet)
			}
			p.views[block] = net.At(block, choice).Clone()
			p.seen++
		case trace.Write:
			if !p.computed {
				if p.seen != len(p.sub.Choices) {
					return Result{}, fmt.Errorf("train: subnet %d writes before completing reads (%d/%d)",
						ev.Subnet, p.seen, len(p.sub.Choices))
				}
				p.loss, p.grads = step(cfg, src.Batch(p.sub.Seq), p.sub, p.views, ar)
				p.computed = true
				losses[posOf[ev.Subnet]] = p.loss
			}
			net.At(block, choice).ApplySGD(p.grads[block], cfg.LR)
			p.writesLeft--
			if p.writesLeft == 0 {
				// Free the snapshots and recycle the gradient set; the
				// subnet is done.
				p.views = nil
				ar.release(p.grads)
				p.grads = nil
			}
		}
	}
	for seq, p := range pend {
		if p.writesLeft != 0 {
			return Result{}, fmt.Errorf("train: subnet %d has %d unwritten blocks at trace end", seq, p.writesLeft)
		}
	}
	return Result{Net: net, Losses: losses, Checksum: net.Checksum()}, nil
}

// StepOn runs one training step of the subnet against the live supernet
// — sequential semantics, the building block interactive explorers (e.g.
// GreedyNAS-style greedy sampling) use when the next subnet depends on
// the current weights. Returns the batch's average training loss.
func StepOn(cfg Config, net *supernet.Numeric, sub supernet.Subnet) float32 {
	cfg = cfg.withDefaults()
	src := data.NewSource(cfg.Dataset, cfg.Dim, cfg.BatchSize, cfg.Seed)
	ar := getArena(cfg.Dim)
	defer putArena(ar)
	views := ar.viewsBuf(len(sub.Choices))
	for b, c := range sub.Choices {
		views[b] = net.At(b, c)
	}
	loss, grads := step(cfg, src.Batch(sub.Seq), sub, views, ar)
	for b, c := range sub.Choices {
		net.At(b, c).ApplySGD(grads[b], cfg.LR)
	}
	ar.release(grads)
	return loss
}
