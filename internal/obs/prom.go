// Prometheus text-format exposition (version 0.0.4) for the registry,
// plus the minimal parser naspipe-client top uses to read it back.
//
// The output is deterministic: families sort by name, series by label
// values, and floats format with strconv's shortest round-trip form —
// so a golden test can pin the exact bytes and a diff of two scrapes is
// a diff of the system, not of map iteration order.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the HTTP Content-Type of the exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeHelp escapes a HELP line per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatFloat renders a sample value: shortest round-trip decimal,
// with the exposition spelling of infinities.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelPairs renders {k="v",...} for the given names/values; extra
// appends one more pair (the histogram "le"). Empty when there are no
// pairs at all.
func labelPairs(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraK, escapeLabel(extraV))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes every family in exposition format. Func
// metrics are evaluated here, with no registry locks held. Nil-safe
// (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Snapshot the family list under the registry lock, then render with
	// it released: fn callbacks and series locks must not nest under it.
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		if f.fn != nil {
			fmt.Fprintf(bw, "%s %s\n", f.name, formatFloat(f.fn()))
			continue
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sers := make([]*series, 0, len(keys))
		sort.Strings(keys)
		for _, k := range keys {
			sers = append(sers, f.series[k])
		}
		f.mu.Unlock()
		for _, s := range sers {
			switch f.kind {
			case KindCounter:
				fmt.Fprintf(bw, "%s%s %s\n", f.name,
					labelPairs(f.labels, s.labelVals, "", ""), formatFloat(s.counter.Value()))
			case KindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name,
					labelPairs(f.labels, s.labelVals, "", ""), formatFloat(s.gauge.Value()))
			case KindHistogram:
				// One pass over the atomic bucket counters; cumulative sums
				// derive from that single read, so buckets are monotone even
				// while writers race the scrape.
				h := s.hist
				var cum uint64
				for i := range h.counts {
					cum += h.counts[i].Load()
					le := "+Inf"
					if i < len(h.bounds) {
						le = formatFloat(h.bounds[i])
					}
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
						labelPairs(f.labels, s.labelVals, "le", le), cum)
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name,
					labelPairs(f.labels, s.labelVals, "", ""), formatFloat(h.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name,
					labelPairs(f.labels, s.labelVals, "", ""), cum)
			}
		}
	}
	return bw.Flush()
}

// Handler returns the /metrics HTTP handler. Nil-safe: the disabled
// registry serves an empty (valid) exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}

// Sample is one parsed exposition line: a metric name (histogram
// serieses appear under their _bucket/_sum/_count names), its label
// set, and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns a label's value ("" when absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// ParseText parses exposition text back into samples — the minimal
// consumer naspipe-client top and the format tests need. Comment and
// blank lines are skipped; a malformed sample line is an error naming
// the line number.
func ParseText(rd io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value on sample line %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	v, err := parseValue(strings.TrimSpace(rest))
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses `k="v",k2="v2"` with exposition escapes.
func parseLabels(s string, into map[string]string) error {
	for s != "" {
		eq := strings.Index(s, `="`)
		if eq < 0 {
			return fmt.Errorf("malformed label pair at %q", s)
		}
		key := s[:eq]
		s = s[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(s); i++ {
			if s[i] == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i+1])
				}
				i++
				continue
			}
			if s[i] == '"' {
				break
			}
			val.WriteByte(s[i])
		}
		if i >= len(s) {
			return fmt.Errorf("unterminated label value for %q", key)
		}
		into[key] = val.String()
		s = s[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return nil
}
