package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"naspipe/internal/layers"
	"naspipe/internal/supernet"
)

// Record is a serializable training schedule: the run's identity plus the
// full parameter access order. Together with the global seed it contains
// everything needed to re-derive the subnet stream and deterministically
// replay the training — the paper's "simple and deterministic training
// replay" for debugging and post-training analysis (§2.1), persisted.
type Record struct {
	SpaceName string `json:"space"`
	Domain    int    `json:"domain"` // layers.Domain
	Blocks    int    `json:"blocks"`
	Choices   int    `json:"choices"`
	Dataset   string `json:"dataset"`

	Policy     string `json:"policy"`
	GPUs       int    `json:"gpus"`
	Seed       uint64 `json:"seed"`
	NumSubnets int    `json:"num_subnets"`

	Events []Event `json:"events"`
}

// NewRecord assembles a record from a run's identity and trace.
func NewRecord(space supernet.Space, policy string, gpus int, seed uint64, numSubnets int, tr *Trace) *Record {
	return &Record{
		SpaceName: space.Name, Domain: int(space.Domain),
		Blocks: space.Blocks, Choices: space.Choices, Dataset: space.Dataset,
		Policy: policy, GPUs: gpus, Seed: seed, NumSubnets: numSubnets,
		Events: tr.Events,
	}
}

// Space reconstructs the search space the record was captured on.
func (r *Record) Space() supernet.Space {
	return supernet.Space{
		Name:    r.SpaceName,
		Domain:  layers.Domain(r.Domain),
		Blocks:  r.Blocks,
		Choices: r.Choices,
		Dataset: r.Dataset,
	}
}

// Trace returns the recorded access order.
func (r *Record) Trace() *Trace { return &Trace{Events: r.Events} }

// Subnets re-derives the subnet stream the record trained on (a pure
// function of space and seed).
func (r *Record) Subnets() []supernet.Subnet {
	return supernet.Sample(r.Space(), r.Seed, r.NumSubnets)
}

// Validate performs structural checks before a replay.
func (r *Record) Validate() error {
	if r.Blocks <= 0 || r.Choices <= 0 {
		return fmt.Errorf("trace: record has invalid space geometry %dx%d", r.Blocks, r.Choices)
	}
	if r.NumSubnets <= 0 {
		return fmt.Errorf("trace: record has no subnets")
	}
	maxLayer := supernet.LayerID(r.Blocks * r.Choices)
	for i, ev := range r.Events {
		if ev.Layer < 0 || ev.Layer >= maxLayer {
			return fmt.Errorf("trace: event %d references layer %d outside the space", i, ev.Layer)
		}
		if ev.Subnet < 0 || ev.Subnet >= r.NumSubnets {
			return fmt.Errorf("trace: event %d references subnet %d outside the stream", i, ev.Subnet)
		}
	}
	return nil
}

// Save serializes the record as JSON.
func (r *Record) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r)
}

// ReadRecord deserializes a record written by Save.
func ReadRecord(rd io.Reader) (*Record, error) {
	var r Record
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("trace: decoding record: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
