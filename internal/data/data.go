// Package data provides deterministic synthetic datasets standing in for
// the paper's WNMT (WMT'14 En-De) and ImageNet workloads.
//
// The datasets' role in the paper is to supply gradients; reproducibility
// and scheduling behaviour depend on *which* batch each subnet trains on
// (fixed by step index) rather than on the data's semantics. Each source
// therefore produces batches as a pure function of (dataset, seed, step):
// the same step always yields bitwise-identical tensors, and the train /
// validation split is disjoint by construction (validation uses a separate
// label substream).
package data

import (
	"fmt"
	"sync"

	"naspipe/internal/rng"
	"naspipe/internal/tensor"
)

// Kind selects a synthetic dataset family.
type Kind int

// Dataset kinds.
const (
	// WNMT mimics a translation corpus: inputs are token-embedding-like
	// vectors drawn from a fixed finite vocabulary of embeddings, targets
	// are the embeddings of a permuted "translation".
	WNMT Kind = iota
	// ImageNet mimics natural images: inputs are smooth (low-frequency)
	// vectors, targets encode one of 1000 classes as a scaled one-hot-ish
	// pattern.
	ImageNet
)

func (k Kind) String() string {
	if k == WNMT {
		return "WNMT"
	}
	return "ImageNet"
}

// KindByName resolves the Table 1 dataset names.
func KindByName(name string) (Kind, error) {
	switch name {
	case "WNMT":
		return WNMT, nil
	case "ImageNet":
		return ImageNet, nil
	}
	return 0, fmt.Errorf("data: unknown dataset %q", name)
}

// Batch is one training step's input: item i maps Inputs[i] -> Targets[i].
type Batch struct {
	Step    int
	Inputs  []tensor.Vector
	Targets []tensor.Vector
}

// Source generates deterministic batches for one dataset configuration.
type Source struct {
	kind      Kind
	dim       int
	batchSize int
	seed      uint64
	vocab     []tensor.Vector // WNMT only: fixed embedding table
}

// vocabSize is the synthetic WNMT vocabulary size. Small enough that
// token reuse (and thus structure in the data) is common.
const vocabSize = 512

// numClasses mirrors ImageNet's 1000 classes.
const numClasses = 1000

// vocabKey identifies a WNMT embedding table. The table is a pure
// function of (dim, seed), so it is built once and shared; regenerating
// it costs thousands of Gaussian draws and used to dominate short-lived
// sources (e.g. one per training step on the explorer path).
type vocabKey struct {
	dim  int
	seed uint64
}

// vocabCache memoizes immutable WNMT vocabulary tables. Entries are never
// mutated after insertion: wnmtItem clones embeddings before writing.
var vocabCache sync.Map // vocabKey -> []tensor.Vector

func wnmtVocab(dim int, seed uint64) []tensor.Vector {
	key := vocabKey{dim: dim, seed: seed}
	if v, ok := vocabCache.Load(key); ok {
		return v.([]tensor.Vector)
	}
	r := rng.Labeled(seed, "wnmt/vocab")
	vocab := make([]tensor.Vector, vocabSize)
	for i := range vocab {
		v := make(tensor.Vector, dim)
		for j := range v {
			v[j] = r.NormFloat32() * 0.5
		}
		vocab[i] = v
	}
	// Concurrent builders produce identical tables; keep whichever landed
	// first so every source shares one backing array.
	actual, _ := vocabCache.LoadOrStore(key, vocab)
	return actual.([]tensor.Vector)
}

// NewSource builds a source. dim is the model dimension of the numeric
// plane; batchSize the items per step.
func NewSource(kind Kind, dim, batchSize int, seed uint64) *Source {
	if dim <= 0 || batchSize <= 0 {
		panic(fmt.Sprintf("data: invalid source config dim=%d batch=%d", dim, batchSize))
	}
	s := &Source{kind: kind, dim: dim, batchSize: batchSize, seed: seed}
	if kind == WNMT {
		s.vocab = wnmtVocab(dim, seed)
	}
	return s
}

// Kind returns the dataset family.
func (s *Source) Kind() Kind { return s.kind }

// BatchSize returns the configured items per batch.
func (s *Source) BatchSize() int { return s.batchSize }

// Batch returns the training batch for a step. Pure in (source config,
// step).
func (s *Source) Batch(step int) Batch {
	return s.generate("train", step)
}

// ValidationBatch returns the validation batch for an index, disjoint from
// every training batch by substream separation.
func (s *Source) ValidationBatch(idx int) Batch {
	return s.generate("valid", idx)
}

func (s *Source) generate(split string, step int) Batch {
	r := rng.Labeled(s.seed, fmt.Sprintf("%v/%s/%d", s.kind, split, step))
	b := Batch{
		Step:    step,
		Inputs:  make([]tensor.Vector, s.batchSize),
		Targets: make([]tensor.Vector, s.batchSize),
	}
	for i := 0; i < s.batchSize; i++ {
		switch s.kind {
		case WNMT:
			b.Inputs[i], b.Targets[i] = s.wnmtItem(r)
		case ImageNet:
			b.Inputs[i], b.Targets[i] = s.imageItem(r)
		default:
			panic("data: unknown kind")
		}
	}
	return b
}

// wnmtItem draws a source token embedding and targets a deterministic
// companion token (a fixed permutation of the vocabulary), modelling the
// learnable token->token mapping of translation.
func (s *Source) wnmtItem(r *rng.Stream) (in, tgt tensor.Vector) {
	tok := r.Intn(vocabSize)
	// Companion token: multiplicative shuffle (odd multiplier => bijection
	// on the vocabulary ring).
	comp := (tok*37 + 11) % vocabSize
	in = s.vocab[tok].Clone()
	// Mild per-occurrence noise models context variation.
	for j := range in {
		in[j] += r.NormFloat32() * 0.05
	}
	tgt = make(tensor.Vector, s.dim)
	copy(tgt, s.vocab[comp])
	// Squash targets into tanh range so the loss is achievable.
	tensor.Tanh(tgt, tgt)
	return in, tgt
}

// imageItem synthesizes a smooth input whose low-frequency content encodes
// the class, plus a class-derived target pattern in tanh range.
func (s *Source) imageItem(r *rng.Stream) (in, tgt tensor.Vector) {
	class := r.Intn(numClasses)
	cr := rng.Labeled(s.seed, fmt.Sprintf("imagenet/class/%d", class))
	base := make(tensor.Vector, s.dim)
	for j := range base {
		base[j] = cr.NormFloat32() * 0.6
	}
	in = make(tensor.Vector, s.dim)
	// Smooth the class prototype with a 3-tap average and add noise.
	for j := range in {
		lo, hi := j-1, j+1
		if lo < 0 {
			lo = 0
		}
		if hi >= s.dim {
			hi = s.dim - 1
		}
		in[j] = (base[lo]+base[j]+base[hi])/3 + r.NormFloat32()*0.1
	}
	tgt = make(tensor.Vector, s.dim)
	for j := range tgt {
		// Class signature pattern, bounded.
		v := float32((class>>(j%10))&1)*2 - 1
		tgt[j] = v * 0.5
	}
	return in, tgt
}
