package backoff

import (
	"context"
	"testing"
	"time"
)

func TestDelayDoublesAndCaps(t *testing.T) {
	p := Policy{Base: 5 * time.Millisecond, Max: 35 * time.Millisecond}
	want := []time.Duration{
		5 * time.Millisecond,  // attempt 0
		10 * time.Millisecond, // 1
		20 * time.Millisecond, // 2
		35 * time.Millisecond, // 3: 40ms capped
		35 * time.Millisecond, // 4: stays at the cap
	}
	for attempt, w := range want {
		if got := p.Delay(attempt); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
	if got := p.Delay(-3); got != p.Base {
		t.Errorf("Delay(-3) = %v, want base %v", got, p.Base)
	}
	// A cap below the base still wins: the policy never sleeps past Max.
	tight := Policy{Base: 10 * time.Millisecond, Max: 2 * time.Millisecond}
	if got := tight.Delay(0); got != 2*time.Millisecond {
		t.Errorf("capped Delay(0) = %v, want 2ms", got)
	}
}

func TestSleepInterruptible(t *testing.T) {
	p := Policy{Base: time.Hour, Max: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Sleep(ctx, 0) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Sleep returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after cancellation")
	}
	// And an uninterrupted short sleep completes with nil.
	if err := (Policy{Base: time.Microsecond, Max: time.Microsecond}).Sleep(context.Background(), 2); err != nil {
		t.Fatalf("short Sleep: %v", err)
	}
}
