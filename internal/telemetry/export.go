package telemetry

// This file holds command-side conveniences shared by the cmds that
// expose telemetry flags (-trace-out, -events-out, -progress): file
// export with post-write validation, and the live progress ticker.

import (
	"fmt"
	"io"
	"os"
	"time"
)

// ExportFiles writes the bus's captured stream to tracePath (Chrome
// trace-event JSON, re-read and validated after writing so a malformed
// export fails the command rather than the browser) and/or eventsPath
// (JSONL for naspipe-replay -events). Empty paths are skipped. It
// returns one human-readable summary line per file written.
func ExportFiles(bus *Bus, tracePath, eventsPath string) ([]string, error) {
	evs := bus.Events()
	var lines []string
	if tracePath != "" {
		if err := writeFile(tracePath, func(w io.Writer) error { return WriteChromeTrace(w, evs) }); err != nil {
			return lines, fmt.Errorf("trace-out: %w", err)
		}
		f, err := os.Open(tracePath)
		if err != nil {
			return lines, fmt.Errorf("trace-out: %w", err)
		}
		st, err := ValidateChromeTrace(f)
		f.Close()
		if err != nil {
			return lines, fmt.Errorf("trace-out: exported trace does not validate: %w", err)
		}
		lines = append(lines, fmt.Sprintf(
			"chrome trace: %s (%d complete spans / %d task slices, %d flow arrows, %d stages) — load in Perfetto or chrome://tracing",
			tracePath, st.Complete, st.TaskX, st.FlowBegin, st.Stages))
	}
	if eventsPath != "" {
		if err := writeFile(eventsPath, func(w io.Writer) error { return WriteJSONL(w, evs) }); err != nil {
			return lines, fmt.Errorf("events-out: %w", err)
		}
		lines = append(lines, fmt.Sprintf(
			"event log: %s (%d events) — summarize with naspipe-replay -events %s",
			eventsPath, len(evs), eventsPath))
	}
	return lines, nil
}

// writeFile creates path and streams write into it, surfacing the close
// error (a full disk shows up at close).
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// StartProgress spawns a goroutine printing the bus's one-line snapshot
// to w every interval; the returned function stops it. A nil bus or
// non-positive interval is a no-op.
func StartProgress(w io.Writer, bus *Bus, interval time.Duration) func() {
	if bus == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				fmt.Fprintf(w, "progress: %s\n", bus.Snapshot().String())
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}
