package telemetry

import (
	"sync"
	"testing"
)

// TestNilBatcherIsFreeAndNilSafe extends the disabled-telemetry contract
// to the batched path: a nil batcher (what NewBatcher returns for the nil
// bus) costs nothing and allocates nothing per emit.
func TestNilBatcherIsFreeAndNilSafe(t *testing.T) {
	tb := NewBatcher(nil)
	if tb != nil {
		t.Fatal("NewBatcher(nil) must return the nil batcher")
	}
	if tb.Enabled() {
		t.Fatal("nil batcher reports enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tb.Emit(Event{Op: OpTaskStart, Phase: PhaseBegin, Stage: 1, Subnet: 2})
		tb.Flush()
	})
	if allocs != 0 {
		t.Fatalf("nil batcher allocates %v per emit", allocs)
	}
	if tb.Pending() != 0 {
		t.Fatal("nil batcher leaked state")
	}
}

// TestBatcherEmitDoesNotAllocate pins the enabled steady state: queueing
// into the warm local buffer and flushing through EmitBatch are both
// allocation-free, so batched telemetry stays off the GC's books.
func TestBatcherEmitDoesNotAllocate(t *testing.T) {
	b := NewBus(1 << 16)
	tb := NewBatcher(b)
	allocs := testing.AllocsPerRun(1000, func() {
		tb.Emit(Event{Op: OpTaskStart, Phase: PhaseBegin, Stage: 1, Subnet: 2})
		tb.Flush()
	})
	if allocs != 0 {
		t.Fatalf("batcher emit+flush allocates %v per event", allocs)
	}
}

// TestBatcherDeliversEventsAndCounters checks flush semantics: nothing is
// visible before a flush (below the auto-flush threshold), everything —
// stream, live counters, weighted counters — after.
func TestBatcherDeliversEventsAndCounters(t *testing.T) {
	b := NewBus(1024)
	tb := NewBatcher(b)
	tb.Emit(Event{Op: OpTaskStart, Phase: PhaseBegin, Stage: 0, Subnet: 1})
	tb.Emit(Event{Op: OpCacheHit, Phase: PhaseInstant, Arg: 3})
	if got := b.Len(); got != 0 {
		t.Fatalf("bus saw %d events before flush, want 0", got)
	}
	if got := tb.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	tb.Flush()
	if got := b.Len(); got != 2 {
		t.Fatalf("bus has %d events after flush, want 2", got)
	}
	if got := b.Count(OpCacheHit); got != 3 {
		t.Fatalf("weighted counter = %d, want 3", got)
	}
	evs := b.Events()
	if evs[0].Op != OpTaskStart || evs[1].Op != OpCacheHit {
		t.Fatalf("flush reordered events: %v, %v", evs[0].Op, evs[1].Op)
	}
	if evs[1].TsNs < evs[0].TsNs {
		t.Fatal("timestamps must be stamped at Emit time, monotonically")
	}
}

// TestBatcherAutoFlushAtCapacity: the local buffer bounds staleness — the
// batcherCap'th emit flushes without an explicit call.
func TestBatcherAutoFlushAtCapacity(t *testing.T) {
	b := NewBus(1024)
	tb := NewBatcher(b)
	for i := 0; i < batcherCap; i++ {
		tb.Emit(Event{Op: OpTaskAdmit, Phase: PhaseInstant, Subnet: int32(i)})
	}
	if got := b.Len(); got != batcherCap {
		t.Fatalf("bus has %d events after %d emits, want auto-flush of all", got, batcherCap)
	}
	if tb.Pending() != 0 {
		t.Fatalf("Pending = %d after auto-flush, want 0", tb.Pending())
	}
}

// TestEmitBatchDropsLikeEmit: a full ring drops the batch suffix and
// counts it, while live counters still see every event — the same
// contract per-event emission has.
func TestEmitBatchDropsLikeEmit(t *testing.T) {
	const capacity = 8
	b := NewBus(capacity)
	evs := make([]Event, 20)
	for i := range evs {
		evs[i] = Event{Op: OpTaskAdmit, Phase: PhaseInstant, Subnet: int32(i), TsNs: int64(i)}
	}
	b.EmitBatch(evs)
	if got := b.Len(); got != capacity {
		t.Fatalf("ring kept %d, want %d", got, capacity)
	}
	if got := int(b.Dropped()); got != len(evs)-capacity {
		t.Fatalf("dropped %d, want %d", got, len(evs)-capacity)
	}
	if got := b.Count(OpTaskAdmit); got != int64(len(evs)) {
		t.Fatalf("live counter saw %d, want %d", got, len(evs))
	}
	// The kept prefix preserves batch order.
	for i, ev := range b.Events() {
		if ev.Subnet != int32(i) {
			t.Fatalf("event %d has subnet %d, want %d", i, ev.Subnet, i)
		}
	}
}

// TestBatchersConcurrentWithDirectEmit races per-goroutine batchers
// against direct emitters on one bus (run with -race): the mixed mode the
// concurrent executor uses (stage batchers + shared-path direct emits).
func TestBatchersConcurrentWithDirectEmit(t *testing.T) {
	const (
		producers = 4
		perProd   = 300
	)
	b := NewBus(producers * perProd * 2)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(2)
		go func(p int) {
			defer wg.Done()
			tb := NewBatcher(b)
			for i := 0; i < perProd; i++ {
				tb.Emit(Event{Op: OpTaskStart, Phase: PhaseBegin, Stage: int32(p), Subnet: int32(i)})
			}
			tb.Flush()
		}(p)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				b.Emit(Event{Op: OpFaultFetch, Phase: PhaseInstant, Stage: int32(p), Subnet: int32(i)})
			}
		}(p)
	}
	wg.Wait()
	total := 2 * producers * perProd
	if got := b.Len(); got != total {
		t.Fatalf("bus has %d events, want %d", got, total)
	}
	if got := b.Count(OpTaskStart); got != int64(producers*perProd) {
		t.Fatalf("batched counter = %d, want %d", got, producers*perProd)
	}
}
