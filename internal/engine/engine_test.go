package engine_test

import (
	"testing"
	"testing/quick"

	"naspipe/internal/cluster"
	"naspipe/internal/engine"
	"naspipe/internal/sched"
	"naspipe/internal/supernet"
	"naspipe/internal/trace"
)

func run(t *testing.T, policyName string, cfg engine.Config) engine.Result {
	t.Helper()
	p, err := sched.New(policyName)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func smallCfg(space supernet.Space, d, n int) engine.Config {
	return engine.Config{Space: space, Spec: cluster.Default(d), Seed: 1, NumSubnets: n}
}

func TestAllPoliciesComplete(t *testing.T) {
	for _, name := range sched.Names() {
		res := run(t, name, smallCfg(supernet.CVc2, 4, 24))
		if res.Failed {
			t.Errorf("%s: failed: %s", name, res.FailReason)
			continue
		}
		if res.Deadlock || res.Completed != 24 {
			t.Errorf("%s: completed %d/24 (deadlock=%v)", name, res.Completed, res.Deadlock)
		}
		if res.TotalMs <= 0 || res.SamplesPerSec <= 0 {
			t.Errorf("%s: degenerate timing %+v", name, res)
		}
		if res.BubbleRatio < 0 || res.BubbleRatio >= 1 {
			t.Errorf("%s: bubble %f out of range", name, res.BubbleRatio)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	for _, name := range []string{"naspipe", "gpipe", "pipedream", "vpipe"} {
		cfg := smallCfg(supernet.CVc2, 4, 20)
		cfg.RecordTrace = true
		a := run(t, name, cfg)
		b := run(t, name, cfg)
		if a.TotalMs != b.TotalMs || a.Completed != b.Completed || a.Batch != b.Batch {
			t.Errorf("%s: runs differ: %+v vs %+v", name, a.TotalMs, b.TotalMs)
		}
		if !a.Trace.Equal(b.Trace) {
			t.Errorf("%s: traces differ between identical runs", name)
		}
	}
}

func TestGPipeFailsOnNLPc0(t *testing.T) {
	// §5.1: GPipe and PipeDream cannot run NLP.c0 — the supernet's
	// parameters exceed GPU memory; NASPipe and VPipe can.
	for _, name := range []string{"gpipe", "pipedream"} {
		res := run(t, name, smallCfg(supernet.NLPc0, 8, 8))
		if !res.Failed {
			t.Errorf("%s should fail on NLP.c0", name)
		}
	}
	for _, name := range []string{"naspipe", "vpipe"} {
		res := run(t, name, smallCfg(supernet.NLPc0, 8, 8))
		if res.Failed {
			t.Errorf("%s should run NLP.c0: %s", name, res.FailReason)
		}
	}
}

func TestNASPipeBatchAdvantage(t *testing.T) {
	// Context eviction frees memory for larger batches (Table 2): NASPipe
	// must support a substantially larger batch than GPipe, and PipeDream
	// about half of GPipe (activation stashing).
	nas := run(t, "naspipe", smallCfg(supernet.NLPc1, 8, 8))
	gp := run(t, "gpipe", smallCfg(supernet.NLPc1, 8, 8))
	pd := run(t, "pipedream", smallCfg(supernet.NLPc1, 8, 8))
	if nas.Batch < 3*gp.Batch {
		t.Errorf("NASPipe batch %d not >= 3x GPipe %d", nas.Batch, gp.Batch)
	}
	if pd.Batch >= gp.Batch {
		t.Errorf("PipeDream batch %d should be below GPipe %d", pd.Batch, gp.Batch)
	}
}

func TestCSPTraceSequentialEquivalent(t *testing.T) {
	// The heart of the paper: NASPipe's schedule must be equivalent to
	// sequential training on every layer, at any GPU count.
	for _, d := range []int{1, 2, 4, 8} {
		cfg := smallCfg(supernet.NLPc3, d, 20)
		cfg.RecordTrace = true
		res := run(t, "naspipe", cfg)
		if res.Deadlock {
			t.Fatalf("D=%d deadlock", d)
		}
		if v := res.Trace.FirstViolation(); v != nil {
			t.Errorf("D=%d: CSP trace violates sequential equivalence: layer %d: %s",
				d, v.Layer, v.Detail)
		}
	}
}

func TestSequentialPolicyTraceEquivalent(t *testing.T) {
	cfg := smallCfg(supernet.CVc3, 4, 16)
	cfg.RecordTrace = true
	res := run(t, "sequential", cfg)
	if v := res.Trace.FirstViolation(); v != nil {
		t.Errorf("sequential trace violates: %+v", v)
	}
}

func TestBSPAndASPTracesViolate(t *testing.T) {
	// GPipe (BSP) and PipeDream (ASP) do not preserve causal
	// dependencies: on a dependency-dense space their traces must violate
	// sequential equivalence.
	for _, name := range []string{"gpipe", "pipedream"} {
		cfg := smallCfg(supernet.NLPc3, 4, 24)
		cfg.RecordTrace = true
		res := run(t, name, cfg)
		if res.Trace.FirstViolation() == nil {
			t.Errorf("%s trace unexpectedly sequential-equivalent", name)
		}
	}
}

func TestCSPTraceIdenticalPerLayerAcrossGPUCounts(t *testing.T) {
	// Table 4: the per-layer access order under CSP is identical on any
	// number of GPUs.
	var traces []*trace.Trace
	for _, d := range []int{2, 4, 8} {
		cfg := smallCfg(supernet.NLPc3, d, 20)
		cfg.RecordTrace = true
		res := run(t, "naspipe", cfg)
		traces = append(traces, res.Trace)
	}
	for i := 1; i < len(traces); i++ {
		if !traces[0].PerLayerEqual(traces[i]) {
			t.Errorf("CSP per-layer order differs between GPU counts (run %d)", i)
		}
	}
}

func TestBSPTraceChangesAcrossGPUCounts(t *testing.T) {
	get := func(d int) *trace.Trace {
		cfg := smallCfg(supernet.CVc3, d, 24)
		cfg.RecordTrace = true
		res := run(t, "gpipe", cfg)
		if res.Failed {
			t.Fatalf("GPipe failed on CV.c3 at D=%d: %s", d, res.FailReason)
		}
		return res.Trace
	}
	if get(4).PerLayerEqual(get(8)) {
		t.Error("GPipe per-layer order unexpectedly identical across GPU counts")
	}
}

func TestCacheHitRates(t *testing.T) {
	// Table 2 shape: NASPipe's predictor yields high hit rates; VPipe's
	// on-demand swap yields near-reuse-probability rates; non-swapping
	// systems report N/A (-1).
	cfg := engine.Config{Space: supernet.NLPc2, Spec: cluster.Default(8), Seed: 1, NumSubnets: 120, InflightLimit: 48}
	nas := run(t, "naspipe", cfg)
	vp := run(t, "vpipe", cfg)
	gp := run(t, "gpipe", cfg)
	if nas.CacheHitRate < 0.8 {
		t.Errorf("NASPipe hit rate %f below 0.8", nas.CacheHitRate)
	}
	if vp.CacheHitRate > 0.15 {
		t.Errorf("VPipe hit rate %f implausibly high", vp.CacheHitRate)
	}
	if gp.CacheHitRate != -1 {
		t.Errorf("GPipe hit rate should be N/A, got %f", gp.CacheHitRate)
	}
}

func TestBubbleOrderingAcrossSpaces(t *testing.T) {
	// The paper's insight: larger spaces -> fewer dependencies -> lower
	// CSP bubble ratio. NLP.c0 (96 choices) must beat NLP.c3 (24).
	cfg := func(sp supernet.Space) engine.Config {
		return engine.Config{Space: sp, Spec: cluster.Default(8), Seed: 1, NumSubnets: 120, InflightLimit: 48}
	}
	big := run(t, "naspipe", cfg(supernet.NLPc0))
	small := run(t, "naspipe", cfg(supernet.NLPc3))
	if big.BubbleRatio >= small.BubbleRatio {
		t.Errorf("bubble did not fall with space size: c0=%f c3=%f", big.BubbleRatio, small.BubbleRatio)
	}
}

func TestAblationOrdering(t *testing.T) {
	// Figure 6: full NASPipe beats each ablation on a large space.
	cfg := engine.Config{Space: supernet.NLPc1, Spec: cluster.Default(8), Seed: 1, NumSubnets: 120, InflightLimit: 48}
	full := run(t, "naspipe", cfg)
	for _, name := range []string{"naspipe-noscheduler", "naspipe-nopredictor"} {
		abl := run(t, name, cfg)
		if abl.Failed {
			t.Errorf("%s failed: %s", name, abl.FailReason)
			continue
		}
		if abl.SamplesPerSec >= full.SamplesPerSec {
			t.Errorf("%s (%f samples/s) not below full NASPipe (%f)", name, abl.SamplesPerSec, full.SamplesPerSec)
		}
	}
	// Mirroring trades dependency latency (a mirrored layer's write may
	// land on a lower stage of the earlier subnet, lengthening the wait)
	// against pipeline balance; on dependency-dense spaces the net effect
	// is small in either direction. Allow ±10%.
	mir := run(t, "naspipe-nomirroring", cfg)
	if mir.SamplesPerSec > full.SamplesPerSec*1.10 || mir.SamplesPerSec < full.SamplesPerSec*0.5 {
		t.Errorf("w/o mirroring %f outside plausible band of full %f", mir.SamplesPerSec, full.SamplesPerSec)
	}
}

func TestMirroringTrafficOnlyWithBalancedPartitions(t *testing.T) {
	cfg := smallCfg(supernet.NLPc2, 4, 16)
	nas := run(t, "naspipe", cfg)
	vp := run(t, "vpipe", cfg)
	if nas.MirrorBytes == 0 {
		t.Error("NASPipe balanced partitions should mirror some layers")
	}
	if vp.MirrorBytes != 0 {
		t.Errorf("static-partition VPipe mirrored %d bytes", vp.MirrorBytes)
	}
}

func TestExecTimeBalancedBeatsStatic(t *testing.T) {
	// Table 2: NASPipe's balanced per-subnet partitions give lower
	// per-subnet execution time than VPipe's static partition.
	cfg := engine.Config{Space: supernet.NLPc1, Spec: cluster.Default(8), Seed: 1, NumSubnets: 60, InflightLimit: 48}
	nas := run(t, "naspipe", cfg)
	vp := run(t, "vpipe", cfg)
	if nas.ExecMsAvg >= vp.ExecMsAvg {
		t.Errorf("NASPipe exec %f not below VPipe %f", nas.ExecMsAvg, vp.ExecMsAvg)
	}
}

func TestSingleGPURuns(t *testing.T) {
	res := run(t, "naspipe", smallCfg(supernet.CVc3, 1, 10))
	if res.Failed || res.Deadlock || res.Completed != 10 {
		t.Fatalf("single-GPU run broken: %+v", res)
	}
}

func TestBatchOverride(t *testing.T) {
	cfg := smallCfg(supernet.CVc3, 2, 6)
	cfg.BatchOverride = 5
	res := run(t, "naspipe", cfg)
	if res.Batch != 5 {
		t.Fatalf("batch override ignored: %d", res.Batch)
	}
}

func TestScalabilityALUGrowsWithGPUs(t *testing.T) {
	// Figure 7: total ALU grows (sub-linearly) with GPU count.
	prev := 0.0
	for _, d := range []int{4, 8, 16} {
		cfg := engine.Config{Space: supernet.NLPc1, Spec: cluster.Default(d), Seed: 1, NumSubnets: 96, InflightLimit: 6 * d}
		res := run(t, "naspipe", cfg)
		if res.ALUTotal <= prev {
			t.Errorf("total ALU did not grow at D=%d: %f <= %f", d, res.ALUTotal, prev)
		}
		prev = res.ALUTotal
	}
}

// Property: for random small spaces and GPU counts, NASPipe always
// completes without deadlock and its trace is sequential-equivalent.
func TestQuickCSPAlwaysCorrect(t *testing.T) {
	f := func(seed uint64, dRaw, blocksRaw, choicesRaw uint8) bool {
		d := int(dRaw)%6 + 1
		blocks := int(blocksRaw)%10 + 2
		choices := int(choicesRaw)%6 + 1
		sp := supernet.NLPc3.Scaled(blocks, choices)
		cfg := engine.Config{Space: sp, Spec: cluster.Default(d), Seed: seed, NumSubnets: 12, RecordTrace: true}
		p, err := sched.New("naspipe")
		if err != nil {
			return false
		}
		res, err := engine.Run(cfg, p)
		if err != nil {
			return false
		}
		if res.Failed {
			return true // tiny spaces can legitimately fail batch sizing? (should not, but not a CSP property)
		}
		if res.Deadlock || res.Completed != 12 {
			return false
		}
		return res.Trace.FirstViolation() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: engine results are pure functions of the config for every
// policy.
func TestQuickDeterminism(t *testing.T) {
	names := sched.Names()
	f := func(seed uint64, pick uint8) bool {
		name := names[int(pick)%len(names)]
		cfg := engine.Config{Space: supernet.CVc3, Spec: cluster.Default(4), Seed: seed, NumSubnets: 10}
		p1, _ := sched.New(name)
		p2, _ := sched.New(name)
		a, errA := engine.Run(cfg, p1)
		b, errB := engine.Run(cfg, p2)
		if errA != nil || errB != nil {
			return false
		}
		return a.TotalMs == b.TotalMs && a.Completed == b.Completed &&
			a.BubbleRatio == b.BubbleRatio && a.CacheHitRate == b.CacheHitRate
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineNASPipe(b *testing.B) {
	cfg := engine.Config{Space: supernet.NLPc1, Spec: cluster.Default(8), Seed: 1, NumSubnets: 60}
	for i := 0; i < b.N; i++ {
		p, _ := sched.New("naspipe")
		_, _ = engine.Run(cfg, p)
	}
}

func TestFewerBlocksThanStages(t *testing.T) {
	// A subnet shallower than the pipeline leaves stages with empty
	// partitions; they must relay activations without wedging the run.
	sp := supernet.CVc3.Scaled(4, 3)
	res := run(t, "naspipe", smallCfg(sp, 8, 12))
	if res.Failed || res.Deadlock || res.Completed != 12 {
		t.Fatalf("shallow-subnet run broken: %+v", res)
	}
}

func TestEngineConservationInvariants(t *testing.T) {
	cfg := smallCfg(supernet.NLPc2, 8, 60)
	res := run(t, "naspipe", cfg)
	var busy float64
	for _, b := range res.StageBusyMs {
		busy += b
	}
	if busy > float64(res.D)*res.TotalMs+1e-6 {
		t.Fatalf("busy time %f exceeds wall capacity %f", busy, float64(res.D)*res.TotalMs)
	}
	if res.BubbleRatio < 0 || res.BubbleRatio > 1 {
		t.Fatalf("bubble %f out of range", res.BubbleRatio)
	}
	if res.StallMs < 0 {
		t.Fatalf("negative stall %f", res.StallMs)
	}
	if res.GPUMemBytes > int64(res.D)*cluster.Default(8).GPUMemBytes {
		t.Fatalf("GPU memory accounting exceeds physical capacity")
	}
}

func TestSpansRecordedOnlyWithTrace(t *testing.T) {
	cfg := smallCfg(supernet.CVc3, 4, 8)
	plain := run(t, "naspipe", cfg)
	if plain.Spans != nil {
		t.Fatal("spans recorded without RecordTrace")
	}
	cfg.RecordTrace = true
	traced := run(t, "naspipe", cfg)
	// Every task (2 per subnet per stage) must have a span.
	want := 8 * 4 * 2
	if len(traced.Spans) != want {
		t.Fatalf("spans %d want %d", len(traced.Spans), want)
	}
	for _, s := range traced.Spans {
		if s.EndMs < s.StartMs || s.StallMs < 0 {
			t.Fatalf("malformed span %+v", s)
		}
	}
}

func TestRenderTimelineShape(t *testing.T) {
	cfg := smallCfg(supernet.CVc3, 3, 5)
	cfg.RecordTrace = true
	res := run(t, "naspipe", cfg)
	out := engine.RenderTimeline(res.Spans, 3, 60, res.TotalMs)
	lines := 0
	for _, c := range out {
		if c == '\n' {
			lines++
		}
	}
	if lines != 4 { // header + 3 stage rows
		t.Fatalf("timeline has %d lines:\n%s", lines, out)
	}
	if engine.RenderTimeline(nil, 2, 40, 0) != "(empty timeline)\n" {
		t.Fatal("empty timeline handling broken")
	}
}

func TestInjectedSubnetStream(t *testing.T) {
	sp := supernet.CVc3
	subs := supernet.Sample(sp, 99, 10)
	cfg := smallCfg(sp, 4, 0)
	cfg.Subnets = subs
	cfg.RecordTrace = true
	res := run(t, "naspipe", cfg)
	if res.Completed != 10 {
		t.Fatalf("injected stream: completed %d", res.Completed)
	}
	// The trace must reference exactly the injected subnets' layers.
	for _, ev := range res.Trace.Events {
		b, c := sp.BlockChoice(ev.Layer)
		if subs[ev.Subnet].Choices[b] != c {
			t.Fatal("trace references layers outside the injected stream")
		}
	}
}

func TestJitterChangesTimelineNotSemantics(t *testing.T) {
	// Definition 1's "potentially on a different cluster": perturb every
	// task's duration (different kernels, different silicon). The CSP
	// wall-clock schedule changes, but the per-layer access order — and
	// therefore the training result — must not.
	base := smallCfg(supernet.NLPc3, 4, 20)
	base.RecordTrace = true
	var traces []*trace.Trace
	var totals []float64
	for _, js := range []uint64{0, 1, 2} {
		cfg := base
		if js > 0 {
			cfg.TimingJitter = 0.3
			cfg.JitterSeed = js
		}
		res := run(t, "naspipe", cfg)
		if res.Deadlock {
			t.Fatalf("jitter seed %d deadlocked", js)
		}
		traces = append(traces, res.Trace)
		totals = append(totals, res.TotalMs)
	}
	if totals[1] == totals[0] && totals[2] == totals[0] {
		t.Fatal("jitter had no timing effect")
	}
	for i := 1; i < len(traces); i++ {
		if !traces[0].PerLayerEqual(traces[i]) {
			t.Fatalf("jitter seed %d changed the per-layer access order", i)
		}
		if v := traces[i].FirstViolation(); v != nil {
			t.Fatalf("jitter seed %d broke CSP: %+v", i, v)
		}
	}
}

func TestJitterChangesBSPSemantics(t *testing.T) {
	// The contrast: under BSP, timing perturbations can reorder accesses
	// — on some spaces/seeds the per-layer order survives by luck, so
	// assert the weaker, always-true property: the BSP trace violates
	// sequential order regardless of jitter, while CSP never does.
	cfg := smallCfg(supernet.NLPc3, 4, 24)
	cfg.RecordTrace = true
	cfg.TimingJitter = 0.3
	cfg.JitterSeed = 7
	res := run(t, "gpipe", cfg)
	if res.Trace.FirstViolation() == nil {
		t.Fatal("jittered BSP trace unexpectedly sequential-equivalent")
	}
}
