// Package transport abstracts stage-to-stage links for the distributed
// execution plane. The engine speaks Msg (engine-facing, typed payloads)
// to a Transport; two implementations exist:
//
//   - ChanTransport: in-process per-stage queues — the verbatim fast path
//     the single-process concurrent executor uses, pinned byte-identical
//     against channel-direct execution.
//   - Link: a length-prefixed TCP link with a versioned frame codec,
//     sequence-numbered delivery, cumulative acks with go-back-N
//     retransmission, receiver-side dedup, and an interruptible
//     exponential-backoff reconnect loop (internal/backoff — the same
//     policy the supervision plane restarts with). Coordinator and
//     worker processes (internal/distrib) compose Links into a star.
//
// The wire format is deliberately boring: every frame is
//
//	u32 length | u16 magic | u8 version | u8 type | i16 from | i16 to | u64 seq | payload
//
// with the length prefix counting everything after itself. Frames are
// versioned so a coordinator can refuse a worker built from a different
// tree instead of silently mis-parsing it.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire constants.
const (
	Magic       = 0x4E50 // "NP"
	Version     = 1
	headerBytes = 16      // magic..seq, after the length prefix
	MaxFrame    = 1 << 22 // 4 MiB hard ceiling on a frame body
)

// FrameType identifies a frame's payload. The zero value is invalid on
// purpose: an all-zero buffer never parses as a frame.
type FrameType uint8

const (
	FrameHello     FrameType = iota + 1 // worker → coordinator: identify (RunID, stage, incarnation)
	FrameAssign                         // coordinator → worker: stage assignment + job spec suffix
	FrameFwd                            // activation handoff: forward seq to the next stage
	FrameBwd                            // gradient handoff: backward seq + carried releases
	FrameNote                           // completion note broadcast (scheduler bookkeeping)
	FrameFetch                          // cross-stage prefetch request
	FrameCut                            // stage-0 consistency cut → coordinator checkpoint
	FrameHeartbeat                      // worker liveness + committed frontier (timer-driven)
	FrameDone                           // worker finished its stages (completed count + local trace)
	FrameFailed                         // worker hit a terminal error (structured crash fields)
	FrameAbort                          // coordinator → workers: tear the incarnation down
	FrameAck                            // cumulative ack of sequenced frames (reliability plane)

	frameTypeCount
)

var frameTypeNames = [frameTypeCount]string{
	"invalid", "hello", "assign", "fwd", "bwd", "note", "fetch", "cut",
	"heartbeat", "done", "failed", "abort", "ack",
}

func (t FrameType) String() string {
	if int(t) < len(frameTypeNames) {
		return frameTypeNames[t]
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// Sequenced reports whether the frame type rides the reliability plane:
// it is assigned a link seqno, buffered until cumulatively acked,
// retransmitted after reconnects, and deduplicated by the receiver.
// Timer-driven traffic (heartbeats, acks) and handshake frames are
// unsequenced so the sequenced-frame count stays a deterministic
// function of the engine's execution — that count is the fault plane's
// "after N frames" injection site.
func (t FrameType) Sequenced() bool {
	switch t {
	case FrameFwd, FrameBwd, FrameNote, FrameFetch, FrameCut, FrameDone, FrameFailed:
		return true
	}
	return false
}

// Frame is one wire frame. From/To are stage addresses: >= 0 is a
// pipeline stage, Broadcast (-1) fans out to every stage but From, and
// Coordinator (-2) addresses the hub of the star. Seq is the link seqno
// for sequenced types (assigned by Link.Send; zero on unsequenced
// frames) and the cumulative ack cursor on FrameAck.
type Frame struct {
	Type    FrameType
	From    int
	To      int
	Seq     uint64
	Payload []byte
}

// DecodeError is the structured parse failure: where in the buffer the
// frame went bad and why. Corrupt input yields a DecodeError, never a
// panic — FuzzFrameDecode holds the codec to that.
type DecodeError struct {
	Off    int
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("transport: bad frame at byte %d: %s", e.Off, e.Reason)
}

func decodeErrf(off int, format string, args ...any) error {
	return &DecodeError{Off: off, Reason: fmt.Sprintf(format, args...)}
}

// EncodedLen returns the full on-wire size of the frame, length prefix
// included.
func (f Frame) EncodedLen() int { return 4 + headerBytes + len(f.Payload) }

// AppendFrame appends the frame's wire encoding to dst.
func AppendFrame(dst []byte, f Frame) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(headerBytes+len(f.Payload)))
	dst = binary.BigEndian.AppendUint16(dst, Magic)
	dst = append(dst, Version, byte(f.Type))
	dst = binary.BigEndian.AppendUint16(dst, uint16(int16(f.From)))
	dst = binary.BigEndian.AppendUint16(dst, uint16(int16(f.To)))
	dst = binary.BigEndian.AppendUint64(dst, f.Seq)
	return append(dst, f.Payload...)
}

// ParseFrame decodes one frame from the front of b. It returns the
// frame and the number of bytes consumed. A prefix of a valid frame
// consumes 0 bytes with a nil error (read more and retry); anything
// structurally wrong returns a *DecodeError.
func ParseFrame(b []byte) (Frame, int, error) {
	if len(b) < 4 {
		return Frame{}, 0, nil
	}
	body := int(binary.BigEndian.Uint32(b))
	if body < headerBytes {
		return Frame{}, 0, decodeErrf(0, "length %d shorter than the %d-byte header", body, headerBytes)
	}
	if body > MaxFrame {
		return Frame{}, 0, decodeErrf(0, "length %d exceeds the %d-byte frame ceiling", body, MaxFrame)
	}
	if len(b) < 4+body {
		return Frame{}, 0, nil
	}
	h := b[4:]
	if m := binary.BigEndian.Uint16(h); m != Magic {
		return Frame{}, 0, decodeErrf(4, "magic %#04x, want %#04x", m, Magic)
	}
	if v := h[2]; v != Version {
		return Frame{}, 0, decodeErrf(6, "frame version %d, this build speaks %d", v, Version)
	}
	t := FrameType(h[3])
	if t == 0 || t >= frameTypeCount {
		return Frame{}, 0, decodeErrf(7, "unknown frame type %d", h[3])
	}
	f := Frame{
		Type: t,
		From: int(int16(binary.BigEndian.Uint16(h[4:]))),
		To:   int(int16(binary.BigEndian.Uint16(h[6:]))),
		Seq:  binary.BigEndian.Uint64(h[8:]),
	}
	if n := body - headerBytes; n > 0 {
		f.Payload = append([]byte(nil), h[headerBytes:headerBytes+n]...)
	}
	return f, 4 + body, nil
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFrame-headerBytes {
		return decodeErrf(0, "payload %d bytes exceeds the %d-byte frame ceiling", len(f.Payload), MaxFrame)
	}
	buf := AppendFrame(make([]byte, 0, f.EncodedLen()), f)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads exactly one frame from r, refusing bodies larger than
// the frame ceiling before allocating for them.
func ReadFrame(r io.Reader) (Frame, error) {
	var lb [4]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return Frame{}, err
	}
	body := int(binary.BigEndian.Uint32(lb[:]))
	if body < headerBytes || body > MaxFrame {
		return Frame{}, decodeErrf(0, "length %d outside [%d, %d]", body, headerBytes, MaxFrame)
	}
	buf := make([]byte, 4+body)
	copy(buf, lb[:])
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		return Frame{}, err
	}
	f, n, err := ParseFrame(buf)
	if err != nil {
		return Frame{}, err
	}
	if n != len(buf) {
		return Frame{}, decodeErrf(0, "frame consumed %d of %d buffered bytes", n, len(buf))
	}
	return f, nil
}
