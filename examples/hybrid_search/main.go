// Hybrid multi-space traversal — the paper's first envisioned future
// application (§5.5): NASPipe's runtime holds any number of causal
// dependency relations, so several search spaces can be explored through
// one pipeline simultaneously. Interleaving dilutes the dependency
// density (subnets from different spaces never share layers), raising
// pipeline utilization beyond either space alone while keeping training
// bitwise reproducible.
//
//	go run ./examples/hybrid_search
package main

import (
	"fmt"
	"log"

	"naspipe"
)

func main() {
	// Combine the two densest NLP spaces into one hybrid traverse.
	union, err := naspipe.NewSpaceUnion("NLP.c2+c3", naspipe.NLPc2, naspipe.NLPc3)
	if err != nil {
		log.Fatal(err)
	}
	const n = 120
	subs := union.Interleave(9, n)
	fmt.Printf("hybrid space %s: %d blocks, %d candidate bands (%d + %d choices)\n\n",
		union.Space.Name, union.Space.Blocks, len(union.Members),
		union.Members[0].Choices, union.Members[1].Choices)

	run := func(space naspipe.Space, injected []naspipe.Subnet, label string) {
		cfg := naspipe.Config{
			Space: space, Spec: naspipe.DefaultCluster(8), Seed: 9,
			NumSubnets: n, Subnets: injected, InflightLimit: 48,
		}
		res, err := naspipe.RunPolicy(cfg, "naspipe")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s bubble=%.2f  %6.0f subnets/hour  %6.0f samples/s\n",
			label, res.BubbleRatio, res.SubnetsPerHour, res.SamplesPerSec)
	}

	run(naspipe.NLPc2, nil, "NLP.c2 alone")
	run(naspipe.NLPc3, nil, "NLP.c3 alone")
	run(union.Space, subs, "hybrid c2+c3")

	fmt.Println("\ninterleaved streams from disjoint candidate bands never collide,")
	fmt.Println("so the CSP scheduler fills the dependency gaps of one space with")
	fmt.Println("work from the other — and every run stays bitwise reproducible.")
}
