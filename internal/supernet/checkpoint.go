package supernet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"naspipe/internal/layers"
	"naspipe/internal/tensor"
)

// checkpoint format: a small deterministic binary layout so trained
// supernets can be persisted and reloaded bitwise — pairing with the
// trace Record to support "train once, analyze forever" workflows
// (re-running searches or rankings over a frozen training result).
const (
	ckptMagic   = uint32(0x4e535057) // "NSPW"
	ckptVersion = uint32(1)
)

// Save writes the numeric supernet (geometry + every parameter bit) in a
// deterministic binary format.
func (n *Numeric) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	writeU32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	writeStr := func(s string) {
		writeU32(uint32(len(s)))
		bw.WriteString(s)
	}
	writeU32(ckptMagic)
	writeU32(ckptVersion)
	writeStr(n.Space.Name)
	writeU32(uint32(n.Space.Domain))
	writeU32(uint32(n.Space.Blocks))
	writeU32(uint32(n.Space.Choices))
	writeStr(n.Space.Dataset)
	writeU32(uint32(n.Dim))
	for _, l := range n.Layer {
		writeU32(uint32(l.Kind))
		for _, f := range l.W.Data {
			writeU32(math.Float32bits(f))
		}
		for _, f := range l.B {
			writeU32(math.Float32bits(f))
		}
	}
	return bw.Flush()
}

// LoadNumeric reads a checkpoint written by Save. The returned supernet
// is bitwise identical to the saved one.
func LoadNumeric(r io.Reader) (*Numeric, error) {
	br := bufio.NewReader(r)
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	readStr := func() (string, error) {
		l, err := readU32()
		if err != nil {
			return "", err
		}
		if l > 1<<16 {
			return "", fmt.Errorf("supernet: implausible string length %d in checkpoint", l)
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	magic, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("supernet: reading checkpoint: %w", err)
	}
	if magic != ckptMagic {
		return nil, fmt.Errorf("supernet: not a supernet checkpoint (magic %08x)", magic)
	}
	version, err := readU32()
	if err != nil {
		return nil, err
	}
	if version != ckptVersion {
		return nil, fmt.Errorf("supernet: unsupported checkpoint version %d", version)
	}
	name, err := readStr()
	if err != nil {
		return nil, err
	}
	domain, err := readU32()
	if err != nil {
		return nil, err
	}
	blocks, err := readU32()
	if err != nil {
		return nil, err
	}
	choices, err := readU32()
	if err != nil {
		return nil, err
	}
	dataset, err := readStr()
	if err != nil {
		return nil, err
	}
	dim, err := readU32()
	if err != nil {
		return nil, err
	}
	space := Space{
		Name: name, Domain: layers.Domain(domain),
		Blocks: int(blocks), Choices: int(choices), Dataset: dataset,
	}
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if dim == 0 || dim > 1<<12 {
		return nil, fmt.Errorf("supernet: implausible checkpoint dim %d", dim)
	}
	n := &Numeric{Space: space, Dim: int(dim), Layer: make([]*layers.Layer, space.NumLayers())}
	for i := range n.Layer {
		kind, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("supernet: truncated checkpoint at layer %d: %w", i, err)
		}
		l := &layers.Layer{Kind: layers.Kind(kind), Dim: int(dim)}
		l.W = tensor.NewMatrix(int(dim), int(dim))
		l.B = make([]float32, dim)
		for j := range l.W.Data {
			bits, err := readU32()
			if err != nil {
				return nil, fmt.Errorf("supernet: truncated weights at layer %d: %w", i, err)
			}
			l.W.Data[j] = math.Float32frombits(bits)
		}
		for j := range l.B {
			bits, err := readU32()
			if err != nil {
				return nil, fmt.Errorf("supernet: truncated biases at layer %d: %w", i, err)
			}
			l.B[j] = math.Float32frombits(bits)
		}
		n.Layer[i] = l
	}
	return n, nil
}
