// Command naspipe-train runs one pipeline supernet-training simulation
// and reports its metrics: throughput, bubble ratio, GPU utilization,
// cache hit rate, and memory footprints.
//
// Usage:
//
//	naspipe-train -space NLP.c1 -policy naspipe -gpus 8 -subnets 240
//	naspipe-train -space NLP.c1 -policy gpipe   # compare a baseline
//	naspipe-train -trace-out run.json           # Chrome trace (simulated time)
//	naspipe-train -debug-addr :6060             # pprof + live counters
//
// Fault injection and crash-consistent checkpoint/resume run on the
// concurrent (goroutine-per-stage) plane, selected automatically when
// any of these flags is given:
//
//	naspipe-train -faults "seed=7,drop=0.1" -checkpoint run.ckpt
//	naspipe-train -checkpoint run.ckpt -resume   # continue after a crash
//
// An injected crash exits with code 3 after the checkpoint is persisted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"naspipe"
	"naspipe/internal/telemetry"
)

func main() {
	var (
		space     = flag.String("space", "NLP.c1", "search space (Table 1 name)")
		policy    = flag.String("policy", "naspipe", "scheduling policy: "+strings.Join(naspipe.PolicyNames(), ", "))
		gpus      = flag.Int("gpus", 8, "GPU count (pipeline depth)")
		subnets   = flag.Int("subnets", 240, "subnets to train")
		seed      = flag.Uint64("seed", 42, "exploration seed")
		window    = flag.Int("window", 48, "pipeline admission window")
		saveTr    = flag.String("save-trace", "", "write the parameter-access trace record to this file for naspipe-replay")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace-event JSON of the run, stamped in simulated time (load in Perfetto / chrome://tracing)")
		eventsOut = flag.String("events-out", "", "write the raw telemetry stream as JSONL (inspect with naspipe-replay -events)")
		debugAddr = flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /debug/telemetry on this address for the process lifetime")
		progress  = flag.Duration("progress", 0, "print a live counter line at this interval (e.g. 200ms)")
		faultSpec = flag.String("faults", "", "deterministic fault plan for the concurrent plane, e.g. \"seed=7,drop=0.1,crashat=2:9:F\"")
		ckptPath  = flag.String("checkpoint", "", "persist crash-consistent checkpoints to this file (concurrent plane)")
		resume    = flag.Bool("resume", false, "resume from -checkpoint instead of starting fresh")
	)
	flag.Parse()

	sp, err := naspipe.SpaceByName(*space)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *faultSpec != "" || *ckptPath != "" || *resume {
		os.Exit(concurrentFaultRun(sp, *policy, *gpus, *subnets, *seed,
			*faultSpec, *ckptPath, *resume))
	}
	var bus *naspipe.TelemetryBus
	if *traceOut != "" || *eventsOut != "" || *debugAddr != "" || *progress > 0 {
		bus = naspipe.NewTelemetryBus(0)
	}
	if *debugAddr != "" {
		addr, shutdown, err := telemetry.ServeDebug(*debugAddr, bus)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/ (pprof, vars, telemetry)\n", addr)
	}
	stopProgress := telemetry.StartProgress(os.Stderr, bus, *progress)
	res, err := naspipe.RunPolicy(naspipe.Config{
		Space: sp, Spec: naspipe.DefaultCluster(*gpus),
		Seed: *seed, NumSubnets: *subnets, InflightLimit: *window,
		RecordTrace: *saveTr != "",
		Telemetry:   bus,
	}, *policy)
	stopProgress()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if res.Failed {
		fmt.Printf("%s cannot run %s on %d GPUs: %s\n", res.Policy, sp.Name, *gpus, res.FailReason)
		os.Exit(1)
	}

	fmt.Printf("system:            %s (%s on %d GPUs, reproducible=%v)\n",
		res.Policy, sp.Name, *gpus, mustPolicyReproducible(*policy))
	fmt.Printf("subnets trained:   %d in %.1f simulated seconds\n", res.Completed, res.TotalMs/1000)
	fmt.Printf("pipeline batch:    %d samples\n", res.Batch)
	fmt.Printf("throughput:        %.0f samples/s (%.0f subnets/hour)\n", res.SamplesPerSec, res.SubnetsPerHour)
	fmt.Printf("bubble ratio:      %.2f\n", res.BubbleRatio)
	fmt.Printf("total GPU ALU:     %.2fx of one GPU\n", res.ALUTotal)
	fmt.Printf("avg subnet exec:   %.2f s (bubble eliminated)\n", res.ExecMsAvg/1000)
	if res.CacheHitRate >= 0 {
		fmt.Printf("cache hit rate:    %.1f%%\n", 100*res.CacheHitRate)
		fmt.Printf("CPU (pinned) mem:  %.1f GB for the supernet stash\n", float64(res.CPUMemBytes)/(1<<30))
	} else {
		fmt.Printf("cache hit rate:    n/a (whole context resident in GPU)\n")
	}
	fmt.Printf("GPU memory:        %.1fx of one GPU across the cluster\n", res.GPUMemX)
	if res.MirrorBytes > 0 {
		fmt.Printf("mirror pushes:     %.1f GB of parameter updates\n", float64(res.MirrorBytes)/(1<<30))
	}
	if *saveTr != "" {
		rec := naspipe.NewTraceRecord(sp, *policy, *gpus, *seed, res.Completed, res.Trace)
		f, err := os.Create(*saveTr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		if err := rec.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("trace record:      %s (%d access events; replay with naspipe-replay -trace %s)\n",
			*saveTr, res.Trace.Len(), *saveTr)
	}
	if bus != nil {
		fmt.Printf("telemetry:         %s\n", bus.Snapshot().String())
		lines, err := telemetry.ExportFiles(bus, *traceOut, *eventsOut)
		for _, l := range lines {
			fmt.Println(l)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// concurrentFaultRun routes a fault-injected and/or checkpointed run to
// the concurrent (goroutine-per-stage) plane — the simulated clock has
// no goroutines to crash. Exit codes: 0 clean, 1 verification/run
// failure, 2 usage, 3 injected crash (resumable when -checkpoint set).
func concurrentFaultRun(sp naspipe.Space, policy string, gpus, subnets int, seed uint64, faultSpec, ckptPath string, resume bool) int {
	if policy != "naspipe" {
		fmt.Fprintf(os.Stderr, "naspipe-train: fault injection runs on the concurrent CSP plane; policy %q is simulated-only\n", policy)
		return 2
	}
	if resume && ckptPath == "" {
		fmt.Fprintln(os.Stderr, "naspipe-train: -resume requires -checkpoint")
		return 2
	}
	opts := []naspipe.RunnerOption{
		naspipe.WithExecutor(naspipe.ExecutorConcurrent),
		naspipe.WithTrace(true),
	}
	if faultSpec != "" {
		plan, err := naspipe.ParseFaultPlan(faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		opts = append(opts, naspipe.WithFaults(plan))
	}
	if ckptPath != "" {
		opts = append(opts, naspipe.WithCheckpoint(ckptPath))
	}
	r, err := naspipe.NewRunner(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := naspipe.Config{
		Space: sp, Spec: naspipe.DefaultCluster(gpus),
		Seed: seed, NumSubnets: subnets,
	}
	run := r.Run
	if resume {
		run = r.Resume
	}
	res, err := run(ctx, cfg)
	if err != nil {
		var crash *naspipe.CrashError
		if errors.As(err, &crash) {
			fmt.Fprintf(os.Stderr, "injected crash: %v\n", err)
			if ckptPath != "" {
				if ck, lerr := naspipe.LoadCheckpoint(ckptPath); lerr == nil {
					fmt.Fprintf(os.Stderr, "checkpoint: %s at cursor %d/%d, incarnation %d — rerun with -resume\n",
						ckptPath, ck.Cursor, ck.NumSubnets, ck.Incarnation)
				}
			}
			return 3
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("concurrent CSP plane: %s on %d GPUs, %d subnets completed", sp.Name, gpus, res.Completed)
	if res.BaseSeq > 0 {
		fmt.Printf(" (resumed at cursor %d)", res.BaseSeq)
	}
	fmt.Println()
	if res.ObservedTrace != nil {
		fmt.Printf("per-layer access order verified against the sequential reference (%d observed events)\n",
			len(res.ObservedTrace.Events))
	}
	if ckptPath != "" {
		if ck, lerr := naspipe.LoadCheckpoint(ckptPath); lerr == nil {
			fmt.Printf("checkpoint:        %s (cursor %d/%d, incarnation %d)\n",
				ckptPath, ck.Cursor, ck.NumSubnets, ck.Incarnation)
		}
	}
	return 0
}

func mustPolicyReproducible(name string) bool {
	p, err := naspipe.NewPolicy(name)
	if err != nil {
		return false
	}
	return p.Traits().Reproducible
}
