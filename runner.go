package naspipe

import (
	"context"
	"fmt"

	"naspipe/internal/engine"
	"naspipe/internal/parallel"
	"naspipe/internal/sched"
	"naspipe/internal/telemetry"
)

// ExecutorKind selects which execution plane a Runner drives.
type ExecutorKind int

const (
	// ExecutorSimulated runs on the deterministic discrete-event
	// simulator: full memory model (batch sizing, context cache, swap),
	// any scheduling policy, simulated time.
	ExecutorSimulated ExecutorKind = iota
	// ExecutorConcurrent runs on the goroutine-per-stage CSP executor:
	// every pipeline stage is a real goroutine, activations/gradients
	// flow over channels, and each stage admits work through its own CSP
	// scheduler. Wall-clock timing, race-clean, and — the point —
	// provably order-deterministic: the run fails if the observed
	// per-layer access order ever diverges from the sequential reference.
	// Only the "naspipe" (CSP) policy is available on this plane.
	ExecutorConcurrent
)

// String names the executor kind for reports and errors.
func (k ExecutorKind) String() string {
	switch k {
	case ExecutorSimulated:
		return "simulated"
	case ExecutorConcurrent:
		return "concurrent"
	}
	return fmt.Sprintf("ExecutorKind(%d)", int(k))
}

// Runner is the configured entry point for pipeline training runs. Build
// one with NewRunner and functional options; the zero configuration is
// the paper's default (CSP policy on the simulated plane):
//
//	r, err := naspipe.NewRunner(
//	        naspipe.WithPolicy("naspipe"),
//	        naspipe.WithExecutor(naspipe.ExecutorConcurrent),
//	        naspipe.WithTrace(true),
//	)
//	res, err := r.Run(ctx, cfg)
//
// A Runner is immutable after construction and safe for concurrent use;
// it builds a fresh policy instance per run.
type Runner struct {
	policy      string
	executor    ExecutorKind
	trace       bool
	traceSet    bool
	parallelism int
	cacheFactor float64
	cacheSet    bool
	predictor   bool
	tel         *telemetry.Bus
}

// RunnerOption configures a Runner under construction.
type RunnerOption func(*Runner)

// WithPolicy selects the scheduling policy by name (see PolicyNames).
// Default: "naspipe".
func WithPolicy(name string) RunnerOption {
	return func(r *Runner) { r.policy = name }
}

// WithExecutor selects the execution plane. Default: ExecutorSimulated.
func WithExecutor(kind ExecutorKind) RunnerOption {
	return func(r *Runner) { r.executor = kind }
}

// WithTrace forces parameter-access trace recording on or off for every
// run, overriding Config.RecordTrace. Unset, Config.RecordTrace decides.
func WithTrace(record bool) RunnerOption {
	return func(r *Runner) { r.trace = record; r.traceSet = true }
}

// WithParallelism bounds the worker pool RunMany uses to fan out
// independent runs. Zero (the default) means GOMAXPROCS.
func WithParallelism(n int) RunnerOption {
	return func(r *Runner) { r.parallelism = n }
}

// WithCache gives every concurrent-plane stage a prefetching layer cache
// provisioned at factor × the stage's average subnet-partition footprint
// (the paper's configuration is 3: executing + evicting + prefetched
// subnet). Factor 0 disables the cache. Overrides Config.ConcurrentMem.
// Concurrent executor only.
func WithCache(factor float64) RunnerOption {
	return func(r *Runner) { r.cacheFactor = factor; r.cacheSet = true }
}

// WithPredictor enables the Algorithm 3 context predictor on the
// concurrent plane: each stage forecasts upcoming tasks (including
// pending-backward records carried upstream with gradients) and prefetches
// their contexts. Requires a cache; if WithCache is not given, the paper's
// factor 3 is used. Concurrent executor only.
func WithPredictor(on bool) RunnerOption {
	return func(r *Runner) { r.predictor = on }
}

// WithTelemetry attaches a telemetry bus: every run publishes its
// structured event stream (task spans, scheduler decisions, cache
// traffic, transfer flows) to it, on either executor, overriding
// Config.Telemetry. Nil (the default) leaves telemetry to the Config.
// Span timestamps are offsets from the bus's construction, so a bus
// created just before the run gives the cleanest timelines.
func WithTelemetry(bus *telemetry.Bus) RunnerOption {
	return func(r *Runner) { r.tel = bus }
}

// NewRunner validates the option set and returns an immutable Runner.
func NewRunner(opts ...RunnerOption) (*Runner, error) {
	r := &Runner{policy: "naspipe"}
	for _, opt := range opts {
		opt(r)
	}
	if _, err := sched.New(r.policy); err != nil {
		return nil, err
	}
	if r.executor == ExecutorConcurrent && r.policy != "naspipe" {
		return nil, fmt.Errorf("naspipe: the concurrent executor implements CSP only; policy %q requires the simulated executor", r.policy)
	}
	if r.executor != ExecutorSimulated && r.executor != ExecutorConcurrent {
		return nil, fmt.Errorf("naspipe: unknown executor %v", r.executor)
	}
	if r.parallelism < 0 {
		return nil, fmt.Errorf("naspipe: negative parallelism %d", r.parallelism)
	}
	if r.cacheSet && r.cacheFactor < 0 {
		return nil, fmt.Errorf("naspipe: negative cache factor %v", r.cacheFactor)
	}
	if (r.cacheSet || r.predictor) && r.executor != ExecutorConcurrent {
		return nil, fmt.Errorf("naspipe: WithCache/WithPredictor configure the concurrent memory plane; the %v executor has its own memory model", r.executor)
	}
	if r.predictor && r.cacheSet && r.cacheFactor == 0 {
		return nil, fmt.Errorf("naspipe: the predictor requires a cache; WithCache(0) disables it")
	}
	if r.predictor && !r.cacheSet {
		r.cacheFactor = 3 // the paper's default footprint
		r.cacheSet = true
	}
	return r, nil
}

// Run executes one pipeline training run on the configured plane. It
// honors ctx between pipeline steps; on cancellation it returns the
// partial Result together with ctx.Err().
func (r *Runner) Run(ctx context.Context, cfg Config) (Result, error) {
	if r.traceSet {
		cfg.RecordTrace = r.trace
	}
	if r.tel != nil {
		cfg.Telemetry = r.tel
	}
	switch r.executor {
	case ExecutorConcurrent:
		if r.cacheSet {
			cfg.ConcurrentMem = engine.MemPlaneConfig{
				CacheFactor: r.cacheFactor,
				Predictor:   r.predictor,
			}
		}
		return engine.RunConcurrent(ctx, cfg)
	default:
		p, err := sched.New(r.policy)
		if err != nil {
			return Result{}, err
		}
		return engine.RunContext(ctx, cfg, p)
	}
}

// RunMany fans the configurations out over a bounded worker pool (see
// WithParallelism) and returns results in input order — deterministically,
// regardless of worker count or completion order. The first error by
// input index is returned; on cancellation the partial results come back
// with ctx.Err().
func (r *Runner) RunMany(ctx context.Context, cfgs []Config) ([]Result, error) {
	workers := parallel.Workers(r.parallelism, len(cfgs))
	return parallel.Map(ctx, workers, len(cfgs), func(i int) (Result, error) {
		return r.Run(ctx, cfgs[i])
	})
}
