package hybrid

import (
	"testing"
	"testing/quick"

	"naspipe/internal/cluster"
	"naspipe/internal/data"
	"naspipe/internal/engine"
	"naspipe/internal/sched"
	"naspipe/internal/supernet"
	"naspipe/internal/train"
)

func mustUnion(t testing.TB, members ...supernet.Space) *Union {
	t.Helper()
	u, err := NewUnion("hybrid", members...)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestNewUnionGeometry(t *testing.T) {
	u := mustUnion(t, supernet.NLPc2, supernet.NLPc3)
	if u.Space.Blocks != 48 || u.Space.Choices != 48+24 {
		t.Fatalf("union geometry %dx%d", u.Space.Blocks, u.Space.Choices)
	}
	if u.Offset(0) != 0 || u.Offset(1) != 48 {
		t.Fatalf("offsets %d %d", u.Offset(0), u.Offset(1))
	}
}

func TestNewUnionRejectsMismatches(t *testing.T) {
	if _, err := NewUnion("x", supernet.NLPc2); err == nil {
		t.Fatal("single member must be rejected")
	}
	if _, err := NewUnion("x", supernet.NLPc2, supernet.CVc2); err == nil {
		t.Fatal("mixed domains must be rejected")
	}
	small := supernet.NLPc2.Scaled(10, 4)
	if _, err := NewUnion("x", supernet.NLPc2, small); err == nil {
		t.Fatal("mismatched block counts must be rejected")
	}
}

func TestInterleaveRoundRobinAndBands(t *testing.T) {
	u := mustUnion(t, supernet.NLPc2, supernet.NLPc3)
	subs := u.Interleave(1, 10)
	for i, sub := range subs {
		if sub.Seq != i {
			t.Fatalf("subnet %d has seq %d", i, sub.Seq)
		}
		m, err := u.MemberOf(sub)
		if err != nil {
			t.Fatal(err)
		}
		if m != i%2 {
			t.Fatalf("subnet %d from member %d, want %d", i, m, i%2)
		}
	}
	cross, err := u.CrossMemberShares(subs)
	if err != nil {
		t.Fatal(err)
	}
	if cross {
		t.Fatal("cross-member sharing must be impossible (disjoint bands)")
	}
}

func TestInterleaveMatchesSoloStreams(t *testing.T) {
	// Each member's projected sub-stream must equal the stream a solo run
	// of that member would sample under the same seed.
	u := mustUnion(t, supernet.NLPc2, supernet.NLPc3)
	subs := u.Interleave(7, 12)
	solo := [][]supernet.Subnet{
		supernet.Sample(supernet.NLPc2, 7, 6),
		supernet.Sample(supernet.NLPc3, 7, 6),
	}
	idx := []int{0, 0}
	for _, sub := range subs {
		m, local, err := u.Project(sub)
		if err != nil {
			t.Fatal(err)
		}
		want := solo[m][idx[m]]
		idx[m]++
		for b := range want.Choices {
			if local.Choices[b] != want.Choices[b] {
				t.Fatalf("member %d stream diverges from solo sampling", m)
			}
		}
	}
}

func TestHybridRunsAndIsReproducible(t *testing.T) {
	// The headline: a hybrid traverse trains reproducibly under CSP —
	// bitwise-equal weights across cluster sizes.
	u := mustUnion(t, supernet.NLPc2.Scaled(8, 3), supernet.NLPc3.Scaled(8, 2))
	subs := u.Interleave(3, 20)
	cfg := train.Config{Space: u.Space, Dim: 8, Seed: 3, BatchSize: 2, LR: 0.05, Dataset: data.WNMT}
	var sums []uint64
	for _, d := range []int{2, 4} {
		p, _ := sched.New("naspipe")
		res, _ := engine.Run(engine.Config{
			Space: u.Space, Spec: cluster.Default(d), Seed: 3,
			Subnets: subs, RecordTrace: true,
		}, p)
		if res.Failed || res.Deadlock {
			t.Fatalf("hybrid run failed at D=%d: %+v", d, res.FailReason)
		}
		num, err := train.Replay(cfg, subs, res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, num.Checksum)
	}
	if sums[0] != sums[1] {
		t.Fatal("hybrid training not bitwise reproducible across GPU counts")
	}
}

func TestHybridDilutesDependencies(t *testing.T) {
	// Interleaving two spaces halves the effective dependency density the
	// scheduler faces: the hybrid's bubble ratio must undercut the denser
	// member's solo bubble.
	run := func(space supernet.Space, subs []supernet.Subnet) engine.Result {
		p, _ := sched.New("naspipe")
		res, _ := engine.Run(engine.Config{
			Space: space, Spec: cluster.Default(8), Seed: 5,
			NumSubnets: 120, Subnets: subs, InflightLimit: 48,
		}, p)
		return res
	}
	solo := run(supernet.NLPc3, nil)
	u := mustUnion(t, supernet.NLPc3, supernet.NLPc2)
	hybridRes := run(u.Space, u.Interleave(5, 120))
	if hybridRes.Failed || solo.Failed {
		t.Fatal("runs failed")
	}
	if hybridRes.BubbleRatio >= solo.BubbleRatio {
		t.Fatalf("hybrid bubble %.3f not below NLP.c3 solo %.3f",
			hybridRes.BubbleRatio, solo.BubbleRatio)
	}
}

// Property: every interleaved subnet projects back into a valid member
// subnet, and band membership alternates round-robin.
func TestQuickInterleaveValid(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%30 + 2
		u, err := NewUnion("q", supernet.NLPc2.Scaled(6, 3), supernet.NLPc3.Scaled(6, 4))
		if err != nil {
			return false
		}
		subs := u.Interleave(seed, n)
		for i, sub := range subs {
			m, local, err := u.Project(sub)
			if err != nil || m != i%2 {
				return false
			}
			member := u.Members[m]
			for _, c := range local.Choices {
				if c < 0 || c >= member.Choices {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
