package trace

import (
	"testing"

	"naspipe/internal/supernet"
)

func add(t *Trace, layer int, subnet int, kind AccessKind) {
	t.Append(0, supernet.LayerID(layer), subnet, 0, kind)
}

func TestLayerOrderNotation(t *testing.T) {
	var tr Trace
	add(&tr, 1, 2, Read)
	add(&tr, 1, 2, Write)
	add(&tr, 1, 5, Read)
	add(&tr, 1, 5, Write)
	add(&tr, 1, 7, Read)
	add(&tr, 1, 7, Write)
	if got := tr.LayerOrder(1); got != "2F-2B-5F-5B-7F-7B" {
		t.Fatalf("got %q", got)
	}
}

func TestSequentialOrderHelper(t *testing.T) {
	if got := SequentialOrder([]int{7, 2, 5}); got != "2F-2B-5F-5B-7F-7B" {
		t.Fatalf("got %q", got)
	}
}

func TestSequentialEquivalentAccepts(t *testing.T) {
	var tr Trace
	// Layer 1: subnets 0 and 2 sequentially; layer 3: subnet 1 alone.
	add(&tr, 1, 0, Read)
	add(&tr, 3, 1, Read)
	add(&tr, 1, 0, Write)
	add(&tr, 3, 1, Write)
	add(&tr, 1, 2, Read)
	add(&tr, 1, 2, Write)
	if !tr.SequentialEquivalent() {
		t.Fatalf("violation: %+v", tr.FirstViolation())
	}
}

func TestViolationInterleavedReads(t *testing.T) {
	var tr Trace
	// BSP pattern: 2F-5F-2B-5B on a shared layer.
	add(&tr, 1, 2, Read)
	add(&tr, 1, 5, Read)
	add(&tr, 1, 2, Write)
	add(&tr, 1, 5, Write)
	v := tr.FirstViolation()
	if v == nil {
		t.Fatal("interleaved accesses must violate")
	}
	if v.Layer != 1 {
		t.Fatalf("violation on layer %d", v.Layer)
	}
}

func TestViolationOutOfOrderSubnets(t *testing.T) {
	var tr Trace
	add(&tr, 1, 5, Read)
	add(&tr, 1, 5, Write)
	add(&tr, 1, 2, Read)
	add(&tr, 1, 2, Write)
	if tr.FirstViolation() == nil {
		t.Fatal("descending subnet order must violate")
	}
}

func TestViolationOddAccess(t *testing.T) {
	var tr Trace
	add(&tr, 1, 2, Read)
	if tr.FirstViolation() == nil {
		t.Fatal("dangling read must violate")
	}
}

func TestEqualIgnoresTimestamps(t *testing.T) {
	var a, b Trace
	a.Append(1.0, 1, 0, 0, Read)
	a.Append(2.0, 1, 0, 1, Write)
	b.Append(9.0, 1, 0, 3, Read)
	b.Append(11.0, 1, 0, 2, Write)
	if !a.Equal(&b) {
		t.Fatal("Equal must ignore timestamps and stages")
	}
	b.Append(12.0, 2, 1, 0, Read)
	if a.Equal(&b) {
		t.Fatal("different lengths compared equal")
	}
}

func TestPerLayerEqual(t *testing.T) {
	var a, b Trace
	// Same per-layer orders, different global interleavings.
	add(&a, 1, 0, Read)
	add(&a, 2, 1, Read)
	add(&a, 1, 0, Write)
	add(&a, 2, 1, Write)

	add(&b, 2, 1, Read)
	add(&b, 1, 0, Read)
	add(&b, 2, 1, Write)
	add(&b, 1, 0, Write)
	if a.Equal(&b) {
		t.Fatal("global orders differ; Equal should be false")
	}
	if !a.PerLayerEqual(&b) {
		t.Fatal("per-layer orders agree; PerLayerEqual should be true")
	}
	var c Trace
	add(&c, 1, 0, Read)
	add(&c, 1, 0, Write)
	if a.PerLayerEqual(&c) {
		t.Fatal("different layer sets compared per-layer equal")
	}
}

func TestLayersSortedDistinct(t *testing.T) {
	var tr Trace
	add(&tr, 5, 0, Read)
	add(&tr, 1, 0, Read)
	add(&tr, 5, 0, Write)
	got := tr.Layers()
	if len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("Layers = %v", got)
	}
}
