package distrib

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"naspipe"
	"naspipe/internal/engine"
	"naspipe/internal/fault"
	"naspipe/internal/telemetry"
	"naspipe/internal/transport"
)

// WorkerConfig parameterizes one stage worker. Addr/RunID/Stage/
// Incarnation come from the launcher (flags, for the real binary);
// everything else has serviceable defaults.
type WorkerConfig struct {
	Addr        string
	RunID       string
	Stage       int
	Incarnation int

	// DialTimeout bounds each connection attempt (0 = 2s); the dial
	// itself retries under the shared backoff policy until ctx ends.
	DialTimeout time.Duration
	// AssignTimeout bounds the wait for the coordinator's assignment
	// after connecting (0 = 10s).
	AssignTimeout time.Duration
	// Linger bounds the wait for the coordinator's release after the
	// worker reports Done or Failed (0 = 10s) — long enough for the
	// reliable-delivery plane to drain, short enough that an orphaned
	// worker still exits.
	Linger time.Duration
	// HeartbeatEvery is the liveness beacon period (0 = 50ms).
	HeartbeatEvery time.Duration

	Tel *telemetry.Bus
	Log func(format string, args ...any)
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.AssignTimeout <= 0 {
		c.AssignTimeout = 10 * time.Second
	}
	if c.Linger <= 0 {
		c.Linger = 10 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 50 * time.Millisecond
	}
	return c
}

func (c WorkerConfig) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// errAborted is the cause a coordinator Abort cancels the run with.
type abortError struct{ reason string }

func (e *abortError) Error() string { return "distrib: aborted by coordinator: " + e.reason }

// Aborted reports whether err is a coordinator-issued abort — the
// expected way a worker dies during fleet teardown. The stage binary
// maps it to the resumable exit code: the coordinator is relaunching
// the fleet, not giving up.
func Aborted(err error) bool {
	var a *abortError
	return errors.As(err, &a)
}

// starTransport adapts the worker's single coordinator link to the
// engine's Transport interface. Sends frame straight onto the link
// (the coordinator routes by destination stage); receives are demuxed
// into per-stage queues by the worker's control loop.
type starTransport struct {
	link *transport.Link
	qs   map[int]chan transport.Msg
}

func (t *starTransport) Send(m transport.Msg) error { return t.link.Send(m.Frame()) }

func (t *starTransport) Recv(stage int) <-chan transport.Msg { return t.qs[stage] }

// Close is a no-op: the worker owns the link's lifecycle.
func (t *starTransport) Close() error { return nil }

// cutSender forwards stage-0 consistency cuts to the coordinator's
// checkpoint recorder as reliable FrameCut messages; cuts and the
// final Done frame share one ordered sequence, so the coordinator
// always has the last cut before it sees the result.
type cutSender struct {
	link  *transport.Link
	stage int
}

func (s cutSender) Snapshot(c fault.Cut) error {
	return s.link.Send(transport.Frame{
		Type: transport.FrameCut, From: s.stage, To: transport.Coordinator,
		Payload: transport.EncodeCut(c),
	})
}

// RunWorker joins the run at wc.Addr, executes the assigned stage, and
// reports the outcome. It returns nil after a clean finish, the
// engine's error otherwise. A cancelled ctx is deliberately silent —
// no Failed frame, no farewell — because that is what real death looks
// like; the coordinator must notice on its own.
func RunWorker(ctx context.Context, wc WorkerConfig) error {
	wc = wc.withDefaults()
	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	// Every fresh connection introduces itself before carrying
	// anything else, so reconnects re-identify automatically and the
	// coordinator can attach the socket to the right link.
	hello := transport.Hello{RunID: wc.RunID, Stage: wc.Stage, Incarnation: wc.Incarnation}.Encode()
	link := transport.NewLink(transport.LinkConfig{
		Local: wc.Stage, Peer: transport.Coordinator,
		Redial: func(ctx context.Context) (net.Conn, error) {
			d := net.Dialer{Timeout: wc.DialTimeout}
			conn, err := d.DialContext(ctx, "tcp", wc.Addr)
			if err != nil {
				return nil, err
			}
			if err := transport.WriteFrame(conn, transport.Frame{
				Type: transport.FrameHello, From: wc.Stage, To: transport.Coordinator,
				Payload: hello,
			}); err != nil {
				conn.Close()
				return nil, err
			}
			return conn, nil
		},
		Tel: wc.Tel,
	})
	defer link.Close()
	if err := link.Connect(ctx); err != nil {
		return fmt.Errorf("distrib: worker %d connecting to %s: %w", wc.Stage, wc.Addr, err)
	}
	wc.logf("worker %d: connected to %s (incarnation %d)", wc.Stage, wc.Addr, wc.Incarnation)

	// Wait for the assignment; data frames racing ahead of it (another
	// stage started first) are buffered and replayed into the demux.
	assign, pending, err := awaitAssign(ctx, wc, link)
	if err != nil {
		return err
	}
	cfg, err := workerEngineConfig(wc, assign)
	if err != nil {
		return err
	}
	n := cfg.NumSubnets
	if len(cfg.Subnets) > 0 {
		n = len(cfg.Subnets)
	}
	wc.logf("worker %d: assigned D=%d cursor=%d (%d subnets to run)", wc.Stage, assign.D, assign.Cursor, n)

	st := &starTransport{link: link, qs: map[int]chan transport.Msg{
		wc.Stage: make(chan transport.Msg, engine.DistQueueCap(assign.D, n)),
	}}
	cfg.Dist = &engine.DistConfig{Transport: st, Stages: []int{wc.Stage}}
	probe := &engine.RunProbe{}
	cfg.Probe = probe
	if wc.Stage == 0 {
		cfg.Checkpoint = cutSender{link: link, stage: 0}
	}

	release := make(chan struct{}, 1)
	go demux(ctx, cancel, link, st, pending, release)
	go heartbeatLoop(ctx, wc, link, probe)

	res, err := engine.RunConcurrent(ctx, cfg)
	if err == nil {
		done := transport.Done{Stage: wc.Stage, Completed: res.Completed}
		if res.ObservedTrace != nil {
			done.Trace = res.ObservedTrace.Events
		}
		if serr := link.Send(transport.Frame{
			Type: transport.FrameDone, From: wc.Stage, To: transport.Coordinator,
			Payload: done.Encode(),
		}); serr != nil {
			return fmt.Errorf("distrib: worker %d reporting done: %w", wc.Stage, serr)
		}
		wc.logf("worker %d: done (%d completed), waiting for release", wc.Stage, res.Completed)
		linger(ctx, wc, release)
		return nil
	}
	if ctx.Err() != nil {
		// Killed or aborted: die the way a killed process does — if the
		// coordinator aborted us it already knows, and if we were
		// killed, silence is the test.
		return context.Cause(ctx)
	}
	failed := transport.Failed{Stage: wc.Stage, Seq: -1, Incarnation: wc.Incarnation, Kind: "error", Msg: err.Error()}
	var crash *fault.CrashError
	if errors.As(err, &crash) {
		failed.Stage, failed.Seq = crash.Stage, crash.Seq
		failed.Incarnation, failed.Kind = crash.Incarnation, "crash"
	}
	if serr := link.Send(transport.Frame{
		Type: transport.FrameFailed, From: wc.Stage, To: transport.Coordinator,
		Payload: failed.Encode(),
	}); serr == nil {
		linger(ctx, wc, release)
	}
	return err
}

// awaitAssign reads frames until the coordinator's assignment arrives,
// buffering any engine traffic that raced ahead of it.
func awaitAssign(ctx context.Context, wc WorkerConfig, link *transport.Link) (transport.Assign, []transport.Frame, error) {
	var pending []transport.Frame
	deadline := time.NewTimer(wc.AssignTimeout)
	defer deadline.Stop()
	for {
		select {
		case <-ctx.Done():
			return transport.Assign{}, nil, context.Cause(ctx)
		case <-deadline.C:
			return transport.Assign{}, nil, fmt.Errorf("distrib: worker %d: no assignment within %v", wc.Stage, wc.AssignTimeout)
		case f, ok := <-link.In():
			if !ok {
				return transport.Assign{}, nil, fmt.Errorf("distrib: worker %d: link closed before assignment", wc.Stage)
			}
			switch f.Type {
			case transport.FrameAssign:
				a, err := transport.DecodeAssign(f.Payload)
				if err != nil {
					return transport.Assign{}, nil, fmt.Errorf("distrib: worker %d: bad assignment: %w", wc.Stage, err)
				}
				return a, pending, nil
			case transport.FrameAbort:
				a, _ := transport.DecodeAbort(f.Payload)
				return transport.Assign{}, nil, &abortError{reason: a.Reason}
			default:
				pending = append(pending, f)
			}
		}
	}
}

// workerEngineConfig turns an assignment into the engine configuration
// for this worker's slice of the run: the JobSpec's engine config, the
// concurrent-plane overrides the Runner would have applied, and the
// resume suffix renumbered from the committed cursor — the same
// SeqBase mapping Runner.Resume performs, so fault schedules, traces,
// and checkpoint cuts all stay globally addressed.
func workerEngineConfig(wc WorkerConfig, a transport.Assign) (engine.Config, error) {
	var spec naspipe.JobSpec
	if err := json.Unmarshal(a.Spec, &spec); err != nil {
		return engine.Config{}, fmt.Errorf("distrib: worker %d: assignment spec: %w", wc.Stage, err)
	}
	if err := spec.Validate(); err != nil {
		return engine.Config{}, fmt.Errorf("distrib: worker %d: assignment spec: %w", wc.Stage, err)
	}
	cfg, err := spec.Config()
	if err != nil {
		return engine.Config{}, err
	}
	// The coordinator's merge verification needs every worker's
	// observed trace, and the engine's local CSP check is the first
	// line of defense — tracing is not optional on this plane.
	cfg.RecordTrace = true
	if spec.CacheFactor != nil || spec.Predictor {
		factor := 3.0 // the paper's default footprint
		if spec.CacheFactor != nil {
			factor = *spec.CacheFactor
		}
		cfg.ConcurrentMem = engine.MemPlaneConfig{CacheFactor: factor, Predictor: spec.Predictor}
	}
	if spec.Faults != "" {
		plan, perr := fault.ParsePlan(spec.Faults)
		if perr != nil {
			return engine.Config{}, fmt.Errorf("distrib: worker %d: fault plan: %w", wc.Stage, perr)
		}
		cfg.Faults = plan
	}
	if a.D > 0 && a.D != cfg.Spec.GPUs {
		// Elastic resume at a different depth: re-partition the suffix.
		cfg.Spec = naspipe.DefaultCluster(a.D)
	}
	if a.Stage != wc.Stage {
		return engine.Config{}, fmt.Errorf("distrib: worker %d assigned stage %d — launcher and coordinator disagree", wc.Stage, a.Stage)
	}
	if wc.Stage < 0 || wc.Stage >= cfg.Spec.GPUs {
		return engine.Config{}, fmt.Errorf("distrib: worker stage %d outside the %d-stage pipeline", wc.Stage, cfg.Spec.GPUs)
	}
	full := cfg.ResolveSubnets()
	if a.Cursor < 0 || a.Cursor > len(full) {
		return engine.Config{}, fmt.Errorf("distrib: worker %d: cursor %d out of range [0, %d]", wc.Stage, a.Cursor, len(full))
	}
	suffix := make([]naspipe.Subnet, len(full)-a.Cursor)
	for i := range suffix {
		suffix[i] = full[a.Cursor+i]
		suffix[i].Seq = i
	}
	cfg.Subnets = suffix
	cfg.NumSubnets = len(suffix)
	cfg.SeqBase = a.Cursor
	cfg.FaultIncarnation = a.Incarnation
	return cfg, nil
}

// demux is the worker's inbound frame loop: engine traffic into the
// stage queue, Abort into run cancellation, release into the linger
// channel. It is the sole reader of link.In() once the run starts.
func demux(ctx context.Context, cancel context.CancelCauseFunc, link *transport.Link,
	st *starTransport, pending []transport.Frame, release chan struct{}) {
	handle := func(f transport.Frame) {
		switch f.Type {
		case transport.FrameFwd, transport.FrameBwd, transport.FrameNote, transport.FrameFetch:
			m, err := transport.MsgFromFrame(f)
			if err != nil {
				cancel(fmt.Errorf("distrib: corrupt %s frame: %w", f.Type, err))
				return
			}
			q := st.qs[f.To]
			if q == nil {
				return // not ours; a confused relay, drop
			}
			select {
			case q <- m:
			case <-ctx.Done():
			}
		case transport.FrameAbort:
			a, _ := transport.DecodeAbort(f.Payload)
			select {
			case release <- struct{}{}:
			default:
			}
			cancel(&abortError{reason: a.Reason})
		}
	}
	for _, f := range pending {
		handle(f)
	}
	for {
		select {
		case <-ctx.Done():
			return
		case f, ok := <-link.In():
			if !ok {
				return
			}
			handle(f)
		}
	}
}

// heartbeatLoop publishes the worker's liveness and progress on a
// timer. Heartbeats are unsequenced: losing a few is fine, and they
// must not perturb the deterministic sequenced-frame counts the fault
// plane keys on.
func heartbeatLoop(ctx context.Context, wc WorkerConfig, link *transport.Link, probe *engine.RunProbe) {
	t := time.NewTicker(wc.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			frontier, tasks := probe.Progress()
			_ = link.Send(transport.Frame{
				Type: transport.FrameHeartbeat, From: wc.Stage, To: transport.Coordinator,
				Payload: transport.Heartbeat{Stage: wc.Stage, Frontier: frontier, Tasks: tasks}.Encode(),
			})
		}
	}
}

// linger waits for the coordinator's release (or gives up) so the
// reliable-delivery plane can drain the final frames before the
// process exits.
func linger(ctx context.Context, wc WorkerConfig, release chan struct{}) {
	select {
	case <-release:
	case <-ctx.Done():
	case <-time.After(wc.Linger):
		wc.logf("worker %d: no release within %v, exiting", wc.Stage, wc.Linger)
	}
}
