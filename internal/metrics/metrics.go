// Package metrics provides the units and table rendering the experiment
// harness uses to print the paper's tables and figure series.
package metrics

import (
	"fmt"
	"strings"
)

// Gigabytes renders a byte count like the paper's CPU-memory column
// ("57.8G").
func Gigabytes(b int64) string {
	if b == 0 {
		return "0"
	}
	return fmt.Sprintf("%.1fG", float64(b)/float64(1<<30))
}

// Params renders a parameter byte count as a parameter-count label, the
// paper's "P.S." units (float32 parameters: bytes/4), e.g. "1327M" or
// "14.8B".
func Params(bytes int64) string {
	params := float64(bytes) / 4
	switch {
	// The paper prints subnet contexts in M up to four digits ("1327M")
	// and whole supernets in B ("14.8B"); switch units at 10B-ish.
	case params >= 5e9:
		return fmt.Sprintf("%.1fB", params/1e9)
	case params >= 1e6:
		return fmt.Sprintf("%.0fM", params/1e6)
	default:
		return fmt.Sprintf("%.0fK", params/1e3)
	}
}

// Factor renders a normalized multiple like the paper's "7.8x".
func Factor(x float64) string { return fmt.Sprintf("%.1fx", x) }

// Percent renders a ratio as "94.3%".
func Percent(x float64) string {
	if x < 0 {
		return "N/A"
	}
	return fmt.Sprintf("%.1f%%", 100*x)
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render returns the aligned text table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// StageContention aggregates one pipeline stage's scheduling-pressure
// counters on the concurrent execution plane: how often the stage worker
// ran tasks, parked with nothing admissible, applied cross-stage
// dependency notifications, and scanned a queue where every forward was
// CSP-blocked. The simulated plane leaves these nil (a simulated stage
// never contends — it is woken exactly when something is runnable).
type StageContention struct {
	Stage        int
	Tasks        int64 // forward + backward tasks executed
	Parks        int64 // blocking waits with nothing admissible
	Notes        int64 // write/finish notifications applied
	BlockedScans int64 // admission scans finding every queued forward blocked
	Carried      int64 // pending-backward records announced upstream (Algorithm 3)
}

// ContentionTable renders per-stage contention counters with totals.
func ContentionTable(cs []StageContention) string {
	tb := NewTable("per-stage contention (concurrent execution plane)",
		"Stage", "Tasks", "Parks", "Notes", "Blocked scans", "Carried")
	var tasks, parks, notes, blocked, carried int64
	for _, c := range cs {
		tb.AddRow(c.Stage, c.Tasks, c.Parks, c.Notes, c.BlockedScans, c.Carried)
		tasks += c.Tasks
		parks += c.Parks
		notes += c.Notes
		blocked += c.BlockedScans
		carried += c.Carried
	}
	tb.AddRow("total", tasks, parks, notes, blocked, carried)
	return tb.Render()
}

// StageCache aggregates one pipeline stage's memory-context counters on
// the concurrent execution plane: the prefetching layer cache's hits,
// misses, prefetch traffic, attributable drops, and compute stalls. The
// shape mirrors memctx.Stats (the simulated plane's manager), flattened
// here so table/bench rendering stays dependency-free.
type StageCache struct {
	Stage             int
	Hits              int
	Misses            int
	Prefetches        int
	LatePrefetches    int
	DroppedPrefetches int
	EvictionsForced   int
	OverCapacity      int
	SwapInBytes       int64
	SwapOutBytes      int64
	PeakBytes         int64
	StallMs           float64
}

// HitRate returns the stage's hits/(hits+misses), or 0 with no accesses
// (an idle stage has earned no hits; render such cells as N/A).
func (c StageCache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// CacheTable renders per-stage memory-context counters with totals and
// an aggregate hit rate. Stages with no accesses render their hit-rate
// cell as N/A rather than 0% or 100%.
func CacheTable(cs []StageCache) string {
	tb := NewTable("per-stage memory context (concurrent execution plane)",
		"Stage", "Hits", "Misses", "Hit rate", "Prefetches", "Late", "Dropped", "Evictions", "Stall (ms)", "Peak")
	var tot StageCache
	for _, c := range cs {
		rate := "N/A"
		if c.Hits+c.Misses > 0 {
			rate = Percent(c.HitRate())
		}
		tb.AddRow(c.Stage, c.Hits, c.Misses, rate, c.Prefetches,
			c.LatePrefetches, c.DroppedPrefetches, c.EvictionsForced,
			fmt.Sprintf("%.2f", c.StallMs), Gigabytes(c.PeakBytes))
		tot.Hits += c.Hits
		tot.Misses += c.Misses
		tot.Prefetches += c.Prefetches
		tot.LatePrefetches += c.LatePrefetches
		tot.DroppedPrefetches += c.DroppedPrefetches
		tot.EvictionsForced += c.EvictionsForced
		tot.StallMs += c.StallMs
		tot.PeakBytes += c.PeakBytes
	}
	totalRate := "N/A"
	if tot.Hits+tot.Misses > 0 {
		totalRate = Percent(tot.HitRate())
	}
	tb.AddRow("total", tot.Hits, tot.Misses, totalRate, tot.Prefetches,
		tot.LatePrefetches, tot.DroppedPrefetches, tot.EvictionsForced,
		fmt.Sprintf("%.2f", tot.StallMs), Gigabytes(tot.PeakBytes))
	return tb.Render()
}

// Series is a named sequence of (label, value) points, used for figure
// reproduction output.
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// Add appends a point.
func (s *Series) Add(label string, value float64) {
	s.Labels = append(s.Labels, label)
	s.Values = append(s.Values, value)
}

// Render prints the series with a crude text bar per point (scaled to the
// series maximum) so figure shapes are visible in terminal output.
func (s *Series) Render() string {
	var max float64
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s --\n", s.Name)
	for i, v := range s.Values {
		bar := 0
		if max > 0 {
			bar = int(40 * v / max)
		}
		fmt.Fprintf(&b, "%-12s %10.2f  %s\n", s.Labels[i], v, strings.Repeat("#", bar))
	}
	return b.String()
}
