package experiments

import (
	"context"
	"fmt"

	"naspipe/internal/analysis"
	"naspipe/internal/cluster"
	"naspipe/internal/engine"
	"naspipe/internal/hybrid"
	"naspipe/internal/metrics"
	"naspipe/internal/moe"
	"naspipe/internal/sched"
	"naspipe/internal/supernet"
	"naspipe/internal/train"
)

// ExtHybrid demonstrates the paper's §5.5 "hybrid traverse of multiple
// search spaces": two NLP spaces interleave through one CSP pipeline;
// cross-space subnets never share layers, so the hybrid outperforms
// either space alone while remaining reproducible.
func ExtHybrid(ctx context.Context, o Options) string {
	o = o.withDefaults()
	u, err := hybrid.NewUnion("NLP.c2+c3", supernet.NLPc2, supernet.NLPc3)
	if err != nil {
		return fmt.Sprintf("ext-hybrid: %v\n", err)
	}
	tb := metrics.NewTable("Extension: hybrid traverse of multiple search spaces (§5.5, 8 GPUs)",
		"Traverse", "Bubble", "Subnets/hour", "Samples/s")
	run := func(space supernet.Space, subs []supernet.Subnet, label string) {
		p, _ := sched.New("naspipe")
		res, err := engine.RunContext(ctx, engine.Config{
			Space: space, Spec: clusterSpec(o), Seed: o.Seed,
			NumSubnets: o.Subnets, Subnets: subs, InflightLimit: o.Inflight,
		}, p)
		if err != nil || res.Failed {
			tb.AddRow(label, "-", "-", "(failed)")
			return
		}
		tb.AddRow(label, fmt.Sprintf("%.2f", res.BubbleRatio),
			fmt.Sprintf("%.0f", res.SubnetsPerHour), fmt.Sprintf("%.0f", res.SamplesPerSec))
	}
	run(supernet.NLPc2, nil, "NLP.c2 alone")
	run(supernet.NLPc3, nil, "NLP.c3 alone")
	run(u.Space, u.Interleave(o.Seed, o.Subnets), "hybrid c2+c3")
	tb.AddNote("interleaved streams from disjoint candidate bands dilute causal dependencies")
	return tb.Render()
}

// ExtMoE demonstrates the paper's §5.5 dynamic-network / MoE direction:
// popularity-skewed routing densifies dependencies; the CSP pipeline
// degrades gracefully and stays deterministic.
func ExtMoE(ctx context.Context, o Options) string {
	o = o.withDefaults()
	tb := metrics.NewTable("Extension: MoE-style skewed routing (§5.5, NLP.c1, 8 GPUs)",
		"Routing skew", "Dep. rate", "Bubble", "Subnets/hour")
	for _, skew := range []float64{0, 0.5, 1.0, 2.0} {
		subs, err := moe.Stream(moe.StreamConfig{Space: supernet.NLPc1, Seed: o.Seed, Skew: skew}, o.Subnets)
		if err != nil {
			return fmt.Sprintf("ext-moe: %v\n", err)
		}
		p, _ := sched.New("naspipe")
		res, err := engine.RunContext(ctx, engine.Config{
			Space: supernet.NLPc1, Spec: clusterSpec(o), Seed: o.Seed,
			Subnets: subs, InflightLimit: o.Inflight,
		}, p)
		if err != nil || res.Failed {
			tb.AddRow(fmt.Sprintf("%.1f", skew), "-", "-", "(failed)")
			continue
		}
		tb.AddRow(fmt.Sprintf("%.1f", skew),
			fmt.Sprintf("%.2f", moe.DependencyRate(subs)),
			fmt.Sprintf("%.2f", res.BubbleRatio),
			fmt.Sprintf("%.0f", res.SubnetsPerHour))
	}
	tb.AddNote("skew 0 = SPOS uniform sampling; hotter experts serialize more steps")
	return tb.Render()
}

// ExtAnalysis quantifies causal-order violations (the mechanism behind
// Table 3's accuracy differences): per schedule and cluster size, the
// fraction of parameter reads that missed at least one earlier subnet's
// update. CSP is 0 by construction; BSP/ASP staleness grows with the
// cluster size, which is exactly why their results are irreproducible.
func ExtAnalysis(ctx context.Context, o Options) string {
	o = o.withDefaults()
	sp := supernet.NLPc3 // dependency-dense
	tb := metrics.NewTable("Extension: stale-read analysis of the three disciplines (NLP.c3)",
		"System", "GPUs", "Reads", "Stale reads", "Missed updates", "Worst read")
	for _, policy := range []string{"naspipe", "gpipe", "pipedream"} {
		for _, d := range []int{4, 8} {
			oo := o
			oo.Subnets = 48
			res := runPerf(ctx, oo, sp, policy, d, true)
			if res.Failed {
				tb.AddRow(policyLabel(policy), d, "-", "-", "-", "(failed)")
				continue
			}
			rep := analysis.Staleness(res.Trace)
			tb.AddRow(policyLabel(policy), d, rep.Reads,
				fmt.Sprintf("%d (%.1f%%)", rep.StaleReads, 100*rep.StaleFraction()),
				rep.MissedWrites, rep.MaxMissed)
		}
	}
	deps := analysis.Dependencies(supernet.Sample(sp, o.Seed, 48))
	tb.AddNote("stream dependency structure: %v", deps)
	return tb.Render()
}

// ExtHardware contrasts the paper's 11 GB RTX 2080Ti testbed with a
// modern 80 GB A100 cluster on NLP.c1: with abundant GPU memory the
// baselines' batch handicap vanishes and NASPipe's advantage reduces to
// scheduling + reproducibility — locating the regime where context
// switching is the decisive mechanism.
func ExtHardware(ctx context.Context, o Options) string {
	o = o.withDefaults()
	tb := metrics.NewTable("Extension: hardware sensitivity on NLP.c1 (8 GPUs)",
		"Testbed", "System", "Batch", "Samples/s", "Bubble", "Cache Hit")
	for _, hw := range []struct {
		name string
		spec cluster.Spec
	}{
		{"RTX 2080Ti (11G)", cluster.Default(o.GPUs)},
		{"A100 (80G)", cluster.A100(o.GPUs)},
	} {
		for _, policy := range []string{"naspipe", "gpipe"} {
			p, _ := sched.New(policy)
			res, err := engine.RunContext(ctx, engine.Config{
				Space: supernet.NLPc1, Spec: hw.spec, Seed: o.Seed,
				NumSubnets: o.Subnets, InflightLimit: o.Inflight,
			}, p)
			if err != nil || res.Failed {
				tb.AddRow(hw.name, policyLabel(policy), "-", "-", "-", "(failed)")
				continue
			}
			tb.AddRow(hw.name, policyLabel(policy), res.Batch,
				fmt.Sprintf("%.0f", res.SamplesPerSec),
				fmt.Sprintf("%.2f", res.BubbleRatio),
				metrics.Percent(res.CacheHitRate))
		}
	}
	tb.AddNote("reproducibility is hardware-independent; the batch advantage is memory-pressure-dependent")
	return tb.Render()
}

// ExtJitter is the sharpest form of Definition 1: simulate "a different
// cluster" by perturbing every task's duration ±30% and check whether the
// training *result* survives. Under CSP the per-layer access order is
// timing-invariant, so the replayed weights are bitwise identical for
// every jitter seed; under ASP (PipeDream) the interleaving is a
// function of timing, so the weights drift. (BSP is timing-robust but
// cluster-size-dependent — its failure mode is Table 3's, not this one.)
func ExtJitter(ctx context.Context, o Options) string {
	o = o.withDefaults()
	sp := supernet.NLPc3.Scaled(o.NumericBlocks, 3)
	subs := supernet.Sample(sp, o.Seed, o.NumericSubnets)
	cfg := o.numericCfg(supernet.NLPc3)
	cfg.Space = sp
	tb := metrics.NewTable("Extension: timing-perturbation reproducibility (±30% task jitter)",
		"System", "Jitter seed", "Total (sim ms)", "Weights checksum", "Bitwise equal")
	for _, policy := range []string{"naspipe", "pipedream"} {
		var first uint64
		for i, js := range []uint64{0, 11, 23} {
			p, _ := sched.New(policy)
			ecfg := engine.Config{
				Space: sp, Spec: cluster.Default(o.GPUs), Seed: o.Seed,
				Subnets: subs, RecordTrace: true, InflightLimit: o.Inflight,
			}
			if js > 0 {
				ecfg.TimingJitter = 0.3
				ecfg.JitterSeed = js
			}
			res, err := engine.RunContext(ctx, ecfg, p)
			if err != nil {
				tb.AddRow(policyLabel(policy), js, "-", "-", fmt.Sprintf("error: %v", err))
				continue
			}
			num, err := train.Replay(cfg, subs, res.Trace)
			if err != nil {
				tb.AddRow(policyLabel(policy), js, "-", "-", fmt.Sprintf("error: %v", err))
				continue
			}
			equal := "—"
			if i == 0 {
				first = num.Checksum
			} else if num.Checksum == first {
				equal = "yes"
			} else {
				equal = "NO"
			}
			tb.AddRow(policyLabel(policy), js, fmt.Sprintf("%.0f", res.TotalMs),
				fmt.Sprintf("%016x", num.Checksum), equal)
		}
	}
	tb.AddNote("jitter models foreign hardware: per-task durations scaled by deterministic factors in [0.7, 1.3]")
	return tb.Render()
}
