// Command naspipe-search runs the full NAS loop at numeric scale: train a
// supernet with NASPipe's reproducible CSP schedule, then run the paper's
// default search strategy (regularized evolution) over the trained
// weights to discover the best architecture.
//
// Usage:
//
//	naspipe-search -space CV.c1 -steps 300 -generations 64
package main

import (
	"flag"
	"fmt"
	"os"

	"naspipe"
)

func main() {
	var (
		space   = flag.String("space", "NLP.c1", "search space (Table 1 name)")
		steps   = flag.Int("steps", 300, "supernet training steps")
		gpus    = flag.Int("gpus", 8, "GPU count for the training simulation")
		seed    = flag.Uint64("seed", 42, "seed")
		blocks  = flag.Int("blocks", 12, "scaled choice blocks")
		choices = flag.Int("choices", 8, "scaled choices per block")
		pop     = flag.Int("population", 16, "evolution population")
		gens    = flag.Int("generations", 48, "evolution generations")
		saveNet = flag.String("save-net", "", "write the trained supernet checkpoint to this file")
	)
	flag.Parse()

	base, err := naspipe.SpaceByName(*space)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(int(naspipe.ExitUsage))
	}
	sp := base.Scaled(*blocks, *choices)
	cfg := naspipe.TrainConfig{Space: sp, Dim: 12, Seed: *seed, BatchSize: 4, LR: 0.05}

	fmt.Printf("training supernet %s (%d blocks x %d choices) for %d steps under CSP...\n",
		sp.Name, *blocks, *choices, *steps)
	res, err := naspipe.RunPolicy(naspipe.Config{
		Space: sp, Spec: naspipe.DefaultCluster(*gpus), Seed: *seed,
		NumSubnets: *steps, RecordTrace: true,
	}, "naspipe")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(int(naspipe.ExitUsage))
	}
	subs := naspipe.SampleSubnets(sp, *seed, *steps)
	num, err := naspipe.TrainReplay(cfg, subs, res.Trace)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(int(naspipe.ExitUsage))
	}
	fmt.Printf("trained: final weights checksum %016x (simulated %.1fs on %d GPUs, %.0f subnets/hour)\n",
		num.Checksum, res.TotalMs/1000, *gpus, res.SubnetsPerHour)

	if *saveNet != "" {
		f, err := os.Create(*saveNet)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(int(naspipe.ExitUsage))
		}
		if err := num.Net.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(int(naspipe.ExitUsage))
		}
		f.Close()
		fmt.Printf("supernet checkpoint saved to %s\n", *saveNet)
	}

	sc := naspipe.DefaultSearch(*seed)
	sc.Population = *pop
	sc.Generations = *gens
	sr, err := naspipe.Search(cfg, num.Net, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(int(naspipe.ExitUsage))
	}
	fmt.Printf("evolution: %d candidates evaluated over %d generations\n", sr.Evaluated, *gens)
	fmt.Printf("best architecture: choices=%v\n", sr.Best.Subnet.Choices)
	fmt.Printf("best validation loss %.4f, score %.2f\n", sr.Best.Loss, sr.Best.Score)
	fmt.Println("re-run this command: the search result is exactly repeatable (CSP + fixed seeds).")
}
