// Chrome trace-event export: one Perfetto-loadable JSON file per run.
//
// Mapping: pid = pipeline stage, tid = virtual worker within the stage
// (compute / prefetcher / modeled PCIe). Task spans become "X" complete
// events — a preempted task shows as split slices, a PCIe stall as a
// nested slice inside its task — scheduler and cache point events become
// "i" instants, and cross-stage activation/gradient transfers become
// "s"/"f" flow arrows from the sending slice to the receiving one.
//
// Open the file at https://ui.perfetto.dev or chrome://tracing.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the trace-event JSON array. Fields follow
// the Trace Event Format spec; timestamps and durations are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int32          `json:"pid"`
	Tid   int32          `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

func workerName(tid int32) string {
	switch tid {
	case WorkerStage:
		return "worker"
	case WorkerMem:
		return "prefetcher"
	case WorkerPCIe:
		return "pcie"
	}
	return fmt.Sprintf("worker-%d", tid)
}

// spanName labels a slice: tasks by kind+subnet ("F12", "B12"), stalls
// and everything else by op.
func spanName(ev Event) string {
	if ev.Op.Category() == "task" && ev.Subnet >= 0 {
		return fmt.Sprintf("%s%d", KindString(ev.Kind), ev.Subnet)
	}
	if ev.Op == OpCacheStall {
		return "stall"
	}
	return ev.Op.String()
}

// spanKey matches a PhaseEnd to its open PhaseBegin: same slice family on
// the same (pid, tid). Task start/resume pairs with preempt/complete;
// stall begin pairs with stall end.
type spanKey struct {
	cat    string
	subnet int32
	kind   int8
}

func keyOf(ev Event) spanKey {
	return spanKey{cat: ev.Op.Category(), subnet: ev.Subnet, kind: ev.Kind}
}

// WriteChromeTrace renders the event stream as a Chrome trace-event JSON
// array. Events are globally sorted by timestamp, so per-thread
// timestamps are monotonic by construction; unmatched span ends are
// dropped (a truncated ring can lose a begin) and unclosed begins are
// closed at the last observed timestamp so a cancelled run still loads.
func WriteChromeTrace(w io.Writer, events []Event) error {
	evs := make([]Event, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TsNs < evs[j].TsNs })

	var out []chromeEvent
	us := func(ns int64) float64 { return float64(ns) / 1e3 }

	// Metadata: name processes (stages) and threads (workers).
	type pt struct{ pid, tid int32 }
	seenPid := map[int32]bool{}
	seenPT := map[pt]bool{}
	for _, ev := range evs {
		if !seenPid[ev.Stage] {
			seenPid[ev.Stage] = true
			out = append(out, chromeEvent{Name: "process_name", Ph: "M", Pid: ev.Stage, Tid: 0,
				Args: map[string]any{"name": fmt.Sprintf("stage %d", ev.Stage)}})
			out = append(out, chromeEvent{Name: "process_sort_index", Ph: "M", Pid: ev.Stage, Tid: 0,
				Args: map[string]any{"sort_index": ev.Stage}})
		}
		k := pt{ev.Stage, ev.Worker}
		if !seenPT[k] {
			seenPT[k] = true
			out = append(out, chromeEvent{Name: "thread_name", Ph: "M", Pid: ev.Stage, Tid: ev.Worker,
				Args: map[string]any{"name": workerName(ev.Worker)}})
		}
	}

	// Pair spans into X events; pass instants and flows through.
	type open struct {
		ev  Event
		key spanKey
	}
	stacks := map[pt][]open{}
	lastTs := int64(0)
	emitX := func(b Event, endNs int64) {
		dur := us(endNs) - us(b.TsNs)
		if dur < 0 {
			dur = 0
		}
		out = append(out, chromeEvent{
			Name: spanName(b), Cat: b.Op.Category(), Ph: "X",
			Ts: us(b.TsNs), Dur: dur, Pid: b.Stage, Tid: b.Worker,
			Args: argsOf(b),
		})
	}
	for _, ev := range evs {
		if ev.TsNs > lastTs {
			lastTs = ev.TsNs
		}
		k := pt{ev.Stage, ev.Worker}
		switch ev.Phase {
		case PhaseBegin:
			stacks[k] = append(stacks[k], open{ev, keyOf(ev)})
		case PhaseEnd:
			st := stacks[k]
			want := keyOf(ev)
			for i := len(st) - 1; i >= 0; i-- {
				if st[i].key == want {
					emitX(st[i].ev, ev.TsNs)
					stacks[k] = append(st[:i], st[i+1:]...)
					break
				}
			}
		case PhaseInstant:
			out = append(out, chromeEvent{
				Name: ev.Op.String(), Cat: ev.Op.Category(), Ph: "i",
				Ts: us(ev.TsNs), Pid: ev.Stage, Tid: ev.Worker, Scope: "t",
				Args: argsOf(ev),
			})
		case PhaseFlowBegin:
			out = append(out, chromeEvent{
				Name: "transfer", Cat: "flow", Ph: "s",
				Ts: us(ev.TsNs), Pid: ev.Stage, Tid: ev.Worker,
				ID: fmt.Sprintf("%#x", ev.Arg), Args: argsOf(ev),
			})
		case PhaseFlowEnd:
			out = append(out, chromeEvent{
				Name: "transfer", Cat: "flow", Ph: "f", BP: "e",
				Ts: us(ev.TsNs), Pid: ev.Stage, Tid: ev.Worker,
				ID: fmt.Sprintf("%#x", ev.Arg), Args: argsOf(ev),
			})
		}
	}
	// Close anything still open (cancelled or truncated run).
	for _, st := range stacks {
		for _, o := range st {
			emitX(o.ev, lastTs)
		}
	}

	sort.SliceStable(out, func(i, j int) bool {
		mi, mj := out[i].Ph == "M", out[j].Ph == "M"
		if mi != mj {
			return mi
		}
		return out[i].Ts < out[j].Ts
	})

	// One JSON array, one event per line: loadable by Perfetto, diffable
	// by humans.
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ce := range out {
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		bs, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		if _, err := w.Write(bs); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}

func argsOf(ev Event) map[string]any {
	args := map[string]any{"op": ev.Op.String()}
	if ev.Subnet >= 0 {
		args["subnet"] = ev.Subnet
	}
	if ev.Kind != KindNone {
		args["kind"] = KindString(ev.Kind)
	}
	if ev.Arg != 0 {
		args["arg"] = ev.Arg
	}
	return args
}

// TraceStats summarizes a validated Chrome trace file.
type TraceStats struct {
	Complete  int // "X" slices
	Instant   int // "i" points
	FlowBegin int // "s" arrows
	FlowEnd   int // "f" arrows
	Stages    int // distinct pids
	TaskX     int // "X" slices in category "task"
}

// ValidateChromeTrace parses a trace written by WriteChromeTrace and
// checks the exporter's invariants: well-formed JSON, at least one
// complete event, non-negative durations, per-(pid,tid) monotonic
// timestamps in file order, and balanced flow arrows.
func ValidateChromeTrace(r io.Reader) (TraceStats, error) {
	var raw []chromeEvent
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return TraceStats{}, fmt.Errorf("telemetry: trace is not a JSON event array: %w", err)
	}
	var st TraceStats
	type pt struct{ pid, tid int32 }
	lastTs := map[pt]float64{}
	pids := map[int32]bool{}
	flows := map[string]int{}
	for i, ce := range raw {
		if ce.Ph == "M" {
			continue
		}
		pids[ce.Pid] = true
		k := pt{ce.Pid, ce.Tid}
		if prev, ok := lastTs[k]; ok && ce.Ts < prev {
			return st, fmt.Errorf("telemetry: event %d (pid %d tid %d) goes back in time: %v < %v",
				i, ce.Pid, ce.Tid, ce.Ts, prev)
		}
		lastTs[k] = ce.Ts
		switch ce.Ph {
		case "X":
			if ce.Dur < 0 {
				return st, fmt.Errorf("telemetry: event %d has negative duration %v", i, ce.Dur)
			}
			st.Complete++
			if ce.Cat == "task" {
				st.TaskX++
			}
		case "i":
			st.Instant++
		case "s":
			st.FlowBegin++
			flows[ce.ID]++
		case "f":
			st.FlowEnd++
			flows[ce.ID]--
		default:
			return st, fmt.Errorf("telemetry: event %d has unknown phase %q", i, ce.Ph)
		}
	}
	st.Stages = len(pids)
	if st.Complete == 0 {
		return st, fmt.Errorf("telemetry: trace has no complete events")
	}
	for id, n := range flows {
		if n != 0 {
			return st, fmt.Errorf("telemetry: flow %s is unbalanced (%+d)", id, n)
		}
	}
	return st, nil
}
