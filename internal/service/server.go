package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"naspipe"
	"naspipe/internal/obs"
	"naspipe/internal/telemetry"
)

// Server exposes a Scheduler over the versioned HTTP/JSON API. It is a
// plain http.Handler; mount it on any mux or serve it with Serve.
// WithObs adds the observability plane (GET /metrics, HTTP-layer
// metrics, structured request logs); WithDebug mounts a debug handler
// under /debug/.
type Server struct {
	sched *Scheduler
	// followPoll is how often the events endpoint re-checks a live bus
	// in follow mode (test hook; 0 = 100ms).
	followPoll time.Duration

	logger  *slog.Logger
	metrics http.Handler // GET /metrics exposition (nil = route absent)
	debug   http.Handler // /debug/ mount (nil = route absent)
	reqSeq  atomic.Uint64

	httpReqs *obs.CounterVec // naspipe_service_requests_total{route,method,code}
	httpDur  *obs.Histogram  // naspipe_service_request_seconds
	inflight *obs.Gauge      // naspipe_service_inflight_requests
}

// NewServer wraps a scheduler in the API surface.
func NewServer(s *Scheduler) *Server { return &Server{sched: s} }

// WithObs attaches the observability plane: reg backs GET /metrics and
// hosts the HTTP-layer instruments; logger, when non-nil, receives one
// structured record per request, each carrying a per-request ID and —
// on job routes — the job ID, completing the correlation chain from an
// API call to the daemon's scheduler and supervision logs. Call before
// serving; returns s for chaining.
func (s *Server) WithObs(reg *obs.Registry, logger *slog.Logger) *Server {
	s.logger = logger
	s.metrics = reg.Handler()
	s.httpReqs = reg.CounterVec("naspipe_service_requests_total",
		"HTTP requests served, by route template, method, and status code.", "route", "method", "code")
	s.httpDur = reg.Histogram("naspipe_service_request_seconds",
		"HTTP request service time (streaming routes excluded).", nil)
	s.inflight = reg.Gauge("naspipe_service_inflight_requests",
		"HTTP requests currently in flight.")
	return s
}

// WithDebug mounts h under /debug/ (typically
// telemetry.NewDebugMux(sched.TelemetrySnapshot): pprof, expvar, and
// the live telemetry snapshot). Returns s for chaining.
func (s *Server) WithDebug(h http.Handler) *Server {
	s.debug = h
	return s
}

// Serve binds addr (host:port; :0 picks a free port), serves the API on
// it, and returns the bound address and a shutdown func. The pattern
// matches telemetry.ServeDebug so CLIs treat both the same way.
func Serve(addr string, s *Scheduler) (string, func(), error) {
	return ServeHandler(addr, NewServer(s))
}

// ServeHandler is Serve for a pre-built handler — the daemon uses it to
// serve a Server configured with WithObs/WithDebug.
func ServeHandler(addr string, h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("service: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
	return ln.Addr().String(), shutdown, nil
}

// writeJSON emits a JSON response body with status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr maps an error to its wire form. *APIError passes through
// with its canonical HTTP status; anything else is a 500 internal.
func writeErr(w http.ResponseWriter, err error) {
	ae, ok := err.(*APIError)
	if !ok {
		ae = &APIError{Code: CodeInternal, Message: err.Error()}
	}
	status := http.StatusInternalServerError
	switch ae.Code {
	case CodeInvalidSpec:
		status = http.StatusBadRequest
	case CodeQuotaExceeded, CodeBackpressure:
		status = http.StatusTooManyRequests
		ra := ae.RetryAfterSec
		if ra < 1 {
			ra = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(ra))
	case CodeNotFound, CodeUnsupportedVersion:
		status = http.StatusNotFound
	case CodeConflict:
		status = http.StatusConflict
	case CodeShuttingDown:
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorBody{Error: ae})
}

// statusWriter records the response status for metrics and request
// logs while passing Flush through (the events follow stream needs it).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() { flush(w.ResponseWriter) }

// routeLabel collapses a request path to its route template so the
// requests_total label set stays bounded no matter how many jobs exist.
func routeLabel(path string) (route, jobID string) {
	path = strings.TrimSuffix(path, "/")
	switch {
	case path == "" || path == "/":
		return "/", ""
	case path == "/metrics":
		return "/metrics", ""
	case strings.HasPrefix(path, "/debug"):
		return "/debug", ""
	}
	rest, ok := strings.CutPrefix(path, "/"+APIVersion)
	if !ok || (rest != "" && rest[0] != '/') {
		return "unversioned", ""
	}
	rest = strings.TrimPrefix(rest, "/")
	switch {
	case rest == "version", rest == "jobs":
		return "/" + APIVersion + "/" + rest, ""
	case strings.HasPrefix(rest, "jobs/"):
		id, verb, _ := strings.Cut(strings.TrimPrefix(rest, "jobs/"), "/")
		tmpl := "/" + APIVersion + "/jobs/{id}"
		if verb != "" {
			tmpl += "/" + verb
		}
		return tmpl, id
	}
	return "other", ""
}

// ServeHTTP is the observability middleware around the router: it
// stamps a request ID, serves /metrics and /debug/ when mounted,
// records the HTTP-layer metrics, and emits one structured log record
// per request (with the job ID on job routes).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	route, jobID := routeLabel(r.URL.Path)
	switch {
	case route == "/metrics" && s.metrics != nil:
		s.metrics.ServeHTTP(w, r)
		return
	case route == "/debug" && s.debug != nil:
		s.debug.ServeHTTP(w, r)
		return
	}
	start := time.Now()
	reqID := fmt.Sprintf("r%06d", s.reqSeq.Add(1))
	sw := &statusWriter{ResponseWriter: w}
	s.inflight.Inc()
	s.route(sw, r)
	s.inflight.Dec()
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	dur := time.Since(start)
	s.httpReqs.With(route, r.Method, strconv.Itoa(sw.status)).Inc()
	s.httpDur.Observe(dur.Seconds())
	if s.logger != nil {
		attrs := []any{"req", reqID, "method", r.Method, "path", r.URL.Path,
			"route", route, "status", sw.status, "dur_ms", dur.Milliseconds()}
		if jobID != "" {
			attrs = append(attrs, "job", jobID)
		}
		s.logger.Info("http request", attrs...)
	}
}

// route dispatches the versioned API. Version negotiation is explicit:
// a path outside /v1/ gets a structured 404 naming the supported
// versions, never a silent fallback to a different behavior.
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimSuffix(r.URL.Path, "/")
	if path == "" {
		writeJSON(w, http.StatusOK, VersionInfo{Version: APIVersion, Supported: []string{APIVersion}})
		return
	}
	rest, ok := strings.CutPrefix(path, "/"+APIVersion)
	if !ok || (rest != "" && rest[0] != '/') {
		writeErr(w, &APIError{Code: CodeUnsupportedVersion,
			Message: fmt.Sprintf("path %q is outside the supported API versions [%s]", r.URL.Path, APIVersion)})
		return
	}
	rest = strings.TrimPrefix(rest, "/")
	switch {
	case rest == "version" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, VersionInfo{Version: APIVersion, Supported: []string{APIVersion}})
	case rest == "jobs":
		s.jobs(w, r)
	case strings.HasPrefix(rest, "jobs/"):
		s.job(w, r, strings.TrimPrefix(rest, "jobs/"))
	default:
		writeErr(w, &APIError{Code: CodeNotFound, Message: fmt.Sprintf("no route %q under /%s", rest, APIVersion)})
	}
}

// jobs handles the collection: POST submit, GET list.
func (s *Server) jobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			writeErr(w, &APIError{Code: CodeInvalidSpec, Message: err.Error()})
			return
		}
		var spec naspipe.JobSpec
		dec := json.NewDecoder(strings.NewReader(string(body)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeErr(w, &APIError{Code: CodeInvalidSpec, Message: fmt.Sprintf("malformed JobSpec: %v", err)})
			return
		}
		st, err := s.sched.Submit(spec)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, st)
	case http.MethodGet:
		stats := s.sched.Stats()
		writeJSON(w, http.StatusOK, JobList{
			Jobs:  s.sched.List(r.URL.Query().Get("tenant")),
			Stats: &stats,
		})
	default:
		w.Header().Set("Allow", "GET, POST")
		writeErr(w, &APIError{Code: CodeNotFound, Message: fmt.Sprintf("method %s not supported on /%s/jobs", r.Method, APIVersion)})
	}
}

// job handles one job's subtree: status, cancel, resume, events,
// checkpoint.
func (s *Server) job(w http.ResponseWriter, r *http.Request, rest string) {
	id, verb, _ := strings.Cut(rest, "/")
	switch {
	case verb == "" && r.Method == http.MethodGet:
		st, err := s.sched.Get(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case verb == "cancel" && r.Method == http.MethodPost:
		st, err := s.sched.Cancel(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case verb == "resume" && r.Method == http.MethodPost:
		st, err := s.sched.Resume(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	case verb == "events" && r.Method == http.MethodGet:
		s.events(w, r, id)
	case verb == "checkpoint" && r.Method == http.MethodGet:
		path, err := s.sched.CheckpointFile(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		buf, rerr := os.ReadFile(path)
		if rerr != nil {
			writeErr(w, &APIError{Code: CodeInternal, Message: rerr.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(buf)
	default:
		writeErr(w, &APIError{Code: CodeNotFound,
			Message: fmt.Sprintf("no route %q for job %q (verbs: cancel, resume, events, checkpoint)", verb, id)})
	}
}

// events streams the job's telemetry as JSONL. Plain GET returns the
// events so far; ?follow=1 keeps the connection open, appending new
// events until the job reaches a terminal state. Ring-buffer overflow
// truncates the oldest events — consumers needing a complete stream
// should size the bus (SchedulerConfig.EventBufSize) for the job.
func (s *Server) events(w http.ResponseWriter, r *http.Request, id string) {
	follow := r.URL.Query().Get("follow") != ""
	evs, done, err := s.sched.Events(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if err := telemetry.WriteJSONL(w, evs); err != nil {
		return
	}
	if !follow || done == nil {
		return
	}
	flush(w)
	poll := s.followPoll
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	written := len(evs)
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		var final bool
		select {
		case <-r.Context().Done():
			return
		case <-done:
			final = true
		case <-tick.C:
		}
		evs, _, err := s.sched.Events(id)
		if err != nil {
			return
		}
		if len(evs) > written {
			if err := telemetry.WriteJSONL(w, evs[written:]); err != nil {
				return
			}
			written = len(evs)
			flush(w)
		}
		if final {
			return
		}
	}
}

func flush(w http.ResponseWriter) {
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}
