// Package task defines NASPipe's minimal scheduling and execution unit.
//
// Per §3.2 of the paper, the basic unit in NASPipe's runtime is a task: a
// subnet stage's forward pass or backward pass for one input batch. Each
// task is identified by its execution property (forward or backward), its
// subnet sequence ID, and its stage ID. Forward passes READ the stage's
// layer parameters; backward passes WRITE them (gradient + optimizer
// step), which is what creates causal dependencies between subnets.
package task

import "fmt"

// Kind is a task's execution property.
type Kind int

// Task kinds.
const (
	Forward Kind = iota
	Backward
)

func (k Kind) String() string {
	if k == Forward {
		return "F"
	}
	return "B"
}

// Task identifies one unit of pipeline work.
type Task struct {
	Subnet int  // subnet sequence ID in exploration order
	Stage  int  // pipeline stage (GPU) index
	Kind   Kind // forward or backward
}

// String renders like the paper's Table 4 notation: "5F@2" is subnet 5's
// forward on stage 2.
func (t Task) String() string {
	return fmt.Sprintf("%d%v@%d", t.Subnet, t.Kind, t.Stage)
}

// Queue is a FIFO of subnet sequence IDs, the L_q of Algorithm 1. It
// preserves arrival order; the scheduler may pop from any position (the
// CSP scheduler skips blocked heads).
type Queue struct {
	ids []int
}

// Push appends a subnet ID.
func (q *Queue) Push(id int) { q.ids = append(q.ids, id) }

// Len returns the number of queued IDs.
func (q *Queue) Len() int { return len(q.ids) }

// At returns the ID at position i.
func (q *Queue) At(i int) int { return q.ids[i] }

// Pop removes and returns the ID at position i.
func (q *Queue) Pop(i int) int {
	id := q.ids[i]
	q.ids = append(q.ids[:i], q.ids[i+1:]...)
	return id
}

// IDs returns a copy of the queue contents in order.
func (q *Queue) IDs() []int {
	out := make([]int, len(q.ids))
	copy(out, q.ids)
	return out
}

// Contains reports whether id is queued.
func (q *Queue) Contains(id int) bool {
	for _, v := range q.ids {
		if v == id {
			return true
		}
	}
	return false
}
