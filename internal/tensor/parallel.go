package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Deterministic parallelism for the dense kernels.
//
// The reproducibility contract (Definition 1) forbids reassociating any
// floating-point reduction, so the kernels never split a single output
// element's accumulation across goroutines. Instead they split the
// *output index space* into fixed-size tiles: each tile is computed by the
// exact sequential loop, and tiles write disjoint regions of dst, so there
// is no combine step at all. The split points depend only on the problem
// shape (tileSpan is a compile-time constant), never on the worker count,
// so the result is bitwise identical at any parallelism level — including
// the sequential fallback.

const (
	// tileSpan is the number of output rows (MatVec, OuterAccum) or
	// output columns (MatTVec) per tile. Fixed so split points are a
	// function of shape alone.
	tileSpan = 64

	// parallelMinWork is the minimum element count (rows*cols) before
	// the fan-out machinery is worth its scheduling cost. Below it the
	// kernels run the plain sequential loop. The default Dim=12 plane
	// (144-element matrices) always stays sequential.
	parallelMinWork = 1 << 15
)

// workerLimit caps the number of goroutines a single kernel call fans out
// to. It defaults to GOMAXPROCS and exists so tests can force both the
// sequential fallback and oversubscribed fan-out on any host.
var workerLimit atomic.Int64

func init() {
	workerLimit.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetParallelism sets the kernel worker cap and returns the previous
// value. n <= 1 forces the sequential path. The setting changes wall-clock
// behaviour only; results are bitwise identical at every value.
func SetParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	return int(workerLimit.Swap(int64(n)))
}

// Parallelism returns the current kernel worker cap.
func Parallelism() int { return int(workerLimit.Load()) }

// useParallel reports whether a kernel over n output indices and `work`
// total elements should fan out. Checked by the kernels BEFORE building
// the tile closure: on the sequential path (small shapes — including the
// default Dim=12 plane — or a single-worker cap) no closure is
// constructed, so the hot path stays allocation-free.
func useParallel(n, work int) bool {
	return work >= parallelMinWork && n > tileSpan && workerLimit.Load() > 1
}

// parallelSpans runs fn over [0, n) split into tileSpan-sized half-open
// ranges. fn must write only outputs indexed inside its range. Callers
// gate with useParallel first.
func parallelSpans(n int, fn func(lo, hi int)) {
	tiles := (n + tileSpan - 1) / tileSpan
	workers := int(workerLimit.Load())
	if workers > tiles {
		workers = tiles
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= tiles {
					return
				}
				lo := t * tileSpan
				hi := lo + tileSpan
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}
