package csp

import (
	"fmt"
	"testing"

	"naspipe/internal/partition"
	"naspipe/internal/supernet"
)

// Admission-path benchmarks: Schedule is called on every stage-loop
// iteration of the concurrent executor, and ScheduleAssuming on every
// predictor lookahead — both sit on the per-task hot path, so their cost
// at large in-flight windows bounds pipeline throughput.

// benchScheduler builds a stage-0 scheduler with n registered subnets
// from the headline NLP space.
func benchScheduler(b testing.TB, n int) (*Scheduler, []int) {
	b.Helper()
	sn := supernet.Build(supernet.NLPc1)
	subs := supernet.Sample(supernet.NLPc1, 3, n)
	s := New(0)
	for _, sub := range subs {
		p := partition.BalancedForSubnet(sn, sub, 8)
		lo, hi := p.Blocks(0)
		var stageIDs []supernet.LayerID
		for blk := lo; blk < hi; blk++ {
			stageIDs = append(stageIDs, sn.Space.ID(blk, sub.Choices[blk]))
		}
		if err := s.AddSubnet(SubnetInfo{Seq: sub.Seq, AllLayers: sub.LayerIDs(sn.Space), StageLayers: stageIDs}); err != nil {
			b.Fatal(err)
		}
	}
	queue := make([]int, n)
	for i := range queue {
		queue[i] = i
	}
	return s, queue
}

func BenchmarkScheduleWindow(b *testing.B) {
	for _, n := range []int{16, 96} {
		b.Run(fmt.Sprintf("window=%d", n), func(b *testing.B) {
			s, queue := benchScheduler(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Schedule(queue)
			}
		})
	}
}

func BenchmarkScheduleAssuming(b *testing.B) {
	for _, n := range []int{16, 96} {
		b.Run(fmt.Sprintf("window=%d", n), func(b *testing.B) {
			s, queue := benchScheduler(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ScheduleAssuming(queue, queue[0])
			}
		})
	}
}
