// Quickstart: simulate pipeline-parallel supernet training with NASPipe's
// causal synchronous parallel (CSP) scheduler, compare it against the
// GPipe baseline on the same workload, then run the same CSP schedule on
// the concurrent (goroutine-per-stage) execution plane.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"naspipe"
)

func main() {
	ctx := context.Background()

	// Pick a Table-1 search space and the paper's 8-GPU testbed.
	space := naspipe.NLPc1
	cfg := naspipe.Config{
		Space:      space,
		Spec:       naspipe.DefaultCluster(8),
		Seed:       1,
		NumSubnets: 120,
	}

	fmt.Printf("search space %s: %d choice blocks x %d candidate layers (%s)\n\n",
		space.Name, space.Blocks, space.Choices, space.Dataset)

	for _, policy := range []string{"naspipe", "gpipe"} {
		r, err := naspipe.NewRunner(naspipe.WithPolicy(policy))
		if err != nil {
			log.Fatal(err)
		}
		res, err := r.Run(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if res.Failed {
			fmt.Printf("%-8s cannot run: %s\n", res.Policy, res.FailReason)
			continue
		}
		repro := "NOT reproducible"
		p, _ := naspipe.NewPolicy(policy)
		if p.Traits().Reproducible {
			repro = "reproducible (CSP)"
		}
		fmt.Printf("%-8s batch=%-3d  %6.0f samples/s  bubble=%.2f  ALU=%.2fx  %s\n",
			res.Policy, res.Batch, res.SamplesPerSec, res.BubbleRatio, res.ALUTotal, repro)
	}

	// The same CSP schedule, executed for real: one goroutine per pipeline
	// stage, channels for activations/gradients, per-stage CSP admission.
	// The run fails loudly if the observed parameter-access order ever
	// diverges from the sequential reference.
	cc, err := naspipe.NewRunner(
		naspipe.WithExecutor(naspipe.ExecutorConcurrent),
		naspipe.WithTrace(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cc.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconcurrent plane: %d subnets across %d stage goroutines in %.1fms wall clock,\n",
		res.Completed, res.D, res.TotalMs)
	fmt.Println("per-layer access order verified equal to the sequential reference.")

	fmt.Println("\nNASPipe evicts inactive subnet contexts to CPU memory, which buys a")
	fmt.Println("much larger batch (higher GPU efficiency) while deterministically")
	fmt.Println("resolving every causal dependency between subnets.")
}
