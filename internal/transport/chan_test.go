package transport

import (
	"testing"
	"time"
)

func TestChanTransportRoutesAndBroadcasts(t *testing.T) {
	checkLeaks(t)
	tr := NewChanTransport(4, 8)
	defer tr.Close()

	if err := tr.Send(Msg{Type: FrameFwd, From: 0, To: 1, Seq: 5}); err != nil {
		t.Fatal(err)
	}
	if m := <-tr.Recv(1); m.Seq != 5 || m.Type != FrameFwd {
		t.Fatalf("stage 1 received %+v", m)
	}

	// Broadcast reaches every stage but the sender.
	if err := tr.Send(Msg{Type: FrameNote, From: 2, To: Broadcast, Seq: 9, Finished: true}); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1, 3} {
		select {
		case m := <-tr.Recv(k):
			if m.Seq != 9 || !m.Finished {
				t.Fatalf("stage %d received %+v", k, m)
			}
		case <-time.After(time.Second):
			t.Fatalf("stage %d never saw the broadcast", k)
		}
	}
	select {
	case m := <-tr.Recv(2):
		t.Fatalf("sender received its own broadcast: %+v", m)
	default:
	}

	if err := tr.Send(Msg{Type: FrameFwd, From: 0, To: 7}); err == nil {
		t.Error("send to a stage outside the pipeline succeeded")
	}
}

func TestChanTransportCloseUnblocksSenders(t *testing.T) {
	checkLeaks(t)
	tr := NewChanTransport(2, 1)
	if err := tr.Send(Msg{Type: FrameFwd, From: 0, To: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- tr.Send(Msg{Type: FrameFwd, From: 0, To: 1, Seq: 2}) }() // queue full: blocks
	time.Sleep(10 * time.Millisecond)
	tr.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Fatalf("blocked Send returned %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not unblock the pending Send")
	}
	// Queued messages stay readable; post-close sends are refused.
	if m := <-tr.Recv(1); m.Seq != 1 {
		t.Fatalf("drained %+v, want seq 1", m)
	}
	if err := tr.Send(Msg{Type: FrameFwd, From: 0, To: 1}); err != ErrClosed {
		t.Fatalf("post-close Send = %v, want ErrClosed", err)
	}
}
