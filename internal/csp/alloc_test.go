package csp

import "testing"

// TestScheduleAssumingDoesNotAllocate pins the predictor's admission path
// at zero allocations: the lookahead assumption set is scanned as a
// slice, never materialized into a map.
func TestScheduleAssumingDoesNotAllocate(t *testing.T) {
	s, queue := benchScheduler(t, 32)
	allocs := testing.AllocsPerRun(100, func() {
		s.ScheduleAssuming(queue, queue[0], queue[1])
	})
	if allocs != 0 {
		t.Fatalf("ScheduleAssuming allocated %.1f times per call, want 0", allocs)
	}
}

// TestScheduleDoesNotAllocate pins the plain admission scan too.
func TestScheduleDoesNotAllocate(t *testing.T) {
	s, queue := benchScheduler(t, 32)
	allocs := testing.AllocsPerRun(100, func() {
		s.Schedule(queue)
	})
	if allocs != 0 {
		t.Fatalf("Schedule allocated %.1f times per call, want 0", allocs)
	}
}

// TestResetStats pins the incarnation-boundary contract: ResetStats
// returns the counters accumulated so far and zeroes them, so a
// scheduler reused across run incarnations reports per-incarnation
// pressure instead of an ever-growing total.
func TestResetStats(t *testing.T) {
	s, queue := benchScheduler(t, 8)

	s.Schedule(queue)
	s.Schedule(queue[:0]) // empty queue: a call, not an empty scan
	calls, empty := s.Stats()
	if calls != 2 {
		t.Fatalf("scheduleCalls = %d, want 2", calls)
	}

	gotCalls, gotEmpty := s.ResetStats()
	if gotCalls != calls || gotEmpty != empty {
		t.Fatalf("ResetStats returned (%d, %d), want the pre-reset (%d, %d)",
			gotCalls, gotEmpty, calls, empty)
	}
	if c, e := s.Stats(); c != 0 || e != 0 {
		t.Fatalf("Stats after reset = (%d, %d), want (0, 0)", c, e)
	}

	// A second incarnation's pressure accumulates from zero.
	s.Schedule(queue)
	if c, _ := s.Stats(); c != 1 {
		t.Fatalf("post-reset scheduleCalls = %d, want 1", c)
	}
}
