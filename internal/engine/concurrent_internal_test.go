package engine

import (
	"strings"
	"testing"
)

// TestSendNotePanicsInsteadOfBlocking pins the never-block invariant on
// the cross-stage notification path: the notes buffer is sized (D+1)*n so
// a send can never block, and an undersized buffer — the bug this guards
// against — must fail loudly with a diagnostic rather than deadlock the
// stage goroutines. With an artificially tiny buffer the overflowing send
// panics; a blocking send here would hang this test forever.
func TestSendNotePanicsInsteadOfBlocking(t *testing.T) {
	s := &ccStage{k: 2, notes: make(chan ccNote, 1)}
	s.sendNote(ccNote{seq: 0}) // fills the undersized buffer
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("overflowing note send did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "notes buffer full") || !strings.Contains(msg, "stage 2") {
			t.Fatalf("unhelpful overflow diagnostic: %v", r)
		}
	}()
	s.sendNote(ccNote{seq: 1})
	t.Fatal("unreachable: second send must have panicked")
}
