package main

import (
	"context"
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	"naspipe"
	"naspipe/internal/obs"
	"naspipe/internal/service"
)

// top is the live observability view: it polls GET /metrics and the
// /v1/jobs list together and renders the scheduler's admission state,
// per-tenant counters, and the active jobs as one refreshing table —
// the same numbers Prometheus would scrape, without standing up
// Prometheus.
func top(ctx context.Context, c *service.Client, args []string) naspipe.ExitCode {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	iters := fs.Int("n", 0, "number of refreshes (0 = until interrupted)")
	tenant := fs.String("tenant", "", "filter the job table to one tenant")
	_ = fs.Parse(args)

	for i := 0; *iters == 0 || i < *iters; i++ {
		if i > 0 {
			select {
			case <-ctx.Done():
				return naspipe.ExitOK
			case <-time.After(*interval):
			}
		}
		jl, err := c.ListAll(ctx, *tenant)
		if err != nil {
			return fail(err)
		}
		samples, err := c.Metrics(ctx)
		if err != nil {
			return fail(err)
		}
		clearScreen := *iters != 1
		if clearScreen {
			fmt.Print("\x1b[H\x1b[2J")
		}
		renderTop(c.Base, jl, samples)
	}
	return naspipe.ExitOK
}

// metricIndex keys samples by name and one distinguishing label value
// so render lookups stay one-liners.
type metricIndex map[string]float64

func indexSamples(samples []obs.Sample, byLabel ...string) metricIndex {
	idx := make(metricIndex, len(samples))
	for _, s := range samples {
		key := s.Name
		for _, l := range byLabel {
			if v, ok := s.Labels[l]; ok {
				key += "{" + l + "=" + v + "}"
			}
		}
		// Later samples of the same key accumulate (e.g. summing a vec's
		// series when the distinguishing label isn't in byLabel).
		idx[key] += s.Value
	}
	return idx
}

func renderTop(base string, jl service.JobList, samples []obs.Sample) {
	fmt.Printf("naspiped %s — %s\n", base, time.Now().Format("15:04:05"))

	if st := jl.Stats; st != nil {
		fmt.Printf("queue %d/%d   workers %d/%d busy   run-ewma %.2fs\n",
			st.QueueDepth, st.QueueLimit, st.ActiveJobs, st.Workers, st.RunEWMASec)
	}
	if len(samples) > 0 {
		idx := indexSamples(samples)
		fmt.Printf("http reqs %.0f (inflight %.0f)   429s %.0f   restarts %.0f   watchdog %.0f   events emitted %.0f dropped %.0f\n",
			idx["naspipe_service_requests_total"], idx["naspipe_service_inflight_requests"],
			idx["naspipe_sched_rejections_total"],
			idx["naspipe_supervise_restarts_total"], idx["naspipe_supervise_watchdog_fires_total"],
			idx["naspipe_telemetry_events_emitted_total"], idx["naspipe_telemetry_events_dropped_total"])
	}

	// Per-tenant block: live occupancy from stats, lifetime counters from
	// the metric series.
	byTenant := indexSamples(samples, "tenant")
	doneIdx := indexSamples(samples, "tenant", "state")
	if jl.Stats != nil && len(jl.Stats.Tenants) > 0 {
		fmt.Printf("\n%-12s %6s %7s %5s %9s %5s %6s %8s\n",
			"TENANT", "ACTIVE", "RUNNING", "QUOTA", "SUBMITTED", "DONE", "FAILED", "RESUMED")
		for _, t := range jl.Stats.Tenants {
			fmt.Printf("%-12s %6d %7d %5d %9.0f %5.0f %6.0f %8.0f\n",
				t.Tenant, t.Active, t.Running, t.Quota,
				byTenant["naspipe_sched_submitted_total{tenant="+t.Tenant+"}"],
				doneIdx["naspipe_sched_jobs_total{tenant="+t.Tenant+"}{state=done}"],
				doneIdx["naspipe_sched_jobs_total{tenant="+t.Tenant+"}{state=failed}"],
				byTenant["naspipe_sched_resumed_total{tenant="+t.Tenant+"}"])
		}
	}

	// Job table: active first (running before queued), then terminal,
	// newest first within each band.
	jobs := append([]service.JobStatus(nil), jl.Jobs...)
	sort.SliceStable(jobs, func(a, b int) bool {
		return jobRank(jobs[a].State) < jobRank(jobs[b].State)
	})
	fmt.Printf("\n%-8s %-10s %-12s %-11s %9s %8s %s\n",
		"ID", "TENANT", "STATE", "HEALTH", "CURSOR", "RESTARTS", "DETAIL")
	for _, j := range jobs {
		fmt.Printf("%-8s %-10s %-12s %-11s %4d/%-4d %8d %s\n",
			j.ID, orDefault(j.Tenant), j.State, j.Health, j.Cursor, j.Total, j.Restarts, clip(j.Detail, 48))
	}
	if len(jobs) == 0 {
		fmt.Println(strings.Repeat(" ", 2) + "(no jobs)")
	}
}

func jobRank(s service.JobState) int {
	switch s {
	case service.StateRunning:
		return 0
	case service.StateQueued:
		return 1
	}
	return 2
}
