package service

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"naspipe"
)

// newTestDaemon stands up a scheduler + HTTP server on a free port and
// returns a client for it. Cleanup drains everything.
func newTestDaemon(t *testing.T, cfg SchedulerConfig) (*Client, *Scheduler) {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	sched, err := NewScheduler(cfg)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	addr, shutdown, err := Serve("127.0.0.1:0", sched)
	if err != nil {
		sched.Close()
		t.Fatalf("Serve: %v", err)
	}
	c := NewClient("http://" + addr)
	c.HTTP = &http.Client{}
	t.Cleanup(func() {
		shutdown()
		sched.Close()
		c.HTTP.CloseIdleConnections()
	})
	return c, sched
}

// simSpec is a fast simulated job.
func simSpec(tenant string) naspipe.JobSpec {
	return naspipe.JobSpec{
		Tenant: tenant, Space: "NLP.c3", ScaleBlocks: 6, ScaleChoices: 3,
		Executor: "simulated", GPUs: 2, Subnets: 4, Seed: 11,
	}
}

// slowSpec is a concurrent job that takes real wall-clock time (jittered
// tasks sleep), long enough to observe and cancel mid-run.
func slowSpec(tenant string) naspipe.JobSpec {
	return naspipe.JobSpec{
		Tenant: tenant, Space: "NLP.c3", ScaleBlocks: 8, ScaleChoices: 3,
		Executor: "concurrent", GPUs: 4, Subnets: 64, Seed: 11,
		Jitter: 0.9, JitterSeed: 11,
		Train: &naspipe.TrainSpec{Dim: 8, BatchSize: 2, LR: 0.05},
	}
}

func TestVersionNegotiation(t *testing.T) {
	c, _ := newTestDaemon(t, SchedulerConfig{})
	ctx := context.Background()

	v, err := c.Version(ctx)
	if err != nil {
		t.Fatalf("version probe: %v", err)
	}
	if v.Version != APIVersion || len(v.Supported) != 1 || v.Supported[0] != APIVersion {
		t.Fatalf("version info = %+v, want only %q", v, APIVersion)
	}

	// A request outside /v1 must be a structured 404 naming the supported
	// versions — never a silent fallback.
	resp, err := c.HTTP.Get(c.Base + "/v2/jobs")
	if err != nil {
		t.Fatalf("GET /v2/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v2/jobs status = %d, want 404", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == nil {
		t.Fatalf("unstructured /v2 error body (decode err %v)", err)
	}
	if eb.Error.Code != CodeUnsupportedVersion {
		t.Fatalf("/v2 error code = %q, want %q", eb.Error.Code, CodeUnsupportedVersion)
	}
	if !strings.Contains(eb.Error.Message, APIVersion) {
		t.Fatalf("/v2 error message does not name the supported version: %q", eb.Error.Message)
	}
}

func TestSubmitMalformedSpec(t *testing.T) {
	c, _ := newTestDaemon(t, SchedulerConfig{})
	ctx := context.Background()

	// An invalid field value: structured 400 naming the field.
	bad := simSpec("")
	bad.GPUs = -2
	_, err := c.Submit(ctx, bad)
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("invalid spec error = %v (%T), want *APIError", err, err)
	}
	if ae.Status != http.StatusBadRequest || ae.Code != CodeInvalidSpec || ae.Field != "gpus" {
		t.Fatalf("invalid spec → status %d code %q field %q; want 400 %q gpus",
			ae.Status, ae.Code, ae.Field, CodeInvalidSpec)
	}

	// Unknown JSON fields are rejected, not silently dropped — a typoed
	// knob must not become a default-valued run.
	resp, err := c.HTTP.Post(c.Base+"/"+APIVersion+"/jobs", "application/json",
		strings.NewReader(`{"space":"NLP.c1","gpus":2,"subnets":4,"windw":9}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field submit status = %d, want 400", resp.StatusCode)
	}

	// Unresolvable space, reported by name.
	bad = simSpec("")
	bad.Space = "NLP.c99"
	_, err = c.Submit(ctx, bad)
	if ae, ok := err.(*APIError); !ok || ae.Field != "space" {
		t.Fatalf("unknown space error = %v, want field \"space\"", err)
	}
}

func TestCancelIdempotentOnFinishedJob(t *testing.T) {
	c, _ := newTestDaemon(t, SchedulerConfig{})
	ctx := context.Background()

	st, err := c.Submit(ctx, simSpec(""))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", final.State, final.Detail)
	}
	// Cancel after completion: 200, unchanged status, every time.
	for i := 0; i < 2; i++ {
		got, err := c.Cancel(ctx, st.ID)
		if err != nil {
			t.Fatalf("cancel #%d of a done job: %v", i+1, err)
		}
		if got.State != StateDone || got.ExitCode != int(naspipe.ExitOK) {
			t.Fatalf("cancel #%d changed the job: state %s exit %d", i+1, got.State, got.ExitCode)
		}
	}
}

func TestResumeConflicts(t *testing.T) {
	// One worker, held by a slow job, so a second submission stays queued.
	c, _ := newTestDaemon(t, SchedulerConfig{Workers: 1})
	ctx := context.Background()

	holder, err := c.Submit(ctx, slowSpec(""))
	if err != nil {
		t.Fatalf("submit holder: %v", err)
	}
	queued, err := c.Submit(ctx, simSpec(""))
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}

	// Resuming an active job is a conflict.
	if _, err := c.Resume(ctx, queued.ID); asCode(err) != CodeConflict {
		t.Fatalf("resume of a queued job = %v, want %q", err, CodeConflict)
	}

	// Cancel it while queued: it never ran, so there is no checkpoint and
	// resume must 409 rather than silently restart.
	got, err := c.Cancel(ctx, queued.ID)
	if err != nil || got.State != StateCanceled {
		t.Fatalf("cancel queued job: state %s, err %v", got.State, err)
	}
	if got.Resumable {
		t.Fatal("never-ran job reported resumable")
	}
	_, err = c.Resume(ctx, queued.ID)
	ae, ok := err.(*APIError)
	if !ok || ae.Code != CodeConflict || ae.Status != http.StatusConflict {
		t.Fatalf("resume without checkpoint = %v, want 409 %q", err, CodeConflict)
	}

	// Unknown job: 404.
	if _, err := c.Resume(ctx, "j9999"); asCode(err) != CodeNotFound {
		t.Fatalf("resume of unknown job = %v, want %q", err, CodeNotFound)
	}

	if _, err := c.Cancel(ctx, holder.ID); err != nil {
		t.Fatalf("cancel holder: %v", err)
	}
	if _, err := c.Wait(ctx, holder.ID, 10*time.Millisecond); err != nil {
		t.Fatalf("wait holder: %v", err)
	}

	// A done job cannot be resumed either.
	done, err := c.Submit(ctx, simSpec(""))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := c.Wait(ctx, done.ID, 10*time.Millisecond); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if _, err := c.Resume(ctx, done.ID); asCode(err) != CodeConflict {
		t.Fatalf("resume of a done job = %v, want %q", err, CodeConflict)
	}
}

func asCode(err error) ErrorCode {
	if ae, ok := err.(*APIError); ok {
		return ae.Code
	}
	return ""
}

// TestCancelThenResumeContinuesFromCheckpoint drives the full operator
// loop over the API: cancel a running job mid-stream, observe it
// resumable at its committed frontier, resume it, and verify the
// finished weights bitwise.
func TestCancelThenResumeContinuesFromCheckpoint(t *testing.T) {
	c, _ := newTestDaemon(t, SchedulerConfig{})
	ctx := context.Background()

	spec := slowSpec("")
	spec.Verify = true
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Wait until the committed frontier has visibly advanced, so the
	// cancel provably lands mid-run with a checkpoint on disk.
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, err := c.Get(ctx, st.ID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if got.Cursor >= 2 && got.State == StateRunning {
			break
		}
		if got.State.Terminal() {
			t.Fatalf("job reached %s before it could be canceled mid-run", got.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no frontier progress before deadline (state %s cursor %d)", got.State, got.Cursor)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	got, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait after cancel: %v", err)
	}
	if got.State != StateCanceled {
		t.Fatalf("state after cancel = %s (%s), want canceled", got.State, got.Detail)
	}
	if !got.Resumable || got.ExitCode != int(naspipe.ExitResumable) {
		t.Fatalf("canceled mid-run but resumable=%v exit=%d", got.Resumable, got.ExitCode)
	}
	if got.Cursor <= 0 || got.Cursor >= got.Total {
		t.Fatalf("cancel frontier %d/%d is not mid-stream", got.Cursor, got.Total)
	}

	// The checkpoint endpoint serves the committed frontier's bytes.
	buf, err := c.Checkpoint(ctx, st.ID)
	if err != nil || len(buf) == 0 {
		t.Fatalf("checkpoint fetch: %d bytes, err %v", len(buf), err)
	}

	if _, err := c.Resume(ctx, st.ID); err != nil {
		t.Fatalf("resume: %v", err)
	}
	final, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait after resume: %v", err)
	}
	if final.State != StateDone || !final.Verified {
		t.Fatalf("resumed job: state %s verified %v (%s)", final.State, final.Verified, final.Detail)
	}
	if final.Cursor != final.Total {
		t.Fatalf("resumed job frontier %d/%d", final.Cursor, final.Total)
	}
}

// TestDaemonRecovery simulates the kill -9 story at the persistence
// layer: a job is mid-run with its status persisted as running and its
// checkpoint on disk when the daemon dies without any shutdown path.
// A new scheduler over the same state dir must re-queue it and finish
// it from the committed frontier.
func TestDaemonRecovery(t *testing.T) {
	dir := t.TempDir()
	c, _ := newTestDaemon(t, SchedulerConfig{StateDir: dir})
	ctx := context.Background()

	spec := slowSpec("")
	spec.Verify = true
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	for {
		got, gerr := c.Get(ctx, st.ID)
		if gerr != nil {
			t.Fatalf("status: %v", gerr)
		}
		if got.Cursor >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if _, err := c.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
		t.Fatalf("wait: %v", err)
	}

	// Rewrite the persisted state to what a kill -9 mid-run leaves
	// behind: status.json still says running.
	statusPath := filepath.Join(dir, st.ID, "status.json")
	buf, err := os.ReadFile(statusPath)
	if err != nil {
		t.Fatalf("reading persisted status: %v", err)
	}
	var p persistedJob
	if err := json.Unmarshal(buf, &p); err != nil {
		t.Fatalf("decoding persisted status: %v", err)
	}
	p.State = StateRunning
	buf, _ = json.MarshalIndent(p, "", "  ")
	if err := os.WriteFile(statusPath, buf, 0o644); err != nil {
		t.Fatalf("rewriting status: %v", err)
	}

	// "Restart the daemon": a fresh scheduler over the same state dir.
	sched2, err := NewScheduler(SchedulerConfig{StateDir: dir})
	if err != nil {
		t.Fatalf("restarted scheduler: %v", err)
	}
	defer sched2.Close()
	final, err := sched2.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("wait on recovered job: %v", err)
	}
	if final.State != StateDone || !final.Verified {
		t.Fatalf("recovered job: state %s verified %v (%s)", final.State, final.Verified, final.Detail)
	}
	if final.Cursor != final.Total {
		t.Fatalf("recovered job frontier %d/%d", final.Cursor, final.Total)
	}
}

// TestEventsStream checks the JSONL telemetry endpoint end to end,
// including persistence across job completion.
func TestEventsStream(t *testing.T) {
	c, _ := newTestDaemon(t, SchedulerConfig{})
	ctx := context.Background()

	spec := naspipe.JobSpec{
		Space: "NLP.c3", ScaleBlocks: 6, ScaleChoices: 3,
		Executor: "concurrent", GPUs: 2, Subnets: 6, Seed: 3,
	}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := c.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
		t.Fatalf("wait: %v", err)
	}
	body, err := c.Events(ctx, st.ID, false)
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer body.Close()
	var lines int
	dec := json.NewDecoder(body)
	for dec.More() {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			t.Fatalf("events line %d: %v", lines, err)
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("finished concurrent job produced no telemetry events")
	}

	if _, err := c.Events(ctx, "j9999", false); asCode(err) != CodeNotFound {
		t.Fatalf("events of unknown job = %v, want %q", err, CodeNotFound)
	}
}
