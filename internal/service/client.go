package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"naspipe"
	"naspipe/internal/obs"
)

// Client talks to a naspiped server. The zero HTTP client is replaced
// with http.DefaultClient; Base is "http://host:port" with no trailing
// slash or version — the client speaks APIVersion and surfaces the
// server's structured errors as *APIError values.
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient builds a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimSuffix(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError decodes a non-2xx response into *APIError, preferring the
// structured envelope; when the body carries no retry hint it falls
// back to the Retry-After header, so callers always see the server's
// backoff estimate on 429s.
func apiError(resp *http.Response, buf []byte) *APIError {
	ae := &APIError{Code: CodeInternal, Status: resp.StatusCode,
		Message: fmt.Sprintf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(buf)))}
	var eb errorBody
	if jerr := json.Unmarshal(buf, &eb); jerr == nil && eb.Error != nil {
		ae = eb.Error
		ae.Status = resp.StatusCode
	}
	if ae.RetryAfterSec == 0 {
		if n, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && n > 0 {
			ae.RetryAfterSec = n
		}
	}
	return ae
}

// do issues one request and decodes either the expected body or the
// structured error envelope.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.Base+"/"+APIVersion+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return apiError(resp, buf)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(buf, out); err != nil {
		return fmt.Errorf("service: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// Version probes the server's API version set.
func (c *Client) Version(ctx context.Context) (VersionInfo, error) {
	var v VersionInfo
	err := c.do(ctx, http.MethodGet, "/version", nil, &v)
	return v, err
}

// Submit sends a JobSpec and returns the admitted job's status.
// Over-quota and backpressure refusals come back as *APIError with
// CodeQuotaExceeded / CodeBackpressure (HTTP 429).
func (c *Client) Submit(ctx context.Context, spec naspipe.JobSpec) (JobStatus, error) {
	buf, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	err = c.do(ctx, http.MethodPost, "/jobs", bytes.NewReader(buf), &st)
	return st, err
}

// Get fetches one job's status (including its effective spec).
func (c *Client) Get(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// List fetches all jobs, optionally filtered to one tenant.
func (c *Client) List(ctx context.Context, tenant string) ([]JobStatus, error) {
	path := "/jobs"
	if tenant != "" {
		path += "?tenant=" + url.QueryEscape(tenant)
	}
	var jl JobList
	err := c.do(ctx, http.MethodGet, path, nil, &jl)
	return jl.Jobs, err
}

// ListAll fetches the full JobList — jobs plus the scheduler's live
// admission stats (queue depth, worker occupancy, run-time EWMA,
// per-tenant slot usage). The `top` subcommand polls this.
func (c *Client) ListAll(ctx context.Context, tenant string) (JobList, error) {
	path := "/jobs"
	if tenant != "" {
		path += "?tenant=" + url.QueryEscape(tenant)
	}
	var jl JobList
	err := c.do(ctx, http.MethodGet, path, nil, &jl)
	return jl, err
}

// Metrics scrapes the daemon's GET /metrics endpoint and parses the
// Prometheus text exposition into samples. A daemon running without a
// metrics registry returns an empty (non-nil) slice.
func (c *Client) Metrics(ctx context.Context) ([]obs.Sample, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		buf, _ := io.ReadAll(resp.Body)
		return nil, apiError(resp, buf)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("service: parsing /metrics: %w", err)
	}
	if samples == nil {
		samples = []obs.Sample{}
	}
	return samples, nil
}

// Cancel stops a job; canceling an already-finished job is idempotent
// and returns its unchanged status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/jobs/"+url.PathEscape(id)+"/cancel", nil, &st)
	return st, err
}

// Resume re-queues a canceled or interrupted job from its checkpoint;
// a job with no checkpoint is a *APIError CodeConflict (HTTP 409).
func (c *Client) Resume(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/jobs/"+url.PathEscape(id)+"/resume", nil, &st)
	return st, err
}

// Events opens the job's telemetry JSONL stream. With follow, the body
// stays open until the job reaches a terminal state. The caller owns
// closing the reader.
func (c *Client) Events(ctx context.Context, id string, follow bool) (io.ReadCloser, error) {
	path := c.Base + "/" + APIVersion + "/jobs/" + url.PathEscape(id) + "/events"
	if follow {
		path += "?follow=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		defer resp.Body.Close()
		buf, _ := io.ReadAll(resp.Body)
		return nil, apiError(resp, buf)
	}
	return resp.Body, nil
}

// Checkpoint fetches the job's checkpoint file bytes (decode with
// naspipe.LoadCheckpoint semantics / fault.Decode).
func (c *Client) Checkpoint(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.Base+"/"+APIVersion+"/jobs/"+url.PathEscape(id)+"/checkpoint", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		return nil, apiError(resp, buf)
	}
	return buf, nil
}

// Wait polls until the job reaches a terminal state (or ctx ends),
// returning the final status.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}
