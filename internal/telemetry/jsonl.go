// JSONL export: one event per line, self-describing field names, stable
// across versions via the op/phase wire names. The log round-trips
// through ReadJSONL, which is what `naspipe-replay -events` uses to
// reconstruct and re-render a run's timeline offline.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonlEvent is the wire shape of one line.
type jsonlEvent struct {
	TsNs   int64  `json:"ts_ns"`
	Op     string `json:"op"`
	Phase  string `json:"ph"`
	Stage  int32  `json:"stage"`
	Worker int32  `json:"worker,omitempty"`
	Subnet int32  `json:"subnet"`
	Kind   string `json:"kind,omitempty"`
	Arg    int64  `json:"arg,omitempty"`
}

// WriteJSONL writes the event stream as one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		je := jsonlEvent{
			TsNs: ev.TsNs, Op: ev.Op.String(), Phase: ev.Phase.String(),
			Stage: ev.Stage, Worker: ev.Worker, Subnet: ev.Subnet, Arg: ev.Arg,
		}
		if ev.Kind != KindNone {
			je.Kind = KindString(ev.Kind)
		}
		bs, err := json.Marshal(je)
		if err != nil {
			return err
		}
		if _, err := bw.Write(bs); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a log written by WriteJSONL back into events. Blank
// lines are skipped; an unknown op or phase is an error (the log and the
// binary disagree about the taxonomy).
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("telemetry: jsonl line %d: %w", line, err)
		}
		op, ok := OpByName(je.Op)
		if !ok {
			return nil, fmt.Errorf("telemetry: jsonl line %d: unknown op %q", line, je.Op)
		}
		ph, ok := PhaseByName(je.Phase)
		if !ok {
			return nil, fmt.Errorf("telemetry: jsonl line %d: unknown phase %q", line, je.Phase)
		}
		kind := KindNone
		switch je.Kind {
		case "F":
			kind = KindForward
		case "B":
			kind = KindBackward
		case "", "-":
		default:
			return nil, fmt.Errorf("telemetry: jsonl line %d: unknown kind %q", line, je.Kind)
		}
		out = append(out, Event{
			TsNs: je.TsNs, Op: op, Phase: ph,
			Stage: je.Stage, Worker: je.Worker, Subnet: je.Subnet,
			Kind: kind, Arg: je.Arg,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
