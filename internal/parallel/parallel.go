// Package parallel provides the bounded worker pool underlying the
// concurrent experiment harness and the facade's Runner.RunMany: a fan of
// independent jobs across a fixed number of goroutines with results
// delivered in submission order, so that parallel execution is
// output-identical to serial execution.
//
// Determinism contract: Map assigns job i's result to slot i regardless of
// completion order, and error selection is by lowest index, so callers
// observe the same values a serial loop would produce (assuming each job
// is itself a pure function of its index).
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// Workers normalizes a parallelism setting: values <= 0 mean "one worker
// per available CPU" (GOMAXPROCS), and the result is capped at n jobs.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the n results in index order. workers <= 0 selects GOMAXPROCS.
//
// Cancellation: when ctx is cancelled, no further jobs are dispatched;
// in-flight jobs run to completion, their slots are filled, and Map
// returns the partial results with ctx.Err(). Undispatched slots hold the
// zero value.
//
// Errors: if any job returns an error (and ctx was not cancelled), Map
// returns the full result slice and the error of the lowest-indexed
// failing job — the same error a serial loop stopping at the first
// failure would surface.
func Map[T any](ctx context.Context, workers, n int, fn func(int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	errs := make([]error, n)
	workers = Workers(workers, n)

	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return results, err
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// ForEach is Map for jobs with no result value.
func ForEach(ctx context.Context, workers, n int, fn func(int) error) error {
	_, err := Map(ctx, workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
