package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"naspipe/internal/rng"
)

func randVec(r *rng.Stream, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = r.NormFloat32()
	}
	return v
}

func randMat(r *rng.Stream, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat32()
	}
	return m
}

func TestNewMatrixPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][2]int{{0, 1}, {1, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewMatrix(%d,%d) did not panic", shape[0], shape[1])
				}
			}()
			NewMatrix(shape[0], shape[1])
		}()
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(2, 3, 1.5)
	m.Set(0, 0, -2)
	if m.At(2, 3) != 1.5 || m.At(0, 0) != -2 || m.At(1, 1) != 0 {
		t.Fatalf("At/Set round trip failed: %+v", m)
	}
}

func TestMatVecIdentity(t *testing.T) {
	n := 5
	id := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		id.Set(i, i, 1)
	}
	x := Vector{1, 2, 3, 4, 5}
	dst := make(Vector, n)
	MatVec(dst, id, x)
	if !dst.EqualBits(x) {
		t.Fatalf("identity MatVec: got %v want %v", dst, x)
	}
}

func TestMatVecKnown(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float32{1, 2, 3, 4, 5, 6})
	x := Vector{1, 0, -1}
	dst := make(Vector, 2)
	MatVec(dst, m, x)
	want := Vector{-2, -2}
	if !dst.EqualBits(want) {
		t.Fatalf("got %v want %v", dst, want)
	}
}

func TestMatTVecKnown(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float32{1, 2, 3, 4, 5, 6})
	x := Vector{1, -1}
	dst := make(Vector, 3)
	MatTVec(dst, m, x)
	want := Vector{-3, -3, -3}
	if !dst.EqualBits(want) {
		t.Fatalf("got %v want %v", dst, want)
	}
}

func TestMatVecShapePanics(t *testing.T) {
	m := NewMatrix(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatVec(make(Vector, 3), m, make(Vector, 3))
}

func TestOuterAccumKnown(t *testing.T) {
	m := NewMatrix(2, 2)
	OuterAccum(m, Vector{1, 2}, Vector{3, 4}, 0.5)
	want := []float32{1.5, 2, 3, 4}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("element %d: got %v want %v", i, m.Data[i], w)
		}
	}
	// Accumulation: a second call adds on top.
	OuterAccum(m, Vector{1, 2}, Vector{3, 4}, 0.5)
	for i, w := range want {
		if m.Data[i] != 2*w {
			t.Fatalf("accumulated element %d: got %v want %v", i, m.Data[i], 2*w)
		}
	}
}

func TestAXPY(t *testing.T) {
	dst := Vector{1, 2, 3}
	AXPY(dst, 2, Vector{1, 1, 1})
	want := Vector{3, 4, 5}
	if !dst.EqualBits(want) {
		t.Fatalf("got %v want %v", dst, want)
	}
}

func TestMatAXPY(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float32{1, 2, 3, 4})
	b := NewMatrix(2, 2)
	copy(b.Data, []float32{10, 20, 30, 40})
	MatAXPY(a, 0.1, b)
	want := []float32{2, 4, 6, 8}
	for i, w := range want {
		if a.Data[i] != w {
			t.Fatalf("element %d: got %v want %v", i, a.Data[i], w)
		}
	}
}

func TestDotAndSumSquares(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v want 32", got)
	}
	if got := SumSquares(a); got != 14 {
		t.Fatalf("SumSquares = %v want 14", got)
	}
}

func TestTanhAndGrad(t *testing.T) {
	x := Vector{0, 1, -1}
	y := make(Vector, 3)
	Tanh(y, x)
	if y[0] != 0 {
		t.Fatalf("tanh(0) = %v", y[0])
	}
	if math.Abs(float64(y[1])-math.Tanh(1)) > 1e-6 {
		t.Fatalf("tanh(1) = %v", y[1])
	}
	g := Vector{1, 1, 1}
	dst := make(Vector, 3)
	TanhGrad(dst, g, y)
	if dst[0] != 1 {
		t.Fatalf("tanh'(0) = %v want 1", dst[0])
	}
	for i := 1; i < 3; i++ {
		want := 1 - y[i]*y[i]
		if dst[i] != want {
			t.Fatalf("grad[%d] = %v want %v", i, dst[i], want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
	v := Vector{1, 2}
	cv := v.Clone()
	cv[0] = 9
	if v[0] != 1 {
		t.Fatal("Vector Clone shares storage")
	}
}

func TestEqualAndChecksum(t *testing.T) {
	r := rng.New(1)
	a := randMat(r, 4, 5)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not Equal")
	}
	if a.Checksum() != b.Checksum() {
		t.Fatal("clone checksum differs")
	}
	b.Data[7] += 1e-7
	if a.Equal(b) {
		t.Fatal("perturbed matrix compares Equal")
	}
	if a.Checksum() == b.Checksum() {
		t.Fatal("perturbed matrix has equal checksum")
	}
}

func TestChecksumShapeSensitive(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(3, 2)
	if a.Checksum() == b.Checksum() {
		t.Fatal("checksum ignores shape")
	}
}

func TestCombineChecksumsOrderSensitive(t *testing.T) {
	a := CombineChecksums([]uint64{1, 2, 3})
	b := CombineChecksums([]uint64{3, 2, 1})
	if a == b {
		t.Fatal("CombineChecksums is order-insensitive")
	}
	if a != CombineChecksums([]uint64{1, 2, 3}) {
		t.Fatal("CombineChecksums not deterministic")
	}
}

// Property: MatVec is linear: M(ax + by) == a·Mx + b·My within float32
// tolerance (exact equality cannot hold due to different summation
// groupings, so compare with a relative epsilon).
func TestQuickMatVecLinear(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		rows, cols := 3+r.Intn(6), 3+r.Intn(6)
		m := randMat(r, rows, cols)
		x, y := randVec(r, cols), randVec(r, cols)
		a, b := r.NormFloat32(), r.NormFloat32()
		combo := make(Vector, cols)
		for i := range combo {
			combo[i] = a*x[i] + b*y[i]
		}
		lhs := make(Vector, rows)
		MatVec(lhs, m, combo)
		mx, my := make(Vector, rows), make(Vector, rows)
		MatVec(mx, m, x)
		MatVec(my, m, y)
		for i := 0; i < rows; i++ {
			rhs := a*mx[i] + b*my[i]
			if math.Abs(float64(lhs[i]-rhs)) > 1e-3*(1+math.Abs(float64(rhs))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the transpose identity ⟨Mx, y⟩ == ⟨x, Mᵀy⟩ holds within
// tolerance for random shapes.
func TestQuickTransposeAdjoint(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		rows, cols := 2+r.Intn(8), 2+r.Intn(8)
		m := randMat(r, rows, cols)
		x, y := randVec(r, cols), randVec(r, rows)
		mx := make(Vector, rows)
		MatVec(mx, m, x)
		mty := make(Vector, cols)
		MatTVec(mty, m, y)
		lhs, rhs := Dot(mx, y), Dot(x, mty)
		return math.Abs(float64(lhs-rhs)) <= 1e-3*(1+math.Abs(float64(rhs)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: checksum distinguishes any single-bit flip.
func TestQuickChecksumSensitivity(t *testing.T) {
	f := func(seed uint64, idxRaw uint8) bool {
		r := rng.New(seed)
		v := randVec(r, 16)
		sum := v.Checksum()
		i := int(idxRaw) % len(v)
		bits := math.Float32bits(v[i]) ^ 1
		w := v.Clone()
		w[i] = math.Float32frombits(bits)
		return w.Checksum() != sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MatVec is bitwise deterministic — same inputs, same bits.
func TestQuickMatVecDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := randMat(r, 6, 7)
		x := randVec(r, 7)
		a, b := make(Vector, 6), make(Vector, 6)
		MatVec(a, m, x)
		MatVec(b, m, x)
		return a.EqualBits(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatVec64(b *testing.B) {
	r := rng.New(1)
	m := randMat(r, 64, 64)
	x := randVec(r, 64)
	dst := make(Vector, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVec(dst, m, x)
	}
}
