// Package analysis provides the post-training inspection tools the paper
// motivates in §2.1: once a training procedure is recorded (and, under
// CSP, exactly replayable), researchers analyze it — quantify causal
// violations of non-CSP schedules, characterize a subnet stream's
// dependency structure, and attribute where pipeline time went.
package analysis

import (
	"fmt"

	"naspipe/internal/supernet"
	"naspipe/internal/trace"
)

// StalenessReport quantifies causal violations in a trace. A READ is
// stale when at least one earlier subnet's WRITE to the same layer had
// not yet been applied at read time; MissedWrites counts all such missing
// updates. A schedule is sequential-equivalent iff StaleReads == 0.
type StalenessReport struct {
	Reads        int
	StaleReads   int
	MissedWrites int // total missing earlier updates across stale reads
	MaxMissed    int // worst single read
}

// StaleFraction returns StaleReads/Reads (0 for empty traces).
func (r StalenessReport) StaleFraction() float64 {
	if r.Reads == 0 {
		return 0
	}
	return float64(r.StaleReads) / float64(r.Reads)
}

func (r StalenessReport) String() string {
	return fmt.Sprintf("reads=%d stale=%d (%.1f%%) missedWrites=%d maxMissed=%d",
		r.Reads, r.StaleReads, 100*r.StaleFraction(), r.MissedWrites, r.MaxMissed)
}

// Staleness walks the trace in order, tracking which (subnet, layer)
// writes have landed, and scores every read against the earlier subnets
// known to use the layer. The subnet universe is taken from the trace
// itself (a subnet uses a layer iff it reads it at some point), so the
// report needs no side information.
func Staleness(tr *trace.Trace) StalenessReport {
	// First pass: who reads (and therefore writes) each layer.
	users := map[supernet.LayerID][]int{}
	seen := map[[2]int]bool{}
	for _, ev := range tr.Events {
		if ev.Kind != trace.Read {
			continue
		}
		key := [2]int{int(ev.Layer), ev.Subnet}
		if !seen[key] {
			seen[key] = true
			users[ev.Layer] = append(users[ev.Layer], ev.Subnet)
		}
	}
	written := map[[2]int]bool{}
	var rep StalenessReport
	for _, ev := range tr.Events {
		switch ev.Kind {
		case trace.Write:
			written[[2]int{int(ev.Layer), ev.Subnet}] = true
		case trace.Read:
			rep.Reads++
			missed := 0
			for _, u := range users[ev.Layer] {
				if u < ev.Subnet && !written[[2]int{int(ev.Layer), u}] {
					missed++
				}
			}
			if missed > 0 {
				rep.StaleReads++
				rep.MissedWrites += missed
				if missed > rep.MaxMissed {
					rep.MaxMissed = missed
				}
			}
		}
	}
	return rep
}

// DepStats characterizes a subnet stream's causal dependency structure —
// the workload property that determines how well CSP pipelines it.
type DepStats struct {
	Subnets         int
	ConsecutiveRate float64 // P(step shares a layer with its predecessor)
	PairRate        float64 // share rate over all ordered pairs
	LongestChain    int     // longest path in the dependency DAG
	AvgWidth        float64 // Subnets / LongestChain: parallelism upper bound
}

func (d DepStats) String() string {
	return fmt.Sprintf("n=%d consecutive=%.2f pairs=%.2f chain=%d width=%.1f",
		d.Subnets, d.ConsecutiveRate, d.PairRate, d.LongestChain, d.AvgWidth)
}

// Dependencies computes DepStats for a stream. O(n²·blocks); fine for
// the stream lengths the pipeline holds (hundreds).
func Dependencies(subs []supernet.Subnet) DepStats {
	n := len(subs)
	d := DepStats{Subnets: n}
	if n < 2 {
		d.LongestChain = n
		d.AvgWidth = float64(n)
		return d
	}
	consecutive, pairs := 0, 0
	longest := make([]int, n)
	best := 1
	for i := 0; i < n; i++ {
		longest[i] = 1
		for j := 0; j < i; j++ {
			if supernet.Shares(subs[j], subs[i]) {
				pairs++
				if j == i-1 {
					consecutive++
				}
				if longest[j]+1 > longest[i] {
					longest[i] = longest[j] + 1
				}
			}
		}
		if longest[i] > best {
			best = longest[i]
		}
	}
	d.ConsecutiveRate = float64(consecutive) / float64(n-1)
	d.PairRate = float64(pairs) / float64(n*(n-1)/2)
	d.LongestChain = best
	d.AvgWidth = float64(n) / float64(best)
	return d
}
