package engine_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"naspipe/internal/engine"
	"naspipe/internal/fault"
	"naspipe/internal/sched"
	"naspipe/internal/telemetry"
)

// TestConcurrentProbeTracksRun pins what the watchdog sees on a clean
// run: the frontier ends at the stream length, the task counter at
// 2·n·D (every stage's forward and backward per subnet), and the final
// per-stage table shows every stage done and nothing wedged.
func TestConcurrentProbeTracksRun(t *testing.T) {
	cfg := ccCfg(4, false)
	probe := &engine.RunProbe{}
	cfg.Probe = probe
	res, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatalf("probed run failed: %v", err)
	}
	if res.Completed != cfg.NumSubnets {
		t.Fatalf("completed %d/%d", res.Completed, cfg.NumSubnets)
	}
	f, tasks := probe.Progress()
	if f != cfg.NumSubnets {
		t.Fatalf("final frontier %d, want %d", f, cfg.NumSubnets)
	}
	if want := int64(2 * cfg.NumSubnets * res.D); tasks != want {
		t.Fatalf("task counter %d, want %d", tasks, want)
	}
	for _, h := range probe.Snapshot() {
		if h.FwdDone != cfg.NumSubnets || h.BwdDone != cfg.NumSubnets {
			t.Fatalf("stage %d ended incomplete in the probe: %+v", h.Stage, h)
		}
		if h.Wedged {
			t.Fatalf("stage %d wedged on a fault-free run", h.Stage)
		}
		if h.LastTaskNs == 0 {
			t.Fatalf("stage %d never stamped a task completion", h.Stage)
		}
	}
}

// TestConcurrentWedgeHangsUntilCancelled pins the wedge fault: the
// targeted stage publishes Wedged and completes nothing more, the run
// hangs (distinguishable from slow only via the probe), and cancelling
// the context releases the wedged goroutine with ctx.Err().
func TestConcurrentWedgeHangsUntilCancelled(t *testing.T) {
	cfg := ccCfg(4, false)
	cfg.Faults = &fault.Plan{
		Seed:      1,
		WedgeTask: &fault.TaskRef{Stage: 1, Seq: 6, Kind: fault.KindForward},
	}
	probe := &engine.RunProbe{}
	cfg.Probe = probe
	bus := telemetry.NewBus(0)
	cfg.Telemetry = bus

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	var res engine.Result
	var runErr error
	go func() {
		defer close(done)
		res, runErr = engine.RunConcurrent(ctx, cfg)
	}()

	deadline := time.After(10 * time.Second)
	wedged := false
	for !wedged {
		select {
		case <-deadline:
			t.Fatal("stage 1 never published Wedged")
		case <-time.After(time.Millisecond):
		}
		for _, h := range probe.Snapshot() {
			if h.Stage == 1 && h.Wedged {
				wedged = true
			}
		}
	}
	select {
	case <-done:
		t.Fatalf("wedged run returned on its own: %v", runErr)
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("wedged run did not release on cancellation")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("wedged run returned %v, want context.Canceled", runErr)
	}
	if !res.Deadlock || res.Completed == cfg.NumSubnets {
		t.Fatalf("wedged run claims completion: %+v", res)
	}
	if snap := bus.Snapshot(); snap.FaultWedges != 1 {
		t.Fatalf("wedge events = %d, want 1", snap.FaultWedges)
	}
}

// TestConcurrentWedgeSkippedOnResume pins the recovery contract shared
// with targeted crashes: a wedge names incarnation 0 only, so a resumed
// incarnation runs the same plan to completion.
func TestConcurrentWedgeSkippedOnResume(t *testing.T) {
	cfg := ccCfg(2, false)
	cfg.Faults = &fault.Plan{
		Seed:      1,
		WedgeTask: &fault.TaskRef{Stage: 1, Seq: 4, Kind: fault.KindForward},
	}
	cfg.FaultIncarnation = 1
	res, err := engine.RunConcurrent(context.Background(), cfg)
	if err != nil {
		t.Fatalf("incarnation 1 hit the incarnation-0 wedge: %v", err)
	}
	if res.Completed != cfg.NumSubnets {
		t.Fatalf("completed %d/%d", res.Completed, cfg.NumSubnets)
	}
}

// TestSimulatedPlaneRejectsProbe pins the config contract: the
// discrete-event plane has no live run to watch, so a Probe is refused
// rather than silently ignored.
func TestSimulatedPlaneRejectsProbe(t *testing.T) {
	pol, err := sched.New("naspipe")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ccCfg(2, false)
	cfg.Probe = &engine.RunProbe{}
	if _, err := engine.RunContext(context.Background(), cfg, pol); err == nil {
		t.Fatal("simulated plane accepted a health probe")
	}
}
