package obs

import (
	"math"
	"sync"
	"testing"
)

// TestDisabledAllocationFree pins constraint 1 of the package contract:
// every operation through the nil registry and nil instruments is
// allocation-free, so disabled metrics cost call sites nothing.
func TestDisabledAllocationFree(t *testing.T) {
	var r *Registry
	c := r.Counter("naspipe_test_total", "x")
	g := r.Gauge("naspipe_test_gauge", "x")
	h := r.Histogram("naspipe_test_seconds", "x", nil)
	cv := r.CounterVec("naspipe_test_vec_total", "x", "tenant")
	gv := r.GaugeVec("naspipe_test_vec_gauge", "x", "tenant")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(3)
		g.Dec()
		h.Observe(0.017)
		cv.With("t1").Inc()
		gv.With("t1").Set(9)
		r.GaugeFunc("naspipe_test_fn", "x", func() float64 { return 1 })
	})
	if allocs != 0 {
		t.Fatalf("disabled registry allocated: %v allocs/op", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("disabled instruments retained state")
	}
	if h.Quantile(0.5) != -1 {
		t.Fatalf("nil histogram quantile = %v, want -1", h.Quantile(0.5))
	}
}

// TestEnabledHotPathAllocationFree pins constraint 2: updates through
// resolved handles on an enabled registry do not allocate.
func TestEnabledHotPathAllocationFree(t *testing.T) {
	r := New()
	c := r.Counter("naspipe_test_total", "x")
	g := r.Gauge("naspipe_test_gauge", "x")
	h := r.Histogram("naspipe_test_seconds", "x", nil)
	tc := r.CounterVec("naspipe_test_vec_total", "x", "tenant").With("t1")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(0.5)
		h.Observe(0.017)
		tc.Add(1)
	})
	if allocs != 0 {
		t.Fatalf("enabled hot path allocated: %v allocs/op", allocs)
	}
	if c.Value() < 1000 {
		t.Fatalf("counter did not record: %v", c.Value())
	}
}

func TestCounterMonotone(t *testing.T) {
	r := New()
	c := r.Counter("naspipe_test_total", "x")
	c.Add(3)
	c.Add(-5) // ignored: counters are monotone by contract
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %v, want 4", got)
	}
}

func TestGauge(t *testing.T) {
	r := New()
	g := r.Gauge("naspipe_test_gauge", "x")
	g.Set(10)
	g.Add(-3.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 6.5 {
		t.Fatalf("gauge = %v, want 6.5", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("naspipe_test_seconds", "x", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106.7 {
		t.Fatalf("sum = %v, want 106.7", got)
	}
	// ranks: p50 → rank 3 → bucket le=2; p99 → rank 5 → +Inf bucket,
	// clamped to the last finite bound.
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("p50 = %v, want 2", got)
	}
	if got := h.Quantile(0.99); got != 4 {
		t.Fatalf("p99 = %v, want 4 (clamped)", got)
	}
	if got := h.Quantile(0.01); got != 1 {
		t.Fatalf("p1 = %v, want 1", got)
	}
}

func TestHistogramExactBoundGoesLow(t *testing.T) {
	r := New()
	h := r.Histogram("naspipe_test_seconds", "x", []float64{1, 2})
	h.Observe(1) // le bounds are inclusive: lands in the le=1 bucket
	if got := h.Quantile(1); got != 1 {
		t.Fatalf("observation on bound landed at %v, want 1", got)
	}
}

func TestVecSeriesIsolation(t *testing.T) {
	r := New()
	v := r.CounterVec("naspipe_test_total", "x", "tenant", "state")
	v.With("a", "done").Add(2)
	v.With("b", "done").Add(5)
	if v.With("a", "done") != v.With("a", "done") {
		t.Fatal("same label values resolved different series")
	}
	if got := v.With("a", "done").Value(); got != 2 {
		t.Fatalf("series a = %v, want 2", got)
	}
	if got := v.With("b", "done").Value(); got != 5 {
		t.Fatalf("series b = %v, want 5", got)
	}
}

func TestRegisterPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"invalid name", func(r *Registry) { r.Counter("bad-name", "x") }},
		{"invalid label", func(r *Registry) { r.CounterVec("naspipe_x_total", "x", "bad-label") }},
		{"reserved label", func(r *Registry) { r.CounterVec("naspipe_x_total", "x", "__name__") }},
		{"duplicate", func(r *Registry) {
			r.Counter("naspipe_x_total", "x")
			r.Counter("naspipe_x_total", "x")
		}},
		{"non-monotone buckets", func(r *Registry) {
			r.Histogram("naspipe_x_seconds", "x", []float64{1, 1})
		}},
		{"empty buckets", func(r *Registry) {
			r.Histogram("naspipe_x_seconds", "x", []float64{})
		}},
		{"wrong arity", func(r *Registry) {
			r.CounterVec("naspipe_x_total", "x", "a", "b").With("only-one")
		}},
		{"unlabeled vec", func(r *Registry) { r.CounterVec("naspipe_x_total", "x") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn(New())
		})
	}
}

// TestConcurrentUpdates exercises the CAS paths under -race and checks
// no increments are lost.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	c := r.Counter("naspipe_test_total", "x")
	g := r.Gauge("naspipe_test_gauge", "x")
	h := r.Histogram("naspipe_test_seconds", "x", nil)
	v := r.CounterVec("naspipe_test_vec_total", "x", "tenant")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := string(rune('a' + w%2))
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.01)
				v.With(tenant).Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter lost updates: %v", got)
	}
	if got := g.Value(); got != workers*per {
		t.Fatalf("gauge lost updates: %v", got)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram lost updates: %v", got)
	}
	if got := v.With("a").Value() + v.With("b").Value(); got != workers*per {
		t.Fatalf("vec lost updates: %v", got)
	}
}

func TestFuncMetricsAndFamilies(t *testing.T) {
	r := New()
	r.GaugeFunc("naspipe_test_depth", "queue depth", func() float64 { return 7 })
	r.CounterFunc("naspipe_test_emitted_total", "events", func() float64 { return 41 })
	r.Counter("naspipe_test_a_total", "a")
	names := r.Names()
	want := []string{"naspipe_test_a_total", "naspipe_test_depth", "naspipe_test_emitted_total"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v (sorted)", names, want)
		}
	}
	if infs := r.Families(); infs[1].Kind != KindGauge {
		t.Fatalf("func gauge family kind = %v", infs[1].Kind)
	}
}

func TestNaNAndInfObservations(t *testing.T) {
	r := New()
	h := r.Histogram("naspipe_test_seconds", "x", []float64{1})
	h.Observe(math.Inf(1))
	if got := h.Count(); got != 1 {
		t.Fatalf("count = %d, want 1 (+Inf lands in overflow bucket)", got)
	}
	if got := h.Quantile(1); got != 1 {
		t.Fatalf("quantile = %v, want clamp to last finite bound", got)
	}
}
