// Benchmarks regenerating every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus ablation
// benches for the design choices DESIGN.md calls out (cache size,
// prediction, reordering, backward priority). Table/figure benches run
// the experiment harness at reduced scale per iteration; the derived
// workload metrics are attached with b.ReportMetric so `go test -bench`
// output doubles as the reproduction record.
package naspipe

import (
	"context"
	"testing"

	"naspipe/internal/cluster"
	"naspipe/internal/engine"
	"naspipe/internal/experiments"
	"naspipe/internal/sched"
	"naspipe/internal/supernet"
	"naspipe/internal/telemetry"
)

// benchExperiment runs a named experiment once per iteration.
func benchExperiment(b *testing.B, name string) {
	o := experiments.Quick()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(name, o)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkTable1(b *testing.B)             { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)             { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)             { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)             { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)             { benchExperiment(b, "table5") }
func BenchmarkFigure1(b *testing.B)            { benchExperiment(b, "figure1") }
func BenchmarkFigure4(b *testing.B)            { benchExperiment(b, "figure4") }
func BenchmarkFigure5(b *testing.B)            { benchExperiment(b, "figure5") }
func BenchmarkFigure6(b *testing.B)            { benchExperiment(b, "figure6") }
func BenchmarkFigure7(b *testing.B)            { benchExperiment(b, "figure7") }
func BenchmarkArtifactCompare(b *testing.B)    { benchExperiment(b, "artifact-compare") }
func BenchmarkArtifactThroughput(b *testing.B) { benchExperiment(b, "artifact-throughput") }

// benchPolicyRun measures one engine run per iteration and reports the
// simulated workload metrics.
func benchPolicyRun(b *testing.B, space supernet.Space, policy engine.Policy, mk func() engine.Policy) {
	cfg := engine.Config{
		Space: space, Spec: cluster.Default(8), Seed: 1,
		NumSubnets: 120, InflightLimit: 48,
	}
	var last engine.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, _ = engine.Run(cfg, mk())
	}
	b.StopTimer()
	if last.Failed {
		b.Fatalf("run failed: %s", last.FailReason)
	}
	b.ReportMetric(last.SamplesPerSec, "sim-samples/s")
	b.ReportMetric(last.BubbleRatio, "bubble")
	b.ReportMetric(float64(last.Batch), "batch")
}

// Per-system runs on the headline space (Figure 5's NLP.c1 column).
func BenchmarkSystemNASPipe(b *testing.B) {
	benchPolicyRun(b, supernet.NLPc1, nil, func() engine.Policy { return sched.NewNASPipe() })
}

func BenchmarkSystemGPipe(b *testing.B) {
	benchPolicyRun(b, supernet.NLPc1, nil, func() engine.Policy { return sched.NewGPipe() })
}

func BenchmarkSystemPipeDream(b *testing.B) {
	benchPolicyRun(b, supernet.NLPc1, nil, func() engine.Policy { return sched.NewPipeDream() })
}

func BenchmarkSystemVPipe(b *testing.B) {
	benchPolicyRun(b, supernet.NLPc1, nil, func() engine.Policy { return sched.NewVPipe() })
}

// Ablation benches: the design choices DESIGN.md §4 calls out beyond the
// paper's own Figure 6.

// Cache size: the paper fixes the context cache at 3x a subnet's
// footprint; sweep 1.5x / 3x / 6x to expose the hit-rate/batch trade-off.
func benchCacheFactor(b *testing.B, factor float64) {
	mk := func() engine.Policy {
		o := sched.DefaultNASPipeOptions()
		o.CacheFactor = factor
		return sched.NewNASPipeWith("NASPipe", o)
	}
	cfg := engine.Config{Space: supernet.NLPc1, Spec: cluster.Default(8), Seed: 1, NumSubnets: 120, InflightLimit: 48}
	var last engine.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, _ = engine.Run(cfg, mk())
	}
	b.StopTimer()
	b.ReportMetric(last.CacheHitRate, "hit-rate")
	b.ReportMetric(last.SamplesPerSec, "sim-samples/s")
}

func BenchmarkAblationCache1_5x(b *testing.B) { benchCacheFactor(b, 1.5) }
func BenchmarkAblationCache3x(b *testing.B)   { benchCacheFactor(b, 3) }
func BenchmarkAblationCache6x(b *testing.B)   { benchCacheFactor(b, 6) }

// Reordering: Algorithm 2's queue scan versus FIFO head-of-line stalls.
func BenchmarkAblationNoReorder(b *testing.B) {
	benchPolicyRun(b, supernet.NLPc1, nil, func() engine.Policy {
		o := sched.DefaultNASPipeOptions()
		o.Reorder = false
		return sched.NewNASPipeWith("NASPipe w/o scheduler", o)
	})
}

// Prediction: Algorithm 3 context prefetch versus whole-supernet
// residency.
func BenchmarkAblationNoPredictor(b *testing.B) {
	benchPolicyRun(b, supernet.NLPc1, nil, func() engine.Policy {
		o := sched.DefaultNASPipeOptions()
		o.Predictor = false
		return sched.NewNASPipeWith("NASPipe w/o predictor", o)
	})
}

// Mirroring: balanced per-subnet partitions versus the static partition.
func BenchmarkAblationNoMirroring(b *testing.B) {
	benchPolicyRun(b, supernet.NLPc1, nil, func() engine.Policy {
		o := sched.DefaultNASPipeOptions()
		o.Mirroring = false
		return sched.NewNASPipeWith("NASPipe w/o mirroring", o)
	})
}

// Window: the inflight admission window the CSP scheduler searches over.
func benchWindow(b *testing.B, window int) {
	cfg := engine.Config{Space: supernet.NLPc1, Spec: cluster.Default(8), Seed: 1, NumSubnets: 120, InflightLimit: window}
	var last engine.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, _ = engine.Run(cfg, sched.NewNASPipe())
	}
	b.StopTimer()
	b.ReportMetric(last.SamplesPerSec, "sim-samples/s")
}

func BenchmarkAblationWindow16(b *testing.B) { benchWindow(b, 16) }
func BenchmarkAblationWindow48(b *testing.B) { benchWindow(b, 48) }
func BenchmarkAblationWindow96(b *testing.B) { benchWindow(b, 96) }

// Extension benches: the §5.5 future applications.

func BenchmarkExtHybridTraverse(b *testing.B) { benchExperiment(b, "ext-hybrid") }
func BenchmarkExtMoERouting(b *testing.B)     { benchExperiment(b, "ext-moe") }

// Telemetry cost on the concurrent plane: the Off/On pair guards the
// disabled path (nil bus: every emission call must stay a no-op — compare
// these two to see the cost telemetry adds when enabled; the bench cmd's
// -overhead flag gates the same delta at 5% on a jittered workload).
func benchConcurrentTelemetry(b *testing.B, mkBus func() *telemetry.Bus) {
	cfg := engine.Config{
		Space: supernet.NLPc3.Scaled(8, 3), Spec: cluster.Default(4),
		Seed: 1, NumSubnets: 18,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Telemetry = mkBus()
		if _, err := engine.RunConcurrent(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConcurrentTelemetryOff(b *testing.B) {
	benchConcurrentTelemetry(b, func() *telemetry.Bus { return nil })
}

func BenchmarkConcurrentTelemetryOn(b *testing.B) {
	benchConcurrentTelemetry(b, func() *telemetry.Bus { return telemetry.NewBus(0) })
}
