// Package backoff is the one exponential-backoff policy shared by every
// retry loop in the system: the supervision plane's restart delays, the
// fault injector's dropped-message retries, and the transport plane's
// per-link reconnect loops. One policy, one doubling rule, one cap —
// three planes cannot drift apart on what "exponential backoff" means.
package backoff

import (
	"context"
	"time"
)

// Policy is a capped exponential-backoff schedule: Delay(0) = Base,
// doubling per attempt, never exceeding Max. The zero value is unusable
// on purpose — callers state their base and cap explicitly.
type Policy struct {
	Base time.Duration // first delay
	Max  time.Duration // ceiling
}

// Delay returns the delay after the given zero-based failed attempt:
// Base·2^attempt, capped at Max. Negative attempts clamp to 0.
func (p Policy) Delay(attempt int) time.Duration {
	d := p.Base
	for i := 0; i < attempt && d < p.Max; i++ {
		d *= 2
	}
	if d > p.Max {
		d = p.Max
	}
	return d
}

// Sleep blocks for Delay(attempt), returning early with the context's
// error on interruption — the interruptible form every supervised loop
// (restart, reconnect) uses so shutdown is never held hostage by a
// backoff timer.
func (p Policy) Sleep(ctx context.Context, attempt int) error {
	t := time.NewTimer(p.Delay(attempt))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
