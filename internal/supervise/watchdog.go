// The watchdog: stall detection on the executor's health probe.
//
// The executor's two progress signals — the committed stage-0 frontier
// and the total completed-task count — are monotone and move only on
// real task completions; parks, queue churn, retries, and cache stalls
// update per-stage health but neither counter. The watchdog therefore
// distinguishes slow from stalled by one rule: if both signals stay
// flat for StallAfter, nothing can be running — every in-flight task
// would have completed (the executor's park poll is 5ms, injected
// delays are capped far below StallAfter) — so the pipeline is wedged,
// deadlocked, or dead. On firing it snapshots the per-stage health
// table into a structured diagnosis and cancels the incarnation with a
// *StallError cause, which the supervisor turns into a recoverable,
// checkpointed incident.
package supervise

import (
	"context"
	"fmt"
	"strings"
	"time"

	"naspipe/internal/engine"
)

// StallDiagnosis is what the watchdog saw when it fired: the stuck
// progress signals, how long they were flat, and every stage's last
// published health (blocked head, owning subnet, cache residency, last
// task age).
type StallDiagnosis struct {
	Frontier int   // committed global cursor at firing time
	Tasks    int64 // completed-task count at firing time
	Quiet    time.Duration
	Stages   []engine.StageHealth
}

// StallError is the watchdog's verdict, installed as the incarnation
// context's cancel cause.
type StallError struct {
	Incarnation int
	Diag        StallDiagnosis
}

// BlockedStage attributes the stall: a wedged stage if any, else the
// blocked stage (head waiting on an unfinished writer) with the oldest
// last-completed task, else the stage idle longest. -1 if no health
// was ever published.
func (e *StallError) BlockedStage() int {
	best, bestNs := -1, int64(0)
	blocked := false
	for _, h := range e.Diag.Stages {
		if h.Wedged {
			return h.Stage
		}
		isBlocked := h.BlockedHead >= 0 && h.OwnerSubnet >= 0
		switch {
		case best < 0,
			isBlocked && !blocked,
			isBlocked == blocked && h.LastTaskNs < bestNs:
			best, bestNs, blocked = h.Stage, h.LastTaskNs, isBlocked
		}
	}
	return best
}

func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "supervise: watchdog: no progress for %v at incarnation %d (frontier %d, %d tasks done)",
		e.Diag.Quiet.Round(time.Millisecond), e.Incarnation, e.Diag.Frontier, e.Diag.Tasks)
	now := time.Now().UnixNano()
	for _, h := range e.Diag.Stages {
		fmt.Fprintf(&b, "\n  stage %d: fwd %d bwd %d, queued %d fwd / %d bwd", h.Stage, h.FwdDone, h.BwdDone, h.QueueLen, h.BwdQueueLen)
		if h.BlockedHead >= 0 {
			fmt.Fprintf(&b, ", head subnet %d", h.BlockedHead)
			if h.OwnerSubnet >= 0 {
				fmt.Fprintf(&b, " blocked by subnet %d", h.OwnerSubnet)
			}
		}
		if h.CacheResidentBytes > 0 {
			fmt.Fprintf(&b, ", cache %d B resident", h.CacheResidentBytes)
		}
		if h.LastTaskNs > 0 {
			fmt.Fprintf(&b, ", last task %v ago", time.Duration(now-h.LastTaskNs).Round(time.Millisecond))
		}
		if h.Wedged {
			b.WriteString(", WEDGED")
		}
	}
	if s := e.BlockedStage(); s >= 0 {
		fmt.Fprintf(&b, "\n  diagnosis: stage %d is the blocked stage", s)
	}
	return b.String()
}

// startWatchdog launches the stall detector for one incarnation unless
// disabled. It returns a channel closed when the watchdog goroutine has
// exited; the supervisor waits on it after cancelling the incarnation
// so no goroutine outlives the attempt.
func startWatchdog(ctx context.Context, cancel context.CancelCauseFunc, cfg WatchdogConfig, probe *engine.RunProbe, incarnation int) <-chan struct{} {
	stop := make(chan struct{})
	if cfg.Disabled {
		close(stop)
		return stop
	}
	go func() {
		defer close(stop)
		lastF, lastT := probe.Progress()
		lastChange := time.Now()
		tick := time.NewTicker(cfg.Poll)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			f, t := probe.Progress()
			if f != lastF || t != lastT {
				lastF, lastT = f, t
				lastChange = time.Now()
				continue
			}
			if quiet := time.Since(lastChange); quiet >= cfg.StallAfter {
				cancel(&StallError{
					Incarnation: incarnation,
					Diag: StallDiagnosis{
						Frontier: f, Tasks: t, Quiet: quiet,
						Stages: probe.Snapshot(),
					},
				})
				return
			}
		}
	}()
	return stop
}
