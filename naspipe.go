// Package naspipe is a from-scratch Go reproduction of NASPipe, the
// high-performance and reproducible pipeline-parallel supernet training
// system of Zhao et al. (ASPLOS 2022), built on causal synchronous
// parallel (CSP) pipeline scheduling.
//
// Because Go has no GPU training stack, the system runs on two substitute
// substrates (see DESIGN.md): a deterministic discrete-event simulator of
// the paper's 8-host × 4-GPU testbed for the performance plane, and a
// small deterministic float32 trainer for the numeric plane, on which the
// reproducibility claims (bitwise-equal weights across cluster sizes) are
// checked mechanically rather than asserted.
//
// This package is the public facade: it re-exports the pieces a
// downstream user needs — the Table 1 search spaces, the scheduling
// policies (NASPipe's CSP, GPipe, PipeDream, VPipe, ablations), the
// pipeline engine, the numeric trainer, evolutionary search, and the
// experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// Quick start:
//
//	res, err := naspipe.RunPolicy(naspipe.Config{
//	        Space: naspipe.NLPc1,
//	        Spec:  naspipe.DefaultCluster(8),
//	        Seed:  1, NumSubnets: 100,
//	}, "naspipe")
//
// See examples/ for runnable programs.
package naspipe

import (
	"context"
	"io"

	"naspipe/internal/analysis"
	"naspipe/internal/cluster"
	"naspipe/internal/engine"
	"naspipe/internal/experiments"
	"naspipe/internal/fault"
	"naspipe/internal/explore"
	"naspipe/internal/hybrid"
	"naspipe/internal/metrics"
	"naspipe/internal/moe"
	"naspipe/internal/sched"
	"naspipe/internal/supernet"
	"naspipe/internal/telemetry"
	"naspipe/internal/trace"
	"naspipe/internal/train"
)

// Core model types.
type (
	// Space is a NAS search space (supernet geometry + dataset).
	Space = supernet.Space
	// Subnet is one sampled architecture with its sequence ID.
	Subnet = supernet.Subnet
	// Numeric is a trainable (real float32) supernet instantiation.
	Numeric = supernet.Numeric
	// ClusterSpec describes the simulated GPU cluster.
	ClusterSpec = cluster.Spec
	// Config configures one pipeline training run on the engine.
	Config = engine.Config
	// Result reports a run's metrics (throughput, bubble ratio, ALU,
	// cache hit rate, memory, access trace, ...).
	Result = engine.Result
	// Policy is a scheduling discipline plugged into the engine.
	Policy = engine.Policy
	// Trace is the parameter READ/WRITE interleaving of a run.
	Trace = trace.Trace
	// TraceRecord is a serializable schedule: run identity + access
	// order, enough to deterministically replay a training later.
	TraceRecord = trace.Record
	// TrainConfig configures numeric (real-weights) training.
	TrainConfig = train.Config
	// TrainResult carries trained weights, losses, and the bitwise
	// checksum used for reproducibility comparison.
	TrainResult = train.Result
	// SearchConfig parameterizes evolutionary architecture search.
	SearchConfig = explore.SearchConfig
	// SearchResult reports the evolution outcome.
	SearchResult = explore.SearchResult
	// ExperimentOptions scale the paper-experiment harness.
	ExperimentOptions = experiments.Options
	// SpaceUnion combines several search spaces for hybrid traversal
	// (the paper's §5.5 future application).
	SpaceUnion = hybrid.Union
	// MoEStreamConfig parameterizes popularity-skewed (MoE/dynamic
	// network) subnet routing (the paper's other §5.5 application).
	MoEStreamConfig = moe.StreamConfig
	// StageContention reports one stage's scheduling pressure on the
	// concurrent execution plane (see Result.Contention).
	StageContention = metrics.StageContention
	// StageCache reports one stage's memory-context counters on the
	// concurrent execution plane (see Result.CacheStats).
	StageCache = metrics.StageCache
	// MemPlaneConfig configures the concurrent plane's prefetching
	// layer caches and Algorithm 3 predictor (Config.ConcurrentMem).
	MemPlaneConfig = engine.MemPlaneConfig
	// TelemetryBus is the structured event stream both executors publish
	// to (task spans, scheduler decisions, cache traffic, transfer
	// flows); see Config.Telemetry and WithTelemetry.
	TelemetryBus = telemetry.Bus
	// TelemetryEvent is one entry of the telemetry stream.
	TelemetryEvent = telemetry.Event
	// TelemetrySnapshot is a consistent view of a bus's live counters.
	TelemetrySnapshot = telemetry.Snapshot
	// StalenessReport quantifies causal-order violations in a trace.
	StalenessReport = analysis.StalenessReport
	// DepStats characterizes a subnet stream's dependency structure.
	DepStats = analysis.DepStats
	// FaultPlan is a deterministic seed-driven fault-injection schedule
	// for the concurrent plane (crashes, message drops/delays/duplicates,
	// prefetch failures); see WithFaults and ParseFaultPlan.
	FaultPlan = fault.Plan
	// FaultTaskRef pins a targeted crash to one (stage, seq, kind) task.
	FaultTaskRef = fault.TaskRef
	// CrashError is the typed error an injected stage crash surfaces;
	// detect it with errors.As to drive a resume loop.
	CrashError = fault.CrashError
	// Checkpoint is the crash-consistent resume state persisted by
	// WithCheckpoint; see LoadCheckpoint and Runner.Resume.
	Checkpoint = fault.Checkpoint
)

// The paper's Table 1 search spaces.
var (
	NLPc0 = supernet.NLPc0
	NLPc1 = supernet.NLPc1
	NLPc2 = supernet.NLPc2
	NLPc3 = supernet.NLPc3
	CVc1  = supernet.CVc1
	CVc2  = supernet.CVc2
	CVc3  = supernet.CVc3
)

// Spaces lists the Table 1 search spaces in the paper's order.
func Spaces() []Space { return supernet.Spaces() }

// SpaceByName resolves a Table 1 space by name ("NLP.c1", "CV.c3", ...).
func SpaceByName(name string) (Space, error) { return supernet.SpaceByName(name) }

// SampleSubnets returns the first n subnets of the SPOS exploration
// stream for (space, seed) — a pure function, independent of cluster
// shape.
func SampleSubnets(space Space, seed uint64, n int) []Subnet {
	return supernet.Sample(space, seed, n)
}

// DefaultCluster returns the paper's testbed (RTX 2080Ti hosts, PCIe 3.0
// x16, 40 Gbps Ethernet) with the requested GPU count.
func DefaultCluster(gpus int) ClusterSpec { return cluster.Default(gpus) }

// PolicyNames lists the available scheduling policies: "naspipe",
// "gpipe", "pipedream", "vpipe", "sequential", and the three NASPipe
// ablations ("naspipe-noscheduler", "naspipe-nopredictor",
// "naspipe-nomirroring").
func PolicyNames() []string { return sched.Names() }

// NewPolicy constructs a fresh policy instance by name. Policies are
// stateful: construct a new one per run.
func NewPolicy(name string) (Policy, error) { return sched.New(name) }

// Run executes one pipeline training run under the given policy.
// Invalid configurations (malformed cluster spec, gapped injected subnet
// stream) return an error; a run that fails for modeled reasons (e.g.
// parameters exceed GPU memory) returns a Result with Failed set and no
// error.
//
// Deprecated: build a Runner instead — it adds executor selection,
// context cancellation, and bounded fan-out. Run remains as a thin
// wrapper over the simulated plane.
func Run(cfg Config, policy Policy) (Result, error) { return engine.Run(cfg, policy) }

// RunPolicy is Run with policy construction by name.
//
// Deprecated: use NewRunner(WithPolicy(name)) and Runner.Run, which add
// executor selection and context cancellation.
func RunPolicy(cfg Config, policyName string) (Result, error) {
	p, err := sched.New(policyName)
	if err != nil {
		return Result{}, err
	}
	return engine.Run(cfg, p)
}

// BuildNumeric instantiates trainable parameters for a (typically scaled)
// space; see Space.Scaled.
func BuildNumeric(space Space, dim int, seed uint64) *Numeric {
	return supernet.BuildNumeric(space, dim, seed)
}

// TrainSequential trains the subnets strictly in exploration order — the
// reference semantics against which reproducibility is defined.
func TrainSequential(cfg TrainConfig, subnets []Subnet) TrainResult {
	return train.Sequential(cfg, subnets)
}

// TrainReplay executes a run's recorded parameter-access trace on real
// weights. A CSP trace replays to bitwise the sequential result for any
// GPU count; BSP/ASP traces diverge.
func TrainReplay(cfg TrainConfig, subnets []Subnet, tr *Trace) (TrainResult, error) {
	return train.Replay(cfg, subnets, tr)
}

// TrainSequentialOn continues sequential training on an existing live
// supernet — the resume path's reference semantics: train the committed
// prefix on a fresh net, then the suffix on the same net.
func TrainSequentialOn(cfg TrainConfig, net *Numeric, subnets []Subnet) TrainResult {
	return train.SequentialOn(cfg, net, subnets)
}

// TrainReplayOn executes a trace's access order against an existing live
// supernet; with a resumed run's suffix trace on a sequential-prefix
// net, it reproduces the uninterrupted run bitwise.
func TrainReplayOn(cfg TrainConfig, net *Numeric, subnets []Subnet, tr *Trace) (TrainResult, error) {
	return train.ReplayOn(cfg, net, subnets, tr)
}

// ParseFaultPlan parses a comma-separated fault plan spec, e.g.
// "seed=7,drop=0.1,delay=0.05,crashat=2:9:F" (see fault.ParsePlan for
// the full key set). Feed the result to WithFaults.
func ParseFaultPlan(spec string) (*FaultPlan, error) { return fault.ParsePlan(spec) }

// LoadCheckpoint reads and integrity-checks a checkpoint file written by
// a WithCheckpoint run.
func LoadCheckpoint(path string) (Checkpoint, error) { return fault.Load(path) }

// Evaluate returns a subnet's validation loss on a trained supernet.
func Evaluate(cfg TrainConfig, net *Numeric, sub Subnet, nBatches int) float64 {
	return train.Evaluate(cfg, net, sub, nBatches)
}

// Score converts a validation loss to the paper's reporting units
// (BLEU-like for NLP, top-5-like for CV); a documented monotone proxy.
func Score(space Space, valLoss float64) float64 {
	return train.Score(space.Domain, valLoss)
}

// DefaultSearch returns the default evolutionary-search configuration.
func DefaultSearch(seed uint64) SearchConfig { return explore.DefaultSearchConfig(seed) }

// Search runs regularized evolution over a trained supernet and returns
// the best discovered architecture.
func Search(cfg TrainConfig, net *Numeric, sc SearchConfig) (SearchResult, error) {
	return explore.Search(cfg, net, sc)
}

// SearchContext is Search under a context: cancellation is honored
// between generations and returns the best-so-far result with ctx.Err().
func SearchContext(ctx context.Context, cfg TrainConfig, net *Numeric, sc SearchConfig) (SearchResult, error) {
	return explore.SearchContext(ctx, cfg, net, sc)
}

// NewSpaceUnion combines same-geometry search spaces into one supernet
// whose subnet streams interleave through a single pipeline — the hybrid
// traverse of multiple search spaces the paper envisions in §5.5.
func NewSpaceUnion(name string, members ...Space) (*SpaceUnion, error) {
	return hybrid.NewUnion(name, members...)
}

// AnalyzeStaleness scores a trace's parameter reads against the causal
// order: zero stale reads iff the schedule is sequential-equivalent.
func AnalyzeStaleness(tr *Trace) StalenessReport { return analysis.Staleness(tr) }

// AnalyzeDependencies characterizes a subnet stream's causal dependency
// structure (consecutive/pair share rates, longest chain).
func AnalyzeDependencies(subs []Subnet) DepStats { return analysis.Dependencies(subs) }

// MoEStream generates an MoE-style routed subnet stream: expert
// popularity follows a Zipf skew instead of SPOS's uniform sampling.
// Inject it via Config.Subnets.
func MoEStream(c MoEStreamConfig, n int) ([]Subnet, error) { return moe.Stream(c, n) }

// LoadNumeric reads a trained supernet checkpoint written with
// Numeric.Save — bitwise identical to the saved weights.
func LoadNumeric(r io.Reader) (*Numeric, error) { return supernet.LoadNumeric(r) }

// NewTraceRecord packages a run's identity and access trace for
// persistence (deterministic training replay, §2.1).
func NewTraceRecord(space Space, policy string, gpus int, seed uint64, numSubnets int, tr *Trace) *TraceRecord {
	return trace.NewRecord(space, policy, gpus, seed, numSubnets, tr)
}

// ReadTraceRecord loads a record written with TraceRecord.Save.
func ReadTraceRecord(r io.Reader) (*TraceRecord, error) { return trace.ReadRecord(r) }

// NewTelemetryBus returns a telemetry bus with the given ring capacity
// (≤0 uses the default). Attach it via Config.Telemetry or
// WithTelemetry; export its events with WriteChromeTrace/WriteJSONL in
// internal consumers or through cmd/naspipe-bench's -trace-out flag.
func NewTelemetryBus(capacity int) *TelemetryBus { return telemetry.NewBus(capacity) }

// ExperimentNames lists the reproducible paper experiments
// ("table1".."table5", "figure1"/"figure4".."figure7",
// "artifact-compare", "artifact-throughput").
func ExperimentNames() []string { return experiments.Names() }

// DefaultExperimentOptions returns the full-scale experiment options.
func DefaultExperimentOptions() ExperimentOptions { return experiments.Default() }

// QuickExperimentOptions returns reduced options for smoke runs.
func QuickExperimentOptions() ExperimentOptions { return experiments.Quick() }

// Experiment regenerates one of the paper's tables or figures and returns
// the rendered report.
func Experiment(name string, o ExperimentOptions) (string, error) {
	return experiments.Run(name, o)
}

// ExperimentContext is Experiment under a context; cancellation returns
// the partial report with ctx.Err().
func ExperimentContext(ctx context.Context, name string, o ExperimentOptions) (string, error) {
	return experiments.RunContext(ctx, name, o)
}

// AllExperiments runs the full evaluation suite on a bounded worker pool
// (ExperimentOptions.Parallelism; default GOMAXPROCS). The report is
// byte-identical to a serial run at any worker count.
func AllExperiments(o ExperimentOptions) string { return experiments.All(o) }

// AllExperimentsContext is AllExperiments under a context; cancellation
// returns the partial report with ctx.Err().
func AllExperimentsContext(ctx context.Context, o ExperimentOptions) (string, error) {
	return experiments.AllContext(ctx, o)
}
