package naspipe

import (
	"context"
	"fmt"

	"naspipe/internal/engine"
	"naspipe/internal/fault"
	"naspipe/internal/supervise"
)

// The supervision plane's public surface (see internal/supervise): a
// supervisor that drives Runner.Run/Resume incarnations through the
// running → degraded → recovering → done|failed health state machine,
// with watchdog stall detection, in-process auto-resume under a retry
// budget, and elastic degraded-mode recovery.
type (
	SuperviseConfig  = supervise.Config
	SuperviseReport  = supervise.Report
	SuperviseJob     = supervise.Job
	HealthState      = supervise.State
	HealthTransition = supervise.Transition
	Incident         = supervise.Incident
	WatchdogConfig   = supervise.WatchdogConfig
	StallError       = supervise.StallError
	StallDiagnosis   = supervise.StallDiagnosis
	GiveUpError      = supervise.GiveUpError
	RunProbe         = engine.RunProbe
	StageHealth      = engine.StageHealth
)

// Health states, re-exported for callers switching on Report.FinalState.
const (
	HealthRunning    = supervise.Running
	HealthDegraded   = supervise.Degraded
	HealthRecovering = supervise.Recovering
	HealthDone       = supervise.Done
	HealthFailed     = supervise.Failed
)

// DefaultSuperviseConfig returns the supervisor defaults (16 restarts,
// 5ms–250ms backoff, crash-loop window 3, watchdog on at 2s/2ms,
// elasticity off) for CLIs to surface as flag defaults.
func DefaultSuperviseConfig() SuperviseConfig { return supervise.Defaults() }

// RunSupervised executes the configuration under the supervision plane:
// a fresh checkpointed run whose crashes and watchdog-diagnosed stalls
// are caught in-process and resumed from the latest checkpoint, with
// exponential backoff, crash-loop give-up, and (when sc.ElasticAfter is
// set and the Runner has WithElasticResume) elastic halving of the
// pipeline depth after repeated same-stage incidents.
//
// Requires the concurrent executor and WithCheckpoint. The returned
// Report is non-nil on every path; the error contract follows
// supervise.Run — nil on completion, the context error on external
// interruption (resumable), *GiveUpError on budget exhaustion or crash
// loop, the underlying error otherwise.
func (r *Runner) RunSupervised(ctx context.Context, cfg Config, sc SuperviseConfig) (Result, *SuperviseReport, error) {
	job, err := r.superviseJob(cfg, sc, false)
	if err != nil {
		return Result{}, &SuperviseReport{FinalState: supervise.Failed}, err
	}
	return supervise.Run(ctx, sc, job)
}

// ResumeSupervised continues an interrupted checkpointed run under the
// supervision plane: every incarnation, including the first, resumes
// from the checkpoint file. Same requirements and contract as
// RunSupervised.
func (r *Runner) ResumeSupervised(ctx context.Context, cfg Config, sc SuperviseConfig) (Result, *SuperviseReport, error) {
	job, err := r.superviseJob(cfg, sc, true)
	if err != nil {
		return Result{}, &SuperviseReport{FinalState: supervise.Failed}, err
	}
	return supervise.Run(ctx, sc, job)
}

// superviseJob validates the runner/config pairing and builds the
// supervise.Job closing over it.
func (r *Runner) superviseJob(cfg Config, sc SuperviseConfig, resuming bool) (SuperviseJob, error) {
	if r.executor != ExecutorConcurrent {
		return SuperviseJob{}, fmt.Errorf("naspipe: supervision wraps the concurrent executor; the %v executor has no incarnations to supervise", r.executor)
	}
	if r.ckptPath == "" {
		return SuperviseJob{}, fmt.Errorf("naspipe: supervision requires WithCheckpoint — recovery resumes from it")
	}
	if sc.ElasticAfter > 0 && !r.elastic {
		return SuperviseJob{}, fmt.Errorf("naspipe: SuperviseConfig.ElasticAfter needs a Runner built WithElasticResume")
	}
	first := r.incarnation(cfg, resuming)
	job := SuperviseJob{
		Run:    first,
		Resume: r.incarnation(cfg, true),
		Cursor: func() (int, error) {
			ck, err := fault.Load(r.ckptPath)
			if err != nil {
				return 0, err
			}
			return ck.Cursor, nil
		},
		GPUs:  cfg.Spec.GPUs,
		Total: len(cfg.ResolveSubnets()),
	}
	return job, nil
}

// incarnation adapts Runner.Run/Resume into a supervised attempt: the
// supervisor picks the depth (elastic steps shrink it) and owns the
// health probe; the closure wires both into the engine config.
func (r *Runner) incarnation(cfg Config, resume bool) supervise.Incarnation {
	return func(ctx context.Context, gpus int, probe *engine.RunProbe) (Result, error) {
		c := cfg
		c.Spec.GPUs = gpus
		c.Probe = probe
		if resume {
			return r.Resume(ctx, c)
		}
		return r.Run(ctx, c)
	}
}
