package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestNamesDispatch(t *testing.T) {
	for _, name := range Names() {
		if _, err := Run(name, Quick()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := Run("nope", Quick()); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestTable1ListsSevenSpaces(t *testing.T) {
	out := Table1(context.Background(), Quick())
	for _, sp := range []string{"NLP.c0", "NLP.c1", "NLP.c2", "NLP.c3", "CV.c1", "CV.c2", "CV.c3"} {
		if !strings.Contains(out, sp) {
			t.Errorf("Table 1 missing %s", sp)
		}
	}
}

func TestTable5ListsEightLayers(t *testing.T) {
	out := Table5(context.Background(), Quick())
	for _, l := range []string{"Conv 3x1", "Sep Conv 7x1", "Light Conv 5x1", "8 Head Attention",
		"Conv 3x3", "Sep Conv 3x3", "Sep Conv 5x5", "Dil Conv 3x3"} {
		if !strings.Contains(out, l) {
			t.Errorf("Table 5 missing %s", l)
		}
	}
	// The Conv 3x1 swap time must reproduce the measured 1.76 ms.
	if !strings.Contains(out, "1.76") {
		t.Error("Table 5 swap column lost calibration")
	}
}

func TestFigure1CSPOnlyPreserves(t *testing.T) {
	out := Figure1(context.Background(), Quick())
	lines := strings.Split(out, "\n")
	sawCSPYes, sawBSPNo := false, false
	for _, l := range lines {
		if strings.Contains(l, "CSP") && strings.Contains(l, "yes") {
			sawCSPYes = true
		}
		if strings.Contains(l, "BSP") && strings.Contains(l, "NO") {
			sawBSPNo = true
		}
	}
	if !sawCSPYes || !sawBSPNo {
		t.Errorf("Figure 1 verdicts wrong:\n%s", out)
	}
}

func TestTable3CSPReproducibleOthersNot(t *testing.T) {
	out := Table3(context.Background(), Quick())
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "CSP") && !strings.Contains(line, "yes") {
			t.Errorf("CSP row not reproducible: %s", line)
		}
		if (strings.Contains(line, "BSP") || strings.Contains(line, "ASP")) &&
			strings.Contains(line, "yes") {
			t.Errorf("baseline row claims reproducibility: %s", line)
		}
	}
}

func TestTable4SequentialOrderForNASPipe(t *testing.T) {
	out := Table4(context.Background(), Quick())
	var nasLine, seqNote string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "NASPipe") {
			nasLine = line
		}
		if strings.Contains(line, "sequential semantics:") {
			seqNote = line
		}
	}
	if nasLine == "" || seqNote == "" {
		t.Fatalf("Table 4 output malformed:\n%s", out)
	}
	seq := strings.TrimSpace(strings.SplitAfter(seqNote, "sequential semantics:")[1])
	if strings.Count(nasLine, seq) != 2 {
		t.Errorf("NASPipe orders must equal sequential on both GPU counts:\n%s", out)
	}
}

func TestArtifactCompareMatches(t *testing.T) {
	out := ArtifactCompare(context.Background(), Quick())
	if !strings.Contains(out, "50/50") {
		t.Errorf("artifact compare did not match all steps:\n%s", out)
	}
	if !strings.Contains(out, "true") {
		t.Errorf("artifact compare weights not equal:\n%s", out)
	}
}

func TestArtifactThroughputOrderingHolds(t *testing.T) {
	o := Default() // ordering needs steady-state runs; Quick is too noisy
	o.Subnets = 160
	out := ArtifactThroughput(context.Background(), o)
	if !strings.Contains(out, "HOLDS") {
		t.Errorf("throughput ordering failed:\n%s", out)
	}
}

func TestFigure5NASPipeOnlySurvivorOnC0(t *testing.T) {
	o := Quick()
	out := Figure5(context.Background(), o)
	if !strings.Contains(out, "exceeds GPU memory") {
		t.Errorf("Figure 5 should show baseline failures on NLP.c0:\n%s", out)
	}
}
